(* The offline report library: parsing the bench sweep's JSON back,
   Table 4/5/6 arithmetic, the compare and gnuplot-data renderers, and
   the JSONL event summary. *)

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* A miniature BENCH_results.json: one program measured at all three
   levels on one machine, with round numbers so the expected percentages
   are obvious by hand.  SIMPLE: 100 static / 1000 dynamic; LOOPS: 110 /
   900; JUMPS: 120 / 800. *)
let cache size miss fetch =
  Printf.sprintf
    {|{"config":"%dKb/direct/ctx-off","size_kb":%d,"assoc":1,"context_switches":false,"miss_ratio":%f,"fetch_cost":%d}|}
    size size miss fetch

let result ~level ~static ~dyn ~ujumps ~miss =
  Printf.sprintf
    {|{"program":"wc","level":"%s","machine":"risc",
       "static_instrs":%d,"static_ujumps":%d,"static_nops":1,
       "dyn_instrs":%d,"dyn_ujumps":%d,"dyn_nops":2,"dyn_transfers":50,
       "instrs_between_branches":4.5,"output_ok":true,"timed_out":false,
       "caches":[%s]}|}
    level static ujumps dyn (ujumps * 10) (cache 1 miss 1234)

let fixture =
  Printf.sprintf {|{"results":[%s,%s,%s],"counters":{"measure.runs":3}}|}
    (result ~level:"SIMPLE" ~static:100 ~dyn:1000 ~ujumps:10 ~miss:0.05)
    (result ~level:"LOOPS" ~static:110 ~dyn:900 ~ujumps:8 ~miss:0.04)
    (result ~level:"JUMPS" ~static:120 ~dyn:800 ~ujumps:0 ~miss:0.03)

let parse s =
  match Report.parse_results s with
  | Ok doc -> doc
  | Error e -> Alcotest.fail ("fixture rejected: " ^ e)

let test_parse () =
  let doc = parse fixture in
  Alcotest.(check int) "three rows" 3 (List.length doc.Report.rows);
  Alcotest.(check (list string)) "machines" [ "risc" ] (Report.machines doc);
  Alcotest.(check (list string)) "programs" [ "wc" ] (Report.programs doc);
  Alcotest.(check (list string))
    "wc complete" [ "wc" ]
    (Report.complete_programs doc "risc");
  Alcotest.(check (list (pair string int)))
    "counters"
    [ ("measure.runs", 3) ]
    doc.Report.counters;
  let r =
    Option.get (Report.find doc ~program:"wc" ~level:"JUMPS" ~machine:"risc")
  in
  Alcotest.(check int) "static" 120 r.Report.static_instrs;
  Alcotest.(check int) "dyn" 800 r.Report.dyn_instrs;
  Alcotest.(check int) "no ujumps left" 0 r.Report.dyn_ujumps;
  (match r.Report.caches with
  | [ c ] ->
    Alcotest.(check int) "cache size" 1 c.Report.cr_size_kb;
    Alcotest.(check bool) "ctx off" false c.Report.cr_ctx
  | _ -> Alcotest.fail "expected one cache row");
  (* Junk documents give an error, not an exception. *)
  List.iter
    (fun bad ->
      match Report.parse_results bad with
      | Ok _ -> Alcotest.fail ("accepted: " ^ bad)
      | Error _ -> ())
    [ "nonsense"; "{}"; {|{"results":[{"program":"p"}]}|} ]

let test_render_tables () =
  let md = Report.render ~title:"unit fixture" (parse fixture) in
  Alcotest.(check bool) "title" true (contains md "unit fixture");
  Alcotest.(check bool) "table 5 section" true (contains md "Table 5 shape");
  Alcotest.(check bool) "table 4 section" true (contains md "Table 4 shape");
  Alcotest.(check bool) "table 6 section" true (contains md "Table 6 shape");
  (* LOOPS static: (110-100)/100 = +10%; JUMPS dynamic: (800-1000)/1000 =
     -20%.  With one program the mean rows equal the program rows. *)
  Alcotest.(check bool) "loops static +10%" true (contains md "+10.0");
  Alcotest.(check bool) "jumps dynamic -20%" true (contains md "-20.0");
  (* Table 6, 1Kb: miss 0.05 -> 0.03 is -2 percentage points. *)
  Alcotest.(check bool) "miss delta in pp" true (contains md "-2.0");
  Alcotest.(check bool) "verification verdict" true (contains md "3 measurement")

let test_compare () =
  let a = parse fixture in
  let same = Report.compare_docs ~name_a:"A" ~name_b:"B" a a in
  Alcotest.(check bool) "self-compare is quiet" true
    (contains same "No measurement changed");
  let b =
    parse
      (Printf.sprintf {|{"results":[%s,%s,%s],"counters":{"measure.runs":3}}|}
         (result ~level:"SIMPLE" ~static:100 ~dyn:1000 ~ujumps:10 ~miss:0.05)
         (result ~level:"LOOPS" ~static:110 ~dyn:900 ~ujumps:8 ~miss:0.04)
         (result ~level:"JUMPS" ~static:125 ~dyn:790 ~ujumps:0 ~miss:0.03))
  in
  let diff = Report.compare_docs ~name_a:"A" ~name_b:"B" a b in
  Alcotest.(check bool) "changed row reported" true
    (contains diff "wc" && contains diff "JUMPS");
  Alcotest.(check bool) "old and new static shown" true
    (contains diff "120" && contains diff "125")

let test_dat_files () =
  let files = Report.dat_files (parse fixture) in
  let names = List.map fst files in
  Alcotest.(check bool) "instrs file" true (List.mem "instrs_risc.dat" names);
  Alcotest.(check bool) "cache file" true (List.mem "cache_risc.dat" names);
  List.iter
    (fun (name, contents) ->
      Alcotest.(check bool) (name ^ " has header") true
        (String.length contents > 0 && contents.[0] = '#');
      (* Every data line has the same field count as the header. *)
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' contents)
      in
      let width l = List.length (String.split_on_char '\t' l) in
      let w = width (List.hd lines) in
      List.iter
        (fun l -> Alcotest.(check int) (name ^ " column count") w (width l))
        lines)
    files

let test_event_summary () =
  let jsonl =
    String.concat "\n"
      [
        {|{"seq":0,"t_ms":0.1,"ev":"pass_end","func":"main"}|};
        {|{"seq":1,"t_ms":0.2,"ev":"pass_end","func":"wc"}|};
        {|{"seq":2,"t_ms":0.3,"ev":"warning","message":"m"}|};
        "not json at all";
      ]
  in
  let md = Report.summarize_events jsonl in
  Alcotest.(check bool) "counts pass_end" true (contains md "pass_end");
  Alcotest.(check bool) "counts warning" true (contains md "warning");
  Alcotest.(check bool) "two pass_ends" true (contains md "2")

let tests =
  ( "report",
    [
      Alcotest.test_case "parse results" `Quick test_parse;
      Alcotest.test_case "render tables" `Quick test_render_tables;
      Alcotest.test_case "compare docs" `Quick test_compare;
      Alcotest.test_case "dat files" `Quick test_dat_files;
      Alcotest.test_case "event summary" `Quick test_event_summary;
    ] )
