(* The daemon stack: wire protocol (framing, strict envelope/response
   parsing, fuzzed decoder robustness), connection-level chaos draws, the
   supervised Pool.Service it schedules onto, and one in-process
   end-to-end server exercise asserting the byte-identity contract. *)

open Daemon
module Json = Telemetry.Json

let sample_source =
  "int main() {\n\
  \  int i, s;\n\
  \  s = 0;\n\
  \  for (i = 0; i < 6; i++) { s = s + i; }\n\
  \  putchar(48 + (s % 10));\n\
  \  putchar(10);\n\
  \  return 0;\n\
   }\n"

(* --- framing --- *)

let test_frame_roundtrip () =
  let payloads = [ "{}"; String.make 70000 'x'; ""; "{\"a\":1}" ] in
  let stream = String.concat "" (List.map Protocol.encode_frame payloads) in
  (* One byte at a time: the decoder must reassemble every frame in
     order regardless of chunking. *)
  let dec = Protocol.decoder () in
  let out = ref [] in
  String.iter
    (fun c ->
      Protocol.decoder_feed dec (String.make 1 c);
      let rec drain () =
        match Protocol.decoder_next dec with
        | Ok (Some p) ->
          out := p :: !out;
          drain ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "decoder poisoned: %s" e
      in
      drain ())
    stream;
  Alcotest.(check (list int))
    "all frames, in order, byte-exact"
    (List.map String.length payloads)
    (List.rev_map String.length !out);
  Alcotest.(check bool)
    "payloads equal" true
    (List.rev !out = payloads);
  Alcotest.(check int) "nothing buffered" 0 (Protocol.decoder_pending dec);
  (match Protocol.encode_frame (String.make (Protocol.max_frame + 1) 'y') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized encode_frame must raise")

let test_decoder_poisoning () =
  let dec = Protocol.decoder () in
  (* A header announcing more than max_frame poisons permanently. *)
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 (Int32.of_int (Protocol.max_frame + 1));
  Protocol.decoder_feed dec (Bytes.to_string huge);
  (match Protocol.decoder_next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized length must poison the decoder");
  Protocol.decoder_feed dec (Protocol.encode_frame "{}");
  (match Protocol.decoder_next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "poisoned decoder must stay poisoned")

let test_decoder_fuzz () =
  (* Seeded byte mutations over valid streams, plus pure garbage: the
     decoder must never raise, only yield frames, wait, or poison.  The
     same Random.State discipline as Harness.Gen keeps every run
     identical. *)
  let exercised = ref 0 in
  for seed = 1 to 60 do
    let st = Random.State.make [| 0xDAE; seed |] in
    let payloads =
      List.init
        (1 + Random.State.int st 4)
        (fun _ ->
          String.init (Random.State.int st 200) (fun _ ->
              Char.chr (Random.State.int st 256)))
    in
    let stream =
      Bytes.of_string
        (String.concat "" (List.map Protocol.encode_frame payloads))
    in
    let mutations = 1 + Random.State.int st 4 in
    for _ = 1 to mutations do
      if Bytes.length stream > 0 then
        Bytes.set stream
          (Random.State.int st (Bytes.length stream))
          (Char.chr (Random.State.int st 256))
    done;
    let dec = Protocol.decoder () in
    let pos = ref 0 in
    (try
       while !pos < Bytes.length stream do
         let chunk = min (1 + Random.State.int st 97) (Bytes.length stream - !pos) in
         Protocol.decoder_feed dec (Bytes.sub_string stream !pos chunk);
         pos := !pos + chunk;
         let rec drain () =
           match Protocol.decoder_next dec with
           | Ok (Some _) ->
             incr exercised;
             drain ()
           | Ok None | Error _ -> ()
         in
         drain ()
       done
     with e ->
       Alcotest.failf "decoder raised on mutated stream (seed %d): %s" seed
         (Printexc.to_string e))
  done;
  Alcotest.(check bool)
    "some mutated streams still yielded frames" true (!exercised > 0)

let test_decoder_deep_nesting () =
  (* A legal frame (under the 16MB cap) whose payload is millions of
     nested '[': the decoder must hand it over and [parse_envelope] must
     answer a parse [Error] — on the server this path runs on the
     supervisor loop, so a [Stack_overflow] here would kill the whole
     daemon, not one request. *)
  let payload = String.make 4_000_000 '[' in
  let dec = Protocol.decoder () in
  Protocol.decoder_feed dec (Protocol.encode_frame payload);
  match Protocol.decoder_next dec with
  | Ok (Some p) -> (
    Alcotest.(check int) "payload intact" (String.length payload) (String.length p);
    match Protocol.parse_envelope p with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "deeply nested garbage must not parse"
    | exception e ->
      Alcotest.failf "parse_envelope raised on deep nesting: %s"
        (Printexc.to_string e))
  | Ok None -> Alcotest.fail "complete frame not yielded"
  | Error e -> Alcotest.failf "legal frame poisoned the decoder: %s" e

(* --- envelopes and responses --- *)

let qos_full =
  {
    Protocol.deadline = Some 2.5;
    wall_budget = Some 1.25;
    growth_budget = Some 64;
    retries = 3;
    chaos =
      (match Harness.Pool.chaos_of_string "crash:0.25,seed:7" with
      | Ok c -> Some c
      | Error e -> Alcotest.failf "chaos spec: %s" e);
    telemetry = true;
  }

let roundtrip env =
  match Protocol.envelope_of_json (Protocol.envelope_to_json env) with
  | Ok env' -> env'
  | Error e ->
    Alcotest.failf "envelope %s failed roundtrip: %s"
      (Protocol.kind_name env.Protocol.req)
      e

let test_envelope_roundtrip () =
  let reqs =
    [
      Protocol.Compile
        {
          path = "t.c";
          source = sample_source;
          level = Opt.Driver.Jumps;
          machine = Ir.Machine.risc;
        };
      Protocol.Measure
        {
          path = "t.c";
          source = sample_source;
          input = "abc";
          machine = Ir.Machine.cisc;
        };
      Protocol.Lint
        {
          path = "t.c";
          source = sample_source;
          level = Opt.Driver.Loops;
          machine = Ir.Machine.cisc;
        };
      Protocol.Explain
        {
          path = "t.c";
          source = sample_source;
          level = Opt.Driver.Simple;
          machine = Ir.Machine.risc;
        };
      Protocol.Fuzz { seeds = 5; start = 11; max_steps = 1000 };
      Protocol.Status;
      Protocol.Ping;
      Protocol.Drain;
    ]
  in
  List.iteri
    (fun i req ->
      let env = { Protocol.id = i + 1; qos = qos_full; req } in
      let env' = roundtrip env in
      Alcotest.(check int) "id" env.Protocol.id env'.Protocol.id;
      Alcotest.(check string)
        "kind"
        (Protocol.kind_name env.Protocol.req)
        (Protocol.kind_name env'.Protocol.req);
      Alcotest.(check (option (float 1e-9)))
        "deadline" env.Protocol.qos.deadline env'.Protocol.qos.deadline;
      Alcotest.(check int) "retries" 3 env'.Protocol.qos.retries;
      Alcotest.(check bool) "telemetry" true env'.Protocol.qos.telemetry)
    reqs

let reject name payload =
  match Protocol.parse_envelope payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s must be rejected" name

let test_envelope_strictness () =
  reject "not json" "pong";
  reject "trailing garbage" "{\"id\":1,\"kind\":\"ping\"} trailing";
  reject "missing id" "{\"kind\":\"ping\"}";
  reject "zero id" "{\"id\":0,\"kind\":\"ping\"}";
  reject "negative id" "{\"id\":-3,\"kind\":\"ping\"}";
  reject "unknown kind" "{\"id\":1,\"kind\":\"transmogrify\"}";
  reject "compile without source"
    "{\"id\":1,\"kind\":\"compile\",\"path\":\"t.c\"}";
  reject "bad level"
    "{\"id\":1,\"kind\":\"compile\",\"path\":\"t.c\",\"source\":\"\",\"level\":\"mega\"}";
  reject "bad machine"
    "{\"id\":1,\"kind\":\"compile\",\"path\":\"t.c\",\"source\":\"\",\"machine\":\"vax\"}";
  reject "retries out of range"
    "{\"id\":1,\"kind\":\"ping\",\"qos\":{\"retries\":11}}";
  reject "negative deadline"
    "{\"id\":1,\"kind\":\"ping\",\"qos\":{\"deadline\":-1.0}}";
  reject "bad chaos spec"
    "{\"id\":1,\"kind\":\"ping\",\"qos\":{\"chaos\":\"sparks:0.5\"}}";
  reject "oversized source"
    (Printf.sprintf "{\"id\":1,\"kind\":\"compile\",\"path\":\"t.c\",\"source\":%s}"
       (Json.to_string (Json.Str (String.make (Protocol.max_frame / 2 + 1) 'x'))));
  (* Duplicate keys: strict parser keeps the document, [member] takes the
     first binding — the envelope id must be 1, not 2. *)
  match Protocol.parse_envelope "{\"id\":1,\"id\":2,\"kind\":\"ping\"}" with
  | Ok env -> Alcotest.(check int) "first id wins" 1 env.Protocol.id
  | Error e -> Alcotest.failf "duplicate-key envelope: %s" e

let test_response_roundtrip () =
  (* The Result payload is an opaque pre-rendered document: its bytes —
     including float formatting — must survive the wire untouched. *)
  let payload = "{\"miss_ratio\":0.123457,\"x\":1.000000}" in
  let rt r =
    match Protocol.parse_response (Json.to_string (Protocol.response_to_json r)) with
    | Ok r' -> r'
    | Error e -> Alcotest.failf "response roundtrip: %s" e
  in
  (match rt (Protocol.Result { id = 9; payload; elapsed_ms = 1.5 }) with
  | Protocol.Result { id = 9; payload = p; _ } ->
    Alcotest.(check string) "payload bytes survive" payload p
  | _ -> Alcotest.fail "result response shape");
  (match rt (Protocol.Telemetry { id = 4; line = "{\"ev\":\"pass_end\"}" }) with
  | Protocol.Telemetry { id = 4; line } ->
    Alcotest.(check string) "telemetry line" "{\"ev\":\"pass_end\"}" line
  | _ -> Alcotest.fail "telemetry response shape");
  List.iter
    (fun code ->
      let name = Protocol.error_code_name code in
      (match Protocol.error_code_of_name name with
      | Some c when c = code -> ()
      | _ -> Alcotest.failf "error code %s does not roundtrip" name);
      match rt (Protocol.Error_resp { id = 2; code; message = "m " ^ name }) with
      | Protocol.Error_resp { id = 2; code = c; message } when c = code ->
        Alcotest.(check string) "message" ("m " ^ name) message
      | _ -> Alcotest.failf "error response shape for %s" name)
    Protocol.
      [
        Overloaded; Draining; Bad_request; Crashed; Deadline; Runtime_error;
        Internal;
      ]

(* --- connection chaos --- *)

let test_conn_chaos () =
  (match Protocol.conn_chaos_of_string "disconnect" with
  | Ok c ->
    Alcotest.(check (float 1e-9)) "default rate" 0.1 c.Protocol.disconnect;
    Alcotest.(check int) "default seed" 1 c.Protocol.conn_seed
  | Error e -> Alcotest.failf "plain spec: %s" e);
  (match Protocol.conn_chaos_of_string "garbage:0.5,slowloris:0.2,seed:9" with
  | Ok c ->
    Alcotest.(check (float 1e-9)) "garbage rate" 0.5 c.Protocol.garbage;
    Alcotest.(check (float 1e-9)) "slowloris rate" 0.2 c.Protocol.slowloris;
    Alcotest.(check int) "seed" 9 c.Protocol.conn_seed
  | Error e -> Alcotest.failf "full spec: %s" e);
  List.iter
    (fun bad ->
      match Protocol.conn_chaos_of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S must be rejected" bad)
    [ ""; "bogus"; "disconnect:1.5"; "disconnect:-0.1"; "seed:x" ];
  (* The draw is a pure function of (seed, request index). *)
  let c =
    match Protocol.conn_chaos_of_string "disconnect:0.3,garbage:0.3,seed:5" with
    | Ok c -> c
    | Error e -> Alcotest.failf "spec: %s" e
  in
  let draws () = List.init 128 (fun i -> Protocol.conn_fault c ~req:i) in
  Alcotest.(check bool) "deterministic" true (draws () = draws ());
  let faults = List.filter Option.is_some (draws ()) in
  Alcotest.(check bool)
    "some faults at rate 0.6" true
    (List.length faults > 20 && List.length faults < 128);
  let quiet = { c with Protocol.disconnect = 0.; garbage = 0. } in
  Alcotest.(check bool)
    "zero rates draw nothing" true
    (List.for_all
       (fun i -> Protocol.conn_fault quiet ~req:i = None)
       (List.init 128 Fun.id));
  let always = { c with Protocol.disconnect = 1.0 } in
  Alcotest.(check bool)
    "rate 1.0 always fires" true
    (List.for_all
       (fun i -> Protocol.conn_fault always ~req:i = Some `Disconnect)
       (List.init 32 Fun.id))

(* --- the supervised service --- *)

let wait_outcome svc h =
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    Harness.Pool.Service.tick svc;
    match Harness.Pool.Service.poll svc h with
    | Some o -> o
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "service outcome not delivered within 20s";
      Unix.sleepf 0.002;
      go ()
  in
  go ()

let test_service () =
  let svc = Harness.Pool.Service.create ~jobs:2 () in
  (* Plain completion. *)
  let h = Harness.Pool.Service.submit svc (fun _ -> 21 * 2) in
  (match wait_outcome svc h with
  | Harness.Pool.Done v -> Alcotest.(check int) "done value" 42 v
  | _ -> Alcotest.fail "plain task must complete");
  (* A crash is isolated to its task and reported with its attempts. *)
  let h = Harness.Pool.Service.submit svc (fun _ -> failwith "boom") in
  (match wait_outcome svc h with
  | Harness.Pool.Crashed { attempts = 1; _ } -> ()
  | Harness.Pool.Crashed { attempts; _ } ->
    Alcotest.failf "crash after %d attempts (wanted 1)" attempts
  | _ -> Alcotest.fail "crashing task must report Crashed");
  (* Retries resurrect a flaky task; the service survives the crash. *)
  let tries = Atomic.make 0 in
  let h =
    Harness.Pool.Service.submit svc ~retries:2 (fun _ ->
        if Atomic.fetch_and_add tries 1 = 0 then failwith "flaky" else 7)
  in
  (match wait_outcome svc h with
  | Harness.Pool.Done v -> Alcotest.(check int) "retried value" 7 v
  | _ -> Alcotest.fail "flaky task must succeed on retry");
  (* A cooperative task past its deadline is cancelled and reported. *)
  let h =
    Harness.Pool.Service.submit svc ~deadline:0.05 (fun budget ->
        let rec spin () =
          Telemetry.Budget.check budget;
          Unix.sleepf 0.005;
          spin ()
        in
        spin ())
  in
  (match wait_outcome svc h with
  | Harness.Pool.Timed_out _ -> ()
  | Harness.Pool.Done _ -> Alcotest.fail "deadline task cannot finish"
  | Harness.Pool.Crashed { exn; _ } ->
    Alcotest.failf "deadline task crashed: %s" (Printexc.to_string exn));
  Alcotest.(check int) "nothing in flight" 0
    (Harness.Pool.Service.in_flight svc);
  Alcotest.(check int) "four submissions" 4
    (Harness.Pool.Service.submitted svc);
  Alcotest.(check bool) "workers join" true
    (Harness.Pool.Service.shutdown svc)

(* --- end to end --- *)

let test_socket = Printf.sprintf "/tmp/jrd-alcotest-%d.sock" (Unix.getpid ())

let connect_retry path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Client.connect path with
    | Ok c -> c
    | Error _ when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.02;
      go ()
    | Error e -> Alcotest.failf "cannot connect to test server: %s" e
  in
  go ()

let must_result name = function
  | Ok (payload, _ms) -> payload
  | Error (code, msg) ->
    Alcotest.failf "%s failed: %s: %s" name (Protocol.error_code_name code) msg

let compile_req =
  Protocol.Compile
    {
      path = "inline.c";
      source = sample_source;
      level = Opt.Driver.Jumps;
      machine = Ir.Machine.risc;
    }

let test_server_end_to_end () =
  let cfg =
    {
      (Server.default_config test_socket) with
      Server.jobs = 2;
      quiet = true;
      drain_deadline = 5.0;
    }
  in
  let server = Domain.spawn (fun () -> Server.serve cfg) in
  Fun.protect
    ~finally:(fun () -> try Unix.unlink test_socket with _ -> ())
    (fun () ->
      let c = connect_retry test_socket in
      (* Liveness. *)
      let pong = must_result "ping" (Client.request c Protocol.Ping) in
      Alcotest.(check string) "pong" "{\"pong\":true}" pong;
      (* Byte identity: the daemon's compile payload is exactly the
         in-process Ops rendering (the CLI's --stats-json bytes). *)
      let expected =
        match
          Ops.compile_payload ~level:Opt.Driver.Jumps
            ~machine:Ir.Machine.risc ~path:"inline.c" sample_source
        with
        | Ok j -> Json.to_string j
        | Error f -> Alcotest.failf "local compile: %s" f.Ops.diag.message
      in
      let got = must_result "compile" (Client.request c compile_req) in
      Alcotest.(check string) "compile payload byte-identical" expected got;
      (* Telemetry streaming: requesting it yields at least one JSONL
         line before the result. *)
      let lines = ref [] in
      let qos = { Protocol.default_qos with telemetry = true } in
      let got_t =
        must_result "compile+telemetry"
          (Client.request c ~qos
             ~on_telemetry:(fun l -> lines := l :: !lines)
             compile_req)
      in
      Alcotest.(check string) "telemetry does not perturb result" expected
        got_t;
      Alcotest.(check bool) "telemetry lines streamed" true (!lines <> []);
      List.iter
        (fun l ->
          match Json.parse l with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "telemetry line not JSON (%s): %s" e l)
        !lines;
      (* A runtime fault in the guest program is a typed error, not a
         server casualty. *)
      (match
         Client.request c
           (Protocol.Measure
              {
                path = "div.c";
                source = "int main() { return 1 / (1 - 1); }";
                input = "";
                machine = Ir.Machine.risc;
              })
       with
      | Error (Protocol.Runtime_error, _) -> ()
      | Error (code, m) ->
        Alcotest.failf "guest fault miscoded %s: %s"
          (Protocol.error_code_name code)
          m
      | Ok _ -> Alcotest.fail "dividing by zero cannot succeed");
      (* Worker chaos at rate 1.0 with no retries: the request crashes,
         the server survives and answers the next request. *)
      let all_crash =
        match Harness.Pool.chaos_of_string "crash:1.0,seed:3" with
        | Ok ch -> ch
        | Error e -> Alcotest.failf "chaos: %s" e
      in
      (match
         Client.request c
           ~qos:{ Protocol.default_qos with chaos = Some all_crash }
           compile_req
       with
      | Error (Protocol.Crashed, _) -> ()
      | Error (code, m) ->
        Alcotest.failf "chaos crash miscoded %s: %s"
          (Protocol.error_code_name code)
          m
      | Ok _ -> Alcotest.fail "crash:1.0 with no retries cannot succeed");
      let after =
        must_result "compile after crash" (Client.request c compile_req)
      in
      Alcotest.(check string) "server survived the crash" expected after;
      (* ... and with retries, chaos that always crashes the first
         attempt still converges to the identical payload. *)
      let flaky =
        match Harness.Pool.chaos_of_string "crash:0.4,seed:11" with
        | Ok ch -> ch
        | Error e -> Alcotest.failf "chaos: %s" e
      in
      let retried =
        must_result "compile under retried chaos"
          (Client.request c
             ~qos:
               { Protocol.default_qos with chaos = Some flaky; retries = 8 }
             compile_req)
      in
      Alcotest.(check string) "retried chaos byte-identical" expected retried;
      Client.close c;
      (* Connection-level chaos: faults land on throwaway connections,
         results stay byte-identical. *)
      let conn_chaos =
        match
          Protocol.conn_chaos_of_string
            "disconnect:0.4,slowloris:0.3,garbage:0.3,seed:2"
        with
        | Ok cc -> cc
        | Error e -> Alcotest.failf "conn chaos: %s" e
      in
      (match Client.connect ~chaos:conn_chaos test_socket with
      | Error e -> Alcotest.failf "chaos connect: %s" e
      | Ok cc ->
        for i = 1 to 4 do
          let p =
            must_result
              (Printf.sprintf "chaos request %d" i)
              (Client.request cc compile_req)
          in
          Alcotest.(check string) "chaos-run payload byte-identical" expected
            p
        done;
        Client.close cc);
      (* An unparseable envelope is answered (id 0, bad-request), then
         the connection is dropped; the server keeps serving. *)
      let raw = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.connect raw (ADDR_UNIX test_socket);
      let junk = Protocol.encode_frame "]junk[" in
      ignore (Unix.write_substring raw junk 0 (String.length junk));
      let dec = Protocol.decoder () in
      let buf = Bytes.create 4096 in
      let rec read_resp () =
        match Protocol.decoder_next dec with
        | Ok (Some p) -> p
        | Ok None ->
          let n = Unix.read raw buf 0 (Bytes.length buf) in
          if n = 0 then Alcotest.fail "server closed before answering junk";
          Protocol.decoder_feed dec (Bytes.sub_string buf 0 n);
          read_resp ()
        | Error e -> Alcotest.failf "client decoder poisoned: %s" e
      in
      (match Protocol.parse_response (read_resp ()) with
      | Ok (Protocol.Error_resp { id = 0; code = Protocol.Bad_request; _ }) ->
        ()
      | Ok _ -> Alcotest.fail "junk envelope must yield bad-request id 0"
      | Error e -> Alcotest.failf "junk response unparseable: %s" e);
      Unix.close raw;
      (* Status reflects the traffic so far; then drain shuts the server
         down cleanly. *)
      let c2 = connect_retry test_socket in
      let status = must_result "status" (Client.request c2 Protocol.Status) in
      (match Json.parse status with
      | Ok doc ->
        Alcotest.(check (option bool))
          "not draining" (Some false)
          (Option.bind (Json.member "draining" doc) Json.get_bool);
        let metric name =
          match Json.member "metrics" doc with
          | Some m -> Option.bind (Json.member name m) Json.get_float
          | None -> None
        in
        (match metric "daemon.admitted" with
        | Some n -> Alcotest.(check bool) "admissions counted" true (n >= 6.0)
        | None -> Alcotest.fail "no daemon.admitted metric");
        (match metric "daemon.errors.crashed" with
        | Some n ->
          Alcotest.(check bool) "crash rejection counted" true (n >= 1.0)
        | None -> Alcotest.fail "no daemon.errors.crashed metric")
      | Error e -> Alcotest.failf "status payload unparseable: %s" e);
      ignore (must_result "drain" (Client.request c2 Protocol.Drain));
      Client.close c2;
      let res = Domain.join server in
      Alcotest.(check bool) "clean drain" true res.Server.clean;
      Alcotest.(check int) "nothing force-stopped" 0 res.Server.force_stopped)

let tests =
  ( "daemon",
    [
      Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
      Alcotest.test_case "decoder poisoning" `Quick test_decoder_poisoning;
      Alcotest.test_case "decoder fuzz" `Quick test_decoder_fuzz;
      Alcotest.test_case "decoder deep nesting" `Quick
        test_decoder_deep_nesting;
      Alcotest.test_case "envelope roundtrip" `Quick test_envelope_roundtrip;
      Alcotest.test_case "envelope strictness" `Quick
        test_envelope_strictness;
      Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
      Alcotest.test_case "connection chaos" `Quick test_conn_chaos;
      Alcotest.test_case "service lifecycle" `Quick test_service;
      Alcotest.test_case "server end to end" `Quick test_server_end_to_end;
    ] )
