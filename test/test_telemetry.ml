(* Telemetry invariants: pass deltas reconcile with the compiled code,
   every rollback names a reason, the null sink emits nothing, counters
   accumulate only on enabled logs. *)

let wc () = Option.get (Programs.Suite.find "wc")

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let compile_logged ?(machine = Ir.Machine.cisc)
    ?(opts = { Opt.Driver.default_options with level = Opt.Driver.Jumps }) src =
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let prog = Opt.Driver.compile ~log opts machine src in
  (log, prog)

(* (a) Per-function Pass_end deltas chain (pass k's instrs_after is pass
   k+1's instrs_before) and land exactly on the final function size. *)
let test_deltas_reconcile () =
  let log, prog = compile_logged (wc ()).source in
  let events = Telemetry.Log.events log in
  List.iter
    (fun f ->
      let fname = Flow.Func.name f in
      let ends =
        List.filter_map
          (function
            | Telemetry.Log.Pass_end e when String.equal e.func fname ->
              Some e.delta
            | _ -> None)
          events
      in
      Alcotest.(check bool)
        (fname ^ " has pass events") true
        (List.length ends > 0);
      let first = List.hd ends in
      let rec chain prev = function
        | [] -> prev
        | (d : Telemetry.Log.delta) :: rest ->
          Alcotest.(check int)
            (fname ^ " deltas chain")
            prev d.instrs_before;
          chain d.instrs_after rest
      in
      let final = chain first.instrs_before ends in
      (* The sum of per-pass deltas is the end-to-end change... *)
      let summed =
        List.fold_left
          (fun acc (d : Telemetry.Log.delta) ->
            acc + d.instrs_after - d.instrs_before)
          first.instrs_before ends
      in
      Alcotest.(check int) (fname ^ " delta sum = final") final summed;
      (* ...and the final count is the function the compiler returned. *)
      Alcotest.(check int)
        (fname ^ " final instrs")
        (Flow.Func.num_instrs f) final)
    prog.Flow.Prog.funcs

(* (b) Every Replication_rolled_back event carries a nameable reason.  A
   max_rtls of 0 filters every candidate, forcing Size_cap rollbacks. *)
let test_rollback_reasons () =
  let opts =
    {
      Opt.Driver.default_options with
      level = Opt.Driver.Jumps;
      max_rtls = Some 0;
    }
  in
  let log, _ = compile_logged ~opts (wc ()).source in
  let rollbacks =
    List.filter_map
      (function
        | Telemetry.Log.Replication_rolled_back { reason; jump_from; jump_to; _ }
          ->
          Some (reason, jump_from, jump_to)
        | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check bool) "capped pipeline rolls back" true (rollbacks <> []);
  List.iter
    (fun (reason, jump_from, jump_to) ->
      Alcotest.(check bool)
        "reason renders" true
        (String.length (Telemetry.Log.reason_to_string reason) > 0);
      Alcotest.(check bool) "labels present" true
        (jump_from <> "" && jump_to <> ""))
    rollbacks;
  (* With every candidate over the cap, the rejections are all Size_cap. *)
  Alcotest.(check bool) "cap rollbacks are size-cap" true
    (List.exists (fun (r, _, _) -> r = Telemetry.Log.Size_cap) rollbacks)

(* (c) The null sink emits nothing: same compile, zero events, and the
   thunks are never forced. *)
let test_null_sink () =
  let forced = ref 0 in
  Telemetry.Log.emit Telemetry.Log.null (fun () ->
      incr forced;
      Telemetry.Log.Warning { message = "never" });
  let _ =
    Opt.Driver.compile ~log:Telemetry.Log.null
      { Opt.Driver.default_options with level = Opt.Driver.Jumps }
      Ir.Machine.cisc (wc ()).source
  in
  Alcotest.(check int) "no thunks forced" 0 !forced;
  Alcotest.(check int) "no events emitted" 0
    (Telemetry.Log.emitted Telemetry.Log.null);
  Alcotest.(check int) "no counters" 0
    (Telemetry.Counter.get Telemetry.Log.null "measure.runs")

(* Memory-sink bookkeeping: emitted = stored, in order. *)
let test_memory_sink () =
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  for i = 1 to 5 do
    Telemetry.Log.emit log (fun () ->
        Telemetry.Log.Sim_progress { instrs = i })
  done;
  Alcotest.(check int) "emitted" 5 (Telemetry.Log.emitted log);
  let instrs =
    List.filter_map
      (function Telemetry.Log.Sim_progress { instrs } -> Some instrs | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] instrs

(* Counters accumulate on enabled logs and dump as events. *)
let test_counters () =
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  Telemetry.Counter.incr log "a";
  Telemetry.Counter.add log "a" 2;
  Telemetry.Counter.incr log "b";
  Alcotest.(check int) "a" 3 (Telemetry.Counter.get log "a");
  Alcotest.(check (list (pair string int)))
    "all sorted"
    [ ("a", 3); ("b", 1) ]
    (Telemetry.Counter.all log);
  Telemetry.Counter.dump log;
  let dumped =
    List.filter_map
      (function
        | Telemetry.Log.Counter_event { name; value } -> Some (name, value)
        | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check (list (pair string int))) "dumped" [ ("a", 3); ("b", 1) ] dumped

(* Measure threads the log: counters move and a mismatch warns. *)
let test_measure_telemetry () =
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let b = wc () in
  let _ =
    Harness.Measure.run ~log
      ~opts:{ Opt.Driver.default_options with level = Opt.Driver.Simple }
      b Opt.Driver.Simple Ir.Machine.cisc
  in
  Alcotest.(check int) "one measured run" 1
    (Telemetry.Counter.get log "measure.runs");
  Alcotest.(check bool) "static counter moved" true
    (Telemetry.Counter.get log "measure.static_instrs" > 0);
  (* A wrong expectation must surface as a Warning event. *)
  let _ =
    Harness.Measure.run ~log
      ~opts:{ Opt.Driver.default_options with level = Opt.Driver.Simple }
      { b with expected_output = "not what wc prints" }
      Opt.Driver.Simple Ir.Machine.cisc
  in
  let warnings =
    List.filter_map
      (function Telemetry.Log.Warning { message } -> Some message | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check bool) "mismatch warned" true
    (List.exists (fun m -> contains m "MISMATCH") warnings)

(* explain names a decision for every unconditional jump left in place. *)
let test_explain_covers_all_jumps () =
  let prog =
    Opt.Driver.compile
      { Opt.Driver.default_options with level = Opt.Driver.Simple }
      Ir.Machine.cisc (wc ()).source
  in
  List.iter
    (fun f ->
      let jumps = Replication.Jumps.uncond_jumps f in
      let decisions = Replication.Jumps.explain f in
      Alcotest.(check int)
        (Flow.Func.name f ^ " every jump decided")
        (List.length jumps) (List.length decisions);
      List.iter
        (fun (_, d) ->
          Alcotest.(check bool) "decision renders" true
            (String.length (Replication.Jumps.decision_to_string d) > 0))
        decisions)
    prog.Flow.Prog.funcs

(* JSONL lines look like single JSON objects with the event tag. *)
let test_jsonl_shape () =
  let ev =
    Telemetry.Log.Replication_rolled_back
      {
        func = "f";
        jump_from = "L1";
        jump_to = "L\"2";
        reason = Telemetry.Log.Irreducible;
      }
  in
  let line = Telemetry.Log.event_to_json ~seq:7 ~t_ms:1.5 ev in
  Alcotest.(check bool) "object" true
    (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}');
  let has affix = contains line affix in
  Alcotest.(check bool) "tagged" true (has "\"ev\":\"replication_rolled_back\"");
  Alcotest.(check bool) "escaped" true (has "L\\\"2");
  Alcotest.(check bool) "reason" true (has "\"reason\":\"irreducible\"");
  Alcotest.(check bool) "no raw newline" true
    (not (String.contains line '\n'))

let tests =
  ( "telemetry",
    [
      Alcotest.test_case "pass deltas reconcile" `Quick test_deltas_reconcile;
      Alcotest.test_case "rollback reasons" `Quick test_rollback_reasons;
      Alcotest.test_case "null sink" `Quick test_null_sink;
      Alcotest.test_case "memory sink" `Quick test_memory_sink;
      Alcotest.test_case "counters" `Quick test_counters;
      Alcotest.test_case "measure telemetry" `Quick test_measure_telemetry;
      Alcotest.test_case "explain covers all jumps" `Quick
        test_explain_covers_all_jumps;
      Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
    ] )
