(* Telemetry invariants: pass deltas reconcile with the compiled code,
   every rollback names a reason, the null sink emits nothing, counters
   accumulate only on enabled logs. *)

let wc () = Option.get (Programs.Suite.find "wc")

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let compile_logged ?(machine = Ir.Machine.cisc)
    ?(opts = { Opt.Driver.default_options with level = Opt.Driver.Jumps }) src =
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let prog = Opt.Driver.compile ~log opts machine src in
  (log, prog)

(* (a) Per-function Pass_end deltas chain (pass k's instrs_after is pass
   k+1's instrs_before) and land exactly on the final function size. *)
let test_deltas_reconcile () =
  let log, prog = compile_logged (wc ()).source in
  let events = Telemetry.Log.events log in
  List.iter
    (fun f ->
      let fname = Flow.Func.name f in
      let ends =
        List.filter_map
          (function
            | Telemetry.Log.Pass_end e when String.equal e.func fname ->
              Some e.delta
            | _ -> None)
          events
      in
      Alcotest.(check bool)
        (fname ^ " has pass events") true
        (List.length ends > 0);
      let first = List.hd ends in
      let rec chain prev = function
        | [] -> prev
        | (d : Telemetry.Log.delta) :: rest ->
          Alcotest.(check int)
            (fname ^ " deltas chain")
            prev d.instrs_before;
          chain d.instrs_after rest
      in
      let final = chain first.instrs_before ends in
      (* The sum of per-pass deltas is the end-to-end change... *)
      let summed =
        List.fold_left
          (fun acc (d : Telemetry.Log.delta) ->
            acc + d.instrs_after - d.instrs_before)
          first.instrs_before ends
      in
      Alcotest.(check int) (fname ^ " delta sum = final") final summed;
      (* ...and the final count is the function the compiler returned. *)
      Alcotest.(check int)
        (fname ^ " final instrs")
        (Flow.Func.num_instrs f) final)
    prog.Flow.Prog.funcs

(* (b) Every Replication_rolled_back event carries a nameable reason.  A
   max_rtls of 0 filters every candidate, forcing Size_cap rollbacks. *)
let test_rollback_reasons () =
  let opts =
    {
      Opt.Driver.default_options with
      level = Opt.Driver.Jumps;
      max_rtls = Some 0;
    }
  in
  let log, _ = compile_logged ~opts (wc ()).source in
  let rollbacks =
    List.filter_map
      (function
        | Telemetry.Log.Replication_rolled_back { reason; jump_from; jump_to; _ }
          ->
          Some (reason, jump_from, jump_to)
        | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check bool) "capped pipeline rolls back" true (rollbacks <> []);
  List.iter
    (fun (reason, jump_from, jump_to) ->
      Alcotest.(check bool)
        "reason renders" true
        (String.length (Telemetry.Log.reason_to_string reason) > 0);
      Alcotest.(check bool) "labels present" true
        (jump_from <> "" && jump_to <> ""))
    rollbacks;
  (* With every candidate over the cap, the rejections are all Size_cap. *)
  Alcotest.(check bool) "cap rollbacks are size-cap" true
    (List.exists (fun (r, _, _) -> r = Telemetry.Log.Size_cap) rollbacks)

(* (c) The null sink emits nothing: same compile, zero events, and the
   thunks are never forced. *)
let test_null_sink () =
  let forced = ref 0 in
  Telemetry.Log.emit Telemetry.Log.null (fun () ->
      incr forced;
      Telemetry.Log.Warning { message = "never" });
  let _ =
    Opt.Driver.compile ~log:Telemetry.Log.null
      { Opt.Driver.default_options with level = Opt.Driver.Jumps }
      Ir.Machine.cisc (wc ()).source
  in
  Alcotest.(check int) "no thunks forced" 0 !forced;
  Alcotest.(check int) "no events emitted" 0
    (Telemetry.Log.emitted Telemetry.Log.null);
  Alcotest.(check int) "no counters" 0
    (Telemetry.Counter.get Telemetry.Log.null "measure.runs")

(* Memory-sink bookkeeping: emitted = stored, in order. *)
let test_memory_sink () =
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  for i = 1 to 5 do
    Telemetry.Log.emit log (fun () ->
        Telemetry.Log.Sim_progress { instrs = i })
  done;
  Alcotest.(check int) "emitted" 5 (Telemetry.Log.emitted log);
  let instrs =
    List.filter_map
      (function Telemetry.Log.Sim_progress { instrs } -> Some instrs | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] instrs

(* Counters accumulate on enabled logs and dump as events. *)
let test_counters () =
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  Telemetry.Counter.incr log "a";
  Telemetry.Counter.add log "a" 2;
  Telemetry.Counter.incr log "b";
  Alcotest.(check int) "a" 3 (Telemetry.Counter.get log "a");
  Alcotest.(check (list (pair string int)))
    "all sorted"
    [ ("a", 3); ("b", 1) ]
    (Telemetry.Counter.all log);
  Telemetry.Counter.dump log;
  let dumped =
    List.filter_map
      (function
        | Telemetry.Log.Counter_event { name; value } -> Some (name, value)
        | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check (list (pair string int))) "dumped" [ ("a", 3); ("b", 1) ] dumped

(* Measure threads the log: counters move and a mismatch warns. *)
let test_measure_telemetry () =
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let b = wc () in
  let _ =
    Harness.Measure.run ~log
      ~opts:{ Opt.Driver.default_options with level = Opt.Driver.Simple }
      b Opt.Driver.Simple Ir.Machine.cisc
  in
  Alcotest.(check int) "one measured run" 1
    (Telemetry.Counter.get log "measure.runs");
  Alcotest.(check bool) "static counter moved" true
    (Telemetry.Counter.get log "measure.static_instrs" > 0);
  (* A wrong expectation must surface as a Warning event. *)
  let _ =
    Harness.Measure.run ~log
      ~opts:{ Opt.Driver.default_options with level = Opt.Driver.Simple }
      { b with expected_output = "not what wc prints" }
      Opt.Driver.Simple Ir.Machine.cisc
  in
  let warnings =
    List.filter_map
      (function Telemetry.Log.Warning { message } -> Some message | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check bool) "mismatch warned" true
    (List.exists (fun m -> contains m "MISMATCH") warnings)

(* explain names a decision for every unconditional jump left in place. *)
let test_explain_covers_all_jumps () =
  let prog =
    Opt.Driver.compile
      { Opt.Driver.default_options with level = Opt.Driver.Simple }
      Ir.Machine.cisc (wc ()).source
  in
  List.iter
    (fun f ->
      let jumps = Replication.Jumps.uncond_jumps f in
      let decisions = Replication.Jumps.explain f in
      Alcotest.(check int)
        (Flow.Func.name f ^ " every jump decided")
        (List.length jumps) (List.length decisions);
      List.iter
        (fun (_, d) ->
          Alcotest.(check bool) "decision renders" true
            (String.length (Replication.Jumps.decision_to_string d) > 0))
        decisions)
    prog.Flow.Prog.funcs

(* JSONL lines look like single JSON objects with the event tag. *)
let test_jsonl_shape () =
  let ev =
    Telemetry.Log.Replication_rolled_back
      {
        func = "f";
        jump_from = "L1";
        jump_to = "L\"2";
        reason = Telemetry.Log.Irreducible;
      }
  in
  let line = Telemetry.Log.event_to_json ~seq:7 ~t_ms:1.5 ev in
  Alcotest.(check bool) "object" true
    (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}');
  let has affix = contains line affix in
  Alcotest.(check bool) "tagged" true (has "\"ev\":\"replication_rolled_back\"");
  Alcotest.(check bool) "escaped" true (has "L\\\"2");
  Alcotest.(check bool) "reason" true (has "\"reason\":\"irreducible\"");
  Alcotest.(check bool) "no raw newline" true
    (not (String.contains line '\n'))

(* --- the metrics registry (observability v2) --- *)

module Metrics = Telemetry.Metrics
module Json = Telemetry.Json
module Trace = Telemetry.Trace
module Profiler = Telemetry.Profiler

(* Bucket arithmetic: values at, below and above the edges land where the
   documentation says — first bucket with [v <= edge], overflow past the
   last edge. *)
let test_histogram_buckets () =
  let edges = [| 1.0; 3.0; 10.0 |] in
  let idx v = Metrics.bucket_index edges v in
  Alcotest.(check int) "below first edge" 0 (idx 0.5);
  Alcotest.(check int) "exactly on edge counts in that bucket" 0 (idx 1.0);
  Alcotest.(check int) "between edges" 1 (idx 2.0);
  Alcotest.(check int) "on middle edge" 1 (idx 3.0);
  Alcotest.(check int) "last in-range bucket" 2 (idx 10.0);
  Alcotest.(check int) "overflow bucket" 3 (idx 10.0001);
  Alcotest.(check int) "overflow far out" 3 (idx 1e12);
  (* Standard layouts are strictly increasing (a histogram with unsorted
     edges silently miscounts). *)
  List.iter
    (fun (name, edges) ->
      let ok = ref true in
      Array.iteri
        (fun i e -> if i > 0 && e <= edges.(i - 1) then ok := false)
        edges;
      Alcotest.(check bool) (name ^ " strictly increasing") true !ok)
    [
      ("time_ms", Metrics.Buckets.time_ms);
      ("instrs", Metrics.Buckets.instrs);
      ("pow2", Metrics.Buckets.pow2 ~lo:0 ~hi:8);
    ];
  (* Observations distribute into counts and the sum/count accumulate. *)
  let m = Metrics.create () in
  List.iter (Metrics.observe m "h" ~buckets:edges) [ 0.5; 2.0; 2.5; 99.0 ];
  (match Metrics.snapshot m with
  | [ ("h", Metrics.VHistogram { edges = e; counts; sum; count }) ] ->
    Alcotest.(check int) "edges kept" 3 (Array.length e);
    Alcotest.(check (list int)) "counts" [ 1; 2; 0; 1 ] (Array.to_list counts);
    Alcotest.(check int) "count" 4 count;
    Alcotest.(check (float 1e-9)) "sum" 104.0 sum
  | _ -> Alcotest.fail "expected one histogram in the snapshot")

(* Null registry: no-ops, empty reads, and no crosstalk with live ones. *)
let test_metrics_null () =
  Metrics.incr Metrics.null "x";
  Metrics.set Metrics.null "g" 3.0;
  Metrics.observe Metrics.null "h" ~buckets:[| 1.0 |] 5.0;
  Alcotest.(check bool) "disabled" false (Metrics.enabled Metrics.null);
  Alcotest.(check int) "no counter" 0 (Metrics.counter_value Metrics.null "x");
  Alcotest.(check int) "empty snapshot" 0
    (List.length (Metrics.snapshot Metrics.null))

(* Sharded merge = sequential: the pool's determinism contract at the
   registry level.  Updates split across shards then merged in order must
   equal the same updates applied to one registry. *)
let test_metrics_merge_determinism () =
  let edges = Metrics.Buckets.pow2 ~lo:0 ~hi:4 in
  let apply m (kind, name, v) =
    match kind with
    | `C -> Metrics.add m name (int_of_float v)
    | `G -> Metrics.set m name v
    | `H -> Metrics.observe m name ~buckets:edges v
  in
  (* Counters and histograms commute so any sharding works; a gauge is
     last-merge-wins, so the discipline is that one shard owns it (here
     both depth writes land on shard 2 under the round-robin). *)
  let updates =
    [
      (`C, "tasks", 3.0); (`H, "lat", 0.5); (`G, "depth", 2.0);
      (`C, "tasks", 1.0); (`H, "lat", 7.0); (`C, "retries", 2.0);
      (`H, "lat", 99.0); (`C, "tasks", 4.0); (`G, "depth", 5.0);
    ]
  in
  let sequential = Metrics.create () in
  List.iter (apply sequential) updates;
  (* Shard round-robin over 3 "workers", merge back in order. *)
  let shards = Array.init 3 (fun _ -> Metrics.create ()) in
  List.iteri (fun i u -> apply shards.(i mod 3) u) updates;
  let merged = Metrics.create () in
  Array.iter (fun s -> Metrics.merge ~into:merged s) shards;
  Alcotest.(check (list (pair string int)))
    "counters equal" (Metrics.counters sequential) (Metrics.counters merged);
  Alcotest.(check string) "full snapshots equal"
    (Json.to_string (Metrics.to_json sequential))
    (Json.to_string (Metrics.to_json merged));
  (* Type clashes are programming errors, loudly. *)
  (match Metrics.add merged "depth" 1 with
  | () -> Alcotest.fail "counter update on a gauge should raise"
  | exception Invalid_argument _ -> ())

(* The JSON emitted by the trace collector is well-formed (our own strict
   parser accepts it) and structurally what Perfetto expects. *)
let test_trace_json () =
  let t = Trace.create () in
  Trace.process_name t "test";
  Trace.thread_name t ~tid:0 "supervisor";
  Trace.thread_name t ~tid:1 "worker-1";
  let ts = Trace.now_us t in
  Trace.complete t ~tid:1 ~name:"task \"quoted\"" ~ts_us:ts ~dur_us:42.5
    ~args:[ ("attempt", Json.Int 1) ] ();
  Trace.instant t ~tid:0 ~cat:"chaos" "chaos-crash";
  (let v = Trace.with_span t ~tid:1 "spanned" (fun () -> 7) in
   Alcotest.(check int) "with_span returns" 7 v);
  (match Trace.with_span t ~tid:1 "raising" (fun () -> raise Exit) with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Exit -> ());
  Alcotest.(check int) "all recorded" 7 (Trace.events t);
  let s = Json.to_string (Trace.to_json t) in
  match Json.parse s with
  | Error e -> Alcotest.fail ("trace JSON does not re-parse: " ^ e)
  | Ok doc ->
    Alcotest.(check (option string))
      "displayTimeUnit" (Some "ms")
      (Option.bind (Json.member "displayTimeUnit" doc) Json.get_string);
    let evs =
      Option.get (Option.bind (Json.member "traceEvents" doc) Json.to_list)
    in
    Alcotest.(check int) "seven events" 7 (List.length evs);
    let field name ev = Option.bind (Json.member name ev) Json.get_string in
    let phases = List.filter_map (field "ph") evs in
    Alcotest.(check int) "metadata events" 3
      (List.length (List.filter (String.equal "M") phases));
    Alcotest.(check int) "complete spans" 3
      (List.length (List.filter (String.equal "X") phases));
    Alcotest.(check int) "instants" 1
      (List.length (List.filter (String.equal "i") phases));
    (* Sorted by timestamp, every event stamped with pid/tid/ts. *)
    let ts_of ev =
      Option.get (Option.bind (Json.member "ts" ev) Json.get_float)
    in
    let stamps = List.map ts_of evs in
    Alcotest.(check bool) "sorted by ts" true
      (List.sort compare stamps = stamps);
    List.iter
      (fun ev ->
        Alcotest.(check bool) "pid present" true
          (Json.member "pid" ev <> None);
        Alcotest.(check bool) "tid present" true
          (Json.member "tid" ev <> None))
      evs

(* The shared JSON value: renderer/parser round-trip, Raw splicing, and
   escape corners. *)
let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\tt");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("a", Json.Arr [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  let s = Json.to_string doc in
  (match Json.parse s with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check string) "print/parse/print fixpoint" s
      (Json.to_string back));
  (* Raw splices verbatim — the legacy byte-compat bridge. *)
  Alcotest.(check string) "raw spliced"
    "{\"m\":{\"k\":1}}"
    (Json.to_string (Json.Obj [ ("m", Json.Raw "{\"k\":1}") ]));
  (* Malformed inputs are rejected, not mangled. *)
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.fail ("accepted malformed: " ^ bad)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ]

let astring_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Strict-parser edges: truncation at every prefix, trailing garbage,
   duplicate keys, and deep nesting all land in defined behavior. *)
let test_json_strict_edges () =
  let doc = "{\"a\":[1,2.5,\"x\\n\"],\"b\":{\"c\":null,\"d\":false}}" in
  (* Every proper prefix of a valid document must be an [Error] (no
     prefix of this one happens to be a complete document). *)
  for i = 0 to String.length doc - 1 do
    match Json.parse (String.sub doc 0 i) with
    | Ok _ -> Alcotest.failf "accepted truncation at %d: %s" i (String.sub doc 0 i)
    | Error _ -> ()
  done;
  (match Json.parse doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected the full document: %s" e);
  (* One document per parse: anything after the value is an error, and
     the offset in the message points past the value. *)
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted trailing garbage: %s" bad
      | Error e ->
        Alcotest.(check bool)
          ("trailing diagnosis for " ^ bad)
          true
          (astring_contains e "trailing"))
    [ "{} {}"; "null null"; "[1] 2"; "42 trailing"; "\"s\"x" ];
  (* Duplicate object keys: the parser keeps the document; [member]
     resolves to the first binding. *)
  (match Json.parse "{\"k\":1,\"k\":2,\"other\":3}" with
  | Ok v ->
    Alcotest.(check (option int))
      "first binding wins" (Some 1)
      (Option.bind (Json.member "k" v) Json.get_int)
  | Error e -> Alcotest.failf "rejected duplicate keys: %s" e);
  (* Deep nesting parses and round-trips up to [max_depth]; past it the
     parser answers [Error] instead of recursing toward the stack
     limit. *)
  let depth = 2000 in
  assert (depth <= Json.max_depth);
  let deep =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "7"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  (match Json.parse deep with
  | Ok v ->
    let rec unwrap n v =
      match v with
      | Json.Arr [ inner ] -> unwrap (n + 1) inner
      | Json.Int 7 -> n
      | _ -> Alcotest.fail "deep value mangled"
    in
    Alcotest.(check int) "depth preserved" depth (unwrap 0 v);
    Alcotest.(check string) "deep round-trip" deep (Json.to_string v)
  | Error e -> Alcotest.failf "rejected depth-%d nesting: %s" depth e);
  (* An unbalanced deep document is an error, not a crash. *)
  (match Json.parse (String.concat "" (List.init depth (fun _ -> "["))) with
  | Ok _ -> Alcotest.fail "accepted unbalanced nesting"
  | Error _ -> ());
  (* One level past the cap: a balanced document is rejected with the
     depth diagnostic, not parsed. *)
  let over = Json.max_depth + 1 in
  let capped =
    String.make over '[' ^ "7" ^ String.make over ']'
  in
  (match Json.parse capped with
  | Ok _ -> Alcotest.failf "accepted depth-%d nesting past the cap" over
  | Error e ->
    Alcotest.(check bool)
      "depth diagnosis" true
      (astring_contains e "nesting"));
  (* The attack shape from the wire: millions of '[' in one document
     (well under the daemon's 16MB frame cap) must come back as [Error],
     never [Stack_overflow]. *)
  match Json.parse (String.make 2_000_000 '[') with
  | Ok _ -> Alcotest.fail "accepted a 2M-deep document"
  | Error _ -> ()

(* Profiler shards fold like the registry: merged aggregates equal the
   single-table run, calls/wall/alloc summing. *)
let test_profiler_merge () =
  let feed p =
    Profiler.record_pass p ~func:"main" ~pass:"cse" ~wall_ms:1.0 ~alloc:10.0;
    Profiler.record_pass p ~func:"main" ~pass:"cse" ~wall_ms:2.0 ~alloc:5.0;
    Profiler.record_pass p ~func:"wc" ~pass:"replicate" ~wall_ms:5.0
      ~alloc:100.0;
    Profiler.record_run p ~run:"wc/JUMPS/risc" ~fuel:1000 ~interp_ms:3.0
      ~cache_ms:0.5
  in
  let whole = Profiler.create () in
  feed whole;
  let a = Profiler.create () and b = Profiler.create () in
  Profiler.record_pass a ~func:"main" ~pass:"cse" ~wall_ms:1.0 ~alloc:10.0;
  Profiler.record_pass b ~func:"main" ~pass:"cse" ~wall_ms:2.0 ~alloc:5.0;
  Profiler.record_pass b ~func:"wc" ~pass:"replicate" ~wall_ms:5.0 ~alloc:100.0;
  Profiler.record_run b ~run:"wc/JUMPS/risc" ~fuel:1000 ~interp_ms:3.0
    ~cache_ms:0.5;
  let merged = Profiler.create () in
  Profiler.merge ~into:merged a;
  Profiler.merge ~into:merged b;
  Alcotest.(check string) "merged = sequential"
    (Json.to_string (Profiler.to_json whole))
    (Json.to_string (Profiler.to_json merged));
  (* Hottest-first ordering and by-pass aggregation. *)
  (match Profiler.pass_rows merged with
  | { Profiler.p_func = "wc"; p_pass = "replicate"; p_calls = 1; _ } :: _ -> ()
  | _ -> Alcotest.fail "hottest (function x pass) row first");
  (match Profiler.by_pass merged with
  | first :: _ ->
    Alcotest.(check string) "hottest pass" "replicate" first.Profiler.p_pass;
    Alcotest.(check string) "aggregate has no func" "" first.Profiler.p_func
  | [] -> Alcotest.fail "no by-pass rows");
  (* Null profiler records nothing. *)
  Profiler.record_pass Profiler.null ~func:"f" ~pass:"p" ~wall_ms:1.0
    ~alloc:1.0;
  Alcotest.(check int) "null stays empty" 0
    (List.length (Profiler.pass_rows Profiler.null))

let tests =
  ( "telemetry",
    [
      Alcotest.test_case "pass deltas reconcile" `Quick test_deltas_reconcile;
      Alcotest.test_case "rollback reasons" `Quick test_rollback_reasons;
      Alcotest.test_case "null sink" `Quick test_null_sink;
      Alcotest.test_case "memory sink" `Quick test_memory_sink;
      Alcotest.test_case "counters" `Quick test_counters;
      Alcotest.test_case "measure telemetry" `Quick test_measure_telemetry;
      Alcotest.test_case "explain covers all jumps" `Quick
        test_explain_covers_all_jumps;
      Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
      Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "metrics null" `Quick test_metrics_null;
      Alcotest.test_case "metrics merge determinism" `Quick
        test_metrics_merge_determinism;
      Alcotest.test_case "trace json" `Quick test_trace_json;
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json strict edges" `Quick test_json_strict_edges;
      Alcotest.test_case "profiler merge" `Quick test_profiler_merge;
    ] )
