(* Direct-mapped instruction-cache simulator. *)

let config ?(kb = 1) ?(cs = false) ?(assoc = 1) () =
  { Icache.size_bytes = kb * 1024; line_bytes = 16; context_switches = cs; assoc }

let test_cold_miss_then_hits () =
  let c = Icache.create (config ()) in
  Icache.access c ~addr:0x1000 ~size:4;
  Icache.access c ~addr:0x1004 ~size:4;
  Icache.access c ~addr:0x1008 ~size:4;
  Alcotest.(check int) "one miss" 1 (Icache.misses c);
  Alcotest.(check int) "two hits" 2 (Icache.hits c);
  Alcotest.(check int) "fetch cost" (10 + 2) (Icache.fetch_cost c)

let test_conflict_eviction () =
  (* 1 KiB direct-mapped: addresses 1 KiB apart collide. *)
  let c = Icache.create (config ()) in
  Icache.access c ~addr:0x0000 ~size:4;
  Icache.access c ~addr:0x0400 ~size:4;
  Icache.access c ~addr:0x0000 ~size:4;
  Alcotest.(check int) "all misses" 3 (Icache.misses c)

let test_line_straddle () =
  (* A 6-byte CISC instruction crossing a 16-byte boundary touches two
     lines. *)
  let c = Icache.create (config ()) in
  Icache.access c ~addr:0x100C ~size:6;
  Alcotest.(check int) "two accesses" 2 (Icache.accesses c);
  Alcotest.(check int) "two misses" 2 (Icache.misses c)

let test_context_switch_flush () =
  let on = Icache.create (config ~cs:true ()) in
  let off = Icache.create (config ~cs:false ()) in
  (* Loop over one line for more than 10,000 time units. *)
  for _ = 1 to 10_200 do
    Icache.access on ~addr:0x2000 ~size:4;
    Icache.access off ~addr:0x2000 ~size:4
  done;
  Alcotest.(check int) "no flush without context switches" 1 (Icache.misses off);
  Alcotest.(check bool) "flushes add misses" true (Icache.misses on > 1)

let test_reset () =
  let c = Icache.create (config ()) in
  Icache.access c ~addr:0x0 ~size:4;
  Icache.reset c;
  Alcotest.(check int) "hits cleared" 0 (Icache.hits c);
  Alcotest.(check int) "misses cleared" 0 (Icache.misses c);
  Icache.access c ~addr:0x0 ~size:4;
  Alcotest.(check int) "cold again" 1 (Icache.misses c)

let test_paper_configs () =
  Alcotest.(check int) "eight configurations" 8 (List.length Icache.paper_configs);
  List.iter
    (fun c ->
      Alcotest.(check int) "16-byte lines" 16 c.Icache.line_bytes;
      Alcotest.(check bool) "power-of-two KiB" true
        (List.mem (c.Icache.size_bytes / 1024) [ 1; 2; 4; 8 ]))
    Icache.paper_configs

let test_bigger_cache_never_worse_sequential () =
  (* For a simple loop trace, larger caches can only reduce misses. *)
  let mk kb = Icache.create (config ~kb ()) in
  let c1 = mk 1 and c8 = mk 8 in
  for _ = 1 to 50 do
    for i = 0 to 599 do
      let addr = 0x4000 + (i * 4) in
      Icache.access c1 ~addr ~size:4;
      Icache.access c8 ~addr ~size:4
    done
  done;
  Alcotest.(check bool) "8K no worse than 1K" true
    (Icache.misses c8 <= Icache.misses c1);
  (* The 2400-byte loop fits in 8K: only cold misses. *)
  Alcotest.(check int) "8K only cold misses" 150 (Icache.misses c8)

let test_associativity_resolves_conflicts () =
  (* Two addresses one cache-size apart conflict in a direct-mapped cache
     but coexist in a 2-way set. *)
  let direct = Icache.create (config ~kb:1 ()) in
  let twoway = Icache.create (config ~kb:1 ~assoc:2 ()) in
  for _ = 1 to 100 do
    List.iter
      (fun addr ->
        Icache.access direct ~addr ~size:4;
        Icache.access twoway ~addr ~size:4)
      [ 0x0000; 0x0400 ]
  done;
  Alcotest.(check int) "direct thrashes" 200 (Icache.misses direct);
  Alcotest.(check int) "two-way keeps both" 2 (Icache.misses twoway)

let test_lru_eviction_order () =
  (* 2-way: touching A, B, then C (all one set) evicts A, the least
     recently used. *)
  let c = Icache.create (config ~kb:1 ~assoc:2 ()) in
  let a = 0x0000 and b = 0x0400 and cc = 0x0800 in
  Icache.access c ~addr:a ~size:4;
  Icache.access c ~addr:b ~size:4;
  Icache.access c ~addr:cc ~size:4;
  (* B must still be resident; A must not. *)
  Icache.access c ~addr:b ~size:4;
  Alcotest.(check int) "b still hits" 1 (Icache.hits c);
  Icache.access c ~addr:a ~size:4;
  Alcotest.(check int) "a was evicted" 4 (Icache.misses c)

let prop_assoc_never_worse_lru =
  QCheck.Test.make ~name:"for looping traces, 2-way misses <= direct misses"
    ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 2 30) (int_range 0 40))
    (fun lines ->
      (* A repeating loop trace: LRU with more ways can only help. *)
      let direct = Icache.create (config ~kb:1 ()) in
      let twoway = Icache.create (config ~kb:1 ~assoc:2 ()) in
      for _ = 1 to 30 do
        List.iter
          (fun l ->
            let addr = l * 1024 in
            Icache.access direct ~addr ~size:4;
            Icache.access twoway ~addr ~size:4)
          lines
      done;
      (* Not a theorem for arbitrary traces (Belady anomalies), but it holds
         for this single-set pattern where direct always conflicts. *)
      Icache.misses twoway <= Icache.misses direct + 30)

let prop_counters_consistent =
  QCheck.Test.make ~name:"hits + misses = accesses; ratio in [0,1]" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 100_000))
    (fun addrs ->
      let c = Icache.create (config ~kb:2 ()) in
      List.iter (fun a -> Icache.access c ~addr:a ~size:4) addrs;
      Icache.hits c + Icache.misses c = Icache.accesses c
      && Icache.miss_ratio c >= 0.0
      && Icache.miss_ratio c <= 1.0
      && Icache.fetch_cost c = Icache.hits c + (10 * Icache.misses c))

let prop_repeat_hits =
  QCheck.Test.make ~name:"immediate re-access always hits" ~count:100
    QCheck.(int_range 0 1_000_000) (fun addr ->
      let c = Icache.create (config ~kb:4 ()) in
      Icache.access c ~addr ~size:4;
      let m = Icache.misses c in
      Icache.access c ~addr ~size:4;
      Icache.misses c = m)

(* --- Bank: the one-pass multi-configuration simulator ------------- *)

(* Every statistic of a bank must equal feeding the same stream to one
   dedicated cache per configuration — including the LRU and context-
   switch corner cases, which is why the config list here goes beyond
   the paper's direct-mapped set. *)
let bank_test_configs =
  Icache.paper_configs
  @ [
      config ~kb:1 ~assoc:2 ();
      config ~kb:2 ~assoc:4 ~cs:true ();
      config ~kb:1 ~assoc:2 ~cs:true ();
    ]

let check_bank_agrees stream =
  let bank = Icache.Bank.create bank_test_configs in
  let caches = List.map Icache.create bank_test_configs in
  List.iter
    (fun (addr, size) ->
      Icache.Bank.access bank ~addr ~size;
      List.iter (fun c -> Icache.access c ~addr ~size) caches)
    stream;
  List.iteri
    (fun i c ->
      let agrees =
        Icache.Bank.hits bank i = Icache.hits c
        && Icache.Bank.misses bank i = Icache.misses c
        && Icache.Bank.accesses bank i = Icache.accesses c
        && Icache.Bank.miss_ratio bank i = Icache.miss_ratio c
        && Icache.Bank.fetch_cost bank i = Icache.fetch_cost c
      in
      Alcotest.(check bool)
        (Printf.sprintf "bank agrees on %s"
           (Icache.config_name (Icache.Bank.configs bank).(i)))
        true agrees)
    caches

let test_bank_basic () =
  check_bank_agrees
    [ (0x1000, 4); (0x1004, 4); (0x0000, 4); (0x0400, 6); (0x100C, 6) ]

let test_bank_reset () =
  let bank = Icache.Bank.create Icache.paper_configs in
  Icache.Bank.access bank ~addr:0x40 ~size:4;
  Icache.Bank.reset bank;
  for i = 0 to Array.length (Icache.Bank.configs bank) - 1 do
    Alcotest.(check int) "accesses cleared" 0 (Icache.Bank.accesses bank i)
  done;
  Icache.Bank.access bank ~addr:0x40 ~size:4;
  Alcotest.(check int) "cold again" 1 (Icache.Bank.misses bank 0)

let prop_bank_matches_individual_caches =
  (* Long streams of small strides tripping line straddles, conflicts
     and (at > 10,000 accumulated time units) context-switch flushes. *)
  QCheck.Test.make
    ~name:"Bank statistics equal one-cache-per-config simulation" ~count:30
    QCheck.(
      list_of_size
        (QCheck.Gen.int_range 50 600)
        (pair (int_range 0 20_000) (int_range 1 8)))
    (fun stream ->
      let bank = Icache.Bank.create bank_test_configs in
      let caches = List.map Icache.create bank_test_configs in
      (* Repeat the stream so context-switch clocks actually wrap. *)
      for _ = 1 to 8 do
        List.iter
          (fun (addr, size) ->
            Icache.Bank.access bank ~addr ~size;
            List.iter (fun c -> Icache.access c ~addr ~size) caches)
          stream
      done;
      List.for_all
        (fun (i, c) ->
          Icache.Bank.hits bank i = Icache.hits c
          && Icache.Bank.misses bank i = Icache.misses c
          && Icache.Bank.miss_ratio bank i = Icache.miss_ratio c
          && Icache.Bank.fetch_cost bank i = Icache.fetch_cost c)
        (List.mapi (fun i c -> (i, c)) caches))

let tests =
  ( "icache",
    [
      Alcotest.test_case "cold miss then hits" `Quick test_cold_miss_then_hits;
      Alcotest.test_case "conflict eviction" `Quick test_conflict_eviction;
      Alcotest.test_case "line straddle" `Quick test_line_straddle;
      Alcotest.test_case "context switch flush" `Quick test_context_switch_flush;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "paper configurations" `Quick test_paper_configs;
      Alcotest.test_case "capacity behavior" `Quick test_bigger_cache_never_worse_sequential;
      Alcotest.test_case "associativity" `Quick test_associativity_resolves_conflicts;
      Alcotest.test_case "lru order" `Quick test_lru_eviction_order;
      Alcotest.test_case "bank basic agreement" `Quick test_bank_basic;
      Alcotest.test_case "bank reset" `Quick test_bank_reset;
      QCheck_alcotest.to_alcotest prop_assoc_never_worse_lru;
      QCheck_alcotest.to_alcotest prop_counters_consistent;
      QCheck_alcotest.to_alcotest prop_repeat_hits;
      QCheck_alcotest.to_alcotest prop_bank_matches_individual_caches;
    ] )
