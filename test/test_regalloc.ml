(* Register allocation: structural postconditions plus semantic checks via
   execution (including forced spilling). *)

open Ir
open Flow

let no_virtuals f =
  Array.for_all
    (fun (b : Func.block) ->
      List.for_all
        (fun i ->
          Reg.Set.for_all
            (fun r -> not (Reg.is_virt r))
            (Reg.Set.union (Rtl.uses i) (Rtl.defs i)))
        b.instrs)
    (Func.blocks f)

let alloc src machine =
  let prog =
    Opt.Driver.compile { Opt.Driver.default_options with level = Simple }
      machine src
  in
  Option.get (Prog.find_func prog "main")

(* A source with more simultaneously-live values than there are allocatable
   registers (20), forcing spills. *)
let many_live_src =
  let n = 26 in
  let decls =
    String.concat ", " (List.init n (fun i -> Printf.sprintf "x%d" i))
  in
  let inits =
    String.concat "\n"
      (List.init n (fun i -> Printf.sprintf "x%d = getchar();" i))
  in
  let uses =
    String.concat " + " (List.init n (fun i -> Printf.sprintf "x%d" i))
  in
  Printf.sprintf
    "int main() { int %s; int s; %s s = %s; putchar('0' + s %% 10); \
     putchar(10); return 0; }"
    decls inits uses

let test_no_virtuals_remain () =
  List.iter
    (fun machine ->
      let f = alloc many_live_src machine in
      Alcotest.(check bool)
        (machine.Machine.short ^ " fully allocated")
        true (no_virtuals f))
    [ Machine.cisc; Machine.risc ]

let test_spill_semantics () =
  (* 26 getchar() values live at once: with 20 allocatable registers some
     must spill; the sum must still be right. *)
  let input = String.init 26 (fun i -> Char.chr (i + 1)) in
  let expected_sum = 26 * 27 / 2 in
  let expected =
    Printf.sprintf "%c\n" (Char.chr (Char.code '0' + (expected_sum mod 10)))
  in
  let out, _ = Helpers.run_all_levels ~input many_live_src in
  Alcotest.(check string) "spilled sum" expected out

let test_callee_save_respected () =
  (* A value live across calls must survive them: the callee clobbers all
     caller-save registers by convention. *)
  let src =
    {|
int id(int x) { return x; }
int main() {
  int a, b, c;
  a = id(1); b = id(2); c = id(3);
  /* a, b live across the later calls */
  putchar('0' + a + b + c);
  putchar('\n');
  return 0;
}
|}
  in
  let out, _ = Helpers.run_all_levels src in
  Alcotest.(check string) "live across calls" "6\n" out

let test_frame_grows_for_spills () =
  let f = alloc many_live_src Machine.cisc in
  (match (Func.block f 0).instrs with
  | Rtl.Enter n :: _ ->
    Alcotest.(check bool) "frame covers spill slots" true (n >= 8)
  | _ -> Alcotest.fail "entry must start with Enter");
  Check.assert_ok f

let test_recursion_deep () =
  (* Recursive calls exercise callee-save save/restore chains. *)
  let src =
    {|
int sum(int n) { if (n == 0) return 0; return n + sum(n - 1); }
int main() {
  int s;
  s = sum(100);
  putchar('0' + s % 10);  /* 5050 -> 0 */
  putchar('0' + s / 1000);
  putchar('\n');
  return 0;
}
|}
  in
  let out, _ = Helpers.run_all_levels src in
  Alcotest.(check string) "deep recursion" "05\n" out

let test_allocate_off_keeps_virtuals () =
  (* The driver option exists for inspecting pre-allocation RTL. *)
  let prog =
    Opt.Driver.compile
      { Opt.Driver.default_options with allocate = false }
      Machine.risc "int main() { int a; a = getchar(); return a + 2; }"
  in
  let f = Option.get (Prog.find_func prog "main") in
  let has_virt =
    Array.exists
      (fun (b : Func.block) ->
        List.exists
          (fun i ->
            Reg.Set.exists Reg.is_virt
              (Reg.Set.union (Rtl.uses i) (Rtl.defs i)))
          b.instrs)
      (Func.blocks f)
  in
  Alcotest.(check bool) "virtuals remain with allocate=false" true has_virt

let tests =
  ( "regalloc",
    [
      Alcotest.test_case "no virtuals remain" `Quick test_no_virtuals_remain;
      Alcotest.test_case "spill semantics" `Quick test_spill_semantics;
      Alcotest.test_case "callee-save respected" `Quick test_callee_save_respected;
      Alcotest.test_case "frame grows for spills" `Quick test_frame_grows_for_spills;
      Alcotest.test_case "deep recursion" `Quick test_recursion_deep;
      Alcotest.test_case "allocate=false" `Quick test_allocate_off_keeps_virtuals;
    ] )
