(* CFG, dominators, loops, reducibility and liveness. *)

open Ir
open Flow

(* Build a function from a shape description: each block is (size, term)
   where [term] describes the terminator and [size] pads with moves. *)
type term = Fall | Jmp of int | Br of int | Return

let build shape =
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create () in
  let labels = Array.init (Array.length shape) (fun _ -> Label.Supply.fresh lsupply) in
  let blocks =
    Array.mapi
      (fun i (size, term) ->
        let pad =
          List.init size (fun k -> Rtl.Move (Lreg (Reg.Virt ((i * 100) + k)), Imm k))
        in
        let tail =
          match term with
          | Fall -> []
          | Jmp t -> [ Rtl.Jump labels.(t) ]
          | Br t -> [ Rtl.Cmp (Reg (Reg.Virt 999), Imm 0); Rtl.Branch (Rtl.Ne, labels.(t)) ]
          | Return -> [ Rtl.Leave; Rtl.Ret ]
        in
        { Func.label = labels.(i); instrs = pad @ tail })
      shape
  in
  (* Entry must start with Enter. *)
  let entry = blocks.(0) in
  blocks.(0) <- { entry with instrs = Rtl.Enter 8 :: entry.instrs };
  Func.make ~name:"t" ~blocks ~lsupply ~vsupply

(* A diamond: 0 -> {1, 2} -> 3 -> ret *)
let diamond () =
  build [| (1, Br 2); (1, Jmp 3); (1, Fall); (1, Return) |]

let test_cfg_edges () =
  let f = diamond () in
  let g = Cfg.make f in
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] (Cfg.succs g 0);
  Alcotest.(check (list int)) "jump succ" [ 3 ] (Cfg.succs g 1);
  Alcotest.(check (list int)) "fall succ" [ 3 ] (Cfg.succs g 2);
  Alcotest.(check (list int)) "ret succs" [] (Cfg.succs g 3);
  Alcotest.(check (list int)) "join preds" [ 1; 2 ] (List.sort compare (Cfg.preds g 3))

let test_dominators_diamond () =
  let f = diamond () in
  let g = Cfg.make f in
  let dom = Dom.compute g in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (fun b -> Dom.dominates dom 0 b) [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "branch arm does not dominate join" false
    (Dom.dominates dom 1 3);
  Alcotest.(check bool) "idom of join is entry" true (Dom.idom dom 3 = Some 0);
  Alcotest.(check bool) "reflexive" true (Dom.dominates dom 2 2)

(* A while loop: 0 -> 1(test) -> {2(body), 3(exit)}; 2 -> 1. *)
let loop_func () = build [| (1, Fall); (1, Br 3); (2, Jmp 1); (1, Return) |]

let test_natural_loops () =
  let f = loop_func () in
  let g = Cfg.make f in
  let dom = Dom.compute g in
  (match Loops.natural_loops g dom with
  | [ l ] ->
    Alcotest.(check int) "header" 1 l.header;
    Alcotest.(check (list int)) "body" [ 1; 2 ] (Loops.Int_set.elements l.body)
  | ls -> Alcotest.fail (Printf.sprintf "expected 1 loop, got %d" (List.length ls)));
  Alcotest.(check bool) "reducible" true (Loops.is_reducible g dom)

let test_irreducible () =
  (* Two entries into a cycle: 0 branches to 2; falls to 1; 1 -> 2 -> 1. *)
  let f = build [| (1, Br 2); (1, Fall); (1, Jmp 1); (1, Return) |] in
  let g = Cfg.make f in
  let dom = Dom.compute g in
  Alcotest.(check bool) "irreducible" false (Loops.is_reducible g dom)

let test_nested_loops () =
  (* 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner body, jmp 2) ...
     block2 branches to 4 (inner exit) which jumps back to 1; 1 branches to 5. *)
  let f =
    build
      [|
        (1, Fall) (* 0 entry *);
        (1, Br 5) (* 1 outer header; exit to 5 *);
        (1, Br 4) (* 2 inner header; exit to 4 *);
        (1, Jmp 2) (* 3 inner body -> inner header *);
        (1, Jmp 1) (* 4 outer latch -> outer header *);
        (1, Return) (* 5 *);
      |]
  in
  let g = Cfg.make f in
  let dom = Dom.compute g in
  let loops = Loops.innermost_first (Loops.natural_loops g dom) in
  (match loops with
  | [ inner; outer ] ->
    Alcotest.(check int) "inner header" 2 inner.header;
    Alcotest.(check int) "outer header" 1 outer.header;
    Alcotest.(check bool) "nesting" true
      (Loops.Int_set.subset inner.body outer.body)
  | _ -> Alcotest.fail "expected two loops");
  (match Loops.enclosing_loop loops 3 with
  | Some l -> Alcotest.(check int) "innermost of 3" 2 l.header
  | None -> Alcotest.fail "block 3 is in a loop")

let test_liveness () =
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create_from 10 in
  let l0 = Label.Supply.fresh lsupply and l1 = Label.Supply.fresh lsupply in
  let v0 = Reg.Virt 0 and v1 = Reg.Virt 1 in
  let blocks =
    [|
      { Func.label = l0;
        instrs = [ Rtl.Enter 8; Rtl.Move (Lreg v0, Imm 1); Rtl.Move (Lreg v1, Imm 2) ] };
      { Func.label = l1;
        instrs =
          [ Rtl.Binop (Add, Lreg (Reg.Virt 2), Reg v0, Reg v0); Rtl.Leave; Rtl.Ret ] };
    |]
  in
  let f = Func.make ~name:"live" ~blocks ~lsupply ~vsupply in
  let live = Liveness.compute f in
  Alcotest.(check bool) "v0 live into block 1" true
    (Reg.Set.mem v0 (Liveness.live_in live 1));
  Alcotest.(check bool) "v1 dead into block 1" false
    (Reg.Set.mem v1 (Liveness.live_in live 1));
  Alcotest.(check bool) "v0 live out of block 0" true
    (Reg.Set.mem v0 (Liveness.live_out live 0))

let test_check_catches () =
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create () in
  let l0 = Label.Supply.fresh lsupply in
  let bogus = Label.of_int 999 in
  let blocks =
    [| { Func.label = l0; instrs = [ Rtl.Enter 8; Rtl.Jump bogus ] } |]
  in
  let f = Func.make ~name:"bad" ~blocks ~lsupply ~vsupply in
  Alcotest.(check bool) "missing target detected" true (Check.errors f <> []);
  let blocks2 =
    [| { Func.label = l0; instrs = [ Rtl.Enter 8; Rtl.Move (Lreg (Reg.Virt 0), Imm 1) ] } |]
  in
  let f2 = Func.make ~name:"bad2" ~blocks:blocks2 ~lsupply ~vsupply in
  Alcotest.(check bool) "falling off the end detected" true (Check.errors f2 <> [])

(* --- Random CFGs: dominators against a naive reference --- *)

let random_shape =
  QCheck.Gen.(
    sized_size (int_range 2 14) (fun n ->
        let* terms =
          list_repeat n
            (oneof
               [
                 return Fall;
                 map (fun t -> Jmp t) (int_bound (n - 1));
                 map (fun t -> Br t) (int_bound (n - 1));
                 return Return;
               ])
        in
        let terms = Array.of_list terms in
        (* The last block must not fall off the end. *)
        (match terms.(n - 1) with
        | Fall | Br _ -> terms.(n - 1) <- Return
        | Jmp _ | Return -> ());
        return (Array.map (fun t -> (1, t)) terms)))

let show_shape shape =
  String.concat ";"
    (Array.to_list
       (Array.map
          (fun (sz, t) ->
            Printf.sprintf "%d%s" sz
              (match t with
              | Fall -> "F"
              | Jmp x -> "J" ^ string_of_int x
              | Br x -> "B" ^ string_of_int x
              | Return -> "R"))
          shape))

let arb_shape = QCheck.make ~print:show_shape random_shape

(* Naive dominators: iterate over all blocks, removing each and checking
   reachability. *)
let naive_dominates g a b =
  if a = b then true
  else begin
    let n = Cfg.num_blocks g in
    let seen = Array.make n false in
    let rec visit x =
      if (not seen.(x)) && x <> a then begin
        seen.(x) <- true;
        List.iter visit (Cfg.succs g x)
      end
    in
    if n > 0 then visit 0;
    (* a dominates b iff b unreachable when a removed (and b reachable at all) *)
    let reach = Cfg.reachable g in
    reach.(b) && not seen.(b)
  end

let prop_dominators =
  QCheck.Test.make ~name:"dominators match naive reference" ~count:120
    arb_shape (fun shape ->
      let f = build shape in
      let g = Cfg.make f in
      let dom = Dom.compute g in
      let reach = Cfg.reachable g in
      let n = Cfg.num_blocks g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if reach.(a) && reach.(b) then
            if Dom.dominates dom a b <> naive_dominates g a b then ok := false
        done
      done;
      !ok)

let prop_rpo =
  QCheck.Test.make ~name:"reverse postorder visits preds first in DAGs" ~count:100
    arb_shape (fun shape ->
      let f = build shape in
      let g = Cfg.make f in
      let rpo = Cfg.reverse_postorder g in
      let n = Cfg.num_blocks g in
      let pos = Array.make n 0 in
      Array.iteri (fun i b -> pos.(b) <- i) rpo;
      let dom = Dom.compute g in
      (* Weaker universal property: an idom always precedes its node. *)
      let ok = ref true in
      for b = 0 to n - 1 do
        match Dom.idom dom b with
        | Some d -> if pos.(d) >= pos.(b) then ok := false
        | None -> ()
      done;
      !ok)

(* Liveness satisfies its defining dataflow equations on random CFGs. *)
let prop_liveness_fixpoint =
  QCheck.Test.make ~name:"liveness is a fixpoint of its equations" ~count:100
    arb_shape (fun shape ->
      let f = build shape in
      let g = Cfg.make f in
      let live = Liveness.compute f in
      let n = Func.num_blocks f in
      let ok = ref true in
      for b = 0 to n - 1 do
        (* out(b) = union of in(s) over successors *)
        let out =
          List.fold_left
            (fun acc s -> Reg.Set.union acc (Liveness.live_in live s))
            Reg.Set.empty (Cfg.succs g b)
        in
        if not (Reg.Set.equal out (Liveness.live_out live b)) then ok := false;
        (* in(b) = transfer of the block over out(b) *)
        let inn =
          List.fold_right Liveness.step (Func.block f b).instrs
            (Liveness.live_out live b)
        in
        if not (Reg.Set.equal inn (Liveness.live_in live b)) then ok := false
      done;
      !ok)

let tests =
  ( "flow",
    [
      Alcotest.test_case "cfg edges" `Quick test_cfg_edges;
      Alcotest.test_case "dominators on a diamond" `Quick test_dominators_diamond;
      Alcotest.test_case "natural loops" `Quick test_natural_loops;
      Alcotest.test_case "irreducible graph" `Quick test_irreducible;
      Alcotest.test_case "nested loops" `Quick test_nested_loops;
      Alcotest.test_case "liveness" `Quick test_liveness;
      Alcotest.test_case "checker" `Quick test_check_catches;
      QCheck_alcotest.to_alcotest prop_dominators;
      QCheck_alcotest.to_alcotest prop_rpo;
      QCheck_alcotest.to_alcotest prop_liveness_fixpoint;
    ] )
