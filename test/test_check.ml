(* The IR verifier on deliberately corrupted functions, and the driver's
   quarantine-and-rollback boundary around a broken pass. *)

open Ir
open Flow

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let has_violation sub errs =
  Alcotest.(check bool)
    (Printf.sprintf "a violation mentions %S (got: %s)" sub
       (String.concat " | " errs))
    true
    (List.exists (contains sub) errs)

(* A minimal well-formed function: Enter, pad, Leave/Ret. *)
let make_func instrs_mid =
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create () in
  let l0 = Label.Supply.fresh lsupply in
  let blocks =
    [| { Func.label = l0; instrs = (Rtl.Enter 8 :: instrs_mid) @ [ Rtl.Leave; Rtl.Ret ] } |]
  in
  Func.make ~name:"t" ~blocks ~lsupply ~vsupply

let test_clean () =
  (* Real compiler output is verifier-clean, including the full checks. *)
  let prog =
    Opt.Driver.compile Opt.Driver.default_options Ir.Machine.cisc
      "int main() { int i, s; s = 0; for (i = 0; i < 9; i++) s += i; return s; }"
  in
  List.iter
    (fun f ->
      Alcotest.(check (list string)) "no violations" [] (Check.errors ~full:true f))
    prog.Prog.funcs;
  Alcotest.(check (list string)) "no program violations" []
    (Check.program_errors prog)

let test_dangling_target () =
  let f = make_func [] in
  let ghost = Label.of_int 4242 in
  let bad =
    Func.with_blocks f
      (Array.append (Func.blocks f)
         [| { Func.label = Func.fresh_label f; instrs = [ Rtl.Jump ghost ] } |])
  in
  has_violation "does not exist" (Check.errors bad);
  (* The graph-level checks must not blow up on a dangling target. *)
  Alcotest.(check (list string)) "unreachable check guarded" []
    (Check.unreachable_blocks bad);
  match Check.assert_ok bad with
  | () -> Alcotest.fail "assert_ok accepted a dangling target"
  | exception Telemetry.Diag.Error d ->
    Alcotest.(check string) "diag code" "malformed-ir"
      (Telemetry.Diag.code_name d.Telemetry.Diag.code)

let test_mid_block_transfer () =
  let f = make_func [] in
  let l1 = Func.fresh_label f in
  let blocks =
    [|
      (Func.blocks f).(0);
      { Func.label = l1; instrs = [ Rtl.Jump l1; Rtl.Nop ] };
    |]
  in
  (* The Jump is followed by a Nop in the same block, and the new last
     block now falls off the end. *)
  let bad = Func.with_blocks f blocks in
  has_violation "in the middle of the block" (Check.errors bad);
  has_violation "falls off the end" (Check.errors bad)

let test_use_before_def () =
  (* v7 is used without any definition. *)
  let bad = make_func [ Rtl.Move (Rtl.Lreg (Reg.Virt 1), Rtl.Reg (Reg.Virt 7)) ] in
  Alcotest.(check (list string)) "cheap checks pass" [] (Check.errors bad);
  has_violation "used before definition" (Check.errors ~full:true bad);
  has_violation "v7" (Check.def_before_use bad)

let test_use_after_def_ok () =
  let ok =
    make_func
      [
        Rtl.Move (Rtl.Lreg (Reg.Virt 7), Rtl.Imm 1);
        Rtl.Move (Rtl.Lreg (Reg.Virt 1), Rtl.Reg (Reg.Virt 7));
      ]
  in
  Alcotest.(check (list string)) "no violations" [] (Check.errors ~full:true ok)

let test_def_on_one_path_only () =
  (* Diamond where only one arm defines v5; the join's use is flagged. *)
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create () in
  let l = Array.init 4 (fun _ -> Label.Supply.fresh lsupply) in
  let v5 = Reg.Virt 5 in
  let blocks =
    [|
      {
        Func.label = l.(0);
        instrs =
          [
            Rtl.Enter 8;
            Rtl.Cmp (Rtl.Reg (Reg.Virt 1), Rtl.Imm 0);
            Rtl.Branch (Rtl.Ne, l.(2));
          ];
      };
      (* Fall-through arm: defines v5, jumps to the join. *)
      { Func.label = l.(1); instrs = [ Rtl.Move (Rtl.Lreg v5, Rtl.Imm 3); Rtl.Jump l.(3) ] };
      (* Branch arm: no definition. *)
      { Func.label = l.(2); instrs = [ Rtl.Nop ] };
      { Func.label = l.(3); instrs = [ Rtl.Move (Rtl.Lreg (Reg.Virt 6), Rtl.Reg v5); Rtl.Leave; Rtl.Ret ] };
    |]
  in
  let f = Func.make ~name:"t" ~blocks ~lsupply ~vsupply in
  (* v1 is also undefined, so restrict the assertion to v5. *)
  has_violation "v5 used before definition" (Check.def_before_use f);
  (* Defining v5 on the other arm too clears it. *)
  let blocks2 = Array.copy blocks in
  blocks2.(2) <- { (blocks2.(2)) with instrs = [ Rtl.Move (Rtl.Lreg v5, Rtl.Imm 4) ] };
  let f2 = Func.make ~name:"t" ~blocks:blocks2 ~lsupply ~vsupply in
  Alcotest.(check bool) "both arms defined: no v5 violation" false
    (List.exists (contains "v5") (Check.def_before_use f2))

let test_duplicate_label_across_functions () =
  let f = make_func [] in
  let g =
    (* Same label supply from zero: g's entry label collides with f's. *)
    let lsupply = Label.Supply.create () in
    let vsupply = Reg.Supply.create () in
    let l0 = Label.Supply.fresh lsupply in
    Func.make ~name:"u"
      ~blocks:[| { Func.label = l0; instrs = [ Rtl.Enter 8; Rtl.Leave; Rtl.Ret ] } |]
      ~lsupply ~vsupply
  in
  let prog = { Prog.globals = []; funcs = [ f; g ] } in
  has_violation "defined in both" (Check.program_errors prog);
  let dup = { Prog.globals = []; funcs = [ f; f ] } in
  has_violation "duplicate function" (Check.program_errors dup)

let test_unreachable_blocks () =
  let f = make_func [] in
  let orphan =
    { Func.label = Func.fresh_label f; instrs = [ Rtl.Jump (Func.block f 0).label ] }
  in
  (* The orphan jumps back to the entry, which is also a violation, but
     here we only care that it is unreachable. *)
  let bad = Func.with_blocks f (Array.append (Func.blocks f) [| orphan |]) in
  has_violation "unreachable from the entry" (Check.unreachable_blocks bad)

(* --- the driver's protective boundary --- *)

let source =
  "int main() { int i, s; s = 0; for (i = 0; i < 10; i++) { s += i; } \
   putchar(65 + (s & 15)); putchar(10); return 0; }"

let run_prog machine prog =
  let asm = Sim.Asm.assemble machine prog in
  let res = Sim.Interp.run ~max_steps:1_000_000 asm prog in
  (res.output, res.exit_code)

let test_quarantine_rollback () =
  let machine = Ir.Machine.cisc in
  let opts = Opt.Driver.options ~level:Opt.Driver.Jumps () in
  let expected = run_prog machine (Opt.Driver.compile opts machine source) in
  (* Same compilation with the replication pass corrupting its output:
     the boundary must quarantine it and still produce a correct program
     from the rolled-back IR. *)
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let diags = ref [] in
  let broken_opts = { opts with Opt.Driver.inject_fault = Some "replicate" } in
  let prog = Opt.Driver.compile ~log ~diags broken_opts machine source in
  let quarantined =
    List.filter_map
      (function
        | Telemetry.Log.Pass_quarantined { pass; code; violations; _ } ->
          Some (pass, code, violations)
        | _ -> None)
      (Telemetry.Log.events log)
  in
  (match quarantined with
  | (pass, code, violations) :: _ ->
    Alcotest.(check string) "quarantined pass" "replicate" pass;
    Alcotest.(check string) "diag code" "malformed-ir" code;
    Alcotest.(check bool) "violations listed" true (violations <> [])
  | [] -> Alcotest.fail "no Pass_quarantined event");
  Alcotest.(check bool) "an Err diagnostic was recorded" true
    (Telemetry.Diag.has_errors !diags);
  Alcotest.(check (pair string int)) "rolled-back program still correct"
    expected (run_prog machine prog)

let test_broken_custom_pass () =
  (* A replicate implementation that raises mid-compilation: the boundary
     converts the crash into a quarantine instead of aborting. *)
  let machine = Ir.Machine.cisc in
  let opts = Opt.Driver.options ~level:Opt.Driver.Jumps () in
  let prog0 = Frontend.Codegen.compile_source source in
  let diags = ref [] in
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let crash ?allow_irreducible:_ _f = failwith "boom" in
  let prog =
    Prog.map_funcs
      (fun f -> Opt.Driver.optimize_func_with ~log ~diags ~replicate:crash opts machine f)
      prog0
  in
  Alcotest.(check bool) "diagnostic recorded" true
    (Telemetry.Diag.has_errors !diags);
  let codes =
    List.filter_map
      (function
        | Telemetry.Log.Pass_quarantined { code; _ } -> Some code
        | _ -> None)
      (Telemetry.Log.events log)
  in
  Alcotest.(check bool) "pass-raised quarantine" true
    (List.mem "pass-raised" codes);
  (* The rest of the pipeline (including regalloc) still ran. *)
  let out, _ = run_prog machine prog in
  Alcotest.(check string) "output survives the broken pass" "N\n" out

let test_fixpoint_divergence_warning () =
  (* With the iteration cap forced to 1, the do-while loop cannot reach a
     fixpoint on a program its passes still improve: the driver must warn
     (not fail), naming the last pass that reported a change. *)
  let opts =
    { (Opt.Driver.options ~level:Opt.Driver.Jumps ()) with max_iterations = 1 }
  in
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let diags = ref [] in
  let prog = Opt.Driver.compile ~log ~diags opts Ir.Machine.cisc source in
  let diverged =
    List.filter_map
      (function
        | Telemetry.Log.Fixpoint_diverged { iterations; last_pass; _ } ->
          Some (iterations, last_pass)
        | _ -> None)
      (Telemetry.Log.events log)
  in
  (match diverged with
  | (iterations, last_pass) :: _ ->
    Alcotest.(check int) "iteration cap" 1 iterations;
    Alcotest.(check bool) "names the pass" true (last_pass <> "")
  | [] -> Alcotest.fail "no Fixpoint_diverged event");
  Alcotest.(check bool) "warning only, not an error" false
    (Telemetry.Diag.has_errors !diags);
  Alcotest.(check bool) "a no-convergence diagnostic exists" true
    (List.exists
       (fun d -> d.Telemetry.Diag.code = Telemetry.Diag.No_convergence)
       !diags);
  (* The truncated pipeline still compiles correctly. *)
  let out, _ = run_prog Ir.Machine.cisc prog in
  Alcotest.(check string) "output" "N\n" out

let tests =
  ( "check",
    [
      Alcotest.test_case "clean compiler output" `Quick test_clean;
      Alcotest.test_case "dangling branch target" `Quick test_dangling_target;
      Alcotest.test_case "mid-block transfer" `Quick test_mid_block_transfer;
      Alcotest.test_case "use before def" `Quick test_use_before_def;
      Alcotest.test_case "use after def ok" `Quick test_use_after_def_ok;
      Alcotest.test_case "def on one path only" `Quick test_def_on_one_path_only;
      Alcotest.test_case "duplicate labels across functions" `Quick
        test_duplicate_label_across_functions;
      Alcotest.test_case "unreachable blocks" `Quick test_unreachable_blocks;
      Alcotest.test_case "quarantine and rollback" `Quick test_quarantine_rollback;
      Alcotest.test_case "broken custom pass" `Quick test_broken_custom_pass;
      Alcotest.test_case "fixpoint divergence warning" `Quick
        test_fixpoint_divergence_warning;
    ] )
