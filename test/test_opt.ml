(* Optimization pass unit tests: each pass on hand-built RTL, checking both
   the transformation and structural invariants. *)

open Ir
open Flow

let build = Test_flow.build

let v n = Reg.Virt n

let mk ?(start = 0) name instr_blocks =
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create_from 100 in
  let labels =
    Array.init (List.length instr_blocks) (fun _ -> Label.Supply.fresh lsupply)
  in
  let blocks =
    Array.of_list
      (List.mapi
         (fun i mk_instrs ->
           { Func.label = labels.(i); instrs = mk_instrs labels })
         instr_blocks)
  in
  ignore start;
  Func.make ~name ~blocks ~lsupply ~vsupply

(* --- Branch chaining --- *)

let test_chain_jump_to_jump () =
  let f =
    mk "chain"
      [
        (fun l -> [ Rtl.Enter 8; Rtl.Jump l.(1) ]);
        (fun l -> [ Rtl.Jump l.(2) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', changed = Opt.Branch_chain.run f in
  Alcotest.(check bool) "changed" true changed;
  (* The entry's jump must now go to the return block directly — and then
     jump-to-next elimination applies on a second run after unreachable
     removal. *)
  (match Func.terminator (Func.block f' 0) with
  | Some (Rtl.Jump l) ->
    Alcotest.(check bool) "retargeted" true
      (Label.equal l (Func.block f' 2).label)
  | _ -> Alcotest.fail "entry should still end in a jump");
  Check.assert_ok f'

let test_jump_to_next_removed () =
  let f =
    mk "j2n"
      [
        (fun l -> [ Rtl.Enter 8; Rtl.Jump l.(1) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', changed = Opt.Branch_chain.run f in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check bool) "jump gone" true (Func.terminator (Func.block f' 0) = None)

let test_branch_over_jump () =
  (* The regression that broke the benchmark suite: Branch c L2; Jump L3;
     L2: ... must become Branch !c L3 with the jump block emptied. *)
  let f =
    mk "boj"
      [
        (fun l ->
          [ Rtl.Enter 8; Rtl.Cmp (Reg (v 0), Imm 0); Rtl.Branch (Ne, l.(2)) ]);
        (fun l -> [ Rtl.Jump l.(3) ]);
        (fun _ -> [ Rtl.Move (Lreg (v 1), Imm 1) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', changed = Opt.Branch_chain.run f in
  Alcotest.(check bool) "changed" true changed;
  (match Func.terminator (Func.block f' 0) with
  | Some (Rtl.Branch (Eq, l)) ->
    Alcotest.(check bool) "reversed to the jump target" true
      (Label.equal l (Func.block f' 3).label)
  | _ -> Alcotest.fail "entry should end in a reversed branch");
  Alcotest.(check int) "jump block emptied" 0
    (List.length (Func.block f' 1).instrs);
  Check.assert_ok f'

(* --- Unreachable code elimination --- *)

let test_unreachable () =
  let f =
    mk "unreach"
      [
        (fun l -> [ Rtl.Enter 8; Rtl.Jump l.(2) ]);
        (fun _ -> [ Rtl.Move (Lreg (v 0), Imm 9) ]) (* dead *);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', changed = Opt.Unreachable.run f in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check int) "blocks" 2 (Func.num_blocks f');
  Check.assert_ok f'

let test_unreachable_keeps_ijump_targets () =
  let f =
    mk "ijump"
      [
        (fun l ->
          [ Rtl.Enter 8; Rtl.Ijump (v 0, [| l.(1); l.(2) |]) ]);
        (fun l -> [ Rtl.Jump l.(3) ]);
        (fun _ -> [ Rtl.Move (Lreg (v 1), Imm 1) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', changed = Opt.Unreachable.run f in
  Alcotest.(check bool) "nothing removed" false changed;
  Alcotest.(check int) "all blocks kept" 4 (Func.num_blocks f')

(* --- Reorder --- *)

let test_reorder_enables_fallthrough () =
  (* 0 jumps to 2; 1 unreachable-ish tail; moving 2 after 0 removes the
     jump on the next branch-chain run. *)
  let f =
    mk "reorder"
      [
        (fun l -> [ Rtl.Enter 8; Rtl.Jump l.(2) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
        (fun l -> [ Rtl.Move (Lreg (v 0), Imm 1); Rtl.Jump l.(1) ]);
      ]
  in
  let f', _ = Opt.Reorder.run f in
  Check.assert_ok f';
  (* After reorder, block after entry should be the old block 2. *)
  Alcotest.(check bool) "old block 2 follows entry" true
    (Label.equal (Func.block f' 1).label (Func.block f 2).label)

(* --- Constant folding --- *)

let test_constfold_arith () =
  let f =
    mk "cf"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Binop (Add, Lreg (v 0), Imm 2, Imm 3);
            Rtl.Binop (Mul, Lreg (v 1), Reg (v 1), Imm 8);
            Rtl.Binop (Add, Lreg (v 2), Reg (v 2), Imm 0);
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', changed = Opt.Constfold.run Ir.Machine.risc f in
  Alcotest.(check bool) "changed" true changed;
  let instrs = (Func.block f' 0).instrs in
  Alcotest.(check bool) "2+3 folded" true
    (List.exists (fun i -> i = Rtl.Move (Lreg (v 0), Imm 5)) instrs);
  Alcotest.(check bool) "*8 became shift" true
    (List.exists
       (fun i -> i = Rtl.Binop (Shl, Lreg (v 1), Reg (v 1), Imm 3))
       instrs)

let test_constfold_branch () =
  let f =
    mk "cfb"
      [
        (fun l ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 0), Imm 5);
            Rtl.Cmp (Reg (v 0), Imm 3);
            Rtl.Branch (Gt, l.(2));
          ]);
        (fun _ -> [ Rtl.Move (Lreg (v 1), Imm 0) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', changed = Opt.Constfold.run Ir.Machine.risc f in
  Alcotest.(check bool) "changed" true changed;
  (match Func.terminator (Func.block f' 0) with
  | Some (Rtl.Jump _) -> ()
  | _ -> Alcotest.fail "always-taken branch must become a jump");
  (* Never-taken case. *)
  let g =
    mk "cfb2"
      [
        (fun l ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 0), Imm 1);
            Rtl.Cmp (Reg (v 0), Imm 3);
            Rtl.Branch (Gt, l.(2));
          ]);
        (fun _ -> [ Rtl.Move (Lreg (v 1), Imm 0) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let g', _ = Opt.Constfold.run Ir.Machine.risc g in
  Alcotest.(check bool) "never-taken branch dropped" true
    (Func.terminator (Func.block g' 0) = None)

(* --- Dead variable elimination --- *)

let test_deadvars () =
  let f =
    mk "dv"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 0), Imm 1) (* dead *);
            Rtl.Move (Lreg (v 1), Imm 2);
            Rtl.Move (Lreg (v 1), Reg (v 1)) (* self move *);
            Rtl.Cmp (Reg (v 1), Imm 0) (* dead cc: no branch follows *);
            Rtl.Move (Lreg Ir.Conv.rv, Reg (v 1));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', changed = Opt.Deadvars.run f in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check int) "only live instrs left" 5
    (List.length (Func.block f' 0).instrs)

let test_deadvars_keeps_live_cmp () =
  let f =
    mk "dvc"
      [
        (fun l ->
          [ Rtl.Enter 8; Rtl.Cmp (Reg (v 0), Imm 0); Rtl.Branch (Ne, l.(1)) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', _ = Opt.Deadvars.run f in
  Alcotest.(check int) "cmp kept" 3 (List.length (Func.block f' 0).instrs)

(* --- CSE --- *)

let test_cse_local () =
  let f =
    mk "cse"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Binop (Add, Lreg (v 0), Reg (v 10), Reg (v 11));
            Rtl.Binop (Add, Lreg (v 1), Reg (v 10), Reg (v 11));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', changed = Opt.Cse.run f in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check bool) "second add is a move" true
    (List.exists
       (fun i -> i = Rtl.Move (Lreg (v 1), Reg (v 0)))
       (Func.block f' 0).instrs)

let test_cse_invalidation () =
  let f =
    mk "csei"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Binop (Add, Lreg (v 0), Reg (v 10), Reg (v 11));
            Rtl.Move (Lreg (v 10), Imm 7) (* operand redefined *);
            Rtl.Binop (Add, Lreg (v 1), Reg (v 10), Reg (v 11));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', changed = Opt.Cse.run f in
  Alcotest.(check bool) "no stale reuse" false
    (List.exists
       (fun i -> i = Rtl.Move (Lreg (v 1), Reg (v 0)))
       (Func.block f' 0).instrs);
  ignore changed

let test_cse_loads_killed_by_store () =
  let f =
    mk "csel"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 0), Mem (Word, Abs ("g", 0)));
            Rtl.Move (Lmem (Word, Abs ("h", 0)), Reg (v 0));
            Rtl.Move (Lreg (v 1), Mem (Word, Abs ("g", 0)));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', _ = Opt.Cse.run f in
  Alcotest.(check bool) "reload kept after store" true
    (List.exists
       (fun i -> i = Rtl.Move (Lreg (v 1), Mem (Word, Abs ("g", 0))))
       (Func.block f' 0).instrs)

let test_cse_ebb () =
  (* The expression is available in a single-predecessor successor. *)
  let f =
    mk "cseebb"
      [
        (fun _ ->
          [ Rtl.Enter 8; Rtl.Binop (Add, Lreg (v 0), Reg (v 10), Imm 1) ]);
        (fun _ ->
          [
            Rtl.Binop (Add, Lreg (v 1), Reg (v 10), Imm 1);
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', changed = Opt.Cse.run f in
  Alcotest.(check bool) "changed across EBB" true changed;
  Alcotest.(check bool) "replaced by move" true
    (List.exists
       (fun i -> i = Rtl.Move (Lreg (v 1), Reg (v 0)))
       (Func.block f' 1).instrs)

let test_cse_join_blocked () =
  (* At a join the expression is only available on one path: no reuse. *)
  let f =
    build
      [| (1, Test_flow.Br 2); (1, Test_flow.Jmp 3); (1, Test_flow.Fall); (1, Test_flow.Return) |]
  in
  (* add the expression to block 1 and the join 3 *)
  let blocks = Array.copy (Func.blocks f) in
  let expr d = Rtl.Binop (Add, Lreg (v d), Reg (v 50), Imm 3) in
  blocks.(1) <- { (blocks.(1)) with instrs = expr 0 :: blocks.(1).instrs };
  blocks.(3) <- { (blocks.(3)) with instrs = expr 1 :: blocks.(3).instrs };
  let f = Func.with_blocks f blocks in
  let f', _ = Opt.Cse.run f in
  Alcotest.(check bool) "join recomputes" true
    (List.exists (fun i -> i = expr 1) (Func.block f' 3).instrs)

(* --- Global CSE --- *)

let test_gcse_across_join () =
  (* The expression is computed in both arms of a diamond; the join's
     recomputation becomes a move from the saved temp. *)
  let f =
    mk "gcse"
      [
        (fun l ->
          [ Rtl.Enter 8; Rtl.Cmp (Reg (v 50), Imm 0); Rtl.Branch (Ne, l.(2)) ]);
        (fun l ->
          [ Rtl.Binop (Add, Lreg (v 0), Reg (v 10), Imm 4); Rtl.Jump l.(3) ]);
        (fun _ -> [ Rtl.Binop (Add, Lreg (v 1), Reg (v 10), Imm 4) ]);
        (fun _ ->
          [
            Rtl.Binop (Add, Lreg (v 2), Reg (v 10), Imm 4);
            Rtl.Move (Lreg Ir.Conv.rv, Reg (v 2));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', changed = Opt.Gcse.run f in
  Alcotest.(check bool) "changed" true changed;
  Check.assert_ok f';
  let join = Func.block f' 3 in
  Alcotest.(check bool) "join takes a move" true
    (List.exists
       (fun i ->
         match i with Rtl.Move (Lreg d, Reg _) -> Reg.equal d (v 2) | _ -> false)
       join.instrs);
  Alcotest.(check bool) "join no longer recomputes" false
    (List.exists
       (fun i ->
         match i with Rtl.Binop (Add, Lreg d, _, _) -> Reg.equal d (v 2) | _ -> false)
       join.instrs)

let test_gcse_partial_path_blocked () =
  (* Available on only one path: the join must recompute. *)
  let f =
    mk "gcse2"
      [
        (fun l ->
          [ Rtl.Enter 8; Rtl.Cmp (Reg (v 50), Imm 0); Rtl.Branch (Ne, l.(2)) ]);
        (fun l ->
          [ Rtl.Binop (Add, Lreg (v 0), Reg (v 10), Imm 4); Rtl.Jump l.(3) ]);
        (fun _ -> [ Rtl.Move (Lreg (v 1), Imm 0) ]);
        (fun _ ->
          [
            Rtl.Binop (Add, Lreg (v 2), Reg (v 10), Imm 4);
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', _ = Opt.Gcse.run f in
  Alcotest.(check bool) "join still computes" true
    (List.exists
       (fun i ->
         match i with Rtl.Binop (Add, Lreg d, _, _) -> Reg.equal d (v 2) | _ -> false)
       (Func.block f' 3).instrs)

let test_gcse_two_address_self () =
  (* d = d + 1 never makes its own expression available. *)
  let f =
    mk "gcse3"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Binop (Add, Lreg (v 0), Reg (v 0), Imm 1);
            Rtl.Binop (Add, Lreg (v 0), Reg (v 0), Imm 1);
            Rtl.Move (Lreg Ir.Conv.rv, Reg (v 0));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', changed = Opt.Gcse.run f in
  Alcotest.(check bool) "no bogus reuse" false changed;
  Alcotest.(check int) "both increments kept" 2
    (List.length
       (List.filter
          (fun i -> match i with Rtl.Binop (Add, _, _, _) -> true | _ -> false)
          (Func.block f' 0).instrs))

(* --- LICM --- *)

let licm_loop () =
  (* 0: entry; 1: header (test); 2: body with invariant op; 3: exit *)
  mk "licm"
    [
      (fun _ -> [ Rtl.Enter 8; Rtl.Move (Lreg (v 0), Imm 0) ]);
      (fun l -> [ Rtl.Cmp (Reg (v 0), Imm 10); Rtl.Branch (Ge, l.(3)) ]);
      (fun l ->
        [
          Rtl.Binop (Mul, Lreg (v 1), Reg (v 20), Reg (v 21)) (* invariant *);
          Rtl.Binop (Add, Lreg (v 0), Reg (v 0), Reg (v 1));
          Rtl.Jump l.(1);
        ]);
      (fun _ -> [ Rtl.Move (Lreg Ir.Conv.rv, Reg (v 0)); Rtl.Leave; Rtl.Ret ]);
    ]

let test_licm_hoists () =
  let f = licm_loop () in
  let f', changed = Opt.Licm.run f in
  Alcotest.(check bool) "changed" true changed;
  Check.assert_ok f';
  (* The multiply must now be outside the loop: exactly one occurrence, in a
     block that is not part of any loop. *)
  let g = Cfg.make f' in
  let dom = Dom.compute g in
  let loops = Loops.natural_loops g dom in
  let in_loop bi = List.exists (fun l -> Loops.Int_set.mem bi l.Loops.body) loops in
  let found = ref [] in
  Array.iteri
    (fun bi (b : Func.block) ->
      List.iter
        (fun i ->
          match i with
          | Rtl.Binop (Mul, Lreg d, _, _) when Reg.equal d (v 1) ->
            found := bi :: !found
          | _ -> ())
        b.instrs)
    (Func.blocks f');
  (match !found with
  | [ bi ] -> Alcotest.(check bool) "hoisted out of the loop" false (in_loop bi)
  | _ -> Alcotest.fail "expected exactly one multiply");
  (* Semantics sanity via liveness-preserving structure. *)
  Alcotest.(check bool) "reducible" true (Loops.is_reducible g dom)

let test_licm_leaves_variant () =
  (* v1 depends on the induction variable: must stay in the loop. *)
  let f =
    mk "licm2"
      [
        (fun _ -> [ Rtl.Enter 8; Rtl.Move (Lreg (v 0), Imm 0) ]);
        (fun l -> [ Rtl.Cmp (Reg (v 0), Imm 10); Rtl.Branch (Ge, l.(3)) ]);
        (fun l ->
          [
            Rtl.Binop (Mul, Lreg (v 1), Reg (v 0), Reg (v 21));
            Rtl.Binop (Add, Lreg (v 0), Reg (v 0), Imm 1);
            Rtl.Jump l.(1);
          ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', changed = Opt.Licm.run f in
  ignore changed;
  let g = Cfg.make f' in
  let dom = Dom.compute g in
  let loops = Loops.natural_loops g dom in
  let in_loop bi = List.exists (fun l -> Loops.Int_set.mem bi l.Loops.body) loops in
  Array.iteri
    (fun bi (b : Func.block) ->
      List.iter
        (fun i ->
          match i with
          | Rtl.Binop (Mul, _, _, _) ->
            Alcotest.(check bool) "variant mul stays in loop" true (in_loop bi)
          | _ -> ())
        b.instrs)
    (Func.blocks f')

let test_licm_no_div_hoist () =
  (* A division guarded by the loop condition must not be hoisted. *)
  let f =
    mk "licmdiv"
      [
        (fun _ -> [ Rtl.Enter 8; Rtl.Move (Lreg (v 0), Imm 0) ]);
        (fun l -> [ Rtl.Cmp (Reg (v 20), Imm 0); Rtl.Branch (Eq, l.(3)) ]);
        (fun l ->
          [
            Rtl.Binop (Div, Lreg (v 1), Reg (v 21), Reg (v 20));
            Rtl.Binop (Add, Lreg (v 0), Reg (v 0), Reg (v 1));
            Rtl.Jump l.(1);
          ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', _ = Opt.Licm.run f in
  let g = Cfg.make f' in
  let dom = Dom.compute g in
  let loops = Loops.natural_loops g dom in
  let in_loop bi = List.exists (fun l -> Loops.Int_set.mem bi l.Loops.body) loops in
  Array.iteri
    (fun bi (b : Func.block) ->
      List.iter
        (fun i ->
          match i with
          | Rtl.Binop (Div, _, _, _) ->
            Alcotest.(check bool) "div stays guarded" true (in_loop bi)
          | _ -> ())
        b.instrs)
    (Func.blocks f')

(* --- Strength reduction --- *)

let test_strength_reduction () =
  (* t := i * 12 with i a basic IV becomes an addition chain. *)
  let f =
    mk "sr"
      [
        (fun _ -> [ Rtl.Enter 8; Rtl.Move (Lreg (v 0), Imm 0) ]);
        (fun l -> [ Rtl.Cmp (Reg (v 0), Imm 10); Rtl.Branch (Ge, l.(3)) ]);
        (fun l ->
          [
            Rtl.Binop (Mul, Lreg (v 1), Reg (v 0), Imm 12);
            Rtl.Move (Lmem (Word, Based (Ir.Conv.fp, -8)), Reg (v 1));
            Rtl.Binop (Add, Lreg (v 0), Reg (v 0), Imm 1);
            Rtl.Jump l.(1);
          ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  let f', changed = Opt.Strength.run f in
  Alcotest.(check bool) "changed" true changed;
  Check.assert_ok f';
  (* The loop body must no longer contain a multiplication. *)
  let g = Cfg.make f' in
  let dom = Dom.compute g in
  let loops = Loops.natural_loops g dom in
  let in_loop bi = List.exists (fun l -> Loops.Int_set.mem bi l.Loops.body) loops in
  Array.iteri
    (fun bi (b : Func.block) ->
      List.iter
        (fun i ->
          match i with
          | Rtl.Binop (Mul, _, _, _) ->
            Alcotest.(check bool) "mul out of the loop" false (in_loop bi)
          | _ -> ())
        b.instrs)
    (Func.blocks f')

(* --- Isel --- *)

let test_isel_copy_prop () =
  let f =
    mk "iselcp"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 0), Imm 42);
            Rtl.Cmp (Reg (v 0), Imm 0);
            Rtl.Branch (Ne, Label.of_int 1);
          ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      ]
  in
  (* fix label: block 1's label is the one the supply gave *)
  let blocks = Func.blocks f in
  let b0 = blocks.(0) in
  let target = blocks.(1).label in
  let b0 =
    { b0 with
      instrs =
        List.map
          (fun i -> Rtl.map_labels (fun _ -> target) i)
          b0.instrs
    }
  in
  let f = Func.with_blocks f [| b0; blocks.(1) |] in
  let f', changed = Opt.Isel.run Ir.Machine.cisc f in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check bool) "constant propagated into cmp" true
    (List.exists
       (fun i -> i = Rtl.Cmp (Imm 42, Imm 0))
       (Func.block f' 0).instrs)

let test_isel_cisc_fusion () =
  (* load; add; store over the same cell fuses into a memory add. *)
  let m = Rtl.Based (Ir.Conv.fp, -8) in
  let f =
    mk "fuse"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 0), Mem (Word, m));
            Rtl.Binop (Add, Lreg (v 0), Reg (v 0), Imm 1);
            Rtl.Move (Lmem (Word, m), Reg (v 0));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', _ = Opt.Isel.run Ir.Machine.cisc f in
  let f', _ = Opt.Deadvars.run f' in
  Alcotest.(check bool) "memory add present" true
    (List.exists
       (fun i -> i = Rtl.Binop (Add, Lmem (Word, m), Mem (Word, m), Imm 1))
       (Func.block f' 0).instrs);
  Alcotest.(check int) "four instructions left" 4
    (List.length (Func.block f' 0).instrs)

let test_isel_risc_rejects_mem_fold () =
  let m = Rtl.Based (Ir.Conv.fp, -8) in
  let f =
    mk "nofuse"
      [
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 0), Mem (Word, m));
            Rtl.Binop (Add, Lreg (v 1), Reg (v 0), Imm 1);
            Rtl.Move (Lmem (Word, m), Reg (v 1));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      ]
  in
  let f', _ = Opt.Isel.run Ir.Machine.risc f in
  Alcotest.(check bool) "all instructions stay legal" true
    (Opt.Legalize.check Ir.Machine.risc f')

(* All passes preserve machine legality on compiled programs. *)
let prop_passes_keep_legality =
  QCheck.Test.make ~name:"pipeline keeps machine legality" ~count:20
    (QCheck.make
       (QCheck.Gen.oneofl
          [ ("risc", Ir.Machine.risc); ("cisc", Ir.Machine.cisc) ]))
    (fun (_, machine) ->
      let src =
        "int a[10];\n\
         int main() { int i, s; s = 0; for (i = 0; i < 10; i++) { a[i] = i * 3; \
         s += a[i]; } if (s > 20) s = s - a[2]; else s = s + a[3]; return s; }"
      in
      let prog =
        Opt.Driver.compile
          { Opt.Driver.default_options with level = Opt.Driver.Jumps }
          machine src
      in
      List.for_all (Opt.Legalize.check machine) prog.Flow.Prog.funcs)

let tests =
  ( "opt",
    [
      Alcotest.test_case "chain jump to jump" `Quick test_chain_jump_to_jump;
      Alcotest.test_case "jump to next removed" `Quick test_jump_to_next_removed;
      Alcotest.test_case "branch over jump" `Quick test_branch_over_jump;
      Alcotest.test_case "unreachable removal" `Quick test_unreachable;
      Alcotest.test_case "ijump targets kept" `Quick test_unreachable_keeps_ijump_targets;
      Alcotest.test_case "reorder" `Quick test_reorder_enables_fallthrough;
      Alcotest.test_case "constfold arithmetic" `Quick test_constfold_arith;
      Alcotest.test_case "constfold at branches" `Quick test_constfold_branch;
      Alcotest.test_case "dead variables" `Quick test_deadvars;
      Alcotest.test_case "live cmp kept" `Quick test_deadvars_keeps_live_cmp;
      Alcotest.test_case "cse local" `Quick test_cse_local;
      Alcotest.test_case "cse invalidation" `Quick test_cse_invalidation;
      Alcotest.test_case "cse load/store" `Quick test_cse_loads_killed_by_store;
      Alcotest.test_case "cse extended basic block" `Quick test_cse_ebb;
      Alcotest.test_case "cse stops at joins" `Quick test_cse_join_blocked;
      Alcotest.test_case "gcse across join" `Quick test_gcse_across_join;
      Alcotest.test_case "gcse partial path blocked" `Quick test_gcse_partial_path_blocked;
      Alcotest.test_case "gcse two-address self" `Quick test_gcse_two_address_self;
      Alcotest.test_case "licm hoists invariants" `Quick test_licm_hoists;
      Alcotest.test_case "licm leaves variants" `Quick test_licm_leaves_variant;
      Alcotest.test_case "licm never hoists guarded div" `Quick test_licm_no_div_hoist;
      Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
      Alcotest.test_case "isel copy/const propagation" `Quick test_isel_copy_prop;
      Alcotest.test_case "isel cisc fusion" `Quick test_isel_cisc_fusion;
      Alcotest.test_case "isel risc stays legal" `Quick test_isel_risc_rejects_mem_fold;
      QCheck_alcotest.to_alcotest prop_passes_keep_legality;
    ] )
