(* Shared test helpers: compile and run C-subset sources through the whole
   pipeline. *)

let levels = [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ]
let machines = [ Ir.Machine.cisc; Ir.Machine.risc ]

let compile ?(level = Opt.Driver.Simple) ?(machine = Ir.Machine.cisc) src =
  Opt.Driver.compile { Opt.Driver.default_options with level } machine src

(* Compile and execute; returns (output, exit_code). *)
let run ?level ?machine ?(input = "") ?max_steps src =
  let machine = Option.value ~default:Ir.Machine.cisc machine in
  let prog = compile ?level ~machine src in
  let asm = Sim.Asm.assemble machine prog in
  let res = Sim.Interp.run ?max_steps ~input asm prog in
  (res.output, res.exit_code)

(* Execute with full measurement: returns interpreter result and assembly. *)
let run_counts ?level ?machine ?(input = "") src =
  let machine = Option.value ~default:Ir.Machine.cisc machine in
  let prog = compile ?level ~machine src in
  let asm = Sim.Asm.assemble machine prog in
  let res = Sim.Interp.run ~input asm prog in
  (res, asm)

(* All six (level, machine) outputs must agree; returns the common output. *)
let run_all_levels ?(input = "") src =
  let results =
    List.concat_map
      (fun machine ->
        List.map
          (fun level ->
            let out, code = run ~level ~machine ~input src in
            (level, machine, out, code))
          levels)
      machines
  in
  match results with
  | [] -> assert false
  | (_, _, out0, code0) :: rest ->
    List.iter
      (fun (level, machine, out, code) ->
        Alcotest.(check string)
          (Printf.sprintf "%s/%s output" (Opt.Driver.level_name level)
             machine.Ir.Machine.short)
          out0 out;
        Alcotest.(check int)
          (Printf.sprintf "%s/%s exit" (Opt.Driver.level_name level)
             machine.Ir.Machine.short)
          code0 code)
      rest;
    (out0, code0)

let check_output ?input ~expected src =
  let out, _ = run_all_levels ?input src in
  Alcotest.(check string) "output" expected out
