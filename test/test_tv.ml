(* The static translation validator and its driver integration. *)

open Ir
open Flow

let source =
  "int main() { int i, s; s = 0; for (i = 0; i < 10; i++) { s += i; } \
   putchar(65 + (s & 15)); putchar(10); return 0; }"

let main_of prog =
  List.find (fun f -> String.equal (Func.name f) "main") prog.Prog.funcs

let run_prog machine prog =
  let asm = Sim.Asm.assemble machine prog in
  let res = Sim.Interp.run ~max_steps:1_000_000 asm prog in
  (res.output, res.exit_code)

let verdict = Alcotest.testable (fun ppf v -> Format.pp_print_string ppf (Tv.verdict_name v)) (fun a b -> Tv.verdict_name a = Tv.verdict_name b)

(* --- certify_pass on hand-picked function pairs --- *)

let test_identity_certified () =
  let f = main_of (Frontend.Codegen.compile_source source) in
  Alcotest.check verdict "f simulates itself" Tv.Certified
    (Tv.certify_pass ~pass:"cse" ~before:f ~after:f ())

let test_dropped_store_refuted () =
  let f =
    main_of
      (Frontend.Codegen.compile_source
         "int g; int main() { g = 7; return 0; }")
  in
  let is_store = function
    | Rtl.Move (Rtl.Lmem _, _)
    | Rtl.Binop (_, Rtl.Lmem _, _, _)
    | Rtl.Unop (_, Rtl.Lmem _, _) -> true
    | _ -> false
  in
  let dropped = ref false in
  let blocks =
    Array.map
      (fun (b : Func.block) ->
        {
          b with
          Func.instrs =
            List.filter
              (fun i ->
                if (not !dropped) && is_store i then begin
                  dropped := true;
                  false
                end
                else true)
              b.Func.instrs;
        })
      (Func.blocks f)
  in
  Alcotest.(check bool) "a store was dropped" true !dropped;
  let broken = Func.with_blocks f blocks in
  match Tv.certify_pass ~pass:"isel" ~before:f ~after:broken () with
  | Tv.Refuted { path; _ } ->
    Alcotest.(check bool) "counterexample path nonempty" true (path <> [])
  | v ->
    Alcotest.fail
      (Printf.sprintf "expected a refutation, got %s" (Tv.verdict_name v))

let test_gated_passes () =
  let f = main_of (Frontend.Codegen.compile_source source) in
  List.iter
    (fun pass ->
      Alcotest.(check bool)
        (pass ^ " is gated") true
        (Tv.gated pass <> None);
      match Tv.certify_pass ~pass ~before:f ~after:f () with
      | Tv.Unknown { timeout = false; _ } -> ()
      | v ->
        Alcotest.fail
          (Printf.sprintf "%s: expected Unknown, got %s" pass
             (Tv.verdict_name v)))
    [ "regalloc"; "licm"; "strength" ];
  Alcotest.(check bool) "cse is in scope" true (Tv.gated "cse" = None)

let test_fuel_timeout () =
  let f = main_of (Frontend.Codegen.compile_source source) in
  match Tv.certify_pass ~fuel:0 ~pass:"cse" ~before:f ~after:f () with
  | Tv.Unknown { timeout = true; _ } -> ()
  | v ->
    Alcotest.fail
      (Printf.sprintf "expected a timeout, got %s" (Tv.verdict_name v))

(* --- the whole pipeline certifies, including loop rotation --- *)

let certified_compile level =
  let opts =
    { (Opt.Driver.options ~level ()) with Opt.Driver.certify = true }
  in
  let verdicts = ref [] in
  let diags = ref [] in
  let prog = Opt.Driver.compile ~verdicts ~diags opts Ir.Machine.risc source in
  (prog, List.rev !verdicts, !diags)

let test_pipeline_certifies () =
  List.iter
    (fun level ->
      let _, verdicts, _ = certified_compile level in
      Alcotest.(check bool) "verdicts recorded" true (verdicts <> []);
      List.iter
        (fun (r : Tv.record) ->
          match r.Tv.verdict with
          | Tv.Refuted { reason; _ } ->
            Alcotest.fail
              (Printf.sprintf "%s/%s falsely refuted: %s" r.Tv.vfunc
                 r.Tv.vpass reason)
          | _ -> ())
        verdicts)
    [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ]

let test_loop_rotation_certified () =
  (* Loop-condition replication rotates the entry test into the
     pre-header: exactly the catch-up-stepping case. *)
  let _, verdicts, _ = certified_compile Opt.Driver.Loops in
  match
    List.find_opt (fun (r : Tv.record) -> r.Tv.vpass = "replicate") verdicts
  with
  | Some r -> Alcotest.check verdict "replicate certified" Tv.Certified r.Tv.verdict
  | None -> Alcotest.fail "replicate recorded no verdict"

(* --- injected miscompilations are statically refuted and rolled back --- *)

let test_flip_branch_refuted () =
  let machine = Ir.Machine.risc in
  let opts = Opt.Driver.options ~level:Opt.Driver.Jumps () in
  let expected = run_prog machine (Opt.Driver.compile opts machine source) in
  let opts =
    {
      opts with
      Opt.Driver.certify = true;
      inject_fault = Some "isel:flip-branch";
    }
  in
  let verdicts = ref [] in
  let diags = ref [] in
  let prog = Opt.Driver.compile ~verdicts ~diags opts machine source in
  let refuted =
    List.filter
      (fun (r : Tv.record) ->
        match r.Tv.verdict with Tv.Refuted _ -> true | _ -> false)
      !verdicts
  in
  (match refuted with
  | { Tv.vpass = "isel"; verdict = Tv.Refuted { path; _ }; _ } :: _ ->
    Alcotest.(check bool) "counterexample path nonempty" true (path <> [])
  | _ -> Alcotest.fail "flip-branch on isel was not refuted");
  Alcotest.(check bool) "certify-refuted diagnostic" true
    (List.exists
       (fun (d : Telemetry.Diag.t) -> d.code = Telemetry.Diag.Certify_refuted)
       !diags);
  (* The refuted pass was rolled back: the program still runs correctly. *)
  Alcotest.(check (pair string int)) "rolled-back program correct" expected
    (run_prog machine prog)

let test_drop_store_refuted_in_driver () =
  let machine = Ir.Machine.risc in
  let opts =
    {
      (Opt.Driver.options ~level:Opt.Driver.Jumps ()) with
      Opt.Driver.certify = true;
      inject_fault = Some "isel:drop-store";
    }
  in
  let verdicts = ref [] in
  let diags = ref [] in
  (* A global keeps real memory stores in the pre-allocation RTL — locals
     live in virtual registers, leaving drop-store nothing to drop. *)
  let store_source =
    "int g; int main() { int i; for (i = 0; i < 10; i++) { g = g + i; } \
     putchar(65 + (g & 15)); putchar(10); return 0; }"
  in
  ignore (Opt.Driver.compile ~verdicts ~diags opts machine store_source);
  Alcotest.(check bool) "drop-store refuted" true
    (List.exists
       (fun (r : Tv.record) ->
         match r.Tv.verdict with Tv.Refuted _ -> true | _ -> false)
       !verdicts)

let test_unknown_fault_mode_rejected () =
  let opts =
    {
      (Opt.Driver.options ~level:Opt.Driver.Simple ()) with
      Opt.Driver.inject_fault = Some "isel:scramble";
    }
  in
  match Opt.Driver.compile opts Ir.Machine.risc source with
  | _ -> Alcotest.fail "unknown fault mode accepted"
  | exception Telemetry.Diag.Error d ->
    Alcotest.(check bool) "names the mode" true
      (Astring.String.is_infix ~affix:"scramble" d.Telemetry.Diag.message)

(* --- the copyconst memo keyed by physical identity (regression) --- *)

let test_facts_cache_invalidation () =
  let f = main_of (Frontend.Codegen.compile_source source) in
  let facts1 = Tv.copyconst_facts f in
  Alcotest.(check bool) "memo hit returns the same facts" true
    (facts1 == Tv.copyconst_facts f);
  (* Mutating the function yields a fresh physical identity; the memo
     must recompute, never serve the stale array. *)
  let grown =
    Func.with_blocks f
      (Array.append (Func.blocks f)
         [|
           {
             Func.label = Func.fresh_label f;
             instrs = [ Rtl.Jump (Func.block f 0).Func.label ];
           };
         |])
  in
  let facts2 = Tv.copyconst_facts grown in
  Alcotest.(check bool) "mutated function gets fresh facts" false
    (facts1 == facts2);
  match (facts1, facts2) with
  | Some a1, Some a2 ->
    Alcotest.(check bool) "facts cover the mutated shape" true
      (Array.length a2 = Array.length a1 + 1)
  | _ -> Alcotest.fail "copyconst diverged on a loop-free function"

(* --- analysis divergence is a typed diagnostic, not a crash --- *)

let test_divergence_budget_names_analysis () =
  let f = main_of (Frontend.Codegen.compile_source source) in
  let cfg = Cfg.make f in
  let instrs = Array.map (fun (b : Func.block) -> b.Func.instrs) (Func.blocks f) in
  match
    Analysis.Reaching.solve ~max_visits:1 ~graph:(Cfg.graph cfg) ~instrs ()
  with
  | _ -> Alcotest.fail "one visit cannot reach a fixpoint on a loop"
  | exception Analysis.Dataflow.Diverged msg ->
    Alcotest.(check bool) "message names the analysis" true
      (Astring.String.is_prefix ~affix:"analysis reaching:" msg)

let test_divergence_quarantines_pass () =
  let machine = Ir.Machine.risc in
  let opts = Opt.Driver.options ~level:Opt.Driver.Jumps () in
  let prog0 = Frontend.Codegen.compile_source source in
  let diags = ref [] in
  let diverge ?allow_irreducible:_ _f =
    raise (Analysis.Dataflow.Diverged "analysis loopy: no fixpoint")
  in
  let prog =
    Prog.map_funcs
      (fun f ->
        Opt.Driver.optimize_func_with ~diags ~replicate:diverge opts machine f)
      prog0
  in
  Alcotest.(check bool) "analysis-diverged diagnostic" true
    (List.exists
       (fun (d : Telemetry.Diag.t) ->
         d.code = Telemetry.Diag.Analysis_diverged)
       !diags);
  (* The pass was quarantined; the rest of the pipeline still ran. *)
  let out, _ = run_prog machine prog in
  Alcotest.(check string) "output survives the diverging pass" "N\n" out

let tests =
  ( "tv",
    [
      Alcotest.test_case "identity certified" `Quick test_identity_certified;
      Alcotest.test_case "dropped store refuted" `Quick
        test_dropped_store_refuted;
      Alcotest.test_case "gated passes" `Quick test_gated_passes;
      Alcotest.test_case "fuel timeout" `Quick test_fuel_timeout;
      Alcotest.test_case "pipeline certifies" `Quick test_pipeline_certifies;
      Alcotest.test_case "loop rotation certified" `Quick
        test_loop_rotation_certified;
      Alcotest.test_case "flip-branch refuted" `Quick test_flip_branch_refuted;
      Alcotest.test_case "drop-store refuted" `Quick
        test_drop_store_refuted_in_driver;
      Alcotest.test_case "unknown fault mode rejected" `Quick
        test_unknown_fault_mode_rejected;
      Alcotest.test_case "facts cache invalidation" `Quick
        test_facts_cache_invalidation;
      Alcotest.test_case "divergence budget names analysis" `Quick
        test_divergence_budget_names_analysis;
      Alcotest.test_case "divergence quarantines pass" `Quick
        test_divergence_quarantines_pass;
    ] )
