open Ir

let v n = Reg.Virt n

let test_lookup () =
  Alcotest.(check bool) "risc by tag" true (Machine.of_short "risc" = Some Machine.risc);
  Alcotest.(check bool) "cisc by tag" true (Machine.of_short "cisc" = Some Machine.cisc);
  Alcotest.(check bool) "unknown tag" true (Machine.of_short "vax" = None);
  Alcotest.(check bool) "risc has delay slots" true Machine.risc.delay_slots;
  Alcotest.(check bool) "cisc has none" false Machine.cisc.delay_slots

let test_risc_legality () =
  let ok i = Machine.legal_instr Machine.risc i in
  Alcotest.(check bool) "reg move" true (ok (Move (Lreg (v 0), Reg (v 1))));
  Alcotest.(check bool) "load based" true
    (ok (Move (Lreg (v 0), Mem (Word, Based (v 1, 8)))));
  Alcotest.(check bool) "no absolute load" false
    (ok (Move (Lreg (v 0), Mem (Word, Abs ("g", 0)))));
  Alcotest.(check bool) "no indexed load" false
    (ok (Move (Lreg (v 0), Mem (Word, Indexed (v 1, v 2, 4, 0)))));
  Alcotest.(check bool) "no store of immediate" false
    (ok (Move (Lmem (Word, Based (v 0, 0)), Imm 1)));
  Alcotest.(check bool) "three-address binop" true
    (ok (Binop (Add, Lreg (v 0), Reg (v 1), Reg (v 2))));
  Alcotest.(check bool) "imm second operand" true
    (ok (Binop (Add, Lreg (v 0), Reg (v 1), Imm 5)));
  Alcotest.(check bool) "no imm first operand" false
    (ok (Binop (Sub, Lreg (v 0), Imm 5, Reg (v 1))));
  Alcotest.(check bool) "no memory operand in binop" false
    (ok (Binop (Add, Lreg (v 0), Reg (v 1), Mem (Word, Based (v 2, 0)))));
  Alcotest.(check bool) "cmp reg imm" true (ok (Cmp (Reg (v 0), Imm 3)));
  Alcotest.(check bool) "no cmp imm first" false (ok (Cmp (Imm 3, Reg (v 0))));
  Alcotest.(check bool) "big displacement illegal" false
    (ok (Move (Lreg (v 0), Mem (Word, Based (v 1, 100_000)))))

let test_cisc_legality () =
  let ok i = Machine.legal_instr Machine.cisc i in
  Alcotest.(check bool) "mem-to-mem move" true
    (ok (Move (Lmem (Word, Based (v 0, 0)), Mem (Word, Based (v 1, 4)))));
  Alcotest.(check bool) "store immediate" true
    (ok (Move (Lmem (Word, Abs ("g", 0)), Imm 7)));
  Alcotest.(check bool) "two-address required" false
    (ok (Binop (Add, Lreg (v 0), Reg (v 1), Reg (v 2))));
  Alcotest.(check bool) "two-address ok" true
    (ok (Binop (Add, Lreg (v 0), Reg (v 0), Reg (v 2))));
  Alcotest.(check bool) "memory destination op" true
    (ok (Binop (Add, Lmem (Word, Based (v 0, 0)), Mem (Word, Based (v 0, 0)), Imm 1)));
  Alcotest.(check bool) "two distinct memory operands illegal" false
    (ok (Binop (Add, Lmem (Word, Based (v 0, 0)), Mem (Word, Based (v 0, 0)),
                Mem (Word, Based (v 1, 0)))));
  Alcotest.(check bool) "indexed addressing" true
    (ok (Move (Lreg (v 0), Mem (Word, Indexed (v 1, v 2, 4, 8)))));
  Alcotest.(check bool) "bad scale" false
    (ok (Move (Lreg (v 0), Mem (Word, Indexed (v 1, v 2, 3, 0)))))

let test_sizes () =
  let sz m i = Machine.instr_size m i in
  (* RISC: fixed 4 bytes. *)
  List.iter
    (fun i -> Alcotest.(check int) "risc size" 4 (sz Machine.risc i))
    [
      Rtl.Nop;
      Move (Lreg (v 0), Imm 100000);
      Binop (Add, Lreg (v 0), Reg (v 0), Imm 1);
      Jump (Label.of_int 0);
    ];
  (* CISC: variable. *)
  Alcotest.(check int) "reg move" 2 (sz Machine.cisc (Move (Lreg (v 0), Reg (v 1))));
  Alcotest.(check int) "imm16 move" 4 (sz Machine.cisc (Move (Lreg (v 0), Imm 100)));
  Alcotest.(check int) "imm32 move" 6 (sz Machine.cisc (Move (Lreg (v 0), Imm 100000)));
  Alcotest.(check int) "quick add" 2
    (sz Machine.cisc (Binop (Add, Lreg (v 0), Reg (v 0), Imm 1)));
  Alcotest.(check int) "non-quick add" 4
    (sz Machine.cisc (Binop (Add, Lreg (v 0), Reg (v 0), Imm 100)));
  Alcotest.(check int) "ret short" 2 (sz Machine.cisc Rtl.Ret);
  Alcotest.(check bool) "all sizes positive" true
    (List.for_all
       (fun i -> sz Machine.cisc i > 0 && sz Machine.risc i > 0)
       [ Rtl.Ret; Leave; Enter 16; Nop; Call ("f", 0); Jump (Label.of_int 0) ])

let tests =
  ( "machine",
    [
      Alcotest.test_case "lookup" `Quick test_lookup;
      Alcotest.test_case "risc legality" `Quick test_risc_legality;
      Alcotest.test_case "cisc legality" `Quick test_cisc_legality;
      Alcotest.test_case "instruction sizes" `Quick test_sizes;
    ] )
