The daemon front door: jumprepc serve owns a Unix-domain socket, jumprepc
client speaks the framed JSON protocol to it.  Socket paths live in /tmp
because the sandbox cwd overflows the ~100-byte sun_path limit.

  $ SOCK=/tmp/jrd-cram-$$.sock
  $ rm -f $SOCK
  $ ../../bin/jumprepc.exe serve --socket $SOCK --quiet > serve.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 100); do [ -S $SOCK ] && break; sleep 0.1; done

Liveness:

  $ ../../bin/jumprepc.exe client --socket $SOCK ping
  {"pong":true}

A compile through the daemon is byte-identical to the one-shot CLI:

  $ cat > tiny.c <<'SRC'
  > int main() {
  >   int i, s;
  >   s = 0;
  >   for (i = 0; i < 4; i++) s = s + i;
  >   putchar('0' + s);
  >   putchar('\n');
  >   return 0;
  > }
  > SRC
  $ ../../bin/jumprepc.exe client --socket $SOCK compile tiny.c -O jumps -m risc > daemon.json
  $ ../../bin/jumprepc.exe compile tiny.c -O jumps -m risc --stats-json > oneshot.json
  $ cmp daemon.json oneshot.json && echo byte-identical
  byte-identical

So is a measure — the rows carry float formatting that must survive the
wire untouched:

  $ ../../bin/jumprepc.exe client --socket $SOCK measure tiny.c -m cisc > dmeasure.json
  $ ../../bin/jumprepc.exe measure tiny.c -m cisc --stats-json > omeasure.json
  $ cmp dmeasure.json omeasure.json && echo byte-identical
  byte-identical

Connection-level chaos (disconnects, slowloris dribble, garbage frames on
throwaway connections) does not perturb results:

  $ ../../bin/jumprepc.exe client --socket $SOCK compile tiny.c -O jumps -m risc \
  >   --chaos disconnect:0.4,slowloris:0.3,garbage:0.3,seed:5 --count 3 > chaos.json
  $ cat oneshot.json oneshot.json oneshot.json | cmp chaos.json - && echo byte-identical
  byte-identical

A guest program fault is a typed error with the one-shot exit code (2),
not a server casualty:

  $ cat > div0.c <<'SRC'
  > int main() { return 1 / (1 - 1); }
  > SRC
  $ ../../bin/jumprepc.exe client --socket $SOCK measure div0.c -m risc
  jumprepc: error: div0.c: runtime error: division by zero
  [2]
  $ ../../bin/jumprepc.exe client --socket $SOCK ping
  {"pong":true}

A drain request shuts the server down gracefully: in-flight work
finishes, the socket is unlinked, exit is clean.

  $ ../../bin/jumprepc.exe client --socket $SOCK drain
  {"draining":true}
  $ wait $SRV
  $ grep -c 'drained:' serve.log
  1
  $ [ ! -e $SOCK ] && echo socket unlinked
  socket unlinked

Once the server is gone, connecting is a typed io-error, not a hang or a
backtrace:

  $ ../../bin/jumprepc.exe client --socket $SOCK ping 2>&1 | grep -c 'error: \[io-error\] cannot connect'
  1
