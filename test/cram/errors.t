Malformed inputs must die with one structured diagnostic — a typed code,
the file and line, a clean nonzero exit — never a raw OCaml backtrace.

A lexical error names the file, line and offending character:

  $ printf 'int main() { return 0; } `\n' > badtok.c
  $ ../../bin/jumprepc.exe compile badtok.c
  jumprepc: error: [parse-error] badtok.c:1: lexical error: unexpected character '`'
  [1]

A syntax error (truncated input) reports where parsing stopped:

  $ cat > trunc.c <<'SRC'
  > int main() {
  >   int x; x = 1 +
  > SRC
  $ ../../bin/jumprepc.exe compile trunc.c
  jumprepc: error: [parse-error] trunc.c:3: syntax error: unexpected <eof> in expression
  [1]

A semantic error carries the file and the offending name:

  $ cat > sem.c <<'SRC'
  > int main() {
  >   return nosuchvar;
  > }
  > SRC
  $ ../../bin/jumprepc.exe compile sem.c
  jumprepc: error: [semantic-error] sem.c: unknown variable nosuchvar
  [1]

An unreadable path is an io-error, not a crash (a directory sneaks past
cmdliner's file-existence check):

  $ mkdir -p d.c
  $ ../../bin/jumprepc.exe compile d.c
  jumprepc: error: [io-error] d.c: Is a directory
  [1]

The same goes for `run`:

  $ ../../bin/jumprepc.exe run sem.c
  jumprepc: error: [semantic-error] sem.c: unknown variable nosuchvar
  [1]

Robustness knobs.  A bad JUMPREP_JOBS value warns and degrades to one
job instead of aborting:

  $ cat > tiny.c <<'SRC'
  > int main() {
  >   int i, s;
  >   s = 0;
  >   for (i = 0; i < 4; i++) s = s + i;
  >   putchar('0' + s);
  >   putchar('\n');
  >   return 0;
  > }
  > SRC
  $ JUMPREP_JOBS=abc ../../bin/jumprepc.exe run tiny.c
  jumprepc: warning: JUMPREP_JOBS="abc" is not a positive integer; using 1
  6

An exhausted growth budget degrades JUMPS to LOOPS to SIMPLE with typed
warnings — the program still compiles, runs and answers correctly:

  $ ../../bin/jumprepc.exe run tiny.c -O jumps --growth-budget 0
  6
  jumprepc: warning: [budget-exhausted] main/budget: growth budget exhausted at JUMPS; degrading to LOOPS
  jumprepc: warning: [budget-exhausted] main/budget: growth budget exhausted at LOOPS; degrading to SIMPLE

A downstream consumer hanging up early (EPIPE) is a typed io-error and a
clean exit, not a fatal Sys_error backtrace.  The source is made large
enough that the listing overflows the pipe buffer after `head` exits:

  $ { echo 'int main() {'
  >   for i in $(seq 8000); do echo '  putchar(65);'; done
  >   echo '  return 0;'
  >   echo '}'; } > wide.c
  $ (../../bin/jumprepc.exe compile wide.c -O jumps -m risc 2> epipe.log \
  >   || echo "exit: $?" >> epipe.log) | head -1 > /dev/null
  $ cat epipe.log
  jumprepc: error: [io-error] Broken pipe
  exit: 1
