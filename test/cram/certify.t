Static per-pass translation validation from the CLI.  A program with
real memory traffic (a global accumulator) certifies cleanly; licm is
outside the certifier's scope, so it is reported unknown — never
silently trusted, never falsely refuted:

  $ cat > store.c <<'SRC'
  > int g;
  > int main() {
  >   int i;
  >   for (i = 0; i < 5; i++) { g = g + i; }
  >   putchar('0' + g);
  >   putchar(10);
  >   return 0;
  > }
  > SRC

  $ ../../bin/jumprepc.exe certify store.c -O jumps 2>/dev/null
  store.c: 5 certified, 1 unknown, 0 refuted
    main/licm: unknown: loop-invariant code motion inserts preheaders and moves code across blocks

The --json schema: one object per target carrying the run coordinates
(target, level, machine), one verdict per (function x changing pass),
and the summary counts:

  $ ../../bin/jumprepc.exe certify store.c -O jumps --json 2>/dev/null
  [{"target":"store.c","level":"JUMPS","machine":"risc","verdicts":[{"func":"main","pass":"branch-chain","verdict":"certified"},{"func":"main","pass":"replicate","verdict":"certified"},{"func":"main","pass":"isel","verdict":"certified"},{"func":"main","pass":"cse","verdict":"certified"},{"func":"main","pass":"deadvars","verdict":"certified"},{"func":"main","pass":"licm","verdict":"unknown","reason":"loop-invariant code motion inserts preheaders and moves code across blocks","timeout":false}],"summary":{"certified":5,"unknown":1,"refuted":0}}]

An injected drop-store miscompilation is statically refuted — no
execution involved — with a counterexample path of paired
old-block/new-block labels, and the command exits 1.  The refuted pass
is rolled back, so the rest of the pipeline still certifies:

  $ ../../bin/jumprepc.exe certify store.c -O jumps --inject-fault isel:drop-store 2>/dev/null
  store.c: 4 certified, 1 unknown, 1 refuted
    main/isel: REFUTED: effect count differs: 1 vs 0 at blocks L1/L1
      path: L5/L5 -> L6/L6 -> L1/L1
    main/licm: unknown: loop-invariant code motion inserts preheaders and moves code across blocks
  [1]

The refuted verdict carries the reason and the counterexample path in
JSON as well:

  $ ../../bin/jumprepc.exe certify store.c -O jumps --inject-fault isel:drop-store --json 2>/dev/null | grep -o '{"func":"main","pass":"isel"[^]]*]}'
  {"func":"main","pass":"isel","verdict":"refuted","reason":"effect count differs: 1 vs 0 at blocks L1/L1","path":["L5/L5","L6/L6","L1/L1"]}

The lint --json schema alongside, for the shared diag renderer: one
object per target, findings as typed diagnostic objects:

  $ ../../bin/jumprepc.exe lint store.c -O jumps --json
  [{"target":"store.c","findings":[{"code":"const-branch","severity":"warning","func":"main","pass":"lint","message":"L6: branch to L4 is never taken"}]}]

Every bundled benchmark certifies with zero refutations at all three
optimization levels:

  $ for lvl in simple loops jumps; do
  >   ../../bin/jumprepc.exe certify --benches -O $lvl 2>/dev/null | grep -c ' 0 refuted$'
  > done
  19
  19
  19
