The campaign result store from the CLI: certify and fuzz campaigns
commit their completed results to a content-addressed store, a resumed
rerun replays them without recomputing, corruption is detected by the
integrity header and recovered behind a typed store-corrupt diagnostic,
and the store subcommand inspects and garbage-collects the tree.

A cold certify campaign computes the target and commits one entry:

  $ ../../bin/jumprepc.exe certify wc --store st --resume 2>&1
  wc: 9 certified, 2 unknown, 0 refuted
    putnum/gcse: unknown: blocks L9/L9: argument to putchar not provably equal: M0[((v1 + -1) + (r20 + -16))] vs M0[(v15 + (v1 + -1))]
    putnum/licm: unknown: loop-invariant code motion inserts preheaders and moves code across blocks
  jumprepc: warning: [uncertifiable-pass] putnum/gcse: blocks L9/L9: argument to putchar not provably equal: M0[((v1 + -1) + (r20 + -16))] vs M0[(v15 + (v1 + -1))]
  jumprepc: warning: [uncertifiable-pass] putnum/licm: loop-invariant code motion inserts preheaders and moves code across blocks
  jumprepc: certify campaign: 1 targets, 0 cached, 1 computed

The resumed rerun replays stdout and the diagnostic lines byte-for-byte
from the store, computing nothing:

  $ ../../bin/jumprepc.exe certify wc --store st --resume 2>&1
  wc: 9 certified, 2 unknown, 0 refuted
    putnum/gcse: unknown: blocks L9/L9: argument to putchar not provably equal: M0[((v1 + -1) + (r20 + -16))] vs M0[(v15 + (v1 + -1))]
    putnum/licm: unknown: loop-invariant code motion inserts preheaders and moves code across blocks
  jumprepc: warning: [uncertifiable-pass] putnum/gcse: blocks L9/L9: argument to putchar not provably equal: M0[((v1 + -1) + (r20 + -16))] vs M0[(v15 + (v1 + -1))]
  jumprepc: warning: [uncertifiable-pass] putnum/licm: loop-invariant code motion inserts preheaders and moves code across blocks
  jumprepc: certify campaign: 1 targets, 1 cached, 0 computed

Truncating the committed entry fails the integrity header: the next
resume warns with the typed store-corrupt diagnostic, recomputes, and
recommits — same output, never a crash:

  $ truncate -s 10 st/objects/*/*.json
  $ ../../bin/jumprepc.exe certify wc --store st --resume 2>&1 | sed 's/entry [0-9a-f]*/entry KEY/'
  wc: 9 certified, 2 unknown, 0 refuted
    putnum/gcse: unknown: blocks L9/L9: argument to putchar not provably equal: M0[((v1 + -1) + (r20 + -16))] vs M0[(v15 + (v1 + -1))]
    putnum/licm: unknown: loop-invariant code motion inserts preheaders and moves code across blocks
  jumprepc: warning: [store-corrupt] store: entry KEY: no header line; recomputing
  jumprepc: warning: [uncertifiable-pass] putnum/gcse: blocks L9/L9: argument to putchar not provably equal: M0[((v1 + -1) + (r20 + -16))] vs M0[(v15 + (v1 + -1))]
  jumprepc: warning: [uncertifiable-pass] putnum/licm: loop-invariant code motion inserts preheaders and moves code across blocks
  jumprepc: certify campaign: 1 targets, 0 cached, 1 computed

A bit flip in the payload fails the digest check the same way:

  $ python3 -c "
  > import glob
  > p = glob.glob('st/objects/*/*.json')[0]
  > data = bytearray(open(p, 'rb').read())
  > data[len(data) // 2] ^= 0x40
  > open(p, 'wb').write(data)" > /dev/null
  $ ../../bin/jumprepc.exe certify wc --store st --resume 2>&1 | grep store-corrupt | sed 's/entry [0-9a-f]*/entry KEY/'
  jumprepc: warning: [store-corrupt] store: entry KEY: payload digest mismatch (bit flip?); recomputing

Fuzz campaigns share the store discipline — per-seed verdict entries,
zero recomputes on the warm rerun:

  $ ../../bin/jumprepc.exe fuzz --seeds 2 --store st --resume --quiet
  fuzz: 2 seeds, 0 failures
  jumprepc: fuzz campaign: 2 seeds, 0 cached, 2 computed
  $ ../../bin/jumprepc.exe fuzz --seeds 2 --store st --resume --quiet
  fuzz: 2 seeds, 0 failures
  jumprepc: fuzz campaign: 2 seeds, 2 cached, 0 computed

--resume without a store is refused rather than silently ignored:

  $ ../../bin/jumprepc.exe fuzz --seeds 1 --resume --quiet
  jumprepc: fuzz: --resume requires --store DIR
  [2]

The store subcommand reports committed entries and pending leases, and
gc evicts the oldest entries beyond --max-entries:

  $ ../../bin/jumprepc.exe store stats --store st | sed 's/[0-9]* payload bytes/N payload bytes/'
  store st: 3 entries, N payload bytes, 0 pending leases
  $ ../../bin/jumprepc.exe store gc --store st --max-entries 1
  store st: evicted 2 entries, removed 0 staged files
  $ ../../bin/jumprepc.exe store stats --store st --json | sed 's/"payload_bytes":[0-9]*/"payload_bytes":0/'
  {"dir":"st","entries":1,"payload_bytes":0,"pending":[]}

A missing store is a clean usage error:

  $ ../../bin/jumprepc.exe store stats --store nosuch
  jumprepc: store: no store at nosuch
  [2]
