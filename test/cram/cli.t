The bundled benchmark list names the paper's 14 programs plus the
five corpus additions (three control-flow-heavy, two arithmetic-heavy):

  $ ../../bin/jumprepc.exe list | wc -l
  19

Compile and run a tiny program end to end:

  $ cat > tiny.c <<'SRC'
  > int main() {
  >   int i, s;
  >   s = 0;
  >   for (i = 0; i < 4; i++) s = s + i;
  >   putchar('0' + s);
  >   putchar('\n');
  >   return 0;
  > }
  > SRC

  $ ../../bin/jumprepc.exe run tiny.c -O jumps -m risc
  6

  $ ../../bin/jumprepc.exe measure tiny.c -m cisc | awk '{print $1}'
  level
  SIMPLE
  LOOPS
  JUMPS

The unconditional jumps ('PC=L') of the JUMPS build are all gone (grep
finds nothing and exits 1); two conditional branches remain — the loop's
original test plus its replicated, reversed copy, as in the paper's
Table 1:

  $ ../../bin/jumprepc.exe compile tiny.c -O jumps -m cisc --dump-rtl | grep -c 'PC=L'
  0
  [1]

  $ ../../bin/jumprepc.exe compile tiny.c -O jumps -m cisc --dump-rtl | grep -c 'PC=NZ'
  2

Telemetry: --stats-json prints one machine-readable summary line, and
--trace-passes -o writes a JSONL event trace:

  $ ../../bin/jumprepc.exe compile tiny.c -O jumps -m cisc --trace-passes -o events.jsonl --stats-json | tr ',' '\n' | grep -c '"level"\|"machine"\|"static_instrs"\|"static_ujumps"'
  4

  $ grep -q '"ev":"pass_begin"' events.jsonl && grep -q '"ev":"pass_end"' events.jsonl && grep -q '"ev":"replication_applied"' events.jsonl && echo traced
  traced

The trace's final pass_end must agree with the stats line -- per-pass
instruction deltas reconcile with the assembled static count (cisc has
no delay slots, so the equality is exact):

  $ test "$(grep '"ev":"pass_end"' events.jsonl | tail -1 | tr ',' '\n' | grep '"instrs_after"' | tr -dc 0-9)" = "$(../../bin/jumprepc.exe compile tiny.c -O jumps -m cisc --stats-json | tr ',' '\n' | grep '"static_instrs"' | tr -dc 0-9)" && echo reconciled
  reconciled

explain names a decision for every unconditional jump:

  $ ../../bin/jumprepc.exe explain tiny.c -O jumps -m cisc
  function main:
    replicated during compilation (1):
      L5 -> L3: favor-loops copy of 1 block (2 RTLs)
    remaining unconditional jumps: none
  total: 1 replicated, 0 remaining

Robustness: the expensive per-pass checks accept a clean compilation
(same output, exit 0, even under --strict):

  $ ../../bin/jumprepc.exe run tiny.c -O jumps --verify-passes --strict
  6

--inject-fault corrupts the named pass's output; the always-on verifier
catches it, quarantines the pass, rolls the function back to the
last-good IR and still produces a correct program (exit 0, with a
warning on stderr):

  $ ../../bin/jumprepc.exe run tiny.c -O jumps --inject-fault replicate 2>err.txt
  6
  $ grep -c 'malformed-ir' err.txt
  1

Under --strict the quarantine becomes exit 3:

  $ ../../bin/jumprepc.exe run tiny.c -O jumps --inject-fault replicate --strict 2>/dev/null
  6
  [3]

measure reports a per-level status verdict in its last column:

  $ ../../bin/jumprepc.exe measure tiny.c -m cisc | awk '{print $NF}'
  status
  ok
  ok
  ok

The three execution engines are observationally equivalent — same
output, same exit code — whichever one runs the program:

  $ for e in threaded decoded reference; do
  >   ../../bin/jumprepc.exe run tiny.c -O jumps -m risc --engine $e
  > done
  6
  6
  6

  $ ../../bin/jumprepc.exe run tiny.c --engine warp
  jumprepc: option '--engine': unknown engine "warp"
  Usage: jumprepc run [OPTION]… FILE
  Try 'jumprepc run --help' or 'jumprepc --help' for more information.
  [124]

On CISC the displacement pass picks short branch forms where the span
allows, so the assembled code is smaller than the fixed 4-byte-branch
encoding (the "fixed" figure):

  $ ../../bin/jumprepc.exe compile tiny.c -O jumps -m cisc --dump-asm | tail -2
  21 instructions, 0 unconditional jumps, 0 nops, 62 code bytes
  displacement: 2 short, 0 word, 0 long (62 bytes, fixed 66)

RISC keeps fixed four-byte instructions and prints no displacement
summary:

  $ ../../bin/jumprepc.exe compile tiny.c -O jumps -m risc --dump-asm | tail -2
  
  22 instructions, 0 unconditional jumps, 2 nops, 88 code bytes


Step-limit exhaustion is a distinct timeout outcome (exit 124), not a
runtime error:

  $ ../../bin/jumprepc.exe run tiny.c -O simple --max-steps 10
  tiny.c: timeout: step limit exhausted after 10 instructions
  [124]

A small fuzz campaign: every (level, machine) configuration must match
the SIMPLE/cisc reference byte for byte:

  $ ../../bin/jumprepc.exe fuzz --seeds 2 --quiet --out ff
  fuzz: 2 seeds, 0 failures

An induced failure is delta-reduced to a minimal reproducer (at most 25
lines) and the campaign exits nonzero:

  $ ../../bin/jumprepc.exe fuzz --seeds 1 --quiet --out ff2 --inject-fault replicate
  seed 0: quarantine at SIMPLE/cisc, reduced reproducer: ff2/seed-0.c
  fuzz: 1 seeds, 1 failures
  [1]

  $ grep -c 'quarantine' ff2/seed-0.c
  1
  $ test "$(wc -l < ff2/seed-0.c)" -le 25 && echo small
  small

lint reports static-analysis findings over the compiled RTL.  A
conditionally initialized local is an error-severity uninit-read:

  $ cat > uninit.c <<'SRC'
  > int main() {
  >   int x;
  >   int c;
  >   c = getchar();
  >   if (c > 70) { x = 1; }
  >   putchar(65 + x);
  >   return 0;
  > }
  > SRC

  $ ../../bin/jumprepc.exe lint uninit.c -O simple | grep -c 'uninit-read'
  1

Errors drive exit 3 under --strict:

  $ ../../bin/jumprepc.exe lint uninit.c -O simple --strict > /dev/null
  [3]

Warnings never fail --strict (exit 0).  At JUMPS, replicating the loop
entry put the loop's exit test in a context where the bound is known --
lint proves the replicated guard can never fire:

  $ ../../bin/jumprepc.exe lint tiny.c -O jumps --strict
  tiny.c: 0 errors, 1 warning
    warning: [const-branch] main/lint: L6: branch to L4 is never taken

At SIMPLE the loop jump is still there and shows up as a
warning-severity replication outlook:

  $ ../../bin/jumprepc.exe lint tiny.c -O simple --strict | grep -c 'code-growth\|loop-replication\|jump-residual'
  1

--json emits the findings as typed diagnostic objects, and benchmark
names resolve like files do:

  $ ../../bin/jumprepc.exe lint uninit.c -O simple --json | tr ',' '\n' | grep -c '"code":"uninit-read"'
  1

  $ ../../bin/jumprepc.exe lint wc -O jumps --strict
  wc: clean

explain shares the same diagnostic JSON for the remaining jumps:

  $ ../../bin/jumprepc.exe explain tiny.c -O simple --json | tr ',' '\n' | grep -c '"pass":"explain"'
  1

The bench harness lists its table ids:

  $ ../../bench/main.exe --list
  1     Table 1: loop with exit condition in the middle
  2     Table 2: if-then-else
  3     Table 3: test set
  4     Table 4: percent unconditional jumps
  5     Table 5: static and dynamic instructions
  6     Table 6: cache miss ratio and fetch cost
  bb    Section 5.2: block statistics
  fig   Figures 1 and 2: loop interference cases
  cap   Ablation: bounded replication (paper section 6)
  heur  Ablation: step-2 heuristic
  assoc Ablation: cache associativity (extension)
  passes Ablation: cleanup passes (paper section 3.3)
