The bundled benchmark list names the paper's 14 programs:

  $ ../../bin/jumprepc.exe list | wc -l
  14

Compile and run a tiny program end to end:

  $ cat > tiny.c <<'SRC'
  > int main() {
  >   int i, s;
  >   s = 0;
  >   for (i = 0; i < 4; i++) s = s + i;
  >   putchar('0' + s);
  >   putchar('\n');
  >   return 0;
  > }
  > SRC

  $ ../../bin/jumprepc.exe run tiny.c -O jumps -m risc
  6

  $ ../../bin/jumprepc.exe measure tiny.c -m cisc | awk '{print $1}'
  level
  SIMPLE
  LOOPS
  JUMPS

The unconditional jumps ('PC=L') of the JUMPS build are all gone (grep
finds nothing and exits 1); two conditional branches remain — the loop's
original test plus its replicated, reversed copy, as in the paper's
Table 1:

  $ ../../bin/jumprepc.exe compile tiny.c -O jumps -m cisc --dump-rtl | grep -c 'PC=L'
  0
  [1]

  $ ../../bin/jumprepc.exe compile tiny.c -O jumps -m cisc --dump-rtl | grep -c 'PC=NZ'
  2

The bench harness lists its table ids:

  $ ../../bench/main.exe --list
  1     Table 1: loop with exit condition in the middle
  2     Table 2: if-then-else
  3     Table 3: test set
  4     Table 4: percent unconditional jumps
  5     Table 5: static and dynamic instructions
  6     Table 6: cache miss ratio and fetch cost
  bb    Section 5.2: block statistics
  fig   Figures 1 and 2: loop interference cases
  cap   Ablation: bounded replication (paper section 6)
  heur  Ablation: step-2 heuristic
  assoc Ablation: cache associativity (extension)
  passes Ablation: cleanup passes (paper section 3.3)
