The report subcommand turns the committed golden sweep back into the
paper-shaped tables, from the JSON alone:

  $ ../../bin/jumprepc.exe report ../../BENCH_baseline.json --title golden > report.md
  $ head -3 report.md
  # golden
  
  114 measurements (19 programs x 2 machines); all outputs verified.


  $ grep '^## ' report.md
  ## Static and dynamic instructions (Table 5 shape)
  ## Static code size (bytes)
  ## Unconditional jumps (Table 4 shape)
  ## Instruction cache (Table 6 shape, ctx switching off)

An --events stream appends the telemetry summary section:

  $ printf '%s\n' '{"seq":0,"t_ms":0.1,"ev":"pass_end"}' '{"seq":1,"t_ms":0.2,"ev":"pass_end"}' > ev.jsonl
  $ ../../bin/jumprepc.exe report ../../BENCH_baseline.json --events ev.jsonl | grep -A 4 '^## Telemetry'
  ## Telemetry events (2 lines)
  
  | event | count |
  | --- | --- |
  | pass_end | 2 |


Every program appears in each machine's Table-5 block, plus the mean row:

  $ grep -c '| wc |' report.md
  4
  $ grep -c '[*][*]mean[*][*]' report.md
  4

--dat writes gnuplot-ready files per machine:

  $ ../../bin/jumprepc.exe report ../../BENCH_baseline.json --dat plots > /dev/null
  jumprepc: report: wrote plots/instrs_risc.dat
  jumprepc: report: wrote plots/cache_risc.dat
  jumprepc: report: wrote plots/instrs_cisc.dat
  jumprepc: report: wrote plots/cache_cisc.dat

  $ head -1 plots/instrs_risc.dat
  # program	static_loops_pct	static_jumps_pct	dyn_loops_pct	dyn_jumps_pct
  $ grep -c . plots/instrs_risc.dat
  20

Comparing a sweep against itself reports no movement, and the Table-5
means delta column renders explicit all-zero deltas for every machine —
"unchanged" is a visible assertion, not an absent row:

  $ ../../bin/jumprepc.exe report --compare ../../BENCH_baseline.json ../../BENCH_baseline.json | grep 'No measurement'
  No measurement changed static or dynamic instruction counts.
  $ ../../bin/jumprepc.exe report --compare ../../BENCH_baseline.json ../../BENCH_baseline.json \
  >   | grep -E '^\| (risc|cisc) ' | grep -c '+0.00% / +0.00%, +0.00% / +0.00% |$'
  2

A perturbed copy is flagged, with the delta:

  $ sed 's/"static_instrs":138/"static_instrs":140/' ../../BENCH_baseline.json > perturbed.json
  $ ../../bin/jumprepc.exe report --compare ../../BENCH_baseline.json perturbed.json | grep -c 'banner'
  1

Malformed input is a diagnosed error, not a crash:

  $ echo 'not json' > bad.json
  $ ../../bin/jumprepc.exe report bad.json 2>&1 | head -1
  jumprepc: error: [io-error] bad.json: invalid JSON: JSON parse error at offset 0: bad literal (expected null)
