(* Differential testing on randomly generated C-subset programs: every
   (level, machine) configuration must produce byte-identical output.

   Programs are generated as source text with termination by construction:
   loops are always `for (ci = 0; ci < K; ci++)` over a dedicated counter
   that the body never assigns, array indices are masked to bounds, and
   divisors are forced non-zero. *)

open QCheck.Gen

type genv = {
  mutable depth : int;
  mutable counters : int;  (** next loop-counter id *)
  mutable stmts_left : int;
}

let locals = [ "a"; "b"; "c"; "d" ]

(* --- expressions --- *)

let rec expr env n st =
  if n <= 0 then atom env st
  else
    match int_bound 9 st with
    | 0 | 1 -> atom env st
    | 2 -> Printf.sprintf "(%s %s %s)" (expr env (n - 1) st)
             (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] st)
             (expr env (n - 1) st)
    | 3 ->
      (* division with a guarded divisor *)
      Printf.sprintf "(%s %s ((%s & 7) + 1))" (expr env (n - 1) st)
        (oneofl [ "/"; "%" ] st)
        (expr env (n - 1) st)
    | 4 ->
      Printf.sprintf "(%s %s (%s & 15))" (expr env (n - 1) st)
        (oneofl [ "<<"; ">>" ] st)
        (expr env (n - 1) st)
    | 5 -> Printf.sprintf "(%s %s %s)" (expr env (n - 1) st)
             (oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] st)
             (expr env (n - 1) st)
    | 6 -> Printf.sprintf "(%s %s %s)" (expr env (n - 1) st)
             (oneofl [ "&&"; "||" ] st)
             (expr env (n - 1) st)
    | 7 -> Printf.sprintf "(%s ? %s : %s)" (expr env (n - 1) st)
             (expr env (n - 1) st) (expr env (n - 1) st)
    | 8 -> Printf.sprintf "(- %s)" (expr env (n - 1) st)
    | _ -> Printf.sprintf "g[%s & 7]" (expr env (n - 1) st)

and atom _env st =
  match int_bound 3 st with
  | 0 -> string_of_int (int_range (-100) 100 st)
  | 1 | 2 -> oneofl locals st
  | _ -> Printf.sprintf "g[%d]" (int_bound 7 st)

(* --- statements --- *)

let lvalue st =
  match int_bound 2 st with
  | 0 | 1 -> oneofl locals st
  | _ -> Printf.sprintf "g[%d]" (int_bound 7 st)

let rec stmt env st =
  env.stmts_left <- env.stmts_left - 1;
  if env.stmts_left <= 0 then assign env st
  else
    match int_bound 11 st with
    | 0 | 1 | 2 | 3 -> assign env st
    | 4 ->
      Printf.sprintf "if (%s) { %s } else { %s }" (expr env 2 st)
        (block env st) (block env st)
    | 5 -> Printf.sprintf "if (%s) { %s }" (expr env 2 st) (block env st)
    | 6 | 7 ->
      if env.depth >= 2 then assign env st
      else begin
        let c = Printf.sprintf "i%d" env.counters in
        env.counters <- env.counters + 1;
        env.depth <- env.depth + 1;
        let body = block env st in
        env.depth <- env.depth - 1;
        let bound = 1 + int_bound 6 st in
        Printf.sprintf "for (%s = 0; %s < %d; %s++) { %s }" c c bound c body
      end
    | 8 ->
      if env.depth = 0 then assign env st
      else oneofl [ "break;"; "continue;" ] st
    | 9 ->
      Printf.sprintf "switch (%s & 3) { case 0: %s break; case 1: %s /* fall */ case 2: break; default: %s break; }"
        (expr env 2 st) (assign env st) (assign env st) (assign env st)
    | 10 -> Printf.sprintf "putchar(65 + (%s & 15));" (expr env 2 st)
    | _ -> Printf.sprintf "%s;" (expr env 2 st)

and assign env st =
  let op = oneofl [ "="; "+="; "-="; "*=" ] st in
  Printf.sprintf "%s %s %s;" (lvalue st) op (expr env 2 st)

and block env st =
  let n = 1 + int_bound 3 st in
  String.concat " " (List.init n (fun _ -> stmt env st))

let gen_program st =
  let env = { depth = 0; counters = 0; stmts_left = 40 } in
  let body = String.concat "\n  " (List.init 8 (fun _ -> stmt env st)) in
  let counters =
    if env.counters = 0 then ""
    else
      "int "
      ^ String.concat ", " (List.init env.counters (fun i -> Printf.sprintf "i%d" i))
      ^ ";"
  in
  Printf.sprintf
    {|
int g[8];

int main() {
  int a, b, c, d;
  %s
  a = 1; b = 2; c = 3; d = 4;
  %s
  putchar(65 + ((a + b + c + d + g[0] + g[1] + g[2] + g[3] + g[4] + g[5] + g[6] + g[7]) & 15));
  putchar(10);
  return 0;
}
|}
    counters body

let arb_program = QCheck.make ~print:(fun s -> s) gen_program

let prop_all_configs_agree =
  QCheck.Test.make ~name:"random programs agree across levels and machines"
    ~count:60 arb_program (fun src ->
      let reference = ref None in
      List.for_all
        (fun machine ->
          List.for_all
            (fun level ->
              (* Generated programs terminate within a few thousand steps;
                 a tight budget turns a miscompiled infinite loop into a
                 fast failure instead of a 400M-step crawl. *)
              let out, code =
                Helpers.run ~level ~machine ~max_steps:3_000_000 src
              in
              match !reference with
              | None ->
                reference := Some (out, code);
                true
              | Some (o, c) -> o = out && c = code)
            Helpers.levels)
        Helpers.machines)

let prop_outputs_deterministic =
  QCheck.Test.make ~name:"same program, same output" ~count:10 arb_program
    (fun src ->
      let a = Helpers.run ~max_steps:3_000_000 ~level:Opt.Driver.Jumps src in
      let b = Helpers.run ~max_steps:3_000_000 ~level:Opt.Driver.Jumps src in
      a = b)

let tests =
  ( "random-c",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_all_configs_agree;
      QCheck_alcotest.to_alcotest prop_outputs_deterministic;
    ] )
