(* Differential testing on randomly generated C-subset programs: every
   (level, machine) configuration must produce byte-identical output.

   The generator lives in Harness.Gen (shared with the `jumprepc fuzz`
   subcommand); programs terminate by construction.  The property is the
   fuzz harness's own check, so a failure here is exactly what a fuzz
   campaign would report (and QCheck shrinks with the same Gen.shrink the
   campaign's delta reducer uses). *)

let arb_program =
  QCheck.make
    ~print:Harness.Gen.to_c
    ~shrink:(fun p yield -> Seq.iter yield (Harness.Gen.shrink p))
    Harness.Gen.generate

let prop_all_configs_agree =
  QCheck.Test.make ~name:"random programs agree across levels and machines"
    ~count:60 arb_program (fun p ->
      (* Generated programs terminate within a few thousand steps; a tight
         budget turns a miscompiled infinite loop into a fast failure
         instead of a 400M-step crawl. *)
      match Harness.Fuzz.check ~max_steps:3_000_000 (Harness.Gen.to_c p) with
      | None -> true
      | Some f ->
        QCheck.Test.fail_reportf "%s at %s: %s"
          (Harness.Fuzz.kind_name f.kind)
          f.config f.detail)

let prop_outputs_deterministic =
  QCheck.Test.make ~name:"same program, same output" ~count:10 arb_program
    (fun p ->
      let src = Harness.Gen.to_c p in
      let a = Helpers.run ~max_steps:3_000_000 ~level:Opt.Driver.Jumps src in
      let b = Helpers.run ~max_steps:3_000_000 ~level:Opt.Driver.Jumps src in
      a = b)

(* Seeded generation is deterministic (the fuzz campaign's reproducers
   depend on it), and shrink candidates never grow. *)
let test_gen_deterministic () =
  let p1 = Harness.Gen.generate (Random.State.make [| 42 |]) in
  let p2 = Harness.Gen.generate (Random.State.make [| 42 |]) in
  Alcotest.(check string) "same seed, same program" (Harness.Gen.to_c p1)
    (Harness.Gen.to_c p2);
  let size = Harness.Gen.size p1 in
  let shrunk = List.of_seq (Seq.take 100 (Harness.Gen.shrink p1)) in
  Alcotest.(check bool) "shrink candidates exist" true (shrunk <> []);
  List.iter
    (fun q ->
      Alcotest.(check bool) "candidate no larger" true
        (Harness.Gen.size q <= size))
    shrunk

(* The delta reducer drives any failure to a local minimum.  A synthetic
   failure kind ("program still contains a putchar statement") shrinks to
   a single statement. *)
let test_reduce () =
  let rec has_putchar stmts =
    List.exists
      (function
        | Harness.Gen.Putchar _ -> true
        | Harness.Gen.If (_, t, f) -> has_putchar t || has_putchar f
        | Harness.Gen.For (_, _, b) -> has_putchar b
        | Harness.Gen.Switch (_, a, b, c) -> has_putchar [ a; b; c ]
        | _ -> false)
      stmts
  in
  let fail =
    { Harness.Fuzz.kind = Harness.Fuzz.Mismatch; config = "x"; detail = "" }
  in
  (* The fixed epilogue contains exactly one "putchar(65 + (" occurrence;
     each Putchar statement adds another.  "Fails" while any remains. *)
  let count_marker src =
    let marker = "putchar(65 + (" in
    let m = String.length marker in
    let n = ref 0 in
    for i = 0 to String.length src - m do
      if String.sub src i m = marker then incr n
    done;
    !n
  in
  let check src = if count_marker src >= 2 then Some fail else None in
  (* Find a seed whose program contains a Putchar statement. *)
  let rec find seed =
    if seed > 200 then Alcotest.fail "no seeded program with putchar"
    else
      let p = Harness.Gen.generate (Random.State.make [| seed |]) in
      if has_putchar p.Harness.Gen.body then p else find (seed + 1)
  in
  let p = find 0 in
  let reduced, f = Harness.Fuzz.reduce ~check p fail in
  Alcotest.(check bool) "failure kind preserved" true
    (f.Harness.Fuzz.kind = Harness.Fuzz.Mismatch);
  Alcotest.(check bool) "reduced is smaller or equal" true
    (Harness.Gen.size reduced <= Harness.Gen.size p);
  Alcotest.(check bool) "reduced still fails" true
    (check (Harness.Gen.to_c reduced) <> None);
  (* Minimal: one statement. *)
  Alcotest.(check int) "reduced to a single statement" 1
    (Harness.Gen.size reduced)

let tests =
  ( "random-c",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_all_configs_agree;
      QCheck_alcotest.to_alcotest prop_outputs_deterministic;
      Alcotest.test_case "seeded generation deterministic" `Quick
        test_gen_deterministic;
      Alcotest.test_case "delta reduction" `Quick test_reduce;
    ] )
