(* Assembler (linearization, delay slots, addresses), memory image and
   interpreter. *)

open Ir

let assemble ?(machine = Machine.risc) src =
  let prog =
    Opt.Driver.compile { Opt.Driver.default_options with level = Simple }
      machine src
  in
  (Sim.Asm.assemble machine prog, prog)

let tiny = "int main() { int i; i = 3; if (i > 1) i = i * 2; return i; }"

let test_delay_slot_structure () =
  let asm, _ = assemble tiny in
  List.iter
    (fun (f : Sim.Asm.afunc) ->
      Array.iteri
        (fun k i ->
          if Rtl.is_transfer i || (match i with Rtl.Call _ -> true | _ -> false)
          then begin
            (* every transfer is followed by a non-transfer slot *)
            Alcotest.(check bool) "slot exists" true (k + 1 < Array.length f.code);
            let slot = f.code.(k + 1) in
            Alcotest.(check bool) "slot is not a transfer" false
              (Rtl.is_transfer slot);
            (* no label may point between a transfer and its slot *)
            Ir.Label.Map.iter
              (fun _ pos ->
                Alcotest.(check bool) "no label on a slot" true (pos <> k + 1))
              f.label_pos
          end)
        f.code)
    asm.funcs

let test_no_slots_on_cisc () =
  let asm, _ = assemble ~machine:Machine.cisc tiny in
  Alcotest.(check int) "no nops inserted" 0 (Sim.Asm.static_nops asm)

let test_addresses_monotonic () =
  List.iter
    (fun machine ->
      let asm, _ = assemble ~machine tiny in
      List.iter
        (fun (f : Sim.Asm.afunc) ->
          let ok = ref true in
          Array.iteri
            (fun k a ->
              if k > 0 then begin
                let prev = f.addrs.(k - 1) + f.sizes.(k - 1) in
                if a <> prev then ok := false
              end)
            f.addrs;
          Alcotest.(check bool) "contiguous addresses" true !ok;
          Array.iteri
            (fun k size ->
              (* CISC branch displacement may shrink a transfer below its
                 fixed size, never grow it; RISC sizes are exact. *)
              let fixed = Machine.instr_size machine f.code.(k) in
              if machine.Machine.kind = Machine.Cisc then
                Alcotest.(check bool)
                  (Printf.sprintf "size within fixed bound (%d)" k)
                  true (size <= fixed && size > 0)
              else
                Alcotest.(check int)
                  (Printf.sprintf "size matches machine (%d)" k)
                  fixed size)
            f.sizes)
        asm.funcs)
    [ Machine.risc; Machine.cisc ]

let test_functions_disjoint () =
  let src = "int f(int x) { return x + 1; } int main() { return f(1); }" in
  let asm, _ = assemble src in
  match asm.funcs with
  | [ a; b ] ->
    Alcotest.(check bool) "non-overlapping" true
      (a.end_addr <= b.base || b.end_addr <= a.base)
  | _ -> Alcotest.fail "expected two functions"

let test_slot_fill_effectiveness () =
  (* At least some slots are filled with useful instructions, not nops. *)
  let asm, prog = assemble (Option.get (Programs.Suite.find "wc")).source in
  let res = Sim.Interp.run ~input:"hello world\n" asm prog in
  Alcotest.(check bool) "some useful slots" true
    (Sim.Asm.static_nops asm < Sim.Asm.static_instrs asm / 4);
  Alcotest.(check bool) "ran" true (res.counts.total > 0)

(* --- Image --- *)

let test_image_layout () =
  let prog =
    Frontend.Codegen.compile_source
      {|
int x = 5;
char msg[] = "hi";
int tab[] = { 1, 2, 3 };
char *p = "zz";
int main() { return 0; }
|}
  in
  let img = Sim.Image.build prog in
  Alcotest.(check int) "scalar init" 5 (Sim.Image.load_word img (Sim.Image.symbol img "x"));
  let msg = Sim.Image.symbol img "msg" in
  Alcotest.(check int) "string byte 0" (Char.code 'h') (Sim.Image.load_byte img msg);
  Alcotest.(check int) "string nul" 0 (Sim.Image.load_byte img (msg + 2));
  let tab = Sim.Image.symbol img "tab" in
  Alcotest.(check int) "array elt 2" 3 (Sim.Image.load_word img (tab + 8));
  let p = Sim.Image.load_word img (Sim.Image.symbol img "p") in
  Alcotest.(check int) "pointer init points at 'z'" (Char.code 'z')
    (Sim.Image.load_byte img p);
  Alcotest.check_raises "null deref faults" (Sim.Image.Fault "byte load at 0x0 is out of range")
    (fun () -> ignore (Sim.Image.load_byte img 0))

let test_image_word_roundtrip () =
  let prog = Frontend.Codegen.compile_source "int b[4]; int main(){return 0;}" in
  let img = Sim.Image.build prog in
  let a = Sim.Image.symbol img "b" in
  List.iter
    (fun v ->
      Sim.Image.store_word img a v;
      Alcotest.(check int) "word roundtrip" (Ir.Arith.norm v)
        (Sim.Image.load_word img a))
    [ 0; 1; -1; 0x7FFFFFFF; -0x80000000; 123456789; -987654321 ]

(* --- Interpreter --- *)

let test_exit_code () =
  let _, code = Helpers.run "int main() { return 41 + 1; }" in
  Alcotest.(check int) "return from main" 42 code

let test_exit_builtin () =
  let out, code =
    Helpers.run "int main() { putchar('a'); exit(7); putchar('b'); return 0; }"
  in
  Alcotest.(check string) "output before exit" "a" out;
  Alcotest.(check int) "exit code" 7 code

let test_runtime_errors () =
  let expect_error src =
    let prog =
      Opt.Driver.compile Opt.Driver.default_options Machine.cisc src
    in
    let asm = Sim.Asm.assemble Machine.cisc prog in
    match Sim.Interp.run asm prog with
    | exception Sim.Interp.Runtime_error _ -> ()
    | _ -> Alcotest.fail "expected a runtime error"
  in
  expect_error "int main() { int x; x = getchar(); return 1 / (x + 1); }";
  (* null pointer dereference *)
  expect_error "int main() { int *p; p = 0; return *p; }";
  (* Step-budget exhaustion is a distinct timeout outcome, not a runtime
     error: the result carries [timed_out] and the conventional exit 124. *)
  let prog =
    Opt.Driver.compile Opt.Driver.default_options Machine.cisc
      "int main() { for (;;) ; return 0; }"
  in
  let asm = Sim.Asm.assemble Machine.cisc prog in
  let res = Sim.Interp.run ~max_steps:1000 asm prog in
  Alcotest.(check bool) "timed out" true res.timed_out;
  Alcotest.(check int) "timeout exit code" 124 res.exit_code

let test_getchar_eof () =
  let out, _ =
    Helpers.run ~input:"ab"
      {|
int main() {
  int c, n;
  n = 0;
  while ((c = getchar()) != -1) n = n + 1;
  /* further reads keep returning -1 */
  if (getchar() == -1 && getchar() == -1) n = n + 100;
  putchar('0' + n % 10); putchar('\n');
  return 0;
}
|}
  in
  Alcotest.(check string) "eof behavior" "2\n" out

let test_counts_track_classes () =
  let res, _ =
    Helpers.run_counts ~machine:Machine.cisc
      "int main() { int i; for (i = 0; i < 5; i++) putchar('x'); return 0; }"
  in
  Alcotest.(check int) "five calls" 5 res.counts.calls;
  Alcotest.(check int) "one return" 1 res.counts.rets;
  Alcotest.(check bool) "branches counted" true (res.counts.cond_branches >= 5);
  Alcotest.(check bool) "total covers everything" true
    (res.counts.total
     >= res.counts.calls + res.counts.rets + res.counts.cond_branches)

let test_fetch_callback () =
  let src = "int main() { return 0; }" in
  let prog = Opt.Driver.compile Opt.Driver.default_options Machine.risc src in
  let asm = Sim.Asm.assemble Machine.risc prog in
  let fetches = ref 0 in
  let res =
    Sim.Interp.run
      ~on_fetch:(fun ~addr:_ ~size -> if size = 4 then incr fetches)
      asm prog
  in
  Alcotest.(check int) "one fetch per executed instruction"
    res.counts.total !fetches

let test_delay_slot_semantics () =
  (* The canonical case: on RISC the instruction before a taken branch gets
     moved into its slot; results must match the CISC execution exactly. *)
  let src =
    {|
int main() {
  int i, s;
  s = 0;
  for (i = 0; i < 7; i++) { s = s * 2 + i; if (s > 50) s = s - 13; }
  putchar('0' + s % 10); putchar('\n');
  return 0;
}
|}
  in
  let out_c, _ = Helpers.run ~machine:Machine.cisc src in
  let out_r, _ = Helpers.run ~machine:Machine.risc src in
  Alcotest.(check string) "risc equals cisc" out_c out_r

let check_counts name (a : Sim.Interp.counts) (b : Sim.Interp.counts) =
  let field fname get =
    Alcotest.(check int) (name ^ " " ^ fname) (get a) (get b)
  in
  field "total" (fun c -> c.Sim.Interp.total);
  field "cond_branches" (fun c -> c.Sim.Interp.cond_branches);
  field "jumps" (fun c -> c.Sim.Interp.jumps);
  field "ijumps" (fun c -> c.Sim.Interp.ijumps);
  field "calls" (fun c -> c.Sim.Interp.calls);
  field "rets" (fun c -> c.Sim.Interp.rets);
  field "nops" (fun c -> c.Sim.Interp.nops);
  field "loads" (fun c -> c.Sim.Interp.loads);
  field "stores" (fun c -> c.Sim.Interp.stores)

(* Fold the fetch stream into a hash instead of materializing millions
   of (addr, size) pairs. *)
let trace run =
  let h = ref 0 and n = ref 0 in
  let on_fetch ~addr ~size =
    incr n;
    h := (((!h * 31) + addr) * 31) + size
  in
  (run ~on_fetch, !h, !n)

let check_same_run name (r, rh, rn) (d, dh, dn) =
  Alcotest.(check string) (name ^ " output") r.Sim.Interp.output
    d.Sim.Interp.output;
  Alcotest.(check int) (name ^ " exit") r.exit_code d.exit_code;
  Alcotest.(check bool) (name ^ " timeout") r.timed_out d.timed_out;
  check_counts name r.counts d.counts;
  Alcotest.(check int) (name ^ " fetch count") rn dn;
  Alcotest.(check int) (name ^ " fetch hash") rh dh

let test_engines_match_reference () =
  (* Every execution engine must be observationally identical to the
     straightforward reference loop: same output, exit code, timeout
     verdict, per-class counts and per-instruction fetch stream, across
     the whole benchmark matrix. *)
  List.iter
    (fun (machine, mname) ->
      List.iter
        (fun level ->
          List.iter
            (fun (b : Programs.Suite.benchmark) ->
              let prog =
                Opt.Driver.compile
                  { Opt.Driver.default_options with level }
                  machine b.source
              in
              let asm = Sim.Asm.assemble machine prog in
              let ref_run =
                trace (fun ~on_fetch ->
                    Sim.Interp.run_reference ~input:b.input ~on_fetch asm prog)
              in
              List.iter
                (fun kind ->
                  let name =
                    Printf.sprintf "%s/%s/%s/%s" b.name
                      (Opt.Driver.level_name level)
                      mname
                      (Sim.Engine.kind_name kind)
                  in
                  let run = Sim.Engine.select kind in
                  check_same_run name ref_run
                    (trace (fun ~on_fetch ->
                         run ~input:b.input ~on_fetch asm prog)))
                [ Sim.Engine.Decoded; Sim.Engine.Threaded ])
            Programs.Suite.all)
        [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ])
    [ (Machine.risc, "risc"); (Machine.cisc, "cisc") ]

let test_engines_match_on_timeout () =
  (* A step budget that expires mid-superblock must stop the threaded
     engine at the exact instruction the reference stops at — partial
     counts, partial output and the fetch-stream prefix are observable
     in a timed-out measurement.  Sweep max_steps over a range that
     lands in every phase of the hot loop. *)
  let src =
    "int main() { int i; int s; s = 0; for (i = 0; i < 100; i++) s = s + i; \
     return s & 255; }"
  in
  let prog =
    Opt.Driver.compile
      { Opt.Driver.default_options with level = Opt.Driver.Jumps }
      Machine.risc src
  in
  let asm = Sim.Asm.assemble Machine.risc prog in
  for max_steps = 1 to 120 do
    let name = Printf.sprintf "steps=%d" max_steps in
    let ref_run =
      trace (fun ~on_fetch ->
          Sim.Interp.run_reference ~max_steps ~on_fetch asm prog)
    in
    List.iter
      (fun kind ->
        let run = Sim.Engine.select kind in
        check_same_run
          (Printf.sprintf "%s/%s" name (Sim.Engine.kind_name kind))
          ref_run
          (trace (fun ~on_fetch -> run ~max_steps ~on_fetch asm prog)))
      [ Sim.Engine.Decoded; Sim.Engine.Threaded ]
  done

let test_engines_match_on_fault () =
  (* A faulting run has no result, but its fetch stream reached the
     cache simulator as it happened: all engines must have fetched the
     same exact prefix when the fault fires. *)
  let src = "int main() { int x; x = getchar(); return 10 / (x + 1); }" in
  let prog =
    Opt.Driver.compile
      { Opt.Driver.default_options with level = Opt.Driver.Jumps }
      Machine.risc src
  in
  let asm = Sim.Asm.assemble Machine.risc prog in
  let faulting run =
    let h = ref 0 and n = ref 0 in
    let on_fetch ~addr ~size =
      incr n;
      h := (((!h * 31) + addr) * 31) + size
    in
    (match run ~on_fetch with
    | (_ : Sim.Interp.result) -> Alcotest.fail "expected a fault"
    | exception Sim.Interp.Runtime_error _ -> ());
    (!h, !n)
  in
  let rh, rn =
    faulting (fun ~on_fetch ->
        Sim.Interp.run_reference ~input:"" ~on_fetch asm prog)
  in
  List.iter
    (fun kind ->
      let run = Sim.Engine.select kind in
      let h, n =
        faulting (fun ~on_fetch -> run ~input:"" ~on_fetch asm prog)
      in
      let name = Sim.Engine.kind_name kind in
      Alcotest.(check int) (name ^ " fetch count") rn n;
      Alcotest.(check int) (name ^ " fetch hash") rh h)
    [ Sim.Engine.Decoded; Sim.Engine.Threaded ]

(* The corpus sweep above checks known programs; this property checks
   arbitrary generated ones, shrinking failures with the fuzz campaign's
   own reducer. *)
let prop_engines_agree_on_random =
  let arb =
    QCheck.make ~print:Harness.Gen.to_c
      ~shrink:(fun p yield -> Seq.iter yield (Harness.Gen.shrink p))
      Harness.Gen.generate
  in
  QCheck.Test.make ~name:"engines agree on random programs" ~count:25 arb
    (fun p ->
      let src = Harness.Gen.to_c p in
      List.for_all
        (fun machine ->
          let prog =
            Opt.Driver.compile
              { Opt.Driver.default_options with level = Opt.Driver.Jumps }
              machine src
          in
          let asm = Sim.Asm.assemble machine prog in
          let observe run =
            let r, h, n = trace run in
            ( r.Sim.Interp.output,
              r.exit_code,
              r.timed_out,
              r.counts,
              h,
              n )
          in
          let reference =
            observe (fun ~on_fetch ->
                Sim.Interp.run_reference ~max_steps:3_000_000 ~on_fetch asm
                  prog)
          in
          List.for_all
            (fun kind ->
              observe (fun ~on_fetch ->
                  Sim.Engine.select kind ~max_steps:3_000_000 ~on_fetch asm
                    prog)
              = reference)
            [ Sim.Engine.Decoded; Sim.Engine.Threaded ])
        [ Machine.risc; Machine.cisc ])

let tests =
  ( "sim",
    [
      Alcotest.test_case "delay slot structure" `Quick test_delay_slot_structure;
      Alcotest.test_case "cisc has no slots" `Quick test_no_slots_on_cisc;
      Alcotest.test_case "addresses monotonic" `Quick test_addresses_monotonic;
      Alcotest.test_case "functions disjoint" `Quick test_functions_disjoint;
      Alcotest.test_case "slot filling works" `Quick test_slot_fill_effectiveness;
      Alcotest.test_case "image layout" `Quick test_image_layout;
      Alcotest.test_case "image word roundtrip" `Quick test_image_word_roundtrip;
      Alcotest.test_case "exit code" `Quick test_exit_code;
      Alcotest.test_case "exit builtin" `Quick test_exit_builtin;
      Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
      Alcotest.test_case "getchar eof" `Quick test_getchar_eof;
      Alcotest.test_case "instruction classes" `Quick test_counts_track_classes;
      Alcotest.test_case "fetch callback" `Quick test_fetch_callback;
      Alcotest.test_case "delay slot semantics" `Quick test_delay_slot_semantics;
      Alcotest.test_case "engines match reference" `Slow
        test_engines_match_reference;
      Alcotest.test_case "engines match on timeout" `Quick
        test_engines_match_on_timeout;
      Alcotest.test_case "engines match on fault" `Quick
        test_engines_match_on_fault;
      QCheck_alcotest.to_alcotest prop_engines_agree_on_random;
    ] )
