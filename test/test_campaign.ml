(* Campaign store, key derivation and resumable sweeps. *)

module Store = Campaign.Store
module Key = Campaign.Key
module Json = Telemetry.Json

let temp_counter = ref 0

let temp_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jumprep-store-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  (* A fresh name per test run; the store creates the tree itself. *)
  dir

let entry_path dir key =
  Filename.concat dir
    (Filename.concat "objects"
       (Filename.concat (String.sub key 0 2) (key ^ ".json")))

let sample_entry i =
  Json.Obj
    [
      ("kind", Json.Str "test/1");
      ("index", Json.Int i);
      ("row", Json.Str (Printf.sprintf "{\"x\":%d}" i));
    ]

let sample_key i = Key.hex ~kind:"test/1" [ ("i", string_of_int i) ]

let test_roundtrip () =
  let st = Store.open_ (temp_dir ()) in
  let key = sample_key 0 in
  Alcotest.(check bool) "miss before commit" true (Store.find st key = Store.Miss);
  Store.lease st key;
  Alcotest.(check (list string)) "lease pending" [ key ] (Store.pending st);
  Store.commit st ~key (sample_entry 0);
  Alcotest.(check (list string)) "done clears pending" [] (Store.pending st);
  (match Store.find st key with
  | Store.Hit e ->
    Alcotest.(check (option int))
      "payload survives the round trip" (Some 0)
      (Option.bind (Json.member "index" e) Json.get_int)
  | Store.Miss | Store.Corrupt _ -> Alcotest.fail "expected a hit");
  let entries, bytes = Store.disk_usage st in
  Alcotest.(check int) "one committed entry" 1 entries;
  Alcotest.(check bool) "payload bytes counted" true (bytes > 0);
  let stats = Store.stats st in
  Alcotest.(check (option int)) "hit counted" (Some 1)
    (List.assoc_opt "store.hits" stats);
  Alcotest.(check (option int)) "miss counted" (Some 1)
    (List.assoc_opt "store.misses" stats);
  Alcotest.(check (option int)) "commit counted" (Some 1)
    (List.assoc_opt "store.commits" stats)

let check_corrupt st key what =
  match Store.find st key with
  | Store.Corrupt d ->
    Alcotest.(check string)
      (what ^ " carries the typed code")
      "store-corrupt"
      (Telemetry.Diag.code_name d.Telemetry.Diag.code)
  | Store.Hit _ -> Alcotest.fail (what ^ ": expected corrupt, got a hit")
  | Store.Miss -> Alcotest.fail (what ^ ": expected corrupt, got a miss")

let test_corruption_truncated () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  let key = sample_key 1 in
  Store.commit st ~key (sample_entry 1);
  Unix.truncate (entry_path dir key) 10;
  check_corrupt st key "truncated entry";
  (* The recompute-and-recommit path restores the entry. *)
  Store.commit st ~key (sample_entry 1);
  (match Store.find st key with
  | Store.Hit _ -> ()
  | _ -> Alcotest.fail "recommit did not restore the entry");
  let stats = Store.stats st in
  Alcotest.(check (option int)) "corruption counted" (Some 1)
    (List.assoc_opt "store.corrupt" stats)

let test_corruption_bitflip () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  let key = sample_key 2 in
  Store.commit st ~key (sample_entry 2);
  let path = entry_path dir key in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  let len = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd (len - 3) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
  ignore (Unix.lseek fd (len - 3) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  check_corrupt st key "bit-flipped entry"

let test_gc_eviction () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  for i = 0 to 4 do
    let key = sample_key i in
    Store.lease st key;
    Store.commit st ~key (sample_entry i);
    (* mtime granularity: make eviction order deterministic. *)
    let past = Unix.gettimeofday () -. float_of_int (100 - i) in
    Unix.utimes (entry_path dir (sample_key i)) past past
  done;
  (* A stray staged file and a dangling lease for gc to clean up. *)
  let stray = Filename.concat dir (Filename.concat "tmp" "stray.tmp") in
  let oc = open_out stray in
  output_string oc "junk";
  close_out oc;
  let dangling = sample_key 99 in
  Store.lease st dangling;
  let evicted, tmp_removed = Store.gc ~max_entries:2 st in
  Alcotest.(check int) "evicted down to max_entries" 3 evicted;
  Alcotest.(check int) "staged stray removed" 1 tmp_removed;
  let entries, _ = Store.disk_usage st in
  Alcotest.(check int) "two entries survive" 2 entries;
  (* The newest entries survive; the oldest were evicted. *)
  Alcotest.(check bool) "newest survives" true
    (match Store.find st (sample_key 4) with Store.Hit _ -> true | _ -> false);
  Alcotest.(check bool) "oldest evicted" true
    (Store.find st (sample_key 0) = Store.Miss);
  (* Journal compaction keeps the dangling lease visible. *)
  Alcotest.(check (list string))
    "dangling lease survives compaction" [ dangling ] (Store.pending st)

let test_jobs_parsing () =
  Alcotest.(check int) "plain count" 3 (Harness.Pool.parse_jobs "3");
  Alcotest.(check int) "trimmed" 2 (Harness.Pool.parse_jobs " 2 ");
  Alcotest.(check int) "zero falls back to 1" 1 (Harness.Pool.parse_jobs "0");
  Alcotest.(check int) "negative falls back to 1" 1
    (Harness.Pool.parse_jobs "-4");
  Alcotest.(check int) "garbage falls back to 1" 1
    (Harness.Pool.parse_jobs "lots");
  let cap = Domain.recommended_domain_count () in
  Alcotest.(check int) "huge count clamps to the recommended cap" cap
    (Harness.Pool.parse_jobs (string_of_int ((4 * cap) + 1)));
  Alcotest.(check int) "clamp passes sane values" 2
    (Harness.Pool.clamp_jobs ~what:"--workers" 2);
  Alcotest.(check int) "clamp rejects non-positive" 1
    (Harness.Pool.clamp_jobs ~what:"--workers" 0)

(* Keys must be pure functions of their components: identical components
   give identical keys, and changing any single component (or the kind)
   changes the key.  This is what lets a resumed campaign trust entries
   written by an earlier process. *)
let arb_components =
  let open QCheck in
  let name = string_gen_of_size (Gen.int_range 1 8) Gen.printable in
  let value = string_gen_of_size (Gen.int_range 0 16) Gen.printable in
  list_of_size (Gen.int_range 1 5) (pair name value)

let prop_key_stable_and_sensitive =
  QCheck.Test.make ~name:"keys stable; any component change changes the key"
    ~count:200 arb_components (fun components ->
      let k = Key.hex ~kind:"prop/1" components in
      if k <> Key.hex ~kind:"prop/1" components then
        QCheck.Test.fail_report "key not stable across recomputation";
      if k = Key.hex ~kind:"prop/2" components then
        QCheck.Test.fail_report "kind change did not change the key";
      List.iteri
        (fun i (n, v) ->
          let bump j (n', v') = if i = j then (n', v' ^ "x") else (n', v') in
          if k = Key.hex ~kind:"prop/1" (List.mapi bump components) then
            QCheck.Test.fail_reportf "value %d change did not change the key" i;
          let rename j (n', v') =
            if i = j then (n' ^ "y", v') else (n', v')
          in
          if k = Key.hex ~kind:"prop/1" (List.mapi rename components) then
            QCheck.Test.fail_reportf "name %d change did not change the key" i;
          ignore (n, v))
        components;
      if
        k = Key.hex ~kind:"prop/1" (components @ [ ("extra", "") ])
      then QCheck.Test.fail_report "appended component did not change the key";
      true)

let test_key_injective_on_boundaries () =
  (* The length-prefixed encoding must distinguish splits that plain
     concatenation would merge. *)
  let a = Key.hex ~kind:"k" [ ("ab", "c") ] in
  let b = Key.hex ~kind:"k" [ ("a", "bc") ] in
  Alcotest.(check bool) "name/value boundary" true (a <> b);
  let c = Key.hex ~kind:"k" [ ("a", "b"); ("c", "d") ] in
  let d = Key.hex ~kind:"k" [ ("a", "bc"); ("", "d") ] in
  Alcotest.(check bool) "component boundary" true (c <> d)

(* An in-process campaign: cold populate, then a resumed run must serve
   every task from the store and splice back byte-identical rows. *)
let test_sweep_resume_byte_identity () =
  let wc = Option.get (Programs.Suite.find "wc") in
  let tasks =
    [
      (wc, Opt.Driver.Simple, Ir.Machine.risc);
      (wc, Opt.Driver.Jumps, Ir.Machine.risc);
    ]
  in
  let dir = temp_dir () in
  let sweep ~resume =
    let store = Store.open_ dir in
    let log = Telemetry.Log.make Telemetry.Log.Memory in
    let rows, s = Campaign.Runner.sweep ~store ~resume ~log tasks in
    (List.map (fun r -> r.Campaign.Runner.r_row) rows, Telemetry.Counter.all log, s)
  in
  let cold_rows, cold_counters, cold = sweep ~resume:false in
  let warm_rows, warm_counters, warm = sweep ~resume:true in
  Alcotest.(check int) "cold computed everything" 2 cold.Campaign.Runner.computed;
  Alcotest.(check int) "warm computed nothing" 0 warm.Campaign.Runner.computed;
  Alcotest.(check int) "warm all hits" 2 warm.Campaign.Runner.hits;
  Alcotest.(check (list string)) "rows byte-identical" cold_rows warm_rows;
  Alcotest.(check bool) "counters identical" true
    (cold_counters = warm_counters);
  (* The spliced row equals what the plain measurement path renders. *)
  let direct =
    Harness.Measure.to_json
      (Harness.Measure.run wc Opt.Driver.Simple Ir.Machine.risc)
  in
  Alcotest.(check string) "row matches the direct measurement" direct
    (List.hd cold_rows)

let tests =
  ( "campaign",
    [
      Alcotest.test_case "store roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "truncated entry is corrupt, recomputable" `Quick
        test_corruption_truncated;
      Alcotest.test_case "bit-flipped entry is corrupt" `Quick
        test_corruption_bitflip;
      Alcotest.test_case "gc evicts oldest, compacts journal" `Quick
        test_gc_eviction;
      Alcotest.test_case "JUMPREP_JOBS/--workers share one clamp" `Quick
        test_jobs_parsing;
      QCheck_alcotest.to_alcotest prop_key_stable_and_sensitive;
      Alcotest.test_case "key encoding is injective at boundaries" `Quick
        test_key_injective_on_boundaries;
      Alcotest.test_case "sweep resume is byte-identical" `Quick
        test_sweep_resume_byte_identity;
    ] )
