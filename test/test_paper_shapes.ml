(* Tests that pin the paper's qualitative claims (the "shape" of the
   results), machine-checked rather than eyeballed from bench output. *)

open Ir

let compile level machine src =
  Opt.Driver.compile { Opt.Driver.default_options with level } machine src

let table1_src =
  {|
int x[100];
int n = 10;

int main() {
  int i;
  i = 1;
  while (i <= n) {
    x[i - 1] = x[i];
    i = i + 1;
  }
  return x[0];
}
|}

let count_instrs p f =
  Array.fold_left
    (fun n (b : Flow.Func.block) -> n + List.length (List.filter p b.instrs))
    0 (Flow.Func.blocks f)

(* Table 1: the mid-exit loop keeps its jump under SIMPLE; JUMPS replaces
   it with a replicated, reversed test — one more conditional branch, no
   unconditional jumps, and one jump saved per iteration dynamically. *)
let test_table1_shape () =
  let is_jump = function Rtl.Jump _ -> true | _ -> false in
  let is_branch = function Rtl.Branch _ -> true | _ -> false in
  let f level =
    Option.get
      (Flow.Prog.find_func (compile level Machine.cisc table1_src) "main")
  in
  let simple = f Opt.Driver.Simple and jumps = f Opt.Driver.Jumps in
  Alcotest.(check bool) "SIMPLE keeps a jump" true
    (count_instrs is_jump simple >= 1);
  Alcotest.(check int) "JUMPS removes all jumps" 0 (count_instrs is_jump jumps);
  Alcotest.(check bool) "JUMPS adds a replicated branch" true
    (count_instrs is_branch jumps > count_instrs is_branch simple);
  (* Dynamic effect: at least one instruction saved per iteration. *)
  let dyn level =
    let prog = compile level Machine.cisc table1_src in
    let asm = Sim.Asm.assemble Machine.cisc prog in
    (Sim.Interp.run asm prog).counts
  in
  let ds = dyn Opt.Driver.Simple and dj = dyn Opt.Driver.Jumps in
  Alcotest.(check bool) "about one instruction saved per iteration" true
    (ds.total - dj.total >= 9);
  Alcotest.(check int) "no jumps executed" 0 dj.jumps

let table2_src =
  {|
int n = 3;

int compute(int i) {
  if (i > 5)
    i = i / n;
  else
    i = i * n;
  return i;
}

int main() { return compute(7) + compute(3); }
|}

(* Table 2: under JUMPS the two paths of the conditional return
   separately — the epilogue is replicated. *)
let test_table2_shape () =
  let is_ret = function Rtl.Ret -> true | _ -> false in
  let f level =
    Option.get
      (Flow.Prog.find_func (compile level Machine.cisc table2_src) "compute")
  in
  Alcotest.(check int) "one return under SIMPLE" 1
    (count_instrs is_ret (f Opt.Driver.Simple));
  Alcotest.(check bool) "separate returns under JUMPS" true
    (count_instrs is_ret (f Opt.Driver.Jumps) >= 2);
  (* Semantics: 7/3 + 3*3 = 2 + 9 = 11. *)
  let prog = compile Opt.Driver.Jumps Machine.cisc table2_src in
  let asm = Sim.Asm.assemble Machine.cisc prog in
  Alcotest.(check int) "result" 11 (Sim.Interp.run asm prog).exit_code

(* Table 4's headline: LOOPS removes a large share of executed
   unconditional jumps; JUMPS removes essentially all of them. *)
let test_jump_elimination_rates () =
  let totals level machine =
    List.fold_left
      (fun (uj, total) (b : Programs.Suite.benchmark) ->
        let m = Harness.Measure.run b level machine in
        (uj + m.dyn_ujumps, total + m.dyn_instrs))
      (0, 0) Programs.Suite.all
  in
  List.iter
    (fun machine ->
      let uj_s, _ = totals Opt.Driver.Simple machine in
      let uj_l, _ = totals Opt.Driver.Loops machine in
      let uj_j, tot_j = totals Opt.Driver.Jumps machine in
      Alcotest.(check bool)
        (machine.Machine.short ^ ": LOOPS removes >= 40% of jumps")
        true
        (float_of_int uj_l < 0.6 *. float_of_int uj_s);
      Alcotest.(check bool)
        (machine.Machine.short ^ ": JUMPS leaves < 0.5% jumps")
        true
        (float_of_int uj_j < 0.005 *. float_of_int tot_j))
    Helpers.machines

(* Section 5.2: the average dynamic basic-block length (instructions
   between branches) grows under JUMPS. *)
let test_block_length_grows () =
  let avg level =
    let ms = Harness.Measure.run_suite level Machine.risc in
    List.fold_left
      (fun acc m -> acc +. Harness.Measure.instrs_between_branches m)
      0.0 ms
    /. float_of_int (List.length ms)
  in
  let s = avg Opt.Driver.Simple and j = avg Opt.Driver.Jumps in
  Alcotest.(check bool) "blocks grow under JUMPS" true (j > s)

(* Section 5.2: executed no-ops drop under JUMPS on the RISC (removed
   unconditional jumps take their unfillable delay slots with them). *)
let test_nops_drop () =
  let nops level =
    List.fold_left
      (fun acc (m : Harness.Measure.t) -> acc + m.dyn_nops)
      0
      (Harness.Measure.run_suite level Machine.risc)
  in
  let s = nops Opt.Driver.Simple and j = nops Opt.Driver.Jumps in
  Alcotest.(check bool) "fewer executed no-ops" true (j < s);
  Alcotest.(check bool) "a substantial share is eliminated" true
    (float_of_int (s - j) > 0.10 *. float_of_int s)

(* Static growth ordering (Table 5): LOOPS grows code by a few percent,
   JUMPS by a lot more. *)
let test_static_growth_ordering () =
  List.iter
    (fun machine ->
      let total level =
        List.fold_left
          (fun acc (m : Harness.Measure.t) -> acc + m.static_instrs)
          0
          (Harness.Measure.run_suite level machine)
      in
      let s = total Opt.Driver.Simple in
      let l = total Opt.Driver.Loops in
      let j = total Opt.Driver.Jumps in
      Alcotest.(check bool) "LOOPS grows a little" true
        (float_of_int l < 1.10 *. float_of_int s);
      Alcotest.(check bool) "JUMPS grows more than LOOPS" true (j > l);
      Alcotest.(check bool) "JUMPS grows noticeably" true
        (float_of_int j > 1.05 *. float_of_int s))
    Helpers.machines

(* Table 6's crossover: on large (8 Kb) caches the average fetch cost
   drops under JUMPS. *)
let test_fetch_cost_drops_on_large_caches () =
  List.iter
    (fun machine ->
      let cost level =
        List.fold_left
          (fun acc (m : Harness.Measure.t) ->
            let c =
              List.find
                (fun (c : Harness.Measure.cache_stats) ->
                  c.config.size_bytes = 8 * 1024
                  && not c.config.context_switches)
                m.caches
            in
            acc + c.fetch_cost)
          0
          (Harness.Measure.run_suite level machine)
      in
      Alcotest.(check bool)
        (machine.Machine.short ^ ": 8Kb fetch cost drops under JUMPS")
        true
        (cost Opt.Driver.Jumps < cost Opt.Driver.Simple))
    Helpers.machines

let tests =
  ( "paper-shapes",
    [
      Alcotest.test_case "table 1 shape" `Quick test_table1_shape;
      Alcotest.test_case "table 2 shape" `Quick test_table2_shape;
      Alcotest.test_case "jump elimination rates" `Slow test_jump_elimination_rates;
      Alcotest.test_case "block length grows" `Slow test_block_length_grows;
      Alcotest.test_case "no-ops drop" `Slow test_nops_drop;
      Alcotest.test_case "static growth ordering" `Slow test_static_growth_ordering;
      Alcotest.test_case "fetch cost drops on 8Kb" `Slow test_fetch_cost_drops_on_large_caches;
    ] )
