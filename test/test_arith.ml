open Ir

let check = Alcotest.(check int)

let test_norm_range () =
  check "max stays" 0x7FFFFFFF (Arith.norm 0x7FFFFFFF);
  check "min stays" (-0x80000000) (Arith.norm (-0x80000000));
  check "wrap up" (-0x80000000) (Arith.norm 0x80000000);
  check "wrap down" 0x7FFFFFFF (Arith.norm (-0x80000001));
  check "zero" 0 (Arith.norm 0);
  check "garbage high bits" 1 (Arith.norm ((1 lsl 40) + 1))

let test_overflow () =
  check "add wraps" (-2) (Arith.add 0x7FFFFFFF 0x7FFFFFFF);
  check "sub wraps" 0x7FFFFFFF (Arith.sub (-0x80000000) 1);
  check "mul wraps" (-0x80000000) (Arith.mul 0x40000000 2);
  check "neg min wraps" (-0x80000000) (Arith.neg (-0x80000000))

let test_division () =
  check "trunc toward zero pos" 2 (Arith.div 7 3);
  check "trunc toward zero neg" (-2) (Arith.div (-7) 3);
  check "trunc toward zero neg2" (-2) (Arith.div 7 (-3));
  check "rem sign follows dividend" 1 (Arith.rem 7 3);
  check "rem neg dividend" (-1) (Arith.rem (-7) 3);
  check "rem pos dividend neg divisor" 1 (Arith.rem 7 (-3));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Arith.div 1 0));
  Alcotest.check_raises "rem by zero" Division_by_zero (fun () ->
      ignore (Arith.rem 1 0))

let test_shifts () =
  check "shl" 8 (Arith.shl 1 3);
  check "shl wraps" (-0x80000000) (Arith.shl 1 31);
  check "shift count mod 32" 2 (Arith.shl 1 33);
  check "shr arithmetic" (-1) (Arith.shr (-2) 1);
  check "shr positive" 3 (Arith.shr 7 1)

let test_bitwise () =
  check "and" 0b1000 (Arith.logand 0b1100 0b1010);
  check "or" 0b1110 (Arith.logor 0b1100 0b1010);
  check "xor" 0b0110 (Arith.logxor 0b1100 0b1010);
  check "not" (-1) (Arith.lognot 0);
  check "not of -1" 0 (Arith.lognot (-1))

(* Property: every operation's result is already normalized. *)
let prop_normalized =
  QCheck.Test.make ~name:"arith results normalized" ~count:500
    QCheck.(triple (int_range 0 9) int int)
    (fun (op, a, b) ->
      let a = Arith.norm a and b = Arith.norm b in
      let f =
        match op with
        | 0 -> Arith.add
        | 1 -> Arith.sub
        | 2 -> Arith.mul
        | 3 -> fun a b -> if b = 0 then 0 else Arith.div a b
        | 4 -> fun a b -> if b = 0 then 0 else Arith.rem a b
        | 5 -> Arith.logand
        | 6 -> Arith.logor
        | 7 -> Arith.logxor
        | 8 -> Arith.shl
        | _ -> Arith.shr
      in
      let r = f a b in
      Arith.norm r = r && r >= -0x80000000 && r <= 0x7FFFFFFF)

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:200 QCheck.(pair int int)
    (fun (a, b) -> Arith.add a b = Arith.add b a)

let prop_div_rem =
  QCheck.Test.make ~name:"a = (a/b)*b + a%b" ~count:500 QCheck.(pair int int)
    (fun (a, b) ->
      let a = Arith.norm a and b = Arith.norm b in
      QCheck.assume (b <> 0);
      (* Skip the one overflowing case INT_MIN / -1. *)
      QCheck.assume (not (a = -0x80000000 && b = -1));
      Arith.add (Arith.mul (Arith.div a b) b) (Arith.rem a b) = a)

let tests =
  ( "arith",
    [
      Alcotest.test_case "norm range" `Quick test_norm_range;
      Alcotest.test_case "overflow wraps" `Quick test_overflow;
      Alcotest.test_case "division" `Quick test_division;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "bitwise" `Quick test_bitwise;
      QCheck_alcotest.to_alcotest prop_normalized;
      QCheck_alcotest.to_alcotest prop_add_commutes;
      QCheck_alcotest.to_alcotest prop_div_rem;
    ] )
