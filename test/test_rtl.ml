open Ir

let reg_list s = List.map Reg.to_string (Reg.Set.elements s)

let check_regs = Alcotest.(check (slist string String.compare))

let v n = Reg.Virt n

let test_uses_defs () =
  let i = Rtl.Binop (Add, Lreg (v 0), Reg (v 1), Imm 3) in
  check_regs "binop uses" [ "v1" ] (reg_list (Rtl.uses i));
  check_regs "binop defs" [ "v0" ] (reg_list (Rtl.defs i));
  (* A memory destination reads its address registers. *)
  let st = Rtl.Move (Lmem (Word, Based (v 2, 4)), Reg (v 3)) in
  check_regs "store uses" [ "v2"; "v3" ] (reg_list (Rtl.uses st));
  check_regs "store defs" [] (reg_list (Rtl.defs st));
  let cmp = Rtl.Cmp (Reg (v 0), Mem (Byte, Indexed (v 1, v 2, 4, 0))) in
  check_regs "cmp uses" [ "v0"; "v1"; "v2" ] (reg_list (Rtl.uses cmp));
  check_regs "cmp defines cc" [ "cc" ] (reg_list (Rtl.defs cmp));
  let br = Rtl.Branch (Lt, Label.of_int 1) in
  check_regs "branch uses cc" [ "cc" ] (reg_list (Rtl.uses br));
  let call = Rtl.Call ("f", 2) in
  Alcotest.(check bool)
    "call uses two arg regs" true
    (Reg.Set.mem (Conv.arg_reg 0) (Rtl.uses call)
    && Reg.Set.mem (Conv.arg_reg 1) (Rtl.uses call)
    && not (Reg.Set.mem (Conv.arg_reg 2) (Rtl.uses call)));
  Alcotest.(check bool)
    "call clobbers caller-save" true
    (Reg.Set.subset Conv.caller_save (Rtl.defs call))

let test_classification () =
  Alcotest.(check bool) "jump is transfer" true (Rtl.is_transfer (Jump (Label.of_int 0)));
  Alcotest.(check bool) "call is not a block terminator" false (Rtl.is_transfer (Call ("f", 0)));
  Alcotest.(check bool) "store impure" false (Rtl.is_pure (Move (Lmem (Word, Based (v 0, 0)), Imm 1)));
  Alcotest.(check bool) "load pure" true (Rtl.is_pure (Move (Lreg (v 0), Mem (Word, Based (v 1, 0)))));
  Alcotest.(check bool) "load reads mem" true (Rtl.reads_mem (Move (Lreg (v 0), Mem (Word, Based (v 1, 0)))));
  Alcotest.(check bool) "store writes mem" true (Rtl.writes_mem (Move (Lmem (Word, Based (v 0, 0)), Imm 1)))

let test_map_regs () =
  let bump = function Reg.Virt n -> Reg.Virt (n + 10) | r -> r in
  let i = Rtl.Binop (Mul, Lmem (Word, Based (v 0, 4)), Mem (Word, Based (v 0, 4)), Reg (v 1)) in
  let i' = Rtl.map_regs bump i in
  check_regs "mapped uses" [ "v10"; "v11" ] (reg_list (Rtl.uses i'))

let test_targets () =
  let l1 = Label.of_int 1 and l2 = Label.of_int 2 in
  Alcotest.(check int) "ijump targets" 2
    (List.length (Rtl.targets (Ijump (v 0, [| l1; l2 |]))));
  let renamed = Rtl.map_labels (fun _ -> l2) (Rtl.Branch (Eq, l1)) in
  Alcotest.(check bool) "map_labels" true (Rtl.targets renamed = [ l2 ])

let all_conds = [ Rtl.Eq; Ne; Lt; Le; Gt; Ge ]

let test_cond_negation () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "negate involutive" true
        (Rtl.negate_cond (Rtl.negate_cond c) = c);
      (* negation flips truth on every input pair *)
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool) "negate flips" (not (Rtl.eval_cond c a b))
            (Rtl.eval_cond (Rtl.negate_cond c) a b))
        [ (0, 0); (1, 0); (0, 1); (-5, 3); (7, 7) ])
    all_conds

let prop_swap_cond =
  QCheck.Test.make ~name:"swap_cond mirrors operands" ~count:300
    QCheck.(triple (int_range 0 5) int int)
    (fun (ci, a, b) ->
      let c = List.nth all_conds ci in
      Rtl.eval_cond c a b = Rtl.eval_cond (Rtl.swap_cond c) b a)

let test_pp () =
  let s i = Rtl.instr_to_string i in
  Alcotest.(check string) "move" "v0=5;" (s (Move (Lreg (v 0), Imm 5)));
  Alcotest.(check string) "store" "W[v1+8]=v0;"
    (s (Move (Lmem (Word, Based (v 1, 8)), Reg (v 0))));
  Alcotest.(check string) "cmp" "NZ=v0?3;" (s (Cmp (Reg (v 0), Imm 3)));
  Alcotest.(check string) "branch" "PC=NZ<0,L7;"
    (s (Branch (Lt, Label.of_int 7)));
  Alcotest.(check string) "ret" "PC=RT;" (s Ret);
  Alcotest.(check string) "global" "v0=B[_tab+2];"
    (s (Move (Lreg (v 0), Mem (Byte, Abs ("tab", 2)))))

let tests =
  ( "rtl",
    [
      Alcotest.test_case "uses/defs" `Quick test_uses_defs;
      Alcotest.test_case "classification" `Quick test_classification;
      Alcotest.test_case "map_regs" `Quick test_map_regs;
      Alcotest.test_case "targets/map_labels" `Quick test_targets;
      Alcotest.test_case "condition negation" `Quick test_cond_negation;
      QCheck_alcotest.to_alcotest prop_swap_cond;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )
