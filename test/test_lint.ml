(* Each lint rule: one positive fixture and one clean fixture. *)

open Ir
open Flow
module Diag = Telemetry.Diag

let has code diags = List.exists (fun (d : Diag.t) -> d.code = code) diags

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0
let check_has name code diags = Alcotest.(check bool) name true (has code diags)

let check_not name code diags =
  Alcotest.(check bool) name false (has code diags)

(* Compile C down to pre-allocation RTL, like `jumprepc lint` does. *)
let lint_c ?(level = Opt.Driver.Simple) src =
  let prog =
    Opt.Driver.compile
      { Opt.Driver.default_options with level; allocate = false }
      Ir.Machine.risc src
  in
  Lint.check_prog prog

let func_of mks =
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create () in
  let labels =
    Array.init (Array.length mks) (fun _ -> Label.Supply.fresh lsupply)
  in
  let blocks =
    Array.mapi
      (fun i mk -> { Func.label = labels.(i); instrs = mk labels })
      mks
  in
  Func.make ~name:"t" ~blocks ~lsupply ~vsupply

let v n = Reg.Virt n

let test_uninit_read () =
  let findings =
    lint_c
      "int main() {\n\
      \  int x;\n\
      \  int c;\n\
      \  c = getchar();\n\
      \  if (c > 70) { x = 1; }\n\
      \  putchar(65 + x);\n\
      \  return 0;\n\
       }\n"
  in
  check_has "conditionally initialized local" Diag.Uninit_read findings;
  Alcotest.(check bool) "error severity" true (Diag.has_errors findings);
  let clean =
    lint_c
      "int main() {\n\
      \  int x;\n\
      \  int c;\n\
      \  c = getchar();\n\
      \  x = 0;\n\
      \  if (c > 70) { x = 1; }\n\
      \  putchar(65 + x);\n\
      \  return 0;\n\
       }\n"
  in
  check_not "initialized on every path" Diag.Uninit_read clean

let test_dead_store () =
  let f =
    func_of
      [|
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 1), Imm 5);
            Rtl.Move (Lreg (v 2), Reg (v 1));
            Rtl.Move (Lreg Conv.rv, Imm 0);
            Rtl.Leave;
            Rtl.Ret;
          ]);
      |]
  in
  let findings = Lint.check_func f in
  check_has "unread result" Diag.Dead_store findings;
  let clean =
    func_of
      [|
        (fun _ ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 1), Imm 5);
            Rtl.Move (Lreg Conv.rv, Reg (v 1));
            Rtl.Leave;
            Rtl.Ret;
          ]);
      |]
  in
  check_not "every result read" Diag.Dead_store (Lint.check_func clean)

let test_const_branch () =
  let f =
    func_of
      [|
        (fun ls ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 1), Imm 1);
            Rtl.Cmp (Reg (v 1), Imm 0);
            Rtl.Branch (Rtl.Ne, ls.(2));
          ]);
        (fun _ -> [ Rtl.Nop ]);
        (fun _ -> [ Rtl.Move (Lreg Conv.rv, Imm 0); Rtl.Leave; Rtl.Ret ]);
      |]
  in
  let findings = Lint.check_func f in
  check_has "decidable compare" Diag.Const_branch findings;
  Alcotest.(check bool) "warning only" false (Diag.has_errors findings);
  (* A call result is opaque: the same shape is undecidable. *)
  let clean =
    func_of
      [|
        (fun ls ->
          [
            Rtl.Enter 8;
            Rtl.Call ("getchar", 0);
            Rtl.Move (Lreg (v 1), Reg Conv.rv);
            Rtl.Cmp (Reg (v 1), Imm 0);
            Rtl.Branch (Rtl.Ne, ls.(2));
          ]);
        (fun _ -> [ Rtl.Nop ]);
        (fun _ -> [ Rtl.Move (Lreg Conv.rv, Imm 0); Rtl.Leave; Rtl.Ret ]);
      |]
  in
  check_not "opaque compare" Diag.Const_branch (Lint.check_func clean)

let test_jump_chain () =
  let f =
    func_of
      [|
        (fun ls -> [ Rtl.Enter 8; Rtl.Jump ls.(1) ]);
        (fun ls -> [ Rtl.Jump ls.(2) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      |]
  in
  check_has "jump lands on a jump" Diag.Jump_chain (Lint.check_func f);
  let clean =
    func_of
      [|
        (fun ls -> [ Rtl.Enter 8; Rtl.Jump ls.(2) ]);
        (fun _ -> [ Rtl.Nop ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      |]
  in
  check_not "direct jump" Diag.Jump_chain (Lint.check_func clean)

let test_unreachable () =
  let f =
    func_of
      [|
        (fun ls -> [ Rtl.Enter 8; Rtl.Jump ls.(2) ]);
        (fun ls -> [ Rtl.Move (Lreg (v 1), Imm 1); Rtl.Jump ls.(2) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      |]
  in
  check_has "orphan block" Diag.Unreachable_code (Lint.check_func f);
  let reachable =
    func_of
      [|
        (fun ls ->
          [
            Rtl.Enter 8;
            Rtl.Cmp (Reg Conv.rv, Imm 0);
            Rtl.Branch (Rtl.Eq, ls.(2));
          ]);
        (fun ls -> [ Rtl.Move (Lreg (v 1), Imm 1); Rtl.Jump ls.(2) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      |]
  in
  check_not "all blocks reachable" Diag.Unreachable_code
    (Lint.check_func reachable)

let test_malformed_guard () =
  (* A dangling target: lint must report Malformed_ir and nothing else. *)
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create () in
  let l0 = Label.Supply.fresh lsupply in
  let dangling = Label.Supply.fresh lsupply in
  let f =
    Func.make ~name:"t"
      ~blocks:
        [|
          { Func.label = l0; instrs = [ Rtl.Enter 8; Rtl.Jump dangling ] };
        |]
      ~lsupply ~vsupply
  in
  match Lint.check_func f with
  | [ d ] ->
    Alcotest.(check bool) "malformed-ir" true (d.Diag.code = Diag.Malformed_ir)
  | ds ->
    Alcotest.fail
      (Printf.sprintf "expected one malformed-ir finding, got %d"
         (List.length ds))

let test_replication_outlook () =
  (* At SIMPLE the loop's back jump survives; the outlook must mention it,
     as growth estimate, loop copy, or residual. *)
  let findings =
    lint_c ~level:Opt.Driver.Simple
      "int main() {\n\
      \  int i;\n\
      \  int s;\n\
      \  s = 0;\n\
      \  for (i = 0; i < 10; i++) { s += i; }\n\
      \  putchar(65 + (s & 15));\n\
      \  return 0;\n\
       }\n"
  in
  Alcotest.(check bool) "some replication outlook" true
    (has Diag.Code_growth findings
    || has Diag.Loop_replication findings
    || has Diag.Jump_residual findings);
  Alcotest.(check bool) "outlook is warnings only" false
    (Diag.has_errors findings)

let test_diag_of_decision () =
  let lsupply = Label.Supply.create () in
  let a = Label.Supply.fresh lsupply in
  let b = Label.Supply.fresh lsupply in
  let mk d = Lint.diag_of_decision ~func:"f" ~pass:"lint" ((a, b), d) in
  let loop =
    mk
      (Replication.Jumps.Replicated
         { mode = "favor-loops"; seq = [ 1; 2 ]; cost = 5; loop_completed = true })
  in
  Alcotest.(check bool) "loop copy" true (loop.Diag.code = Diag.Loop_replication);
  let growth =
    mk
      (Replication.Jumps.Replicated
         { mode = "favor-returns"; seq = [ 1 ]; cost = 2; loop_completed = false })
  in
  Alcotest.(check bool) "growth estimate" true
    (growth.Diag.code = Diag.Code_growth);
  Alcotest.(check bool) "cost in message" true
    (contains ~affix:"2 RTLs" growth.Diag.message);
  let residual = mk (Replication.Jumps.Not_replicated Telemetry.Log.No_path) in
  Alcotest.(check bool) "residual jump" true
    (residual.Diag.code = Diag.Jump_residual);
  Alcotest.(check bool) "all warnings" false
    (Diag.has_errors [ loop; growth; residual ])

let test_json_shape () =
  let findings =
    lint_c
      "int main() {\n\
      \  int x;\n\
      \  int c;\n\
      \  c = getchar();\n\
      \  if (c > 70) { x = 1; }\n\
      \  putchar(65 + x);\n\
      \  return 0;\n\
       }\n"
  in
  let json = String.concat "," (List.map Diag.to_json findings) in
  Alcotest.(check bool) "code field" true
    (contains ~affix:"\"code\":\"uninit-read\"" json);
  Alcotest.(check bool) "severity field" true
    (contains ~affix:"\"severity\":\"error\"" json)

let tests =
  ( "lint",
    [
      Alcotest.test_case "uninit-read" `Quick test_uninit_read;
      Alcotest.test_case "dead-store" `Quick test_dead_store;
      Alcotest.test_case "const-branch" `Quick test_const_branch;
      Alcotest.test_case "jump-chain" `Quick test_jump_chain;
      Alcotest.test_case "unreachable-code" `Quick test_unreachable;
      Alcotest.test_case "malformed guard" `Quick test_malformed_guard;
      Alcotest.test_case "replication outlook" `Quick test_replication_outlook;
      Alcotest.test_case "decision diagnostics" `Quick test_diag_of_decision;
      Alcotest.test_case "json shape" `Quick test_json_shape;
    ] )
