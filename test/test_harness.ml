(* Measurement harness consistency. *)

let wc () = Option.get (Programs.Suite.find "wc")

let test_measure_basics () =
  let m = Harness.Measure.run (wc ()) Opt.Driver.Simple Ir.Machine.risc in
  Alcotest.(check bool) "output verified" true m.output_ok;
  Alcotest.(check int) "eight cache configs" 8 (List.length m.caches);
  Alcotest.(check bool) "static positive" true (m.static_instrs > 0);
  Alcotest.(check bool) "dynamic >= static paths" true (m.dyn_instrs > 0);
  Alcotest.(check bool) "between-branches sensible" true
    (Harness.Measure.instrs_between_branches m > 1.0);
  List.iter
    (fun (c : Harness.Measure.cache_stats) ->
      Alcotest.(check bool) "miss ratio in range" true
        (c.miss_ratio >= 0.0 && c.miss_ratio <= 1.0);
      Alcotest.(check bool) "fetch cost positive" true (c.fetch_cost > 0))
    m.caches

let test_memoization () =
  let a = Harness.Measure.run (wc ()) Opt.Driver.Loops Ir.Machine.cisc in
  let b = Harness.Measure.run (wc ()) Opt.Driver.Loops Ir.Machine.cisc in
  Alcotest.(check bool) "memoized results identical" true (a = b)

let test_cache_cost_dominated_by_hits () =
  (* fetch_cost = hits + 10*misses, so cost >= accesses and
     cost <= 10*accesses. *)
  let m = Harness.Measure.run (wc ()) Opt.Driver.Simple Ir.Machine.cisc in
  List.iter
    (fun (c : Harness.Measure.cache_stats) ->
      let lo = float_of_int c.fetch_cost /. 10.0 in
      Alcotest.(check bool) "cost bounds" true
        (float_of_int c.fetch_cost >= lo))
    m.caches

let test_custom_options_not_memoized () =
  (* Runs with explicit options bypass the memo table. *)
  let opts =
    { Opt.Driver.default_options with
      level = Opt.Driver.Jumps;
      max_rtls = Some 1;
    }
  in
  let capped = Harness.Measure.run ~opts (wc ()) Opt.Driver.Jumps Ir.Machine.risc in
  let full = Harness.Measure.run (wc ()) Opt.Driver.Jumps Ir.Machine.risc in
  Alcotest.(check bool) "capped replication produces less code" true
    (capped.static_instrs <= full.static_instrs);
  Alcotest.(check bool) "capped run still correct" true capped.output_ok

let test_parallel_determinism () =
  (* The whole contract of the Pool-based sweep: at any domain count the
     results, the telemetry counters, the recorded verdicts and the event
     stream must equal the sequential run.  Only Pass_end wall-clock
     timings are normalized away — they differ between any two runs,
     parallel or not. *)
  let norm_event = function
    | Telemetry.Log.Pass_end e ->
      Telemetry.Log.Pass_end { e with elapsed_ms = 0.0 }
    | e -> e
  in
  (* Wall-clock and allocation are nondeterministic; the profiler's
     deterministic projection is which rows exist, how often each fired
     and the interpreter fuel. *)
  let profiler_sig p =
    ( List.map
        (fun (r : Telemetry.Profiler.pass_row) ->
          (r.p_func, r.p_pass, r.p_calls))
        (List.sort compare (Telemetry.Profiler.pass_rows p)),
      List.map
        (fun (r : Telemetry.Profiler.run_row) -> (r.r_run, r.r_fuel))
        (List.sort compare (Telemetry.Profiler.run_rows p)) )
  in
  let histogram_sig m name =
    List.filter_map
      (function
        | n, Telemetry.Metrics.VHistogram { counts; count; _ }
          when String.equal n name ->
          Some (Array.to_list counts, count)
        | _ -> None)
      (Telemetry.Metrics.snapshot m)
  in
  let sweep jobs =
    Harness.Measure.reset_cache ();
    let log = Telemetry.Log.make Telemetry.Log.Memory in
    let profiler = Telemetry.Profiler.create () in
    let pool_metrics = Telemetry.Metrics.create () in
    let results =
      Harness.Measure.run_suite ~log ~profiler ~metrics:pool_metrics ~jobs
        Opt.Driver.Jumps Ir.Machine.risc
    in
    ( List.map Harness.Measure.to_json results,
      Telemetry.Counter.all log,
      List.map norm_event (Telemetry.Log.events log),
      (Harness.Measure.mismatches (), Harness.Measure.timeouts ()),
      profiler_sig profiler,
      histogram_sig (Telemetry.Log.metrics log) "measure.run_instrs",
      Telemetry.Metrics.counters pool_metrics )
  in
  let json1, counters1, events1, verdicts1, prof1, hist1, _pool1 = sweep 1 in
  Alcotest.(check bool) "sequential sweep nonempty" true (json1 <> []);
  Alcotest.(check bool) "counters accumulated" true (counters1 <> []);
  (let pass_rows, run_rows = prof1 in
   Alcotest.(check bool) "profiler saw passes" true (pass_rows <> []);
   Alcotest.(check bool) "profiler saw runs" true (run_rows <> []));
  Alcotest.(check bool) "run_instrs histogram filled" true (hist1 <> []);
  List.iter
    (fun jobs ->
      let json, counters, events, verdicts, prof, hist, pool = sweep jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "results at -j %d" jobs)
        json1 json;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "counters at -j %d" jobs)
        counters1 counters;
      Alcotest.(check bool)
        (Printf.sprintf "event stream at -j %d" jobs)
        true
        (events = events1);
      Alcotest.(check bool)
        (Printf.sprintf "verdicts at -j %d" jobs)
        true
        (verdicts = verdicts1);
      Alcotest.(check bool)
        (Printf.sprintf "profiler shards merge deterministically at -j %d" jobs)
        true (prof = prof1);
      Alcotest.(check bool)
        (Printf.sprintf "histograms merge deterministically at -j %d" jobs)
        true (hist = hist1);
      (* The -j 1 fast path bypasses the pool; at higher -j the pool
         publishes its tallies, all zero without chaos or deadlines. *)
      Alcotest.(check bool)
        (Printf.sprintf "pool counters published at -j %d" jobs)
        true
        (List.mem ("pool.retried", 0) pool
        && List.mem ("pool.respawned", 0) pool
        && List.mem ("pool.injected_crashes", 0) pool))
    [ 2; 4 ]

(* --- the supervised pool --- *)

module Pool = Harness.Pool

let outcome_sig = function
  | Pool.Done v -> Printf.sprintf "done:%d" v
  | Pool.Crashed { attempts; _ } -> Printf.sprintf "crashed:%d" attempts
  | Pool.Timed_out { attempts; _ } -> Printf.sprintf "timed-out:%d" attempts

let test_backoff_schedule () =
  let chk name exp got = Alcotest.(check (float 1e-9)) name exp got in
  chk "attempt 1" 0.05 (Pool.backoff 1);
  chk "attempt 2" 0.1 (Pool.backoff 2);
  chk "attempt 3" 0.2 (Pool.backoff 3);
  chk "attempt 4" 0.4 (Pool.backoff 4);
  chk "attempt 5 hits cap" 0.8 (Pool.backoff 5);
  chk "attempt 9 stays capped" 0.8 (Pool.backoff 9);
  chk "custom base" 0.02 (Pool.backoff ~base:0.01 2);
  chk "custom cap" 0.3 (Pool.backoff ~cap:0.3 9)

let test_chaos_parse () =
  (match Pool.chaos_of_string "crash:0.2,hang:0.05,seed:7" with
  | Ok c ->
    Alcotest.(check (float 1e-9)) "crash rate" 0.2 c.Pool.crash;
    Alcotest.(check (float 1e-9)) "hang rate" 0.05 c.Pool.hang;
    Alcotest.(check (float 1e-9)) "alloc off" 0.0 c.Pool.alloc;
    Alcotest.(check int) "seed" 7 c.Pool.chaos_seed
  | Error e -> Alcotest.fail e);
  (match Pool.chaos_of_string "hang" with
  | Ok c -> Alcotest.(check (float 1e-9)) "default rate" 0.1 c.Pool.hang
  | Error e -> Alcotest.fail e);
  let rejects spec =
    match Pool.chaos_of_string spec with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted bad spec %S" spec)
    | Error _ -> ()
  in
  rejects "";
  rejects "seed:3";
  rejects "crash:2";
  rejects "bogus:0.1"

let test_default_jobs () =
  Unix.putenv "JUMPREP_JOBS" "3";
  Alcotest.(check int) "parsed" 3 (Pool.default_jobs ());
  Unix.putenv "JUMPREP_JOBS" "abc";
  Alcotest.(check int) "unparsable falls back to 1" 1 (Pool.default_jobs ());
  Unix.putenv "JUMPREP_JOBS" "99999";
  Alcotest.(check int) "absurd value clamped"
    (Domain.recommended_domain_count ())
    (Pool.default_jobs ());
  Unix.putenv "JUMPREP_JOBS" ""

let test_crash_isolation () =
  (* One task crashing must not cost any sibling its result. *)
  let f _budget x = if x = 3 then failwith "boom" else x * x in
  let outcomes, _ = Pool.supervise ~jobs:2 ~retries:0 f [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "all outcomes present" 6 (List.length outcomes);
  List.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) "sibling value" (i * i) v
      | Pool.Crashed { exn; attempts; _ } ->
        Alcotest.(check int) "crashing index" 3 i;
        Alcotest.(check int) "no retries requested" 1 attempts;
        Alcotest.(check bool) "exception preserved" true (exn = Failure "boom")
      | Pool.Timed_out _ -> Alcotest.fail "unexpected timeout")
    outcomes

let test_flaky_retry () =
  (* First attempt of every task fails; the retry succeeds. *)
  let tries = Array.init 4 (fun _ -> Atomic.make 0) in
  let f _budget x =
    if Atomic.fetch_and_add tries.(x) 1 = 0 then failwith "transient"
    else x + 100
  in
  let outcomes, stats =
    Pool.supervise ~jobs:2 ~retries:2 ~backoff_base:0.001 f [ 0; 1; 2; 3 ]
  in
  List.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) "recovered value" (i + 100) v
      | _ -> Alcotest.fail "task did not recover")
    outcomes;
  Alcotest.(check bool) "retries accounted" true (stats.Pool.retried >= 4)

let test_cooperative_cancel () =
  (* A task that polls its budget is cancelled at the deadline. *)
  let f budget x =
    if x = 0 then begin
      while true do
        Telemetry.Budget.check budget;
        Domain.cpu_relax ()
      done;
      assert false
    end
    else x
  in
  let outcomes, _ = Pool.supervise ~jobs:2 ~deadline:0.05 ~retries:0 f [ 0; 1 ] in
  match outcomes with
  | [ Pool.Timed_out { attempts = 1; elapsed }; Pool.Done 1 ] ->
    Alcotest.(check bool) "cancelled near the deadline" true
      (elapsed >= 0.04 && elapsed < 2.0)
  | _ -> Alcotest.fail "expected [Timed_out; Done 1]"

let test_hang_cannot_wedge_join () =
  (* A task that ignores its budget entirely: the watchdog abandons it and
     supervise still returns, with every sibling's result intact. *)
  let stop = Atomic.make false in
  let f _budget x =
    if x = 1 then begin
      while not (Atomic.get stop) do
        Domain.cpu_relax ()
      done;
      -1
    end
    else x * 10
  in
  let t0 = Unix.gettimeofday () in
  let outcomes, stats =
    Pool.supervise ~jobs:2 ~deadline:0.05 ~retries:0 f [ 0; 1; 2; 3 ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Alcotest.(check bool) "returned despite the wedged worker" true
    (elapsed < 5.0);
  Alcotest.(check bool) "hung attempt abandoned" true (stats.Pool.abandoned >= 1);
  List.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) "sibling value" (i * 10) v
      | Pool.Timed_out { attempts = 1; _ } ->
        Alcotest.(check int) "hung index" 1 i
      | _ -> Alcotest.fail "unexpected outcome")
    outcomes

let test_chaos_crash_respawn () =
  (* crash rate 1.0: every attempt kills its worker; the supervisor must
     detect each death, respawn, and exhaust the retry budget. *)
  let chaos = { Pool.crash = 1.0; hang = 0.0; alloc = 0.0; chaos_seed = 3 } in
  let outcomes, stats =
    Pool.supervise ~jobs:2 ~retries:2 ~backoff_base:0.001 ~chaos
      (fun _budget x -> x)
      [ 0; 1; 2; 3 ]
  in
  List.iter
    (function
      | Pool.Crashed { exn = Pool.Chaos_crash; attempts = 3; _ } -> ()
      | o -> Alcotest.fail ("expected 3-attempt chaos crash, got " ^ outcome_sig o))
    outcomes;
  Alcotest.(check int) "every attempt injected" 12 stats.Pool.injected_crashes;
  Alcotest.(check bool) "dead workers respawned" true (stats.Pool.respawned > 0)

let test_chaos_determinism () =
  (* The fault schedule is pure in (seed, task, attempt): the parallel run
     must reproduce the inline run outcome for outcome, and completed
     tasks keep their correct values. *)
  let chaos = { Pool.crash = 0.4; hang = 0.0; alloc = 0.2; chaos_seed = 42 } in
  let stats_sig (s : Pool.stats) =
    let m = Telemetry.Metrics.create () in
    Pool.stats_to_metrics s m;
    Telemetry.Metrics.counters m
  in
  let run jobs =
    let outcomes, stats =
      Pool.supervise ~jobs ~retries:1 ~backoff_base:0.001 ~chaos
        (fun _budget x -> 3 * x)
        (List.init 12 Fun.id)
    in
    List.iteri
      (fun i o ->
        match o with
        | Pool.Done v -> Alcotest.(check int) "completed value correct" (3 * i) v
        | _ -> ())
      outcomes;
    (List.map outcome_sig outcomes, stats_sig stats)
  in
  let inline, tallies_inline = run 1 in
  let par, tallies_par = run 2 in
  let par', tallies_par' = run 2 in
  Alcotest.(check (list string)) "parallel matches inline schedule" inline par;
  Alcotest.(check (list string)) "parallel run repeatable" par par';
  (* The chaos tallies are part of the determinism contract too: the
     fault and retry counts a run publishes through stats_to_metrics must
     not depend on the domain count (they are derived from the same pure
     schedule).  pool.respawned is the exception, a scheduling artifact:
     the inline path has no worker domains to lose, and whether the
     supervisor bothers respawning after a late crash depends on how
     much work is left when it notices the death. *)
  let sans_respawn = List.filter (fun (n, _) -> n <> "pool.respawned") in
  Alcotest.(check (list (pair string int)))
    "chaos tallies match inline"
    (sans_respawn tallies_inline)
    (sans_respawn tallies_par);
  Alcotest.(check (list (pair string int)))
    "chaos tallies repeatable"
    (sans_respawn tallies_par)
    (sans_respawn tallies_par');
  let has prefix = List.exists (String.starts_with ~prefix) inline in
  Alcotest.(check bool) "schedule mixes faults and successes" true
    (has "done" && has "crashed")

let test_pool_map () =
  Alcotest.(check (list int))
    "map" [ 0; 1; 4; 9 ]
    (Pool.map ~jobs:2 (fun x -> x * x) [ 0; 1; 2; 3 ]);
  match Pool.map ~jobs:2 (fun x -> if x = 2 then raise Exit else x) [ 0; 1; 2; 3 ]
  with
  | _ -> Alcotest.fail "expected Exit to re-raise"
  | exception Exit -> ()

let test_run_many_chaos_zero_lost () =
  (* Chaos may abort tasks but must never lose one silently, and every
     completed measurement must equal its sequential counterpart. *)
  let b = wc () in
  let tasks =
    List.map
      (fun l -> (b, l, Ir.Machine.cisc))
      [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ]
  in
  Harness.Measure.reset_cache ();
  let baseline =
    Harness.Measure.run_many tasks |> List.map Harness.Measure.to_json
  in
  Harness.Measure.reset_cache ();
  let before = List.length (Harness.Measure.task_failures ()) in
  let chaos = { Pool.crash = 0.6; hang = 0.0; alloc = 0.0; chaos_seed = 5 } in
  let got =
    Harness.Measure.run_many ~jobs:2 ~retries:1 ~chaos tasks
    |> List.map Harness.Measure.to_json
  in
  let failed = List.length (Harness.Measure.task_failures ()) - before in
  Alcotest.(check int) "completed + failed = total" (List.length tasks)
    (List.length got + failed);
  List.iter
    (fun j ->
      Alcotest.(check bool) "completed result equals sequential" true
        (List.mem j baseline))
    got

let tests =
  ( "harness",
    [
      Alcotest.test_case "measure basics" `Quick test_measure_basics;
      Alcotest.test_case "memoization" `Quick test_memoization;
      Alcotest.test_case "fetch cost bounds" `Quick test_cache_cost_dominated_by_hits;
      Alcotest.test_case "custom options" `Quick test_custom_options_not_memoized;
      Alcotest.test_case "parallel sweep determinism" `Slow
        test_parallel_determinism;
      Alcotest.test_case "pool backoff schedule" `Quick test_backoff_schedule;
      Alcotest.test_case "pool chaos spec parsing" `Quick test_chaos_parse;
      Alcotest.test_case "pool default jobs" `Quick test_default_jobs;
      Alcotest.test_case "pool crash isolation" `Quick test_crash_isolation;
      Alcotest.test_case "pool flaky retry" `Quick test_flaky_retry;
      Alcotest.test_case "pool cooperative cancel" `Quick
        test_cooperative_cancel;
      Alcotest.test_case "pool hung task cannot wedge join" `Slow
        test_hang_cannot_wedge_join;
      Alcotest.test_case "pool chaos crash respawn" `Quick
        test_chaos_crash_respawn;
      Alcotest.test_case "pool chaos determinism" `Quick test_chaos_determinism;
      Alcotest.test_case "pool map" `Quick test_pool_map;
      Alcotest.test_case "run_many chaos loses nothing" `Slow
        test_run_many_chaos_zero_lost;
    ] )
