(* Measurement harness consistency. *)

let wc () = Option.get (Programs.Suite.find "wc")

let test_measure_basics () =
  let m = Harness.Measure.run (wc ()) Opt.Driver.Simple Ir.Machine.risc in
  Alcotest.(check bool) "output verified" true m.output_ok;
  Alcotest.(check int) "eight cache configs" 8 (List.length m.caches);
  Alcotest.(check bool) "static positive" true (m.static_instrs > 0);
  Alcotest.(check bool) "dynamic >= static paths" true (m.dyn_instrs > 0);
  Alcotest.(check bool) "between-branches sensible" true
    (Harness.Measure.instrs_between_branches m > 1.0);
  List.iter
    (fun (c : Harness.Measure.cache_stats) ->
      Alcotest.(check bool) "miss ratio in range" true
        (c.miss_ratio >= 0.0 && c.miss_ratio <= 1.0);
      Alcotest.(check bool) "fetch cost positive" true (c.fetch_cost > 0))
    m.caches

let test_memoization () =
  let a = Harness.Measure.run (wc ()) Opt.Driver.Loops Ir.Machine.cisc in
  let b = Harness.Measure.run (wc ()) Opt.Driver.Loops Ir.Machine.cisc in
  Alcotest.(check bool) "memoized results identical" true (a = b)

let test_cache_cost_dominated_by_hits () =
  (* fetch_cost = hits + 10*misses, so cost >= accesses and
     cost <= 10*accesses. *)
  let m = Harness.Measure.run (wc ()) Opt.Driver.Simple Ir.Machine.cisc in
  List.iter
    (fun (c : Harness.Measure.cache_stats) ->
      let lo = float_of_int c.fetch_cost /. 10.0 in
      Alcotest.(check bool) "cost bounds" true
        (float_of_int c.fetch_cost >= lo))
    m.caches

let test_custom_options_not_memoized () =
  (* Runs with explicit options bypass the memo table. *)
  let opts =
    { Opt.Driver.default_options with
      level = Opt.Driver.Jumps;
      max_rtls = Some 1;
    }
  in
  let capped = Harness.Measure.run ~opts (wc ()) Opt.Driver.Jumps Ir.Machine.risc in
  let full = Harness.Measure.run (wc ()) Opt.Driver.Jumps Ir.Machine.risc in
  Alcotest.(check bool) "capped replication produces less code" true
    (capped.static_instrs <= full.static_instrs);
  Alcotest.(check bool) "capped run still correct" true capped.output_ok

let test_parallel_determinism () =
  (* The whole contract of the Pool-based sweep: at any domain count the
     results, the telemetry counters, the recorded verdicts and the event
     stream must equal the sequential run.  Only Pass_end wall-clock
     timings are normalized away — they differ between any two runs,
     parallel or not. *)
  let norm_event = function
    | Telemetry.Log.Pass_end e ->
      Telemetry.Log.Pass_end { e with elapsed_ms = 0.0 }
    | e -> e
  in
  let sweep jobs =
    Harness.Measure.reset_cache ();
    let log = Telemetry.Log.make Telemetry.Log.Memory in
    let results =
      Harness.Measure.run_suite ~log ~jobs Opt.Driver.Jumps Ir.Machine.risc
    in
    ( List.map Harness.Measure.to_json results,
      Telemetry.Counter.all log,
      List.map norm_event (Telemetry.Log.events log),
      (Harness.Measure.mismatches (), Harness.Measure.timeouts ()) )
  in
  let json1, counters1, events1, verdicts1 = sweep 1 in
  Alcotest.(check bool) "sequential sweep nonempty" true (json1 <> []);
  Alcotest.(check bool) "counters accumulated" true (counters1 <> []);
  List.iter
    (fun jobs ->
      let json, counters, events, verdicts = sweep jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "results at -j %d" jobs)
        json1 json;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "counters at -j %d" jobs)
        counters1 counters;
      Alcotest.(check bool)
        (Printf.sprintf "event stream at -j %d" jobs)
        true
        (events = events1);
      Alcotest.(check bool)
        (Printf.sprintf "verdicts at -j %d" jobs)
        true
        (verdicts = verdicts1))
    [ 2; 4 ]

let tests =
  ( "harness",
    [
      Alcotest.test_case "measure basics" `Quick test_measure_basics;
      Alcotest.test_case "memoization" `Quick test_memoization;
      Alcotest.test_case "fetch cost bounds" `Quick test_cache_cost_dominated_by_hits;
      Alcotest.test_case "custom options" `Quick test_custom_options_not_memoized;
      Alcotest.test_case "parallel sweep determinism" `Slow
        test_parallel_determinism;
    ] )
