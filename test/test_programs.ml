(* Integration: the paper's 14 programs plus the 3 control-flow-heavy
   corpus additions (fannkuch, lexer, rdparse), each compiled at all
   three optimization levels for both machines, must reproduce the
   gcc-verified expected output — 102 end-to-end configurations. *)

let run_one (b : Programs.Suite.benchmark) level machine =
  let opts = { Opt.Driver.default_options with level } in
  let prog =
    Opt.Driver.optimize opts machine
      (Frontend.Codegen.compile_source b.source)
  in
  List.iter Flow.Check.assert_ok prog.Flow.Prog.funcs;
  let asm = Sim.Asm.assemble machine prog in
  let res = Sim.Interp.run ~input:b.input asm prog in
  Alcotest.(check string)
    (Printf.sprintf "%s %s/%s output" b.name (Opt.Driver.level_name level)
       machine.Ir.Machine.short)
    b.expected_output res.output;
  res

let test_program (b : Programs.Suite.benchmark) () =
  let results =
    List.concat_map
      (fun machine ->
        List.map (fun level -> (level, run_one b level machine)) Helpers.levels)
      Helpers.machines
  in
  (* JUMPS must essentially eliminate executed unconditional jumps
     (paper Table 4: 0.10-0.13% of instructions remain). *)
  List.iter
    (fun (level, (res : Sim.Interp.result)) ->
      if level = Opt.Driver.Jumps then begin
        let ratio =
          float_of_int (res.counts.jumps)
          /. float_of_int (max 1 res.counts.total)
        in
        Alcotest.(check bool)
          (b.name ^ ": almost no jumps under JUMPS")
          true (ratio < 0.005)
      end)
    results

let test_paper_class_coverage () =
  let classes =
    List.sort_uniq String.compare
      (List.map (fun (b : Programs.Suite.benchmark) -> b.clazz) Programs.Suite.all)
  in
  Alcotest.(check (list string)) "Table 3 classes"
    [ "Benchmark"; "User code"; "Utility" ]
    classes;
  Alcotest.(check int) "nineteen programs" 19 (List.length Programs.Suite.all)

let test_savings_direction () =
  (* Dynamic instruction counts must not increase under LOOPS or JUMPS
     relative to SIMPLE — the paper's headline direction — for the
     loop-heavy benchmarks. *)
  List.iter
    (fun name ->
      let b = Option.get (Programs.Suite.find name) in
      List.iter
        (fun machine ->
          let dyn level = (run_one b level machine).counts.total in
          let simple = dyn Opt.Driver.Simple in
          let loops = dyn Opt.Driver.Loops in
          let jumps = dyn Opt.Driver.Jumps in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s loops <= simple" name machine.Ir.Machine.short)
            true (loops <= simple);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s jumps < simple" name machine.Ir.Machine.short)
            true (jumps < simple))
        Helpers.machines)
    [ "sieve"; "bubblesort"; "queens" ]

let tests =
  ( "programs",
    List.map
      (fun (b : Programs.Suite.benchmark) ->
        Alcotest.test_case b.name `Slow (test_program b))
      Programs.Suite.all
    @ [
        Alcotest.test_case "table 3 classes" `Quick test_paper_class_coverage;
        Alcotest.test_case "savings direction" `Slow test_savings_direction;
      ] )
