(* Shortest-path machinery, the JUMPS algorithm (including the paper's
   Figure 1 and Figure 2 situations) and the LOOPS variant. *)

open Ir
open Flow

let build = Test_flow.build

let num_ujumps f =
  List.length (Replication.Jumps.uncond_jumps f)

(* --- Shortest paths --- *)

let test_shortest_path_basic () =
  (* 0 -(br)-> 2 | 1; 1 -> 3; 2 -> 3; 3 ret.  Block sizes differ. *)
  let f =
    build [| (1, Test_flow.Br 2); (5, Test_flow.Jmp 3); (1, Test_flow.Fall); (1, Test_flow.Return) |]
  in
  let g = Cfg.make f in
  let ap = Replication.Shortest_path.All_pairs.compute f g in
  (match Replication.Shortest_path.All_pairs.path ap ~src:0 ~dst:3 with
  | Some p ->
    (* Cheaper through block 2 (1 RTL + terminator) than block 1 (5 + jump). *)
    Alcotest.(check (list int)) "route" [ 0; 2 ] p.blocks
  | None -> Alcotest.fail "path must exist");
  (match Replication.Shortest_path.All_pairs.path ap ~src:3 ~dst:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "no path backwards from the return block")

let random_shape = Test_flow.random_shape

let prop_dijkstra_agrees =
  QCheck.Test.make ~name:"Warshall and Dijkstra agree" ~count:150
    Test_flow.arb_shape (fun shape ->
      let f = build shape in
      let g = Cfg.make f in
      let ap = Replication.Shortest_path.All_pairs.compute f g in
      let n = Cfg.num_blocks g in
      let ok = ref true in
      for src = 0 to n - 1 do
        let ss = Replication.Shortest_path.Single_source.compute f g ~src in
        for dst = 0 to n - 1 do
          let a = Replication.Shortest_path.All_pairs.path ap ~src ~dst in
          let b = Replication.Shortest_path.Single_source.path ss ~dst in
          (* Distances and the chosen block sequences: both go through the
             shared canonical reconstruction, so not just the costs but the
             replication decisions must be identical. *)
          let view = function
            | Some (p : Replication.Shortest_path.path) ->
              Some (p.cost, p.blocks)
            | None -> None
          in
          if view a <> view b then ok := false
        done
      done;
      !ok)

let prop_lazy_matches_oracle_on_gen_cfgs =
  (* The lazy per-source solver behind [create]/[path] against the
     Floyd–Warshall oracle, on control-flow graphs of real generated
     programs (the fuzzer's C subset, compiled at Loops) rather than
     synthetic shapes — the block-size and branch-shape distribution the
     JUMPS pass actually queries. *)
  QCheck.Test.make ~name:"lazy solver equals Floyd-Warshall on generated CFGs"
    ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = Harness.Gen.generate (Random.State.make [| seed |]) in
      match
        Opt.Driver.compile
          { Opt.Driver.default_options with level = Opt.Driver.Loops }
          Machine.risc (Harness.Gen.to_c p)
      with
      | exception _ -> QCheck.assume_fail ()
      | prog ->
        List.for_all
          (fun f ->
            let g = Cfg.make f in
            let ap = Replication.Shortest_path.All_pairs.compute f g in
            let sp = Replication.Shortest_path.create f g in
            let n = Cfg.num_blocks g in
            let ok = ref true in
            for src = 0 to n - 1 do
              for dst = 0 to n - 1 do
                let a = Replication.Shortest_path.All_pairs.path ap ~src ~dst in
                let b = Replication.Shortest_path.path sp ~src ~dst in
                let view = function
                  | Some (p : Replication.Shortest_path.path) ->
                    Some (p.cost, p.blocks)
                  | None -> None
                in
                if view a <> view b then ok := false
              done
            done;
            !ok)
          prog.Flow.Prog.funcs)

let prop_path_valid =
  QCheck.Test.make ~name:"paths follow edges and sum block sizes" ~count:150
    Test_flow.arb_shape (fun shape ->
      let f = build shape in
      let g = Cfg.make f in
      let sp = Replication.Shortest_path.create f g in
      let n = Cfg.num_blocks g in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          match Replication.Shortest_path.path sp ~src ~dst with
          | None -> ()
          | Some p ->
            (* starts at src *)
            (match p.blocks with
            | s :: _ -> if s <> src then ok := false
            | [] -> ok := false);
            (* consecutive blocks are CFG edges; last block reaches dst *)
            let rec walk = function
              | [ last ] -> if not (List.mem dst (Cfg.succs g last)) then ok := false
              | x :: (y :: _ as rest) ->
                if not (List.mem y (Cfg.succs g x)) then ok := false;
                walk rest
              | [] -> ()
            in
            walk p.blocks;
            let cost =
              List.fold_left
                (fun acc b -> acc + Func.block_size (Func.block f b))
                0 p.blocks
            in
            if cost <> p.cost then ok := false
        done
      done;
      !ok)

(* --- JUMPS on hand-built control flow --- *)

let run_jumps ?(config = Replication.Jumps.default_config) f =
  Replication.Jumps.run config f

let test_jumps_removes_simple_jump () =
  (* if/else join: jump over the else part. *)
  let f =
    build
      [|
        (1, Test_flow.Br 2);
        (2, Test_flow.Jmp 3) (* then part: jump over else *);
        (2, Test_flow.Fall) (* else part *);
        (1, Test_flow.Return) (* join + return *);
      |]
  in
  let before = num_ujumps f in
  let f', changed = run_jumps f in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check int) "one jump before" 1 before;
  Alcotest.(check int) "no jumps after" 0 (num_ujumps f');
  Check.assert_ok f';
  (* The replicated path ends in a return (favoring returns) or falls
     through; either way the graph stays reducible. *)
  let g = Cfg.make f' in
  Alcotest.(check bool) "reducible" true (Loops.is_reducible g (Dom.compute g))

let test_jumps_figure1 () =
  (* Figure 1: a jump into a block followed by a natural loop; replicating
     without the whole loop would create a second entry.  Layout:
     0: branch to 2 (the jump source path) / falls to 1
     1: jump to 3 (the unconditional jump to replace)
     2: falls into loop head 3
     3: loop header, branches to 5 (exit)
     4: loop body, jumps back to 3
     5: return *)
  let f =
    build
      [|
        (1, Test_flow.Br 2);
        (1, Test_flow.Jmp 3);
        (2, Test_flow.Fall);
        (1, Test_flow.Br 5);
        (2, Test_flow.Jmp 3);
        (1, Test_flow.Return);
      |]
  in
  let f', changed = run_jumps f in
  Check.assert_ok f';
  Alcotest.(check bool) "changed" true changed;
  let g = Cfg.make f' in
  Alcotest.(check bool) "still reducible" true
    (Loops.is_reducible g (Dom.compute g));
  Alcotest.(check int) "jump replaced" 0
    (List.length
       (List.filter
          (fun (bl, _) -> Label.equal bl (Func.blocks f).(1).label)
          (Replication.Jumps.uncond_jumps f')))

let test_jumps_rollback_on_irreducible () =
  (* A jump whose every candidate replication would make the graph
     irreducible must be left in place when allow_irreducible is false.
     Jump from outside into the *middle* of a loop (unstructured loop). *)
  let f =
    build
      [|
        (1, Test_flow.Br 3) (* entry: branch to loop head, fall to jump *);
        (1, Test_flow.Jmp 4) (* the awkward jump into the loop body *);
        (1, Test_flow.Return) (* padding return *);
        (1, Test_flow.Br 2) (* loop header: exit to 2 *);
        (1, Test_flow.Jmp 3) (* loop body/latch *);
        (1, Test_flow.Return);
      |]
  in
  let f', _ = run_jumps f in
  Check.assert_ok f';
  let g = Cfg.make f' in
  Alcotest.(check bool) "result reducible" true
    (Loops.is_reducible g (Dom.compute g))

let test_jumps_size_cap () =
  let f =
    build
      [| (1, Test_flow.Br 2); (2, Test_flow.Jmp 3); (2, Test_flow.Fall); (1, Test_flow.Return) |]
  in
  let config = { Replication.Jumps.default_config with size_cap = 1 } in
  let f', changed = Replication.Jumps.run config f in
  Alcotest.(check bool) "no change under tiny cap" false changed;
  Alcotest.(check int) "jump kept" (num_ujumps f) (num_ujumps f')

let test_jumps_max_rtls () =
  let f =
    build
      [| (1, Test_flow.Br 2); (2, Test_flow.Jmp 3); (2, Test_flow.Fall); (8, Test_flow.Return) |]
  in
  (* Every candidate sequence costs more than 2 RTLs here. *)
  let config = { Replication.Jumps.default_config with max_rtls = Some 2 } in
  let f', changed = Replication.Jumps.run config f in
  Alcotest.(check bool) "capped out" false changed;
  Alcotest.(check int) "jump kept" (num_ujumps f) (num_ujumps f')

let test_jumps_infinite_loop_kept () =
  (* An infinite loop's jump has no replacement (paper §5.2). *)
  let f = build [| (1, Test_flow.Fall); (1, Test_flow.Jmp 1); (1, Test_flow.Return) |] in
  let f', changed = run_jumps f in
  Alcotest.(check bool) "self-loop untouched" false changed;
  Alcotest.(check int) "jump kept" 1 (num_ujumps f')

let test_jumps_indirect_terminal () =
  (* The section-6 extension: a replication sequence may end with an
     indirect jump.  Here every path from the jump target runs through an
     Ijump, so without the extension the jump is irreplaceable. *)
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create () in
  let l = Array.init 6 (fun _ -> Label.Supply.fresh lsupply) in
  let mov k = Rtl.Move (Rtl.Lreg (Reg.Virt k), Imm k) in
  let blocks =
    [|
      { Func.label = l.(0);
        instrs = [ Rtl.Enter 8; Rtl.Cmp (Reg (Reg.Virt 9), Imm 0); Rtl.Branch (Ne, l.(2)) ] };
      { Func.label = l.(1); instrs = [ mov 1; Rtl.Jump l.(3) ] };
      { Func.label = l.(2); instrs = [ mov 2; Rtl.Leave; Rtl.Ret ] };
      { Func.label = l.(3); instrs = [ mov 3 ] };
      { Func.label = l.(4); instrs = [ mov 4; Rtl.Ijump (Reg.Virt 8, [| l.(2); l.(5) |]) ] };
      { Func.label = l.(5); instrs = [ mov 5; Rtl.Leave; Rtl.Ret ] };
    |]
  in
  let f = Func.make ~name:"ind" ~blocks ~lsupply ~vsupply in
  Check.assert_ok f;
  let off = { Replication.Jumps.default_config with replicate_indirect = false } in
  let _, changed_off = Replication.Jumps.run off f in
  Alcotest.(check bool) "blocked without the extension" false changed_off;
  let f', changed_on = run_jumps f in
  Alcotest.(check bool) "replaced with the extension" true changed_on;
  Check.assert_ok f';
  Alcotest.(check int) "jump gone" 0 (num_ujumps f');
  (* Two Ijumps now exist (original + copy), sharing the same table. *)
  let ijumps =
    Array.fold_left
      (fun n (b : Func.block) ->
        n
        + List.length
            (List.filter
               (function Rtl.Ijump _ -> true | _ -> false)
               b.instrs))
      0 (Func.blocks f')
  in
  Alcotest.(check int) "indirect jump copied" 2 ijumps

let test_jumps_figure2_overlap_repair () =
  (* Figure 2: replication initiated from inside a loop.  Block 3's jump to
     the header is replaced by a copy; block 2's conditional branch to the
     copied header is redirected to the copy so no partially overlapping
     loop appears. *)
  let f =
    build
      [|
        (1, Test_flow.Fall) (* 0 entry *);
        (2, Test_flow.Br 4) (* 1 loop header; exit to 4 *);
        (1, Test_flow.Br 1) (* 2 branches back to the header *);
        (1, Test_flow.Jmp 1) (* 3 latch: the jump to replace *);
        (1, Test_flow.Return) (* 4 *);
      |]
  in
  let header_label = (Func.blocks f).(1).label in
  let f', changed = run_jumps f in
  Alcotest.(check bool) "changed" true changed;
  Check.assert_ok f';
  let g = Cfg.make f' in
  Alcotest.(check bool) "reducible" true (Loops.is_reducible g (Dom.compute g));
  (* Block 2 (identified by its label) must now branch to a copy, not to
     the original header. *)
  let b2_label = (Func.blocks f).(2).label in
  let b2 = Func.block f' (Func.index_of_label f' b2_label) in
  (match Func.terminator b2 with
  | Some (Rtl.Branch (_, l)) ->
    Alcotest.(check bool) "branch redirected to the copy" false
      (Label.equal l header_label)
  | _ -> Alcotest.fail "block 2 should still end in a conditional branch")

(* --- LOOPS --- *)

let test_loops_bottom_jump () =
  (* while shape: header test at top, body jumps back (Table 1's simple
     cousin).  The bottom jump must become a reversed conditional branch. *)
  let f = Test_flow.loop_func () in
  let f', changed = Replication.Loops_rep.run f in
  Check.assert_ok f';
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check int) "no jumps left" 0 (num_ujumps f');
  (* The former latch now ends in a conditional branch back into the loop. *)
  let latch = (Func.blocks f').(2) in
  (match Func.terminator latch with
  | Some (Rtl.Branch (_, _)) -> ()
  | _ -> Alcotest.fail "latch should end in a conditional branch");
  let g = Cfg.make f' in
  Alcotest.(check bool) "reducible" true (Loops.is_reducible g (Dom.compute g))

let test_loops_entry_jump () =
  (* for shape: jump over the body to the test at the bottom. *)
  let f =
    build
      [|
        (1, Test_flow.Jmp 2) (* entry jumps to the test *);
        (2, Test_flow.Fall) (* body *);
        (1, Test_flow.Br 1) (* bottom test, branch back to body *);
        (1, Test_flow.Return);
      |]
  in
  let f', changed = Replication.Loops_rep.run f in
  Check.assert_ok f';
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check int) "entry jump replaced" 0 (num_ujumps f');
  let g = Cfg.make f' in
  Alcotest.(check bool) "reducible" true (Loops.is_reducible g (Dom.compute g))

let test_loops_leaves_non_loop_jumps () =
  (* The if/else join jump is not a loop jump; LOOPS must not touch it. *)
  let f =
    build
      [| (1, Test_flow.Br 2); (2, Test_flow.Jmp 3); (2, Test_flow.Fall); (1, Test_flow.Return) |]
  in
  let _, changed = Replication.Loops_rep.run f in
  Alcotest.(check bool) "untouched" false changed

(* Replication must never break structural invariants on random graphs. *)
let prop_jumps_preserves_wellformedness =
  QCheck.Test.make ~name:"JUMPS keeps functions well-formed and reducible-checked"
    ~count:120 Test_flow.arb_shape (fun shape ->
      let f = build shape in
      (* Only run when the input is well-formed and reducible to begin
         with (the generator can produce branches to the entry etc.). *)
      QCheck.assume (Check.errors f = []);
      let g = Cfg.make f in
      let dom = Dom.compute g in
      QCheck.assume (Loops.is_reducible g dom);
      let f', _ = run_jumps f in
      Check.errors f' = []
      &&
      let g' = Cfg.make f' in
      Loops.is_reducible g' (Dom.compute g'))

let tests =
  ( "replication",
    [
      Alcotest.test_case "shortest path basics" `Quick test_shortest_path_basic;
      QCheck_alcotest.to_alcotest prop_dijkstra_agrees;
      QCheck_alcotest.to_alcotest prop_lazy_matches_oracle_on_gen_cfgs;
      QCheck_alcotest.to_alcotest prop_path_valid;
      Alcotest.test_case "jumps removes if/else jump" `Quick test_jumps_removes_simple_jump;
      Alcotest.test_case "jumps: Figure 1 loop completion" `Quick test_jumps_figure1;
      Alcotest.test_case "jumps: Figure 2 overlap repair" `Quick test_jumps_figure2_overlap_repair;
      Alcotest.test_case "jumps: reducibility rollback" `Quick test_jumps_rollback_on_irreducible;
      Alcotest.test_case "jumps: size cap" `Quick test_jumps_size_cap;
      Alcotest.test_case "jumps: max_rtls cap" `Quick test_jumps_max_rtls;
      Alcotest.test_case "jumps: infinite loop kept" `Quick test_jumps_infinite_loop_kept;
      Alcotest.test_case "jumps: indirect terminal (par.6)" `Quick test_jumps_indirect_terminal;
      Alcotest.test_case "loops: bottom jump" `Quick test_loops_bottom_jump;
      Alcotest.test_case "loops: entry jump" `Quick test_loops_entry_jump;
      Alcotest.test_case "loops: leaves non-loop jumps" `Quick test_loops_leaves_non_loop_jumps;
      QCheck_alcotest.to_alcotest prop_jumps_preserves_wellformedness;
    ] )
