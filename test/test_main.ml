let () =
  Alcotest.run "jumprep"
    [
      Test_arith.tests;
      Test_rtl.tests;
      Test_machine.tests;
      Test_frontend.tests;
      Test_flow.tests;
      Test_check.tests;
      Test_analysis.tests;
      Test_lint.tests;
      Test_replication.tests;
      Test_opt.tests;
      Test_tv.tests;
      Test_regalloc.tests;
      Test_encode.tests;
      Test_sim.tests;
      Test_icache.tests;
      Test_programs.tests;
      Test_paper_shapes.tests;
      Test_harness.tests;
      Test_telemetry.tests;
      Test_daemon.tests;
      Test_campaign.tests;
      Test_report.tests;
      Test_random_c.tests;
    ]
