(* Branch-displacement encoding (Ir.Encode / Opt.Displace): form
   boundaries under the pessimistic model, monotone safety of the
   committed plan over the whole corpus, and the plan's lifecycle as
   advisory function metadata. *)

open Ir

let l0 = Label.of_int 0

(* Solve a hand-built stream on the CISC model with a single label. *)
let solve_at code label_at =
  Encode.solve Machine.cisc (Array.of_list code)
    (Label.Map.singleton l0 label_at)

(* [k] Nops then a branch back to the top: displacement -2k. *)
let backward k =
  solve_at (List.init k (fun _ -> Rtl.Nop) @ [ Rtl.Branch (Rtl.Eq, l0) ]) 0

(* A jump over [n] Nops to the end: pessimistic displacement 6 + 2n
   (the span includes the transfer's own longest form). *)
let forward n = solve_at (Rtl.Jump l0 :: List.init n (fun _ -> Rtl.Nop)) (n + 1)

let form = Alcotest.testable (Fmt.of_to_string Encode.form_name) ( = )

let check_form name expected (p : Encode.plan) k =
  match p.forms.(k) with
  | Some f -> Alcotest.check form name expected f
  | None -> Alcotest.failf "%s: no form at index %d" name k

let test_backward_boundary () =
  (* disp -126 still fits the 8-bit form; -128 forces the word form. *)
  check_form "63 nops back is short" Encode.Short (backward 63) 63;
  check_form "64 nops back is word" Encode.Word (backward 64) 64;
  let p = backward 63 in
  Alcotest.(check int) "short saves two bytes" (p.fixed_total - 2) p.total;
  let p = backward 64 in
  Alcotest.(check int) "word is the legacy size" p.fixed_total p.total

let test_forward_boundary () =
  (* Forward spans are measured with the transfer at its own longest
     form: 60 Nops give pessimistic disp 126, 61 give 128. *)
  check_form "60 nops ahead is short" Encode.Short (forward 60) 0;
  check_form "61 nops ahead is word" Encode.Word (forward 61) 0

let test_long_boundary () =
  (* -2k past -32767 needs the 32-bit form. *)
  check_form "16383 nops back is word" Encode.Word (backward 16383) 16383;
  check_form "16384 nops back is long" Encode.Long (backward 16384) 16384;
  let p = backward 16384 in
  Alcotest.(check int) "long costs two extra bytes" (p.fixed_total + 2) p.total;
  Alcotest.(check int) "counted as long" 1 p.longs

let test_dangling_label_is_word () =
  (* A target outside the map keeps the fixed encoding. *)
  let p =
    Encode.solve Machine.cisc
      [| Rtl.Nop; Rtl.Jump (Label.of_int 9) |]
      Label.Map.empty
  in
  check_form "dangling is word" Encode.Word p 1;
  Alcotest.(check int) "no size change" p.fixed_total p.total

let test_sizes_and_counts_consistent () =
  let p = backward 63 in
  Alcotest.(check int) "length" 64 (Encode.length p);
  Alcotest.(check int) "total is the size sum"
    (Array.fold_left ( + ) 0 (Encode.sizes p))
    p.total;
  Alcotest.(check int) "one eligible transfer" 1 (p.shorts + p.words + p.longs)

let test_matches_rejects_reshaped_code () =
  let code = [| Rtl.Nop; Rtl.Branch (Rtl.Eq, l0) |] in
  let p = Encode.solve Machine.cisc code (Label.Map.singleton l0 0) in
  Alcotest.(check bool) "matches its own code" true (Encode.matches p code);
  Alcotest.(check bool) "rejects a different length" false
    (Encode.matches p [| Rtl.Nop |]);
  Alcotest.(check bool) "rejects moved transfers" false
    (Encode.matches p [| Rtl.Branch (Rtl.Eq, l0); Rtl.Nop |])

(* --- monotone safety over the corpus ---

   The solver promises that committing smaller forms never invalidates a
   choice: every chosen form must still cover the displacement computed
   from the FINAL addresses.  Check that promise on every function of
   every corpus program at every level. *)

let fits disp = function
  | Encode.Short -> disp >= -127 && disp <= 127
  | Encode.Word -> disp >= -32767 && disp <= 32767
  | Encode.Long -> true

let test_monotone_safety_on_corpus () =
  let machine = Machine.cisc in
  List.iter
    (fun level ->
      List.iter
        (fun (b : Programs.Suite.benchmark) ->
          let prog =
            Opt.Driver.compile
              { Opt.Driver.default_options with level }
              machine b.source
          in
          List.iter
            (fun f ->
              let code, label_pos = Sim.Asm.linearize f in
              let p = Encode.solve machine code label_pos in
              let n = Array.length code in
              let final = Array.make (n + 1) 0 in
              for k = 0 to n - 1 do
                final.(k + 1) <- final.(k) + p.Encode.sizes.(k)
              done;
              Array.iteri
                (fun k fo ->
                  match fo with
                  | None -> ()
                  | Some fm ->
                    let t =
                      match code.(k) with
                      | Rtl.Branch (_, l) | Rtl.Jump l ->
                        Label.Map.find_opt l label_pos
                      | _ -> None
                    in
                    (match t with
                    | None -> ()
                    | Some t ->
                      let disp = final.(t) - final.(k) in
                      if not (fits disp fm) then
                        Alcotest.failf
                          "%s/%s %s: index %d form %s does not cover final \
                           disp %d"
                          b.name (Flow.Func.name f)
                          (Opt.Driver.level_name level)
                          k (Encode.form_name fm) disp))
                p.Encode.forms)
            prog.Flow.Prog.funcs)
        Programs.Suite.all)
    [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ]

let test_corpus_shrinks () =
  (* The acceptance bar: at JUMPS on CISC, displacement must shrink the
     static code of at least half the corpus, and may never grow it. *)
  let machine = Machine.cisc in
  let shrunk, grew, total =
    List.fold_left
      (fun (s, g, n) (b : Programs.Suite.benchmark) ->
        let prog =
          Opt.Driver.compile
            { Opt.Driver.default_options with level = Jumps }
            machine b.source
        in
        let planned, fixed =
          List.fold_left
            (fun (p, f) func ->
              match Flow.Func.encoding func with
              | Some plan -> (p + plan.Encode.total, f + plan.Encode.fixed_total)
              | None -> (p, f))
            (0, 0) prog.Flow.Prog.funcs
        in
        ((if planned < fixed then s + 1 else s),
         (if planned > fixed then g + 1 else g),
         n + 1))
      (0, 0, 0) Programs.Suite.all
  in
  Alcotest.(check int) "never grows a program" 0 grew;
  Alcotest.(check bool)
    (Printf.sprintf "shrinks at least half the corpus (%d of %d)" shrunk total)
    true
    (shrunk * 2 >= total)

(* --- plan lifecycle --- *)

let compile_func machine =
  let prog =
    Opt.Driver.compile
      { Opt.Driver.default_options with level = Jumps }
      machine "int main() { int i; for (i = 0; i < 3; i++) putchar('a' + i); return 0; }"
  in
  List.hd prog.Flow.Prog.funcs

let test_with_blocks_drops_plan () =
  let f = compile_func Machine.cisc in
  Alcotest.(check bool) "cisc compile attaches a plan" true
    (Flow.Func.encoding f <> None);
  let f' = Flow.Func.with_blocks f (Flow.Func.blocks f) in
  Alcotest.(check bool) "with_blocks drops it" true
    (Flow.Func.encoding f' = None)

let test_displace_noop_on_risc () =
  let f = compile_func Machine.risc in
  Alcotest.(check bool) "risc compile attaches no plan" true
    (Flow.Func.encoding f = None);
  let f' = Flow.Func.set_encoding f None in
  let f'', changed = Opt.Displace.run Machine.risc f' in
  Alcotest.(check bool) "risc run reports no change" false changed;
  Alcotest.(check bool) "risc run attaches no plan" true
    (Flow.Func.encoding f'' = None)

let test_displace_run_on_cisc () =
  let f = compile_func Machine.cisc in
  let bare = Flow.Func.set_encoding f None in
  let f', changed = Opt.Displace.run Machine.cisc bare in
  match Flow.Func.encoding f' with
  | None -> Alcotest.fail "cisc run must attach a plan"
  | Some p ->
    Alcotest.(check bool) "changed iff total differs" changed
      (p.Encode.total <> p.Encode.fixed_total);
    let code, _ = Sim.Asm.linearize f' in
    Alcotest.(check bool) "plan matches the linearized code" true
      (Encode.matches p code)

let tests =
  ( "encode",
    [
      Alcotest.test_case "backward short/word boundary" `Quick
        test_backward_boundary;
      Alcotest.test_case "forward short/word boundary" `Quick
        test_forward_boundary;
      Alcotest.test_case "word/long boundary" `Quick test_long_boundary;
      Alcotest.test_case "dangling label keeps fixed form" `Quick
        test_dangling_label_is_word;
      Alcotest.test_case "sizes and counts consistent" `Quick
        test_sizes_and_counts_consistent;
      Alcotest.test_case "matches rejects reshaped code" `Quick
        test_matches_rejects_reshaped_code;
      Alcotest.test_case "monotone safety on corpus" `Slow
        test_monotone_safety_on_corpus;
      Alcotest.test_case "shrinks half the corpus at JUMPS" `Quick
        test_corpus_shrinks;
      Alcotest.test_case "with_blocks drops the plan" `Quick
        test_with_blocks_drops_plan;
      Alcotest.test_case "displace is a no-op on risc" `Quick
        test_displace_noop_on_risc;
      Alcotest.test_case "displace attaches a matching plan" `Quick
        test_displace_run_on_cisc;
    ] )
