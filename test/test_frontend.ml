(* Lexer, parser, and code generator tests. *)

open Frontend

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 6
    (List.length (toks "int x = 42 ;"));
  (match toks "0x1F 'a' '\\n' \"hi\\t\"" with
  | [ Int_lit 31; Int_lit 97; Int_lit 10; Str_lit "hi\t"; Eof ] -> ()
  | _ -> Alcotest.fail "literal lexing");
  (match toks "a /* comment */ b // line\nc" with
  | [ Ident "a"; Ident "b"; Ident "c"; Eof ] -> ()
  | _ -> Alcotest.fail "comment skipping");
  (match toks "<<= >>" with
  | [ Shl; Assign; Shr; Eof ] -> ()
  | _ -> Alcotest.fail "maximal munch")

let test_lexer_errors () =
  let expect_error src =
    match Lexer.tokenize src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("lexer accepted " ^ src)
  in
  expect_error "\"unterminated";
  expect_error "'a";
  expect_error "/* unterminated";
  expect_error "@"

let test_parser_precedence () =
  let open Ast in
  (match Parser.parse_expr "1 + 2 * 3" with
  | Binary (Add, Int_lit 1, Binary (Mul, Int_lit 2, Int_lit 3)) -> ()
  | _ -> Alcotest.fail "mul binds tighter");
  (match Parser.parse_expr "a = b = 3" with
  | Assign (None, Var "a", Assign (None, Var "b", Int_lit 3)) -> ()
  | _ -> Alcotest.fail "assignment right-assoc");
  (match Parser.parse_expr "1 - 2 - 3" with
  | Binary (Sub, Binary (Sub, Int_lit 1, Int_lit 2), Int_lit 3) -> ()
  | _ -> Alcotest.fail "sub left-assoc");
  (match Parser.parse_expr "a && b || c" with
  | Binary (Lor, Binary (Land, _, _), _) -> ()
  | _ -> Alcotest.fail "and binds tighter than or");
  (match Parser.parse_expr "x < 1 + 2" with
  | Binary (Lt, Var "x", Binary (Add, _, _)) -> ()
  | _ -> Alcotest.fail "arith binds tighter than cmp");
  (match Parser.parse_expr "-x[1]" with
  | Unary (Neg, Index (Var "x", Int_lit 1)) -> ()
  | _ -> Alcotest.fail "postfix binds tighter than unary");
  (match Parser.parse_expr "c ? a : b ? x : y" with
  | Ternary (Var "c", Var "a", Ternary (Var "b", Var "x", Var "y")) -> ()
  | _ -> Alcotest.fail "ternary right-assoc");
  (match Parser.parse_expr "*p++" with
  | Unary (Deref, Incdec { pre = false; inc = true; lhs = Var "p" }) -> ()
  | _ -> Alcotest.fail "*p++ parses as *(p++)")

let test_parser_decls () =
  let open Ast in
  match Parser.parse_program "int a[3][4], b; char *s; void f(int x) { }" with
  | [ Iglobals [ ga; gb ]; Iglobals [ gs ]; Ifunc f ] ->
    Alcotest.(check string) "a" "a" ga.gname;
    Alcotest.(check bool) "a type" true (ga.gty = Tarr (Tarr (Tint, 4), 3));
    Alcotest.(check string) "b" "b" gb.gname;
    Alcotest.(check bool) "s type" true (gs.gty = Tptr Tchar);
    Alcotest.(check string) "f" "f" f.fname;
    Alcotest.(check bool) "param" true (f.fparams = [ (Tint, "x") ])
  | _ -> Alcotest.fail "top-level parse shape"

let test_parser_errors () =
  let expect_error src =
    match Parser.parse_program src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail ("parser accepted " ^ src)
  in
  expect_error "int main() { return }";
  expect_error "int main() { if (1 { } }";
  expect_error "int main() { x = ; }";
  expect_error "int 3x;";
  expect_error "int main() { break }"

(* --- Code shapes the replication experiment depends on (VPCC-like) --- *)

let func_of src name =
  let prog = Codegen.compile_source src in
  Option.get (Flow.Prog.find_func prog name)

let count_jumps f =
  Array.fold_left
    (fun n (b : Flow.Func.block) ->
      n
      + List.length
          (List.filter (function Ir.Rtl.Jump _ -> true | _ -> false) b.instrs))
    0 (Flow.Func.blocks f)

let test_while_shape () =
  (* while: test at top, unconditional jump at the bottom (plus the shared
     return-epilogue jump pattern giving returns their jump). *)
  let f = func_of "int main() { int i; i = 0; while (i < 10) i = i + 1; return i; }" "main" in
  Alcotest.(check bool) "has a bottom jump" true (count_jumps f >= 2)

let test_for_shape () =
  (* for: unconditional jump over the body to the test at the end. *)
  let f = func_of "int main() { int i, s; s = 0; for (i = 0; i < 3; i = i + 1) s = s + i; return s; }" "main" in
  let blocks = Flow.Func.blocks f in
  (* The entry block's successor chain must contain a Jump before any
     Branch: the jump to the test. *)
  let rec first_transfer i =
    if i >= Array.length blocks then None
    else
      match Flow.Func.terminator blocks.(i) with
      | Some t -> Some t
      | None -> first_transfer (i + 1)
  in
  (match first_transfer 0 with
  | Some (Ir.Rtl.Jump _) -> ()
  | _ -> Alcotest.fail "for loop should start with a jump to its test");
  Alcotest.(check bool) "well-formed" true (Flow.Check.errors f = [])

let test_if_else_shape () =
  let f =
    func_of "int main(){int i,n;i=7;n=2;if(i>5)i=i/n;else i=i*n;return i;}" "main"
  in
  Alcotest.(check bool) "jump over else exists" true (count_jumps f >= 1);
  Alcotest.(check bool) "well-formed" true (Flow.Check.errors f = [])

let test_codegen_errors () =
  let expect_error src =
    match Codegen.compile_source src with
    | exception Codegen.Error _ -> ()
    | _ -> Alcotest.fail ("codegen accepted " ^ src)
  in
  expect_error "int main() { return x; }";
  expect_error "int main() { foo(); }";
  expect_error "int f(int a) { return a; } int main() { return f(); }";
  expect_error "int main() { 3 = 4; }";
  expect_error "int main() { goto nowhere; }";
  expect_error "int f() { return 0; } int f() { return 1; } int main() { return 0; }";
  expect_error "int x; int x; int main() { return 0; }";
  expect_error "void f(int a, int b, int c, int d, int e, int f2, int g) { } int main() { return 0; }";
  expect_error "int g() { return 1; }" (* no main *)

let test_goto_labels () =
  let out, code =
    Helpers.run
      {|
int main() {
  int i;
  i = 0;
again:
  i = i + 1;
  if (i < 5) goto again;
  return i;
}
|}
  in
  Alcotest.(check string) "no output" "" out;
  Alcotest.(check int) "loop via goto" 5 code

let tests =
  ( "frontend",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
      Alcotest.test_case "parser declarations" `Quick test_parser_decls;
      Alcotest.test_case "parser errors" `Quick test_parser_errors;
      Alcotest.test_case "while shape" `Quick test_while_shape;
      Alcotest.test_case "for shape" `Quick test_for_shape;
      Alcotest.test_case "if/else shape" `Quick test_if_else_shape;
      Alcotest.test_case "codegen errors" `Quick test_codegen_errors;
      Alcotest.test_case "goto" `Quick test_goto_labels;
    ] )
