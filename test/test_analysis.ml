(* The generic dataflow framework and its analysis instances. *)

open Ir
open Flow

(* --- the solver itself --- *)

module Bits = Analysis.Dataflow.Solver (struct
  type t = int

  let equal = Int.equal
  let join = ( lor )
end)

(* A diamond over bit-set facts: each node contributes its own bit; the
   join must accumulate both arms. *)
let test_solver_diamond () =
  let g =
    {
      Analysis.Dataflow.nodes = 4;
      succs = (function 0 -> [ 1; 2 ] | 1 | 2 -> [ 3 ] | _ -> []);
      preds = (function 1 | 2 -> [ 0 ] | 3 -> [ 1; 2 ] | _ -> []);
      rpo = [| 0; 1; 2; 3 |];
    }
  in
  let r =
    Bits.solve ~direction:Analysis.Dataflow.Forward ~graph:g ~empty:0
      ~init:(fun _ -> 0)
      ~transfer:(fun i fact -> fact lor (1 lsl i))
      ()
  in
  Alcotest.(check int) "entry input" 0 r.Bits.input.(0);
  Alcotest.(check int) "join input" 0b0111 r.Bits.input.(3);
  Alcotest.(check int) "join output" 0b1111 r.Bits.output.(3);
  Alcotest.(check bool) "visited each node" true (r.Bits.stats.visits >= 4)

(* A non-monotone transfer function on a cycle never reaches a fixpoint;
   the visit budget must turn that into the Diverged diagnostic. *)
let test_solver_diverges () =
  let g =
    {
      Analysis.Dataflow.nodes = 2;
      succs = (function 0 -> [ 1 ] | _ -> [ 0 ]);
      preds = (function 0 -> [ 1 ] | _ -> [ 0 ]);
      rpo = [| 0; 1 |];
    }
  in
  Alcotest.check_raises "diverges"
    (Analysis.Dataflow.Diverged
       "no fixpoint after 33 node visits (2 nodes); transfer function is \
        not monotone or the lattice has unbounded height")
    (fun () ->
      ignore
        (Bits.solve ~max_visits:32 ~direction:Analysis.Dataflow.Forward
           ~graph:g ~empty:0
           ~init:(fun _ -> 0)
           ~transfer:(fun _ fact -> fact + 1)
           ()))

let test_restrict () =
  let g =
    {
      Analysis.Dataflow.nodes = 3;
      succs = (function 0 -> [ 1; 2 ] | 1 -> [ 2 ] | _ -> []);
      preds = (function 1 -> [ 0 ] | 2 -> [ 0; 1 ] | _ -> []);
      rpo = [| 0; 1; 2 |];
    }
  in
  let r = Analysis.Dataflow.restrict g ~keep:(fun i -> i <> 1) in
  Alcotest.(check (list int)) "succs skip dropped node" [ 2 ] (r.succs 0);
  Alcotest.(check (list int)) "dropped node isolated" [] (r.succs 1);
  Alcotest.(check (list int)) "preds skip dropped node" [ 0 ] (r.preds 2)

(* --- the per-function cache --- *)

let test_cache () =
  let cache = Analysis.Cache.create ~size:2 () in
  let calls = ref 0 in
  let compute k =
    incr calls;
    String.length k
  in
  let a = "aa" and b = "bbb" and c = "cccc" in
  Alcotest.(check int) "computed" 2 (Analysis.Cache.find cache a compute);
  Alcotest.(check int) "cached" 2 (Analysis.Cache.find cache a compute);
  Alcotest.(check int) "one compute" 1 !calls;
  ignore (Analysis.Cache.find cache b compute);
  ignore (Analysis.Cache.find cache c compute);
  (* Capacity 2: inserting [c] evicted [a]. *)
  ignore (Analysis.Cache.find cache a compute);
  Alcotest.(check int) "recomputed after eviction" 4 !calls

(* --- analyses over real functions --- *)

let instrs_of func =
  Array.map (fun (b : Func.block) -> b.instrs) (Func.blocks func)

(* The diamond from Test_flow: 0 -> {1, 2} -> 3; pads define v0 in block 0,
   v100 in block 1, v200 in block 2; the branch compares v999 (undefined). *)
let test_reaching_diamond () =
  let f = Test_flow.diamond () in
  let cfg = Cfg.make f in
  let r =
    Analysis.Reaching.solve ~graph:(Cfg.graph cfg) ~instrs:(instrs_of f) ()
  in
  let must = r.Analysis.Reaching.must_defined_in in
  Alcotest.(check bool) "entry def on every path to the join" true
    (Reg.Set.mem (Reg.Virt 0) must.(3));
  Alcotest.(check bool) "arm def not on every path" false
    (Reg.Set.mem (Reg.Virt 100) must.(3));
  let reaches reg b =
    Analysis.Reaching.Int_set.exists
      (fun sid -> Reg.equal r.Analysis.Reaching.sites.(sid).reg reg)
      r.Analysis.Reaching.reach_in.(b)
  in
  Alcotest.(check bool) "arm def may reach the join" true
    (reaches (Reg.Virt 100) 3);
  Alcotest.(check bool) "other arm too" true (reaches (Reg.Virt 200) 3);
  Alcotest.(check bool) "entry sees no defs" false (reaches (Reg.Virt 0) 0);
  match
    Analysis.Reaching.uninitialized_uses r ~instrs:(instrs_of f)
      ~keep:Reg.is_virt
      ~reachable:(fun _ -> true)
  with
  | [ (0, 2, reg) ] ->
    Alcotest.(check bool) "the undefined branch operand" true
      (Reg.equal reg (Reg.Virt 999))
  | uses ->
    Alcotest.fail
      (Printf.sprintf "expected exactly the v999 use, got %d findings"
         (List.length uses))

(* A custom function builder with explicit instruction lists. *)
let func_of mks =
  let lsupply = Label.Supply.create () in
  let vsupply = Reg.Supply.create () in
  let labels =
    Array.init (Array.length mks) (fun _ -> Label.Supply.fresh lsupply)
  in
  let blocks =
    Array.mapi
      (fun i mk -> { Func.label = labels.(i); instrs = mk labels })
      mks
  in
  Func.make ~name:"t" ~blocks ~lsupply ~vsupply

let v n = Reg.Virt n
let add d a b = Rtl.Binop (Rtl.Add, Lreg (v d), Reg (v a), Reg (v b))

(* v2 := v1+v1 computed on both arms of a diamond: available at the join;
   killed when an arm redefines v1. *)
let test_avail_join () =
  let f =
    func_of
      [|
        (fun ls ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 1), Imm 7);
            add 2 1 1;
            Rtl.Cmp (Reg (v 2), Imm 0);
            Rtl.Branch (Rtl.Ne, ls.(2));
          ]);
        (fun ls -> [ add 3 1 1; Rtl.Jump ls.(3) ]);
        (fun _ -> [ add 4 1 1 ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      |]
  in
  let g = Cfg.graph (Cfg.make f) in
  let a = Analysis.Avail.solve ~graph:g ~instrs:(instrs_of f) () in
  let has_add b =
    Analysis.Avail.Key_set.exists
      (function
        | Analysis.Avail.Kbinop (Rtl.Add, Rtl.Reg r1, Rtl.Reg r2) ->
          Reg.equal r1 (v 1) && Reg.equal r2 (v 1)
        | _ -> false)
      a.Analysis.Avail.avail_in.(b)
  in
  Alcotest.(check bool) "not available at the entry" false (has_add 0);
  Alcotest.(check bool) "available on the fall arm" true (has_add 1);
  Alcotest.(check bool) "available at the join" true (has_add 3);
  (* Redefine v1 on one arm: the expression dies at the join. *)
  let f' =
    func_of
      [|
        (fun ls ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 1), Imm 7);
            add 2 1 1;
            Rtl.Cmp (Reg (v 2), Imm 0);
            Rtl.Branch (Rtl.Ne, ls.(2));
          ]);
        (fun ls -> [ Rtl.Move (Lreg (v 1), Imm 9); Rtl.Jump ls.(3) ]);
        (fun _ -> [ add 4 1 1 ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      |]
  in
  let a' =
    Analysis.Avail.solve
      ~graph:(Cfg.graph (Cfg.make f'))
      ~instrs:(instrs_of f') ()
  in
  let has_add' b =
    Analysis.Avail.Key_set.exists
      (function
        | Analysis.Avail.Kbinop (Rtl.Add, _, _) -> true
        | _ -> false)
      a'.Analysis.Avail.avail_in.(b)
  in
  Alcotest.(check bool) "killed by the redefinition" false (has_add' 3)

(* Constants agreeing at a join survive; disagreeing ones are dropped. *)
let test_copyconst_join () =
  let f =
    func_of
      [|
        (fun ls ->
          [
            Rtl.Enter 8;
            Rtl.Move (Lreg (v 9), Imm 0);
            Rtl.Cmp (Reg (v 9), Imm 0);
            Rtl.Branch (Rtl.Ne, ls.(2));
          ]);
        (fun ls ->
          [
            Rtl.Move (Lreg (v 1), Imm 4);
            Rtl.Move (Lreg (v 2), Imm 5);
            Rtl.Jump ls.(3);
          ]);
        (fun _ ->
          [ Rtl.Move (Lreg (v 1), Imm 4); Rtl.Move (Lreg (v 2), Imm 6) ]);
        (fun _ -> [ Rtl.Leave; Rtl.Ret ]);
      |]
  in
  let c =
    Analysis.Copyconst.solve
      ~graph:(Cfg.graph (Cfg.make f))
      ~instrs:(instrs_of f) ()
  in
  let at3 = c.Analysis.Copyconst.fact_in.(3) in
  Alcotest.(check bool) "join reached" true (Analysis.Copyconst.reached at3);
  Alcotest.(check (option int)) "agreeing constant survives" (Some 4)
    (Analysis.Copyconst.operand_const at3 (Rtl.Reg (v 1)));
  Alcotest.(check (option int)) "disagreeing constant dropped" None
    (Analysis.Copyconst.operand_const at3 (Rtl.Reg (v 2)));
  Alcotest.(check (option int)) "copy chains resolve" (Some 0)
    (Analysis.Copyconst.operand_const
       (Analysis.Copyconst.step
          (Rtl.Move (Lreg (v 3), Reg (v 9)))
          c.Analysis.Copyconst.fact_in.(1))
       (Rtl.Reg (v 3)))

(* --- framework liveness == the naive reference solver --- *)

(* The pre-framework implementation, kept as an executable specification. *)
let naive_liveness func =
  let g = Cfg.make func in
  let n = Func.num_blocks func in
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Reg.Set.union acc live_in.(s))
          Reg.Set.empty (Cfg.succs g i)
      in
      let inn = List.fold_right Liveness.step (Func.block func i).instrs out in
      if
        (not (Reg.Set.equal out live_out.(i)))
        || not (Reg.Set.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

let check_liveness_agrees func =
  let live = Liveness.compute func in
  let ref_in, ref_out = naive_liveness func in
  Array.iteri
    (fun i expected ->
      if
        (not (Reg.Set.equal expected (Liveness.live_in live i)))
        || not (Reg.Set.equal ref_out.(i) (Liveness.live_out live i))
      then
        QCheck.Test.fail_reportf
          "liveness mismatch in %s block %d:\n  reference in  {%s}\n  \
           framework in  {%s}"
          (Func.name func) i
          (String.concat ","
             (List.map Reg.to_string (Reg.Set.elements expected)))
          (String.concat ","
             (List.map Reg.to_string
                (Reg.Set.elements (Liveness.live_in live i)))))
    ref_in;
  true

let arb_program =
  QCheck.make ~print:Harness.Gen.to_c
    ~shrink:(fun p yield -> Seq.iter yield (Harness.Gen.shrink p))
    Harness.Gen.generate

let prop_liveness_equivalent =
  QCheck.Test.make ~name:"framework liveness matches the reference solver"
    ~count:40 arb_program (fun p ->
      let src = Harness.Gen.to_c p in
      (* Fresh codegen output and the optimized (still virtual) form. *)
      let raw = Frontend.Codegen.compile_source src in
      let opt =
        Opt.Driver.compile
          { Opt.Driver.default_options with allocate = false }
          Ir.Machine.risc src
      in
      List.for_all check_liveness_agrees raw.Prog.funcs
      && List.for_all check_liveness_agrees opt.Prog.funcs)

(* The indexed kill query is a performance rewrite of the reference
   full-scan definition; pin their equality on every instruction of real
   compiled functions. *)
let test_kills_matches_killed_by () =
  List.iter
    (fun name ->
      let b = Option.get (Programs.Suite.find name) in
      let prog =
        Opt.Driver.compile
          { Opt.Driver.default_options with level = Opt.Driver.Jumps }
          Machine.cisc b.source
      in
      List.iter
        (fun f ->
          let a =
            Analysis.Avail.solve
              ~graph:(Cfg.graph (Cfg.make f))
              ~instrs:(instrs_of f) ()
          in
          Array.iter
            (fun (blk : Func.block) ->
              List.iter
                (fun i ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s/%s: kills = killed_by" name
                       (Func.name f))
                    true
                    (Analysis.Avail.Key_set.equal
                       (Analysis.Avail.kills a.Analysis.Avail.index i)
                       (Analysis.Avail.killed_by a.Analysis.Avail.universe i)))
                blk.instrs)
            (Func.blocks f))
        prog.Prog.funcs)
    [ "wc"; "queens"; "matmult"; "nbody" ]

let tests =
  ( "analysis",
    [
      Alcotest.test_case "solver: forward diamond" `Quick test_solver_diamond;
      Alcotest.test_case "solver: divergence diagnostic" `Quick
        test_solver_diverges;
      Alcotest.test_case "solver: graph restriction" `Quick test_restrict;
      Alcotest.test_case "fact cache" `Quick test_cache;
      Alcotest.test_case "reaching definitions on a diamond" `Quick
        test_reaching_diamond;
      Alcotest.test_case "available expressions at a join" `Quick
        test_avail_join;
      Alcotest.test_case "copy/constant facts at a join" `Quick
        test_copyconst_join;
      Alcotest.test_case "indexed kills equal reference killed_by" `Quick
        test_kills_matches_killed_by;
      QCheck_alcotest.to_alcotest prop_liveness_equivalent;
    ] )
