(* Offline reporting over the bench sweep's machine-readable outputs.

   Everything here is IO-free: [parse_results] takes the *contents* of a
   BENCH_results.json document, the renderers return strings, and
   [dat_files] returns (filename, contents) pairs — the jumprepc [report]
   subcommand owns the file handling.  The table shapes and the arithmetic
   (mean of per-program percentage changes vs SIMPLE, miss-ratio deltas in
   percentage points) are exactly those of Harness.Tables / the paper's
   Tables 4-6, so a report regenerated from the JSON alone reproduces the
   EXPERIMENTS.md numbers. *)

module Json = Telemetry.Json

type cache_row = {
  cr_config : string;
  cr_size_kb : int;
  cr_assoc : int;
  cr_ctx : bool;
  cr_miss : float;
  cr_fetch : int;
}

type row = {
  program : string;
  level : string;
  machine : string;
  static_instrs : int;
  static_ujumps : int;
  static_nops : int;
  code_bytes : int;
  dyn_instrs : int;
  dyn_ujumps : int;
  dyn_nops : int;
  dyn_transfers : int;
  ibb : float;
  output_ok : bool;
  timed_out : bool;
  caches : cache_row list;
}

type doc = { rows : row list; counters : (string * int) list }

(* --- parsing --- *)

exception Bad of string

let get name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing or mistyped field %S" name))

let cache_of_json j =
  {
    cr_config = get "config" Json.get_string j;
    cr_size_kb = get "size_kb" Json.get_int j;
    cr_assoc = get "assoc" Json.get_int j;
    cr_ctx = get "context_switches" Json.get_bool j;
    cr_miss = get "miss_ratio" Json.get_float j;
    cr_fetch = get "fetch_cost" Json.get_int j;
  }

let row_of_json j =
  {
    program = get "program" Json.get_string j;
    level = get "level" Json.get_string j;
    machine = get "machine" Json.get_string j;
    static_instrs = get "static_instrs" Json.get_int j;
    static_ujumps = get "static_ujumps" Json.get_int j;
    static_nops = get "static_nops" Json.get_int j;
    (* Absent in pre-displacement documents: comparisons against an old
       sweep must still parse, so fall back to 0 (sections that need
       code size skip rows without it). *)
    code_bytes =
      Option.value ~default:0
        (Option.bind (Json.member "code_bytes" j) Json.get_int);
    dyn_instrs = get "dyn_instrs" Json.get_int j;
    dyn_ujumps = get "dyn_ujumps" Json.get_int j;
    dyn_nops = get "dyn_nops" Json.get_int j;
    dyn_transfers = get "dyn_transfers" Json.get_int j;
    ibb = get "instrs_between_branches" Json.get_float j;
    output_ok = get "output_ok" Json.get_bool j;
    timed_out = get "timed_out" Json.get_bool j;
    caches = List.map cache_of_json (get "caches" Json.to_list j);
  }

let parse_results contents =
  match Json.parse contents with
  | Error e -> Error (Printf.sprintf "invalid JSON: %s" e)
  | Ok j -> (
    try
      let rows =
        match Option.bind (Json.member "results" j) Json.to_list with
        | Some l -> List.map row_of_json l
        | None -> raise (Bad "missing \"results\" array")
      in
      let counters =
        match Json.member "counters" j with
        | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.get_int v))
            kvs
        | _ -> []
      in
      Ok { rows; counters }
    with Bad m -> Error m)

(* --- aggregation (Harness.Tables arithmetic, over parsed rows) --- *)

let levels = [ "SIMPLE"; "LOOPS"; "JUMPS" ]

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let change now base =
  100.0 *. (float_of_int now -. float_of_int base) /. float_of_int (max 1 base)

let pct a b = 100.0 *. float_of_int a /. float_of_int (max 1 b)

(* First-appearance order, so reports list machines/programs the way the
   sweep emitted them (suite order). *)
let distinct key rows =
  List.rev
    (List.fold_left
       (fun acc r ->
         let k = key r in
         if List.mem k acc then acc else k :: acc)
       [] rows)

let machines doc = distinct (fun r -> r.machine) doc.rows
let programs doc = distinct (fun r -> r.program) doc.rows

let find doc ~program ~level ~machine =
  List.find_opt
    (fun r -> r.program = program && r.level = level && r.machine = machine)
    doc.rows

(* Programs measured at all three levels on [machine] — a task that
   failed under chaos drops out of every per-program comparison rather
   than skewing it. *)
let complete_programs doc machine =
  List.filter
    (fun p ->
      List.for_all
        (fun level -> find doc ~program:p ~level ~machine <> None)
        levels)
    (programs doc)

let triple doc ~program ~machine =
  match
    ( find doc ~program ~level:"SIMPLE" ~machine,
      find doc ~program ~level:"LOOPS" ~machine,
      find doc ~program ~level:"JUMPS" ~machine )
  with
  | Some s, Some l, Some j -> Some (s, l, j)
  | _ -> None

let cache doc ~program ~level ~machine ~kb ~ctx =
  Option.bind (find doc ~program ~level ~machine) (fun r ->
      List.find_opt (fun c -> c.cr_size_kb = kb && c.cr_ctx = ctx) r.caches)

let cache_sizes doc =
  match doc.rows with
  | [] -> []
  | r :: _ ->
    List.sort_uniq compare (List.map (fun c -> c.cr_size_kb) r.caches)

(* --- markdown rendering --- *)

let buf_table b header rows =
  let line cells = Buffer.add_string b ("| " ^ String.concat " | " cells ^ " |\n") in
  line header;
  line (List.map (fun _ -> "---") header);
  List.iter line rows;
  Buffer.add_char b '\n'

let signed v = Printf.sprintf "%+.2f%%" v

(* Table 5 shape: per-program percentage changes vs SIMPLE and their mean. *)
let static_dynamic_section b doc =
  Buffer.add_string b "## Static and dynamic instructions (Table 5 shape)\n\n";
  Buffer.add_string b
    "Per-program percentage change vs SIMPLE; the mean row averages the \
     per-program changes (the paper's method).\n\n";
  List.iter
    (fun machine ->
      Buffer.add_string b (Printf.sprintf "### %s\n\n" machine);
      let progs = complete_programs doc machine in
      let rows =
        List.filter_map
          (fun p ->
            Option.map
              (fun (s, l, j) ->
                [
                  p;
                  string_of_int s.static_instrs;
                  signed (change l.static_instrs s.static_instrs);
                  signed (change j.static_instrs s.static_instrs);
                  string_of_int s.dyn_instrs;
                  signed (change l.dyn_instrs s.dyn_instrs);
                  signed (change j.dyn_instrs s.dyn_instrs);
                ])
              (triple doc ~program:p ~machine))
          progs
      in
      let avg f =
        mean
          (List.filter_map
             (fun p -> Option.map f (triple doc ~program:p ~machine))
             progs)
      in
      let mean_row =
        [
          "**mean**";
          "";
          signed (avg (fun (s, l, _) -> change l.static_instrs s.static_instrs));
          signed (avg (fun (s, _, j) -> change j.static_instrs s.static_instrs));
          "";
          signed (avg (fun (s, l, _) -> change l.dyn_instrs s.dyn_instrs));
          signed (avg (fun (s, _, j) -> change j.dyn_instrs s.dyn_instrs));
        ]
      in
      buf_table b
        [
          "program"; "static SIMPLE"; "LOOPS"; "JUMPS"; "dynamic SIMPLE";
          "LOOPS"; "JUMPS";
        ]
        (rows @ [ mean_row ]))
    (machines doc)

(* Static code size in bytes.  On RISC this is 4x the static instruction
   count; on CISC it reflects the variable-length encodings, including
   the branch-displacement plans, so the column moves when displacement
   selection shortens branches. *)
let code_size_section b doc =
  let have_bytes = List.for_all (fun r -> r.code_bytes > 0) doc.rows in
  if have_bytes then begin
    Buffer.add_string b "## Static code size (bytes)\n\n";
    Buffer.add_string b
      "Per-program percentage change vs SIMPLE.  CISC sizes use the \
       variable-length encoding model with branch-displacement selection; \
       RISC instructions are fixed at four bytes.\n\n";
    List.iter
      (fun machine ->
        Buffer.add_string b (Printf.sprintf "### %s\n\n" machine);
        let progs = complete_programs doc machine in
        let rows =
          List.filter_map
            (fun p ->
              Option.map
                (fun (s, l, j) ->
                  [
                    p;
                    string_of_int s.code_bytes;
                    signed (change l.code_bytes s.code_bytes);
                    signed (change j.code_bytes s.code_bytes);
                  ])
                (triple doc ~program:p ~machine))
            progs
        in
        let avg f =
          mean
            (List.filter_map
               (fun p -> Option.map f (triple doc ~program:p ~machine))
               progs)
        in
        let mean_row =
          [
            "**mean**";
            "";
            signed (avg (fun (s, l, _) -> change l.code_bytes s.code_bytes));
            signed (avg (fun (s, _, j) -> change j.code_bytes s.code_bytes));
          ]
        in
        buf_table b
          [ "program"; "bytes SIMPLE"; "LOOPS"; "JUMPS" ]
          (rows @ [ mean_row ]))
      (machines doc)
  end

(* Table 4 shape: average percent of instructions that are unconditional
   jumps. *)
let ujumps_section b doc =
  Buffer.add_string b "## Unconditional jumps (Table 4 shape)\n\n";
  let cell machine f =
    String.concat " / "
      (List.map
         (fun level ->
           let vals =
             List.filter_map
               (fun p ->
                 Option.map f (find doc ~program:p ~level ~machine))
               (complete_programs doc machine)
           in
           Printf.sprintf "%.2f" (mean vals))
         levels)
  in
  buf_table b
    [ "machine"; "static % (SIMPLE/LOOPS/JUMPS)"; "dynamic % (SIMPLE/LOOPS/JUMPS)" ]
    (List.map
       (fun machine ->
         [
           machine;
           cell machine (fun r -> pct r.static_ujumps r.static_instrs);
           cell machine (fun r -> pct r.dyn_ujumps r.dyn_instrs);
         ])
       (machines doc))

(* Table 6 shape: miss-ratio delta in percentage points and fetch-cost
   delta in percent, vs SIMPLE, averaged over programs (ctx switching
   off). *)
let cache_section b doc =
  Buffer.add_string b "## Instruction cache (Table 6 shape, ctx switching off)\n\n";
  let sizes = cache_sizes doc in
  let delta machine kb level what =
    mean
      (List.filter_map
         (fun p ->
           match
             ( cache doc ~program:p ~level:"SIMPLE" ~machine ~kb ~ctx:false,
               cache doc ~program:p ~level ~machine ~kb ~ctx:false )
           with
           | Some s, Some m -> (
             match what with
             | `Miss -> Some (100.0 *. (m.cr_miss -. s.cr_miss))
             | `Cost -> Some (change m.cr_fetch s.cr_fetch))
           | _ -> None)
         (complete_programs doc machine))
  in
  let header =
    "machine"
    :: List.map (fun kb -> Printf.sprintf "%dKb LOOPS / JUMPS" kb) sizes
  in
  List.iter
    (fun what ->
      Buffer.add_string b
        (match what with
        | `Miss -> "Miss ratio delta (percentage points):\n\n"
        | `Cost -> "Fetch cost delta (percent):\n\n");
      buf_table b header
        (List.map
           (fun machine ->
             machine
             :: List.map
                  (fun kb ->
                    Printf.sprintf "%+.2f / %+.2f"
                      (delta machine kb "LOOPS" what)
                      (delta machine kb "JUMPS" what))
                  sizes)
           (machines doc)))
    [ `Miss; `Cost ]

let verdict_section b doc =
  let bad = List.filter (fun r -> r.timed_out || not r.output_ok) doc.rows in
  Buffer.add_string b
    (Printf.sprintf "%d measurements (%d programs x %d machines); %s\n\n"
       (List.length doc.rows)
       (List.length (programs doc))
       (List.length (machines doc))
       (if bad = [] then "all outputs verified."
        else Printf.sprintf "%d FAILED verification:" (List.length bad)));
  if bad <> [] then begin
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "- %s at %s on %s: %s\n" r.program r.level r.machine
             (if r.timed_out then "TIMEOUT" else "MISMATCH")))
      bad;
    Buffer.add_char b '\n'
  end;
  if doc.counters <> [] then begin
    Buffer.add_string b "Sweep counters:\n\n";
    buf_table b [ "counter"; "value" ]
      (List.map (fun (k, v) -> [ k; string_of_int v ]) doc.counters)
  end

let render ?(title = "Benchmark report") doc =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "# %s\n\n" title);
  verdict_section b doc;
  static_dynamic_section b doc;
  code_size_section b doc;
  ujumps_section b doc;
  cache_section b doc;
  Buffer.contents b

(* --- comparison of two sweeps --- *)

let compare_docs ?(name_a = "A") ?(name_b = "B") a b =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# Sweep comparison: %s vs %s\n\n" name_a name_b);
  let key r = (r.program, r.level, r.machine) in
  let only_in name d other =
    let missing =
      List.filter (fun r -> not (List.exists (fun o -> key o = key r) other.rows)) d.rows
    in
    if missing <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "Only in %s (%d):\n\n" name (List.length missing));
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "- %s at %s on %s\n" r.program r.level r.machine))
        missing;
      Buffer.add_char buf '\n'
    end
  in
  only_in name_a a b;
  only_in name_b b a;
  let changed =
    List.filter_map
      (fun ra ->
        match List.find_opt (fun rb -> key rb = key ra) b.rows with
        | Some rb
          when rb.static_instrs <> ra.static_instrs
               || rb.dyn_instrs <> ra.dyn_instrs ->
          Some (ra, rb)
        | _ -> None)
      a.rows
  in
  if changed = [] then
    Buffer.add_string buf
      "No measurement changed static or dynamic instruction counts.\n\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%d measurements changed:\n\n" (List.length changed));
    buf_table buf
      [
        "program"; "level"; "machine"; "static"; "delta"; "dynamic"; "delta";
      ]
      (List.map
         (fun (ra, rb) ->
           [
             ra.program;
             ra.level;
             ra.machine;
             Printf.sprintf "%d -> %d" ra.static_instrs rb.static_instrs;
             signed (change rb.static_instrs ra.static_instrs);
             Printf.sprintf "%d -> %d" ra.dyn_instrs rb.dyn_instrs;
             signed (change rb.dyn_instrs ra.dyn_instrs);
           ])
         changed)
  end;
  (* Headline aggregates side by side: the Table-5 means. *)
  let means d machine =
    let progs = complete_programs d machine in
    let avg f =
      mean
        (List.filter_map
           (fun p -> Option.map f (triple d ~program:p ~machine))
           progs)
    in
    ( avg (fun (s, l, _) -> change l.static_instrs s.static_instrs),
      avg (fun (s, _, j) -> change j.static_instrs s.static_instrs),
      avg (fun (s, l, _) -> change l.dyn_instrs s.dyn_instrs),
      avg (fun (s, _, j) -> change j.dyn_instrs s.dyn_instrs) )
  in
  let shared =
    List.filter (fun m -> List.mem m (machines b)) (machines a)
  in
  if shared <> [] then begin
    Buffer.add_string buf "Table-5 means (static L/J, dynamic L/J):\n\n";
    buf_table buf
      [ "machine"; name_a; name_b; "delta" ]
      (List.map
         (fun m ->
           let fmt (sl, sj, dl, dj) =
             Printf.sprintf "%s / %s, %s / %s" (signed sl) (signed sj)
               (signed dl) (signed dj)
           in
           let sla, sja, dla, dja = means a m in
           let slb, sjb, dlb, djb = means b m in
           (* Identical sweeps render an explicit all-zero delta, so "no
              movement" is a visible assertion rather than an absence. *)
           [
             m;
             fmt (sla, sja, dla, dja);
             fmt (slb, sjb, dlb, djb);
             fmt (slb -. sla, sjb -. sja, dlb -. dla, djb -. dja);
           ])
         shared)
  end;
  Buffer.contents buf

(* --- gnuplot-ready data files --- *)

let dat_files doc =
  let header cols = "# " ^ String.concat "\t" cols ^ "\n" in
  let growth machine =
    let rows =
      List.filter_map
        (fun p ->
          Option.map
            (fun (s, l, j) ->
              Printf.sprintf "%s\t%.3f\t%.3f\t%.3f\t%.3f\n" p
                (change l.static_instrs s.static_instrs)
                (change j.static_instrs s.static_instrs)
                (change l.dyn_instrs s.dyn_instrs)
                (change j.dyn_instrs s.dyn_instrs))
            (triple doc ~program:p ~machine))
        (complete_programs doc machine)
    in
    ( Printf.sprintf "instrs_%s.dat" machine,
      header
        [
          "program"; "static_loops_pct"; "static_jumps_pct"; "dyn_loops_pct";
          "dyn_jumps_pct";
        ]
      ^ String.concat "" rows )
  in
  let cache_dat machine =
    let rows =
      List.map
        (fun kb ->
          let d level what =
            mean
              (List.filter_map
                 (fun p ->
                   match
                     ( cache doc ~program:p ~level:"SIMPLE" ~machine ~kb
                         ~ctx:false,
                       cache doc ~program:p ~level ~machine ~kb ~ctx:false )
                   with
                   | Some s, Some m -> (
                     match what with
                     | `Miss -> Some (100.0 *. (m.cr_miss -. s.cr_miss))
                     | `Cost -> Some (change m.cr_fetch s.cr_fetch))
                   | _ -> None)
                 (complete_programs doc machine))
          in
          Printf.sprintf "%d\t%.4f\t%.4f\t%.4f\t%.4f\n" kb
            (d "LOOPS" `Miss) (d "JUMPS" `Miss) (d "LOOPS" `Cost)
            (d "JUMPS" `Cost))
        (cache_sizes doc)
    in
    ( Printf.sprintf "cache_%s.dat" machine,
      header
        [ "kb"; "miss_loops_pp"; "miss_jumps_pp"; "cost_loops_pct"; "cost_jumps_pct" ]
      ^ String.concat "" rows )
  in
  List.concat_map (fun m -> [ growth m; cache_dat m ]) (machines doc)

(* --- telemetry JSONL summary --- *)

let summarize_events contents =
  let lines =
    String.split_on_char '\n' contents
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bad = ref 0 in
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok j -> (
        match Option.bind (Json.member "ev" j) Json.get_string with
        | Some kind ->
          Hashtbl.replace counts kind
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
        | None -> incr bad)
      | Error _ -> incr bad)
    lines;
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "## Telemetry events (%d lines)\n\n" (List.length lines));
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort (fun (k1, v1) (k2, v2) ->
           match compare v2 v1 with 0 -> compare k1 k2 | c -> c)
  in
  buf_table b [ "event"; "count" ]
    (List.map (fun (k, v) -> [ k; string_of_int v ]) rows);
  if !bad > 0 then
    Buffer.add_string b
      (Printf.sprintf "%d line(s) were not valid event objects.\n" !bad);
  Buffer.contents b
