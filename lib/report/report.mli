(** Offline reporting over the bench sweep's machine-readable outputs
    ([jumprepc report]).

    IO-free: {!parse_results} reads the {e contents} of a
    [BENCH_results.json] document, renderers return markdown strings, and
    {!dat_files} returns (filename, contents) pairs.  The arithmetic is
    Harness.Tables' (mean of per-program percentage changes vs SIMPLE,
    miss-ratio deltas in percentage points), so the rendered tables
    reproduce the EXPERIMENTS.md Table 4/5/6 numbers from the JSON
    alone. *)

type cache_row = {
  cr_config : string;
  cr_size_kb : int;
  cr_assoc : int;
  cr_ctx : bool;  (** context switching simulated *)
  cr_miss : float;
  cr_fetch : int;
}

type row = {
  program : string;
  level : string;  (** ["SIMPLE"], ["LOOPS"] or ["JUMPS"] *)
  machine : string;  (** ["risc"] or ["cisc"] *)
  static_instrs : int;
  static_ujumps : int;
  static_nops : int;
  code_bytes : int;
      (** total code bytes under the machine's encoding model (0 when the
          document predates the field) *)
  dyn_instrs : int;
  dyn_ujumps : int;
  dyn_nops : int;
  dyn_transfers : int;
  ibb : float;  (** instructions between branches *)
  output_ok : bool;
  timed_out : bool;
  caches : cache_row list;
}

type doc = { rows : row list; counters : (string * int) list }

(** Parse a [BENCH_results.json] document (the bench driver's [--json]
    output). *)
val parse_results : string -> (doc, string) result

val machines : doc -> string list
val programs : doc -> string list

(** Programs with all three levels measured on the machine — tasks lost
    to chaos drop out of comparisons instead of skewing them. *)
val complete_programs : doc -> string -> string list

val find : doc -> program:string -> level:string -> machine:string -> row option

(** The full markdown report: verification verdict, Table 5 shape
    (static/dynamic % change vs SIMPLE with per-program rows and the
    mean), static code size in bytes (when every row carries
    [code_bytes]), Table 4 shape (% unconditional jumps), Table 6 shape
    (miss-ratio and fetch-cost deltas per cache size). *)
val render : ?title:string -> doc -> string

(** Markdown delta report between two sweeps: rows present in only one,
    rows whose static/dynamic counts changed, and the Table-5 means side
    by side. *)
val compare_docs : ?name_a:string -> ?name_b:string -> doc -> doc -> string

(** Gnuplot-ready data files: per machine, [instrs_MACHINE.dat]
    (per-program % changes) and [cache_MACHINE.dat] (per-size deltas,
    ctx switching off), tab-separated with a [#] header line. *)
val dat_files : doc -> (string * string) list

(** Markdown summary of a telemetry JSONL event stream
    ([--trace-out events.jsonl]): event counts by kind. *)
val summarize_events : string -> string
