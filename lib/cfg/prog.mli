(** A complete compiled program: global data plus functions. *)

type init_item =
  | Word of int  (** one 4-byte little-endian word *)
  | Bytes of string  (** raw bytes, e.g. string contents *)
  | Addr of string  (** 4-byte address of another symbol *)
  | Zeros of int

type data = {
  dname : string;
  dsize : int;  (** total byte size; tail beyond the initializer is zero *)
  dinit : init_item list;
}

type t = { globals : data list; funcs : Func.t list }

val find_func : t -> string -> Func.t option
val map_funcs : (Func.t -> Func.t) -> t -> t

(** Sum of {!Func.num_instrs} over all functions: the paper's "static
    instructions" count. *)
val static_instrs : t -> int

val pp : Format.formatter -> t -> unit
