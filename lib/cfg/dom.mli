(** Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm).

    Unreachable blocks have no dominator information; they dominate only
    themselves and are dominated by nothing. *)

type t

val compute : Cfg.t -> t

(** Immediate dominator; [None] for the entry and for unreachable blocks. *)
val idom : t -> int -> int option

(** [dominates t a b]: every path from the entry to [b] passes through [a].
    Reflexive. *)
val dominates : t -> int -> int -> bool

(** Strict domination: [dominates] minus reflexivity. *)
val strictly_dominates : t -> int -> int -> bool
