(** Natural loops and flow-graph reducibility. *)

module Int_set : Set.S with type elt = int

type loop = {
  header : int;
  body : Int_set.t;  (** includes the header *)
}

(** Edges [u -> v] where [v] dominates [u]. *)
val back_edges : Cfg.t -> Dom.t -> (int * int) list

(** Natural loops of the graph, one per header (loops sharing a header are
    merged, as is standard). *)
val natural_loops : Cfg.t -> Dom.t -> loop list

(** Loops ordered by increasing body size, so inner loops come first. *)
val innermost_first : loop list -> loop list

(** A graph is reducible iff deleting all dominator back edges leaves it
    acyclic (considering reachable blocks only). *)
val is_reducible : Cfg.t -> Dom.t -> bool

(** The innermost loop containing block [i], if any. *)
val enclosing_loop : loop list -> int -> loop option

(** Exit edges [(u, v)] with [u] in the loop and [v] outside. *)
val exit_edges : Cfg.t -> loop -> (int * int) list
