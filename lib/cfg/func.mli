(** A function under compilation: a sequence of basic blocks.

    Block order in the array is {e positional} order: block [i] falls through
    to block [i+1] unless its last instruction is an unconditional transfer.
    [blocks.(0)] is the entry block; its label is never a branch target, so
    replication never copies the prologue. *)

open Ir

type block = { label : Label.t; instrs : Rtl.instr list }

type t

val name : t -> string

(** The block array in positional order.  Treat as read-only: build a new
    array and use {!with_blocks} to change a function. *)
val blocks : t -> block array

val lsupply : t -> Label.Supply.t
val vsupply : t -> Reg.Supply.t

(** @raise Invalid_argument on duplicate labels or an empty block array. *)
val make :
  name:string ->
  blocks:block array ->
  lsupply:Label.Supply.t ->
  vsupply:Reg.Supply.t ->
  t

(** Replace the block array, rebuilding the label index.  Any attached
    {!encoding} plan is dropped: it described the old linearization.
    @raise Invalid_argument on duplicate labels. *)
val with_blocks : t -> block array -> t

(** The advisory branch-displacement plan, when the displacement pass
    has run and no later pass touched the blocks. *)
val encoding : t -> Encode.plan option

(** Attach (or clear) a displacement plan.  The caller warrants that the
    plan was solved for this function's current linearization. *)
val set_encoding : t -> Encode.plan option -> t

val num_blocks : t -> int
val block : t -> int -> block

(** Index of the block carrying a label.  @raise Not_found if absent. *)
val index_of_label : t -> Label.t -> int

val fresh_label : t -> Label.t
val fresh_reg : t -> Reg.t

(** Last instruction, when it is a control transfer. *)
val terminator : block -> Rtl.instr option

(** Whether control can flow off the block's end into the next one. *)
val falls_through : block -> bool

(** Total number of RTLs in the function. *)
val num_instrs : t -> int

(** Number of RTLs in one block. *)
val block_size : block -> int

val map_blocks : (block -> block) -> t -> t

(** Rebuild each block's instruction list. *)
val map_instrs : (Rtl.instr list -> Rtl.instr list) -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
