type t = { func : Func.t; facts : Analysis.Live.t }

let step = Analysis.Live.step

(* Liveness of the same (physically identical) function is requested by
   several passes per pipeline iteration — dead-variable elimination,
   instruction selection, register allocation, LICM.  Memoize the solve. *)
let cache : (Func.t, Analysis.Live.t) Analysis.Cache.t =
  Analysis.Cache.create ~size:8 ()

let solve func =
  let graph = Cfg.graph (Cfg.make func) in
  let instrs = Array.map (fun (b : Func.block) -> b.instrs) (Func.blocks func) in
  Analysis.Live.solve ~graph ~instrs ()

let compute func = { func; facts = Analysis.Cache.find cache func solve }
let live_in t i = t.facts.Analysis.Live.live_in.(i)
let live_out t i = t.facts.Analysis.Live.live_out.(i)

let fold_backward t f i ~init =
  let instrs = (Func.block t.func i).instrs in
  let acc, _ =
    List.fold_right
      (fun instr (acc, live_after) ->
        (f acc instr ~live_after, step instr live_after))
      instrs
      (init, live_out t i)
  in
  acc
