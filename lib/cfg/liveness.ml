open Ir

type t = {
  func : Func.t;
  live_in : Reg.Set.t array;
  live_out : Reg.Set.t array;
}

let step instr live_after =
  Reg.Set.union (Rtl.uses instr) (Reg.Set.diff live_after (Rtl.defs instr))

let block_transfer instrs live_out =
  List.fold_right (fun i acc -> step i acc) instrs live_out

let compute func =
  let g = Cfg.make func in
  let n = Func.num_blocks func in
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Reg.Set.union acc live_in.(s))
          Reg.Set.empty (Cfg.succs g i)
      in
      let inn = block_transfer (Func.block func i).instrs out in
      if
        (not (Reg.Set.equal out live_out.(i)))
        || not (Reg.Set.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { func; live_in; live_out }

let live_in t i = t.live_in.(i)
let live_out t i = t.live_out.(i)

let fold_backward t f i ~init =
  let instrs = (Func.block t.func i).instrs in
  let acc, _ =
    List.fold_right
      (fun instr (acc, live_after) ->
        (f acc instr ~live_after, step instr live_after))
      instrs
      (init, t.live_out.(i))
  in
  acc
