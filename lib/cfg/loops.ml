module Int_set = Set.Make (Int)

type loop = { header : int; body : Int_set.t }

let back_edges g dom =
  let edges = ref [] in
  for u = 0 to Cfg.num_blocks g - 1 do
    List.iter
      (fun v -> if Dom.dominates dom v u then edges := (u, v) :: !edges)
      (Cfg.succs g u)
  done;
  List.rev !edges

(* The natural loop of back edge u -> v: v plus all blocks that reach u
   without passing through v. *)
let loop_of_back_edge g (u, v) =
  let body = ref (Int_set.add v Int_set.empty) in
  let rec visit x =
    if not (Int_set.mem x !body) then begin
      body := Int_set.add x !body;
      List.iter visit (Cfg.preds g x)
    end
  in
  visit u;
  { header = v; body = !body }

let natural_loops g dom =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      let l = loop_of_back_edge g (u, v) in
      match Hashtbl.find_opt tbl v with
      | None -> Hashtbl.add tbl v l
      | Some l' ->
        Hashtbl.replace tbl v { l' with body = Int_set.union l'.body l.body })
    (back_edges g dom);
  Hashtbl.fold (fun _ l acc -> l :: acc) tbl []
  |> List.sort (fun a b -> Int.compare a.header b.header)

let innermost_first loops =
  List.sort
    (fun a b -> Int.compare (Int_set.cardinal a.body) (Int_set.cardinal b.body))
    loops

let is_reducible g dom =
  let n = Cfg.num_blocks g in
  let reach = Cfg.reachable g in
  let is_back u v = Dom.dominates dom v u in
  (* Colors: 0 unvisited, 1 on stack, 2 done. *)
  let color = Array.make n 0 in
  let rec visit u =
    color.(u) <- 1;
    let ok =
      List.for_all
        (fun v ->
          if is_back u v then true
          else if color.(v) = 1 then false
          else if color.(v) = 0 then visit v
          else true)
        (Cfg.succs g u)
    in
    color.(u) <- 2;
    ok
  in
  let rec check i =
    if i >= n then true
    else if reach.(i) && color.(i) = 0 then visit i && check (i + 1)
    else check (i + 1)
  in
  check 0

let enclosing_loop loops i =
  List.fold_left
    (fun acc l ->
      if Int_set.mem i l.body then
        match acc with
        | None -> Some l
        | Some best ->
          if Int_set.cardinal l.body < Int_set.cardinal best.body then Some l
          else acc
      else acc)
    None loops

let exit_edges g l =
  Int_set.fold
    (fun u acc ->
      List.fold_left
        (fun acc v -> if Int_set.mem v l.body then acc else (u, v) :: acc)
        acc (Cfg.succs g u))
    l.body []
  |> List.rev
