type t = { idom : int array; depth : int array; reach : bool array }

let compute g =
  let n = Cfg.num_blocks g in
  let rpo = Cfg.reverse_postorder g in
  let reach = Cfg.reachable g in
  let rpo_num = Array.make n (-1) in
  Array.iteri (fun pos b -> if reach.(b) then rpo_num.(b) <- pos) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref (n > 0) in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 && reach.(b) then begin
          let processed p = reach.(p) && idom.(p) <> -1 in
          let new_idom =
            List.fold_left
              (fun acc p ->
                if not (processed p) then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None (Cfg.preds g b)
          in
          match new_idom with
          | Some d when idom.(b) <> d ->
            idom.(b) <- d;
            changed := true
          | Some _ | None -> ()
        end)
      rpo
  done;
  (* Depth in the dominator tree, for O(depth) dominance queries. *)
  let depth = Array.make n (-1) in
  let rec depth_of b =
    if depth.(b) >= 0 then depth.(b)
    else if b = 0 then begin
      depth.(b) <- 0;
      0
    end
    else if idom.(b) = -1 then -1
    else begin
      let d = depth_of idom.(b) + 1 in
      depth.(b) <- d;
      d
    end
  in
  for b = 0 to n - 1 do
    if reach.(b) then ignore (depth_of b)
  done;
  { idom; depth; reach }

let idom t b =
  if b = 0 || (not t.reach.(b)) || t.idom.(b) = -1 then None
  else Some t.idom.(b)

let dominates t a b =
  if a = b then true
  else if (not t.reach.(a)) || not t.reach.(b) then false
  else begin
    let rec climb x =
      if x = a then true
      else if x = 0 || t.depth.(x) <= t.depth.(a) then false
      else climb t.idom.(x)
    in
    climb b
  end

let strictly_dominates t a b = a <> b && dominates t a b
