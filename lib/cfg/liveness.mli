(** Backward liveness dataflow over registers (including {!Ir.Reg.Cc}). *)

open Ir

type t

val compute : Func.t -> t

(** Registers live on entry to block [i]. *)
val live_in : t -> int -> Reg.Set.t

(** Registers live on exit from block [i]. *)
val live_out : t -> int -> Reg.Set.t

(** [fold_backward t f i ~init] folds [f] over block [i]'s instructions from
    last to first.  [f acc instr ~live_after] receives the registers live
    immediately after [instr]. *)
val fold_backward :
  t ->
  ('a -> Rtl.instr -> live_after:Reg.Set.t -> 'a) ->
  int ->
  init:'a ->
  'a

(** One backward transfer step: liveness before an instruction given
    liveness after it. *)
val step : Rtl.instr -> Reg.Set.t -> Reg.Set.t
