(** Control-flow edges of a {!Func.t}, by block index.

    Successor order is significant where a fall-through exists: the
    fall-through successor comes first, then explicit branch targets. *)

type t

val make : Func.t -> t
val num_blocks : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list

(** Blocks reachable from the entry along CFG edges. *)
val reachable : t -> bool array

(** Reverse postorder of the depth-first traversal from the entry.
    Unreachable blocks are appended at the end in index order. *)
val reverse_postorder : t -> int array

(** The CFG as an abstract dataflow graph for {!Analysis.Dataflow}. *)
val graph : t -> Analysis.Dataflow.graph
