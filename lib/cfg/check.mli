(** IR verifier: structural and semantic invariants of functions and
    programs, used as an always-on pass postcondition by the defensive
    driver ({!Opt.Driver}) and directly by tests.

    Cheap checks ({!errors}, run after every pass):
    - every branch/jump target names an existing block;
    - no transfer instruction occurs in the middle of a block;
    - no indirect jump has an empty target table;
    - the last block does not fall off the end of the function (a
      conditional branch there has no fall-through);
    - [Enter] appears only as the first instruction of the entry block;
    - every [Ret] is immediately preceded by [Leave] and vice versa;
    - the entry block's label is never a branch target;
    - block labels are unique and the label index agrees with positions.

    Expensive checks (enabled by [~full:true], i.e. [--verify-passes]):
    - {!def_before_use}: every use of a virtual register is preceded by a
      definition on {e every} path from the entry (dominator fast path via
      {!Dom}, full forward must-analysis over the {!Cfg} otherwise).

    Separate pass-aware checks the driver applies where they are
    postconditions: {!unreachable_blocks} (after the unreachable pass) and
    {!no_virtuals} (after register allocation).  {!program_errors} checks
    whole-program invariants: global label uniqueness and unique function
    names. *)

(** All violations found, empty if the function is well-formed.
    [full] (default false) adds the expensive checks. *)
val errors : ?full:bool -> Func.t -> string list

(** Uses of virtual registers that some entry path reaches without a prior
    definition.  Empty when the function has dangling branch targets (the
    cheap checks report those first). *)
val def_before_use : Func.t -> string list

(** Labels of blocks unreachable from the entry: the postcondition of the
    unreachable-code pass.  Empty when the function has dangling targets. *)
val unreachable_blocks : Func.t -> string list

(** Virtual registers still mentioned: the postcondition of register
    allocation. *)
val no_virtuals : Func.t -> string list

(** Whole-program invariants: no label defined in two functions, no two
    functions with the same name. *)
val program_errors : Prog.t -> string list

(** @raise Telemetry.Diag.Error with code [Malformed_ir] listing the
    violations, if any. *)
val assert_ok : Func.t -> unit
