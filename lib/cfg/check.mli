(** Structural invariants of a function, used as a pass postcondition in
    tests and as a debugging aid.

    Checked invariants:
    - every branch/jump target names an existing block;
    - no transfer instruction occurs in the middle of a block;
    - the last block does not fall off the end of the function;
    - [Enter] appears only as the first instruction of the entry block;
    - every [Ret] is immediately preceded by [Leave] and vice versa;
    - the entry block's label is never a branch target. *)

(** All violations found, empty if the function is well-formed. *)
val errors : Func.t -> string list

(** @raise Failure listing the violations, if any. *)
val assert_ok : Func.t -> unit
