open Ir

let errors f =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let n = Func.num_blocks f in
  let entry_label = (Func.block f 0).label in
  for i = 0 to n - 1 do
    let b = Func.block f i in
    let rec scan = function
      | [] -> ()
      | [ _last ] -> ()
      | instr :: rest ->
        if Rtl.is_transfer instr then
          err "%a: transfer %a in the middle of the block" Label.pp b.label
            Rtl.pp_instr instr;
        scan rest
    in
    scan b.instrs;
    List.iter
      (fun instr ->
        List.iter
          (fun l ->
            (match Func.index_of_label f l with
            | _ -> ()
            | exception Not_found ->
              err "%a: target %a does not exist" Label.pp b.label Label.pp l);
            if Label.equal l entry_label then
              err "%a: branch to the entry block" Label.pp b.label)
          (Rtl.targets instr))
      b.instrs;
    List.iteri
      (fun k instr ->
        match instr with
        | Rtl.Enter _ when not (i = 0 && k = 0) ->
          err "%a: Enter outside function entry" Label.pp b.label
        | Rtl.Enter _ | _ -> ())
      b.instrs;
    (* Leave/Ret pairing: they occur only as the adjacent pair Leave; Ret. *)
    let rec pairs = function
      | Rtl.Leave :: Rtl.Ret :: rest -> pairs rest
      | Rtl.Leave :: rest ->
        err "%a: Leave not followed by Ret" Label.pp b.label;
        pairs rest
      | Rtl.Ret :: rest ->
        err "%a: Ret without preceding Leave" Label.pp b.label;
        pairs rest
      | _ :: rest -> pairs rest
      | [] -> ()
    in
    pairs b.instrs
  done;
  if n > 0 && Func.falls_through (Func.block f (n - 1)) then
    err "%a: last block falls off the end" Label.pp
      (Func.block f (n - 1)).label;
  List.rev !errs

let assert_ok f =
  match errors f with
  | [] -> ()
  | errs ->
    failwith
      (Printf.sprintf "ill-formed function %s:\n  %s" (Func.name f)
         (String.concat "\n  " errs))
