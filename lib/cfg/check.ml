open Ir
module ISet = Set.Make (Int)

(* --- cheap structural checks --- *)

let structural_errors f =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let n = Func.num_blocks f in
  let entry_label = (Func.block f 0).label in
  let seen_labels = Hashtbl.create (n * 2) in
  for i = 0 to n - 1 do
    let b = Func.block f i in
    (if Hashtbl.mem seen_labels b.label then
       err "%a: duplicate block label" Label.pp b.label
     else Hashtbl.add seen_labels b.label ());
    (match Func.index_of_label f b.label with
    | j when j <> i ->
      err "%a: label index maps to block %d, not %d" Label.pp b.label j i
    | _ -> ()
    | exception Not_found ->
      err "%a: label missing from the label index" Label.pp b.label);
    let rec scan = function
      | [] -> ()
      | [ _last ] -> ()
      | instr :: rest ->
        if Rtl.is_transfer instr then
          err "%a: transfer %a in the middle of the block" Label.pp b.label
            Rtl.pp_instr instr;
        scan rest
    in
    scan b.instrs;
    List.iter
      (fun instr ->
        (match instr with
        | Rtl.Ijump (_, table) when Array.length table = 0 ->
          err "%a: indirect jump with an empty target table" Label.pp b.label
        | _ -> ());
        List.iter
          (fun l ->
            (match Func.index_of_label f l with
            | _ -> ()
            | exception Not_found ->
              err "%a: target %a does not exist" Label.pp b.label Label.pp l);
            if Label.equal l entry_label then
              err "%a: branch to the entry block" Label.pp b.label)
          (Rtl.targets instr))
      b.instrs;
    List.iteri
      (fun k instr ->
        match instr with
        | Rtl.Enter _ when not (i = 0 && k = 0) ->
          err "%a: Enter outside function entry" Label.pp b.label
        | Rtl.Enter _ | _ -> ())
      b.instrs;
    (* Leave/Ret pairing: they occur only as the adjacent pair Leave; Ret. *)
    let rec pairs = function
      | Rtl.Leave :: Rtl.Ret :: rest -> pairs rest
      | Rtl.Leave :: rest ->
        err "%a: Leave not followed by Ret" Label.pp b.label;
        pairs rest
      | Rtl.Ret :: rest ->
        err "%a: Ret without preceding Leave" Label.pp b.label;
        pairs rest
      | _ :: rest -> pairs rest
      | [] -> ()
    in
    pairs b.instrs
  done;
  (if n > 0 then
     let last = Func.block f (n - 1) in
     match Func.terminator last with
     | Some (Rtl.Branch _) ->
       err "%a: conditional branch in the last block has no fall-through"
         Label.pp last.label
     | _ ->
       if Func.falls_through last then
         err "%a: last block falls off the end" Label.pp last.label);
  List.rev !errs

(* The graph-level checks below need every target to resolve; when one
   dangles, [Cfg.make] would raise, and the structural errors already say
   what is wrong. *)
let targets_resolve f =
  Array.for_all
    (fun (b : Func.block) ->
      List.for_all
        (fun instr ->
          List.for_all
            (fun l ->
              match Func.index_of_label f l with
              | _ -> true
              | exception Not_found -> false)
            (Rtl.targets instr))
        b.instrs)
    (Func.blocks f)

let unreachable_blocks f =
  if not (targets_resolve f) then []
  else begin
    let reach = Cfg.reachable (Cfg.make f) in
    let errs = ref [] in
    Array.iteri
      (fun i ok ->
        if not ok then
          errs :=
            Printf.sprintf "%s: block unreachable from the entry"
              (Label.to_string (Func.block f i).label)
            :: !errs)
      reach;
    List.rev !errs
  end

let no_virtuals f =
  let errs = ref [] in
  Array.iter
    (fun (b : Func.block) ->
      List.iter
        (fun instr ->
          Reg.Set.iter
            (fun r ->
              if Reg.is_virt r then
                errs :=
                  Printf.sprintf "%s: virtual register %s survives allocation"
                    (Label.to_string b.label) (Reg.to_string r)
                  :: !errs)
            (Reg.Set.union (Rtl.uses instr) (Rtl.defs instr)))
        b.instrs)
    (Func.blocks f);
  List.rev !errs

(* --- def-before-use of virtual registers on every path --- *)

let virts regs =
  Reg.Set.fold
    (fun r acc -> match r with Reg.Virt i -> ISet.add i acc | _ -> acc)
    regs ISet.empty

(* Per-block sets of virtuals defined anywhere in the block. *)
let block_defs f =
  Array.map
    (fun (b : Func.block) ->
      List.fold_left
        (fun acc instr -> ISet.union acc (virts (Rtl.defs instr)))
        ISet.empty b.instrs)
    (Func.blocks f)

(* Virtuals defined on every path from the entry to each block's head:
   the maximal fixpoint of IN[b] = inter over predecessors of OUT[p],
   OUT[p] = IN[p] union defs[p], iterated in reverse postorder. *)
let avail_in cfg reach defs =
  let n = Array.length defs in
  let all = Array.fold_left ISet.union ISet.empty defs in
  let avail = Array.make n all in
  if n > 0 then avail.(0) <- ISet.empty;
  let rpo = Cfg.reverse_postorder cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun i ->
        if i <> 0 && reach.(i) then begin
          let inset =
            List.fold_left
              (fun acc p ->
                if not reach.(p) then acc
                else
                  let out = ISet.union avail.(p) defs.(p) in
                  match acc with
                  | None -> Some out
                  | Some s -> Some (ISet.inter s out))
              None (Cfg.preds cfg i)
          in
          let inset = Option.value ~default:ISet.empty inset in
          if not (ISet.equal inset avail.(i)) then begin
            avail.(i) <- inset;
            changed := true
          end
        end)
      rpo
  done;
  avail

let def_before_use f =
  if not (targets_resolve f) then []
  else begin
    let cfg = Cfg.make f in
    let reach = Cfg.reachable cfg in
    let dom = Dom.compute cfg in
    let defs = block_defs f in
    (* Blocks defining each virtual, for the dominator fast path: a def in
       a strictly dominating block covers every path (blocks are atomic). *)
    let def_sites = Hashtbl.create 64 in
    Array.iteri
      (fun i ds ->
        ISet.iter
          (fun v ->
            Hashtbl.replace def_sites v
              (i :: Option.value ~default:[] (Hashtbl.find_opt def_sites v)))
          ds)
      defs;
    let avail = lazy (avail_in cfg reach defs) in
    let errs = ref [] in
    Array.iteri
      (fun i (b : Func.block) ->
        if reach.(i) then begin
          let local = ref ISet.empty in
          List.iter
            (fun instr ->
              ISet.iter
                (fun v ->
                  let dominated_def () =
                    List.exists
                      (fun d -> Dom.strictly_dominates dom d i)
                      (Option.value ~default:[]
                         (Hashtbl.find_opt def_sites v))
                  in
                  if
                    (not (ISet.mem v !local))
                    && (not (dominated_def ()))
                    && not (ISet.mem v (Lazy.force avail).(i))
                  then
                    errs :=
                      Printf.sprintf
                        "%s: virtual register v%d used before definition on \
                         some path"
                        (Label.to_string b.label) v
                      :: !errs)
                (virts (Rtl.uses instr));
              local := ISet.union !local (virts (Rtl.defs instr)))
            b.instrs
        end)
      (Func.blocks f);
    List.rev !errs
  end

let errors ?(full = false) f =
  let cheap = structural_errors f in
  if full && cheap = [] then def_before_use f else cheap

(* --- whole-program invariants --- *)

let program_errors (prog : Prog.t) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let fnames = Hashtbl.create 16 in
  let labels : (Label.t, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let name = Func.name f in
      (if Hashtbl.mem fnames name then err "duplicate function %s" name
       else Hashtbl.add fnames name ());
      Array.iter
        (fun (b : Func.block) ->
          match Hashtbl.find_opt labels b.label with
          | Some other when other <> name ->
            err "label %a defined in both %s and %s" Label.pp b.label other
              name
          | Some _ -> () (* within-function duplicates: structural check *)
          | None -> Hashtbl.add labels b.label name)
        (Func.blocks f))
    prog.funcs;
  List.rev !errs

let assert_ok f =
  match errors f with
  | [] -> ()
  | errs ->
    raise
      (Telemetry.Diag.Error
         (Telemetry.Diag.make Telemetry.Diag.Malformed_ir ~func:(Func.name f)
            ~pass:""
            (Printf.sprintf "ill-formed function:\n  %s"
               (String.concat "\n  " errs))))
