open Ir

(* --- cheap structural checks --- *)

let structural_errors f =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let n = Func.num_blocks f in
  let entry_label = (Func.block f 0).label in
  let seen_labels = Hashtbl.create (n * 2) in
  for i = 0 to n - 1 do
    let b = Func.block f i in
    (if Hashtbl.mem seen_labels b.label then
       err "%a: duplicate block label" Label.pp b.label
     else Hashtbl.add seen_labels b.label ());
    (match Func.index_of_label f b.label with
    | j when j <> i ->
      err "%a: label index maps to block %d, not %d" Label.pp b.label j i
    | _ -> ()
    | exception Not_found ->
      err "%a: label missing from the label index" Label.pp b.label);
    let rec scan = function
      | [] -> ()
      | [ _last ] -> ()
      | instr :: rest ->
        if Rtl.is_transfer instr then
          err "%a: transfer %a in the middle of the block" Label.pp b.label
            Rtl.pp_instr instr;
        scan rest
    in
    scan b.instrs;
    List.iter
      (fun instr ->
        (match instr with
        | Rtl.Ijump (_, table) when Array.length table = 0 ->
          err "%a: indirect jump with an empty target table" Label.pp b.label
        | _ -> ());
        List.iter
          (fun l ->
            (match Func.index_of_label f l with
            | _ -> ()
            | exception Not_found ->
              err "%a: target %a does not exist" Label.pp b.label Label.pp l);
            if Label.equal l entry_label then
              err "%a: branch to the entry block" Label.pp b.label)
          (Rtl.targets instr))
      b.instrs;
    List.iteri
      (fun k instr ->
        match instr with
        | Rtl.Enter _ when not (i = 0 && k = 0) ->
          err "%a: Enter outside function entry" Label.pp b.label
        | Rtl.Enter _ | _ -> ())
      b.instrs;
    (* Leave/Ret pairing: they occur only as the adjacent pair Leave; Ret. *)
    let rec pairs = function
      | Rtl.Leave :: Rtl.Ret :: rest -> pairs rest
      | Rtl.Leave :: rest ->
        err "%a: Leave not followed by Ret" Label.pp b.label;
        pairs rest
      | Rtl.Ret :: rest ->
        err "%a: Ret without preceding Leave" Label.pp b.label;
        pairs rest
      | _ :: rest -> pairs rest
      | [] -> ()
    in
    pairs b.instrs
  done;
  (if n > 0 then
     let last = Func.block f (n - 1) in
     match Func.terminator last with
     | Some (Rtl.Branch _) ->
       err "%a: conditional branch in the last block has no fall-through"
         Label.pp last.label
     | _ ->
       if Func.falls_through last then
         err "%a: last block falls off the end" Label.pp last.label);
  List.rev !errs

(* The graph-level checks below need every target to resolve; when one
   dangles, [Cfg.make] would raise, and the structural errors already say
   what is wrong. *)
let targets_resolve f =
  Array.for_all
    (fun (b : Func.block) ->
      List.for_all
        (fun instr ->
          List.for_all
            (fun l ->
              match Func.index_of_label f l with
              | _ -> true
              | exception Not_found -> false)
            (Rtl.targets instr))
        b.instrs)
    (Func.blocks f)

let unreachable_blocks f =
  if not (targets_resolve f) then []
  else begin
    let reach = Cfg.reachable (Cfg.make f) in
    let errs = ref [] in
    Array.iteri
      (fun i ok ->
        if not ok then
          errs :=
            Printf.sprintf "%s: block unreachable from the entry"
              (Label.to_string (Func.block f i).label)
            :: !errs)
      reach;
    List.rev !errs
  end

let no_virtuals f =
  let errs = ref [] in
  Array.iter
    (fun (b : Func.block) ->
      List.iter
        (fun instr ->
          Reg.Set.iter
            (fun r ->
              if Reg.is_virt r then
                errs :=
                  Printf.sprintf "%s: virtual register %s survives allocation"
                    (Label.to_string b.label) (Reg.to_string r)
                  :: !errs)
            (Reg.Set.union (Rtl.uses instr) (Rtl.defs instr)))
        b.instrs)
    (Func.blocks f);
  List.rev !errs

(* --- def-before-use of virtual registers on every path --- *)

let def_before_use f =
  if not (targets_resolve f) then []
  else begin
    let cfg = Cfg.make f in
    let reach = Cfg.reachable cfg in
    (* Restrict the graph to reachable blocks so facts on dead edges cannot
       weaken the must-analysis. *)
    let graph =
      Analysis.Dataflow.restrict (Cfg.graph cfg) ~keep:(fun i -> reach.(i))
    in
    let instrs =
      Array.map (fun (b : Func.block) -> b.instrs) (Func.blocks f)
    in
    let facts = Analysis.Reaching.solve ~graph ~instrs () in
    Analysis.Reaching.uninitialized_uses facts ~instrs ~keep:Reg.is_virt
      ~reachable:(fun i -> reach.(i))
    |> List.map (fun (b, _, r) ->
           Printf.sprintf
             "%s: virtual register %s used before definition on some path"
             (Label.to_string (Func.block f b).label)
             (Reg.to_string r))
  end

let errors ?(full = false) f =
  let cheap = structural_errors f in
  if full && cheap = [] then def_before_use f else cheap

(* --- whole-program invariants --- *)

let program_errors (prog : Prog.t) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let fnames = Hashtbl.create 16 in
  let labels : (Label.t, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let name = Func.name f in
      (if Hashtbl.mem fnames name then err "duplicate function %s" name
       else Hashtbl.add fnames name ());
      Array.iter
        (fun (b : Func.block) ->
          match Hashtbl.find_opt labels b.label with
          | Some other when other <> name ->
            err "label %a defined in both %s and %s" Label.pp b.label other
              name
          | Some _ -> () (* within-function duplicates: structural check *)
          | None -> Hashtbl.add labels b.label name)
        (Func.blocks f))
    prog.funcs;
  List.rev !errs

let assert_ok f =
  match errors f with
  | [] -> ()
  | errs ->
    raise
      (Telemetry.Diag.Error
         (Telemetry.Diag.make Telemetry.Diag.Malformed_ir ~func:(Func.name f)
            ~pass:""
            (Printf.sprintf "ill-formed function:\n  %s"
               (String.concat "\n  " errs))))
