open Ir

type block = { label : Label.t; instrs : Rtl.instr list }

type t = {
  name : string;
  blocks : block array;
  lsupply : Label.Supply.t;
  vsupply : Reg.Supply.t;
  index : (Label.t, int) Hashtbl.t;
  encoding : Encode.plan option;
      (* advisory branch-displacement plan; valid only for this exact
         block array, so [with_blocks] drops it *)
}

let build_index blocks =
  let index = Hashtbl.create (Array.length blocks * 2) in
  Array.iteri
    (fun i b ->
      if Hashtbl.mem index b.label then
        invalid_arg
          (Printf.sprintf "Func.make: duplicate label %s"
             (Label.to_string b.label));
      Hashtbl.add index b.label i)
    blocks;
  index

let make ~name ~blocks ~lsupply ~vsupply =
  if Array.length blocks = 0 then invalid_arg "Func.make: no blocks";
  { name; blocks; lsupply; vsupply; index = build_index blocks; encoding = None }

let name f = f.name
let blocks f = f.blocks
let lsupply f = f.lsupply
let vsupply f = f.vsupply
let encoding f = f.encoding
let set_encoding f encoding = { f with encoding }

let with_blocks f blocks =
  if Array.length blocks = 0 then invalid_arg "Func.with_blocks: no blocks";
  { f with blocks; index = build_index blocks; encoding = None }

let num_blocks f = Array.length f.blocks
let block f i = f.blocks.(i)

let index_of_label f l =
  match Hashtbl.find_opt f.index l with
  | Some i -> i
  | None -> raise Not_found

let fresh_label f = Label.Supply.fresh f.lsupply
let fresh_reg f = Reg.Supply.fresh f.vsupply

let terminator b =
  match List.rev b.instrs with
  | last :: _ when Rtl.is_transfer last -> Some last
  | _ -> None

let falls_through b =
  match terminator b with
  | Some (Rtl.Jump _ | Rtl.Ijump _ | Rtl.Ret) -> false
  | Some (Rtl.Branch _) | Some _ | None -> true

let block_size b = List.length b.instrs
let num_instrs f = Array.fold_left (fun n b -> n + block_size b) 0 f.blocks
let map_blocks g f = with_blocks f (Array.map g f.blocks)

let map_instrs g f =
  map_blocks (fun b -> { b with instrs = g b.instrs }) f

let pp ppf f =
  Fmt.pf ppf "@[<v>%s:" f.name;
  Array.iter
    (fun b ->
      Fmt.pf ppf "@,%a:" Label.pp b.label;
      List.iter (fun i -> Fmt.pf ppf "@,  %a" Rtl.pp_instr i) b.instrs)
    f.blocks;
  Fmt.pf ppf "@]"

let to_string f = Fmt.str "%a" pp f
