type init_item =
  | Word of int
  | Bytes of string
  | Addr of string
  | Zeros of int

type data = { dname : string; dsize : int; dinit : init_item list }

type t = { globals : data list; funcs : Func.t list }

let find_func p name =
  List.find_opt (fun f -> String.equal (Func.name f) name) p.funcs

let map_funcs g p = { p with funcs = List.map g p.funcs }

let static_instrs p =
  List.fold_left (fun n f -> n + Func.num_instrs f) 0 p.funcs

let pp ppf p =
  List.iter
    (fun (d : data) -> Fmt.pf ppf "data %s: %d bytes@." d.dname d.dsize)
    p.globals;
  List.iter (fun f -> Fmt.pf ppf "%a@." Func.pp f) p.funcs
