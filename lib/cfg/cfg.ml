open Ir

type t = { succ : int list array; pred : int list array }

let succ_indices f i =
  let b = Func.block f i in
  let n = Func.num_blocks f in
  let fall = if Func.falls_through b && i + 1 < n then [ i + 1 ] else [] in
  let explicit =
    match Func.terminator b with
    | Some t -> List.map (Func.index_of_label f) (Rtl.targets t)
    | None -> []
  in
  (* Dedup while keeping the fall-through first. *)
  List.fold_left
    (fun acc s -> if List.mem s acc then acc else acc @ [ s ])
    fall explicit

let make f =
  let n = Func.num_blocks f in
  let succ = Array.init n (succ_indices f) in
  let pred = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss)
    succ;
  Array.iteri (fun i ps -> pred.(i) <- List.rev ps) pred;
  { succ; pred }

let num_blocks g = Array.length g.succ
let succs g i = g.succ.(i)
let preds g i = g.pred.(i)

let reachable g =
  let n = num_blocks g in
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit g.succ.(i)
    end
  in
  if n > 0 then visit 0;
  seen

let reverse_postorder g =
  let n = num_blocks g in
  let seen = Array.make n false in
  let order = ref [] in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit g.succ.(i);
      order := i :: !order
    end
  in
  if n > 0 then visit 0;
  let head = !order in
  let tail =
    List.filter (fun i -> not seen.(i)) (List.init n (fun i -> i))
  in
  Array.of_list (head @ tail)

let graph g =
  {
    Analysis.Dataflow.nodes = num_blocks g;
    succs = succs g;
    preds = preds g;
    rpo = reverse_postorder g;
  }
