(** Reaching definitions, as an instance of {!Dataflow}.

    Two related fact families from one gen/kill construction:

    - {e may-reaching definition sites}: which numbered definition sites can
      reach each block's entry along some path (forward, union);
    - {e must-defined registers}: which registers have a definition on
      {e every} path from the entry to each block's entry (forward,
      intersection) — what def-before-use checking and the uninitialized-
      read lint rule key on.

    Pass a graph restricted to reachable blocks ({!Dataflow.restrict}) when
    facts along unreachable edges must not weaken the must-analysis. *)

open Ir
module Int_set : Set.S with type elt = int

(** One definition site: [reg] is defined by the instruction at position
    [index] of block [block]. *)
type site = { block : int; index : int; reg : Reg.t }

type t = {
  sites : site array;  (** site id -> site *)
  reach_in : Int_set.t array;
      (** site ids possibly reaching each block's entry *)
  must_defined_in : Reg.Set.t array;
      (** registers defined on every path to each block's entry *)
  stats : Dataflow.stats;  (** combined visits of both solves *)
}

val solve :
  ?max_visits:int -> graph:Dataflow.graph -> instrs:Rtl.instr list array -> unit -> t

(** Uses of [keep]-eligible registers that are not defined on every path
    from the entry, as [(block, instruction index, register)] in program
    order.  Only blocks accepted by [reachable] are scanned; definitions
    earlier in the same block count. *)
val uninitialized_uses :
  t ->
  instrs:Rtl.instr list array ->
  keep:(Reg.t -> bool) ->
  reachable:(int -> bool) ->
  (int * int * Reg.t) list
