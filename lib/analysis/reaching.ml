open Ir
module Int_set = Set.Make (Int)

type site = { block : int; index : int; reg : Reg.t }

type t = {
  sites : site array;
  reach_in : Int_set.t array;
  must_defined_in : Reg.Set.t array;
  stats : Dataflow.stats;
}

module May = Dataflow.Solver (struct
  type t = Int_set.t

  let equal = Int_set.equal
  let join = Int_set.union
end)

module Must = Dataflow.Solver (struct
  type t = Reg.Set.t

  let equal = Reg.Set.equal
  let join = Reg.Set.inter
end)

let solve ?max_visits ~graph ~instrs () =
  let n = Array.length instrs in
  (* Number every definition site, index them by register, and remember
     the last site of each register per block. *)
  let sites = ref [] and next = ref 0 in
  let sites_of_reg = Hashtbl.create 64 in
  let defs = Array.make n Reg.Set.empty in
  let last = Array.init n (fun _ -> Hashtbl.create 8) in
  Array.iteri
    (fun block is ->
      List.iteri
        (fun index i ->
          Reg.Set.iter
            (fun reg ->
              let id = !next in
              incr next;
              sites := { block; index; reg } :: !sites;
              Hashtbl.replace sites_of_reg reg
                (Int_set.add id
                   (Option.value ~default:Int_set.empty
                      (Hashtbl.find_opt sites_of_reg reg)));
              Hashtbl.replace last.(block) reg id;
              defs.(block) <- Reg.Set.add reg defs.(block))
            (Rtl.defs i))
        is)
    instrs;
  let sites = Array.of_list (List.rev !sites) in
  let all_of reg =
    Option.value ~default:Int_set.empty (Hashtbl.find_opt sites_of_reg reg)
  in
  (* Per-block gen/kill over sites: only the last definition of a register
     in a block survives to its exit; every definition kills the register's
     other sites. *)
  let gen = Array.make n Int_set.empty in
  let kill = Array.make n Int_set.empty in
  Array.iteri
    (fun b tbl ->
      Hashtbl.iter
        (fun reg sid ->
          gen.(b) <- Int_set.add sid gen.(b);
          kill.(b) <- Int_set.union kill.(b) (Int_set.remove sid (all_of reg)))
        tbl)
    last;
  let may =
    May.solve ~name:"reaching" ?max_visits ~direction:Dataflow.Forward ~graph
      ~empty:Int_set.empty
      ~init:(fun _ -> Int_set.empty)
      ~transfer:(fun b inb -> Int_set.union gen.(b) (Int_set.diff inb kill.(b)))
      ()
  in
  let universe = Array.fold_left Reg.Set.union Reg.Set.empty defs in
  let must =
    Must.solve ~name:"reaching" ?max_visits ~direction:Dataflow.Forward ~graph
      ~empty:Reg.Set.empty
      ~init:(fun _ -> universe)
      ~transfer:(fun b inb -> Reg.Set.union inb defs.(b))
      ()
  in
  {
    sites;
    reach_in = may.May.input;
    must_defined_in = must.Must.input;
    stats = { Dataflow.visits = may.May.stats.visits + must.Must.stats.visits };
  }

let uninitialized_uses t ~instrs ~keep ~reachable =
  let errs = ref [] in
  Array.iteri
    (fun b is ->
      if reachable b then begin
        let defined = ref t.must_defined_in.(b) in
        List.iteri
          (fun k i ->
            Reg.Set.iter
              (fun r ->
                if keep r && not (Reg.Set.mem r !defined) then
                  errs := (b, k, r) :: !errs)
              (Rtl.uses i);
            defined := Reg.Set.union !defined (Rtl.defs i))
          is
      end)
    instrs;
  List.rev !errs
