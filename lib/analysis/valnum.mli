(** Versioned local value numbering: the fact domain of [Opt.Cse].

    The state tables available expressions (register computations and
    memory loads) keyed with the {e version} of every register they
    mention, so redefinitions invalidate entries without explicit killing;
    loads additionally embed a memory version bumped by stores and calls.

    States form the lattice [Opt.Cse] solves over the extended-basic-block
    forest with {!Dataflow}: within an EBB a block inherits its unique
    predecessor's exit state; everywhere else propagation restarts from
    {!empty} (which is what {!join} returns for disagreeing states). *)

open Ir

type state

val empty : state
val equal : state -> state -> bool

(** [join a b] is [a] when the states agree and {!empty} otherwise —
    deliberately pessimistic, because value numbers are only propagated
    along single-predecessor edges where no real join ever happens. *)
val join : state -> state -> state

(** State evolution across one instruction, without rewriting. *)
val step : state -> Rtl.instr -> state

(** [rewrite st i] is [(st', i', changed)]: the state after [i], and [i]
    rewritten to a register move when its key is available in a register
    whose version still matches. *)
val rewrite : state -> Rtl.instr -> state * Rtl.instr * bool
