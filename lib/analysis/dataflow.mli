(** Generic monotone dataflow framework.

    One worklist solver serves every analysis in the compiler: the client
    supplies a join-semilattice of facts, a flow graph, and a per-node
    transfer function; the solver iterates to a fixpoint in reverse
    postorder (postorder for backward problems) and returns the fact
    arrays.  {!Live}, {!Reaching}, {!Avail}, {!Copyconst} and the
    value-numbering walk of [Opt.Cse] are all instances.

    The graph is deliberately abstract (three functions and an order) so
    the engine has no dependency on [Flow]: [Flow.Cfg.graph] adapts a CFG,
    and clients may restrict or rewire edges (see {!restrict} and the EBB
    forest in [Opt.Cse]) without touching the function under analysis. *)

type direction = Forward | Backward

type graph = {
  nodes : int;  (** node count; nodes are [0 .. nodes-1], entry is [0] *)
  succs : int -> int list;
  preds : int -> int list;
  rpo : int array;
      (** reverse postorder of the forward traversal from the entry;
          unreachable nodes may appear anywhere after the reachable ones *)
}

(** Drop every edge touching a node [keep] rejects (the node itself stays,
    isolated).  Must-analyses use this to ignore unreachable predecessors,
    whose facts would otherwise leak into a meet over real paths. *)
val restrict : graph -> keep:(int -> bool) -> graph

type stats = { visits : int  (** node evaluations until the fixpoint *) }

(** Raised when the visit budget is exhausted before a fixpoint: the
    iteration-bound diagnostic.  Monotone transfer functions on
    finite-height lattices always converge, so this fires only on a buggy
    (non-monotone) analysis — the pass boundary in [Opt.Driver] catches it
    and quarantines the offending pass. *)
exception Diverged of string

module type LATTICE = sig
  type t

  val equal : t -> t -> bool

  (** Confluence operator ([union] for may-problems, [inter] for
      must-problems).  Only ever applied to facts flowing into the same
      node, so it need not be defined on unrelated values. *)
  val join : t -> t -> t
end

module Solver (L : LATTICE) : sig
  type result = {
    input : L.t array;
        (** per-node confluence of the facts flowing in: block-entry facts
            for a forward problem, block-exit facts for a backward one *)
    output : L.t array;  (** [transfer] applied to [input] *)
    stats : stats;
  }

  (** [solve ~direction ~graph ~empty ~init ~transfer ()] runs the
      worklist to a fixpoint.

      - [empty] is the input fact of a node with no in-edges (the entry
        for forward problems, exit nodes for backward ones);
      - [init n] is node [n]'s output fact before its first evaluation —
        bottom for may-problems, the universe for must-problems;
      - [transfer n fact] pushes a fact through node [n].

      @raise Diverged after [max_visits] node evaluations (default
      [max 4096 ((nodes + 1) * 256)]); [name] identifies the analysis in
      the divergence message (and in the [analysis-diverged] diagnostic
      the catchers emit). *)
  val solve :
    ?name:string ->
    ?max_visits:int ->
    direction:direction ->
    graph:graph ->
    empty:L.t ->
    init:(int -> L.t) ->
    transfer:(int -> L.t -> L.t) ->
    unit ->
    result
end
