(** Backward liveness over registers (including {!Ir.Reg.Cc}), as an
    instance of {!Dataflow}.  [Flow.Liveness] wraps this for [Func.t]
    callers; the raw interface works on any block array + graph. *)

open Ir

type t = {
  live_in : Reg.Set.t array;  (** registers live on entry to each block *)
  live_out : Reg.Set.t array;  (** registers live on exit from each block *)
  stats : Dataflow.stats;
}

(** One backward transfer step: liveness before an instruction given
    liveness after it. *)
val step : Rtl.instr -> Reg.Set.t -> Reg.Set.t

(** [step] folded over a whole block, last instruction first. *)
val block_transfer : Rtl.instr list -> Reg.Set.t -> Reg.Set.t

val solve :
  ?max_visits:int -> graph:Dataflow.graph -> instrs:Rtl.instr list array -> unit -> t
