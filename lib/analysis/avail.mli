(** Available expressions, as an instance of {!Dataflow}.

    The fact at a block's entry is the set of pure register expressions
    ([Binop]/[Unop]/[Lea] over registers and immediates) computed on every
    path from the entry and not invalidated since.  [Opt.Gcse] builds its
    redundancy elimination on these facts; the key machinery ([key_of],
    [generates], [killed_by]) is shared so clients replay the same
    per-instruction updates the solver used. *)

open Ir

(** Canonical key of a pure register expression (commutative operands are
    ordered). *)
type key =
  | Kbinop of Rtl.binop * Rtl.operand * Rtl.operand
  | Kunop of Rtl.unop * Rtl.operand
  | Klea of Rtl.addr

module Key_set : Set.S with type elt = key
module Key_map : Map.S with type key = key

(** The key an instruction computes into a register, if any. *)
val key_of : Rtl.instr -> (Reg.t * key) option

(** Like {!key_of}, but [None] also for self-referencing computations
    ([d := d op c], the CISC two-address shape), which kill their own key
    the moment they execute and so never make it available. *)
val generates : Rtl.instr -> (Reg.t * key) option

(** Keys of [universe] invalidated by the instruction: every expression
    reading a register it defines.  The reference definition — a full
    scan of [universe] per query; hot paths use a prebuilt {!index}. *)
val killed_by : Key_set.t -> Rtl.instr -> Key_set.t

(** Inverted universe: register -> keys reading it. *)
type index

val kill_index : Key_set.t -> index

(** [kills index i] equals [killed_by universe i] for the universe the
    index was built from, in one map lookup per defined register. *)
val kills : index -> Rtl.instr -> Key_set.t

type t = {
  universe : Key_set.t;  (** every key computed anywhere in the function *)
  index : index;  (** {!kill_index} of [universe] *)
  avail_in : Key_set.t array;  (** keys available at each block's entry *)
  stats : Dataflow.stats;
}

val solve :
  ?max_visits:int -> graph:Dataflow.graph -> instrs:Rtl.instr list array -> unit -> t
