(** Copy and constant facts, as an instance of {!Dataflow}.

    A forward must-analysis mapping registers to what is known about their
    value at each program point: a compile-time constant, or a copy of
    another (still unmodified) register.  Facts meet by agreement — a
    register keeps a fact at a join only when every incoming edge carries
    the same one.  The lint rule for statically decidable conditional
    branches evaluates [Cmp] operands against these facts. *)

open Ir

type value = Const of int | Copy of Reg.t

(** Facts at a program point.  [Top] means the point is unreached
    (confluence identity); an environment maps registers to known values,
    absent registers being unknown. *)
type facts

val top : facts
val entry : facts

(** [false] only for {!top}. *)
val reached : facts -> bool

(** The fact recorded for a register, with copy chains resolved to a
    constant when possible. *)
val lookup : facts -> Reg.t -> value option

(** The compile-time integer value of an operand at this point, if known. *)
val operand_const : facts -> Rtl.operand -> int option

(** Push facts through one instruction. *)
val step : Rtl.instr -> facts -> facts

val equal : facts -> facts -> bool
val join : facts -> facts -> facts

type t = {
  fact_in : facts array;  (** facts at each block's entry *)
  stats : Dataflow.stats;
}

val solve :
  ?max_visits:int -> graph:Dataflow.graph -> instrs:Rtl.instr list array -> unit -> t
