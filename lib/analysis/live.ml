open Ir

type t = {
  live_in : Reg.Set.t array;
  live_out : Reg.Set.t array;
  stats : Dataflow.stats;
}

let step instr live_after =
  Reg.Set.union (Rtl.uses instr) (Reg.Set.diff live_after (Rtl.defs instr))

let block_transfer instrs live_out =
  List.fold_right (fun i acc -> step i acc) instrs live_out

module S = Dataflow.Solver (struct
  type t = Reg.Set.t

  let equal = Reg.Set.equal
  let join = Reg.Set.union
end)

let solve ?max_visits ~graph ~instrs () =
  let r =
    S.solve ~name:"live" ?max_visits ~direction:Dataflow.Backward ~graph
      ~empty:Reg.Set.empty
      ~init:(fun _ -> Reg.Set.empty)
      ~transfer:(fun i out -> block_transfer instrs.(i) out)
      ()
  in
  (* Backward orientation: the solver's [input] is the confluence over
     successors (live-out), its [output] the transferred fact (live-in). *)
  { live_in = r.S.output; live_out = r.S.input; stats = r.S.stats }
