open Ir

(* Versioned operands make stale table entries unmatchable. *)
type varg =
  | Vimm of int
  | Vreg of Reg.t * int  (** register and its version at key creation *)

type vaddr =
  | Vbased of Reg.t * int * int
  | Vindexed of Reg.t * int * Reg.t * int * int * int
  | Vabs of string * int

type key =
  | Kbinop of Rtl.binop * varg * varg
  | Kunop of Rtl.unop * varg
  | Klea of vaddr
  | Kload of Rtl.width * vaddr * int  (** memory version *)

module Key_map = Map.Make (struct
  type t = key

  let compare = compare
end)

type state = {
  versions : int Reg.Map.t;
  memver : int;
  table : (Reg.t * int) Key_map.t;  (** key -> holding reg, reg version *)
}

let empty = { versions = Reg.Map.empty; memver = 0; table = Key_map.empty }

let equal a b =
  a.memver = b.memver
  && Reg.Map.equal Int.equal a.versions b.versions
  && Key_map.equal
       (fun (r1, v1) (r2, v2) -> Reg.equal r1 r2 && v1 = v2)
       a.table b.table

let join a b = if equal a b then a else empty

let version st r =
  match Reg.Map.find_opt r st.versions with Some v -> v | None -> 0

let bump st r =
  { st with versions = Reg.Map.add r (version st r + 1) st.versions }

let varg st = function
  | Rtl.Reg r -> Some (Vreg (r, version st r))
  | Rtl.Imm n -> Some (Vimm n)
  | Rtl.Mem _ -> None

let vaddr st = function
  | Rtl.Based (r, d) -> Vbased (r, version st r, d)
  | Rtl.Indexed (b, i, s, d) -> Vindexed (b, version st b, i, version st i, s, d)
  | Rtl.Abs (s, o) -> Vabs (s, o)

(* The key computed by an instruction into a register, if any. *)
let key_of st (i : Rtl.instr) =
  match i with
  | Rtl.Binop (op, Lreg d, a, b) -> (
    match varg st a, varg st b with
    | Some va, Some vb ->
      let va, vb =
        (* Canonical order for commutative operators. *)
        if Rtl.commutative op && compare vb va < 0 then (vb, va) else (va, vb)
      in
      Some (d, Kbinop (op, va, vb))
    | _ -> None)
  | Rtl.Unop (op, Lreg d, a) -> (
    match varg st a with Some va -> Some (d, Kunop (op, va)) | None -> None)
  | Rtl.Lea (d, a) -> Some (d, Klea (vaddr st a))
  | Rtl.Move (Lreg d, Mem (w, a)) -> Some (d, Kload (w, vaddr st a, st.memver))
  | _ -> None

let after_effects st i =
  let st = Reg.Set.fold (fun r st -> bump st r) (Rtl.defs i) st in
  if Rtl.writes_mem i || (match i with Rtl.Call _ -> true | _ -> false) then
    { st with memver = st.memver + 1 }
  else st

let rewrite st i =
  match key_of st i with
  | None -> (after_effects st i, i, false)
  | Some (d, key) -> (
    match Key_map.find_opt key st.table with
    | Some (r, rv) when version st r = rv && not (Reg.equal r d) ->
      let st = after_effects st i in
      (st, Rtl.Move (Lreg d, Reg r), true)
    | _ ->
      let st = after_effects st i in
      (* Record after bumping: d's new version holds the value. *)
      let st = { st with table = Key_map.add key (d, version st d) st.table } in
      (st, i, false))

let step st i =
  let st, _, _ = rewrite st i in
  st
