open Ir

type value = Const of int | Copy of Reg.t

type facts = Top | Env of value Reg.Map.t

let top = Top
let entry = Env Reg.Map.empty
let reached = function Top -> false | Env _ -> true

let value_equal a b =
  match a, b with
  | Const x, Const y -> x = y
  | Copy r, Copy s -> Reg.equal r s
  | Const _, Copy _ | Copy _, Const _ -> false

let equal a b =
  match a, b with
  | Top, Top -> true
  | Env m1, Env m2 -> Reg.Map.equal value_equal m1 m2
  | Top, Env _ | Env _, Top -> false

let join a b =
  match a, b with
  | Top, x | x, Top -> x
  | Env m1, Env m2 ->
    Env
      (Reg.Map.merge
         (fun _ v1 v2 ->
           match v1, v2 with
           | Some x, Some y when value_equal x y -> Some x
           | _ -> None)
         m1 m2)

(* Resolve copy chains to a constant when one terminates in a known value.
   Chains are acyclic by construction (a def kills copies of the defined
   register), but a depth guard keeps this robust on arbitrary maps. *)
let lookup facts r =
  match facts with
  | Top -> None
  | Env m ->
    let rec go depth r =
      if depth > 8 then None
      else
        match Reg.Map.find_opt r m with
        | Some (Const n) -> Some (Const n)
        | Some (Copy s) -> (
          match go (depth + 1) s with
          | Some (Const n) -> Some (Const n)
          | _ -> Some (Copy s))
        | None -> None
    in
    go 0 r

let const_of facts r =
  match lookup facts r with Some (Const n) -> Some n | _ -> None

let operand_const facts = function
  | Rtl.Imm n -> Some n
  | Rtl.Reg r -> const_of facts r
  | Rtl.Mem _ -> None

(* Remove facts about the defined registers and every copy of them. *)
let kill_defs i m =
  let ds = Rtl.defs i in
  if Reg.Set.is_empty ds then m
  else
    Reg.Map.filter
      (fun r v ->
        (not (Reg.Set.mem r ds))
        && match v with Copy s -> not (Reg.Set.mem s ds) | Const _ -> true)
      m

let step i facts =
  match facts with
  | Top -> Top
  | Env m -> (
    let before = Env m in
    let m' = kill_defs i m in
    match i with
    | Rtl.Move (Lreg d, Imm n) -> Env (Reg.Map.add d (Const n) m')
    | Rtl.Move (Lreg d, Reg s) when not (Reg.equal d s) -> (
      match const_of before s with
      | Some n -> Env (Reg.Map.add d (Const n) m')
      | None -> Env (Reg.Map.add d (Copy s) m'))
    | Rtl.Binop (op, Lreg d, a, b) -> (
      match operand_const before a, operand_const before b with
      | Some x, Some y -> (
        match Rtl.eval_binop op x y with
        | v -> Env (Reg.Map.add d (Const v) m')
        | exception Division_by_zero -> Env m')
      | _ -> Env m')
    | Rtl.Unop (op, Lreg d, a) -> (
      match operand_const before a with
      | Some x -> Env (Reg.Map.add d (Const (Rtl.eval_unop op x)) m')
      | None -> Env m')
    | _ -> Env m')

type t = { fact_in : facts array; stats : Dataflow.stats }

module S = Dataflow.Solver (struct
  type t = facts

  let equal = equal
  let join = join
end)

let solve ?max_visits ~graph ~instrs () =
  let r =
    S.solve ~name:"copyconst" ?max_visits ~direction:Dataflow.Forward ~graph
      ~empty:entry
      ~init:(fun _ -> top)
      ~transfer:(fun b f -> List.fold_left (fun f i -> step i f) f instrs.(b))
      ()
  in
  { fact_in = r.S.input; stats = r.S.stats }
