type ('k, 'v) t = { size : int; mutable entries : ('k * 'v) list }

let create ?(size = 8) () = { size; entries = [] }

let find t k compute =
  match List.assq_opt k t.entries with
  | Some v -> v
  | None ->
    let v = compute k in
    let kept =
      if List.length t.entries >= t.size then
        List.filteri (fun i _ -> i < t.size - 1) t.entries
      else t.entries
    in
    t.entries <- (k, v) :: kept;
    v
