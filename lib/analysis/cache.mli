(** Per-function fact caching.

    A tiny physical-equality memo table: analyses are pure functions of an
    immutable IR value ([Flow.Func.t] is rebuilt by [with_blocks] on every
    change), so physical identity of the key is a sound cache key.  Several
    passes per pipeline iteration ask for liveness of the same unchanged
    function; the cache turns all but the first into a lookup.

    The table is bounded (FIFO eviction) so it never pins more than a few
    recent functions. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

(** [find t k compute] returns the cached value for [k] (compared with
    [==]) or runs [compute k], stores and returns the result. *)
val find : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
