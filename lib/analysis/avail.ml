open Ir

type key =
  | Kbinop of Rtl.binop * Rtl.operand * Rtl.operand
  | Kunop of Rtl.unop * Rtl.operand
  | Klea of Rtl.addr

module Key_set = Set.Make (struct
  type t = key

  let compare = compare
end)

module Key_map = Map.Make (struct
  type t = key

  let compare = compare
end)

let pure_operand = function
  | Rtl.Reg _ | Rtl.Imm _ -> true
  | Rtl.Mem _ -> false

let pure_addr = function Rtl.Based _ | Rtl.Indexed _ | Rtl.Abs _ -> true

let key_of (i : Rtl.instr) =
  match i with
  | Binop (op, Lreg d, a, b) when pure_operand a && pure_operand b ->
    let a, b =
      if Rtl.commutative op && compare b a < 0 then (b, a) else (a, b)
    in
    Some (d, Kbinop (op, a, b))
  | Unop (op, Lreg d, a) when pure_operand a -> Some (d, Kunop (op, a))
  | Lea (d, a) when pure_addr a -> Some (d, Klea a)
  | Binop _ | Unop _ | Lea _ | Move _ | Cmp _ | Branch _ | Jump _ | Ijump _
  | Call _ | Ret | Enter _ | Leave | Nop ->
    None

let key_regs = function
  | Kbinop (_, a, b) -> Reg.Set.union (Rtl.operand_regs a) (Rtl.operand_regs b)
  | Kunop (_, a) -> Rtl.operand_regs a
  | Klea a -> Rtl.addr_regs a

let generates i =
  match key_of i with
  | Some (d, k) when not (Reg.Set.mem d (key_regs k)) -> Some (d, k)
  | Some _ | None -> None

let killed_by universe (i : Rtl.instr) =
  let defs = Rtl.defs i in
  if Reg.Set.is_empty defs then Key_set.empty
  else
    Key_set.filter
      (fun k -> not (Reg.Set.is_empty (Reg.Set.inter (key_regs k) defs)))
      universe

(* [killed_by] rescans the whole universe per instruction — the kill-set
   construction and the clients' replay loops made it the optimizer's
   hottest spot on expression-heavy functions.  Inverting the universe
   once (register -> keys reading it) turns each query into a map lookup
   per defined register; for the overwhelmingly common single-def
   instruction the result is the precomputed set itself, shared, with no
   set construction at all.  [kills] agrees with [killed_by] by
   construction (a key is in [index(r)] iff [r] is in its [key_regs]);
   the analysis tests pin the two to each other. *)
type index = Key_set.t Reg.Map.t

let kill_index universe =
  Key_set.fold
    (fun k acc ->
      Reg.Set.fold
        (fun r acc ->
          Reg.Map.update r
            (function
              | None -> Some (Key_set.singleton k)
              | Some s -> Some (Key_set.add k s))
            acc)
        (key_regs k) acc)
    universe Reg.Map.empty

let kills index (i : Rtl.instr) =
  Reg.Set.fold
    (fun r acc ->
      match Reg.Map.find_opt r index with
      | Some s -> if Key_set.is_empty acc then s else Key_set.union s acc
      | None -> acc)
    (Rtl.defs i) Key_set.empty

type t = {
  universe : Key_set.t;
  index : index;
  avail_in : Key_set.t array;
  stats : Dataflow.stats;
}

module S = Dataflow.Solver (struct
  type t = Key_set.t

  let equal = Key_set.equal
  let join = Key_set.inter
end)

let solve ?max_visits ~graph ~instrs () =
  let n = Array.length instrs in
  let universe =
    Array.fold_left
      (fun acc is ->
        List.fold_left
          (fun acc i ->
            match key_of i with
            | Some (_, k) -> Key_set.add k acc
            | None -> acc)
          acc is)
      Key_set.empty instrs
  in
  if Key_set.is_empty universe then
    {
      universe;
      index = Reg.Map.empty;
      avail_in = Array.make n Key_set.empty;
      stats = { Dataflow.visits = 0 };
    }
  else begin
    let index = kill_index universe in
    let gen = Array.make n Key_set.empty in
    let kill = Array.make n Key_set.empty in
    Array.iteri
      (fun bi is ->
        List.iter
          (fun i ->
            let dead = kills index i in
            gen.(bi) <- Key_set.diff gen.(bi) dead;
            kill.(bi) <- Key_set.union kill.(bi) dead;
            match generates i with
            | Some (_, k) ->
              gen.(bi) <- Key_set.add k gen.(bi);
              kill.(bi) <- Key_set.remove k kill.(bi)
            | None -> ())
          is)
      instrs;
    let r =
      S.solve ~name:"avail" ?max_visits ~direction:Dataflow.Forward ~graph
        ~empty:Key_set.empty
        ~init:(fun _ -> universe)
        ~transfer:(fun b inb ->
          Key_set.union gen.(b) (Key_set.diff inb kill.(b)))
        ()
    in
    { universe; index; avail_in = r.S.input; stats = r.S.stats }
  end
