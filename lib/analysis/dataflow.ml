type direction = Forward | Backward

type graph = {
  nodes : int;
  succs : int -> int list;
  preds : int -> int list;
  rpo : int array;
}

let restrict g ~keep =
  {
    g with
    succs = (fun i -> if keep i then List.filter keep (g.succs i) else []);
    preds = (fun i -> if keep i then List.filter keep (g.preds i) else []);
  }

type stats = { visits : int }

exception Diverged of string

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Solver (L : LATTICE) = struct
  type result = { input : L.t array; output : L.t array; stats : stats }

  let solve ?name ?max_visits ~direction ~graph ~empty ~init ~transfer () =
    let n = graph.nodes in
    let sources, dependents =
      match direction with
      | Forward -> (graph.preds, graph.succs)
      | Backward -> (graph.succs, graph.preds)
    in
    let order =
      let a = Array.copy graph.rpo in
      (match direction with
      | Forward -> ()
      | Backward ->
        (* Postorder: dependencies of a backward problem point the other
           way, so seed the worklist sink-first. *)
        let len = Array.length a in
        for i = 0 to (len / 2) - 1 do
          let t = a.(i) in
          a.(i) <- a.(len - 1 - i);
          a.(len - 1 - i) <- t
        done);
      a
    in
    let input = Array.make n empty in
    let output = Array.init n init in
    let inq = Array.make n false in
    let q = Queue.create () in
    Array.iter
      (fun i ->
        Queue.add i q;
        inq.(i) <- true)
      order;
    let budget =
      match max_visits with
      | Some m -> m
      | None -> max 4096 ((n + 1) * 256)
    in
    let visits = ref 0 in
    while not (Queue.is_empty q) do
      let i = Queue.pop q in
      inq.(i) <- false;
      incr visits;
      if !visits > budget then
        raise
          (Diverged
             (Printf.sprintf
                "%sno fixpoint after %d node visits (%d nodes); transfer \
                 function is not monotone or the lattice has unbounded height"
                (match name with
                | Some a -> Printf.sprintf "analysis %s: " a
                | None -> "")
                !visits n));
      let inp =
        match sources i with
        | [] -> empty
        | s :: rest ->
          List.fold_left (fun acc j -> L.join acc output.(j)) output.(s) rest
      in
      input.(i) <- inp;
      let out = transfer i inp in
      if not (L.equal out output.(i)) then begin
        output.(i) <- out;
        List.iter
          (fun j ->
            if not inq.(j) then begin
              Queue.add j q;
              inq.(j) <- true
            end)
          (dependents i)
      end
    done;
    { input; output; stats = { visits = !visits } }
end
