type kind = Cisc | Risc

type t = { kind : kind; name : string; short : string; delay_slots : bool }

let cisc =
  { kind = Cisc; name = "m68020-like CISC"; short = "cisc"; delay_slots = false }

let risc =
  { kind = Risc; name = "SPARC-like RISC"; short = "risc"; delay_slots = true }

let all = [ risc; cisc ]

let of_short s = List.find_opt (fun m -> String.equal m.short s) all

let pp ppf m = Format.pp_print_string ppf m.name

let same_loc_operand (l : Rtl.loc) (o : Rtl.operand) =
  match l, o with
  | Lreg r, Reg r' -> Reg.equal r r'
  | Lmem (w, a), Mem (w', a') -> w = w' && a = a'
  | (Lreg _ | Lmem _), (Reg _ | Imm _ | Mem _) -> false

(* --- Sizes --- *)

(* CISC extension-word bytes contributed by an operand. *)
let cisc_imm_ext n = if n >= -32768 && n <= 32767 then 2 else 4

let cisc_addr_ext = function
  | Rtl.Based (_, 0) -> 0
  | Rtl.Based (_, d) -> if d >= -32768 && d <= 32767 then 2 else 6
  | Rtl.Indexed (_, _, _, d) -> if d >= -128 && d <= 127 then 2 else 4
  | Rtl.Abs _ -> 4

let cisc_operand_ext = function
  | Rtl.Reg _ -> 0
  | Rtl.Imm n -> cisc_imm_ext n
  | Rtl.Mem (_, a) -> cisc_addr_ext a

let cisc_loc_ext = function
  | Rtl.Lreg _ -> 0
  | Rtl.Lmem (_, a) -> cisc_addr_ext a

(* "Quick" immediates (addq/subq/moveq-style) encode in the opcode word. *)
let quick_imm = function
  | Rtl.Imm n -> n >= 1 && n <= 8
  | Rtl.Reg _ | Rtl.Mem _ -> false

let cisc_size (i : Rtl.instr) =
  match i with
  | Move (l, s) -> 2 + cisc_loc_ext l + cisc_operand_ext s
  | Lea (_, a) -> 2 + cisc_addr_ext a
  | Binop ((Add | Sub), l, _, b) when quick_imm b -> 2 + cisc_loc_ext l
  | Binop (_, l, a, b) ->
    (* Two-address: the first source is the destination and contributes no
       encoding of its own. *)
    ignore a;
    2 + cisc_loc_ext l + cisc_operand_ext b
  | Unop (_, l, _) -> 2 + cisc_loc_ext l
  | Cmp (a, b) -> 2 + cisc_operand_ext a + cisc_operand_ext b
  | Branch _ -> 4
  | Jump _ -> 4
  | Ijump _ -> 4
  | Call _ -> 4
  | Ret -> 2
  | Enter _ -> 4
  | Leave -> 2
  | Nop -> 2

let instr_size m i = match m.kind with Risc -> 4 | Cisc -> cisc_size i

(* --- Legality --- *)

let risc_addr_ok = function
  | Rtl.Based (_, d) -> d >= -4096 && d <= 4095
  | Rtl.Indexed _ | Rtl.Abs _ -> false

let risc_legal (i : Rtl.instr) =
  match i with
  | Move (Lreg _, (Reg _ | Imm _)) -> true
  | Move (Lreg _, Mem (_, a)) -> risc_addr_ok a
  | Move (Lmem (_, a), Reg _) -> risc_addr_ok a
  | Move (Lmem _, (Imm _ | Mem _)) -> false
  | Lea (_, (Based _ | Abs _)) -> true
  | Lea (_, Indexed _) -> false
  | Binop (_, Lreg _, Reg _, (Reg _ | Imm _)) -> true
  | Binop _ -> false
  | Unop (_, Lreg _, Reg _) -> true
  | Unop _ -> false
  | Cmp (Reg _, (Reg _ | Imm _)) -> true
  | Cmp _ -> false
  | Branch _ | Jump _ | Ijump _ | Call _ | Ret | Enter _ | Leave | Nop -> true

let cisc_addr_ok = function
  | Rtl.Based _ | Rtl.Abs _ -> true
  | Rtl.Indexed (_, _, s, _) -> s = 1 || s = 2 || s = 4

let cisc_operand_ok = function
  | Rtl.Reg _ | Rtl.Imm _ -> true
  | Rtl.Mem (_, a) -> cisc_addr_ok a

let cisc_loc_ok = function
  | Rtl.Lreg _ -> true
  | Rtl.Lmem (_, a) -> cisc_addr_ok a

let is_mem_operand = function
  | Rtl.Mem _ -> true
  | Rtl.Reg _ | Rtl.Imm _ -> false

let is_mem_loc = function Rtl.Lmem _ -> true | Rtl.Lreg _ -> false

let cisc_legal (i : Rtl.instr) =
  match i with
  | Move (l, s) ->
    (* Plain moves may be memory-to-memory (68020 MOVE). *)
    cisc_loc_ok l && cisc_operand_ok s
  | Lea (_, a) -> cisc_addr_ok a
  | Binop (_, l, a, b) ->
    (* Two-address with at most one distinct memory operand; the
       destination/first-source pair counts once. *)
    same_loc_operand l a && cisc_loc_ok l && cisc_operand_ok b
    && not (is_mem_loc l && is_mem_operand b)
  | Unop (_, l, a) -> same_loc_operand l a && cisc_loc_ok l
  | Cmp (a, b) ->
    cisc_operand_ok a && cisc_operand_ok b
    && not (is_mem_operand a && is_mem_operand b)
  | Branch _ | Jump _ | Ijump _ | Call _ | Ret | Enter _ | Leave | Nop -> true

let legal_instr m i =
  match m.kind with Risc -> risc_legal i | Cisc -> cisc_legal i
