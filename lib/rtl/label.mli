(** Code labels: targets of branches and jumps.

    A label names exactly one basic block of a function.  Labels are pure
    identifiers; their printable form is ["L<n>"]. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [of_int n] is the label with identity [n]; mainly for tests. *)
val of_int : int -> t

val to_int : t -> int

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** A stateful supply of fresh labels. *)
module Supply : sig
  type label := t
  type t

  val create : unit -> t

  (** [create_from n] yields labels numbered [n], [n+1], ... *)
  val create_from : int -> t

  val fresh : t -> label

  (** Next index that [fresh] would return. *)
  val next_index : t -> int
end
