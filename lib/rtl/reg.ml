type t = Virt of int | Phys of int | Cc

let equal a b =
  match a, b with
  | Virt i, Virt j | Phys i, Phys j -> i = j
  | Cc, Cc -> true
  | (Virt _ | Phys _ | Cc), _ -> false

let compare a b =
  let tag = function Virt _ -> 0 | Phys _ -> 1 | Cc -> 2 in
  match a, b with
  | Virt i, Virt j | Phys i, Phys j -> Int.compare i j
  | _ -> Int.compare (tag a) (tag b)

let hash = function Virt i -> (i * 4) + 1 | Phys i -> (i * 4) + 2 | Cc -> 3
let is_virt = function Virt _ -> true | Phys _ | Cc -> false
let is_phys = function Phys _ -> true | Virt _ | Cc -> false
let to_string = function
  | Virt i -> Printf.sprintf "v%d" i
  | Phys i -> Printf.sprintf "r%d" i
  | Cc -> "cc"

let pp ppf r = Format.pp_print_string ppf (to_string r)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Supply = struct
  type t = int ref

  let create () = ref 0
  let create_from n = ref n

  let fresh supply =
    let i = !supply in
    incr supply;
    Virt i

  let next_index supply = !supply
end
