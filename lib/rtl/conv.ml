let num_regs = 22
let rv = Reg.Phys 0
let fp = Reg.Phys 20
let sp = Reg.Phys 21
let arg_regs = List.map (fun i -> Reg.Phys i) [ 1; 2; 3; 4; 5; 6 ]
let max_args = List.length arg_regs

let arg_reg i =
  match List.nth_opt arg_regs i with
  | Some r -> r
  | None -> invalid_arg "Conv.arg_reg"

(* r0-r11 caller-save, r12-r19 callee-save, r20/r21 fp/sp. *)
let caller_save =
  Reg.Set.of_list (List.init 12 (fun i -> Reg.Phys i))

let callee_save =
  Reg.Set.of_list (List.init 8 (fun i -> Reg.Phys (12 + i)))

let allocatable = List.init 20 (fun i -> Reg.Phys i)
