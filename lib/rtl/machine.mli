(** Target machine models.

    Two models in the spirit of the paper's two targets:

    - {!cisc}: Motorola-68020-like.  Two-address arithmetic, at most one
      memory operand per instruction (plain moves may be memory-to-memory),
      indexed addressing, variable instruction sizes, no delay slots.
    - {!risc}: SPARC-like.  Three-address register arithmetic, load/store
      only through [Based] addresses (globals need an address-forming [Lea]
      first), fixed 4-byte instructions, one delay slot after every transfer
      of control.

    {!legal_instr} is the contract between the legalization pass and the
    peephole combiner: codegen and every optimization keep all instructions
    legal for the target. *)

type kind = Cisc | Risc

type t = private {
  kind : kind;
  name : string;  (** e.g. ["m68020-like CISC"] *)
  short : string;  (** command-line tag: ["cisc"] or ["risc"] *)
  delay_slots : bool;
}

val cisc : t
val risc : t
val all : t list

(** Look a model up by its [short] tag. *)
val of_short : string -> t option

(** Size in bytes the instruction occupies in the code stream. *)
val instr_size : t -> Rtl.instr -> int

(** Whether the instruction's operand shapes are directly encodable. *)
val legal_instr : t -> Rtl.instr -> bool

(** [same_loc_operand l o] holds when destination [l] and source [o] denote
    the same register or memory cell — the CISC two-address pattern. *)
val same_loc_operand : Rtl.loc -> Rtl.operand -> bool

val pp : Format.formatter -> t -> unit
