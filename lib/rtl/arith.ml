(* Keep the low 32 bits, then sign-extend bit 31. *)
let norm x =
  let low = x land 0xFFFFFFFF in
  if low land 0x80000000 <> 0 then low - 0x100000000 else low

let add a b = norm (a + b)
let sub a b = norm (a - b)
let mul a b = norm (a * b)
let div a b = if b = 0 then raise Division_by_zero else norm (a / b)
let rem a b = if b = 0 then raise Division_by_zero else norm (a mod b)
let logand a b = norm (a land b)
let logor a b = norm (a lor b)
let logxor a b = norm (a lxor b)
let shl a b = norm (a lsl (b land 31))
let shr a b = norm (norm a asr (b land 31))
let neg a = norm (-a)
let lognot a = norm (lnot a)
