(** Register-file layout and calling conventions.

    Both machine models share one general-purpose register file so that the
    machine-independent passes (the vast majority, as in VPO) need no
    per-target special cases.  The models differ in instruction legality and
    size, which live in {!Machine}. *)

(** Number of general-purpose registers. *)
val num_regs : int

(** Return-value register (also a caller-save temporary). *)
val rv : Reg.t

(** Frame pointer; not allocatable. *)
val fp : Reg.t

(** Stack pointer; not allocatable. *)
val sp : Reg.t

(** Argument-passing registers, in order.  Calls with more arguments than
    [List.length arg_regs] are rejected by the front end. *)
val arg_regs : Reg.t list

(** [arg_reg i] is the register carrying argument [i] (0-based).
    @raise Invalid_argument if out of range. *)
val arg_reg : int -> Reg.t

(** Maximum number of register-passed arguments. *)
val max_args : int

(** Registers a call may overwrite (includes [rv] and [arg_regs]). *)
val caller_save : Reg.Set.t

(** Registers preserved across calls; using one obliges the callee to
    save/restore it. *)
val callee_save : Reg.Set.t

(** All registers the allocator may assign, caller-save first so that values
    not live across calls prefer them. *)
val allocatable : Reg.t list
