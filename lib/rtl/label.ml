type t = int

let equal = Int.equal
let compare = Int.compare
let hash x = x
let to_string l = Printf.sprintf "L%d" l
let pp ppf l = Format.pp_print_string ppf (to_string l)
let of_int n = n
let to_int l = l

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Supply = struct
  type t = int ref

  let create () = ref 0
  let create_from n = ref n

  let fresh supply =
    let l = !supply in
    incr supply;
    l

  let next_index supply = !supply
end
