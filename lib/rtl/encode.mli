(** Branch-displacement encoding for the CISC machine.

    Selects a short (2-byte), word (4-byte, the legacy fixed size) or
    long (6-byte) form for every direct [Branch]/[Jump] in a linearized
    function, using the fixpoint-free linear-time pessimistic algorithm:
    compute addresses with every eligible transfer at its longest form,
    then commit each one to the smallest form whose range covers its
    pessimistic displacement.  Shrinking can only reduce displacements,
    so the chosen forms stay valid without relaxation iterations.

    The solver is purely static — it never changes an instruction, only
    how many bytes the assembler charges it — so a plan is attached to a
    function as advisory metadata and dropped whenever the block array
    changes. *)

type form = Short | Word | Long

val form_bytes : form -> int
val form_name : form -> string

(** Does this instruction get a displacement field?  True exactly for
    direct [Branch]/[Jump]. *)
val eligible : Rtl.instr -> bool

type plan = private {
  forms : form option array;
      (** per linear index; [None] for non-eligible instructions *)
  sizes : int array;  (** per linear index, chosen forms applied *)
  total : int;  (** code bytes under the plan *)
  fixed_total : int;  (** code bytes under the fixed-size model *)
  shorts : int;
  words : int;
  longs : int;
}

val length : plan -> int

(** A fresh copy of the per-index size table. *)
val sizes : plan -> int array

(** Solve for a linearized function: the instruction stream and the
    label->index map (as produced by the assembler's linearization). *)
val solve : Machine.t -> Rtl.instr array -> int Label.Map.t -> plan

(** Shape check: the plan was solved for a code array of this length
    with eligible instructions in exactly these positions.  The
    assembler refuses a plan that fails this. *)
val matches : plan -> Rtl.instr array -> bool

(** ["N bytes (fixed M): S short, W word, L long"]. *)
val pp_stats : Format.formatter -> plan -> unit
