(* Branch-displacement encoding for the CISC machine.

   The fixed instruction-size model gives every Branch/Jump four bytes.
   A real m68020 picks between an 8-bit, 16-bit and 32-bit displacement,
   and the classical way to pick is an iterative relaxation that starts
   everything short and grows instructions until the assignment is
   stable — worst-case quadratic.  This module implements the
   fixpoint-free linear-time alternative (Dickson's single-pass
   pessimistic assignment):

   1. assume every eligible transfer takes its LONGEST form and compute
      the resulting ("pessimistic") addresses in one prefix sum;
   2. for each eligible transfer, measure the displacement to its target
      under those addresses and commit to the smallest form that fits.

   Committing a smaller form only ever shrinks the code between a
   transfer and its target, so every real displacement is no larger in
   magnitude than the pessimistic one it was checked against — the
   chosen forms remain valid without iteration.  The price is that a
   displacement just past a form's range under pessimistic addresses
   (but inside it under final addresses) keeps the bigger form; that
   conservatism is the whole trade, and in this corpus it costs nothing
   measurable. *)

type form = Short | Word | Long

let form_bytes = function Short -> 2 | Word -> 4 | Long -> 6

let form_name = function Short -> "short" | Word -> "word" | Long -> "long"

(* Only direct Branch/Jump get a displacement field.  Ijump goes through
   a table of absolute entries and Call through a linker-resolved
   absolute, so both keep their fixed encodings. *)
let eligible = function
  | Rtl.Branch _ | Rtl.Jump _ -> true
  | Rtl.Ijump _ | Rtl.Call _ | Rtl.Move _ | Rtl.Lea _ | Rtl.Binop _
  | Rtl.Unop _ | Rtl.Cmp _ | Rtl.Ret | Rtl.Enter _ | Rtl.Leave | Rtl.Nop ->
    false

type plan = {
  forms : form option array;
      (* per linear index; [None] for non-eligible instructions *)
  sizes : int array;  (* per linear index, eligible forms applied *)
  total : int;  (* sum of [sizes] *)
  fixed_total : int;  (* what the fixed-size model would have produced *)
  shorts : int;
  words : int;
  longs : int;
}

let length p = Array.length p.sizes

let sizes p = Array.copy p.sizes

(* The displacement is measured from the start of the transfer, so a
   forward span includes the transfer's own (pessimistic) size; the
   commit step can therefore only shrink it. *)
let fits disp = function
  | Short -> disp >= -127 && disp <= 127
  | Word -> disp >= -32767 && disp <= 32767
  | Long -> true

let pick disp =
  if fits disp Short then Short else if fits disp Word then Word else Long

let solve machine code label_pos =
  let n = Array.length code in
  let fixed_size = Machine.instr_size machine in
  let target k =
    match code.(k) with
    | Rtl.Branch (_, l) | Rtl.Jump l -> Label.Map.find_opt l label_pos
    | _ -> None
  in
  (* Pass 1: pessimistic addresses with every eligible transfer Long. *)
  let pess = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    let sz =
      if eligible code.(k) then form_bytes Long else fixed_size code.(k)
    in
    pess.(k + 1) <- pess.(k) + sz
  done;
  (* Pass 2: commit the smallest form that fits pessimistically. *)
  let forms = Array.make n None in
  let sizes = Array.make n 0 in
  let shorts = ref 0 and words = ref 0 and longs = ref 0 in
  let total = ref 0 and fixed_total = ref 0 in
  for k = 0 to n - 1 do
    let sz =
      if eligible code.(k) then begin
        let f =
          match target k with
          | Some t -> pick (pess.(t) - pess.(k))
          | None -> Word (* dangling label: keep the fixed encoding *)
        in
        (match f with
        | Short -> incr shorts
        | Word -> incr words
        | Long -> incr longs);
        forms.(k) <- Some f;
        form_bytes f
      end
      else fixed_size code.(k)
    in
    sizes.(k) <- sz;
    total := !total + sz;
    fixed_total := !fixed_total + fixed_size code.(k)
  done;
  {
    forms;
    sizes;
    total = !total;
    fixed_total = !fixed_total;
    shorts = !shorts;
    words = !words;
    longs = !longs;
  }

(* A plan is only meaningful against the exact code array it was solved
   for.  The caller (the assembler) re-linearizes, so verify shape:
   same length, and a form exactly where an eligible instruction sits. *)
let matches p code =
  Array.length code = Array.length p.sizes
  && (let ok = ref true in
      Array.iteri
        (fun k i ->
          match p.forms.(k) with
          | Some _ -> if not (eligible i) then ok := false
          | None -> if eligible i then ok := false)
        code;
      !ok)

let pp_stats ppf p =
  Fmt.pf ppf "%d bytes (fixed %d): %d short, %d word, %d long" p.total
    p.fixed_total p.shorts p.words p.longs
