(** Register transfer lists: the machine-level IR of the back end.

    An instruction ({e RTL}) describes one machine instruction's effect.
    Both machine models share this representation; they differ in which
    operand shapes are legal ({!Machine.legal_instr}) and in instruction
    sizes.  Design notes:

    - Only {!Cmp} sets the condition-code pseudo register {!Reg.Cc}, and only
      {!Branch} reads it.  (Real 68020 arithmetic also sets CCs; modelling
      that would only constrain scheduling, which we do not exploit.)
    - Byte loads zero-extend; byte stores truncate.  The C subset compares
      characters as non-negative ints, so this loses nothing.
    - [Enter]/[Leave] are the one-instruction prologue/epilogue pairs
      (68020 [link]/[unlk], SPARC [save]/[restore]): [Enter n] saves the
      caller's frame pointer at [sp-4], sets [fp := sp] and [sp := sp - n];
      [Leave] undoes it. *)

type width = Byte | Word

val width_bytes : width -> int

(** Addressing modes.  [Indexed] is only legal on the CISC model. *)
type addr =
  | Based of Reg.t * int  (** [reg + disp] *)
  | Indexed of Reg.t * Reg.t * int * int
      (** [base + index*scale + disp], scale in {1,2,4} *)
  | Abs of string * int  (** global symbol + byte offset *)

type operand =
  | Reg of Reg.t
  | Imm of int
  | Mem of width * addr  (** memory source operand; CISC only inside ops *)

(** Destination of a data move: register or memory cell. *)
type loc = Lreg of Reg.t | Lmem of width * addr

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type unop = Neg | Not

type cond = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Move of loc * operand
  | Lea of Reg.t * addr  (** load effective address *)
  | Binop of binop * loc * operand * operand
  | Unop of unop * loc * operand
  | Cmp of operand * operand  (** CC := compare a b *)
  | Branch of cond * Label.t  (** conditional; falls through when untaken *)
  | Jump of Label.t  (** unconditional *)
  | Ijump of Reg.t * Label.t array  (** indirect jump through table by index *)
  | Call of string * int  (** callee symbol, argument count *)
  | Ret
  | Enter of int  (** prologue; frame size in bytes *)
  | Leave  (** epilogue *)
  | Nop  (** delay-slot filler *)

val equal_instr : instr -> instr -> bool

(** {1 Conditions and operators} *)

(** Logical negation of a condition: [negate_cond Lt = Ge] etc. *)
val negate_cond : cond -> cond

(** Condition for the swapped comparison: [a cond b <=> b (swap_cond cond) a]. *)
val swap_cond : cond -> cond

val eval_cond : cond -> int -> int -> bool

(** 32-bit evaluation.  @raise Division_by_zero for [Div]/[Rem] by zero. *)
val eval_binop : binop -> int -> int -> int

val eval_unop : unop -> int -> int
val commutative : binop -> bool

(** {1 Register occurrences} *)

(** Registers read by the instruction (for [Call]: the argument registers and
    [sp]; for [Branch]: {!Reg.Cc}). *)
val uses : instr -> Reg.Set.t

(** Registers written (for [Call]: result register plus every caller-save
    register, i.e. the clobber set). *)
val defs : instr -> Reg.Set.t

(** Apply [f] to every register occurrence, uses and defs alike. *)
val map_regs : (Reg.t -> Reg.t) -> instr -> instr

(** Registers mentioned by an address computation. *)
val addr_regs : addr -> Reg.Set.t

(** Registers mentioned by an operand (including a memory operand's
    address registers). *)
val operand_regs : operand -> Reg.Set.t

(** {1 Classification} *)

(** No memory write, no control transfer, no call, no prologue/epilogue.
    Pure instructions can be deleted when their destination is dead. *)
val is_pure : instr -> bool

val reads_mem : instr -> bool
val writes_mem : instr -> bool

(** Ends a basic block: [Branch], [Jump], [Ijump] or [Ret].  Calls return
    inline and do not terminate blocks. *)
val is_transfer : instr -> bool

(** Branch/jump targets mentioned by the instruction. *)
val targets : instr -> Label.t list

val map_labels : (Label.t -> Label.t) -> instr -> instr

(** {1 Printing} *)

val pp_instr : Format.formatter -> instr -> unit
val instr_to_string : instr -> string
