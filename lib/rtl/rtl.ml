type width = Byte | Word

let width_bytes = function Byte -> 1 | Word -> 4

type addr =
  | Based of Reg.t * int
  | Indexed of Reg.t * Reg.t * int * int
  | Abs of string * int

type operand = Reg of Reg.t | Imm of int | Mem of width * addr

type loc = Lreg of Reg.t | Lmem of width * addr

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type unop = Neg | Not

type cond = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Move of loc * operand
  | Lea of Reg.t * addr
  | Binop of binop * loc * operand * operand
  | Unop of unop * loc * operand
  | Cmp of operand * operand
  | Branch of cond * Label.t
  | Jump of Label.t
  | Ijump of Reg.t * Label.t array
  | Call of string * int
  | Ret
  | Enter of int
  | Leave
  | Nop

let equal_instr (a : instr) (b : instr) = a = b

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let swap_cond = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let eval_binop op a b =
  match op with
  | Add -> Arith.add a b
  | Sub -> Arith.sub a b
  | Mul -> Arith.mul a b
  | Div -> Arith.div a b
  | Rem -> Arith.rem a b
  | And -> Arith.logand a b
  | Or -> Arith.logor a b
  | Xor -> Arith.logxor a b
  | Shl -> Arith.shl a b
  | Shr -> Arith.shr a b

let eval_unop op a =
  match op with Neg -> Arith.neg a | Not -> Arith.lognot a

let commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | Div | Rem | Shl | Shr -> false

(* Register occurrences. *)

let add_addr_regs acc = function
  | Based (r, _) -> Reg.Set.add r acc
  | Indexed (b, i, _, _) -> Reg.Set.add b (Reg.Set.add i acc)
  | Abs _ -> acc

let add_operand_regs acc = function
  | Reg r -> Reg.Set.add r acc
  | Imm _ -> acc
  | Mem (_, a) -> add_addr_regs acc a

let addr_regs a = add_addr_regs Reg.Set.empty a
let operand_regs o = add_operand_regs Reg.Set.empty o

(* A memory destination *reads* its address registers. *)
let loc_addr_regs acc = function
  | Lreg _ -> acc
  | Lmem (_, a) -> add_addr_regs acc a

let loc_def = function Lreg r -> Reg.Set.singleton r | Lmem _ -> Reg.Set.empty

let call_arg_regs nargs =
  List.filteri (fun i _ -> i < nargs) Conv.arg_regs |> Reg.Set.of_list

let uses = function
  | Move (l, src) -> add_operand_regs (loc_addr_regs Reg.Set.empty l) src
  | Lea (_, a) -> add_addr_regs Reg.Set.empty a
  | Binop (_, l, a, b) ->
    add_operand_regs (add_operand_regs (loc_addr_regs Reg.Set.empty l) a) b
  | Unop (_, l, a) -> add_operand_regs (loc_addr_regs Reg.Set.empty l) a
  | Cmp (a, b) -> add_operand_regs (add_operand_regs Reg.Set.empty a) b
  | Branch _ -> Reg.Set.singleton Reg.Cc
  | Jump _ -> Reg.Set.empty
  | Ijump (r, _) -> Reg.Set.singleton r
  | Call (_, nargs) -> Reg.Set.add Conv.sp (call_arg_regs nargs)
  | Ret -> Reg.Set.of_list [ Conv.rv; Conv.sp ]
  | Enter _ -> Reg.Set.of_list [ Conv.fp; Conv.sp ]
  | Leave -> Reg.Set.singleton Conv.fp
  | Nop -> Reg.Set.empty

let defs = function
  | Move (l, _) | Binop (_, l, _, _) | Unop (_, l, _) -> loc_def l
  | Lea (r, _) -> Reg.Set.singleton r
  | Cmp _ -> Reg.Set.singleton Reg.Cc
  | Branch _ | Jump _ | Ijump _ | Ret | Nop -> Reg.Set.empty
  | Call _ -> Conv.caller_save
  | Enter _ | Leave -> Reg.Set.of_list [ Conv.fp; Conv.sp ]

let map_addr f = function
  | Based (r, d) -> Based (f r, d)
  | Indexed (b, i, s, d) -> Indexed (f b, f i, s, d)
  | Abs _ as a -> a

let map_operand f = function
  | Reg r -> Reg (f r)
  | Imm _ as o -> o
  | Mem (w, a) -> Mem (w, map_addr f a)

let map_loc f = function
  | Lreg r -> Lreg (f r)
  | Lmem (w, a) -> Lmem (w, map_addr f a)

let map_regs f = function
  | Move (l, s) -> Move (map_loc f l, map_operand f s)
  | Lea (r, a) -> Lea (f r, map_addr f a)
  | Binop (op, l, a, b) ->
    Binop (op, map_loc f l, map_operand f a, map_operand f b)
  | Unop (op, l, a) -> Unop (op, map_loc f l, map_operand f a)
  | Cmp (a, b) -> Cmp (map_operand f a, map_operand f b)
  | Ijump (r, tbl) -> Ijump (f r, tbl)
  | (Branch _ | Jump _ | Call _ | Ret | Enter _ | Leave | Nop) as i -> i

let writes_mem = function
  | Move (Lmem _, _) | Binop (_, Lmem _, _, _) | Unop (_, Lmem _, _) -> true
  | Move (Lreg _, _)
  | Binop (_, Lreg _, _, _)
  | Unop (_, Lreg _, _)
  | Lea _ | Cmp _ | Branch _ | Jump _ | Ijump _ | Call _ | Ret | Enter _
  | Leave | Nop ->
    false

let operand_reads_mem = function Mem _ -> true | Reg _ | Imm _ -> false

let reads_mem = function
  | Move (_, s) | Unop (_, _, s) -> operand_reads_mem s
  | Binop (_, _, a, b) | Cmp (a, b) ->
    operand_reads_mem a || operand_reads_mem b
  | Lea _ | Branch _ | Jump _ | Ijump _ | Nop -> false
  (* Calls may read anything; Enter/Leave touch the saved frame pointer. *)
  | Call _ | Ret | Enter _ | Leave -> true

let is_transfer = function
  | Branch _ | Jump _ | Ijump _ | Ret -> true
  | Move _ | Lea _ | Binop _ | Unop _ | Cmp _ | Call _ | Enter _ | Leave | Nop
    ->
    false

let is_pure = function
  | Move (Lreg _, _) | Lea _ | Binop (_, Lreg _, _, _) | Unop (_, Lreg _, _)
  | Cmp _ | Nop ->
    true
  | Move (Lmem _, _)
  | Binop (_, Lmem _, _, _)
  | Unop (_, Lmem _, _)
  | Branch _ | Jump _ | Ijump _ | Call _ | Ret | Enter _ | Leave ->
    false

let targets = function
  | Branch (_, l) | Jump l -> [ l ]
  | Ijump (_, tbl) -> Array.to_list tbl
  | Move _ | Lea _ | Binop _ | Unop _ | Cmp _ | Call _ | Ret | Enter _ | Leave
  | Nop ->
    []

let map_labels f = function
  | Branch (c, l) -> Branch (c, f l)
  | Jump l -> Jump (f l)
  | Ijump (r, tbl) -> Ijump (r, Array.map f tbl)
  | ( Move _ | Lea _ | Binop _ | Unop _ | Cmp _ | Call _ | Ret | Enter _
    | Leave | Nop ) as i ->
    i

(* Printing, in the paper's RTL flavour. *)

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let string_of_cond = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_addr ppf = function
  | Based (r, 0) -> Fmt.pf ppf "%a" Reg.pp r
  | Based (r, d) -> Fmt.pf ppf "%a%+d" Reg.pp r d
  | Indexed (b, i, s, 0) -> Fmt.pf ppf "%a+%a*%d" Reg.pp b Reg.pp i s
  | Indexed (b, i, s, d) -> Fmt.pf ppf "%a+%a*%d%+d" Reg.pp b Reg.pp i s d
  | Abs (s, 0) -> Fmt.pf ppf "_%s" s
  | Abs (s, d) -> Fmt.pf ppf "_%s%+d" s d

let width_letter = function Byte -> 'B' | Word -> 'W'

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm n -> Fmt.int ppf n
  | Mem (w, a) -> Fmt.pf ppf "%c[%a]" (width_letter w) pp_addr a

let pp_loc ppf = function
  | Lreg r -> Reg.pp ppf r
  | Lmem (w, a) -> Fmt.pf ppf "%c[%a]" (width_letter w) pp_addr a

let pp_instr ppf = function
  | Move (l, s) -> Fmt.pf ppf "%a=%a;" pp_loc l pp_operand s
  | Lea (r, a) -> Fmt.pf ppf "%a=&[%a];" Reg.pp r pp_addr a
  | Binop (op, l, a, b) ->
    Fmt.pf ppf "%a=%a%s%a;" pp_loc l pp_operand a (string_of_binop op)
      pp_operand b
  | Unop (Neg, l, a) -> Fmt.pf ppf "%a=-%a;" pp_loc l pp_operand a
  | Unop (Not, l, a) -> Fmt.pf ppf "%a=~%a;" pp_loc l pp_operand a
  | Cmp (a, b) -> Fmt.pf ppf "NZ=%a?%a;" pp_operand a pp_operand b
  | Branch (c, l) -> Fmt.pf ppf "PC=NZ%s0,%a;" (string_of_cond c) Label.pp l
  | Jump l -> Fmt.pf ppf "PC=%a;" Label.pp l
  | Ijump (r, tbl) ->
    Fmt.pf ppf "PC=T[%a]{%a};" Reg.pp r
      Fmt.(array ~sep:comma Label.pp)
      tbl
  | Call (f, n) -> Fmt.pf ppf "CALL _%s,%d;" f n
  | Ret -> Fmt.pf ppf "PC=RT;"
  | Enter n -> Fmt.pf ppf "ENTER %d;" n
  | Leave -> Fmt.pf ppf "LEAVE;"
  | Nop -> Fmt.pf ppf "NOP;"

let instr_to_string i = Fmt.str "%a" pp_instr i
