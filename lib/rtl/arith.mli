(** 32-bit two's-complement arithmetic on OCaml [int]s.

    The simulated machine computes on 32-bit signed words.  Values are kept
    {e normalized}: every register and memory word holds an [int] in
    [\[-2{^31}, 2{^31}-1\]].  All operators here wrap their result back into
    that range, matching both machine models and C semantics on [int]. *)

(** [norm x] wraps [x] into the signed 32-bit range. *)
val norm : int -> int

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

(** Truncated division, as in C.  @raise Division_by_zero on zero divisor. *)
val div : int -> int -> int

(** Remainder with the sign of the dividend, as in C.
    @raise Division_by_zero on zero divisor. *)
val rem : int -> int -> int

val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int

(** Left shift; counts are taken modulo 32 and the result wraps. *)
val shl : int -> int -> int

(** Arithmetic right shift; counts are taken modulo 32. *)
val shr : int -> int -> int

val neg : int -> int

(** Bitwise complement. *)
val lognot : int -> int
