(** Machine registers.

    Registers are either {e virtual} (unbounded supply, produced by the code
    generator and consumed by the register allocator) or {e physical}
    (hardware registers of the target machine model).  A third pseudo
    register, {!cc}, models the condition-code resource set by {!Rtl} compare
    instructions and read by conditional branches. *)

type t =
  | Virt of int  (** virtual register, numbered from 0 *)
  | Phys of int  (** physical register, numbered from 0 *)
  | Cc  (** condition-code pseudo register *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_virt : t -> bool
val is_phys : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Sets and maps keyed by registers. *)
module Set : Set.S with type elt = t

module Map : Map.S with type key = t

(** A stateful supply of fresh virtual registers. *)
module Supply : sig
  type reg := t
  type t

  val create : unit -> t

  (** [create_from n] yields virtuals numbered [n], [n+1], ... *)
  val create_from : int -> t

  val fresh : t -> reg

  (** Number of virtuals handed out so far (next fresh index). *)
  val next_index : t -> int
end
