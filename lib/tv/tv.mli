(** Static translation validation for the optimizer.

    After a pass transforms a function, {!certify_pass} tries to prove —
    without running anything — that the output {e simulates} the input:
    every path through the transformed CFG performs the same sequence of
    observable effects (memory writes, calls, frame setup/teardown,
    returns) as the corresponding path through the original, and branch
    decisions correspond under the same entry state.

    The checker builds a product of the two CFGs: a worklist of block
    pairs anchored at the entry pair, each carrying the set of registers
    on which the two sides are known to disagree (values private to one
    side, e.g. dead temporaries).  Each pair's blocks are summarized into
    a normalized symbolic store (the same versioned value-numbering idea
    as {!Analysis.Valnum}, which is also reused to pre-normalize each
    block) plus an ordered effect list; {!Analysis.Copyconst} facts seed
    registers both sides know to be the same constant, discharging branch
    conditions the pass itself folded.

    Verdicts are three-valued.  {e Certified} means every reachable pair
    matched exactly.  {e Refuted} carries a counterexample path of block
    pairs from the entry to a pair whose {e ground} observable effects
    provably differ — the transformed function performs a different store,
    call, or return on that path.  Everything else — renamed registers,
    restructured loops, symbolic values the checker cannot ground — is
    {e Unknown}: the conservative answer, never a conviction. *)

open Flow

type verdict =
  | Certified
  | Unknown of { reason : string; timeout : bool }
  | Refuted of { reason : string; path : string list }
      (** [path] is the counterexample: ["old/new"] block-label pairs from
          the entry pair to the refuting pair, in execution order. *)

(** One certification result, as recorded by the driver. *)
type record = { vfunc : string; vpass : string; verdict : verdict }

val verdict_name : verdict -> string

(** [None] when the named pass is in scope for certification; [Some why]
    when it is structurally outside the simulation relation the checker
    decides (register renaming, loop restructuring) and any attempt would
    only produce noise.  The driver maps gated passes to
    [Unknown {reason = why; timeout = false}] without running the checker. *)
val gated : string -> string option

(** [certify_pass ~pass ~before ~after ()] checks that [after] simulates
    [before].  [fuel] bounds the number of pair summarizations (default
    {!default_fuel}); exhaustion yields [Unknown {timeout = true}].
    Never raises. *)
val certify_pass :
  ?fuel:int -> pass:string -> before:Func.t -> after:Func.t -> unit -> verdict

val default_fuel : int

(** Copyconst facts for a function ([None] when the analysis diverged),
    memoized by {e physical} identity in an {!Analysis.Cache}: a mutated
    function ([Func.with_blocks] returns a fresh identity) never reuses
    stale facts.  Exposed for the cache regression test. *)
val copyconst_facts : Func.t -> Analysis.Copyconst.facts array option
