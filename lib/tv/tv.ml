open Ir
open Flow
module Copyconst = Analysis.Copyconst
module Valnum = Analysis.Valnum

type verdict =
  | Certified
  | Unknown of { reason : string; timeout : bool }
  | Refuted of { reason : string; path : string list }

type record = { vfunc : string; vpass : string; verdict : verdict }

let verdict_name = function
  | Certified -> "certified"
  | Unknown _ -> "unknown"
  | Refuted _ -> "refuted"

let default_fuel = 10_000

(* Passes whose transformations are structurally outside the simulation
   relation this checker decides.  Attempting them would only report
   spurious mismatches, so the driver maps them to Unknown up front. *)
let gated = function
  | "regalloc" ->
    Some "register allocation renames every register and inserts spill code"
  | "licm" ->
    Some "loop-invariant code motion inserts preheaders and moves code across \
          blocks"
  | "strength" ->
    Some "strength reduction introduces induction temporaries and preheaders"
  | _ -> None

(* --- normalized symbolic expressions --- *)

type side = O | N

(* A symbolic value, normalized so that independently summarized old/new
   blocks produce syntactically equal terms for provably equal values.
   [Entry r] is the (shared) value of [r] at the pair's entry when the two
   sides agree on [r]; [Local] when they are known to disagree.  [Opaque
   (k, r)] is the unknown-but-shared value [r] holds after the [k]-th
   observable effect (a call) — shared because the checker only compares
   values once the effect prefixes matched.  Loads carry a memory version
   bumped by every write, mirroring {!Analysis.Valnum}'s versioning. *)
type expr =
  | Const of int
  | Glob of string
  | Entry of Reg.t
  | Local of side * Reg.t
  | Opaque of int * Reg.t
  | Load of Rtl.width * expr * int
  | Un of Rtl.unop * expr
  | Bin of Rtl.binop * expr * expr

let rec ground = function
  | Const _ | Glob _ -> true
  | Entry _ | Local _ | Opaque _ | Load _ -> false
  | Un (_, e) -> ground e
  | Bin (_, a, b) -> ground a && ground b

let binop_str = function
  | Rtl.Add -> "+"
  | Rtl.Sub -> "-"
  | Rtl.Mul -> "*"
  | Rtl.Div -> "/"
  | Rtl.Rem -> "%"
  | Rtl.And -> "&"
  | Rtl.Or -> "|"
  | Rtl.Xor -> "^"
  | Rtl.Shl -> "<<"
  | Rtl.Shr -> ">>"

let rec expr_str = function
  | Const n -> string_of_int n
  | Glob s -> "&" ^ s
  | Entry r -> Reg.to_string r
  | Local (O, r) -> "old:" ^ Reg.to_string r
  | Local (N, r) -> "new:" ^ Reg.to_string r
  | Opaque (k, r) -> Printf.sprintf "%s'%d" (Reg.to_string r) k
  | Load (_, a, v) -> Printf.sprintf "M%d[%s]" v (expr_str a)
  | Un (Rtl.Neg, e) -> "-" ^ expr_str e
  | Un (Rtl.Not, e) -> "~" ^ expr_str e
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)

let is_const = function Const _ -> true | _ -> false

let shift_of c =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 c

(* Smart constructor mirroring the rewrites the passes themselves perform
   (constant folding, algebraic identities, the Mul-by-power-of-two ==
   Shl equivalence isel and strength exploit), so both sides normalize to
   one spelling. *)
let rec mk_bin op a b =
  match (op, a, b) with
  | _, Const x, Const y -> (
    match Rtl.eval_binop op x y with
    | v -> Const v
    | exception Division_by_zero -> Bin (op, a, b))
  | _, Const _, _ when Rtl.commutative op -> mk_bin op b a
  | Rtl.Add, _, Const 0 -> a
  | Rtl.Add, Bin (Rtl.Add, x, Const c1), Const c2 ->
    mk_bin Rtl.Add x (Const (Rtl.eval_binop Rtl.Add c1 c2))
  | Rtl.Sub, _, Const 0 -> a
  | Rtl.Sub, _, Const c -> mk_bin Rtl.Add a (Const (Rtl.eval_binop Rtl.Sub 0 c))
  | Rtl.Mul, _, Const 0 -> Const 0
  | Rtl.Mul, _, Const 1 -> a
  | Rtl.Mul, _, Const c when c > 1 && c land (c - 1) = 0 ->
    Bin (Rtl.Shl, a, Const (shift_of c))
  | (Rtl.Shl | Rtl.Shr), _, Const 0 -> a
  | (Rtl.Or | Rtl.Xor), _, Const 0 -> a
  | _
    when Rtl.commutative op
         && (not (is_const b))
         && Stdlib.compare b a < 0 ->
    Bin (op, b, a)
  | _ -> Bin (op, a, b)

let mk_un op a =
  match a with Const x -> Const (Rtl.eval_unop op x) | _ -> Un (op, a)

(* Condition codes: only [Cmp] sets them, only [Branch] reads them, and a
   call may clobber them. *)
type ccv = CcEntry | CcLocal of side | CcCmp of expr * expr | CcOpaque of int

(* Observable effects of a block, in execution order.  Two matched paths
   must produce equal effect sequences. *)
type eff =
  | Estore of Rtl.width * expr * expr
  | Ecall of string * int * expr list  (* callee, arg count, sp :: args *)
  | Eenter of int * expr * expr  (* frame size, sp, fp *)
  | Eleave of expr * expr  (* sp, fp *)
  | Eret of expr * expr  (* return value, sp *)

(* --- symbolic evaluation of one block --- *)

type env = {
  sd : side;
  dset : Reg.Set.t;  (* registers the two sides disagree on at entry *)
  consts : int Reg.Map.t;  (* Copyconst-proven agreed constants *)
  mutable regs : expr Reg.Map.t;
  mutable cc : ccv;
  mutable memver : int;
  mutable effs : eff list;  (* reversed *)
  mutable neffs : int;
  mutable vn : Analysis.Valnum.state;
      (* value-numbering state threaded across catch-up extensions, so a
         merged block on one side and its constituent blocks on the other
         normalize through the same lens *)
}

let get env r =
  match Reg.Map.find_opt r env.regs with
  | Some e -> e
  | None ->
    let e =
      match Reg.Map.find_opt r env.consts with
      | Some c -> Const c
      | None -> if Reg.Set.mem r env.dset then Local (env.sd, r) else Entry r
    in
    env.regs <- Reg.Map.add r e env.regs;
    e

let set env r e = env.regs <- Reg.Map.add r e env.regs

let emit env e =
  env.effs <- e :: env.effs;
  env.neffs <- env.neffs + 1

let eval_addr env = function
  | Rtl.Based (r, d) -> mk_bin Rtl.Add (get env r) (Const d)
  | Rtl.Indexed (b, i, sc, d) ->
    mk_bin Rtl.Add
      (mk_bin Rtl.Add (get env b) (mk_bin Rtl.Mul (get env i) (Const sc)))
      (Const d)
  | Rtl.Abs (s, off) -> mk_bin Rtl.Add (Glob s) (Const off)

let eval_operand env = function
  | Rtl.Reg r -> get env r
  | Rtl.Imm n -> Const n
  | Rtl.Mem (w, a) -> Load (w, eval_addr env a, env.memver)

let store env w a v =
  emit env (Estore (w, eval_addr env a, v));
  env.memver <- env.memver + 1

let exec env i =
  match i with
  | Rtl.Move (Rtl.Lreg d, op) -> set env d (eval_operand env op)
  | Rtl.Move (Rtl.Lmem (w, a), op) -> store env w a (eval_operand env op)
  | Rtl.Lea (d, a) -> set env d (eval_addr env a)
  | Rtl.Binop (op, Rtl.Lreg d, x, y) ->
    set env d (mk_bin op (eval_operand env x) (eval_operand env y))
  | Rtl.Binop (op, Rtl.Lmem (w, a), x, y) ->
    store env w a (mk_bin op (eval_operand env x) (eval_operand env y))
  | Rtl.Unop (op, Rtl.Lreg d, x) -> set env d (mk_un op (eval_operand env x))
  | Rtl.Unop (op, Rtl.Lmem (w, a), x) ->
    store env w a (mk_un op (eval_operand env x))
  | Rtl.Cmp (x, y) -> env.cc <- CcCmp (eval_operand env x, eval_operand env y)
  | Rtl.Call (f, n) ->
    let args = List.init (min n Conv.max_args) (fun i -> get env (Conv.arg_reg i)) in
    emit env (Ecall (f, n, get env Conv.sp :: args));
    let k = env.neffs - 1 in
    Reg.Set.iter (fun r -> set env r (Opaque (k, r))) Conv.caller_save;
    env.cc <- CcOpaque k;
    env.memver <- env.memver + 1
  | Rtl.Enter n ->
    (* Enter saves the caller's fp at sp-4, sets fp := sp, sp := sp-n. *)
    let sp = get env Conv.sp and fp = get env Conv.fp in
    emit env (Eenter (n, sp, fp));
    set env Conv.fp sp;
    set env Conv.sp (mk_bin Rtl.Sub sp (Const n));
    env.memver <- env.memver + 1
  | Rtl.Leave ->
    let sp = get env Conv.sp and fp = get env Conv.fp in
    emit env (Eleave (sp, fp));
    set env Conv.sp fp;
    set env Conv.fp (Load (Rtl.Word, mk_bin Rtl.Sub fp (Const 4), env.memver));
    env.memver <- env.memver + 1
  | Rtl.Ret -> emit env (Eret (get env Conv.rv, get env Conv.sp))
  | Rtl.Nop -> ()
  | Rtl.Branch _ | Rtl.Jump _ | Rtl.Ijump _ -> ()

(* Pre-normalize with the value-numbering rewriter CSE uses, so a
   recomputation on one side and its CSE'd copy on the other summarize
   through the same lens. *)
let run_block env func idx =
  List.iter
    (fun i ->
      let vn', i', _ = Valnum.rewrite env.vn i in
      env.vn <- vn';
      exec env i')
    (Func.block func idx).Func.instrs

let summarize sd func ~dset ~dcc ~consts idx =
  let env =
    {
      sd;
      dset;
      consts;
      regs = Reg.Map.empty;
      cc = (if dcc then CcLocal sd else CcEntry);
      memver = 0;
      effs = [];
      neffs = 0;
      vn = Valnum.empty;
    }
  in
  run_block env func idx;
  env

(* --- terminators, resolved through pure-control blocks --- *)

(* Follow blocks that contain no computation at all (Nops plus at most a
   trailing Jump, or a bare fall-through) to the first block with content.
   Branch-chain and reorder shuffle exactly this kind of glue. *)
let resolve func start =
  let rec go visited i =
    if List.mem i visited then i
    else
      let rec skim = function
        | [] -> `Fall
        | [ Rtl.Jump l ] -> `Jump l
        | Rtl.Nop :: rest -> skim rest
        | _ -> `Content
      in
      match skim (Func.block func i).Func.instrs with
      | `Content -> i
      | `Jump l -> go (i :: visited) (Func.index_of_label func l)
      | `Fall -> if i + 1 < Func.num_blocks func then go (i :: visited) (i + 1) else i
  in
  go [] start

type rterm =
  | Rgoto of int
  | Rtaken of int  (* a branch discharged by constant condition codes *)
  | Rbranch of Rtl.cond * int * int  (* cond, taken, fallthrough *)
  | Rijump of expr * int array
  | Rret
  | Rstuck  (* control falls off the function: ill-formed, never matched *)

(* A block the checker may inline into the current pair without touching
   the effect sequence: computation and control only. *)
let effect_free func idx =
  List.for_all
    (fun i ->
      match i with
      | Rtl.Move (Rtl.Lmem _, _)
      | Rtl.Binop (_, Rtl.Lmem _, _, _)
      | Rtl.Unop (_, Rtl.Lmem _, _)
      | Rtl.Call _ | Rtl.Enter _ | Rtl.Leave | Rtl.Ret -> false
      | _ -> true)
    (Func.block func idx).Func.instrs

let resolved_term func env idx =
  let target l = resolve func (Func.index_of_label func l) in
  match Func.terminator (Func.block func idx) with
  | Some (Rtl.Jump l) -> Rgoto (target l)
  | Some (Rtl.Branch (c, l)) ->
    if idx + 1 >= Func.num_blocks func then Rstuck
    else
      let t = target l and f = resolve func (idx + 1) in
      if t = f then Rgoto t
      else (
        match env.cc with
        | CcCmp (Const x, Const y) ->
          Rtaken (if Rtl.eval_cond c x y then t else f)
        | _ -> Rbranch (c, t, f))
  | Some (Rtl.Ijump (r, tbl)) -> Rijump (get env r, Array.map target tbl)
  | Some Rtl.Ret -> Rret
  | Some _ -> Rstuck
  | None -> if idx + 1 < Func.num_blocks func then Rgoto (resolve func (idx + 1)) else Rstuck

(* Do the two branch decisions correspond, directly or with the arms
   swapped?  Handles condition negation, operand swap, and both. *)
let branch_match cco ccn c c' =
  let operands =
    match (cco, ccn) with
    | CcEntry, CcEntry -> Some `Same
    | CcOpaque i, CcOpaque j when i = j -> Some `Same
    | CcCmp (a, b), CcCmp (a', b') ->
      if a = a' && b = b' then Some `Same
      else if a = b' && b = a' then Some `Swap
      else None
    | _ -> None
  in
  match operands with
  | None -> None
  | Some `Same ->
    if c' = c then Some `Straight
    else if c' = Rtl.negate_cond c then Some `Negated
    else None
  | Some `Swap ->
    if c' = Rtl.swap_cond c then Some `Straight
    else if c' = Rtl.negate_cond (Rtl.swap_cond c) then Some `Negated
    else None

(* --- effect comparison --- *)

(* Strong mismatches are proofs of inequivalence (different effect
   sequences, or ground values that provably differ); weak ones only mean
   the checker cannot ground the terms, and must stay Unknown. *)
type outcome = Agree | Strong of string | Weak of string

let cmp_value what w a b =
  if a = b then Agree
  else
    let a, b =
      (* Byte stores truncate: compare what the memory cell will hold. *)
      match (w, a, b) with
      | Some Rtl.Byte, Const x, Const y -> (Const (x land 255), Const (y land 255))
      | _ -> (a, b)
    in
    if a = b then Agree
    else if ground a && ground b then
      Strong (Printf.sprintf "%s differs: %s vs %s" what (expr_str a) (expr_str b))
    else
      Weak
        (Printf.sprintf "%s not provably equal: %s vs %s" what (expr_str a)
           (expr_str b))

let seq_outcomes xs =
  List.fold_left
    (fun acc x ->
      match (acc, x) with
      | Strong _, _ -> acc
      | _, Strong _ -> x
      | Weak _, _ -> acc
      | Agree, o -> o)
    Agree xs

let cmp_eff e e' =
  match (e, e') with
  | Estore (w, a, v), Estore (w', a', v') ->
    if w <> w' then Strong "store width differs"
    else seq_outcomes [ cmp_value "store address" None a a'; cmp_value "stored value" (Some w) v v' ]
  | Ecall (f, n, args), Ecall (f', n', args') ->
    if f <> f' || n <> n' then
      Strong (Printf.sprintf "call differs: %s/%d vs %s/%d" f n f' n')
    else
      seq_outcomes (List.map2 (fun a b -> cmp_value ("argument to " ^ f) None a b) args args')
  | Eenter (n, sp, fp), Eenter (n', sp', fp') ->
    if n <> n' then Strong (Printf.sprintf "frame size differs: %d vs %d" n n')
    else seq_outcomes [ cmp_value "sp at Enter" None sp sp'; cmp_value "fp at Enter" None fp fp' ]
  | Eleave (sp, fp), Eleave (sp', fp') ->
    seq_outcomes [ cmp_value "sp at Leave" None sp sp'; cmp_value "fp at Leave" None fp fp' ]
  | Eret (rv, sp), Eret (rv', sp') ->
    seq_outcomes [ cmp_value "return value" None rv rv'; cmp_value "sp at Ret" None sp sp' ]
  | _ ->
    let kind = function
      | Estore _ -> "store"
      | Ecall (f, _, _) -> "call " ^ f
      | Eenter _ -> "Enter"
      | Eleave _ -> "Leave"
      | Eret _ -> "Ret"
    in
    Strong (Printf.sprintf "effect kind differs: %s vs %s" (kind e) (kind e'))

let cmp_effects effs effs' =
  let l = List.length effs and l' = List.length effs' in
  if l <> l' then
    Strong (Printf.sprintf "effect count differs: %d vs %d" l l')
  else seq_outcomes (List.map2 cmp_eff effs effs')

(* --- Copyconst seeding, memoized by physical function identity --- *)

let facts_cache : (Func.t, Copyconst.facts array option) Analysis.Cache.t =
  Analysis.Cache.create ~size:8 ()

let copyconst_facts func =
  Analysis.Cache.find facts_cache func (fun func ->
      let cfg = Cfg.make func in
      let instrs = Array.map (fun b -> b.Func.instrs) (Func.blocks func) in
      match Copyconst.solve ~graph:(Cfg.graph cfg) ~instrs () with
      | r -> Some r.Copyconst.fact_in
      | exception Analysis.Dataflow.Diverged _ -> None)

(* Registers both sides can prove hold the same constant at this pair's
   entry: those seeds discharge the branch conditions the pass folded. *)
let seeded_consts facts_o facts_n bf af o n =
  match (facts_o, facts_n) with
  | Some fo, Some fn when Copyconst.reached fo.(o) && Copyconst.reached fn.(n) ->
    let used acc b =
      List.fold_left
        (fun acc i -> Reg.Set.union acc (Rtl.uses i))
        acc b.Func.instrs
    in
    let cand = used (used Reg.Set.empty (Func.block bf o)) (Func.block af n) in
    Reg.Set.fold
      (fun r acc ->
        match (Copyconst.lookup fo.(o) r, Copyconst.lookup fn.(n) r) with
        | Some (Copyconst.Const c), Some (Copyconst.Const c') when c = c' ->
          Reg.Map.add r c acc
        | _ -> acc)
      cand Reg.Map.empty
  | _ -> Reg.Map.empty

(* --- the product worklist --- *)

type pinfo = {
  mutable d : Reg.Set.t;  (* disagreement set at pair entry *)
  mutable dcc : bool;  (* condition codes disagree at pair entry *)
  parent : (int * int) option;  (* first discoverer, for the path *)
}

let cc_agrees a b =
  match (a, b) with
  | CcEntry, CcEntry -> true
  | CcOpaque i, CcOpaque j -> i = j
  | CcCmp (x, y), CcCmp (x', y') -> x = x' && y = y'
  | _ -> false

(* The registers whose final values the two summaries cannot prove equal. *)
let disagreements eo en =
  let keys m = Reg.Map.fold (fun r _ acc -> Reg.Set.add r acc) m Reg.Set.empty in
  let dom = Reg.Set.union (keys eo.regs) (keys en.regs) in
  Reg.Set.filter (fun r -> get eo r <> get en r) dom

let check ~fuel ~before ~after =
  let facts_o = copyconst_facts before and facts_n = copyconst_facts after in
  let pairs : (int * int, pinfo) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  let entry = (resolve before 0, resolve after 0) in
  Hashtbl.add pairs entry { d = Reg.Set.empty; dcc = false; parent = None };
  Queue.add entry q;
  let pair_name (o, n) =
    Printf.sprintf "%s/%s"
      (Label.to_string (Func.block before o).Func.label)
      (Label.to_string (Func.block after n).Func.label)
  in
  let path key =
    let rec walk key acc =
      let info = Hashtbl.find pairs key in
      let acc = pair_name key :: acc in
      match info.parent with None -> acc | Some p -> walk p acc
    in
    walk key []
  in
  let enqueue parent d dcc key =
    match Hashtbl.find_opt pairs key with
    | None ->
      Hashtbl.add pairs key { d; dcc; parent = Some parent };
      Queue.add key q
    | Some info ->
      if (not (Reg.Set.subset d info.d)) || (dcc && not info.dcc) then begin
        info.d <- Reg.Set.union info.d d;
        info.dcc <- info.dcc || dcc;
        Queue.add key q
      end
  in
  let refuted = ref None in
  let unknown = ref None in
  let timeout = ref false in
  let note key msg =
    if !unknown = None then
      unknown := Some (Printf.sprintf "blocks %s: %s" (pair_name key) msg)
  in
  let fuel = ref fuel in
  (try
     while (not (Queue.is_empty q)) && !refuted = None do
       if !fuel <= 0 then begin
         timeout := true;
         raise Exit
       end;
       decr fuel;
       let ((o, n) as key) = Queue.pop q in
       let info = Hashtbl.find pairs key in
       let consts = seeded_consts facts_o facts_n before after o n in
       let eo = summarize O before ~dset:info.d ~dcc:info.dcc ~consts o in
       let en = summarize N after ~dset:info.d ~dcc:info.dcc ~consts n in
       (* Catch-up stepping: replication folds copies of whole successor
          blocks into a predecessor, so one side's block can carry several
          of the other side's blocks worth of effects, and a branch the
          copy made decidable in context (a rotated loop's entry test) can
          sit one block downstream on the other side.  While the effect
          counts differ, walk the short side through its unconditional
          transfers; when they agree, inline effect-free goto targets on
          either side so both branch decisions are taken with the same
          context.  Terminators and successors are then read from wherever
          each side ended up. *)
       let oi = ref o and ni = ref n in
       let ext = ref 8 in
       let step_o next =
         decr ext;
         oi := next;
         run_block eo before next
       and step_n next =
         decr ext;
         ni := next;
         run_block en after next
       in
       let rec catch_up () =
         if !ext > 0 then
           if eo.neffs < en.neffs then (
             match resolved_term before eo !oi with
             | Rgoto next | Rtaken next ->
               step_o next;
               catch_up ()
             | _ -> ())
           else if en.neffs < eo.neffs then (
             match resolved_term after en !ni with
             | Rgoto next | Rtaken next ->
               step_n next;
               catch_up ()
             | _ -> ())
           else
             (* Counts agree: inline an effect-free goto target only when
                the other side has already consumed a test (a pending or
                discharged branch) — walking a plain goto/goto pair would
                second-guess an alignment that is usually already right. *)
             match
               (resolved_term before eo !oi, resolved_term after en !ni)
             with
             | Rgoto a, (Rbranch _ | Rtaken _) when effect_free before a ->
               step_o a;
               catch_up ()
             | (Rbranch _ | Rtaken _), Rgoto b when effect_free after b ->
               step_n b;
               catch_up ()
             | _ -> ()
       in
       catch_up ();
       let effects_cmp =
         if eo.neffs <> en.neffs && !ext = 0 then
           (* The walk budget ran out before the counts lined up: block
              granularity would not align, which is a limitation of the
              checker, never a proof. *)
           Weak
             (Printf.sprintf "effect counts do not align: %d vs %d" eo.neffs
                en.neffs)
         else cmp_effects (List.rev eo.effs) (List.rev en.effs)
       in
       match effects_cmp with
       | Strong msg -> refuted := Some (key, msg)
       | Weak msg -> note key msg
       | Agree -> (
         let succs =
           match (resolved_term before eo !oi, resolved_term after en !ni) with
           | (Rgoto a | Rtaken a), (Rgoto b | Rtaken b) -> Some [ (a, b) ]
           | Rret, Rret -> Some []
           | Rbranch (c, t, f), Rbranch (c', t', f') -> (
             match branch_match eo.cc en.cc c c' with
             | Some `Straight -> Some [ (t, t'); (f, f') ]
             | Some `Negated -> Some [ (t, f'); (f, t') ]
             | None -> None)
           | Rijump (e, tbl), Rijump (e', tbl')
             when e = e' && Array.length tbl = Array.length tbl' ->
             Some (List.init (Array.length tbl) (fun i -> (tbl.(i), tbl'.(i))))
           | _ -> None
         in
         match succs with
         | None -> note key "terminators do not correspond"
         | Some ss ->
           let d' = disagreements eo en in
           let dcc' = not (cc_agrees eo.cc en.cc) in
           List.iter (enqueue key d' dcc') ss)
     done
   with Exit -> ());
  match !refuted with
  | Some (key, msg) ->
    Refuted
      {
        reason = Printf.sprintf "%s at blocks %s" msg (pair_name key);
        path = path key;
      }
  | None ->
    if !timeout then
      Unknown { reason = "pair budget exhausted before closure"; timeout = true }
    else (
      match !unknown with
      | Some reason -> Unknown { reason; timeout = false }
      | None -> Certified)

let certify_pass ?(fuel = default_fuel) ~pass ~before ~after () =
  match gated pass with
  | Some why -> Unknown { reason = why; timeout = false }
  | None -> (
    try check ~fuel ~before ~after
    with exn ->
      Unknown
        {
          reason = "checker raised " ^ Printexc.to_string exn;
          timeout = false;
        })
