open Ir
open Flow
module Diag = Telemetry.Diag

let diag_of_decision ~func ~pass ((src, dst), decision) =
  let code, severity =
    match (decision : Replication.Jumps.decision) with
    | Replicated { loop_completed = true; _ } ->
      (Diag.Loop_replication, Diag.Warn)
    | Replicated _ -> (Diag.Code_growth, Diag.Warn)
    | Not_replicated _ -> (Diag.Jump_residual, Diag.Warn)
  in
  Diag.make ~severity code ~func ~pass
    (Printf.sprintf "jump %s -> %s: %s" (Label.to_string src)
       (Label.to_string dst)
       (Replication.Jumps.decision_to_string decision))

(* --- rules over one well-formed function --- *)

let uninit_reads fname func cfg reach instrs =
  let graph =
    Analysis.Dataflow.restrict (Cfg.graph cfg) ~keep:(fun i -> reach.(i))
  in
  let facts = Analysis.Reaching.solve ~graph ~instrs () in
  Analysis.Reaching.uninitialized_uses facts ~instrs ~keep:Reg.is_virt
    ~reachable:(fun i -> reach.(i))
  |> List.map (fun (b, k, r) ->
         Diag.make Diag.Uninit_read ~func:fname ~pass:"lint"
           (Printf.sprintf
              "%s: %s read before initialization on some path (instr %d)"
              (Label.to_string (Func.block func b).label)
              (Reg.to_string r) k))

(* A pure computation into registers none of which is live afterwards.  Cc
   alone does not count as a result: a stale compare is not a store. *)
let dead_stores fname func reach =
  let live = Liveness.compute func in
  let n = Func.num_blocks func in
  let out = ref [] in
  for i = 0 to n - 1 do
    if reach.(i) then
      out :=
        Liveness.fold_backward live
          (fun acc instr ~live_after ->
            let defs = Reg.Set.remove Reg.Cc (Rtl.defs instr) in
            if
              Rtl.is_pure instr
              && (not (Reg.Set.is_empty defs))
              && Reg.Set.is_empty (Reg.Set.inter defs live_after)
            then
              Diag.make Diag.Dead_store ~func:fname ~pass:"lint"
                (Format.asprintf "%s: result of %a is never read"
                   (Label.to_string (Func.block func i).label)
                   Rtl.pp_instr instr)
              :: acc
            else acc)
          i ~init:!out
  done;
  List.rev !out

(* Statically decidable conditional branches: constant facts reaching the
   operands of the compare a branch keys on. *)
let const_branches fname func reach instrs =
  let graph = Cfg.graph (Cfg.make func) in
  let facts = Analysis.Copyconst.solve ~graph ~instrs () in
  let out = ref [] in
  Array.iteri
    (fun bi is ->
      if reach.(bi) && Analysis.Copyconst.reached facts.Analysis.Copyconst.fact_in.(bi)
      then begin
        let f = ref facts.Analysis.Copyconst.fact_in.(bi) in
        let cmp = ref None in
        List.iter
          (fun i ->
            (match i with
            | Rtl.Cmp (a, b) ->
              cmp :=
                Some
                  ( Analysis.Copyconst.operand_const !f a,
                    Analysis.Copyconst.operand_const !f b )
            | _ when Reg.Set.mem Reg.Cc (Rtl.defs i) ->
              (* The condition code is clobbered by something we cannot
                 model (e.g. a call); forget the compare. *)
              cmp := None
            | Rtl.Branch (c, l) -> (
              match !cmp with
              | Some (Some x, Some y) ->
                out :=
                  Diag.make ~severity:Diag.Warn Diag.Const_branch ~func:fname
                    ~pass:"lint"
                    (Printf.sprintf "%s: branch to %s is %s"
                       (Label.to_string (Func.block func bi).label)
                       (Label.to_string l)
                       (if Rtl.eval_cond c x y then "always taken"
                        else "never taken"))
                  :: !out
              | _ -> ())
            | _ -> ());
            f := Analysis.Copyconst.step i !f)
          is
      end)
    instrs;
  List.rev !out

(* Control transfers landing on a block that only jumps again, and
   unconditional jumps to the positionally next block. *)
let jump_chains fname func reach =
  let out = ref [] in
  let n = Func.num_blocks func in
  Array.iteri
    (fun bi (b : Func.block) ->
      if reach.(bi) then begin
        List.iter
          (fun instr ->
            List.iter
              (fun l ->
                let ti = Func.index_of_label func l in
                match (Func.block func ti).instrs with
                | [ Rtl.Jump l' ] ->
                  out :=
                    Diag.make Diag.Jump_chain ~func:fname ~pass:"lint"
                      (Printf.sprintf
                         "%s: transfer to %s lands on a jump-only block \
                          (continuing to %s)"
                         (Label.to_string b.label) (Label.to_string l)
                         (Label.to_string l'))
                    :: !out
                | _ -> ())
              (Rtl.targets instr))
          b.instrs;
        match Func.terminator b with
        | Some (Rtl.Jump l)
          when bi + 1 < n && Label.equal l (Func.block func (bi + 1)).label ->
          out :=
            Diag.make Diag.Jump_chain ~func:fname ~pass:"lint"
              (Printf.sprintf
                 "%s: unconditional jump to the next block %s (fall through \
                  instead)"
                 (Label.to_string b.label) (Label.to_string l))
            :: !out
        | _ -> ()
      end)
    (Func.blocks func);
  List.rev !out

let unreachable_blocks fname func reach =
  let out = ref [] in
  Array.iteri
    (fun i ok ->
      if not ok then
        out :=
          Diag.make Diag.Unreachable_code ~func:fname ~pass:"lint"
            (Printf.sprintf "%s: block unreachable from the entry"
               (Label.to_string (Func.block func i).label))
          :: !out)
    reach;
  List.rev !out

let replication_outlook config fname func =
  List.map
    (diag_of_decision ~func:fname ~pass:"lint")
    (Replication.Jumps.explain ~config func)

let check_func ?(config = Replication.Jumps.default_config) func =
  let fname = Func.name func in
  match Check.errors func with
  | _ :: _ as errs ->
    [
      Diag.make Diag.Malformed_ir ~func:fname ~pass:"lint"
        (Printf.sprintf "ill-formed function, lint skipped:\n  %s"
           (String.concat "\n  " errs));
    ]
  | [] -> (
    let cfg = Cfg.make func in
    let reach = Cfg.reachable cfg in
    let instrs =
      Array.map (fun (b : Func.block) -> b.instrs) (Func.blocks func)
    in
    (* A diverging fixpoint is a finding about the function, not a crash:
       surface it as one typed diagnostic and skip the fact-based rules. *)
    match
      uninit_reads fname func cfg reach instrs
      @ dead_stores fname func reach
      @ const_branches fname func reach instrs
    with
    | exception Analysis.Dataflow.Diverged msg ->
      Diag.make Diag.Analysis_diverged ~func:fname ~pass:"lint" msg
      :: jump_chains fname func reach
      @ unreachable_blocks fname func reach
      @ replication_outlook config fname func
    | fact_findings ->
      fact_findings
      @ jump_chains fname func reach
      @ unreachable_blocks fname func reach
      @ replication_outlook config fname func)

let check_prog ?config (prog : Prog.t) =
  List.concat_map (fun f -> check_func ?config f) prog.funcs

type summary = { errors : int; warnings : int }

let summarize diags =
  List.fold_left
    (fun acc (d : Diag.t) ->
      match d.severity with
      | Diag.Err -> { acc with errors = acc.errors + 1 }
      | Diag.Warn -> { acc with warnings = acc.warnings + 1 })
    { errors = 0; warnings = 0 }
    diags
