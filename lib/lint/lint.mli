(** Static-analysis lint over compiled (or freshly generated) RTL.

    Every rule reports a typed {!Telemetry.Diag.t}, so the CLI renders lint
    findings, [explain] decisions and pipeline diagnostics through one
    channel, with one JSON encoding and one [--strict] exit-code policy.

    Error-severity rules flag conditions a healthy pipeline output never
    exhibits (reads of undefined virtual registers, dead stores, jump
    chains, unreachable blocks); warning-severity rules surface facts worth
    human review (statically decidable branches, and the per-jump
    replication outlook: wholesale loop copies, growth estimates, residual
    jumps the paper's transformation cannot remove). *)

(** Per-jump replication outlook as a diagnostic: [Loop_replication] when
    the copy completes a natural loop, [Code_growth] for a plain copy
    (message carries the RTL cost), [Jump_residual] when no replication is
    legal — all warning severity, message via
    [Replication.Jumps.decision_to_string]. *)
val diag_of_decision :
  func:string ->
  pass:string ->
  (Ir.Label.t * Ir.Label.t) * Replication.Jumps.decision ->
  Telemetry.Diag.t

(** Run every rule on one function.  When the function fails the IR
    verifier's structural checks, a single [Malformed_ir] finding is
    returned instead (the analyses assume well-formed input).  [config]
    parameterizes the replication outlook (default
    [Replication.Jumps.default_config]). *)
val check_func :
  ?config:Replication.Jumps.config -> Flow.Func.t -> Telemetry.Diag.t list

val check_prog :
  ?config:Replication.Jumps.config -> Flow.Prog.t -> Telemetry.Diag.t list

type summary = { errors : int; warnings : int }

val summarize : Telemetry.Diag.t list -> summary
