type config = {
  size_bytes : int;
  line_bytes : int;
  context_switches : bool;
  assoc : int;
}

type t = {
  config : config;
  num_sets : int;
  tags : int array;  (** [set * assoc + way]; -1 = invalid *)
  stamps : int array;  (** LRU timestamps, parallel to [tags] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable time : int;  (** accumulated fetch cost *)
  mutable next_flush : int;  (** time of the next context switch *)
}

let hit_cost = 1
let miss_cost = 10
let flush_interval = 10_000

let paper_configs =
  List.concat_map
    (fun kb ->
      List.map
        (fun cs ->
          {
            size_bytes = kb * 1024;
            line_bytes = 16;
            context_switches = cs;
            assoc = 1;
          })
        [ true; false ])
    [ 1; 2; 4; 8 ]

let direct_mapped ~kb =
  { size_bytes = kb * 1024; line_bytes = 16; context_switches = false; assoc = 1 }

let config_name c =
  Printf.sprintf "%dKb/%s/ctx-%s" (c.size_bytes / 1024)
    (if c.assoc = 1 then "direct" else Printf.sprintf "%d-way" c.assoc)
    (if c.context_switches then "on" else "off")

let create config =
  if config.size_bytes mod config.line_bytes <> 0 then
    invalid_arg "Icache.create: size not a multiple of the line size";
  if config.assoc < 1 then invalid_arg "Icache.create: associativity < 1";
  let num_lines = config.size_bytes / config.line_bytes in
  if num_lines mod config.assoc <> 0 then
    invalid_arg "Icache.create: lines not a multiple of the associativity";
  let num_sets = num_lines / config.assoc in
  {
    config;
    num_sets;
    tags = Array.make num_lines (-1);
    stamps = Array.make num_lines 0;
    tick = 0;
    hits = 0;
    misses = 0;
    time = 0;
    next_flush = flush_interval;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.time <- 0;
  t.next_flush <- flush_interval

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let access_line t line =
  if t.config.context_switches && t.time >= t.next_flush then begin
    flush t;
    (* Catch up in whole intervals in case a long gap accumulated. *)
    while t.next_flush <= t.time do
      t.next_flush <- t.next_flush + flush_interval
    done
  end;
  let assoc = t.config.assoc in
  let set = line mod t.num_sets in
  let base = set * assoc in
  t.tick <- t.tick + 1;
  (* Look for a hit; remember the least recently used way for replacement. *)
  let rec find way lru =
    if way = assoc then `Evict lru
    else if t.tags.(base + way) = line then `Hit way
    else begin
      let lru =
        if t.tags.(base + way) = -1 then way (* free way wins outright *)
        else if t.tags.(base + lru) <> -1
                && t.stamps.(base + way) < t.stamps.(base + lru)
        then way
        else lru
      in
      find (way + 1) lru
    end
  in
  match find 0 0 with
  | `Hit way ->
    t.stamps.(base + way) <- t.tick;
    t.hits <- t.hits + 1;
    t.time <- t.time + hit_cost
  | `Evict way ->
    t.tags.(base + way) <- line;
    t.stamps.(base + way) <- t.tick;
    t.misses <- t.misses + 1;
    t.time <- t.time + miss_cost

let access t ~addr ~size =
  let first = addr / t.config.line_bytes in
  let last = (addr + max 1 size - 1) / t.config.line_bytes in
  for line = first to last do
    access_line t line
  done

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let miss_ratio t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.misses /. float_of_int n

let fetch_cost t = (t.hits * hit_cost) + (t.misses * miss_cost)
