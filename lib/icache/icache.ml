type config = {
  size_bytes : int;
  line_bytes : int;
  context_switches : bool;
  assoc : int;
}

type t = {
  config : config;
  num_sets : int;
  tags : int array;  (** [set * assoc + way]; -1 = invalid *)
  stamps : int array;  (** LRU timestamps, parallel to [tags] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable time : int;  (** accumulated fetch cost *)
  mutable next_flush : int;  (** time of the next context switch *)
}

let hit_cost = 1
let miss_cost = 10
let flush_interval = 10_000

let paper_configs =
  List.concat_map
    (fun kb ->
      List.map
        (fun cs ->
          {
            size_bytes = kb * 1024;
            line_bytes = 16;
            context_switches = cs;
            assoc = 1;
          })
        [ true; false ])
    [ 1; 2; 4; 8 ]

let direct_mapped ~kb =
  { size_bytes = kb * 1024; line_bytes = 16; context_switches = false; assoc = 1 }

let config_name c =
  Printf.sprintf "%dKb/%s/ctx-%s" (c.size_bytes / 1024)
    (if c.assoc = 1 then "direct" else Printf.sprintf "%d-way" c.assoc)
    (if c.context_switches then "on" else "off")

let create config =
  if config.size_bytes mod config.line_bytes <> 0 then
    invalid_arg "Icache.create: size not a multiple of the line size";
  if config.assoc < 1 then invalid_arg "Icache.create: associativity < 1";
  let num_lines = config.size_bytes / config.line_bytes in
  if num_lines mod config.assoc <> 0 then
    invalid_arg "Icache.create: lines not a multiple of the associativity";
  let num_sets = num_lines / config.assoc in
  {
    config;
    num_sets;
    tags = Array.make num_lines (-1);
    stamps = Array.make num_lines 0;
    tick = 0;
    hits = 0;
    misses = 0;
    time = 0;
    next_flush = flush_interval;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.time <- 0;
  t.next_flush <- flush_interval

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let access_line t line =
  if t.config.context_switches && t.time >= t.next_flush then begin
    flush t;
    (* Catch up in whole intervals in case a long gap accumulated. *)
    while t.next_flush <= t.time do
      t.next_flush <- t.next_flush + flush_interval
    done
  end;
  let assoc = t.config.assoc in
  let set = line mod t.num_sets in
  let base = set * assoc in
  t.tick <- t.tick + 1;
  (* Look for a hit; remember the least recently used way for replacement. *)
  let rec find way lru =
    if way = assoc then `Evict lru
    else if t.tags.(base + way) = line then `Hit way
    else begin
      let lru =
        if t.tags.(base + way) = -1 then way (* free way wins outright *)
        else if t.tags.(base + lru) <> -1
                && t.stamps.(base + way) < t.stamps.(base + lru)
        then way
        else lru
      in
      find (way + 1) lru
    end
  in
  match find 0 0 with
  | `Hit way ->
    t.stamps.(base + way) <- t.tick;
    t.hits <- t.hits + 1;
    t.time <- t.time + hit_cost
  | `Evict way ->
    t.tags.(base + way) <- line;
    t.stamps.(base + way) <- t.tick;
    t.misses <- t.misses + 1;
    t.time <- t.time + miss_cost

let access t ~addr ~size =
  let first = addr / t.config.line_bytes in
  let last = (addr + max 1 size - 1) / t.config.line_bytes in
  for line = first to last do
    access_line t line
  done

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let miss_ratio t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.misses /. float_of_int n

let fetch_cost t = (t.hits * hit_cost) + (t.misses * miss_cost)

(* A bank feeds one fetch stream to many configurations in a single pass.
   Per-cache state lives in flat int arrays indexed by a per-config
   offset, and the hit/LRU scan is a plain loop over ints, so an access
   allocates nothing — unlike a [List.iter] over [t]s, which pays a
   closure call and cache-line scatter per config.  The update rules are
   the same as [access_line]'s, quirks included (the per-line flush
   check, tick-then-scan ordering, and the last-free-way-wins LRU
   choice), so a bank's statistics are equal to running each config
   through [access] separately. *)
module Bank = struct
  type bank = {
    configs : config array;
    offsets : int array;  (** start of each config's ways in [tags] *)
    lines_per : int array;
    num_sets : int array;
    assocs : int array;
    line_bytes : int array;
    line_shift : int array;  (** log2 of [line_bytes]; -1 if not a power of 2 *)
    set_mask : int array;  (** [num_sets - 1] when a power of 2, else -1 *)
    ctx : bool array;
    uniform_shift : int;
        (** line shift shared by {e all} configs when every one is
            direct-mapped with the same power-of-two line size and a
            power-of-two set count (the paper's eight geometries); -1
            otherwise.  Gates the fast path in [access]. *)
    tags : int array;
    stamps : int array;
    ticks : int array;
    bhits : int array;
    bmisses : int array;
    times : int array;
    next_flush : int array;
    (* Same-line run memo (uniform banks only).  After any access, the
       last line touched is resident in every config, so a following
       fetch confined to that line is a guaranteed hit everywhere — it
       can be tallied with one counter bump instead of a config loop.
       [pending] holds such unmaterialized hits (one per config each);
       [headroom] bounds the run so no context-switch flush comes due
       while the per-config [times] are stale. *)
    mutable last_line : int;
    mutable pending : int;
    mutable headroom : int;
  }

  type t = bank

  let create config_list =
    let configs = Array.of_list config_list in
    let n = Array.length configs in
    let offsets = Array.make n 0 in
    let lines_per = Array.make n 0 in
    let num_sets = Array.make n 0 in
    let assocs = Array.make n 0 in
    let line_bytes = Array.make n 0 in
    let line_shift = Array.make n (-1) in
    let set_mask = Array.make n (-1) in
    let ctx = Array.make n false in
    let log2_exact x =
      let rec go s = if 1 lsl s = x then s else if 1 lsl s > x then -1 else go (s + 1) in
      if x > 0 then go 0 else -1
    in
    let total = ref 0 in
    for i = 0 to n - 1 do
      let c = configs.(i) in
      if c.size_bytes mod c.line_bytes <> 0 then
        invalid_arg "Icache.Bank.create: size not a multiple of the line size";
      if c.assoc < 1 then invalid_arg "Icache.Bank.create: associativity < 1";
      let lines = c.size_bytes / c.line_bytes in
      if lines mod c.assoc <> 0 then
        invalid_arg
          "Icache.Bank.create: lines not a multiple of the associativity";
      offsets.(i) <- !total;
      lines_per.(i) <- lines;
      num_sets.(i) <- lines / c.assoc;
      assocs.(i) <- c.assoc;
      line_bytes.(i) <- c.line_bytes;
      line_shift.(i) <- log2_exact c.line_bytes;
      set_mask.(i) <-
        (if log2_exact num_sets.(i) >= 0 then num_sets.(i) - 1 else -1);
      ctx.(i) <- c.context_switches;
      total := !total + lines
    done;
    let uniform_shift =
      if
        n > 0
        && line_shift.(0) >= 0
        && Array.for_all (fun s -> s = line_shift.(0)) line_shift
        && Array.for_all (fun a -> a = 1) assocs
        && Array.for_all (fun m -> m >= 0) set_mask
      then line_shift.(0)
      else -1
    in
    {
      configs;
      offsets;
      lines_per;
      num_sets;
      assocs;
      line_bytes;
      line_shift;
      set_mask;
      ctx;
      uniform_shift;
      tags = Array.make !total (-1);
      stamps = Array.make !total 0;
      ticks = Array.make n 0;
      bhits = Array.make n 0;
      bmisses = Array.make n 0;
      times = Array.make n 0;
      next_flush = Array.make n flush_interval;
      last_line = -1;
      pending = 0;
      headroom = 0;
    }

  let reset t =
    Array.fill t.tags 0 (Array.length t.tags) (-1);
    Array.fill t.stamps 0 (Array.length t.stamps) 0;
    let n = Array.length t.configs in
    Array.fill t.ticks 0 n 0;
    Array.fill t.bhits 0 n 0;
    Array.fill t.bmisses 0 n 0;
    Array.fill t.times 0 n 0;
    Array.fill t.next_flush 0 n flush_interval;
    t.last_line <- -1;
    t.pending <- 0;
    t.headroom <- 0

  (* Materialize the memoized same-line hits into the per-config
     statistics.  Every statistics reader and every slow-path access
     goes through here first, so the counters observable from outside
     are always exact. *)
  let settle t =
    let p = t.pending in
    if p > 0 then begin
      t.pending <- 0;
      for i = 0 to Array.length t.configs - 1 do
        t.bhits.(i) <- t.bhits.(i) + p;
        t.times.(i) <- t.times.(i) + (p * hit_cost)
      done
    end

  (* How many consecutive guaranteed hits are safe before some
     context-switching config's flush comes due.  Conservative (integer
     division rounds down), which only sends us to the slow path a hair
     early. *)
  let compute_headroom t =
    let n = Array.length t.configs in
    let h = ref max_int in
    for i = 0 to n - 1 do
      if t.ctx.(i) then begin
        let room = (t.next_flush.(i) - t.times.(i)) / hit_cost in
        if room < !h then h := room
      end
    done;
    if !h = max_int then max_int else max 0 !h

  (* All-direct-mapped banks (every paper sweep) take this path: the
     line range is computed once instead of per config, the tags index
     is one add, and the LRU timestamps are not maintained — a
     direct-mapped set never consults them, so hits/misses/times are
     unchanged (the Bank-vs-singleton equivalence tests hold this to
     account).  Indices are in range by construction: [set_mask.(i)]
     masks the line into [0, num_sets), and [offsets.(i) + set] stays
     inside config [i]'s slice of [tags]. *)
  let access_uniform t ~first ~last =
    let tags = t.tags in
    let slow_path = first <> last || first <> t.last_line || t.headroom <= 0 in
    if not slow_path then begin
      (* The whole fetch stays in the line every config just loaded:
         one hit per config, deferred into [pending]. *)
      t.pending <- t.pending + 1;
      t.headroom <- t.headroom - 1
    end
    else begin
    settle t;
    let offsets = t.offsets and set_mask = t.set_mask in
    let bhits = t.bhits and bmisses = t.bmisses and times = t.times in
    let ctx = t.ctx and next_flush = t.next_flush in
    let n = Array.length t.configs in
    for line = first to last do
      for i = 0 to n - 1 do
        if Array.unsafe_get ctx i
           && Array.unsafe_get times i >= Array.unsafe_get next_flush i
        then begin
          Array.fill tags t.offsets.(i) t.lines_per.(i) (-1);
          while next_flush.(i) <= times.(i) do
            next_flush.(i) <- next_flush.(i) + flush_interval
          done
        end;
        let base =
          Array.unsafe_get offsets i + (line land Array.unsafe_get set_mask i)
        in
        if Array.unsafe_get tags base = line then begin
          Array.unsafe_set bhits i (Array.unsafe_get bhits i + 1);
          Array.unsafe_set times i (Array.unsafe_get times i + hit_cost)
        end
        else begin
          Array.unsafe_set tags base line;
          Array.unsafe_set bmisses i (Array.unsafe_get bmisses i + 1);
          Array.unsafe_set times i (Array.unsafe_get times i + miss_cost)
        end
      done
    done;
    t.last_line <- last;
    t.headroom <- compute_headroom t
    end

  let access_general t ~addr ~span =
    let tags = t.tags and stamps = t.stamps in
    for i = 0 to Array.length t.configs - 1 do
      let off = t.offsets.(i) in
      let assoc = t.assocs.(i) in
      (* Integer division dominates an otherwise branch-and-load-only
         access; the paper's geometries are all powers of two, so the
         common path is shifts and masks. *)
      let sh = t.line_shift.(i) in
      let first, last =
        if sh >= 0 then (addr asr sh, (addr + span) asr sh)
        else
          let lb = t.line_bytes.(i) in
          (addr / lb, (addr + span) / lb)
      in
      for line = first to last do
        if t.ctx.(i) && t.times.(i) >= t.next_flush.(i) then begin
          Array.fill tags off t.lines_per.(i) (-1);
          while t.next_flush.(i) <= t.times.(i) do
            t.next_flush.(i) <- t.next_flush.(i) + flush_interval
          done
        end;
        let mask = t.set_mask.(i) in
        let set = if mask >= 0 then line land mask else line mod t.num_sets.(i) in
        if assoc = 1 then begin
          (* Direct-mapped (every paper config): the scan degenerates to
             one compare, the sole way is its own LRU choice, and the
             timestamps are never read back. *)
          let base = off + set in
          if tags.(base) = line then begin
            t.bhits.(i) <- t.bhits.(i) + 1;
            t.times.(i) <- t.times.(i) + hit_cost
          end
          else begin
            tags.(base) <- line;
            t.bmisses.(i) <- t.bmisses.(i) + 1;
            t.times.(i) <- t.times.(i) + miss_cost
          end
        end
        else begin
          let tick = t.ticks.(i) + 1 in
          t.ticks.(i) <- tick;
          let base = off + (set * assoc) in
          let hit = ref (-1) in
          let lru = ref 0 in
          let way = ref 0 in
          while !hit < 0 && !way < assoc do
            if tags.(base + !way) = line then hit := !way
            else begin
              if tags.(base + !way) = -1 then lru := !way
              else if
                tags.(base + !lru) <> -1
                && stamps.(base + !way) < stamps.(base + !lru)
              then lru := !way;
              incr way
            end
          done;
          if !hit >= 0 then begin
            stamps.(base + !hit) <- tick;
            t.bhits.(i) <- t.bhits.(i) + 1;
            t.times.(i) <- t.times.(i) + hit_cost
          end
          else begin
            tags.(base + !lru) <- line;
            stamps.(base + !lru) <- tick;
            t.bmisses.(i) <- t.bmisses.(i) + 1;
            t.times.(i) <- t.times.(i) + miss_cost
          end
        end
      done
    done

  let access t ~addr ~size =
    let span = max 1 size - 1 in
    let sh = t.uniform_shift in
    if sh >= 0 then
      access_uniform t ~first:(addr asr sh) ~last:((addr + span) asr sh)
    else access_general t ~addr ~span

  let configs t = t.configs

  let hits t i =
    settle t;
    t.bhits.(i)

  let misses t i =
    settle t;
    t.bmisses.(i)

  let accesses t i =
    settle t;
    t.bhits.(i) + t.bmisses.(i)

  let miss_ratio t i =
    let n = accesses t i in
    if n = 0 then 0.0 else float_of_int t.bmisses.(i) /. float_of_int n

  let fetch_cost t i =
    settle t;
    (t.bhits.(i) * hit_cost) + (t.bmisses.(i) * miss_cost)
end
