(** Direct-mapped instruction-cache simulator (paper §5.3).

    Parameters follow the paper exactly: direct-mapped, 16-byte lines,
    sizes 1/2/4/8 KiB; a hit costs 1 time unit and a miss 10; fetch cost is
    [hits * 1 + misses * 10]; with context switching enabled the entire
    cache is invalidated every 10,000 time units (values from Smith's cache
    studies, as in the paper).

    An instruction fetch touches the line containing its first byte and,
    when it straddles a line boundary (variable-length CISC instructions),
    the following line too. *)

type t

type config = {
  size_bytes : int;  (** total capacity; must be a multiple of [line_bytes] *)
  line_bytes : int;  (** 16 in the paper *)
  context_switches : bool;  (** invalidate every 10,000 time units *)
  assoc : int;
      (** associativity (LRU within a set); the paper's caches are
          direct-mapped, i.e. [assoc = 1] *)
}

(** The paper's eight configurations: 1/2/4/8 KiB × context switches
    on/off, 16-byte lines, direct-mapped. *)
val paper_configs : config list

(** A direct-mapped configuration without context switches. *)
val direct_mapped : kb:int -> config

val config_name : config -> string

val create : config -> t

(** Reset cache contents and statistics. *)
val reset : t -> unit

(** Feed one instruction fetch. *)
val access : t -> addr:int -> size:int -> unit

val hits : t -> int
val misses : t -> int
val accesses : t -> int

(** [misses / accesses], 0 when idle. *)
val miss_ratio : t -> float

(** [hits * 1 + misses * 10] (time units). *)
val fetch_cost : t -> int

(** Many configurations fed by one fetch stream in a single pass.

    State lives in flat int arrays shared across configurations, and an
    access allocates nothing.  Statistics per configuration are equal to
    feeding the same stream through a dedicated {!t} — a property the
    test suite checks against random streams. *)
module Bank : sig
  type t

  val create : config list -> t
  val reset : t -> unit
  val access : t -> addr:int -> size:int -> unit

  (** Configurations in creation order; the [int] arguments below index
      this array. *)
  val configs : t -> config array

  val hits : t -> int -> int
  val misses : t -> int -> int
  val accesses : t -> int -> int
  val miss_ratio : t -> int -> float
  val fetch_cost : t -> int -> int
end
