open Ir

type counts = {
  mutable total : int;
  mutable cond_branches : int;
  mutable jumps : int;
  mutable ijumps : int;
  mutable calls : int;
  mutable rets : int;
  mutable nops : int;
  mutable loads : int;
  mutable stores : int;
}

let uncond_jumps c = c.jumps + c.ijumps

let transfers c = c.cond_branches + c.jumps + c.ijumps + c.calls + c.rets

type result = {
  output : string;
  exit_code : int;
  counts : counts;
  timed_out : bool;
}

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

exception Exit_program of int

(* Step-budget exhaustion is a distinct outcome, not a runtime fault: the
   fuzzer uses it to tell a diverging (miscompiled-into-a-loop) program
   from a crashing one. *)
exception Out_of_steps

type state = {
  asm : Asm.t;
  image : Image.t;
  phys : int array;
  mutable vregs : (int, int) Hashtbl.t;
  mutable cc : int;  (** sign of the last comparison *)
  mutable func : Asm.afunc;
  mutable pos : int;
  mutable stack : (Asm.afunc * int * (int, int) Hashtbl.t) list;
  input : string;
  mutable input_pos : int;
  output : Buffer.t;
  counts : counts;
  on_fetch : addr:int -> size:int -> unit;
  mutable steps_left : int;
  log : Telemetry.Log.t;
  log_on : bool;  (** [Log.enabled log], hoisted out of the fetch loop *)
}

(* One [Sim_progress] heartbeat per this many executed instructions. *)
let progress_interval = 5_000_000

let get_reg st = function
  | Reg.Phys i -> st.phys.(i)
  | Reg.Virt i -> ( match Hashtbl.find_opt st.vregs i with Some v -> v | None -> 0)
  | Reg.Cc -> st.cc

let set_reg st r v =
  match r with
  | Reg.Phys i -> st.phys.(i) <- v
  | Reg.Virt i -> Hashtbl.replace st.vregs i v
  | Reg.Cc -> st.cc <- v

let addr_value st = function
  | Rtl.Based (r, d) -> get_reg st r + d
  | Rtl.Indexed (b, i, s, d) -> get_reg st b + (get_reg st i * s) + d
  | Rtl.Abs (sym, off) -> (
    match Image.symbol st.image sym with
    | a -> a + off
    | exception Not_found -> error "unknown symbol %s" sym)

let load st w a =
  let addr = addr_value st a in
  match w with
  | Rtl.Byte -> Image.load_byte st.image addr
  | Rtl.Word -> Image.load_word st.image addr

let operand_value st = function
  | Rtl.Reg r -> get_reg st r
  | Rtl.Imm n -> n
  | Rtl.Mem (w, a) -> load st w a

let store_loc st loc v =
  match loc with
  | Rtl.Lreg r -> set_reg st r v
  | Rtl.Lmem (w, a) -> (
    let addr = addr_value st a in
    match w with
    | Rtl.Byte -> Image.store_byte st.image addr v
    | Rtl.Word -> Image.store_word st.image addr v)

let eval_cc cond cc =
  match cond with
  | Rtl.Eq -> cc = 0
  | Rtl.Ne -> cc <> 0
  | Rtl.Lt -> cc < 0
  | Rtl.Le -> cc <= 0
  | Rtl.Gt -> cc > 0
  | Rtl.Ge -> cc >= 0

(* Account for one executed instruction. *)
let count st instr pos =
  let c = st.counts in
  c.total <- c.total + 1;
  (match instr with
  | Rtl.Branch _ -> c.cond_branches <- c.cond_branches + 1
  | Rtl.Jump _ -> c.jumps <- c.jumps + 1
  | Rtl.Ijump _ -> c.ijumps <- c.ijumps + 1
  | Rtl.Call _ -> c.calls <- c.calls + 1
  | Rtl.Ret -> c.rets <- c.rets + 1
  | Rtl.Nop -> c.nops <- c.nops + 1
  | Rtl.Move _ | Rtl.Lea _ | Rtl.Binop _ | Rtl.Unop _ | Rtl.Cmp _
  | Rtl.Enter _ | Rtl.Leave ->
    ());
  if Rtl.reads_mem instr then c.loads <- c.loads + 1;
  if Rtl.writes_mem instr then c.stores <- c.stores + 1;
  st.on_fetch ~addr:st.func.addrs.(pos) ~size:st.func.sizes.(pos);
  if st.log_on && c.total mod progress_interval = 0 then
    Telemetry.Log.emit st.log (fun () ->
        Telemetry.Log.Sim_progress { instrs = c.total });
  st.steps_left <- st.steps_left - 1;
  if st.steps_left <= 0 then raise Out_of_steps

let builtin_call st name nargs =
  let arg i = st.phys.(match Conv.arg_reg i with Reg.Phys k -> k | _ -> 0) in
  ignore nargs;
  match name with
  | "getchar" ->
    let v =
      if st.input_pos < String.length st.input then begin
        let c = Char.code st.input.[st.input_pos] in
        st.input_pos <- st.input_pos + 1;
        c
      end
      else -1
    in
    set_reg st Conv.rv v;
    true
  | "putchar" ->
    Buffer.add_char st.output (Char.chr (arg 0 land 0xff));
    set_reg st Conv.rv (arg 0);
    true
  | "exit" -> raise (Exit_program (arg 0))
  | _ -> false

(* Execute a non-transfer instruction's effect. *)
let exec_simple st instr =
  match instr with
  | Rtl.Move (loc, src) -> store_loc st loc (operand_value st src)
  | Rtl.Lea (r, a) -> set_reg st r (addr_value st a)
  | Rtl.Binop (op, loc, a, b) ->
    let va = operand_value st a and vb = operand_value st b in
    let v =
      match Rtl.eval_binop op va vb with
      | v -> v
      | exception Division_by_zero -> error "division by zero"
    in
    store_loc st loc v
  | Rtl.Unop (op, loc, a) -> store_loc st loc (Rtl.eval_unop op (operand_value st a))
  | Rtl.Cmp (a, b) ->
    st.cc <- Int.compare (operand_value st a) (operand_value st b)
  | Rtl.Enter n ->
    let sp = get_reg st Conv.sp in
    Image.store_word st.image (sp - 4) (get_reg st Conv.fp);
    set_reg st Conv.fp sp;
    set_reg st Conv.sp (sp - n)
  | Rtl.Leave ->
    let fp = get_reg st Conv.fp in
    set_reg st Conv.sp fp;
    set_reg st Conv.fp (Image.load_word st.image (fp - 4))
  | Rtl.Nop -> ()
  | Rtl.Branch _ | Rtl.Jump _ | Rtl.Ijump _ | Rtl.Call _ | Rtl.Ret ->
    assert false

(* Execute the delay slot at [pos] (RISC only).  A squashed annulled slot
   is fetched by the hardware but not executed: it reaches the cache
   callback without entering the instruction counts. *)
let exec_slot ?(squashed = false) st pos =
  if st.asm.machine.Machine.delay_slots then begin
    if pos >= Array.length st.func.code then error "delay slot off the end";
    let slot = st.func.code.(pos) in
    if Rtl.is_transfer slot then error "transfer in a delay slot";
    if squashed then
      st.on_fetch ~addr:st.func.addrs.(pos) ~size:st.func.sizes.(pos)
    else begin
      count st slot pos;
      exec_simple st slot
    end
  end

let after_transfer st = if st.asm.machine.Machine.delay_slots then 2 else 1

let goto_label st l =
  match Asm.find_label st.func l with
  | pos ->
    if pos >= Array.length st.func.code then
      error "label %s points past the end of %s" (Label.to_string l)
        st.func.aname;
    st.pos <- pos
  | exception Not_found ->
    error "unknown label %s in %s" (Label.to_string l) st.func.aname

(* Where a taken transfer at [pos] resumes: its recorded override (slot
   filled from the target) or the label itself. *)
let transfer_target st pos l =
  let ov = st.func.Asm.target_override.(pos) in
  if ov >= 0 then st.pos <- ov else goto_label st l

let slot_annulled st pos =
  st.asm.machine.Machine.delay_slots
  && pos + 1 < Array.length st.func.Asm.annulled
  && st.func.Asm.annulled.(pos + 1)

let run ?(max_steps = 400_000_000) ?(input = "")
    ?(on_fetch = fun ~addr:_ ~size:_ -> ()) ?(log = Telemetry.Log.null)
    (asm : Asm.t) (prog : Flow.Prog.t) =
  let image = Image.build prog in
  let main =
    match Asm.find_func asm "main" with
    | Some f -> f
    | None -> error "no main function"
  in
  let counts =
    {
      total = 0;
      cond_branches = 0;
      jumps = 0;
      ijumps = 0;
      calls = 0;
      rets = 0;
      nops = 0;
      loads = 0;
      stores = 0;
    }
  in
  let st =
    {
      asm;
      image;
      phys = Array.make Conv.num_regs 0;
      vregs = Hashtbl.create 64;
      cc = 0;
      func = main;
      pos = 0;
      stack = [];
      input;
      input_pos = 0;
      output = Buffer.create 1024;
      counts;
      on_fetch;
      steps_left = max_steps;
      log;
      log_on = Telemetry.Log.enabled log;
    }
  in
  set_reg st Conv.sp (Image.size image);
  set_reg st Conv.fp (Image.size image);
  let timed_out = ref false in
  let exit_code =
    try
      let rec loop () =
        if st.pos >= Array.length st.func.code then
          error "fell off the end of %s" st.func.aname;
        let pos = st.pos in
        let instr = st.func.code.(pos) in
        count st instr pos;
        (match instr with
        | Rtl.Branch (cond, l) ->
          let taken = eval_cc cond st.cc in
          let squashed = (not taken) && slot_annulled st pos in
          exec_slot ~squashed st (pos + 1);
          if taken then transfer_target st pos l
          else st.pos <- pos + after_transfer st
        | Rtl.Jump l ->
          exec_slot st (pos + 1);
          transfer_target st pos l
        | Rtl.Ijump (r, table) ->
          let idx = get_reg st r in
          exec_slot st (pos + 1);
          if idx < 0 || idx >= Array.length table then
            error "jump-table index %d out of bounds" idx;
          goto_label st table.(idx)
        | Rtl.Call (name, nargs) ->
          exec_slot st (pos + 1);
          if builtin_call st name nargs then
            st.pos <- pos + after_transfer st
          else begin
            match Asm.find_func st.asm name with
            | Some callee ->
              st.stack <- (st.func, pos + after_transfer st, st.vregs) :: st.stack;
              st.vregs <- Hashtbl.create 16;
              st.func <- callee;
              st.pos <- 0
            | None -> error "call to undefined function %s" name
          end
        | Rtl.Ret -> (
          exec_slot st (pos + 1);
          match st.stack with
          | (f, p, vregs) :: rest ->
            st.stack <- rest;
            st.func <- f;
            st.vregs <- vregs;
            st.pos <- p
          | [] -> raise (Exit_program (get_reg st Conv.rv)))
        | Rtl.Move _ | Rtl.Lea _ | Rtl.Binop _ | Rtl.Unop _ | Rtl.Cmp _
        | Rtl.Enter _ | Rtl.Leave | Rtl.Nop ->
          exec_simple st instr;
          st.pos <- pos + 1);
        loop ()
      in
      loop ()
    with
    | Exit_program code -> code
    | Out_of_steps ->
      timed_out := true;
      124
    | Image.Fault msg -> raise (Runtime_error msg)
  in
  {
    output = Buffer.contents st.output;
    exit_code;
    counts;
    timed_out = !timed_out;
  }
