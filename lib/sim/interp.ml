open Ir

type counts = {
  mutable total : int;
  mutable cond_branches : int;
  mutable jumps : int;
  mutable ijumps : int;
  mutable calls : int;
  mutable rets : int;
  mutable nops : int;
  mutable loads : int;
  mutable stores : int;
}

let uncond_jumps c = c.jumps + c.ijumps

let transfers c = c.cond_branches + c.jumps + c.ijumps + c.calls + c.rets

type result = {
  output : string;
  exit_code : int;
  counts : counts;
  timed_out : bool;
}

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

exception Exit_program of int

(* Step-budget exhaustion is a distinct outcome, not a runtime fault: the
   fuzzer uses it to tell a diverging (miscompiled-into-a-loop) program
   from a crashing one. *)
exception Out_of_steps

type state = {
  asm : Asm.t;
  image : Image.t;
  phys : int array;
  mutable vregs : (int, int) Hashtbl.t;
  mutable cc : int;  (** sign of the last comparison *)
  mutable func : Asm.afunc;
  mutable pos : int;
  mutable stack : (Asm.afunc * int * (int, int) Hashtbl.t) list;
  input : string;
  mutable input_pos : int;
  output : Buffer.t;
  counts : counts;
  on_fetch : addr:int -> size:int -> unit;
  mutable steps_left : int;
  log : Telemetry.Log.t;
  log_on : bool;  (** [Log.enabled log], hoisted out of the fetch loop *)
  budget : Telemetry.Budget.t;
  budget_on : bool;  (** a caller-supplied budget is attached *)
}

(* One [Sim_progress] heartbeat per this many executed instructions. *)
let progress_interval = 5_000_000

(* How often (in executed instructions) an attached budget's deadline and
   cancel flag are polled.  Cooperative cancellation latency is this many
   steps; the poll is one land + one Atomic read (plus a clock read when a
   deadline is set). *)
let budget_interval_mask = 2047

(* Effective step budget: the explicit [max_steps] capped by the budget's
   fuel axis when one is attached. *)
let effective_steps budget max_steps =
  match budget with
  | Some b -> (
    match Telemetry.Budget.fuel b with
    | Some f -> min f max_steps
    | None -> max_steps)
  | None -> max_steps

let get_reg st = function
  | Reg.Phys i -> st.phys.(i)
  | Reg.Virt i -> ( match Hashtbl.find_opt st.vregs i with Some v -> v | None -> 0)
  | Reg.Cc -> st.cc

let set_reg st r v =
  match r with
  | Reg.Phys i -> st.phys.(i) <- v
  | Reg.Virt i -> Hashtbl.replace st.vregs i v
  | Reg.Cc -> st.cc <- v

let addr_value st = function
  | Rtl.Based (r, d) -> get_reg st r + d
  | Rtl.Indexed (b, i, s, d) -> get_reg st b + (get_reg st i * s) + d
  | Rtl.Abs (sym, off) -> (
    match Image.symbol st.image sym with
    | a -> a + off
    | exception Not_found -> error "unknown symbol %s" sym)

let load st w a =
  let addr = addr_value st a in
  match w with
  | Rtl.Byte -> Image.load_byte st.image addr
  | Rtl.Word -> Image.load_word st.image addr

let operand_value st = function
  | Rtl.Reg r -> get_reg st r
  | Rtl.Imm n -> n
  | Rtl.Mem (w, a) -> load st w a

let store_loc st loc v =
  match loc with
  | Rtl.Lreg r -> set_reg st r v
  | Rtl.Lmem (w, a) -> (
    let addr = addr_value st a in
    match w with
    | Rtl.Byte -> Image.store_byte st.image addr v
    | Rtl.Word -> Image.store_word st.image addr v)

let eval_cc cond cc =
  match cond with
  | Rtl.Eq -> cc = 0
  | Rtl.Ne -> cc <> 0
  | Rtl.Lt -> cc < 0
  | Rtl.Le -> cc <= 0
  | Rtl.Gt -> cc > 0
  | Rtl.Ge -> cc >= 0

(* Account for one executed instruction. *)
let count st instr pos =
  let c = st.counts in
  c.total <- c.total + 1;
  (match instr with
  | Rtl.Branch _ -> c.cond_branches <- c.cond_branches + 1
  | Rtl.Jump _ -> c.jumps <- c.jumps + 1
  | Rtl.Ijump _ -> c.ijumps <- c.ijumps + 1
  | Rtl.Call _ -> c.calls <- c.calls + 1
  | Rtl.Ret -> c.rets <- c.rets + 1
  | Rtl.Nop -> c.nops <- c.nops + 1
  | Rtl.Move _ | Rtl.Lea _ | Rtl.Binop _ | Rtl.Unop _ | Rtl.Cmp _
  | Rtl.Enter _ | Rtl.Leave ->
    ());
  if Rtl.reads_mem instr then c.loads <- c.loads + 1;
  if Rtl.writes_mem instr then c.stores <- c.stores + 1;
  st.on_fetch ~addr:st.func.addrs.(pos) ~size:st.func.sizes.(pos);
  if st.log_on && c.total mod progress_interval = 0 then
    Telemetry.Log.emit st.log (fun () ->
        Telemetry.Log.Sim_progress { instrs = c.total });
  if st.budget_on && c.total land budget_interval_mask = 0 then
    Telemetry.Budget.check st.budget;
  st.steps_left <- st.steps_left - 1;
  if st.steps_left <= 0 then raise Out_of_steps

let builtin_call st name nargs =
  let arg i = st.phys.(match Conv.arg_reg i with Reg.Phys k -> k | _ -> 0) in
  ignore nargs;
  match name with
  | "getchar" ->
    let v =
      if st.input_pos < String.length st.input then begin
        let c = Char.code st.input.[st.input_pos] in
        st.input_pos <- st.input_pos + 1;
        c
      end
      else -1
    in
    set_reg st Conv.rv v;
    true
  | "putchar" ->
    Buffer.add_char st.output (Char.chr (arg 0 land 0xff));
    set_reg st Conv.rv (arg 0);
    true
  | "exit" -> raise (Exit_program (arg 0))
  | _ -> false

(* Execute a non-transfer instruction's effect. *)
let exec_simple st instr =
  match instr with
  | Rtl.Move (loc, src) -> store_loc st loc (operand_value st src)
  | Rtl.Lea (r, a) -> set_reg st r (addr_value st a)
  | Rtl.Binop (op, loc, a, b) ->
    let va = operand_value st a and vb = operand_value st b in
    let v =
      match Rtl.eval_binop op va vb with
      | v -> v
      | exception Division_by_zero -> error "division by zero"
    in
    store_loc st loc v
  | Rtl.Unop (op, loc, a) -> store_loc st loc (Rtl.eval_unop op (operand_value st a))
  | Rtl.Cmp (a, b) ->
    st.cc <- Int.compare (operand_value st a) (operand_value st b)
  | Rtl.Enter n ->
    let sp = get_reg st Conv.sp in
    Image.store_word st.image (sp - 4) (get_reg st Conv.fp);
    set_reg st Conv.fp sp;
    set_reg st Conv.sp (sp - n)
  | Rtl.Leave ->
    let fp = get_reg st Conv.fp in
    set_reg st Conv.sp fp;
    set_reg st Conv.fp (Image.load_word st.image (fp - 4))
  | Rtl.Nop -> ()
  | Rtl.Branch _ | Rtl.Jump _ | Rtl.Ijump _ | Rtl.Call _ | Rtl.Ret ->
    assert false

(* Execute the delay slot at [pos] (RISC only).  A squashed annulled slot
   is fetched by the hardware but not executed: it reaches the cache
   callback without entering the instruction counts. *)
let exec_slot ?(squashed = false) st pos =
  if st.asm.machine.Machine.delay_slots then begin
    if pos >= Array.length st.func.code then error "delay slot off the end";
    let slot = st.func.code.(pos) in
    if Rtl.is_transfer slot then error "transfer in a delay slot";
    if squashed then
      st.on_fetch ~addr:st.func.addrs.(pos) ~size:st.func.sizes.(pos)
    else begin
      count st slot pos;
      exec_simple st slot
    end
  end

let after_transfer st = if st.asm.machine.Machine.delay_slots then 2 else 1

let goto_label st l =
  match Asm.find_label st.func l with
  | pos ->
    if pos >= Array.length st.func.code then
      error "label %s points past the end of %s" (Label.to_string l)
        st.func.aname;
    st.pos <- pos
  | exception Not_found ->
    error "unknown label %s in %s" (Label.to_string l) st.func.aname

(* Where a taken transfer at [pos] resumes: its recorded override (slot
   filled from the target) or the label itself. *)
let transfer_target st pos l =
  let ov = st.func.Asm.target_override.(pos) in
  if ov >= 0 then st.pos <- ov else goto_label st l

let slot_annulled st pos =
  st.asm.machine.Machine.delay_slots
  && pos + 1 < Array.length st.func.Asm.annulled
  && st.func.Asm.annulled.(pos + 1)

let run_reference ?(max_steps = 400_000_000) ?(input = "")
    ?(on_fetch = fun ~addr:_ ~size:_ -> ()) ?(log = Telemetry.Log.null) ?budget
    (asm : Asm.t) (prog : Flow.Prog.t) =
  let max_steps = effective_steps budget max_steps in
  let image = Image.build prog in
  let main =
    match Asm.find_func asm "main" with
    | Some f -> f
    | None -> error "no main function"
  in
  let counts =
    {
      total = 0;
      cond_branches = 0;
      jumps = 0;
      ijumps = 0;
      calls = 0;
      rets = 0;
      nops = 0;
      loads = 0;
      stores = 0;
    }
  in
  let st =
    {
      asm;
      image;
      phys = Array.make Conv.num_regs 0;
      vregs = Hashtbl.create 64;
      cc = 0;
      func = main;
      pos = 0;
      stack = [];
      input;
      input_pos = 0;
      output = Buffer.create 1024;
      counts;
      on_fetch;
      steps_left = max_steps;
      log;
      log_on = Telemetry.Log.enabled log;
      budget = Option.value budget ~default:Telemetry.Budget.unlimited;
      budget_on = Option.is_some budget;
    }
  in
  set_reg st Conv.sp (Image.size image);
  set_reg st Conv.fp (Image.size image);
  let timed_out = ref false in
  let exit_code =
    try
      let rec loop () =
        if st.pos >= Array.length st.func.code then
          error "fell off the end of %s" st.func.aname;
        let pos = st.pos in
        let instr = st.func.code.(pos) in
        count st instr pos;
        (match instr with
        | Rtl.Branch (cond, l) ->
          let taken = eval_cc cond st.cc in
          let squashed = (not taken) && slot_annulled st pos in
          exec_slot ~squashed st (pos + 1);
          if taken then transfer_target st pos l
          else st.pos <- pos + after_transfer st
        | Rtl.Jump l ->
          exec_slot st (pos + 1);
          transfer_target st pos l
        | Rtl.Ijump (r, table) ->
          let idx = get_reg st r in
          exec_slot st (pos + 1);
          if idx < 0 || idx >= Array.length table then
            error "jump-table index %d out of bounds" idx;
          goto_label st table.(idx)
        | Rtl.Call (name, nargs) ->
          exec_slot st (pos + 1);
          if builtin_call st name nargs then
            st.pos <- pos + after_transfer st
          else begin
            match Asm.find_func st.asm name with
            | Some callee ->
              st.stack <- (st.func, pos + after_transfer st, st.vregs) :: st.stack;
              st.vregs <- Hashtbl.create 16;
              st.func <- callee;
              st.pos <- 0
            | None -> error "call to undefined function %s" name
          end
        | Rtl.Ret -> (
          exec_slot st (pos + 1);
          match st.stack with
          | (f, p, vregs) :: rest ->
            st.stack <- rest;
            st.func <- f;
            st.vregs <- vregs;
            st.pos <- p
          | [] -> raise (Exit_program (get_reg st Conv.rv)))
        | Rtl.Move _ | Rtl.Lea _ | Rtl.Binop _ | Rtl.Unop _ | Rtl.Cmp _
        | Rtl.Enter _ | Rtl.Leave | Rtl.Nop ->
          exec_simple st instr;
          st.pos <- pos + 1);
        loop ()
      in
      loop ()
    with
    | Exit_program code -> code
    | Out_of_steps ->
      timed_out := true;
      124
    | Image.Fault msg -> raise (Runtime_error msg)
  in
  {
    output = Buffer.contents st.output;
    exit_code;
    counts;
    timed_out = !timed_out;
  }

(* --- the decoded interpreter ---------------------------------------

   [run_reference] above pays per step for work whose answer never
   changes: label lookups through [Label.Map], symbol resolution through
   the image's table, virtual registers through a [Hashtbl], and the
   builtin-vs-defined decision on every call.  Decoding flattens each
   [Asm.afunc] once — transfer targets become instruction indices
   (delay-slot overrides folded in), symbols become addresses, calls
   become a function index or a builtin tag, and virtual registers
   become slots of a dense per-frame array.  Runtime faults the
   reference loop raises lazily (unknown label taken, unknown symbol
   dereferenced, undefined function called) survive as negative targets
   into a per-function fault-message table, raised only if execution
   actually reaches them, so the two interpreters are observationally
   identical; the test suite runs both over the whole benchmark matrix
   to hold them to that. *)

module Decoded = struct
  type dreg = P of int | V of int | CC

  type daddr =
    | DBased of dreg * int
    | DIndexed of dreg * dreg * int * int
    | DAbs of int  (** symbol resolved at decode time *)
    | DAbsBad of string  (** unknown symbol; faults when dereferenced *)

  type dopnd = DReg of dreg | DImm of int | DMem of Rtl.width * daddr
  type dloc = DLreg of dreg | DLmem of Rtl.width * daddr
  type builtin = Getchar | Putchar | Exit

  (* Transfer targets [>= 0] are instruction indices; [< 0] index the
     function's fault table as [-t - 1]. *)
  type dinstr =
    | DMove of dloc * dopnd
    | DLea of dreg * daddr
    | DBinop of Rtl.binop * dloc * dopnd * dopnd
    | DUnop of Rtl.unop * dloc * dopnd
    | DCmp of dopnd * dopnd
    | DEnter of int
    | DLeave
    | DNop
    | DBranch of Rtl.cond * int
    | DJump of int
    | DIjump of dreg * int array
    | DCallF of int  (** index into [dfuncs] *)
    | DCallB of builtin
    | DCallU of string  (** undefined function; faults when executed *)
    | DRet

  type dfunc = {
    dname : string;
    dcode : dinstr array;
    rw : int array;  (** bit 0: reads memory, bit 1: writes memory *)
    daddrs : int array;
    dsizes : int array;
    dannulled : bool array;
    faults : string array;
    nvirt : int;  (** dense frame size: 1 + highest virtual register *)
  }

  type t = {
    delay_slots : bool;
    dfuncs : dfunc array;
    findex : (string, int) Hashtbl.t;
  }

  let is_transfer = function
    | DBranch _ | DJump _ | DIjump _ | DCallF _ | DCallB _ | DCallU _ | DRet ->
      true
    | DMove _ | DLea _ | DBinop _ | DUnop _ | DCmp _ | DEnter _ | DLeave
    | DNop ->
      false

  let decode_func symbol findex (f : Asm.afunc) =
    let faults = ref [] in
    let nfaults = ref 0 in
    let fault msg =
      incr nfaults;
      faults := msg :: !faults;
      - !nfaults
    in
    (* Virtual-register numbering is program-global and sparse; remap
       to dense per-function slots so a frame is a small array. *)
    let vslots = Hashtbl.create 16 in
    let dreg = function
      | Reg.Phys i -> P i
      | Reg.Virt i ->
        V
          (match Hashtbl.find_opt vslots i with
          | Some s -> s
          | None ->
            let s = Hashtbl.length vslots in
            Hashtbl.add vslots i s;
            s)
      | Reg.Cc -> CC
    in
    let daddr = function
      | Rtl.Based (r, d) -> DBased (dreg r, d)
      | Rtl.Indexed (b, i, s, d) -> DIndexed (dreg b, dreg i, s, d)
      | Rtl.Abs (sym, off) -> (
        match symbol sym with
        | Some a -> DAbs (a + off)
        | None -> DAbsBad (Printf.sprintf "unknown symbol %s" sym))
    in
    let dopnd = function
      | Rtl.Reg r -> DReg (dreg r)
      | Rtl.Imm n -> DImm n
      | Rtl.Mem (w, a) -> DMem (w, daddr a)
    in
    let dloc = function
      | Rtl.Lreg r -> DLreg (dreg r)
      | Rtl.Lmem (w, a) -> DLmem (w, daddr a)
    in
    (* [goto_label]'s two lazy faults, preformatted. *)
    let target l =
      match Asm.find_label f l with
      | pos ->
        if pos >= Array.length f.code then
          fault
            (Printf.sprintf "label %s points past the end of %s"
               (Label.to_string l) f.aname)
        else pos
      | exception Not_found ->
        fault
          (Printf.sprintf "unknown label %s in %s" (Label.to_string l) f.aname)
    in
    (* [transfer_target]: a recorded override (slot filled from the
       target) bypasses the label. *)
    let ttarget k l =
      let ov = f.target_override.(k) in
      if ov >= 0 then ov else target l
    in
    let dcode =
      Array.mapi
        (fun k instr ->
          match instr with
          | Rtl.Move (loc, src) -> DMove (dloc loc, dopnd src)
          | Rtl.Lea (r, a) -> DLea (dreg r, daddr a)
          | Rtl.Binop (op, loc, a, b) -> DBinop (op, dloc loc, dopnd a, dopnd b)
          | Rtl.Unop (op, loc, a) -> DUnop (op, dloc loc, dopnd a)
          | Rtl.Cmp (a, b) -> DCmp (dopnd a, dopnd b)
          | Rtl.Enter n -> DEnter n
          | Rtl.Leave -> DLeave
          | Rtl.Nop -> DNop
          | Rtl.Branch (cond, l) -> DBranch (cond, ttarget k l)
          | Rtl.Jump l -> DJump (ttarget k l)
          | Rtl.Ijump (r, table) -> DIjump (dreg r, Array.map target table)
          | Rtl.Call (name, _) -> (
            (* Builtins shadow defined functions, as [builtin_call]
               being consulted first does in the reference loop. *)
            match name with
            | "getchar" -> DCallB Getchar
            | "putchar" -> DCallB Putchar
            | "exit" -> DCallB Exit
            | _ -> (
              match Hashtbl.find_opt findex name with
              | Some i -> DCallF i
              | None ->
                DCallU (Printf.sprintf "call to undefined function %s" name)))
          | Rtl.Ret -> DRet)
        f.code
    in
    {
      dname = f.aname;
      dcode;
      rw =
        Array.map
          (fun i ->
            (if Rtl.reads_mem i then 1 else 0)
            lor if Rtl.writes_mem i then 2 else 0)
          f.code;
      daddrs = f.addrs;
      dsizes = f.sizes;
      dannulled = f.annulled;
      faults = Array.of_list (List.rev !faults);
      nvirt = Hashtbl.length vslots;
    }

  let decode_with symbol (asm : Asm.t) =
    let funcs = Array.of_list asm.Asm.funcs in
    let findex = Hashtbl.create 16 in
    (* First binding wins, like [Asm.find_func]'s [List.find_opt]. *)
    Array.iteri
      (fun i (f : Asm.afunc) ->
        if not (Hashtbl.mem findex f.aname) then Hashtbl.add findex f.aname i)
      funcs;
    {
      delay_slots = asm.Asm.machine.Machine.delay_slots;
      dfuncs = Array.map (decode_func symbol findex) funcs;
      findex;
    }

  let decode (asm : Asm.t) (prog : Flow.Prog.t) =
    let image = Image.build_scratch prog in
    decode_with
      (fun sym ->
        match Image.symbol image sym with
        | a -> Some a
        | exception Not_found -> None)
      asm
end

type dstate = {
  dimage : Image.t;
  dphys : int array;
  mutable dvirt : int array;  (** dense frame, swapped per call *)
  mutable dcc : int;
  mutable dfunc : Decoded.dfunc;
  mutable dpos : int;
  mutable dstack : (Decoded.dfunc * int * int array) list;
  dinput : string;
  mutable dinput_pos : int;
  doutput : Buffer.t;
  dcounts : counts;
  dfetch : addr:int -> size:int -> unit;
  dfetch_on : bool;  (** a caller-supplied [on_fetch] is attached *)
  mutable dsteps_left : int;
  dlog : Telemetry.Log.t;
  dlog_on : bool;
  dbudget : Telemetry.Budget.t;
  dbudget_on : bool;
  delay_slots : bool;
  dafter : int;  (** [after_transfer], constant per machine *)
}

let dget st = function
  | Decoded.P i -> st.dphys.(i)
  | Decoded.V i -> st.dvirt.(i)
  | Decoded.CC -> st.dcc

let dset st r v =
  match r with
  | Decoded.P i -> st.dphys.(i) <- v
  | Decoded.V i -> st.dvirt.(i) <- v
  | Decoded.CC -> st.dcc <- v

(* The calling convention's registers (sp/fp/rv) are physical, but take
   the general [Reg.t] route so [Enter]/[Leave]/builtins need no
   assumption the reference loop doesn't make. *)
let dget_rtl st = function
  | Reg.Phys i -> st.dphys.(i)
  | Reg.Virt i -> if i < Array.length st.dvirt then st.dvirt.(i) else 0
  | Reg.Cc -> st.dcc

let dset_rtl st r v =
  match r with
  | Reg.Phys i -> st.dphys.(i) <- v
  | Reg.Virt i -> if i < Array.length st.dvirt then st.dvirt.(i) <- v
  | Reg.Cc -> st.dcc <- v

let daddr_value st = function
  | Decoded.DBased (r, d) -> dget st r + d
  | Decoded.DIndexed (b, i, s, d) -> dget st b + (dget st i * s) + d
  | Decoded.DAbs a -> a
  | Decoded.DAbsBad msg -> raise (Runtime_error msg)

let dload st w a =
  let addr = daddr_value st a in
  match w with
  | Rtl.Byte -> Image.load_byte st.dimage addr
  | Rtl.Word -> Image.load_word st.dimage addr

let dopnd_value st = function
  | Decoded.DReg r -> dget st r
  | Decoded.DImm n -> n
  | Decoded.DMem (w, a) -> dload st w a

let dstore_loc st loc v =
  match loc with
  | Decoded.DLreg r -> dset st r v
  | Decoded.DLmem (w, a) -> (
    let addr = daddr_value st a in
    match w with
    | Rtl.Byte -> Image.store_byte st.dimage addr v
    | Rtl.Word -> Image.store_word st.dimage addr v)

(* Mirror of [count]: identical bump order, fetch callback, heartbeat
   and step budget. *)
let dcount st (i : Decoded.dinstr) pos =
  let c = st.dcounts in
  c.total <- c.total + 1;
  (match i with
  | DBranch _ -> c.cond_branches <- c.cond_branches + 1
  | DJump _ -> c.jumps <- c.jumps + 1
  | DIjump _ -> c.ijumps <- c.ijumps + 1
  | DCallF _ | DCallB _ | DCallU _ -> c.calls <- c.calls + 1
  | DRet -> c.rets <- c.rets + 1
  | DNop -> c.nops <- c.nops + 1
  | DMove _ | DLea _ | DBinop _ | DUnop _ | DCmp _ | DEnter _ | DLeave -> ());
  let rw = st.dfunc.rw.(pos) in
  if rw land 1 <> 0 then c.loads <- c.loads + 1;
  if rw land 2 <> 0 then c.stores <- c.stores + 1;
  if st.dfetch_on then
    st.dfetch ~addr:st.dfunc.daddrs.(pos) ~size:st.dfunc.dsizes.(pos);
  if st.dlog_on && c.total mod progress_interval = 0 then
    Telemetry.Log.emit st.dlog (fun () ->
        Telemetry.Log.Sim_progress { instrs = c.total });
  if st.dbudget_on && c.total land budget_interval_mask = 0 then
    Telemetry.Budget.check st.dbudget;
  st.dsteps_left <- st.dsteps_left - 1;
  if st.dsteps_left <= 0 then raise Out_of_steps

let dexec_simple st (i : Decoded.dinstr) =
  match i with
  | DMove (loc, src) -> dstore_loc st loc (dopnd_value st src)
  | DLea (r, a) -> dset st r (daddr_value st a)
  | DBinop (op, loc, a, b) ->
    let va = dopnd_value st a and vb = dopnd_value st b in
    let v =
      match Rtl.eval_binop op va vb with
      | v -> v
      | exception Division_by_zero -> error "division by zero"
    in
    dstore_loc st loc v
  | DUnop (op, loc, a) -> dstore_loc st loc (Rtl.eval_unop op (dopnd_value st a))
  | DCmp (a, b) -> st.dcc <- Int.compare (dopnd_value st a) (dopnd_value st b)
  | DEnter n ->
    let sp = dget_rtl st Conv.sp in
    Image.store_word st.dimage (sp - 4) (dget_rtl st Conv.fp);
    dset_rtl st Conv.fp sp;
    dset_rtl st Conv.sp (sp - n)
  | DLeave ->
    let fp = dget_rtl st Conv.fp in
    dset_rtl st Conv.sp fp;
    dset_rtl st Conv.fp (Image.load_word st.dimage (fp - 4))
  | DNop -> ()
  | DBranch _ | DJump _ | DIjump _ | DCallF _ | DCallB _ | DCallU _ | DRet ->
    assert false

let dexec_slot ?(squashed = false) st pos =
  if st.delay_slots then begin
    if pos >= Array.length st.dfunc.dcode then error "delay slot off the end";
    let slot = st.dfunc.dcode.(pos) in
    if Decoded.is_transfer slot then error "transfer in a delay slot";
    if squashed then begin
      if st.dfetch_on then
        st.dfetch ~addr:st.dfunc.daddrs.(pos) ~size:st.dfunc.dsizes.(pos)
    end
    else begin
      dcount st slot pos;
      dexec_simple st slot
    end
  end

let dslot_annulled st pos =
  st.delay_slots
  && pos + 1 < Array.length st.dfunc.dannulled
  && st.dfunc.dannulled.(pos + 1)

let dgoto st tgt =
  if tgt >= 0 then st.dpos <- tgt
  else raise (Runtime_error st.dfunc.faults.((-tgt) - 1))

let dbuiltin st b =
  let arg i =
    st.dphys.(match Conv.arg_reg i with Reg.Phys k -> k | _ -> 0)
  in
  match (b : Decoded.builtin) with
  | Getchar ->
    let v =
      if st.dinput_pos < String.length st.dinput then begin
        let c = Char.code st.dinput.[st.dinput_pos] in
        st.dinput_pos <- st.dinput_pos + 1;
        c
      end
      else -1
    in
    dset_rtl st Conv.rv v
  | Putchar ->
    let a0 = arg 0 in
    Buffer.add_char st.doutput (Char.chr (a0 land 0xff));
    dset_rtl st Conv.rv a0
  | Exit -> raise (Exit_program (arg 0))

(* Re-running the same assembled program (benchmark reps, differential
   checks, the engine/interpreter pair sharing a decode) re-decodes
   identically: [Image.build] lays data out as a pure function of the
   program, so symbol addresses cannot change between runs.  A small
   LRU keyed by physical identity replaces the old one-slot cache — the
   daemon's resident workers and the differential tests interleave a
   handful of programs, which a single slot thrashed on.  Domain-local,
   so parallel sweeps race on nothing; the hit/miss tallies are
   domain-local too and surface through [decode_cache_counters], never
   through a sweep's log (whose counters must stay independent of how
   tasks were scheduled over domains). *)
let decode_cache_capacity = 8

type cache_entry = {
  ckey_asm : Asm.t;
  ckey_prog : Flow.Prog.t;
  cval : Decoded.t;
}

type cache_shard = {
  mutable entries : cache_entry list;  (** most recent first *)
  mutable chits : int;
  mutable cmisses : int;
}

let decode_cache : cache_shard Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { entries = []; chits = 0; cmisses = 0 })

let decode_cached ~symbol (asm : Asm.t) (prog : Flow.Prog.t) =
  let shard = Domain.DLS.get decode_cache in
  let rec find acc = function
    | [] -> None
    | e :: rest ->
      if e.ckey_asm == asm && e.ckey_prog == prog then
        Some (e, List.rev_append acc rest)
      else find (e :: acc) rest
  in
  match find [] shard.entries with
  | Some (e, rest) ->
    shard.chits <- shard.chits + 1;
    shard.entries <- e :: rest;
    e.cval
  | None ->
    shard.cmisses <- shard.cmisses + 1;
    let d = Decoded.decode_with symbol asm in
    let entry = { ckey_asm = asm; ckey_prog = prog; cval = d } in
    let kept =
      List.filteri (fun i _ -> i < decode_cache_capacity - 1) shard.entries
    in
    shard.entries <- entry :: kept;
    d

let decode_cache_counters () =
  let shard = Domain.DLS.get decode_cache in
  (shard.chits, shard.cmisses)

let publish_cache_metrics metrics =
  let hits, misses = decode_cache_counters () in
  Telemetry.Metrics.add metrics "sim.decode_cache.hits" hits;
  Telemetry.Metrics.add metrics "sim.decode_cache.misses" misses

let no_fetch ~addr:_ ~size:_ = ()

let run ?(max_steps = 400_000_000) ?(input = "") ?on_fetch
    ?(log = Telemetry.Log.null) ?budget (asm : Asm.t) (prog : Flow.Prog.t) =
  let max_steps = effective_steps budget max_steps in
  let image = Image.build_scratch prog in
  let decoded =
    decode_cached
      ~symbol:(fun sym ->
        match Image.symbol image sym with
        | a -> Some a
        | exception Not_found -> None)
      asm prog
  in
  let main =
    match Hashtbl.find_opt decoded.Decoded.findex "main" with
    | Some i -> decoded.Decoded.dfuncs.(i)
    | None -> error "no main function"
  in
  let counts =
    {
      total = 0;
      cond_branches = 0;
      jumps = 0;
      ijumps = 0;
      calls = 0;
      rets = 0;
      nops = 0;
      loads = 0;
      stores = 0;
    }
  in
  let st =
    {
      dimage = image;
      dphys = Array.make Conv.num_regs 0;
      dvirt = Array.make (max 1 main.Decoded.nvirt) 0;
      dcc = 0;
      dfunc = main;
      dpos = 0;
      dstack = [];
      dinput = input;
      dinput_pos = 0;
      doutput = Buffer.create 1024;
      dcounts = counts;
      dfetch = (match on_fetch with Some f -> f | None -> no_fetch);
      dfetch_on = Option.is_some on_fetch;
      dsteps_left = max_steps;
      dlog = log;
      dlog_on = Telemetry.Log.enabled log;
      dbudget = Option.value budget ~default:Telemetry.Budget.unlimited;
      dbudget_on = Option.is_some budget;
      delay_slots = decoded.Decoded.delay_slots;
      dafter = (if decoded.Decoded.delay_slots then 2 else 1);
    }
  in
  dset_rtl st Conv.sp (Image.size image);
  dset_rtl st Conv.fp (Image.size image);
  let timed_out = ref false in
  let exit_code =
    try
      let dfuncs = decoded.Decoded.dfuncs in
      let rec loop () =
        if st.dpos >= Array.length st.dfunc.dcode then
          error "fell off the end of %s" st.dfunc.dname;
        let pos = st.dpos in
        let instr = st.dfunc.dcode.(pos) in
        dcount st instr pos;
        (match instr with
        | DBranch (cond, tgt) ->
          let taken = eval_cc cond st.dcc in
          let squashed = (not taken) && dslot_annulled st pos in
          dexec_slot ~squashed st (pos + 1);
          if taken then dgoto st tgt else st.dpos <- pos + st.dafter
        | DJump tgt ->
          dexec_slot st (pos + 1);
          dgoto st tgt
        | DIjump (r, table) ->
          let idx = dget st r in
          dexec_slot st (pos + 1);
          if idx < 0 || idx >= Array.length table then
            error "jump-table index %d out of bounds" idx;
          dgoto st table.(idx)
        | DCallF callee ->
          dexec_slot st (pos + 1);
          let callee = dfuncs.(callee) in
          st.dstack <- (st.dfunc, pos + st.dafter, st.dvirt) :: st.dstack;
          st.dvirt <- Array.make (max 1 callee.Decoded.nvirt) 0;
          st.dfunc <- callee;
          st.dpos <- 0
        | DCallB b ->
          dexec_slot st (pos + 1);
          dbuiltin st b;
          st.dpos <- pos + st.dafter
        | DCallU msg ->
          dexec_slot st (pos + 1);
          raise (Runtime_error msg)
        | DRet -> (
          dexec_slot st (pos + 1);
          match st.dstack with
          | (f, p, virt) :: rest ->
            st.dstack <- rest;
            st.dfunc <- f;
            st.dvirt <- virt;
            st.dpos <- p
          | [] -> raise (Exit_program (dget_rtl st Conv.rv)))
        | DMove _ | DLea _ | DBinop _ | DUnop _ | DCmp _ | DEnter _ | DLeave
        | DNop ->
          dexec_simple st instr;
          st.dpos <- pos + 1);
        loop ()
      in
      loop ()
    with
    | Exit_program code -> code
    | Out_of_steps ->
      timed_out := true;
      124
    | Image.Fault msg -> raise (Runtime_error msg)
  in
  {
    output = Buffer.contents st.doutput;
    exit_code;
    counts;
    timed_out = !timed_out;
  }
