type t = {
  mem : Bytes.t;
  symbols : (string, int) Hashtbl.t;
  data_base : int;
}

exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

let size t = Bytes.length t.mem

let check t addr bytes what =
  if addr < t.data_base || addr + bytes > Bytes.length t.mem then
    fault "%s at 0x%x is out of range" what addr

let load_word t addr =
  check t addr 4 "word load";
  let b i = Char.code (Bytes.get t.mem (addr + i)) in
  Ir.Arith.norm (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

let load_byte t addr =
  check t addr 1 "byte load";
  Char.code (Bytes.get t.mem addr)

let store_word t addr v =
  check t addr 4 "word store";
  let v = v land 0xFFFFFFFF in
  Bytes.set t.mem addr (Char.chr (v land 0xff));
  Bytes.set t.mem (addr + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.mem (addr + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set t.mem (addr + 3) (Char.chr ((v lsr 24) land 0xff))

let store_byte t addr v =
  check t addr 1 "byte store";
  Bytes.set t.mem addr (Char.chr (v land 0xff))

let build ?(size = 4 * 1024 * 1024) ?(data_base = 0x1000) (prog : Flow.Prog.t)
    =
  let t =
    { mem = Bytes.make size '\000'; symbols = Hashtbl.create 64; data_base }
  in
  let cursor = ref data_base in
  (* First pass: assign addresses (4-byte aligned). *)
  List.iter
    (fun (d : Flow.Prog.data) ->
      Hashtbl.replace t.symbols d.dname !cursor;
      cursor := (!cursor + d.dsize + 3) land lnot 3)
    prog.globals;
  (* Second pass: write initializers (Addr items may be forward refs). *)
  List.iter
    (fun (d : Flow.Prog.data) ->
      let addr = ref (Hashtbl.find t.symbols d.dname) in
      List.iter
        (fun (item : Flow.Prog.init_item) ->
          match item with
          | Word v ->
            store_word t !addr v;
            addr := !addr + 4
          | Bytes s ->
            Bytes.blit_string s 0 t.mem !addr (String.length s);
            addr := !addr + String.length s
          | Addr sym -> (
            match Hashtbl.find_opt t.symbols sym with
            | Some a ->
              store_word t !addr a;
              addr := !addr + 4
            | None -> fault "initializer refers to unknown symbol %s" sym)
          | Zeros n -> addr := !addr + n)
        d.dinit)
    prog.globals;
  t

let symbol t name =
  match Hashtbl.find_opt t.symbols name with
  | Some a -> a
  | None -> raise Not_found
