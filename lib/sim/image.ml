type t = {
  mem : Bytes.t;
  symbols : (string, int) Hashtbl.t;
  data_base : int;
  dirty : Bytes.t;  (** one flag byte per page of [mem] *)
  mutable dirty_pages : int list;
}

exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

let size t = Bytes.length t.mem

(* Dirty-page accounting: every mutation marks the 4 KiB pages it
   touches, so a scratch rebuild only has to zero what the previous run
   actually wrote instead of the whole multi-megabyte memory. *)
let page_bits = 12

let page_size = 1 lsl page_bits

let touch t addr =
  let p = addr lsr page_bits in
  if Bytes.get t.dirty p = '\000' then begin
    Bytes.set t.dirty p '\001';
    t.dirty_pages <- p :: t.dirty_pages
  end

let check t addr bytes what =
  if addr < t.data_base || addr + bytes > Bytes.length t.mem then
    fault "%s at 0x%x is out of range" what addr

let load_word t addr =
  check t addr 4 "word load";
  let b i = Char.code (Bytes.get t.mem (addr + i)) in
  Ir.Arith.norm (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

let load_byte t addr =
  check t addr 1 "byte load";
  Char.code (Bytes.get t.mem addr)

let store_word t addr v =
  check t addr 4 "word store";
  touch t addr;
  touch t (addr + 3);
  let v = v land 0xFFFFFFFF in
  Bytes.set t.mem addr (Char.chr (v land 0xff));
  Bytes.set t.mem (addr + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.mem (addr + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set t.mem (addr + 3) (Char.chr ((v lsr 24) land 0xff))

let store_byte t addr v =
  check t addr 1 "byte store";
  touch t addr;
  Bytes.set t.mem addr (Char.chr (v land 0xff))

let populate t (prog : Flow.Prog.t) =
  let cursor = ref t.data_base in
  (* First pass: assign addresses (4-byte aligned). *)
  List.iter
    (fun (d : Flow.Prog.data) ->
      Hashtbl.replace t.symbols d.dname !cursor;
      cursor := (!cursor + d.dsize + 3) land lnot 3)
    prog.globals;
  (* Second pass: write initializers (Addr items may be forward refs). *)
  List.iter
    (fun (d : Flow.Prog.data) ->
      let addr = ref (Hashtbl.find t.symbols d.dname) in
      List.iter
        (fun (item : Flow.Prog.init_item) ->
          match item with
          | Word v ->
            store_word t !addr v;
            addr := !addr + 4
          | Bytes s ->
            let len = String.length s in
            for p = !addr lsr page_bits to (!addr + len - 1) lsr page_bits do
              if Bytes.get t.dirty p = '\000' then begin
                Bytes.set t.dirty p '\001';
                t.dirty_pages <- p :: t.dirty_pages
              end
            done;
            Bytes.blit_string s 0 t.mem !addr len;
            addr := !addr + len
          | Addr sym -> (
            match Hashtbl.find_opt t.symbols sym with
            | Some a ->
              store_word t !addr a;
              addr := !addr + 4
            | None -> fault "initializer refers to unknown symbol %s" sym)
          | Zeros n -> addr := !addr + n)
        d.dinit)
    prog.globals;
  t

let npages size = (size + page_size - 1) / page_size

let build ?(size = 4 * 1024 * 1024) ?(data_base = 0x1000) (prog : Flow.Prog.t)
    =
  populate
    {
      mem = Bytes.make size '\000';
      symbols = Hashtbl.create 64;
      data_base;
      dirty = Bytes.make (npages size) '\000';
      dirty_pages = [];
    }
    prog

(* The scratch slot chains builds within a domain: each [build_scratch]
   zeroes exactly the pages its predecessor dirtied and hands the buffer
   to the new image.  Domain-local, so parallel sweeps share nothing. *)
let scratch : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let build_scratch ?(size = 4 * 1024 * 1024) ?(data_base = 0x1000)
    (prog : Flow.Prog.t) =
  let slot = Domain.DLS.get scratch in
  match !slot with
  | Some prev when Bytes.length prev.mem = size && prev.data_base = data_base
    ->
    List.iter
      (fun p ->
        let base = p lsl page_bits in
        Bytes.fill prev.mem base (min page_size (size - base)) '\000';
        Bytes.set prev.dirty p '\000')
      prev.dirty_pages;
    let t =
      {
        mem = prev.mem;
        symbols = Hashtbl.create 64;
        data_base;
        dirty = prev.dirty;
        dirty_pages = [];
      }
    in
    slot := Some t;
    populate t prog
  | _ ->
    let t = build ~size ~data_base prog in
    slot := Some t;
    t

let symbol t name =
  match Hashtbl.find_opt t.symbols name with
  | Some a -> a
  | None -> raise Not_found
