(** RTL interpreter with EASE-style measurement.

    Executes assembled code ({!Asm.t}), counting every instruction the
    generated code executes by class — the equivalent of the paper's EASE
    instrumentation.  Library routines ([getchar]/[putchar]/[exit]) run
    natively and are excluded from the counts, matching the paper
    ("Library routines could not be measured").

    On the RISC model the delay slot of a transfer is executed after the
    transfer's decision and before control moves, for taken and untaken
    branches alike. *)

type counts = {
  mutable total : int;  (** all instructions executed *)
  mutable cond_branches : int;
  mutable jumps : int;  (** unconditional [Jump] *)
  mutable ijumps : int;  (** indirect jumps *)
  mutable calls : int;
  mutable rets : int;
  mutable nops : int;
  mutable loads : int;  (** instructions reading memory *)
  mutable stores : int;  (** instructions writing memory *)
}

(** Executed unconditional jumps: [jumps + ijumps]. *)
val uncond_jumps : counts -> int

(** Executed transfers of control (branch points):
    conditional branches + jumps + indirect jumps + calls + returns. *)
val transfers : counts -> int

type result = {
  output : string;
  exit_code : int;  (** 124 when [timed_out] *)
  counts : counts;
  timed_out : bool;
      (** the [max_steps] budget ran out before the program exited — a
          distinct outcome (not a {!Runtime_error}) so differential testing
          can tell divergence from miscompilation *)
}

exception Runtime_error of string

(** [run asm prog] loads [prog]'s data and executes from [main].

    [on_fetch] is called once per executed instruction (delay slots
    included) with its code address and size — feed this to cache
    simulators.

    With [log], the fetch loop emits a [Sim_progress] heartbeat every few
    million executed instructions; disabled, it costs one branch per
    instruction.

    With [budget], the fetch loop polls the budget every couple of
    thousand executed instructions: the budget's fuel axis caps
    [max_steps], and a passed wall-clock deadline or an externally set
    cancel flag raises {!Telemetry.Budget.Exhausted} out of the run —
    the cooperative-cancellation half of the {!Harness.Pool} supervisor's
    deadline enforcement.

    @raise Runtime_error on faults (null/of-range access, division by zero,
    jump-table index out of bounds, missing function).  Step-budget
    exhaustion is {e not} a fault: the result comes back with partial
    output and [timed_out = true]. *)
val run :
  ?max_steps:int ->
  ?input:string ->
  ?on_fetch:(addr:int -> size:int -> unit) ->
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  Asm.t ->
  Flow.Prog.t ->
  result

(** The straightforward interpretation loop [run] replaced: it
    re-resolves labels, symbols, virtual registers and call targets on
    every step.  Kept as the differential oracle — the test suite runs
    the whole benchmark matrix through both and demands identical
    results.  Same signature and semantics as {!run}. *)
val run_reference :
  ?max_steps:int ->
  ?input:string ->
  ?on_fetch:(addr:int -> size:int -> unit) ->
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  Asm.t ->
  Flow.Prog.t ->
  result

(** The pre-decoding pass behind {!run}: each function flattened to a
    dense instruction array with transfer targets as indices, symbols as
    addresses, calls as function indices or builtin tags, and virtual
    registers as slots of a dense per-frame array.  The representation
    is public: {!Engine} compiles it into closure chains, and the
    decode micro-benchmark drives {!Decoded.decode} directly. *)
module Decoded : sig
  type dreg = P of int | V of int | CC

  type daddr =
    | DBased of dreg * int
    | DIndexed of dreg * dreg * int * int
    | DAbs of int  (** symbol resolved at decode time *)
    | DAbsBad of string  (** unknown symbol; faults when dereferenced *)

  type dopnd = DReg of dreg | DImm of int | DMem of Ir.Rtl.width * daddr
  type dloc = DLreg of dreg | DLmem of Ir.Rtl.width * daddr
  type builtin = Getchar | Putchar | Exit

  (** Transfer targets [>= 0] are instruction indices; [< 0] index the
      function's fault table as [-t - 1]. *)
  type dinstr =
    | DMove of dloc * dopnd
    | DLea of dreg * daddr
    | DBinop of Ir.Rtl.binop * dloc * dopnd * dopnd
    | DUnop of Ir.Rtl.unop * dloc * dopnd
    | DCmp of dopnd * dopnd
    | DEnter of int
    | DLeave
    | DNop
    | DBranch of Ir.Rtl.cond * int
    | DJump of int
    | DIjump of dreg * int array
    | DCallF of int  (** index into [dfuncs] *)
    | DCallB of builtin
    | DCallU of string  (** undefined function; faults when executed *)
    | DRet

  type dfunc = {
    dname : string;
    dcode : dinstr array;
    rw : int array;  (** bit 0: reads memory, bit 1: writes memory *)
    daddrs : int array;
    dsizes : int array;
    dannulled : bool array;
    faults : string array;
    nvirt : int;  (** dense frame size: 1 + highest virtual register *)
  }

  type t = {
    delay_slots : bool;
    dfuncs : dfunc array;
    findex : (string, int) Hashtbl.t;
  }

  val is_transfer : dinstr -> bool
  val decode : Asm.t -> Flow.Prog.t -> t
end

(** Decode through the per-domain LRU (capacity 8, keyed by the physical
    identity of the [asm]/[prog] pair).  [symbol] resolves data symbols
    to addresses and is consulted only on a miss — sound because image
    layout is a pure function of the program, so every run of the same
    pair would decode identically.  {!run} and {!Engine.run} share this
    cache, so alternating engines over one program decodes once. *)
val decode_cached :
  symbol:(string -> int option) -> Asm.t -> Flow.Prog.t -> Decoded.t

(** This domain's decode-cache [(hits, misses)] since it started.
    Deliberately kept out of run logs: at [-j > 1] the split across
    domains depends on scheduling, and sweep counter objects must not. *)
val decode_cache_counters : unit -> int * int

(** Add this domain's decode-cache tallies into [metrics] as
    [sim.decode_cache.hits]/[sim.decode_cache.misses]. *)
val publish_cache_metrics : Telemetry.Metrics.t -> unit

(** One [Sim_progress] heartbeat per this many executed instructions
    (with a log attached). *)
val progress_interval : int

(** An attached budget is polled when [total land mask = 0] — every
    [mask + 1] executed instructions. *)
val budget_interval_mask : int
