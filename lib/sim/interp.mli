(** RTL interpreter with EASE-style measurement.

    Executes assembled code ({!Asm.t}), counting every instruction the
    generated code executes by class — the equivalent of the paper's EASE
    instrumentation.  Library routines ([getchar]/[putchar]/[exit]) run
    natively and are excluded from the counts, matching the paper
    ("Library routines could not be measured").

    On the RISC model the delay slot of a transfer is executed after the
    transfer's decision and before control moves, for taken and untaken
    branches alike. *)

type counts = {
  mutable total : int;  (** all instructions executed *)
  mutable cond_branches : int;
  mutable jumps : int;  (** unconditional [Jump] *)
  mutable ijumps : int;  (** indirect jumps *)
  mutable calls : int;
  mutable rets : int;
  mutable nops : int;
  mutable loads : int;  (** instructions reading memory *)
  mutable stores : int;  (** instructions writing memory *)
}

(** Executed unconditional jumps: [jumps + ijumps]. *)
val uncond_jumps : counts -> int

(** Executed transfers of control (branch points):
    conditional branches + jumps + indirect jumps + calls + returns. *)
val transfers : counts -> int

type result = {
  output : string;
  exit_code : int;  (** 124 when [timed_out] *)
  counts : counts;
  timed_out : bool;
      (** the [max_steps] budget ran out before the program exited — a
          distinct outcome (not a {!Runtime_error}) so differential testing
          can tell divergence from miscompilation *)
}

exception Runtime_error of string

(** [run asm prog] loads [prog]'s data and executes from [main].

    [on_fetch] is called once per executed instruction (delay slots
    included) with its code address and size — feed this to cache
    simulators.

    With [log], the fetch loop emits a [Sim_progress] heartbeat every few
    million executed instructions; disabled, it costs one branch per
    instruction.

    With [budget], the fetch loop polls the budget every couple of
    thousand executed instructions: the budget's fuel axis caps
    [max_steps], and a passed wall-clock deadline or an externally set
    cancel flag raises {!Telemetry.Budget.Exhausted} out of the run —
    the cooperative-cancellation half of the {!Harness.Pool} supervisor's
    deadline enforcement.

    @raise Runtime_error on faults (null/of-range access, division by zero,
    jump-table index out of bounds, missing function).  Step-budget
    exhaustion is {e not} a fault: the result comes back with partial
    output and [timed_out = true]. *)
val run :
  ?max_steps:int ->
  ?input:string ->
  ?on_fetch:(addr:int -> size:int -> unit) ->
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  Asm.t ->
  Flow.Prog.t ->
  result

(** The straightforward interpretation loop [run] replaced: it
    re-resolves labels, symbols, virtual registers and call targets on
    every step.  Kept as the differential oracle — the test suite runs
    the whole benchmark matrix through both and demands identical
    results.  Same signature and semantics as {!run}. *)
val run_reference :
  ?max_steps:int ->
  ?input:string ->
  ?on_fetch:(addr:int -> size:int -> unit) ->
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  Asm.t ->
  Flow.Prog.t ->
  result

(** The pre-decoding pass behind {!run}: each function flattened to a
    dense instruction array with transfer targets as indices, symbols as
    addresses, calls as function indices or builtin tags, and virtual
    registers as slots of a dense per-frame array.  Exposed for the
    decode micro-benchmark. *)
module Decoded : sig
  type t

  val decode : Asm.t -> Flow.Prog.t -> t
end
