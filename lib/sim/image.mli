(** Data-segment layout and the simulated memory.

    Memory map: low addresses up to [data_base] are unmapped (so null
    dereferences fault), globals live from [data_base] up, and the stack
    grows down from [size].  Code addresses (from {!Asm}) are a separate
    space used only for instruction-cache simulation. *)

type t

exception Fault of string

(** [build prog] lays out the globals and returns a fresh memory.
    Default [size] 4 MiB, [data_base] 0x1000. *)
val build : ?size:int -> ?data_base:int -> Flow.Prog.t -> t

(** [build_scratch prog] is {!build} on a domain-local recycled buffer:
    instead of allocating and zeroing the whole memory, it zeroes only
    the pages the {e previous} scratch image of this domain dirtied.
    Layout and contents are identical to a fresh {!build}.

    The previous scratch-built image of the calling domain becomes
    invalid — use this only for images that are private to one run and
    discarded before the next (the interpreter's). *)
val build_scratch : ?size:int -> ?data_base:int -> Flow.Prog.t -> t

val size : t -> int

(** Address of a global symbol.  @raise Not_found if unknown. *)
val symbol : t -> string -> int

(** Loads normalize to signed 32 bits; byte loads zero-extend.
    @raise Fault on out-of-range addresses. *)
val load_word : t -> int -> int

val load_byte : t -> int -> int
val store_word : t -> int -> int -> unit
val store_byte : t -> int -> int -> unit
