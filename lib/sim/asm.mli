(** Assembly: linearized machine code with addresses.

    Assembling a {!Flow.Func.t} lays its blocks out in positional order and,
    on the RISC model, performs delay-slot filling — the final pass of the
    paper's Figure 3.  Every transfer of control on the RISC gets a delay
    slot, filled in order of preference:

    + the instruction that preceded the transfer, when moving it past the
      transfer cannot change what the transfer's decision reads;
    + for conditional branches and jumps, the first instruction of the
      target block, with the branch retargeted past it — annulled for
      conditional branches (the slot executes only when the branch is
      taken: the SPARC annul bit);
    + an explicit [Nop].

    The interpreter executes a normal slot after the transfer decision and
    before control moves, for taken and untaken branches alike; an annulled
    slot is fetched but squashed when its branch falls through. *)

open Ir

type afunc = {
  aname : string;
  code : Rtl.instr array;  (** linear instruction stream *)
  addrs : int array;  (** byte address of each instruction *)
  sizes : int array;  (** byte size of each instruction *)
  label_pos : int Label.Map.t;  (** label -> instruction index *)
  annulled : bool array;
      (** slot positions filled from the branch target: the slot executes
          only when the branch is taken (SPARC annul bit) *)
  target_override : int array;
      (** for a transfer at [k] whose slot was filled from its target,
          [target_override.(k)] is the instruction index to resume at
          (just past the copied instruction); [-1] otherwise *)
  base : int;  (** address of the first instruction *)
  end_addr : int;  (** first address past the function *)
}

type t = {
  machine : Machine.t;
  funcs : afunc list;
  code_base : int;
}

(** Index of [l] in [f].  @raise Not_found if the label is unknown. *)
val find_label : afunc -> Label.t -> int

val find_func : t -> string -> afunc option

(** Lay a function's blocks out in positional order: the linear
    instruction stream and the label->index map.  This is the exact
    linearization {!assemble} starts from, exported so the displacement
    pass solves against the same stream the assembler will price. *)
val linearize : Flow.Func.t -> Rtl.instr array * int Label.Map.t

(** Assemble a whole program.  [code_base] is the address of the first
    function (default 0x100000). *)
val assemble : ?code_base:int -> Machine.t -> Flow.Prog.t -> t

(** Static instruction count (nops included). *)
val static_instrs : t -> int

(** Static count of unconditional jumps ([Jump] plus [Ijump]). *)
val static_ujumps : t -> int

(** Static count of [Nop] instructions (delay-slot padding). *)
val static_nops : t -> int

(** Total code bytes (sum of instruction sizes, alignment padding
    excluded).  On CISC this reflects any attached displacement plans;
    on RISC it is always [4 * static_instrs]. *)
val code_bytes : t -> int

(** Map every instruction's address to its owning function's name and the
    instruction itself — the lookup a tracer or profiler needs when hooking
    {!Interp.run}'s [on_fetch]. *)
val addr_index : t -> (int, string * Rtl.instr) Hashtbl.t

val pp_afunc : Format.formatter -> afunc -> unit
