open Ir

type afunc = {
  aname : string;
  code : Rtl.instr array;
  addrs : int array;
  sizes : int array;
  label_pos : int Label.Map.t;
  annulled : bool array;
  target_override : int array;
  base : int;
  end_addr : int;
}

type t = { machine : Machine.t; funcs : afunc list; code_base : int }

let find_label f l = Label.Map.find l f.label_pos
let find_func t name = List.find_opt (fun f -> String.equal f.aname name) t.funcs

(* Linearize a function: concatenate block instruction lists; each block's
   label maps to the index of its first instruction (or, for an empty block,
   of whatever comes next). *)
let linearize func =
  let code = ref [] in
  let count = ref 0 in
  let label_pos = ref Label.Map.empty in
  Array.iter
    (fun (b : Flow.Func.block) ->
      label_pos := Label.Map.add b.label !count !label_pos;
      List.iter
        (fun i ->
          code := i :: !code;
          incr count)
        b.instrs)
    (Flow.Func.blocks func);
  (Array.of_list (List.rev !code), !label_pos)

(* Registers a transfer's decision depends on at its own position; a slot
   candidate must not define any of them. *)
let decision_uses = function
  | Rtl.Branch _ -> Reg.Set.singleton Reg.Cc
  | Rtl.Ijump (r, _) -> Reg.Set.singleton r
  | Rtl.Jump _ | Rtl.Call _ | Rtl.Ret | Rtl.Move _ | Rtl.Lea _ | Rtl.Binop _
  | Rtl.Unop _ | Rtl.Cmp _ | Rtl.Enter _ | Rtl.Leave | Rtl.Nop ->
    Reg.Set.empty

let needs_slot = function
  | Rtl.Branch _ | Rtl.Jump _ | Rtl.Ijump _ | Rtl.Call _ | Rtl.Ret -> true
  | Rtl.Move _ | Rtl.Lea _ | Rtl.Binop _ | Rtl.Unop _ | Rtl.Cmp _
  | Rtl.Enter _ | Rtl.Leave | Rtl.Nop ->
    false

let slot_candidate_ok transfer cand =
  (not (needs_slot cand))
  && (match cand with Rtl.Enter _ | Rtl.Call _ -> false | _ -> true)
  && Reg.Set.is_empty (Reg.Set.inter (Rtl.defs cand) (decision_uses transfer))

(* Delay-slot filling on the linear stream.  Returns the new stream and the
   remapping of old instruction indices to new ones (for labels). *)
let fill_delay_slots code label_targets =
  let n = Array.length code in
  let is_target = Array.make (n + 1) false in
  Label.Map.iter (fun _ pos -> is_target.(pos) <- true) label_targets;
  let out = ref [] in
  let out_len = ref 0 in
  let remap = Array.make (n + 1) 0 in
  let push i =
    out := i :: !out;
    incr out_len
  in
  for k = 0 to n - 1 do
    remap.(k) <- !out_len;
    let instr = code.(k) in
    if needs_slot instr then begin
      (* The slot candidate is the instruction just emitted, provided no
         label lets control enter between it and the transfer. *)
      let cand_idx = k - 1 in
      let can_fill =
        cand_idx >= 0
        && (not is_target.(k))
        && (not is_target.(cand_idx))
        && (not (needs_slot code.(cand_idx)))
        && slot_candidate_ok instr code.(cand_idx)
      in
      if can_fill then begin
        match !out with
        | prev :: rest ->
          out := rest;
          decr out_len;
          remap.(k) <- !out_len;
          push instr;
          push prev
        | [] -> assert false
      end
      else begin
        push instr;
        push Rtl.Nop
      end
    end
    else push instr
  done;
  remap.(n) <- !out_len;
  (Array.of_list (List.rev !out), remap)

(* Second filling phase, on the final stream: pull the target's first
   instruction into a still-empty (Nop) slot, retargeting the transfer past
   it.  Annulled for conditional branches; unconditional for jumps. *)
let fill_from_targets code label_pos annulled target_override =
  let n = Array.length code in
  let pos_of l = Label.Map.find_opt l label_pos in
  for k = 0 to n - 2 do
    if code.(k + 1) = Rtl.Nop then begin
      match code.(k) with
      | Rtl.Branch (_, l) | Rtl.Jump l -> (
        match pos_of l with
        | Some p when p + 1 < n && p <> k + 1 && not (needs_slot code.(p)) -> (
          match code.(p) with
          | Rtl.Enter _ | Rtl.Nop -> ()
          | cand ->
            code.(k + 1) <- cand;
            target_override.(k) <- p + 1;
            (match code.(k) with
            | Rtl.Branch _ -> annulled.(k + 1) <- true
            | _ -> ()))
        | Some _ | None -> ())
      | _ -> ()
    end
  done

let assemble_func machine base func =
  let code, label_pos = linearize func in
  let code, label_pos =
    if machine.Machine.delay_slots then begin
      let code', remap = fill_delay_slots code label_pos in
      (code', Label.Map.map (fun pos -> remap.(pos)) label_pos)
    end
    else (code, label_pos)
  in
  let annulled = Array.make (Array.length code) false in
  let target_override = Array.make (Array.length code) (-1) in
  if machine.Machine.delay_slots then
    fill_from_targets code label_pos annulled target_override;
  let n = Array.length code in
  (* A displacement plan (CISC only) overrides the fixed sizes.  Delay
     slots never run here (delay_slots implies RISC), so the plan's
     linearization is exactly ours; [matches] guards the pairing. *)
  let sizes =
    match (machine.Machine.kind, Flow.Func.encoding func) with
    | Machine.Cisc, Some plan when Encode.matches plan code -> Encode.sizes plan
    | (Machine.Cisc | Machine.Risc), _ ->
      Array.map (Machine.instr_size machine) code
  in
  let addrs = Array.make n 0 in
  let a = ref base in
  for k = 0 to n - 1 do
    addrs.(k) <- !a;
    a := !a + sizes.(k)
  done;
  {
    aname = Flow.Func.name func;
    code;
    addrs;
    sizes;
    label_pos;
    annulled;
    target_override;
    base;
    end_addr = !a;
  }

let assemble ?(code_base = 0x100000) machine (prog : Flow.Prog.t) =
  let base = ref code_base in
  let funcs =
    List.map
      (fun func ->
        let af = assemble_func machine !base func in
        (* Align function starts to 16 bytes, like a real linker. *)
        base := (af.end_addr + 15) land lnot 15;
        af)
      prog.funcs
  in
  { machine; funcs; code_base }

let static_instrs t =
  List.fold_left (fun n f -> n + Array.length f.code) 0 t.funcs

let count_static p t =
  List.fold_left
    (fun n f -> n + Array.fold_left (fun n i -> if p i then n + 1 else n) 0 f.code)
    0 t.funcs

let static_ujumps t =
  count_static
    (function Rtl.Jump _ | Rtl.Ijump _ -> true | _ -> false)
    t

let static_nops t = count_static (function Rtl.Nop -> true | _ -> false) t

(* Pure code bytes, without the inter-function alignment padding. *)
let code_bytes t =
  List.fold_left
    (fun n f -> n + Array.fold_left ( + ) 0 f.sizes)
    0 t.funcs

let addr_index t =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun f ->
      Array.iteri (fun k i -> Hashtbl.replace tbl f.addrs.(k) (f.aname, i)) f.code)
    t.funcs;
  tbl

let pp_afunc ppf f =
  Fmt.pf ppf "@[<v>%s:" f.aname;
  let pos_labels = Hashtbl.create 16 in
  Label.Map.iter
    (fun l pos -> Hashtbl.add pos_labels pos l)
    f.label_pos;
  Array.iteri
    (fun k i ->
      List.iter
        (fun l -> Fmt.pf ppf "@,%a:" Label.pp l)
        (Hashtbl.find_all pos_labels k);
      Fmt.pf ppf "@,  %06x  %a" f.addrs.(k) Rtl.pp_instr i)
    f.code;
  Fmt.pf ppf "@]"
