(** Threaded-code execution engine.

    Compiles each pre-decoded function ({!Interp.Decoded}) into OCaml
    closure chains — one handler per instruction position — with
    superblock fusion: a straight-line run of simple instructions and
    its terminating transfer become a single handler that settles the
    run's bookkeeping in bulk and executes precompiled effect closures
    back to back, and a compare feeding the terminating conditional
    branch folds into the transfer itself.

    Observably equivalent to {!Interp.run} and {!Interp.run_reference}:
    identical results and counts, identical [on_fetch] streams
    (per-instruction, in order, exact prefixes on faults and timeouts),
    identical [Sim_progress] heartbeats, and step-budget exhaustion at
    the exact instruction.  The equivalence tests hold all three to
    this over the full benchmark matrix.  The one latitude taken: an
    attached {!Telemetry.Budget} may be polled once per superblock
    rather than exactly every 2048 instructions — cancellation latency
    only, never a measured value. *)

(** Same signature and semantics as {!Interp.run}. *)
val run :
  ?max_steps:int ->
  ?input:string ->
  ?on_fetch:(addr:int -> size:int -> unit) ->
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  Asm.t ->
  Flow.Prog.t ->
  Interp.result

(** A compiled program: one closure array per decoded function. *)
type program

(** Compile a decode.  Exposed for the compile micro-benchmark; {!run}
    goes through the per-domain compile cache. *)
val compile : Interp.Decoded.t -> program

(** This domain's compile-cache [(hits, misses)] since it started.
    Like {!Interp.decode_cache_counters}, never part of a sweep's log. *)
val compile_cache_counters : unit -> int * int

(** Add this domain's compile-cache tallies into [metrics] as
    [sim.engine_cache.hits]/[sim.engine_cache.misses]. *)
val publish_cache_metrics : Telemetry.Metrics.t -> unit

(** Which execution engine runs measured programs. *)
type kind =
  | Threaded  (** this module: closure chains with superblock fusion *)
  | Decoded  (** {!Interp.run}: pre-decoded array interpreter *)
  | Reference  (** {!Interp.run_reference}: the re-resolving oracle *)

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

(** The run function for a kind; all three share one signature. *)
val select :
  kind ->
  ?max_steps:int ->
  ?input:string ->
  ?on_fetch:(addr:int -> size:int -> unit) ->
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  Asm.t ->
  Flow.Prog.t ->
  Interp.result
