open Ir
module D = Interp.Decoded

(* --- the threaded-code execution engine -----------------------------

   [Interp.run] still pays per executed instruction for work whose
   answer is fixed the moment a function is decoded: the dispatch match
   over [dinstr], the operand/location matches inside it, the heartbeat
   modulus, the budget mask and the step decrement-and-test.  This
   engine compiles each decoded function once into OCaml closure
   chains — one handler per entry point — and fuses every superblock
   (a straight-line run of simple instructions plus its terminating
   transfer) into a single handler that settles the bookkeeping for the
   whole run up front and then executes precompiled per-instruction
   effect closures back to back.  A compare feeding the terminating
   conditional branch is folded into the transfer itself, so the
   hottest loop shape (test + branch) is one closure call.

   The bit-stability contract is the same as the decoded
   interpreter's, and the equivalence tests hold all three engines to
   it over the full benchmark matrix:

   - [on_fetch] fires once per executed instruction, in execution
     order, interleaved with the instruction effects exactly as the
     reference interleaves them — a faulting run's fetch stream is the
     precise prefix, not a superblock's worth of prefetch;
   - [Sim_progress] heartbeats carry the same instruction counts
     (tracked by a next-multiple threshold instead of a per-step
     modulus);
   - step-budget exhaustion raises at the exact instruction: a
     superblock whose remaining fuel does not cover its straight-line
     prefix falls back to a per-instruction tail, so a timed-out
     result's partial counts and output are those of the reference;
   - an attached budget is polled at the same 2048-instruction
     boundaries (a superblock crossing several polls once — cooperative
     cancellation latency is wall-clock-bound either way, and a
     cancelled run never becomes a measurement).

   Runtime faults ([Runtime_error]) abort the run with no result, so
   the counters accumulated by an interrupted superblock are never
   observable. *)

exception Exit_program of int
exception Out_of_steps

let error fmt =
  Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

type state = {
  image : Image.t;
  phys : int array;
  mutable virt : int array;  (** dense frame, swapped per call *)
  mutable cc : int;
  mutable func : D.dfunc;
  mutable pos : int;
  mutable handlers : handler array;  (** current function's, parallel to [func.dcode] *)
  cfuncs : cfunc array;
  mutable stack : frame list;
  input : string;
  mutable input_pos : int;
  output : Buffer.t;
  counts : Interp.counts;
  fetch : addr:int -> size:int -> unit;
  fetch_on : bool;
  mutable steps_left : int;
  log : Telemetry.Log.t;
  log_on : bool;
  budget : Telemetry.Budget.t;
  budget_on : bool;
  mutable next_heartbeat : int;  (** next multiple of [progress_interval] *)
  mutable next_budget : int;  (** next multiple of the budget poll interval *)
}

and frame = {
  fr_func : D.dfunc;
  fr_handlers : handler array;
  fr_pos : int;
  fr_virt : int array;
}

(** A handler runs one superblock and returns the next position. *)
and handler = state -> int

and cfunc = { src : D.dfunc; chandlers : handler array }

(** A compiled program: the decode it was built from plus one [cfunc]
    per decoded function. *)
type program = { decoded : D.t; cfuncs : cfunc array }

(* --- effect compilation ---------------------------------------------

   Pure composition: every operand, address and location becomes a
   closure over [state], so at run time an instruction is two or three
   indirect calls with no constructor matches left. *)

let rget (r : D.dreg) : state -> int =
  match r with
  | D.P i -> fun st -> st.phys.(i)
  | D.V i -> fun st -> st.virt.(i)
  | D.CC -> fun st -> st.cc

let raddr (a : D.daddr) : state -> int =
  match a with
  | D.DBased (r, 0) -> rget r
  | D.DBased (r, d) ->
    let fr = rget r in
    fun st -> fr st + d
  | D.DIndexed (b, i, s, d) ->
    let fb = rget b and fi = rget i in
    fun st -> fb st + (fi st * s) + d
  | D.DAbs a -> fun _ -> a
  | D.DAbsBad msg -> fun _ -> raise (Interp.Runtime_error msg)

let ropnd (o : D.dopnd) : state -> int =
  match o with
  | D.DReg r -> rget r
  | D.DImm n -> fun _ -> n
  | D.DMem (w, a) -> (
    let fa = raddr a in
    match w with
    | Rtl.Byte -> fun st -> Image.load_byte st.image (fa st)
    | Rtl.Word -> fun st -> Image.load_word st.image (fa st))

let wloc (l : D.dloc) : state -> int -> unit =
  match l with
  | D.DLreg (D.P i) -> fun st v -> st.phys.(i) <- v
  | D.DLreg (D.V i) -> fun st v -> st.virt.(i) <- v
  | D.DLreg D.CC -> fun st v -> st.cc <- v
  | D.DLmem (w, a) -> (
    let fa = raddr a in
    match w with
    | Rtl.Byte -> fun st v -> Image.store_byte st.image (fa st) v
    | Rtl.Word -> fun st v -> Image.store_word st.image (fa st) v)

let binop_fn (op : Rtl.binop) : int -> int -> int =
  match op with
  | Rtl.Add -> Arith.add
  | Rtl.Sub -> Arith.sub
  | Rtl.Mul -> Arith.mul
  | Rtl.Div ->
    fun a b -> (
      match Arith.div a b with
      | v -> v
      | exception Division_by_zero -> error "division by zero")
  | Rtl.Rem ->
    fun a b -> (
      match Arith.rem a b with
      | v -> v
      | exception Division_by_zero -> error "division by zero")
  | Rtl.And -> Arith.logand
  | Rtl.Or -> Arith.logor
  | Rtl.Xor -> Arith.logxor
  | Rtl.Shl -> Arith.shl
  | Rtl.Shr -> Arith.shr

let cond_fn (c : Rtl.cond) : int -> bool =
  match c with
  | Rtl.Eq -> fun cc -> cc = 0
  | Rtl.Ne -> fun cc -> cc <> 0
  | Rtl.Lt -> fun cc -> cc < 0
  | Rtl.Le -> fun cc -> cc <= 0
  | Rtl.Gt -> fun cc -> cc > 0
  | Rtl.Ge -> fun cc -> cc >= 0

(* The calling convention's registers (sp/fp/rv) are physical, but take
   the general [Reg.t] route so [Enter]/[Leave]/builtins make no
   assumption the reference loop doesn't. *)
let get_rtl st = function
  | Reg.Phys i -> st.phys.(i)
  | Reg.Virt i -> if i < Array.length st.virt then st.virt.(i) else 0
  | Reg.Cc -> st.cc

let set_rtl st r v =
  match r with
  | Reg.Phys i -> st.phys.(i) <- v
  | Reg.Virt i -> if i < Array.length st.virt then st.virt.(i) <- v
  | Reg.Cc -> st.cc <- v

let effect (i : D.dinstr) : state -> unit =
  match i with
  | D.DMove (l, s) ->
    let fl = wloc l and fs = ropnd s in
    fun st -> fl st (fs st)
  | D.DLea (r, a) -> (
    let fa = raddr a in
    match r with
    | D.P i -> fun st -> st.phys.(i) <- fa st
    | D.V i -> fun st -> st.virt.(i) <- fa st
    | D.CC -> fun st -> st.cc <- fa st)
  | D.DBinop (op, l, a, b) ->
    let f = binop_fn op and fl = wloc l and fa = ropnd a and fb = ropnd b in
    fun st -> fl st (f (fa st) (fb st))
  | D.DUnop (op, l, a) ->
    let f = (match op with Rtl.Neg -> Arith.neg | Rtl.Not -> Arith.lognot)
    and fl = wloc l
    and fa = ropnd a in
    fun st -> fl st (f (fa st))
  | D.DCmp (a, b) ->
    let fa = ropnd a and fb = ropnd b in
    fun st -> st.cc <- Int.compare (fa st) (fb st)
  | D.DEnter n ->
    fun st ->
      let sp = get_rtl st Conv.sp in
      Image.store_word st.image (sp - 4) (get_rtl st Conv.fp);
      set_rtl st Conv.fp sp;
      set_rtl st Conv.sp (sp - n)
  | D.DLeave ->
    fun st ->
      let fp = get_rtl st Conv.fp in
      set_rtl st Conv.sp fp;
      set_rtl st Conv.fp (Image.load_word st.image (fp - 4))
  | D.DNop -> fun _ -> ()
  | D.DBranch _ | D.DJump _ | D.DIjump _ | D.DCallF _ | D.DCallB _
  | D.DCallU _ | D.DRet ->
    (* Transfers are compiled as superblock terminators, never as
       straight-line effects. *)
    assert false

let do_builtin st (b : D.builtin) =
  let arg i =
    st.phys.(match Conv.arg_reg i with Reg.Phys k -> k | _ -> 0)
  in
  match b with
  | D.Getchar ->
    let v =
      if st.input_pos < String.length st.input then begin
        let c = Char.code st.input.[st.input_pos] in
        st.input_pos <- st.input_pos + 1;
        c
      end
      else -1
    in
    set_rtl st Conv.rv v
  | D.Putchar ->
    let a0 = arg 0 in
    Buffer.add_char st.output (Char.chr (a0 land 0xff));
    set_rtl st Conv.rv a0
  | D.Exit -> raise (Exit_program (arg 0))

(* --- per-instruction accounting -------------------------------------

   [tick_at] is [Interp]'s [dcount] with the instruction's metadata
   (memory bits, code address, size) baked in at compile time and the
   heartbeat modulus replaced by the next-multiple thresholds — the
   same events with the same values, minus a division per step.  The
   class-counter bump is the caller's, before the tick, like [dcount]'s
   bump order; [Out_of_steps] raises after the fetch and before the
   instruction's effect, exactly where [dcount] raises it. *)

let tick_at (f : D.dfunc) pos : state -> unit =
  let rw = f.D.rw.(pos) in
  let reads = rw land 1 <> 0 and writes = rw land 2 <> 0 in
  let addr = f.D.daddrs.(pos) and size = f.D.dsizes.(pos) in
  fun st ->
    let c = st.counts in
    let t = c.Interp.total + 1 in
    c.Interp.total <- t;
    if reads then c.Interp.loads <- c.Interp.loads + 1;
    if writes then c.Interp.stores <- c.Interp.stores + 1;
    if st.fetch_on then st.fetch ~addr ~size;
    if st.log_on && t >= st.next_heartbeat then begin
      Telemetry.Log.emit st.log (fun () ->
          Telemetry.Log.Sim_progress { instrs = t });
      st.next_heartbeat <- t + Interp.progress_interval
    end;
    if st.budget_on && t >= st.next_budget then begin
      Telemetry.Budget.check st.budget;
      st.next_budget <- (t lor Interp.budget_interval_mask) + 1
    end;
    st.steps_left <- st.steps_left - 1;
    if st.steps_left <= 0 then raise Out_of_steps

(* Generic tick for the slow (fuel-exhaustion) tail, where the position
   is not a compile-time constant. *)
let tick st pos =
  let c = st.counts in
  let t = c.Interp.total + 1 in
  c.Interp.total <- t;
  let rw = st.func.D.rw.(pos) in
  if rw land 1 <> 0 then c.Interp.loads <- c.Interp.loads + 1;
  if rw land 2 <> 0 then c.Interp.stores <- c.Interp.stores + 1;
  if st.fetch_on then
    st.fetch ~addr:st.func.D.daddrs.(pos) ~size:st.func.D.dsizes.(pos);
  if st.log_on && t >= st.next_heartbeat then begin
    Telemetry.Log.emit st.log (fun () ->
        Telemetry.Log.Sim_progress { instrs = t });
    st.next_heartbeat <- t + Interp.progress_interval
  end;
  if st.budget_on && t >= st.next_budget then begin
    Telemetry.Budget.check st.budget;
    st.next_budget <- (t lor Interp.budget_interval_mask) + 1
  end;
  st.steps_left <- st.steps_left - 1;
  if st.steps_left <= 0 then raise Out_of_steps

(* --- superblock compilation ----------------------------------------- *)

(* Delay-slot execution compiled for the transfer at [m]: [run]
   executes the slot (counted), [squash] only fetches it (an annulled
   slot on an untaken branch is fetched by the hardware but not
   executed).  The reference's lazy faults — slot off the end, transfer
   in a slot — survive as raising closures reached only if a transfer
   actually fires. *)
let compile_slot (f : D.dfunc) delay_slots m : (state -> unit) * (state -> unit)
    =
  if not delay_slots then ((fun _ -> ()), fun _ -> ())
  else if m + 1 >= Array.length f.D.dcode then
    let off _ = error "delay slot off the end" in
    (off, off)
  else begin
    let slot = f.D.dcode.(m + 1) in
    if D.is_transfer slot then
      let bad _ = error "transfer in a delay slot" in
      (bad, bad)
    else begin
      let eff = effect slot in
      let slot_tick = tick_at f (m + 1) in
      let is_nop = slot = D.DNop in
      let addr = f.D.daddrs.(m + 1) and size = f.D.dsizes.(m + 1) in
      let run st =
        if is_nop then st.counts.Interp.nops <- st.counts.Interp.nops + 1;
        slot_tick st;
        eff st
      in
      let squash st = if st.fetch_on then st.fetch ~addr ~size in
      (run, squash)
    end
  end

(* Resolve a decoded transfer target at compile time: an index becomes
   a constant, a negative fault id a raising closure. *)
let target_fn (f : D.dfunc) tgt : state -> int =
  if tgt >= 0 then fun _ -> tgt
  else
    let msg = f.D.faults.((-tgt) - 1) in
    fun _ -> raise (Interp.Runtime_error msg)

let slot_annulled (f : D.dfunc) delay_slots m =
  delay_slots
  && m + 1 < Array.length f.D.dannulled
  && f.D.dannulled.(m + 1)

(* The terminating transfer of a superblock at position [m], as a
   closure returning the next position.  Statement order mirrors the
   decoded loop exactly: class bump and tick, operand reads, delay
   slot, then the control decision. *)
let compile_term (f : D.dfunc) delay_slots after m : state -> int =
  let t_tick = tick_at f m in
  let slot_run, slot_squash = compile_slot f delay_slots m in
  match f.D.dcode.(m) with
  | D.DBranch (cond, tgt) ->
    let eval = cond_fn cond in
    let goto = target_fn f tgt in
    let annulled = slot_annulled f delay_slots m in
    let next = m + after in
    fun st ->
      st.counts.Interp.cond_branches <- st.counts.Interp.cond_branches + 1;
      t_tick st;
      let taken = eval st.cc in
      if taken then begin
        slot_run st;
        goto st
      end
      else begin
        if annulled then slot_squash st else slot_run st;
        next
      end
  | D.DJump tgt ->
    let goto = target_fn f tgt in
    fun st ->
      st.counts.Interp.jumps <- st.counts.Interp.jumps + 1;
      t_tick st;
      slot_run st;
      goto st
  | D.DIjump (r, table) ->
    let fr = rget r in
    let tlen = Array.length table in
    let gotos = Array.map (target_fn f) table in
    fun st ->
      st.counts.Interp.ijumps <- st.counts.Interp.ijumps + 1;
      t_tick st;
      let idx = fr st in
      slot_run st;
      if idx < 0 || idx >= tlen then
        error "jump-table index %d out of bounds" idx;
      gotos.(idx) st
  | D.DCallF callee ->
    let ret = m + after in
    fun st ->
      st.counts.Interp.calls <- st.counts.Interp.calls + 1;
      t_tick st;
      slot_run st;
      let cf = st.cfuncs.(callee) in
      st.stack <-
        {
          fr_func = st.func;
          fr_handlers = st.handlers;
          fr_pos = ret;
          fr_virt = st.virt;
        }
        :: st.stack;
      st.virt <- Array.make (max 1 cf.src.D.nvirt) 0;
      st.func <- cf.src;
      st.handlers <- cf.chandlers;
      0
  | D.DCallB b ->
    let next = m + after in
    fun st ->
      st.counts.Interp.calls <- st.counts.Interp.calls + 1;
      t_tick st;
      slot_run st;
      do_builtin st b;
      next
  | D.DCallU msg ->
    fun st ->
      st.counts.Interp.calls <- st.counts.Interp.calls + 1;
      t_tick st;
      slot_run st;
      raise (Interp.Runtime_error msg)
  | D.DRet -> (
    fun st ->
      st.counts.Interp.rets <- st.counts.Interp.rets + 1;
      t_tick st;
      slot_run st;
      match st.stack with
      | fr :: rest ->
        st.stack <- rest;
        st.func <- fr.fr_func;
        st.handlers <- fr.fr_handlers;
        st.virt <- fr.fr_virt;
        fr.fr_pos
      | [] -> raise (Exit_program (get_rtl st Conv.rv)))
  | D.DMove _ | D.DLea _ | D.DBinop _ | D.DUnop _ | D.DCmp _ | D.DEnter _
  | D.DLeave | D.DNop ->
    assert false

(* A compare directly feeding the superblock's conditional branch fuses
   with it: compute, set the condition code (still architecturally
   visible afterwards), and decide in one closure. *)
let compile_fused_cmp_branch (f : D.dfunc) delay_slots after ~cmp_pos ~br_pos
    (a : D.dopnd) (b : D.dopnd) cond tgt : state -> int =
  let cmp_tick = tick_at f cmp_pos in
  let br_tick = tick_at f br_pos in
  let fa = ropnd a and fb = ropnd b in
  let eval = cond_fn cond in
  let goto = target_fn f tgt in
  let slot_run, slot_squash = compile_slot f delay_slots br_pos in
  let annulled = slot_annulled f delay_slots br_pos in
  let next = br_pos + after in
  fun st ->
    cmp_tick st;
    let cc = Int.compare (fa st) (fb st) in
    st.cc <- cc;
    st.counts.Interp.cond_branches <- st.counts.Interp.cond_branches + 1;
    br_tick st;
    let taken = eval cc in
    if taken then begin
      slot_run st;
      goto st
    end
    else begin
      if annulled then slot_squash st else slot_run st;
      next
    end

(* The superblock starting at [l]: its straight-line prefix (simple
   instructions up to the next transfer) runs off one bulk accounting
   header, then the terminator decides where to go.  Every position
   gets a handler — control only ever enters at transfer targets,
   post-transfer fall-throughs and the entry, but a handler per
   position keeps the dispatch a plain array index.  [effs] is shared
   across all the function's superblocks, so overlapping blocks do not
   duplicate compiled effects. *)
let compile_block (f : D.dfunc) delay_slots after (effs : (state -> unit) array)
    l : handler =
  let code = f.D.dcode in
  let n = Array.length code in
  let m = ref l in
  while !m < n && not (D.is_transfer code.(!m)) do incr m done;
  (* Fuse a trailing compare into a conditional-branch terminator. *)
  let fused, prefix_end =
    if !m < n && !m > l then
      match (code.(!m - 1), code.(!m)) with
      | D.DCmp (a, b), D.DBranch (cond, tgt) ->
        ( Some
            (compile_fused_cmp_branch f delay_slots after ~cmp_pos:(!m - 1)
               ~br_pos:!m a b cond tgt),
          !m - 1 )
      | _ -> (None, !m)
    else (None, !m)
  in
  let term =
    match fused with
    | Some t -> Some t
    | None -> if !m < n then Some (compile_term f delay_slots after !m) else None
  in
  let p = prefix_end - l in
  (* Class totals of the prefix: simple instructions only touch the
     total/nop/load/store counters. *)
  let nops_k = ref 0 and loads_k = ref 0 and stores_k = ref 0 in
  for j = l to prefix_end - 1 do
    if code.(j) = D.DNop then incr nops_k;
    let rw = f.D.rw.(j) in
    if rw land 1 <> 0 then incr loads_k;
    if rw land 2 <> 0 then incr stores_k
  done;
  let nops_k = !nops_k and loads_k = !loads_k and stores_k = !stores_k in
  let addrs = f.D.daddrs and sizes = f.D.dsizes in
  let after_prefix =
    match term with
    | Some t -> t
    | None -> fun _ -> n  (* run off the end; the dispatch loop faults *)
  in
  if p = 0 then after_prefix
  else
    fun st ->
      if st.steps_left <= p then begin
        (* Not enough fuel for the whole prefix: per-instruction tail,
           so [Out_of_steps] fires at the exact instruction with exact
           partial counts, fetches and output. *)
        for j = l to prefix_end - 1 do
          if code.(j) = D.DNop then
            st.counts.Interp.nops <- st.counts.Interp.nops + 1;
          tick st j;
          effs.(j) st
        done;
        after_prefix st
      end
      else begin
        let c = st.counts in
        let t1 = c.Interp.total + p in
        c.Interp.total <- t1;
        if nops_k > 0 then c.Interp.nops <- c.Interp.nops + nops_k;
        if loads_k > 0 then c.Interp.loads <- c.Interp.loads + loads_k;
        if stores_k > 0 then c.Interp.stores <- c.Interp.stores + stores_k;
        if st.log_on && t1 >= st.next_heartbeat then begin
          let at = st.next_heartbeat in
          Telemetry.Log.emit st.log (fun () ->
              Telemetry.Log.Sim_progress { instrs = at });
          st.next_heartbeat <- at + Interp.progress_interval
        end;
        if st.budget_on && t1 >= st.next_budget then begin
          Telemetry.Budget.check st.budget;
          st.next_budget <- (t1 lor Interp.budget_interval_mask) + 1
        end;
        st.steps_left <- st.steps_left - p;
        if st.fetch_on then
          for j = l to prefix_end - 1 do
            st.fetch ~addr:(Array.unsafe_get addrs j)
              ~size:(Array.unsafe_get sizes j);
            (Array.unsafe_get effs j) st
          done
        else
          for j = l to prefix_end - 1 do
            (Array.unsafe_get effs j) st
          done;
        after_prefix st
      end

let compile_func (f : D.dfunc) delay_slots after : cfunc =
  let n = Array.length f.D.dcode in
  let effs =
    Array.map
      (fun i -> if D.is_transfer i then (fun _ -> ()) else effect i)
      f.D.dcode
  in
  let handlers =
    Array.init n (fun l -> compile_block f delay_slots after effs l)
  in
  { src = f; chandlers = handlers }

let compile (decoded : D.t) : program =
  let after = if decoded.D.delay_slots then 2 else 1 in
  {
    decoded;
    cfuncs =
      Array.map
        (fun f -> compile_func f decoded.D.delay_slots after)
        decoded.D.dfuncs;
  }

(* Compiled programs are cached like decodes: per-domain LRU keyed by
   the decode's physical identity (itself interned by
   [Interp.decode_cached], so equal [asm]/[prog] pairs share one
   decode and hence one compile). *)
let compile_cache_capacity = 8

type ccache = {
  mutable centries : (D.t * program) list;
  mutable chits : int;
  mutable cmisses : int;
}

let compile_cache : ccache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { centries = []; chits = 0; cmisses = 0 })

let compile_cached (decoded : D.t) =
  let shard = Domain.DLS.get compile_cache in
  let rec find acc = function
    | [] -> None
    | ((d, _) as e) :: rest ->
      if d == decoded then Some (e, List.rev_append acc rest)
      else find (e :: acc) rest
  in
  match find [] shard.centries with
  | Some (((_, p) as e), rest) ->
    shard.chits <- shard.chits + 1;
    shard.centries <- e :: rest;
    p
  | None ->
    shard.cmisses <- shard.cmisses + 1;
    let p = compile decoded in
    let kept =
      List.filteri (fun i _ -> i < compile_cache_capacity - 1) shard.centries
    in
    shard.centries <- (decoded, p) :: kept;
    p

let compile_cache_counters () =
  let shard = Domain.DLS.get compile_cache in
  (shard.chits, shard.cmisses)

let publish_cache_metrics metrics =
  let hits, misses = compile_cache_counters () in
  Telemetry.Metrics.add metrics "sim.engine_cache.hits" hits;
  Telemetry.Metrics.add metrics "sim.engine_cache.misses" misses

(* --- the run loop ---------------------------------------------------- *)

let effective_steps budget max_steps =
  match budget with
  | Some b -> (
    match Telemetry.Budget.fuel b with
    | Some f -> min f max_steps
    | None -> max_steps)
  | None -> max_steps

let no_fetch ~addr:_ ~size:_ = ()

let run ?(max_steps = 400_000_000) ?(input = "") ?on_fetch
    ?(log = Telemetry.Log.null) ?budget (asm : Asm.t) (prog : Flow.Prog.t) =
  let max_steps = effective_steps budget max_steps in
  let image = Image.build_scratch prog in
  let decoded =
    Interp.decode_cached
      ~symbol:(fun sym ->
        match Image.symbol image sym with
        | a -> Some a
        | exception Not_found -> None)
      asm prog
  in
  let compiled = compile_cached decoded in
  let main_i =
    match Hashtbl.find_opt decoded.D.findex "main" with
    | Some i -> i
    | None -> error "no main function"
  in
  let main = compiled.cfuncs.(main_i) in
  let counts =
    {
      Interp.total = 0;
      cond_branches = 0;
      jumps = 0;
      ijumps = 0;
      calls = 0;
      rets = 0;
      nops = 0;
      loads = 0;
      stores = 0;
    }
  in
  let st =
    {
      image;
      phys = Array.make Conv.num_regs 0;
      virt = Array.make (max 1 main.src.D.nvirt) 0;
      cc = 0;
      func = main.src;
      pos = 0;
      handlers = main.chandlers;
      cfuncs = compiled.cfuncs;
      stack = [];
      input;
      input_pos = 0;
      output = Buffer.create 1024;
      counts;
      fetch = (match on_fetch with Some f -> f | None -> no_fetch);
      fetch_on = Option.is_some on_fetch;
      steps_left = max_steps;
      log;
      log_on = Telemetry.Log.enabled log;
      budget = Option.value budget ~default:Telemetry.Budget.unlimited;
      budget_on = Option.is_some budget;
      next_heartbeat = Interp.progress_interval;
      next_budget = Interp.budget_interval_mask + 1;
    }
  in
  set_rtl st Conv.sp (Image.size image);
  set_rtl st Conv.fp (Image.size image);
  let timed_out = ref false in
  let exit_code =
    try
      let rec loop st =
        let pos = st.pos in
        if pos >= Array.length st.handlers then
          error "fell off the end of %s" st.func.D.dname;
        st.pos <- (Array.unsafe_get st.handlers pos) st;
        loop st
      in
      loop st
    with
    | Exit_program code -> code
    | Out_of_steps ->
      timed_out := true;
      124
    | Image.Fault msg -> raise (Interp.Runtime_error msg)
  in
  {
    Interp.output = Buffer.contents st.output;
    exit_code;
    counts;
    timed_out = !timed_out;
  }

(* --- engine selection ------------------------------------------------ *)

type kind = Threaded | Decoded | Reference

let kind_name = function
  | Threaded -> "threaded"
  | Decoded -> "decoded"
  | Reference -> "reference"

let kind_of_string = function
  | "threaded" -> Some Threaded
  | "decoded" -> Some Decoded
  | "reference" -> Some Reference
  | _ -> None

let all_kinds = [ Threaded; Decoded; Reference ]

let select = function
  | Threaded -> run
  | Decoded -> Interp.run
  | Reference -> Interp.run_reference
