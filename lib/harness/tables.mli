(** Regeneration of every table and figure in the paper's evaluation,
    printed in the same shape as the paper reports them.

    Absolute values differ from the 1992 testbed (different substrate,
    reimplemented utilities); the comparisons SIMPLE vs LOOPS vs JUMPS are
    internal and reproduce the paper's claims. *)

(** Table 1: exit condition in the middle of a loop — RTL before/after
    generalized replication (68020-style model). *)
val table1 : Format.formatter -> unit

(** Table 2: if-then-else with separately replicated returns. *)
val table2 : Format.formatter -> unit

(** Table 3: the test set. *)
val table3 : Format.formatter -> unit

(** Table 4: percentage of instructions that are unconditional jumps
    (static and dynamic; average and standard deviation over the suite). *)
val table4 : Format.formatter -> unit

(** Table 5: static and dynamic instruction counts per program, with the
    LOOPS/JUMPS change relative to SIMPLE. *)
val table5 : Format.formatter -> unit

(** Table 6: change in cache miss ratio and instruction fetch cost for
    direct-mapped caches of 1/2/4/8 KiB, context switching on/off. *)
val table6 : Format.formatter -> unit

(** §5.2 statistics: instructions between branches and no-op elimination on
    the RISC. *)
val block_stats : Format.formatter -> unit

(** Figure 1 and Figure 2 scenarios on synthetic control flow. *)
val figures : Format.formatter -> unit

(** §6 extension: sweep of the replication-sequence length cap. *)
val ablation_cap : Format.formatter -> unit

(** Step-2 heuristic ablation: favoring returns vs favoring loops vs
    whichever is shorter. *)
val ablation_heuristic : Format.formatter -> unit

(** Extension: does associativity rescue the small-cache JUMPS penalty?
    (The paper's caches are direct-mapped; this sweeps 1/2/4-way at 1 KiB.) *)
val ablation_assoc : Format.formatter -> unit

(** Ablation (paper section 3.3): how much of the replication benefit depends
    on the cleanup optimizations it creates opportunities for — CSE,
    code motion, strength reduction, and instruction selection are switched
    off one family at a time. *)
val ablation_passes : Format.formatter -> unit
