module Diag = Telemetry.Diag

type kind = Mismatch | Fault | Timeout | Quarantine | Compile_error

let kind_name = function
  | Mismatch -> "mismatch"
  | Fault -> "fault"
  | Timeout -> "timeout"
  | Quarantine -> "quarantine"
  | Compile_error -> "compile-error"

type failure = { kind : kind; config : string; detail : string }

let levels = [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ]
let machines = [ Ir.Machine.cisc; Ir.Machine.risc ]

let configs =
  List.concat_map (fun m -> List.map (fun l -> (l, m)) levels) machines

let config_name level machine =
  Printf.sprintf "%s/%s" (Opt.Driver.level_name level) machine.Ir.Machine.short

type outcome = Ran of string * int | Failed of kind * string

let run_one ~max_steps ~verify ~inject_fault src level machine =
  let diags = ref [] in
  let opts =
    {
      (Opt.Driver.options ~level ()) with
      verify_passes = verify;
      inject_fault;
    }
  in
  match Opt.Driver.compile ~diags opts machine src with
  | exception Diag.Error d -> Failed (Compile_error, Diag.to_string d)
  | exception exn -> Failed (Compile_error, Printexc.to_string exn)
  | prog ->
    if Diag.has_errors !diags then
      Failed
        ( Quarantine,
          String.concat "; "
            (List.filter_map
               (fun d ->
                 if d.Diag.severity = Diag.Err then Some (Diag.to_string d)
                 else None)
               (List.rev !diags)) )
    else (
      match Sim.Asm.assemble machine prog with
      | exception exn -> Failed (Compile_error, Printexc.to_string exn)
      | asm -> (
        match Sim.Interp.run ~max_steps ~input:"" asm prog with
        | exception Sim.Interp.Runtime_error msg -> Failed (Fault, msg)
        | res ->
          if res.timed_out then
            Failed
              (Timeout, Printf.sprintf "no exit within %d steps" max_steps)
          else Ran (res.output, res.exit_code)))

(* SIMPLE/cisc is the oracle: the least optimization on the reference
   machine.  Every other configuration must match it byte for byte. *)
let ref_level = Opt.Driver.Simple
let ref_machine = Ir.Machine.cisc

let check ?(max_steps = 3_000_000) ?(verify = false) ?inject_fault src =
  match run_one ~max_steps ~verify ~inject_fault src ref_level ref_machine with
  | Failed (kind, detail) ->
    Some { kind; config = config_name ref_level ref_machine; detail }
  | Ran (out, code) ->
    List.fold_left
      (fun acc (level, machine) ->
        match acc with
        | Some _ -> acc
        | None ->
          if
            level = ref_level
            && String.equal machine.Ir.Machine.short
                 ref_machine.Ir.Machine.short
          then None
          else (
            match run_one ~max_steps ~verify ~inject_fault src level machine with
            | Failed (kind, detail) ->
              Some { kind; config = config_name level machine; detail }
            | Ran (out', code') ->
              if String.equal out out' && code = code' then None
              else
                Some
                  {
                    kind = Mismatch;
                    config = config_name level machine;
                    detail =
                      Printf.sprintf "output %S exit %d; reference %S exit %d"
                        out' code' out code;
                  }))
      None configs

let reduce ?(max_attempts = 500) ~check p f =
  let attempts = ref 0 in
  let rec go p f =
    (* First shrink candidate that still fails the same way wins; restart
       from it.  Stops at a local minimum or when the budget runs out. *)
    let rec try_seq seq =
      if !attempts >= max_attempts then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (cand, rest) -> (
          incr attempts;
          match check (Gen.to_c cand) with
          | Some f' when f'.kind = f.kind -> Some (cand, f')
          | _ -> try_seq rest)
    in
    match try_seq (Gen.shrink p) with
    | Some (p', f') -> go p' f'
    | None -> (p, f)
  in
  go p f

type stats = {
  seeds_run : int;
  failures : (int * failure * string) list;
  aborted : (int * string) list;
  pool : Pool.stats;
}

(* The reproducer's header comment must not terminate itself early. *)
let sanitize_comment s =
  let b = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      if c = '/' && i > 0 && s.[i - 1] = '*' then Buffer.add_string b " /"
      else Buffer.add_char b c)
    s;
  Buffer.contents b

let campaign ?(max_steps = 3_000_000) ?(verify = false) ?inject_fault
    ?(out_dir = "fuzz-failures") ?(start = 0) ?(on_seed = fun _ _ -> ())
    ?(jobs = 1) ?chaos ?seed_list ~seeds () =
  (* [seed_list] (store-resume: only the uncached delta) overrides the
     contiguous [start .. start + seeds - 1] range. *)
  let seed_ids =
    match seed_list with
    | Some l -> l
    | None -> List.init seeds (fun i -> start + i)
  in
  let check_src src = check ~max_steps ~verify ?inject_fault src in
  let failures = ref [] in
  let aborted = ref [] in
  let pool = ref Pool.no_stats in
  let write_reproducer seed (p' : Gen.program) f' =
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let path = Filename.concat out_dir (Printf.sprintf "seed-%d.c" seed) in
    let oc = open_out path in
    Printf.fprintf oc "/* jumprepc fuzz reproducer: seed %d\n   %s at %s: %s */\n%s"
      seed (kind_name f'.kind) f'.config
      (sanitize_comment f'.detail)
      (Gen.to_c p');
    close_out oc;
    failures := (seed, f', path) :: !failures
  in
  (* Generation, checking and reduction are pure in the seed, so they
     parallelize; reproducer files, the failure list and [on_seed] are
     parent-side in seed order, making the campaign's observable output
     independent of [jobs].  [jobs = 1] keeps the streaming loop —
     [on_seed] fires as each seed finishes rather than after the pool
     drains. *)
  if jobs <= 1 && chaos = None then
    List.iter
      (fun seed ->
        let p = Gen.generate (Random.State.make [| seed |]) in
        let outcome = check_src (Gen.to_c p) in
        (match outcome with
        | None -> ()
        | Some f ->
          let p', f' = reduce ~check:check_src p f in
          write_reproducer seed p' f');
        on_seed seed outcome)
      seed_ids
  else begin
    (* Supervised path: a seed whose task crashes or times out (only
       possible under chaos — the check itself never raises) lands in
       [aborted] instead of silently disappearing, and the sibling seeds'
       results are untouched. *)
    let outcomes, pstats =
      seed_ids
      |> Pool.supervise ~jobs ?chaos (fun _budget seed ->
             let p = Gen.generate (Random.State.make [| seed |]) in
             match check_src (Gen.to_c p) with
             | None -> None
             | Some f ->
               let p', f' = reduce ~check:check_src p f in
               Some (f, p', f'))
    in
    pool := pstats;
    List.iter2
      (fun seed outcome ->
        match outcome with
        | Pool.Done r ->
          (match r with
          | None -> ()
          | Some (_, p', f') -> write_reproducer seed p' f');
          (* The original (pre-reduction) failure, as in the streaming
             loop. *)
          on_seed seed (Option.map (fun (f, _, _) -> f) r)
        | Pool.Crashed { exn; attempts; _ } ->
          aborted :=
            ( seed,
              Printf.sprintf "crashed after %d attempt%s: %s" attempts
                (if attempts = 1 then "" else "s")
                (Printexc.to_string exn) )
            :: !aborted
        | Pool.Timed_out { elapsed; attempts } ->
          aborted :=
            ( seed,
              Printf.sprintf "timed out after %d attempt%s (%.2fs)" attempts
                (if attempts = 1 then "" else "s")
                elapsed )
            :: !aborted)
      seed_ids outcomes
  end;
  {
    seeds_run = List.length seed_ids;
    failures = List.rev !failures;
    aborted = List.rev !aborted;
    pool = !pool;
  }
