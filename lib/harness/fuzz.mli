(** Differential fuzzing with automatic delta reduction ([jumprepc fuzz]).

    Each seed deterministically generates one C-subset program
    ({!Gen.generate}), compiles and runs it under every (level x machine)
    configuration, and compares observable behaviour (output bytes and
    exit code) against the SIMPLE/cisc reference.  Any divergence — a
    mismatch, a simulator fault, step-limit exhaustion, a quarantined
    pass, or a compile error — is a failure; the harness then shrinks the
    program ({!Gen.shrink}), re-checking the same failure kind at every
    step, and writes the minimal reproducer to [<out_dir>/seed-<n>.c]. *)

type kind = Mismatch | Fault | Timeout | Quarantine | Compile_error

val kind_name : kind -> string

type failure = {
  kind : kind;
  config : string;  (** "LEVEL/machine" where the failure showed *)
  detail : string;
}

(** Run one source through all configurations.  [inject_fault] (test-only)
    corrupts the named pass's output to force the quarantine path;
    [verify] enables the expensive per-pass checks. *)
val check :
  ?max_steps:int ->
  ?verify:bool ->
  ?inject_fault:string ->
  string ->
  failure option

(** [reduce ~check p f] greedily shrinks [p] while [check] keeps
    reproducing a failure of [f]'s kind; stops at a local minimum or
    after [max_attempts] candidate evaluations (default 500).  Returns
    the smallest failing program and the failure it exhibits. *)
val reduce :
  ?max_attempts:int ->
  check:(string -> failure option) ->
  Gen.program ->
  failure ->
  Gen.program * failure

type stats = {
  seeds_run : int;
  failures : (int * failure * string) list;
      (** seed, reduced failure, path of the written reproducer *)
  aborted : (int * string) list;
      (** seeds whose supervised task produced no verdict at all (the
          worker crashed or timed out — only possible under chaos) *)
  pool : Pool.stats;  (** supervisor statistics (zeros on the inline path) *)
}

(** Fuzz seeds [start .. start + seeds - 1]; on failure, reduce and write
    the reproducer under [out_dir] (created if missing).  [on_seed] is
    called after each seed with its outcome (for progress reporting).

    [jobs > 1] spreads the seeds over a supervised {!Pool}; seeds are
    independent, and reproducer files, the failure list and the [on_seed]
    calls are issued from the calling domain in seed order, so the
    campaign's results are identical at any [jobs] (with [jobs = 1] and
    no chaos, [on_seed] additionally streams as each seed completes).
    [chaos] injects deterministic worker faults ({!Pool.chaos}) to drill
    the supervisor; affected seeds land in [aborted], sibling seeds keep
    their verdicts.  [seed_list] overrides the contiguous range with an
    explicit seed set — how a store-resumed campaign runs only the
    uncached delta. *)
val campaign :
  ?max_steps:int ->
  ?verify:bool ->
  ?inject_fault:string ->
  ?out_dir:string ->
  ?start:int ->
  ?on_seed:(int -> failure option -> unit) ->
  ?jobs:int ->
  ?chaos:Pool.chaos ->
  ?seed_list:int list ->
  seeds:int ->
  unit ->
  stats
