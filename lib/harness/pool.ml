(* A supervised fixed-size Domain worker pool.

   Each work item runs as a sequence of *attempts* on worker domains under
   a fresh cancellable Budget.  The calling domain never runs tasks: it is
   the supervisor, polling worker slots every millisecond to deliver
   results, detect dead workers (and respawn them), enforce the per-task
   deadline (cooperative cancellation through the budget, then
   abandon-and-reschedule after a 2x grace period), and feed retries back
   into the queue on a deterministic capped-exponential backoff.

   Determinism: the schedule is whichever domain gets there first, but
   results land in an index-ordered array and fault injection is a pure
   function of (seed, task index, attempt) — so the outcome of every task
   that completes is identical to what a sequential run produces, no
   matter the job count. *)

module Budget = Telemetry.Budget

let warn fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "jumprepc: warning: %s\n%!" s) fmt

let clamp_jobs ?(what = "JUMPREP_JOBS") n =
  let cap = Domain.recommended_domain_count () in
  if n < 1 then begin
    warn "%s=%d is not a positive integer; using 1" what n;
    1
  end
  else if n > 4 * cap then begin
    warn "%s=%d exceeds 4x the %d recommended domain%s; using %d" what n cap
      (if cap = 1 then "" else "s")
      cap;
    cap
  end
  else n

let parse_jobs ?(what = "JUMPREP_JOBS") s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> clamp_jobs ~what n
  | Some _ | None ->
    warn "%s=%S is not a positive integer; using 1" what s;
    1

let default_jobs () =
  match Sys.getenv_opt "JUMPREP_JOBS" with
  | None -> 1
  | Some s -> parse_jobs s

(* --- task outcomes and supervisor statistics --- *)

type 'a outcome =
  | Done of 'a
  | Crashed of { exn : exn; backtrace : string; attempts : int }
  | Timed_out of { elapsed : float; attempts : int }

let outcome_kind = function
  | Done _ -> "done"
  | Crashed _ -> "crashed"
  | Timed_out _ -> "timed-out"

type stats = {
  injected_crashes : int;
  injected_hangs : int;
  injected_allocs : int;
  retried : int;
  respawned : int;
  abandoned : int;
}

let no_stats =
  {
    injected_crashes = 0;
    injected_hangs = 0;
    injected_allocs = 0;
    retried = 0;
    respawned = 0;
    abandoned = 0;
  }

let injected s = s.injected_crashes + s.injected_hangs + s.injected_allocs

(* Publish the supervisor tallies as pool.* counters.  The typed registry
   is the one place sweep-level observability reads them from; the record
   stays as the programmatic API. *)
let stats_to_metrics s metrics =
  let m = Telemetry.Metrics.add metrics in
  m "pool.injected_crashes" s.injected_crashes;
  m "pool.injected_hangs" s.injected_hangs;
  m "pool.injected_allocs" s.injected_allocs;
  m "pool.retried" s.retried;
  m "pool.respawned" s.respawned;
  m "pool.abandoned" s.abandoned

(* --- deterministic backoff --- *)

let backoff ?(base = 0.05) ?(cap = 0.8) attempt =
  min cap (base *. (2. ** float_of_int (max 0 (attempt - 1))))

(* --- deterministic chaos injection --- *)

type chaos = { crash : float; hang : float; alloc : float; chaos_seed : int }

exception Chaos_crash

(* splitmix-flavored integer scramble.  32-bit multiplier constants on a
   30-bit state: the usual 64-bit constants overflow OCaml's 63-bit
   native ints.  Pure in (seed, task, attempt), so sequential and
   parallel runs inject the identical fault schedule. *)
let mix seed task attempt =
  let mask = (1 lsl 30) - 1 in
  let golden = 0x9E3779B1 in
  let scramble h =
    let h = (h lxor (h lsr 15)) * 0x85EBCA6B land mask in
    let h = (h lxor (h lsr 13)) * 0xC2B2AE35 land mask in
    h lxor (h lsr 16)
  in
  let h = scramble ((seed land mask) + golden) in
  let h = scramble (h lxor ((task + 1) * golden land mask)) in
  scramble (h lxor ((attempt + 1) * golden land mask))

let chaos_fault c ~task ~attempt =
  let u = float_of_int (mix c.chaos_seed task attempt land 0xFFFFFF) /. 16777216. in
  if u < c.crash then Some `Crash
  else if u < c.crash +. c.hang then Some `Hang
  else if u < c.crash +. c.hang +. c.alloc then Some `Alloc
  else None

let chaos_of_string s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rate kind v =
    match float_of_string_opt v with
    | Some r when r >= 0. && r <= 1. -> Ok r
    | Some _ | None ->
      Error (Printf.sprintf "bad %s rate %S (want a probability in 0..1)" kind v)
  in
  let rec go c = function
    | [] ->
      if c.crash +. c.hang +. c.alloc > 0. then Ok c
      else Error "chaos spec enables no fault kind"
    | p :: rest -> (
      let kind, value =
        match String.index_opt p ':' with
        | None -> (p, None)
        | Some i ->
          ( String.sub p 0 i,
            Some (String.sub p (i + 1) (String.length p - i - 1)) )
      in
      let with_rate set = function
        | None -> go (set 0.1) rest
        | Some v -> (
          match rate kind v with Ok r -> go (set r) rest | Error e -> Error e)
      in
      match kind with
      | "crash" -> with_rate (fun r -> { c with crash = r }) value
      | "hang" -> with_rate (fun r -> { c with hang = r }) value
      | "alloc" -> with_rate (fun r -> { c with alloc = r }) value
      | "seed" -> (
        match Option.bind value int_of_string_opt with
        | Some n -> go { c with chaos_seed = n } rest
        | None -> Error (Printf.sprintf "bad chaos seed in %S (want seed:N)" p))
      | _ ->
        Error
          (Printf.sprintf
             "unknown chaos component %S (want crash|hang|alloc[:RATE] or \
              seed:N)"
             p))
  in
  go { crash = 0.; hang = 0.; alloc = 0.; chaos_seed = 1 } parts

(* --- the supervisor --- *)

(* How one attempt failed: a raised exception, or a deadline/cancellation
   (the only two final outcomes besides success). *)
type failure = F_crash of exn * string | F_timeout of float

type running = {
  r_task : int;
  r_attempt : int;
  r_start : float;
  r_budget : Budget.t;
}

(* One worker slot.  [st] is written under the pool mutex by both the
   worker (Busy/Idle/Exited/Died transitions) and never by the parent;
   [retire] tells a worker abandoned by the watchdog not to take more
   work if it ever returns from its stuck attempt.  [tid] is the slot's
   stable trace lane: a respawned replacement inherits the dead worker's
   lane, so a trace shows one timeline per logical worker. *)
type slot_state =
  | Idle
  | Busy of running
  | Exited
  | Died of running option * exn * string

type slot = {
  mutable st : slot_state;
  mutable dom : unit Domain.t option;
  mutable retire : bool;
  tid : int;
}

let supervise ?(jobs = 1) ?deadline ?(retries = 2) ?(backoff_base = 0.05)
    ?chaos ?trace ?label f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  (* Trace plumbing: every record is a no-op without [trace].  Worker
     spans carry the task's label; supervisor decisions land as instant
     events on lane 0. *)
  let task_label =
    match label with
    | Some l -> fun i -> l items.(i)
    | None -> fun i -> Printf.sprintf "task-%d" i
  in
  let tr g = match trace with Some t -> g t | None -> () in
  let span_attempt tid i attempt body =
    match trace with
    | None -> body ()
    | Some t ->
      Telemetry.Trace.with_span t ~tid ~cat:"task"
        ~args:[ ("attempt", Telemetry.Json.Int attempt) ]
        (task_label i) body
  in
  let chaos_instant tid kind =
    tr (fun t ->
        Telemetry.Trace.instant t ~tid ~cat:"chaos"
          (Printf.sprintf "chaos-%s" kind))
  in
  tr (fun t ->
      Telemetry.Trace.thread_name t ~tid:0 "supervisor";
      for k = 1 to jobs do
        Telemetry.Trace.thread_name t ~tid:k (Printf.sprintf "worker-%d" k)
      done);
  let inj_crashes = Atomic.make 0 in
  let inj_hangs = Atomic.make 0 in
  let inj_allocs = Atomic.make 0 in
  let retried = ref 0 in
  let respawned = ref 0 in
  let abandoned = ref 0 in
  (* Injected hangs spin until released, interrupted, or this cap — they
     must never outlive the supervisor's bounded shutdown. *)
  let hang_cap = match deadline with Some d -> 4. *. d | None -> 2.0 in
  let release = Atomic.make false in
  let fault i attempt =
    match chaos with
    | None -> None
    | Some c -> chaos_fault c ~task:i ~attempt
  in
  (* ~64MB of short-lived garbage: memory pressure that must not change
     the task's result. *)
  let alloc_storm () =
    for _ = 1 to 64 do
      ignore (Sys.opaque_identity (Bytes.create (1 lsl 20)))
    done
  in
  let stats () =
    {
      injected_crashes = Atomic.get inj_crashes;
      injected_hangs = Atomic.get inj_hangs;
      injected_allocs = Atomic.get inj_allocs;
      retried = !retried;
      respawned = !respawned;
      abandoned = !abandoned;
    }
  in
  if jobs = 1 then begin
    (* Inline path: same attempt/fault/backoff schedule, no domains.  An
       injected hang is charged as a timed-out attempt without actually
       spinning — nothing else could make progress meanwhile. *)
    let run_task i x =
      let rec go attempt =
        let budget = Budget.make ?deadline () in
        let started = Unix.gettimeofday () in
        let res =
          span_attempt 1 i attempt (fun () ->
              match fault i attempt with
              | Some `Crash ->
                Atomic.incr inj_crashes;
                chaos_instant 1 "crash";
                Error (F_crash (Chaos_crash, ""))
              | Some `Hang ->
                Atomic.incr inj_hangs;
                chaos_instant 1 "hang";
                Error (F_timeout (Option.value deadline ~default:0.))
              | (Some `Alloc | None) as fl -> (
                if fl <> None then begin
                  Atomic.incr inj_allocs;
                  chaos_instant 1 "alloc";
                  alloc_storm ()
                end;
                match f budget x with
                | v -> Ok v
                | exception Budget.Exhausted _ ->
                  Error (F_timeout (Unix.gettimeofday () -. started))
                | exception e -> Error (F_crash (e, Printexc.get_backtrace ()))))
        in
        match res with
        | Ok v -> Done v
        | Error fl ->
          if attempt <= retries then begin
            incr retried;
            tr (fun t ->
                Telemetry.Trace.instant t ~tid:0
                  ~args:
                    [
                      ("task", Telemetry.Json.Str (task_label i));
                      ("attempt", Telemetry.Json.Int attempt);
                    ]
                  "task-retry");
            Unix.sleepf (backoff ~base:backoff_base attempt);
            go (attempt + 1)
          end
          else (
            match fl with
            | F_crash (exn, backtrace) ->
              Crashed { exn; backtrace; attempts = attempt }
            | F_timeout elapsed -> Timed_out { elapsed; attempts = attempt })
      in
      go 1
    in
    let results = Array.mapi run_task items in
    (Array.to_list results, stats ())
  end
  else begin
    let mu = Mutex.create () in
    let cond = Condition.create () in
    let pending : (int * int) Queue.t = Queue.create () in
    let reports = Queue.create () in
    let delayed = ref [] in
    let quit = ref false in
    let results = Array.make n None in
    let latest = Array.make n 1 in
    let remaining = ref n in
    let run_attempt slot i attempt =
      let budget = Budget.make ?deadline () in
      let started = Unix.gettimeofday () in
      Mutex.lock mu;
      slot.st <-
        Busy
          { r_task = i; r_attempt = attempt; r_start = started; r_budget = budget };
      Mutex.unlock mu;
      let res =
        span_attempt slot.tid i attempt (fun () ->
            match fault i attempt with
            | Some `Crash ->
              Atomic.incr inj_crashes;
              chaos_instant slot.tid "crash";
              (* Unwinds the whole worker function: the domain dies, which is
                 exactly the failure the supervisor's death detection and
                 respawn exist for. *)
              raise Chaos_crash
            | Some `Hang ->
              Atomic.incr inj_hangs;
              chaos_instant slot.tid "hang";
              (* A busy-wait that still polls (cpu_relax keeps the domain a
                 GC-friendly citizen) and honors cooperative cancellation. *)
              while
                (not (Atomic.get release))
                && (not (Budget.interrupted budget))
                && Unix.gettimeofday () -. started < hang_cap
              do
                Domain.cpu_relax ()
              done;
              Error (F_timeout (Unix.gettimeofday () -. started))
            | (Some `Alloc | None) as fl -> (
              if fl <> None then begin
                Atomic.incr inj_allocs;
                chaos_instant slot.tid "alloc";
                alloc_storm ()
              end;
              match f budget items.(i) with
              | v -> Ok v
              | exception Budget.Exhausted _ ->
                Error (F_timeout (Unix.gettimeofday () -. started))
              | exception e -> Error (F_crash (e, Printexc.get_backtrace ()))))
      in
      Mutex.lock mu;
      slot.st <- Idle;
      Queue.push (i, attempt, res) reports;
      Mutex.unlock mu
    in
    let rec worker_loop slot =
      Mutex.lock mu;
      let rec next () =
        if !quit || slot.retire then None
        else if Queue.is_empty pending then begin
          Condition.wait cond mu;
          next ()
        end
        else Some (Queue.pop pending)
      in
      let job = next () in
      Mutex.unlock mu;
      match job with
      | None -> ()
      | Some (i, attempt) ->
        run_attempt slot i attempt;
        worker_loop slot
    in
    let worker slot () =
      match worker_loop slot with
      | () ->
        Mutex.lock mu;
        slot.st <- Exited;
        Mutex.unlock mu
      | exception e ->
        let bt = Printexc.get_backtrace () in
        Mutex.lock mu;
        let running = match slot.st with Busy r -> Some r | _ -> None in
        slot.st <- Died (running, e, bt);
        Mutex.unlock mu
    in
    let spawn_slot tid =
      let slot = { st = Idle; dom = None; retire = false; tid } in
      slot.dom <- Some (Domain.spawn (worker slot));
      slot
    in
    let slots = ref (List.init jobs (fun k -> spawn_slot (k + 1))) in
    let zombies = ref [] in
    (* Lanes of dead/abandoned slots, recycled by the respawn loop so a
       replacement worker continues its predecessor's trace timeline. *)
    let free_tids = ref [] in
    (* All three run under [mu]. *)
    let finalize i outcome =
      if results.(i) = None then begin
        results.(i) <- Some outcome;
        decr remaining
      end
    in
    let handle_failure now i attempt fl =
      (* Failures of superseded attempts are ignored: the newer attempt
         owns the task's fate.  A stale success still delivers (handled
         by the caller), since the task function is deterministic. *)
      if results.(i) = None && attempt >= latest.(i) then begin
        if attempt <= retries then begin
          incr retried;
          tr (fun t ->
              Telemetry.Trace.instant t ~tid:0
                ~args:
                  [
                    ("task", Telemetry.Json.Str (task_label i));
                    ("attempt", Telemetry.Json.Int attempt);
                  ]
                "task-retry");
          latest.(i) <- attempt + 1;
          delayed :=
            (now +. backoff ~base:backoff_base attempt, i, attempt + 1)
            :: !delayed
        end
        else
          finalize i
            (match fl with
            | F_crash (exn, backtrace) ->
              Crashed { exn; backtrace; attempts = attempt }
            | F_timeout elapsed -> Timed_out { elapsed; attempts = attempt })
      end
    in
    (* Seed attempt 1 of every task. *)
    Mutex.lock mu;
    Array.iteri (fun i _ -> Queue.push (i, 1) pending) items;
    Condition.broadcast cond;
    Mutex.unlock mu;
    (* The supervisor tick. *)
    while !remaining > 0 do
      let to_join = ref [] in
      Mutex.lock mu;
      let now = Unix.gettimeofday () in
      while not (Queue.is_empty reports) do
        let i, attempt, res = Queue.pop reports in
        match res with
        | Ok v -> finalize i (Done v)
        | Error fl -> handle_failure now i attempt fl
      done;
      let keep =
        List.filter
          (fun slot ->
            match slot.st with
            | Died (running, exn, bt) ->
              tr (fun t ->
                  Telemetry.Trace.instant t ~tid:0
                    ~args:[ ("worker", Telemetry.Json.Int slot.tid) ]
                    "worker-died");
              Option.iter
                (fun r -> handle_failure now r.r_task r.r_attempt (F_crash (exn, bt)))
                running;
              Option.iter (fun d -> to_join := d :: !to_join) slot.dom;
              free_tids := slot.tid :: !free_tids;
              false
            | Busy r -> (
              match deadline with
              | Some d when now -. r.r_start > 2. *. d ->
                (* Past the cooperative-cancellation grace period: the
                   attempt is not responding.  Abandon the worker (it is
                   told to retire if it ever comes back) and give the
                   task a fresh domain. *)
                incr abandoned;
                tr (fun t ->
                    Telemetry.Trace.instant t ~tid:0
                      ~args:
                        [
                          ("worker", Telemetry.Json.Int slot.tid);
                          ("task", Telemetry.Json.Str (task_label r.r_task));
                        ]
                      "deadline-abandon");
                Budget.cancel r.r_budget;
                handle_failure now r.r_task r.r_attempt
                  (F_timeout (now -. r.r_start));
                slot.retire <- true;
                zombies := slot :: !zombies;
                free_tids := slot.tid :: !free_tids;
                false
              | Some d when now -. r.r_start > d ->
                if not (Budget.interrupted r.r_budget) then
                  tr (fun t ->
                      Telemetry.Trace.instant t ~tid:0
                        ~args:
                          [
                            ("worker", Telemetry.Json.Int slot.tid);
                            ("task", Telemetry.Json.Str (task_label r.r_task));
                          ]
                        "deadline-cancel");
                Budget.cancel r.r_budget;
                true
              | _ -> true)
            | Idle | Exited -> true)
          !slots
      in
      slots := keep;
      let ready, not_ready =
        List.partition (fun (t, _, _) -> t <= now) !delayed
      in
      delayed := not_ready;
      List.iter (fun (_, i, attempt) -> Queue.push (i, attempt) pending) ready;
      if not (Queue.is_empty pending) then Condition.broadcast cond;
      let live = List.length !slots in
      Mutex.unlock mu;
      List.iter Domain.join !to_join;
      if !remaining > 0 then begin
        for _ = 1 to jobs - live do
          incr respawned;
          let tid =
            match !free_tids with
            | t :: rest ->
              free_tids := rest;
              t
            | [] -> jobs + !respawned (* fresh lane; should not happen *)
          in
          tr (fun t ->
              Telemetry.Trace.instant t ~tid:0
                ~args:[ ("worker", Telemetry.Json.Int tid) ]
                "worker-respawn");
          slots := spawn_slot tid :: !slots
        done;
        Unix.sleepf 0.001
      end
    done;
    (* Shutdown: wake everything, cancel stale attempts, then a bounded
       wait — a worker wedged in a non-cooperative task cannot be killed,
       so after the grace period it is simply left behind rather than
       wedging the join. *)
    Mutex.lock mu;
    quit := true;
    Atomic.set release true;
    List.iter
      (fun s -> match s.st with Busy r -> Budget.cancel r.r_budget | _ -> ())
      (!slots @ !zombies);
    Condition.broadcast cond;
    Mutex.unlock mu;
    let finished s =
      Mutex.lock mu;
      let r = match s.st with Exited | Died _ -> true | Idle | Busy _ -> false in
      Mutex.unlock mu;
      r
    in
    let all = !slots @ !zombies in
    let give_up = Unix.gettimeofday () +. Float.max 1.0 hang_cap in
    let rec drain waiting =
      let still = List.filter (fun s -> not (finished s)) waiting in
      if still = [] || Unix.gettimeofday () > give_up then still
      else begin
        Unix.sleepf 0.001;
        drain still
      end
    in
    let stragglers = drain all in
    List.iter
      (fun s ->
        if not (List.memq s stragglers) then Option.iter Domain.join s.dom)
      all;
    let outcomes =
      Array.to_list
        (Array.map (function Some o -> o | None -> assert false) results)
    in
    (outcomes, stats ())
  end

(* --- persistent supervised service (the daemon's scheduler) --- *)

(* [supervise] is a batch API: it owns the calling domain until the last
   task lands.  A long-running server needs the same fault isolation —
   worker domains, respawn, deadlines, retries, deterministic chaos —
   with tasks arriving one at a time and the supervisor tick driven from
   the server's own event loop.  [Service] is that shape: [submit] hands
   a task to resident workers, [tick] is one non-blocking supervisor
   pass (call it from the event loop), [poll] reads a task's structured
   outcome, [shutdown] is the bounded join.

   Every handle write happens under the service mutex; a task function
   runs on a worker domain and stores its own [Done] result, while
   retries, deadline abandonment and failure finalization belong to the
   tick.  Resident workers also keep their domain-local decode caches
   warm across requests — the space-for-latency trade the daemon
   serves. *)
module Service = struct
  type task = {
    t_seq : int;
    t_label : string;
    t_fn : Budget.t -> unit;  (* runs the user fn; stores Done itself *)
    t_fail : failure -> int -> unit;  (* finalize; caller holds [mu] *)
    t_finalized : unit -> bool;  (* caller holds [mu] *)
    t_deadline : float option;
    t_retries : int;
    t_chaos : chaos option;
    mutable t_latest : int;  (* newest scheduled attempt number *)
  }

  type trunning = {
    q_task : task;
    q_attempt : int;
    q_start : float;
    q_budget : Budget.t;
  }

  type sstate =
    | S_idle
    | S_busy of trunning
    | S_exited
    | S_died of trunning option * exn * string

  type sslot = {
    mutable s_st : sstate;
    mutable s_dom : unit Domain.t option;
    mutable s_retire : bool;
    s_tid : int;
  }

  type t = {
    mu : Mutex.t;
    cond : Condition.t;
    jobs : int;
    pending : (task * int) Queue.t;
    reports : (task * int * (unit, failure) result) Queue.t;
    mutable delayed : (float * task * int) list;
    mutable slots : sslot list;
    mutable zombies : sslot list;
    mutable free_tids : int list;
    mutable quit : bool;
    release : bool Atomic.t;
    mutable seq : int;
    mutable in_flight : int;
    mutable submitted : int;
    backoff_base : float;
    trace : Telemetry.Trace.t option;
    inj_crashes : int Atomic.t;
    inj_hangs : int Atomic.t;
    inj_allocs : int Atomic.t;
    mutable s_retried : int;
    mutable s_respawned : int;
    mutable s_abandoned : int;
  }

  type 'a handle = { mutable h_out : 'a outcome option }

  let tr svc g = match svc.trace with Some t -> g t | None -> ()

  let alloc_storm () =
    for _ = 1 to 64 do
      ignore (Sys.opaque_identity (Bytes.create (1 lsl 20)))
    done

  (* One attempt on a worker domain.  The chaos fault schedule is the
     supervise one: a pure function of (seed, submission sequence number,
     attempt).  An injected crash unwinds the worker — domain death and
     respawn are exactly the failure mode being drilled. *)
  let run_attempt svc slot task attempt =
    let budget = Budget.make ?deadline:task.t_deadline () in
    let started = Unix.gettimeofday () in
    Mutex.lock svc.mu;
    slot.s_st <-
      S_busy { q_task = task; q_attempt = attempt; q_start = started; q_budget = budget };
    Mutex.unlock svc.mu;
    let hang_cap =
      match task.t_deadline with Some d -> 4. *. d | None -> 2.0
    in
    let body () =
      let fault =
        match task.t_chaos with
        | None -> None
        | Some c -> chaos_fault c ~task:task.t_seq ~attempt
      in
      match fault with
      | Some `Crash ->
        Atomic.incr svc.inj_crashes;
        tr svc (fun t ->
            Telemetry.Trace.instant t ~tid:slot.s_tid ~cat:"chaos" "chaos-crash");
        raise Chaos_crash
      | Some `Hang ->
        Atomic.incr svc.inj_hangs;
        tr svc (fun t ->
            Telemetry.Trace.instant t ~tid:slot.s_tid ~cat:"chaos" "chaos-hang");
        while
          (not (Atomic.get svc.release))
          && (not (Budget.interrupted budget))
          && Unix.gettimeofday () -. started < hang_cap
        do
          Domain.cpu_relax ()
        done;
        Error (F_timeout (Unix.gettimeofday () -. started))
      | (Some `Alloc | None) as fl -> (
        if fl <> None then begin
          Atomic.incr svc.inj_allocs;
          tr svc (fun t ->
              Telemetry.Trace.instant t ~tid:slot.s_tid ~cat:"chaos" "chaos-alloc");
          alloc_storm ()
        end;
        match task.t_fn budget with
        | () -> Ok ()
        | exception Budget.Exhausted _ ->
          Error (F_timeout (Unix.gettimeofday () -. started))
        | exception e -> Error (F_crash (e, Printexc.get_backtrace ())))
    in
    let res =
      match svc.trace with
      | None -> body ()
      | Some t ->
        Telemetry.Trace.with_span t ~tid:slot.s_tid ~cat:"request"
          ~args:[ ("attempt", Telemetry.Json.Int attempt) ]
          task.t_label body
    in
    Mutex.lock svc.mu;
    slot.s_st <- S_idle;
    Queue.push (task, attempt, res) svc.reports;
    Mutex.unlock svc.mu

  let rec worker_loop svc slot =
    Mutex.lock svc.mu;
    let rec next () =
      if svc.quit || slot.s_retire then None
      else if Queue.is_empty svc.pending then begin
        Condition.wait svc.cond svc.mu;
        next ()
      end
      else Some (Queue.pop svc.pending)
    in
    let job = next () in
    Mutex.unlock svc.mu;
    match job with
    | None -> ()
    | Some (task, attempt) ->
      run_attempt svc slot task attempt;
      worker_loop svc slot

  let worker svc slot () =
    match worker_loop svc slot with
    | () ->
      Mutex.lock svc.mu;
      slot.s_st <- S_exited;
      Mutex.unlock svc.mu
    | exception e ->
      let bt = Printexc.get_backtrace () in
      Mutex.lock svc.mu;
      let running = match slot.s_st with S_busy r -> Some r | _ -> None in
      slot.s_st <- S_died (running, e, bt);
      Mutex.unlock svc.mu

  let spawn_slot svc tid =
    let slot = { s_st = S_idle; s_dom = None; s_retire = false; s_tid = tid } in
    slot.s_dom <- Some (Domain.spawn (worker svc slot));
    slot

  let create ?(jobs = 1) ?trace () =
    let jobs = max 1 jobs in
    let svc =
      {
        mu = Mutex.create ();
        cond = Condition.create ();
        jobs;
        pending = Queue.create ();
        reports = Queue.create ();
        delayed = [];
        slots = [];
        zombies = [];
        free_tids = [];
        quit = false;
        release = Atomic.make false;
        seq = 0;
        in_flight = 0;
        submitted = 0;
        backoff_base = 0.05;
        trace;
        inj_crashes = Atomic.make 0;
        inj_hangs = Atomic.make 0;
        inj_allocs = Atomic.make 0;
        s_retried = 0;
        s_respawned = 0;
        s_abandoned = 0;
      }
    in
    (match trace with
    | Some t ->
      Telemetry.Trace.thread_name t ~tid:0 "supervisor";
      for k = 1 to jobs do
        Telemetry.Trace.thread_name t ~tid:k (Printf.sprintf "worker-%d" k)
      done
    | None -> ());
    svc.slots <- List.init jobs (fun k -> spawn_slot svc (k + 1));
    svc

  let stats svc =
    {
      injected_crashes = Atomic.get svc.inj_crashes;
      injected_hangs = Atomic.get svc.inj_hangs;
      injected_allocs = Atomic.get svc.inj_allocs;
      retried = svc.s_retried;
      respawned = svc.s_respawned;
      abandoned = svc.s_abandoned;
    }

  let in_flight svc =
    Mutex.lock svc.mu;
    let n = svc.in_flight in
    Mutex.unlock svc.mu;
    n

  let submitted svc =
    Mutex.lock svc.mu;
    let n = svc.submitted in
    Mutex.unlock svc.mu;
    n

  let lease_depth svc =
    Mutex.lock svc.mu;
    let n =
      List.fold_left
        (fun acc s -> match s.s_st with S_busy _ -> acc + 1 | _ -> acc)
        0 svc.slots
    in
    Mutex.unlock svc.mu;
    n

  let submit svc ?deadline ?(retries = 0) ?chaos ?label f =
    let h = { h_out = None } in
    Mutex.lock svc.mu;
    if svc.quit then begin
      Mutex.unlock svc.mu;
      invalid_arg "Pool.Service.submit: service is shut down"
    end;
    svc.seq <- svc.seq + 1;
    svc.in_flight <- svc.in_flight + 1;
    svc.submitted <- svc.submitted + 1;
    let seq = svc.seq in
    (* Finalization is once-only: a stale attempt completing after an
       abandonment (or after the retry that superseded it) finds the
       handle already written and leaves it alone — the task function is
       deterministic, so whichever attempt lands first defines the
       outcome. *)
    let finalize o =
      if h.h_out = None then begin
        h.h_out <- Some o;
        svc.in_flight <- svc.in_flight - 1
      end
    in
    let task =
      {
        t_seq = seq;
        t_label =
          (match label with Some l -> l | None -> Printf.sprintf "req-%d" seq);
        t_fn =
          (fun budget ->
            let v = f budget in
            Mutex.lock svc.mu;
            finalize (Done v);
            Mutex.unlock svc.mu);
        t_fail =
          (fun fl attempts ->
            finalize
              (match fl with
              | F_crash (exn, backtrace) -> Crashed { exn; backtrace; attempts }
              | F_timeout elapsed -> Timed_out { elapsed; attempts }));
        t_finalized = (fun () -> h.h_out <> None);
        t_deadline = deadline;
        t_retries = retries;
        t_chaos = chaos;
        t_latest = 1;
      }
    in
    Queue.push (task, 1) svc.pending;
    Condition.broadcast svc.cond;
    Mutex.unlock svc.mu;
    h

  let poll svc h =
    Mutex.lock svc.mu;
    let o = h.h_out in
    Mutex.unlock svc.mu;
    o

  (* Retry/finalize bookkeeping for a failed attempt; caller holds [mu]. *)
  let handle_failure svc now task attempt fl =
    if (not (task.t_finalized ())) && attempt >= task.t_latest then begin
      if attempt <= task.t_retries then begin
        svc.s_retried <- svc.s_retried + 1;
        tr svc (fun t ->
            Telemetry.Trace.instant t ~tid:0
              ~args:
                [
                  ("task", Telemetry.Json.Str task.t_label);
                  ("attempt", Telemetry.Json.Int attempt);
                ]
              "task-retry");
        task.t_latest <- attempt + 1;
        svc.delayed <-
          (now +. backoff ~base:svc.backoff_base attempt, task, attempt + 1)
          :: svc.delayed
      end
      else task.t_fail fl attempt
    end

  (* One supervisor pass: deliver reports, detect dead workers, enforce
     deadlines, release due retries, respawn.  Non-blocking — the server
     calls this from its select loop. *)
  let tick svc =
    let to_join = ref [] in
    Mutex.lock svc.mu;
    let now = Unix.gettimeofday () in
    while not (Queue.is_empty svc.reports) do
      let task, attempt, res = Queue.pop svc.reports in
      match res with
      | Ok () -> ()  (* the task function already stored its Done *)
      | Error fl -> handle_failure svc now task attempt fl
    done;
    let keep =
      List.filter
        (fun slot ->
          match slot.s_st with
          | S_died (running, exn, bt) ->
            tr svc (fun t ->
                Telemetry.Trace.instant t ~tid:0
                  ~args:[ ("worker", Telemetry.Json.Int slot.s_tid) ]
                  "worker-died");
            Option.iter
              (fun r ->
                handle_failure svc now r.q_task r.q_attempt (F_crash (exn, bt)))
              running;
            Option.iter (fun d -> to_join := d :: !to_join) slot.s_dom;
            svc.free_tids <- slot.s_tid :: svc.free_tids;
            false
          | S_busy r -> (
            match r.q_task.t_deadline with
            | Some d when now -. r.q_start > 2. *. d ->
              svc.s_abandoned <- svc.s_abandoned + 1;
              tr svc (fun t ->
                  Telemetry.Trace.instant t ~tid:0
                    ~args:
                      [
                        ("worker", Telemetry.Json.Int slot.s_tid);
                        ("task", Telemetry.Json.Str r.q_task.t_label);
                      ]
                    "deadline-abandon");
              Budget.cancel r.q_budget;
              handle_failure svc now r.q_task r.q_attempt
                (F_timeout (now -. r.q_start));
              slot.s_retire <- true;
              svc.zombies <- slot :: svc.zombies;
              svc.free_tids <- slot.s_tid :: svc.free_tids;
              false
            | Some d when now -. r.q_start > d ->
              if not (Budget.interrupted r.q_budget) then
                tr svc (fun t ->
                    Telemetry.Trace.instant t ~tid:0
                      ~args:
                        [
                          ("worker", Telemetry.Json.Int slot.s_tid);
                          ("task", Telemetry.Json.Str r.q_task.t_label);
                        ]
                      "deadline-cancel");
              Budget.cancel r.q_budget;
              true
            | _ -> true)
          | S_idle | S_exited -> true)
        svc.slots
    in
    svc.slots <- keep;
    let ready, not_ready =
      List.partition (fun (t, _, _) -> t <= now) svc.delayed
    in
    svc.delayed <- not_ready;
    List.iter
      (fun (_, task, attempt) -> Queue.push (task, attempt) svc.pending)
      ready;
    if not (Queue.is_empty svc.pending) then Condition.broadcast svc.cond;
    let live = List.length svc.slots in
    let quit = svc.quit in
    Mutex.unlock svc.mu;
    List.iter Domain.join !to_join;
    if not quit then
      for _ = 1 to svc.jobs - live do
        Mutex.lock svc.mu;
        svc.s_respawned <- svc.s_respawned + 1;
        let tid =
          match svc.free_tids with
          | t :: rest ->
            svc.free_tids <- rest;
            t
          | [] -> svc.jobs + svc.s_respawned
        in
        tr svc (fun t ->
            Telemetry.Trace.instant t ~tid:0
              ~args:[ ("worker", Telemetry.Json.Int tid) ]
              "worker-respawn");
        let slot = spawn_slot svc tid in
        svc.slots <- slot :: svc.slots;
        Mutex.unlock svc.mu
      done

  (* Bounded shutdown, same discipline as [supervise]: wake everyone,
     cancel whatever is still running, then wait at most [deadline]
     seconds — a worker wedged in non-cooperative code is left behind
     rather than wedging the caller.  Returns [true] when every worker
     joined (no stragglers). *)
  let shutdown ?(deadline = 2.0) svc =
    Mutex.lock svc.mu;
    svc.quit <- true;
    Atomic.set svc.release true;
    List.iter
      (fun s ->
        match s.s_st with S_busy r -> Budget.cancel r.q_budget | _ -> ())
      (svc.slots @ svc.zombies);
    Condition.broadcast svc.cond;
    let all = svc.slots @ svc.zombies in
    Mutex.unlock svc.mu;
    let finished s =
      Mutex.lock svc.mu;
      let r =
        match s.s_st with
        | S_exited | S_died _ -> true
        | S_idle | S_busy _ -> false
      in
      Mutex.unlock svc.mu;
      r
    in
    let give_up = Unix.gettimeofday () +. Float.max 0.1 deadline in
    let rec drain waiting =
      let still = List.filter (fun s -> not (finished s)) waiting in
      if still = [] || Unix.gettimeofday () > give_up then still
      else begin
        Unix.sleepf 0.001;
        drain still
      end
    in
    let stragglers = drain all in
    List.iter
      (fun s ->
        if not (List.memq s stragglers) then Option.iter Domain.join s.s_dom)
      all;
    stragglers = []
end

let map ?(jobs = 1) f xs =
  let outcomes, _ = supervise ~jobs ~retries:0 (fun _budget x -> f x) xs in
  List.map
    (function
      | Done v -> v
      | Crashed { exn; _ } -> raise exn
      | Timed_out _ -> failwith "Pool.map: task timed out")
    outcomes
