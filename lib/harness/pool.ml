(* A fixed-size Domain worker pool over an indexed work list.  Items are
   claimed through one atomic counter, so the schedule is whichever
   domain gets there first — callers own determinism by keeping shared
   state out of [f] and folding the (index-ordered) results on the
   parent.  The calling domain works too: [jobs = 1] spawns nothing and
   degrades to [List.map]. *)

let default_jobs () =
  match Sys.getenv_opt "JUMPREP_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

let map ?(jobs = 1) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f items.(i));
          go ()
        end
      in
      go ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* Run the parent's share first so a raise still reaches every join
       below; a worker's exception surfaces out of its join. *)
    let parent_failure =
      match worker () with () -> None | exception e -> Some e
    in
    let worker_failure =
      List.fold_left
        (fun failure d ->
          match Domain.join d with
          | () -> failure
          | exception e -> ( match failure with Some _ -> failure | None -> Some e))
        None domains
    in
    (match parent_failure with
    | Some e -> raise e
    | None -> ( match worker_failure with Some e -> raise e | None -> ()));
    Array.to_list (Array.map Option.get results)
  end
