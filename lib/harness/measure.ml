type cache_stats = {
  config : Icache.config;
  miss_ratio : float;
  fetch_cost : int;
}

type t = {
  program : string;
  level : Opt.Driver.level;
  machine : Ir.Machine.t;
  static_instrs : int;
  static_ujumps : int;
  static_nops : int;
  dyn_instrs : int;
  dyn_ujumps : int;
  dyn_nops : int;
  dyn_transfers : int;
  output_ok : bool;
  caches : cache_stats list;
}

let instrs_between_branches t =
  float_of_int t.dyn_instrs /. float_of_int (max 1 t.dyn_transfers)

let memo : (string * Opt.Driver.level * string, t) Hashtbl.t = Hashtbl.create 128

let reset_cache () = Hashtbl.reset memo

let measure ?opts (b : Programs.Suite.benchmark) level machine =
  let opts =
    match opts with
    | Some o -> { o with Opt.Driver.level }
    | None -> { Opt.Driver.default_options with level }
  in
  let prog =
    Opt.Driver.optimize opts machine (Frontend.Codegen.compile_source b.source)
  in
  let asm = Sim.Asm.assemble machine prog in
  let caches =
    List.map (fun c -> (c, Icache.create c)) Icache.paper_configs
  in
  let on_fetch ~addr ~size =
    List.iter (fun (_, c) -> Icache.access c ~addr ~size) caches
  in
  let res = Sim.Interp.run ~input:b.input ~on_fetch asm prog in
  {
    program = b.name;
    level;
    machine;
    static_instrs = Sim.Asm.static_instrs asm;
    static_ujumps = Sim.Asm.static_ujumps asm;
    static_nops = Sim.Asm.static_nops asm;
    dyn_instrs = res.counts.total;
    dyn_ujumps = Sim.Interp.uncond_jumps res.counts;
    dyn_nops = res.counts.nops;
    dyn_transfers = Sim.Interp.transfers res.counts;
    output_ok = String.equal res.output b.expected_output;
    caches =
      List.map
        (fun (config, c) ->
          {
            config;
            miss_ratio = Icache.miss_ratio c;
            fetch_cost = Icache.fetch_cost c;
          })
        caches;
  }

let run ?opts (b : Programs.Suite.benchmark) level machine =
  match opts with
  | Some _ -> measure ?opts b level machine
  | None -> (
    let key = (b.name, level, machine.Ir.Machine.short) in
    match Hashtbl.find_opt memo key with
    | Some t -> t
    | None ->
      let t = measure b level machine in
      Hashtbl.add memo key t;
      t)

let run_suite level machine =
  List.map (fun b -> run b level machine) Programs.Suite.all
