type cache_stats = {
  config : Icache.config;
  miss_ratio : float;
  fetch_cost : int;
}

type t = {
  program : string;
  level : Opt.Driver.level;
  machine : Ir.Machine.t;
  static_instrs : int;
  static_ujumps : int;
  static_nops : int;
  dyn_instrs : int;
  dyn_ujumps : int;
  dyn_nops : int;
  dyn_transfers : int;
  output : string;
  output_ok : bool;
  timed_out : bool;
  caches : cache_stats list;
}

let instrs_between_branches t =
  float_of_int t.dyn_instrs /. float_of_int (max 1 t.dyn_transfers)

(* The memo key hashes source/input/expectation so ad-hoc files measured
   under the same name (or a re-generated suite) can never alias. *)
let memo : (string * string * Opt.Driver.level * string, t) Hashtbl.t =
  Hashtbl.create 128

let memo_key (b : Programs.Suite.benchmark) level machine =
  ( b.name,
    Digest.to_hex
      (Digest.string (b.source ^ "\x00" ^ b.input ^ "\x00" ^ b.expected_output)),
    level,
    machine.Ir.Machine.short )

let reset_cache () = Hashtbl.reset memo

(* Output mismatches found this process, in discovery order.  [run_suite]
   and the bench drivers use this to fail loudly instead of relying on
   every caller to inspect [output_ok]. *)
let failed : (string * Opt.Driver.level * string) list ref = ref []
let mismatches () = List.rev !failed

(* Step-limit exhaustions, kept apart from mismatches: a hang is a
   distinct verdict (the output comparison is meaningless for it). *)
let hung : (string * Opt.Driver.level * string) list ref = ref []
let timeouts () = List.rev !hung

let record_mismatch log (m : t) ~expected =
  failed := (m.program, m.level, m.machine.Ir.Machine.short) :: !failed;
  Telemetry.Log.emit log (fun () ->
      Telemetry.Log.Warning
        {
          message =
            Printf.sprintf "%s at %s on %s: output MISMATCH (%d bytes, want %d)"
              m.program
              (Opt.Driver.level_name m.level)
              m.machine.Ir.Machine.short (String.length m.output)
              (String.length expected);
        })

let record_timeout log (m : t) =
  hung := (m.program, m.level, m.machine.Ir.Machine.short) :: !hung;
  Telemetry.Log.emit log (fun () ->
      Telemetry.Log.Warning
        {
          message =
            Printf.sprintf "%s at %s on %s: TIMEOUT (step limit exhausted)"
              m.program
              (Opt.Driver.level_name m.level)
              m.machine.Ir.Machine.short;
        })

let measure ?opts ?(log = Telemetry.Log.null) ?(verify = true)
    (b : Programs.Suite.benchmark) level machine =
  let opts =
    match opts with
    | Some o -> { o with Opt.Driver.level }
    | None -> { Opt.Driver.default_options with level }
  in
  let prog =
    Opt.Driver.optimize ~log opts machine
      (Frontend.Codegen.compile_source b.source)
  in
  let asm = Sim.Asm.assemble machine prog in
  let caches =
    List.map (fun c -> (c, Icache.create c)) Icache.paper_configs
  in
  let on_fetch ~addr ~size =
    List.iter (fun (_, c) -> Icache.access c ~addr ~size) caches
  in
  let res = Sim.Interp.run ~input:b.input ~on_fetch ~log asm prog in
  let m =
    {
      program = b.name;
      level;
      machine;
      static_instrs = Sim.Asm.static_instrs asm;
      static_ujumps = Sim.Asm.static_ujumps asm;
      static_nops = Sim.Asm.static_nops asm;
      dyn_instrs = res.counts.total;
      dyn_ujumps = Sim.Interp.uncond_jumps res.counts;
      dyn_nops = res.counts.nops;
      dyn_transfers = Sim.Interp.transfers res.counts;
      output = res.output;
      output_ok =
        (not res.timed_out)
        && ((not verify) || String.equal res.output b.expected_output);
      timed_out = res.timed_out;
      caches =
        List.map
          (fun (config, c) ->
            {
              config;
              miss_ratio = Icache.miss_ratio c;
              fetch_cost = Icache.fetch_cost c;
            })
          caches;
    }
  in
  Telemetry.Counter.incr log "measure.runs";
  Telemetry.Counter.add log "measure.static_instrs" m.static_instrs;
  Telemetry.Counter.add log "measure.static_ujumps" m.static_ujumps;
  Telemetry.Counter.add log "measure.dyn_instrs" m.dyn_instrs;
  Telemetry.Counter.add log "measure.dyn_ujumps" m.dyn_ujumps;
  if m.timed_out then begin
    Telemetry.Counter.incr log "measure.timeouts";
    record_timeout log m
  end
  else if not m.output_ok then record_mismatch log m ~expected:b.expected_output;
  m

let run ?opts ?log ?verify (b : Programs.Suite.benchmark) level machine =
  match opts with
  | Some _ -> measure ?opts ?log ?verify b level machine
  | None -> (
    let key = memo_key b level machine in
    match Hashtbl.find_opt memo key with
    | Some t -> t
    | None ->
      let t = measure ?log ?verify b level machine in
      Hashtbl.add memo key t;
      t)

let run_adhoc ?opts ?log ~name ~source ?(input = "") ?expected_output level
    machine =
  (* Without an expectation, the run is its own reference: [output_ok] is
     forced true and callers compare outputs across levels instead. *)
  let b =
    {
      Programs.Suite.name;
      clazz = "Ad hoc";
      description = "ad-hoc measurement";
      source;
      input;
      expected_output = Option.value ~default:"" expected_output;
    }
  in
  run ?opts ?log ~verify:(expected_output <> None) b level machine

let run_suite ?log level machine =
  List.map (fun b -> run ?log b level machine) Programs.Suite.all

(* --- JSON rendering (the bench drivers' machine-readable output) --- *)

let cache_to_json (c : cache_stats) =
  Printf.sprintf
    "{\"config\":%s,\"size_kb\":%d,\"assoc\":%d,\"context_switches\":%b,\
     \"miss_ratio\":%.6f,\"fetch_cost\":%d}"
    (Telemetry.Log.json_string (Icache.config_name c.config))
    (c.config.Icache.size_bytes / 1024)
    c.config.Icache.assoc c.config.Icache.context_switches c.miss_ratio
    c.fetch_cost

let to_json m =
  Printf.sprintf
    "{\"program\":%s,\"level\":%s,\"machine\":%s,\"static_instrs\":%d,\
     \"static_ujumps\":%d,\"static_nops\":%d,\"dyn_instrs\":%d,\
     \"dyn_ujumps\":%d,\"dyn_nops\":%d,\"dyn_transfers\":%d,\
     \"instrs_between_branches\":%.3f,\"output_ok\":%b,\"timed_out\":%b,\
     \"caches\":[%s]}"
    (Telemetry.Log.json_string m.program)
    (Telemetry.Log.json_string (Opt.Driver.level_name m.level))
    (Telemetry.Log.json_string m.machine.Ir.Machine.short)
    m.static_instrs m.static_ujumps m.static_nops m.dyn_instrs m.dyn_ujumps
    m.dyn_nops m.dyn_transfers
    (instrs_between_branches m)
    m.output_ok m.timed_out
    (String.concat "," (List.map cache_to_json m.caches))
