type cache_stats = {
  config : Icache.config;
  miss_ratio : float;
  fetch_cost : int;
}

type t = {
  program : string;
  level : Opt.Driver.level;
  machine : Ir.Machine.t;
  static_instrs : int;
  static_ujumps : int;
  static_nops : int;
  code_bytes : int;
  dyn_instrs : int;
  dyn_ujumps : int;
  dyn_nops : int;
  dyn_transfers : int;
  output : string;
  output_ok : bool;
  timed_out : bool;
  caches : cache_stats list;
}

let instrs_between_branches t =
  float_of_int t.dyn_instrs /. float_of_int (max 1 t.dyn_transfers)

(* One lock for all module-level state (memo, mismatch/timeout/failure
   lists): the daemon's resident workers call the measurement entry
   points concurrently, where the bench sweeps only ever touched this
   state from the supervising domain.  Never held across a measurement —
   only across the bookkeeping around one. *)
let state_mu = Mutex.create ()

let locked f =
  Mutex.lock state_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock state_mu) f

(* The memo key hashes source/input/expectation so ad-hoc files measured
   under the same name (or a re-generated suite) can never alias. *)
let memo : (string * string * Opt.Driver.level * string, t) Hashtbl.t =
  Hashtbl.create 128

let memo_key (b : Programs.Suite.benchmark) level machine =
  ( b.name,
    Digest.to_hex
      (Digest.string (b.source ^ "\x00" ^ b.input ^ "\x00" ^ b.expected_output)),
    level,
    machine.Ir.Machine.short )

let reset_cache () = locked (fun () -> Hashtbl.reset memo)

(* Output mismatches found this process, in discovery order.  [run_suite]
   and the bench drivers use this to fail loudly instead of relying on
   every caller to inspect [output_ok]. *)
let failed : (string * Opt.Driver.level * string) list ref = ref []
let mismatches () = locked (fun () -> List.rev !failed)

(* Step-limit exhaustions, kept apart from mismatches: a hang is a
   distinct verdict (the output comparison is meaningless for it). *)
let hung : (string * Opt.Driver.level * string) list ref = ref []
let timeouts () = locked (fun () -> List.rev !hung)

(* Supervised tasks that produced no measurement at all — the worker
   crashed or the deadline expired on every attempt.  Kept apart from
   mismatches and timeouts: those describe a *measurement's* verdict,
   these describe a task that has none. *)
type task_failure = {
  f_program : string;
  f_level : Opt.Driver.level;
  f_machine : string;
  f_kind : string;  (* "crashed" | "timed-out" *)
  f_detail : string;
  f_attempts : int;
  f_elapsed : float;
}

let task_failed : task_failure list ref = ref []
let task_failures () = locked (fun () -> List.rev !task_failed)

let last_pool_stats = ref Pool.no_stats
let pool_stats () = !last_pool_stats

let failure_to_json f =
  Printf.sprintf
    "{\"program\":%s,\"level\":%s,\"machine\":%s,\"kind\":%s,\"detail\":%s,\
     \"attempts\":%d,\"elapsed\":%.3f}"
    (Telemetry.Log.json_string f.f_program)
    (Telemetry.Log.json_string (Opt.Driver.level_name f.f_level))
    (Telemetry.Log.json_string f.f_machine)
    (Telemetry.Log.json_string f.f_kind)
    (Telemetry.Log.json_string f.f_detail)
    f.f_attempts f.f_elapsed

let record_task_failure log ~kind ~detail ~attempts ~elapsed
    (b : Programs.Suite.benchmark) level (machine : Ir.Machine.t) =
  locked (fun () ->
      task_failed :=
        {
          f_program = b.name;
          f_level = level;
          f_machine = machine.Ir.Machine.short;
          f_kind = kind;
          f_detail = detail;
          f_attempts = attempts;
          f_elapsed = elapsed;
        }
        :: !task_failed);
  Telemetry.Log.emit log (fun () ->
      Telemetry.Log.Warning
        {
          message =
            Printf.sprintf "%s at %s on %s: task %s after %d attempt%s (%s)"
              b.name
              (Opt.Driver.level_name level)
              machine.Ir.Machine.short kind attempts
              (if attempts = 1 then "" else "s")
              detail;
        })

let record_mismatch log (m : t) ~expected =
  locked (fun () ->
      failed := (m.program, m.level, m.machine.Ir.Machine.short) :: !failed);
  Telemetry.Log.emit log (fun () ->
      Telemetry.Log.Warning
        {
          message =
            Printf.sprintf "%s at %s on %s: output MISMATCH (%d bytes, want %d)"
              m.program
              (Opt.Driver.level_name m.level)
              m.machine.Ir.Machine.short (String.length m.output)
              (String.length expected);
        })

let record_timeout log (m : t) =
  locked (fun () ->
      hung := (m.program, m.level, m.machine.Ir.Machine.short) :: !hung);
  Telemetry.Log.emit log (fun () ->
      Telemetry.Log.Warning
        {
          message =
            Printf.sprintf "%s at %s on %s: TIMEOUT (step limit exhausted)"
              m.program
              (Opt.Driver.level_name m.level)
              m.machine.Ir.Machine.short;
        })

(* The side-effect-free core of a measurement: compile, assemble, run
   through the cache bank, bump counters on [log].  No module-level state
   is touched and nothing beyond [log] (and the [profiler] shard) is
   written, so this is what pool workers run on their own domain with a
   private log. *)
let measure_raw ?opts ?(log = Telemetry.Log.null)
    ?(profiler = Telemetry.Profiler.null) ?(verify = true) ?budget
    ?(engine = Sim.Engine.Threaded) (b : Programs.Suite.benchmark) level machine
    =
  let profiling = Telemetry.Profiler.enabled profiler in
  let opts =
    match opts with
    | Some o -> { o with Opt.Driver.level }
    | None -> { Opt.Driver.default_options with level }
  in
  let prog =
    Opt.Driver.optimize ~log ~profiler opts machine
      (Frontend.Codegen.compile_source b.source)
  in
  let asm = Sim.Asm.assemble machine prog in
  let bank = Icache.Bank.create Icache.paper_configs in
  (* Cache-bank time is measured inside the fetch hook so it attributes
     only the bank's own work; gettimeofday is vDSO-cheap and the timed
     hook exists only under --profile. *)
  let cache_s = ref 0.0 in
  let on_fetch =
    if profiling then (fun ~addr ~size ->
      let t0 = Unix.gettimeofday () in
      let r = Icache.Bank.access bank ~addr ~size in
      cache_s := !cache_s +. (Unix.gettimeofday () -. t0);
      r)
    else fun ~addr ~size -> Icache.Bank.access bank ~addr ~size
  in
  (* The pool's deadline budget feeds only the interpreter (its fuel
     accounting doubles as the poll point): a cancelled run raises
     [Budget.Exhausted] and surfaces as a pool-level [Timed_out] outcome,
     never as a silently different measurement — completed results stay
     identical to a sequential, budget-free sweep. *)
  let interp_t0 = Unix.gettimeofday () in
  let exec = Sim.Engine.select engine in
  let res = exec ~input:b.input ~on_fetch ~log ?budget asm prog in
  let interp_ms = (Unix.gettimeofday () -. interp_t0) *. 1e3 in
  let m =
    {
      program = b.name;
      level;
      machine;
      static_instrs = Sim.Asm.static_instrs asm;
      static_ujumps = Sim.Asm.static_ujumps asm;
      static_nops = Sim.Asm.static_nops asm;
      code_bytes = Sim.Asm.code_bytes asm;
      dyn_instrs = res.counts.total;
      dyn_ujumps = Sim.Interp.uncond_jumps res.counts;
      dyn_nops = res.counts.nops;
      dyn_transfers = Sim.Interp.transfers res.counts;
      output = res.output;
      output_ok =
        (not res.timed_out)
        && ((not verify) || String.equal res.output b.expected_output);
      timed_out = res.timed_out;
      caches =
        List.mapi
          (fun i config ->
            {
              config;
              miss_ratio = Icache.Bank.miss_ratio bank i;
              fetch_cost = Icache.Bank.fetch_cost bank i;
            })
          Icache.paper_configs;
    }
  in
  Telemetry.Counter.incr log "measure.runs";
  Telemetry.Counter.add log "measure.static_instrs" m.static_instrs;
  Telemetry.Counter.add log "measure.static_ujumps" m.static_ujumps;
  Telemetry.Counter.add log "measure.dyn_instrs" m.dyn_instrs;
  Telemetry.Counter.add log "measure.dyn_ujumps" m.dyn_ujumps;
  if m.timed_out then Telemetry.Counter.incr log "measure.timeouts";
  (* Histograms live beside the counters in the registry; the bench JSON's
     "counters" object reads only counters, so this never perturbs it. *)
  Telemetry.Metrics.observe (Telemetry.Log.metrics log) "measure.run_instrs"
    ~buckets:Telemetry.Metrics.Buckets.instrs
    (float_of_int m.dyn_instrs);
  if profiling then begin
    Telemetry.Metrics.observe
      (Telemetry.Log.metrics log)
      "measure.interp_ms" ~buckets:Telemetry.Metrics.Buckets.time_ms interp_ms;
    Telemetry.Profiler.record_run profiler
      ~run:
        (Printf.sprintf "%s/%s/%s" b.name
           (Opt.Driver.level_name level)
           machine.Ir.Machine.short)
      ~fuel:res.counts.total ~interp_ms
      ~cache_ms:(!cache_s *. 1e3)
  end;
  m

(* The stateful tail of a measurement — mismatch/timeout bookkeeping in
   the module-level lists (lock-guarded; daemon workers land here
   concurrently). *)
let record log (b : Programs.Suite.benchmark) m =
  if m.timed_out then record_timeout log m
  else if not m.output_ok then record_mismatch log m ~expected:b.expected_output

let measure ?opts ?(log = Telemetry.Log.null) ?profiler ?verify ?budget ?engine
    (b : Programs.Suite.benchmark) level machine =
  let m =
    measure_raw ?opts ~log ?profiler ?verify ?budget ?engine b level machine
  in
  record log b m;
  m

(* The memo key carries no engine: the engines are observationally
   equivalent (the test suite holds them to it), so a measurement is a
   valid answer whichever engine computed it. *)
let run ?opts ?log ?profiler ?verify ?budget ?engine
    (b : Programs.Suite.benchmark) level machine =
  match opts with
  | Some _ ->
    measure ?opts ?log ?profiler ?verify ?budget ?engine b level machine
  | None -> (
    let key = memo_key b level machine in
    (* The lock never spans the measurement itself: a racing miss computes
       twice and both add the same (deterministic) value. *)
    match locked (fun () -> Hashtbl.find_opt memo key) with
    | Some t -> t
    | None ->
      let t = measure ?log ?profiler ?verify ?budget ?engine b level machine in
      locked (fun () -> Hashtbl.replace memo key t);
      t)

let run_adhoc ?opts ?log ?budget ?engine ~name ~source ?(input = "")
    ?expected_output level machine =
  (* Without an expectation, the run is its own reference: [output_ok] is
     forced true and callers compare outputs across levels instead. *)
  let b =
    {
      Programs.Suite.name;
      clazz = "Ad hoc";
      description = "ad-hoc measurement";
      source;
      input;
      expected_output = Option.value ~default:"" expected_output;
    }
  in
  run ?opts ?log ?budget ?engine ~verify:(expected_output <> None) b level
    machine

(* Parallel sweep over (benchmark, level, machine) tasks.  The memo
   table, mismatch/timeout lists and the caller's log stay on this
   domain: memo hits are resolved before dispatch, workers run
   [measure_raw] against a private in-memory log, and after the joins
   each task's events and counters are folded into [log] in task order —
   so results, telemetry and recorded failures are byte-for-byte those
   of the sequential sweep, whatever [jobs] is. *)
let run_many ?(log = Telemetry.Log.null) ?(profiler = Telemetry.Profiler.null)
    ?trace ?(metrics = Telemetry.Metrics.null) ?(jobs = 1) ?deadline ?retries
    ?chaos ?engine tasks =
  if jobs <= 1 && deadline = None && chaos = None && trace = None then
    List.map (fun (b, level, m) -> run ~log ~profiler ?engine b level m) tasks
  else begin
    let logging = Telemetry.Log.enabled log in
    let profiling = Telemetry.Profiler.enabled profiler in
    let pending = Hashtbl.create 16 in
    let to_run =
      List.filter
        (fun (b, level, m) ->
          let key = memo_key b level m in
          (not (locked (fun () -> Hashtbl.mem memo key)))
          && (not (Hashtbl.mem pending key))
          && (Hashtbl.add pending key (); true))
        tasks
    in
    let label (b, level, m) =
      Printf.sprintf "%s/%s/%s" b.Programs.Suite.name
        (Opt.Driver.level_name level)
        m.Ir.Machine.short
    in
    let outcomes, stats =
      Pool.supervise ~jobs ?deadline ?retries ?chaos ?trace ~label
        (fun budget (b, level, m) ->
          let wlog =
            if logging then Telemetry.Log.make Telemetry.Log.Memory
            else Telemetry.Log.null
          in
          let wprof =
            if profiling then Telemetry.Profiler.create ()
            else Telemetry.Profiler.null
          in
          ( measure_raw ~log:wlog ~profiler:wprof ~budget ?engine b level m,
            wlog,
            wprof ))
        to_run
    in
    last_pool_stats := stats;
    Pool.stats_to_metrics stats metrics;
    List.iter2
      (fun (b, level, machine) outcome ->
        match outcome with
        | Pool.Done (res, wlog, wprof) ->
          if logging then begin
            List.iter
              (fun ev -> Telemetry.Log.emit log (fun () -> ev))
              (Telemetry.Log.events wlog);
            (* Shard merge in task order: counters add (exactly what the
               old Counter.all fold did) and histograms fold bucket-wise,
               so the merged registry matches a sequential sweep's. *)
            Telemetry.Metrics.merge
              ~into:(Telemetry.Log.metrics log)
              (Telemetry.Log.metrics wlog)
          end;
          if profiling then Telemetry.Profiler.merge ~into:profiler wprof;
          record log b res;
          locked (fun () -> Hashtbl.replace memo (memo_key b level machine) res)
        | Pool.Crashed { exn; backtrace; attempts } ->
          let detail =
            match String.trim backtrace with
            | "" -> Printexc.to_string exn
            | bt -> Printexc.to_string exn ^ " | " ^ bt
          in
          record_task_failure log ~kind:"crashed" ~detail ~attempts
            ~elapsed:0. b level machine
        | Pool.Timed_out { elapsed; attempts } ->
          record_task_failure log ~kind:"timed-out"
            ~detail:(Printf.sprintf "deadline expired after %.2fs" elapsed)
            ~attempts ~elapsed b level machine)
      to_run outcomes;
    (* Failed tasks have no measurement: the sweep's result list simply
       omits them (callers consult [task_failures] for the rest). *)
    List.filter_map
      (fun (b, level, m) ->
        locked (fun () -> Hashtbl.find_opt memo (memo_key b level m)))
      tasks
  end

let run_suite ?log ?profiler ?trace ?metrics ?jobs ?deadline ?retries ?chaos
    ?engine level machine =
  run_many ?log ?profiler ?trace ?metrics ?jobs ?deadline ?retries ?chaos
    ?engine
    (List.map (fun b -> (b, level, machine)) Programs.Suite.all)

(* --- JSON rendering (the bench drivers' machine-readable output) --- *)

let cache_to_json (c : cache_stats) =
  Printf.sprintf
    "{\"config\":%s,\"size_kb\":%d,\"assoc\":%d,\"context_switches\":%b,\
     \"miss_ratio\":%.6f,\"fetch_cost\":%d}"
    (Telemetry.Log.json_string (Icache.config_name c.config))
    (c.config.Icache.size_bytes / 1024)
    c.config.Icache.assoc c.config.Icache.context_switches c.miss_ratio
    c.fetch_cost

let to_json m =
  Printf.sprintf
    "{\"program\":%s,\"level\":%s,\"machine\":%s,\"static_instrs\":%d,\
     \"static_ujumps\":%d,\"static_nops\":%d,\"code_bytes\":%d,\
     \"dyn_instrs\":%d,\
     \"dyn_ujumps\":%d,\"dyn_nops\":%d,\"dyn_transfers\":%d,\
     \"instrs_between_branches\":%.3f,\"output_ok\":%b,\"timed_out\":%b,\
     \"caches\":[%s]}"
    (Telemetry.Log.json_string m.program)
    (Telemetry.Log.json_string (Opt.Driver.level_name m.level))
    (Telemetry.Log.json_string m.machine.Ir.Machine.short)
    m.static_instrs m.static_ujumps m.static_nops m.code_bytes m.dyn_instrs
    m.dyn_ujumps
    m.dyn_nops m.dyn_transfers
    (instrs_between_branches m)
    m.output_ok m.timed_out
    (String.concat "," (List.map cache_to_json m.caches))
