(** Measurement harness: compile a benchmark at a given optimization level
    for a machine, execute it, and collect every statistic the paper's
    tables need (EASE-style counts plus the eight cache configurations). *)

type cache_stats = {
  config : Icache.config;
  miss_ratio : float;
  fetch_cost : int;
}

type t = {
  program : string;  (** benchmark name *)
  level : Opt.Driver.level;
  machine : Ir.Machine.t;
  static_instrs : int;
  static_ujumps : int;  (** unconditional jumps incl. indirect *)
  static_nops : int;
  code_bytes : int;
      (** total code bytes (alignment padding excluded); on CISC this
          reflects the branch-displacement plans *)
  dyn_instrs : int;
  dyn_ujumps : int;
  dyn_nops : int;
  dyn_transfers : int;  (** executed branch points *)
  output : string;  (** what the program printed *)
  output_ok : bool;
      (** output matched the gcc-verified expectation (always false on a
          timeout: the comparison is meaningless for a hung run) *)
  timed_out : bool;  (** the interpreter exhausted its step budget *)
  caches : cache_stats list;
}

(** Instructions executed between branch points (paper §5.2). *)
val instrs_between_branches : t -> float

(** Compile, assemble, run (with all eight paper cache configs attached)
    and measure one benchmark.  Results are memoized per
    (program, source digest, level, machine).

    With [log], the compilation is pass-spanned ({!Opt.Driver.optimize}),
    the run emits progress heartbeats, the [measure.*] telemetry counters
    (and the [measure.run_instrs] histogram) accumulate, and any output
    mismatch emits a [Warning] event (and is recorded for {!mismatches}).
    With [profiler], each optimization pass is charged to its
    (function x pass) row, and the run's interpreter fuel, interpreter
    wall time and cache-bank time land in a ["program/LEVEL/machine"]
    run row.  [verify] (default true) controls the output comparison;
    ad-hoc sources without a known-good output pass [~verify:false]
    through {!run_adhoc}.  [budget] is threaded into the interpreter
    (its fuel accounting is the poll point): a cancelled or expired
    budget raises {!Budget.Exhausted} out of the run rather than
    returning a silently different measurement.

    [engine] selects the execution engine (default
    {!Sim.Engine.Threaded}).  The engines are observationally
    equivalent, so the choice never changes a measurement — only how
    fast it is computed — and the memo is engine-agnostic.

    Thread-safety: the memo and the mismatch/timeout records are
    lock-guarded, so the daemon's resident workers may call the
    measurement entry points concurrently. *)
val run :
  ?opts:Opt.Driver.options ->
  ?log:Telemetry.Log.t ->
  ?profiler:Telemetry.Profiler.t ->
  ?verify:bool ->
  ?budget:Telemetry.Budget.t ->
  ?engine:Sim.Engine.kind ->
  Programs.Suite.benchmark ->
  Opt.Driver.level ->
  Ir.Machine.t ->
  t

(** The side-effect-free core of {!run}: compile, assemble, execute,
    bump the [measure.*] counters on [log] — but no memo and no
    mismatch/timeout recording.  This is what pool worker domains and
    campaign worker processes run against a private in-memory log whose
    counters are folded back (or stored) by the parent. *)
val measure_raw :
  ?opts:Opt.Driver.options ->
  ?log:Telemetry.Log.t ->
  ?profiler:Telemetry.Profiler.t ->
  ?verify:bool ->
  ?budget:Telemetry.Budget.t ->
  ?engine:Sim.Engine.kind ->
  Programs.Suite.benchmark ->
  Opt.Driver.level ->
  Ir.Machine.t ->
  t

(** Measure a source file that is not part of the bundled suite.  Without
    [expected_output] the run is unverified: [output_ok] is forced true and
    the caller compares outputs across levels instead. *)
val run_adhoc :
  ?opts:Opt.Driver.options ->
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  ?engine:Sim.Engine.kind ->
  name:string ->
  source:string ->
  ?input:string ->
  ?expected_output:string ->
  Opt.Driver.level ->
  Ir.Machine.t ->
  t

(** Clear the memo table (after changing options between sweeps). *)
val reset_cache : unit -> unit

(** [run] over an arbitrary task list, optionally on a supervised {!Pool}
    of [jobs] domains (default 1 = the plain sequential sweep).  Memoized
    results are resolved before dispatch; workers measure against
    private in-memory logs that are folded into [log] in task order
    after the joins, so results, counters, event stream and recorded
    mismatches/timeouts are identical to the sequential run at any
    [jobs].

    [deadline], [retries] and [chaos] select the supervised path (see
    {!Pool.supervise}): each task gets a per-attempt wall-clock budget
    threaded into the interpreter, crashes and hangs are retried on a
    deterministic backoff, and a task whose every attempt fails is
    dropped from the result list and recorded under {!task_failures} —
    sibling results are never lost.  Completed measurements are identical
    to the sequential, supervision-free sweep.

    [profiler] accumulates the per-pass and per-run attribution: workers
    profile into private shards that are folded back in task order, so
    the aggregate matches a sequential profiled sweep.  [trace] records
    every attempt as a worker-lane span and supervisor decisions as
    instants (see {!Pool.supervise}); a non-[None] [trace] routes even a
    [jobs = 1] sweep through the supervised pool so spans are recorded.
    [metrics] (typically a registry owned by the bench driver, distinct
    from [log]'s) receives the supervisor tallies as [pool.*] counters
    on the supervised path. *)
val run_many :
  ?log:Telemetry.Log.t ->
  ?profiler:Telemetry.Profiler.t ->
  ?trace:Telemetry.Trace.t ->
  ?metrics:Telemetry.Metrics.t ->
  ?jobs:int ->
  ?deadline:float ->
  ?retries:int ->
  ?chaos:Pool.chaos ->
  ?engine:Sim.Engine.kind ->
  (Programs.Suite.benchmark * Opt.Driver.level * Ir.Machine.t) list ->
  t list

(** [run] over every benchmark in the suite. *)
val run_suite :
  ?log:Telemetry.Log.t ->
  ?profiler:Telemetry.Profiler.t ->
  ?trace:Telemetry.Trace.t ->
  ?metrics:Telemetry.Metrics.t ->
  ?jobs:int ->
  ?deadline:float ->
  ?retries:int ->
  ?chaos:Pool.chaos ->
  ?engine:Sim.Engine.kind ->
  Opt.Driver.level ->
  Ir.Machine.t ->
  t list

(** Every (program, level, machine-short) whose output failed verification
    in this process, in discovery order — the bench drivers exit nonzero
    when this is non-empty. *)
val mismatches : unit -> (string * Opt.Driver.level * string) list

(** Every run that exhausted its step budget, in discovery order.  Kept
    apart from {!mismatches}: a hang is a distinct verdict, counted under
    the [measure.timeouts] telemetry counter. *)
val timeouts : unit -> (string * Opt.Driver.level * string) list

(** A supervised task that produced no measurement: every attempt crashed
    ([f_kind = "crashed"]) or hit the deadline ([f_kind = "timed-out"]). *)
type task_failure = {
  f_program : string;
  f_level : Opt.Driver.level;
  f_machine : string;
  f_kind : string;
  f_detail : string;  (** exception text or deadline description *)
  f_attempts : int;
  f_elapsed : float;  (** last attempt's elapsed seconds (0 for crashes) *)
}

(** Failed supervised tasks this process, in discovery order.  Empty
    whenever chaos is off and no deadline expired — the bench JSON only
    grows a ["failures"] array when this is non-empty. *)
val task_failures : unit -> task_failure list

(** One JSON object (no newline) for a ["failures"] array entry. *)
val failure_to_json : task_failure -> string

(** Supervisor statistics of the most recent supervised {!run_many}. *)
val pool_stats : unit -> Pool.stats

(** One JSON object (no newline) with every field of [t], cache stats
    included — the building block of the bench drivers' [BENCH_*.json]. *)
val to_json : t -> string
