(** Measurement harness: compile a benchmark at a given optimization level
    for a machine, execute it, and collect every statistic the paper's
    tables need (EASE-style counts plus the eight cache configurations). *)

type cache_stats = {
  config : Icache.config;
  miss_ratio : float;
  fetch_cost : int;
}

type t = {
  program : string;  (** benchmark name *)
  level : Opt.Driver.level;
  machine : Ir.Machine.t;
  static_instrs : int;
  static_ujumps : int;  (** unconditional jumps incl. indirect *)
  static_nops : int;
  dyn_instrs : int;
  dyn_ujumps : int;
  dyn_nops : int;
  dyn_transfers : int;  (** executed branch points *)
  output_ok : bool;  (** output matched the gcc-verified expectation *)
  caches : cache_stats list;
}

(** Instructions executed between branch points (paper §5.2). *)
val instrs_between_branches : t -> float

(** Compile, assemble, run (with all eight paper cache configs attached)
    and measure one benchmark.  Results are memoized per
    (program, level, machine). *)
val run :
  ?opts:Opt.Driver.options ->
  Programs.Suite.benchmark ->
  Opt.Driver.level ->
  Ir.Machine.t ->
  t

(** Clear the memo table (after changing options between sweeps). *)
val reset_cache : unit -> unit

(** [run] over every benchmark in the suite. *)
val run_suite : Opt.Driver.level -> Ir.Machine.t -> t list
