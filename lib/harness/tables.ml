let levels = [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ]
let machines = [ Ir.Machine.risc; Ir.Machine.cisc ]

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let pct a b = 100.0 *. float_of_int a /. float_of_int (max 1 b)

let change now base = 100.0 *. (float_of_int now -. float_of_int base) /. float_of_int (max 1 base)

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2: RTL listings before and after replication.          *)

let show_example ?(func = "main") ppf title source =
  let compile level =
    let prog =
      Opt.Driver.compile
        { Opt.Driver.default_options with level; allocate = true }
        Ir.Machine.cisc source
    in
    Option.get (Flow.Prog.find_func prog func)
  in
  Fmt.pf ppf "%s@.%s@." title (String.make (String.length title) '-');
  Fmt.pf ppf "@.C source:%s@." source;
  Fmt.pf ppf "@.without replication (SIMPLE):@.%a@." Flow.Func.pp
    (compile Opt.Driver.Simple);
  Fmt.pf ppf "@.with replication (JUMPS):@.%a@.@." Flow.Func.pp
    (compile Opt.Driver.Jumps)

let table1 ppf =
  show_example ppf "Table 1: exit condition in the middle of a loop"
    {|
int x[100];
int n = 10;

int main() {
  int i;
  i = 1;
  while (i <= n) {
    x[i - 1] = x[i];
    i = i + 1;
  }
  return x[0];
}
|}

let table2 ppf =
  show_example ~func:"compute" ppf "Table 2: if-then-else statement"
    {|
int n = 3;

int compute(int i) {
  if (i > 5)
    i = i / n;
  else
    i = i * n;
  return i;
}

int main() { return compute(7) + compute(3); }
|}

let table3 ppf =
  Fmt.pf ppf "Table 3: test set of C programs@.";
  Fmt.pf ppf "%-10s %-12s %s@." "Class" "Name" "Description";
  List.iter
    (fun (b : Programs.Suite.benchmark) ->
      Fmt.pf ppf "%-10s %-12s %s@." b.clazz b.name b.description)
    Programs.Suite.all

(* ------------------------------------------------------------------ *)

let table4 ppf =
  Fmt.pf ppf
    "Table 4: percent of instructions that are unconditional jumps@.@.";
  Fmt.pf ppf "%-22s | %-24s | %-24s@." ""
    "static (SIMPLE/LOOPS/JUMPS)" "dynamic (SIMPLE/LOOPS/JUMPS)";
  List.iter
    (fun machine ->
      let stats level =
        let ms = Measure.run_suite level machine in
        let st = List.map (fun (m : Measure.t) -> pct m.static_ujumps m.static_instrs) ms in
        let dy = List.map (fun (m : Measure.t) -> pct m.dyn_ujumps m.dyn_instrs) ms in
        (st, dy)
      in
      let all = List.map stats levels in
      let line f title =
        Fmt.pf ppf "%-22s |" (machine.Ir.Machine.name ^ " " ^ title);
        List.iter (fun (st, _) -> Fmt.pf ppf " %6.2f%%" (f st)) all;
        Fmt.pf ppf "  |";
        List.iter (fun (_, dy) -> Fmt.pf ppf " %6.2f%%" (f dy)) all;
        Fmt.pf ppf "@."
      in
      line mean "avg";
      line stddev "std")
    machines;
  Fmt.pf ppf "@."

let table5 ppf =
  Fmt.pf ppf "Table 5: number of static and dynamic instructions@.";
  List.iter
    (fun machine ->
      Fmt.pf ppf "@.%s@." machine.Ir.Machine.name;
      Fmt.pf ppf "%-12s %10s %9s %9s | %12s %9s %9s@." "program" "static"
        "LOOPS" "JUMPS" "dynamic" "LOOPS" "JUMPS";
      let totals = ref (0, 0) in
      List.iter
        (fun (b : Programs.Suite.benchmark) ->
          let m level = Measure.run b level machine in
          let s = m Opt.Driver.Simple in
          let l = m Opt.Driver.Loops in
          let j = m Opt.Driver.Jumps in
          totals := (fst !totals + s.static_instrs, snd !totals + s.dyn_instrs);
          Fmt.pf ppf "%-12s %10d %+8.2f%% %+8.2f%% | %12d %+8.2f%% %+8.2f%%@."
            b.name s.static_instrs
            (change l.static_instrs s.static_instrs)
            (change j.static_instrs s.static_instrs)
            s.dyn_instrs
            (change l.dyn_instrs s.dyn_instrs)
            (change j.dyn_instrs s.dyn_instrs))
        Programs.Suite.all;
      (* averages of the per-program percentage changes, as in the paper *)
      let avg f =
        mean
          (List.map
             (fun (b : Programs.Suite.benchmark) ->
               let s = Measure.run b Opt.Driver.Simple machine in
               f s (Measure.run b Opt.Driver.Loops machine)
                 (Measure.run b Opt.Driver.Jumps machine))
             Programs.Suite.all)
      in
      let avg_static_l =
        avg (fun s l _ -> change l.Measure.static_instrs s.Measure.static_instrs)
      and avg_static_j =
        avg (fun s _ j -> change j.Measure.static_instrs s.Measure.static_instrs)
      and avg_dyn_l =
        avg (fun s l _ -> change l.Measure.dyn_instrs s.Measure.dyn_instrs)
      and avg_dyn_j =
        avg (fun s _ j -> change j.Measure.dyn_instrs s.Measure.dyn_instrs)
      in
      Fmt.pf ppf "%-12s %10s %+8.2f%% %+8.2f%% | %12s %+8.2f%% %+8.2f%%@."
        "average" "" avg_static_l avg_static_j "" avg_dyn_l avg_dyn_j)
    machines;
  Fmt.pf ppf "@."

let table6 ppf =
  Fmt.pf ppf
    "Table 6: percent change in miss ratio and instruction fetch cost@.";
  let sizes = [ 1; 2; 4; 8 ] in
  let find_cache (m : Measure.t) ~kb ~cs =
    List.find
      (fun (c : Measure.cache_stats) ->
        c.config.size_bytes = kb * 1024 && c.config.context_switches = cs)
      m.caches
  in
  List.iter
    (fun what ->
      Fmt.pf ppf "@.%s:@."
        (match what with `Miss -> "cache miss ratio (percentage points)"
                       | `Cost -> "instruction fetch cost (percent)");
      Fmt.pf ppf "%-28s" "machine / ctx switches";
      List.iter (fun kb -> Fmt.pf ppf "  %5dKb LOOPS JUMPS " kb) sizes;
      Fmt.pf ppf "@.";
      List.iter
        (fun machine ->
          List.iter
            (fun cs ->
              Fmt.pf ppf "%-28s"
                (Printf.sprintf "%s / %s" machine.Ir.Machine.name
                   (if cs then "on" else "off"));
              List.iter
                (fun kb ->
                  let delta level =
                    mean
                      (List.map
                         (fun (b : Programs.Suite.benchmark) ->
                           let s = Measure.run b Opt.Driver.Simple machine in
                           let m = Measure.run b level machine in
                           let cs_s = find_cache s ~kb ~cs in
                           let cs_m = find_cache m ~kb ~cs in
                           match what with
                           | `Miss ->
                             100.0 *. (cs_m.miss_ratio -. cs_s.miss_ratio)
                           | `Cost -> change cs_m.fetch_cost cs_s.fetch_cost)
                         Programs.Suite.all)
                  in
                  Fmt.pf ppf "   %+6.2f %+6.2f    "
                    (delta Opt.Driver.Loops) (delta Opt.Driver.Jumps))
                sizes;
              Fmt.pf ppf "@.")
            [ true; false ])
        machines)
    [ `Miss; `Cost ];
  Fmt.pf ppf "@."

let block_stats ppf =
  Fmt.pf ppf "Section 5.2 statistics@.@.";
  Fmt.pf ppf "instructions between branches (dynamic):@.";
  List.iter
    (fun machine ->
      Fmt.pf ppf "  %-18s" machine.Ir.Machine.name;
      List.iter
        (fun level ->
          let ms = Measure.run_suite level machine in
          Fmt.pf ppf " %s=%5.2f" (Opt.Driver.level_name level)
            (mean (List.map Measure.instrs_between_branches ms)))
        levels;
      Fmt.pf ppf "@.")
    machines;
  let risc = Ir.Machine.risc in
  let nops level =
    List.fold_left
      (fun acc (m : Measure.t) -> acc + m.dyn_nops)
      0 (Measure.run_suite level risc)
  in
  let s = nops Opt.Driver.Simple and j = nops Opt.Driver.Jumps in
  Fmt.pf ppf
    "@.executed no-ops on the RISC: SIMPLE=%d JUMPS=%d (%.1f%% eliminated)@.@."
    s j
    (100.0 *. float_of_int (s - j) /. float_of_int (max 1 s))

(* ------------------------------------------------------------------ *)

let figures ppf =
  let open Ir in
  let open Flow in
  let mk shape =
    let lsupply = Label.Supply.create () in
    let vsupply = Reg.Supply.create () in
    let labels = Array.init (Array.length shape) (fun _ -> Label.Supply.fresh lsupply) in
    let blocks =
      Array.mapi
        (fun i term ->
          let pad = [ Rtl.Move (Lreg (Reg.Virt i), Imm i) ] in
          let tail =
            match term with
            | `Fall -> []
            | `Jmp t -> [ Rtl.Jump labels.(t) ]
            | `Br t -> [ Rtl.Cmp (Reg (Reg.Virt 99), Imm 0); Rtl.Branch (Rtl.Ne, labels.(t)) ]
            | `Ret -> [ Rtl.Leave; Rtl.Ret ]
          in
          { Func.label = labels.(i); instrs = pad @ tail })
        shape
    in
    blocks.(0) <- { (blocks.(0)) with instrs = Rtl.Enter 8 :: blocks.(0).instrs };
    Func.make ~name:"fig" ~blocks ~lsupply ~vsupply
  in
  let demo title f =
    Fmt.pf ppf "%s@.%s@." title (String.make (String.length title) '-');
    Fmt.pf ppf "before:@.%a@." Func.pp f;
    let f', changed = Replication.Jumps.run Replication.Jumps.default_config f in
    let g = Cfg.make f' in
    let red = Loops.is_reducible g (Dom.compute g) in
    Fmt.pf ppf "after JUMPS (changed=%b, reducible=%b):@.%a@.@." changed red
      Func.pp f'
  in
  demo "Figure 1: jump to a block entering a natural loop"
    (mk [| `Br 2; `Jmp 3; `Fall; `Br 5; `Jmp 3; `Ret |]);
  demo "Figure 2: replication initiated from inside a loop"
    (mk [| `Fall; `Fall; `Br 4; `Jmp 1; `Ret |])

(* ------------------------------------------------------------------ *)

let savings machine opts =
  (* Average change in static and dynamic counts vs SIMPLE over the suite
     under custom JUMPS options. *)
  let per (b : Programs.Suite.benchmark) =
    let s = Measure.run b Opt.Driver.Simple machine in
    let j = Measure.run ~opts b Opt.Driver.Jumps machine in
    ( change j.Measure.static_instrs s.Measure.static_instrs,
      change j.Measure.dyn_instrs s.Measure.dyn_instrs,
      pct j.Measure.dyn_ujumps j.Measure.dyn_instrs )
  in
  let rows = List.map per Programs.Suite.all in
  ( mean (List.map (fun (a, _, _) -> a) rows),
    mean (List.map (fun (_, b, _) -> b) rows),
    mean (List.map (fun (_, _, c) -> c) rows) )

let ablation_cap ppf =
  Fmt.pf ppf
    "Ablation (paper \xc2\xa76): bounded replication-sequence length@.@.";
  Fmt.pf ppf "%-10s %12s %12s %14s@." "cap(RTLs)" "static" "dynamic"
    "dyn ujumps %%";
  List.iter
    (fun cap ->
      let opts =
        { Opt.Driver.default_options with
          level = Opt.Driver.Jumps;
          max_rtls = cap;
        }
      in
      let st, dy, uj = savings Ir.Machine.risc opts in
      Fmt.pf ppf "%-10s %+11.2f%% %+11.2f%% %13.3f%%@."
        (match cap with None -> "unbounded" | Some c -> string_of_int c)
        st dy uj)
    [ Some 4; Some 8; Some 16; Some 32; None ];
  Fmt.pf ppf "@."

let ablation_heuristic ppf =
  Fmt.pf ppf "Ablation: step-2 candidate heuristic (RISC)@.@.";
  Fmt.pf ppf "%-16s %12s %12s %14s@." "heuristic" "static" "dynamic"
    "dyn ujumps %%";
  List.iter
    (fun (name, h) ->
      let opts =
        { Opt.Driver.default_options with
          level = Opt.Driver.Jumps;
          heuristic = h;
        }
      in
      let st, dy, uj = savings Ir.Machine.risc opts in
      Fmt.pf ppf "%-16s %+11.2f%% %+11.2f%% %13.3f%%@." name st dy uj)
    [
      ("shorter", Replication.Jumps.Shorter);
      ("favor-returns", Replication.Jumps.Favor_returns);
      ("favor-loops", Replication.Jumps.Favor_loops);
    ];
  Fmt.pf ppf "@."

let ablation_assoc ppf =
  Fmt.pf ppf
    "Ablation (extension): associativity vs the small-cache JUMPS penalty@.@.";
  Fmt.pf ppf
    "1Kb instruction cache, no context switches, RISC; average fetch-cost@.";
  Fmt.pf ppf "change vs SIMPLE over the suite:@.@.";
  Fmt.pf ppf "%-12s %12s %12s@." "assoc" "LOOPS" "JUMPS";
  let machine = Ir.Machine.risc in
  let fetch_cost assoc level (b : Programs.Suite.benchmark) =
    let prog =
      Opt.Driver.optimize
        { Opt.Driver.default_options with level }
        machine
        (Frontend.Codegen.compile_source b.source)
    in
    let asm = Sim.Asm.assemble machine prog in
    let cache =
      Icache.create
        { Icache.size_bytes = 1024; line_bytes = 16; context_switches = false; assoc }
    in
    let on_fetch ~addr ~size = Icache.access cache ~addr ~size in
    let _ = Sim.Interp.run ~input:b.input ~on_fetch asm prog in
    Icache.fetch_cost cache
  in
  List.iter
    (fun assoc ->
      let delta level =
        mean
          (List.map
             (fun b ->
               change (fetch_cost assoc level b)
                 (fetch_cost assoc Opt.Driver.Simple b))
             Programs.Suite.all)
      in
      Fmt.pf ppf "%-12s %+11.2f%% %+11.2f%%@."
        (if assoc = 1 then "direct" else Printf.sprintf "%d-way" assoc)
        (delta Opt.Driver.Loops) (delta Opt.Driver.Jumps))
    [ 1; 2; 4 ];
  Fmt.pf ppf "@."

let ablation_passes ppf =
  Fmt.pf ppf
    "Ablation (paper section 3.3): replication's dependence on cleanup passes@.@.";
  Fmt.pf ppf
    "Average dynamic change of JUMPS vs a SIMPLE build with the same passes@.";
  Fmt.pf ppf "disabled (RISC):@.@.";
  Fmt.pf ppf "%-22s %12s@." "configuration" "dynamic";
  let machine = Ir.Machine.risc in
  let dyn opts level (b : Programs.Suite.benchmark) =
    let prog =
      Opt.Driver.optimize
        { opts with Opt.Driver.level }
        machine
        (Frontend.Codegen.compile_source b.source)
    in
    let asm = Sim.Asm.assemble machine prog in
    (Sim.Interp.run ~input:b.input asm prog).counts.total
  in
  let row name opts =
    let delta =
      mean
        (List.map
           (fun b ->
             change (dyn opts Opt.Driver.Jumps b) (dyn opts Opt.Driver.Simple b))
           Programs.Suite.all)
    in
    Fmt.pf ppf "%-22s %+11.2f%%@." name delta
  in
  let base = Opt.Driver.default_options in
  row "all passes" base;
  row "without CSE" { base with enable_cse = false };
  row "without code motion" { base with enable_licm = false };
  row "without strength red." { base with enable_strength = false };
  row "without isel" { base with enable_isel = false };
  row "cleanups off"
    { base with
      enable_cse = false;
      enable_licm = false;
      enable_strength = false;
      enable_isel = false;
    };
  Fmt.pf ppf "@."
