(** Random C-subset program generator (lifted from the QCheck property in
    [test/test_random_c.ml] so the fuzz harness and the tests share one
    generator).

    Programs are ASTs, not strings, so the delta reducer can shrink at
    statement and expression granularity.  Generated programs terminate by
    construction: loops are always [for (ci = 0; ci < K; ci++)] over a
    dedicated counter the body never assigns, array indices are masked to
    bounds, divisors are forced non-zero, and shift amounts are masked to
    the word size. *)

type expr =
  | Int of int
  | Var of string  (** one of the four scalar locals [a]..[d] *)
  | Global of int  (** [g[k]] with a literal in-bounds index *)
  | Global_at of expr  (** [g[e & 7]] *)
  | Bin of string * expr * expr  (** arithmetic / bitwise / comparison / logical *)
  | Div of string * expr * expr  (** [e op ((e' & 7) + 1)] — guarded divisor *)
  | Shift of string * expr * expr  (** [e op (e' & 15)] — bounded amount *)
  | Cond of expr * expr * expr
  | Neg of expr

type lvalue = Lvar of string | Lglobal of int

type stmt =
  | Assign of lvalue * string * expr  (** [=], [+=], [-=], [*=] *)
  | If of expr * stmt list * stmt list
  | For of int * int * stmt list
      (** counter id, trip count; renders as [for (iN = 0; iN < K; iN++)] *)
  | Break
  | Continue
  | Switch of expr * stmt * stmt * stmt
      (** the fixed 4-case shape with one fall-through *)
  | Putchar of expr  (** [putchar(65 + (e & 15));] *)
  | Expr_stmt of expr

type program = { counters : int; body : stmt list }

(** Generate one program from the given PRNG state (deterministic per
    seed). *)
val generate : Random.State.t -> program

(** Render as compilable C-subset source. *)
val to_c : program -> string

(** Number of statements, at all nesting depths — the reducer's progress
    metric. *)
val size : program -> int

(** Strictly "smaller" candidate programs, lazily: statement deletion,
    compound-statement flattening (an [if] replaced by a branch, a loop by
    its body with [break]/[continue] stripped), trip-count reduction, and
    expression simplification (an operator replaced by one operand, any
    expression by a constant). *)
val shrink : program -> program Seq.t
