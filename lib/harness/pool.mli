(** Supervised fixed-size Domain worker pool (OCaml 5 [Domain] + [Atomic]).

    {!supervise} runs each work item as a sequence of attempts on worker
    domains while the calling domain supervises: it delivers results,
    detects dead workers and respawns them, enforces a per-task wall-clock
    deadline (cooperative cancellation through a {!Telemetry.Budget}
    first, abandon-and-reschedule on a fresh domain after a 2x grace
    period), and retries transient failures on a deterministic capped
    exponential backoff.  Every task ends in a structured {!outcome} — a
    crash or hang of one task never takes down the sweep or loses sibling
    results.

    Determinism: results land in input order, and chaos fault injection is
    a pure function of (seed, task index, attempt), so any task that
    completes produces the same value it would in a sequential run,
    whatever the job count.  Callers own full determinism by keeping
    shared mutable state out of the task function and folding the
    (index-ordered) results on the parent. *)

(** [JUMPREP_JOBS] from the environment.  1 when unset; an unparsable or
    non-positive value warns on stderr and falls back to 1; a value over
    4x [Domain.recommended_domain_count ()] warns and clamps to the
    recommended count. *)
val default_jobs : unit -> int

(** [clamp_jobs ~what n] — the shared worker-count clamp behind
    {!default_jobs}: a non-positive [n] warns (naming [what], default
    ["JUMPREP_JOBS"]) and falls back to 1; over 4x
    [Domain.recommended_domain_count ()] warns and clamps to the
    recommended count.  Campaign [--workers] counts go through the same
    clamp as the domain pool. *)
val clamp_jobs : ?what:string -> int -> int

(** [parse_jobs ~what s] — parse a job count string with the
    {!clamp_jobs} discipline; unparsable input warns and falls back
    to 1. *)
val parse_jobs : ?what:string -> string -> int

(** How one supervised task ended. *)
type 'a outcome =
  | Done of 'a
  | Crashed of { exn : exn; backtrace : string; attempts : int }
      (** every attempt raised; [exn]/[backtrace] are from the last *)
  | Timed_out of { elapsed : float; attempts : int }
      (** every attempt hit the deadline (or was cancelled) *)

(** ["done"], ["crashed"] or ["timed-out"]. *)
val outcome_kind : _ outcome -> string

(** What the supervisor saw over one {!supervise} call. *)
type stats = {
  injected_crashes : int;  (** chaos crashes injected *)
  injected_hangs : int;  (** chaos hangs injected *)
  injected_allocs : int;  (** chaos allocation storms injected *)
  retried : int;  (** failed attempts rescheduled *)
  respawned : int;  (** replacement workers spawned *)
  abandoned : int;  (** attempts overdue past the grace period *)
}

val no_stats : stats

(** Total chaos faults injected. *)
val injected : stats -> int

(** Publish the tallies into a {!Telemetry.Metrics} registry as the
    [pool.injected_crashes], [pool.injected_hangs], [pool.injected_allocs],
    [pool.retried], [pool.respawned] and [pool.abandoned] counters.
    No-op on a disabled registry.

    Determinism: the injected and retried counts derive from the pure
    chaos schedule, so they are identical at any [jobs] (asserted by the
    chaos-determinism test).  [respawned] is a scheduling artifact — the
    inline path never loses a domain, and a crash near the end of the
    queue may or may not warrant a replacement — so it is excluded from
    that contract. *)
val stats_to_metrics : stats -> Telemetry.Metrics.t -> unit

(** [backoff attempt] — seconds to wait before rescheduling after failed
    attempt number [attempt] (1-based): [base * 2^(attempt-1)] capped at
    [cap] (defaults 0.05s and 0.8s).  Pure; no randomized jitter, so
    retry schedules are reproducible. *)
val backoff : ?base:float -> ?cap:float -> int -> float

(** Deterministic fault injection: per attempt, a fault is drawn from a
    pure hash of ([chaos_seed], task index, attempt number) against the
    per-kind rates (each a probability in 0..1; at most one fault fires
    per attempt). *)
type chaos = {
  crash : float;  (** kill the worker domain mid-task *)
  hang : float;  (** busy-wait until cancelled/released/capped *)
  alloc : float;  (** allocate ~64MB of garbage, then run normally *)
  chaos_seed : int;
}

(** The exception an injected crash raises through the worker. *)
exception Chaos_crash

(** The pure fault draw behind chaos injection: the fault (if any) for
    attempt [attempt] of task index [task].  Exposed so campaign shards
    can drill worker-*process* kills from the same deterministic
    schedule the domain pool uses. *)
val chaos_fault :
  chaos -> task:int -> attempt:int -> [ `Crash | `Hang | `Alloc ] option

(** Parse a [--chaos] spec: comma-separated [crash], [hang], [alloc]
    (each optionally [:RATE], default 0.1) and [seed:N] (default 1).
    E.g. ["crash:0.2,hang:0.05,seed:7"]. *)
val chaos_of_string : string -> (chaos, string) result

(** [supervise ~jobs ~deadline ~retries ~backoff_base ~chaos f xs] runs
    [f budget x] for each [x] on [jobs] worker domains ([jobs <= 1] runs
    inline, spawning none) and returns the outcomes in input order plus
    supervisor statistics.

    Each attempt gets a fresh budget carrying [deadline] (seconds of
    wall-clock); [f] should poll it at safepoints (the interpreter does,
    via its fuel accounting).  An attempt that raises
    [Telemetry.Budget.Exhausted] counts as timed out; any other exception
    counts as crashed; either is retried up to [retries] times (default
    2) after a {!backoff} pause.  A worker domain that dies is detected,
    accounted, and replaced; an attempt still running at twice the
    deadline is abandoned to a fresh domain and its worker retired.  The
    final join is bounded: a worker wedged in non-cooperative code is
    left behind rather than wedging the caller.

    With [trace], every attempt is recorded as a complete span on its
    worker's lane (tid 1..jobs — a respawned replacement inherits its
    predecessor's lane, and the inline [jobs <= 1] path records on lane
    1), chaos faults as [chaos-crash]/[chaos-hang]/[chaos-alloc] instants
    on the same lane, and supervisor decisions ([task-retry],
    [worker-died], [worker-respawn], [deadline-cancel],
    [deadline-abandon]) as instants on lane 0.  [label] names each span
    after its work item (default ["task-N"]).  Tracing never alters
    scheduling, attempts, or outcomes. *)
val supervise :
  ?jobs:int ->
  ?deadline:float ->
  ?retries:int ->
  ?backoff_base:float ->
  ?chaos:chaos ->
  ?trace:Telemetry.Trace.t ->
  ?label:('a -> string) ->
  (Telemetry.Budget.t -> 'a -> 'b) ->
  'a list ->
  'b outcome list * stats

(** Persistent supervised worker pool — the {!supervise} fault-isolation
    discipline (resident worker domains, respawn on death, per-task
    deadlines with cooperative cancel then abandon at 2x, deterministic
    retries and chaos) for tasks that arrive one at a time, e.g. daemon
    requests.  The supervisor is not a loop here: {!Service.tick} is one
    non-blocking pass, driven from the caller's own event loop.

    Resident workers keep their domain-local decode caches warm across
    tasks, which is the daemon's cross-request cache sharing. *)
module Service : sig
  type t

  (** A submitted task's future outcome. *)
  type 'a handle

  (** Spawn [jobs] resident worker domains (default 1).  With [trace],
      attempts are recorded as spans on worker lanes 1..jobs and
      supervisor decisions (retry, death, respawn, deadline
      cancel/abandon) as instants on lane 0, as in {!supervise}. *)
  val create : ?jobs:int -> ?trace:Telemetry.Trace.t -> unit -> t

  (** Queue [f] for execution on a worker domain.  Each attempt gets a
      fresh cancellable budget carrying [deadline]; failures retry up to
      [retries] times (default 0) on the {!backoff} schedule; [chaos]
      draws per-attempt faults from the pure (seed, submission number,
      attempt) hash.  [label] names the task in traces.
      @raise Invalid_argument after {!shutdown}. *)
  val submit :
    t ->
    ?deadline:float ->
    ?retries:int ->
    ?chaos:chaos ->
    ?label:string ->
    (Telemetry.Budget.t -> 'a) ->
    'a handle

  (** The task's outcome, once every attempt has resolved. *)
  val poll : t -> 'a handle -> 'a outcome option

  (** One supervisor pass: deliver completed attempts, detect and respawn
      dead workers, enforce deadlines, release due retries.  Non-blocking;
      call it every few milliseconds. *)
  val tick : t -> unit

  (** Tasks submitted but not yet finalized (queued or running). *)
  val in_flight : t -> int

  (** Tasks submitted over the service's lifetime. *)
  val submitted : t -> int

  (** Worker slots currently leased to a running attempt ([S_busy]) —
      how much of the resident pool is occupied right now.  Bounded by
      the pool's [jobs]; [in_flight] additionally counts queued and
      backoff-delayed tasks. *)
  val lease_depth : t -> int

  val stats : t -> stats

  (** Bounded join: stop the workers and wait at most [deadline] seconds
      (default 2).  [true] when every worker joined — a worker wedged in
      non-cooperative code is left behind and reported as [false] rather
      than wedging the caller. *)
  val shutdown : ?deadline:float -> t -> bool
end

(** [map ~jobs f xs] is [List.map f xs] computed by [jobs] worker domains
    ([jobs = 1] spawns none): {!supervise} with no deadline, no retries
    and no chaos.  If any application raises, the raising task with the
    lowest index has its exception re-raised after the pool is joined. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
