(** Fixed-size Domain worker pool (OCaml 5 [Domain] + [Atomic]).

    Work items are claimed from one atomic counter and results land in an
    index-ordered array, so the output order is the input order no matter
    which domain ran what.  [f] must not touch shared mutable state; the
    sweep drivers keep memo tables and telemetry on the calling domain and
    merge per-worker logs deterministically afterwards. *)

(** [JUMPREP_JOBS] from the environment (1 when unset or unparsable). *)
val default_jobs : unit -> int

(** [map ~jobs f xs] is [List.map f xs] computed by [jobs] domains (the
    caller counts as one; [jobs = 1] spawns none).  If any application
    raises, the first exception (parent's first) is re-raised after every
    domain is joined. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
