(* Re-export so harness callers (and the CLI) can say [Harness.Budget]
   without reaching into the telemetry layer. *)
include Telemetry.Budget
