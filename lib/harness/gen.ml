type expr =
  | Int of int
  | Var of string
  | Global of int
  | Global_at of expr
  | Bin of string * expr * expr
  | Div of string * expr * expr
  | Shift of string * expr * expr
  | Cond of expr * expr * expr
  | Neg of expr

type lvalue = Lvar of string | Lglobal of int

type stmt =
  | Assign of lvalue * string * expr
  | If of expr * stmt list * stmt list
  | For of int * int * stmt list
  | Break
  | Continue
  | Switch of expr * stmt * stmt * stmt
  | Putchar of expr
  | Expr_stmt of expr

type program = { counters : int; body : stmt list }

(* --- generation --- *)

(* Inclusive [0, n] — same convention as QCheck's [int_bound]. *)
let int_bound n st = Random.State.int st (n + 1)
let int_range lo hi st = lo + Random.State.int st (hi - lo + 1)
let oneofl l st = List.nth l (Random.State.int st (List.length l))
let locals = [ "a"; "b"; "c"; "d" ]

type genv = {
  mutable depth : int;  (* loop-nesting depth *)
  mutable counters : int;  (* next loop-counter id *)
  mutable stmts_left : int;  (* global size budget *)
}

let rec expr env n st =
  if n <= 0 then atom env st
  else
    match int_bound 9 st with
    | 0 | 1 -> atom env st
    | 2 ->
      Bin
        ( oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] st,
          expr env (n - 1) st,
          expr env (n - 1) st )
    | 3 ->
      Div (oneofl [ "/"; "%" ] st, expr env (n - 1) st, expr env (n - 1) st)
    | 4 ->
      Shift (oneofl [ "<<"; ">>" ] st, expr env (n - 1) st, expr env (n - 1) st)
    | 5 ->
      Bin
        ( oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] st,
          expr env (n - 1) st,
          expr env (n - 1) st )
    | 6 ->
      Bin (oneofl [ "&&"; "||" ] st, expr env (n - 1) st, expr env (n - 1) st)
    | 7 -> Cond (expr env (n - 1) st, expr env (n - 1) st, expr env (n - 1) st)
    | 8 -> Neg (expr env (n - 1) st)
    | _ -> Global_at (expr env (n - 1) st)

and atom _env st =
  match int_bound 3 st with
  | 0 -> Int (int_range (-100) 100 st)
  | 1 | 2 -> Var (oneofl locals st)
  | _ -> Global (int_bound 7 st)

let lvalue st =
  match int_bound 2 st with
  | 0 | 1 -> Lvar (oneofl locals st)
  | _ -> Lglobal (int_bound 7 st)

let rec stmt env st =
  env.stmts_left <- env.stmts_left - 1;
  if env.stmts_left <= 0 then assign env st
  else
    match int_bound 11 st with
    | 0 | 1 | 2 | 3 -> assign env st
    | 4 -> If (expr env 2 st, block env st, block env st)
    | 5 -> If (expr env 2 st, block env st, [])
    | 6 | 7 ->
      if env.depth >= 2 then assign env st
      else begin
        let c = env.counters in
        env.counters <- env.counters + 1;
        env.depth <- env.depth + 1;
        let body = block env st in
        env.depth <- env.depth - 1;
        For (c, 1 + int_bound 6 st, body)
      end
    | 8 ->
      if env.depth = 0 then assign env st
      else oneofl [ Break; Continue ] st
    | 9 -> Switch (expr env 2 st, assign env st, assign env st, assign env st)
    | 10 -> Putchar (expr env 2 st)
    | _ -> Expr_stmt (expr env 2 st)

and assign env st = Assign (lvalue st, oneofl [ "="; "+="; "-="; "*=" ] st, expr env 2 st)
and block env st = List.init (1 + int_bound 3 st) (fun _ -> stmt env st)

let generate st =
  let env = { depth = 0; counters = 0; stmts_left = 40 } in
  let body = List.init 8 (fun _ -> stmt env st) in
  { counters = env.counters; body }

(* --- rendering --- *)

let rec expr_to_c = function
  | Int n -> string_of_int n
  | Var v -> v
  | Global k -> Printf.sprintf "g[%d]" k
  | Global_at e -> Printf.sprintf "g[%s & 7]" (expr_to_c e)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_to_c a) op (expr_to_c b)
  | Div (op, a, b) ->
    Printf.sprintf "(%s %s ((%s & 7) + 1))" (expr_to_c a) op (expr_to_c b)
  | Shift (op, a, b) ->
    Printf.sprintf "(%s %s (%s & 15))" (expr_to_c a) op (expr_to_c b)
  | Cond (c, t, f) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_c c) (expr_to_c t) (expr_to_c f)
  | Neg e -> Printf.sprintf "(- %s)" (expr_to_c e)

let lvalue_to_c = function
  | Lvar v -> v
  | Lglobal k -> Printf.sprintf "g[%d]" k

let rec stmt_to_c = function
  | Assign (lv, op, e) ->
    Printf.sprintf "%s %s %s;" (lvalue_to_c lv) op (expr_to_c e)
  | If (e, t, []) ->
    Printf.sprintf "if (%s) { %s }" (expr_to_c e) (stmts_to_c t)
  | If (e, t, f) ->
    Printf.sprintf "if (%s) { %s } else { %s }" (expr_to_c e) (stmts_to_c t)
      (stmts_to_c f)
  | For (c, bound, body) ->
    Printf.sprintf "for (i%d = 0; i%d < %d; i%d++) { %s }" c c bound c
      (stmts_to_c body)
  | Break -> "break;"
  | Continue -> "continue;"
  | Switch (e, s0, s1, sd) ->
    Printf.sprintf
      "switch (%s & 3) { case 0: %s break; case 1: %s /* fall */ case 2: \
       break; default: %s break; }"
      (expr_to_c e) (stmt_to_c s0) (stmt_to_c s1) (stmt_to_c sd)
  | Putchar e -> Printf.sprintf "putchar(65 + (%s & 15));" (expr_to_c e)
  | Expr_stmt e -> Printf.sprintf "%s;" (expr_to_c e)

and stmts_to_c stmts =
  match stmts with
  (* An empty block is valid C but noisy; keep a placeholder statement. *)
  | [] -> ";"
  | _ -> String.concat " " (List.map stmt_to_c stmts)

let to_c { counters; body } =
  let decls =
    if counters = 0 then ""
    else
      "int "
      ^ String.concat ", " (List.init counters (fun i -> Printf.sprintf "i%d" i))
      ^ ";"
  in
  Printf.sprintf
    {|
int g[8];

int main() {
  int a, b, c, d;
  %s
  a = 1; b = 2; c = 3; d = 4;
  %s
  putchar(65 + ((a + b + c + d + g[0] + g[1] + g[2] + g[3] + g[4] + g[5] + g[6] + g[7]) & 15));
  putchar(10);
  return 0;
}
|}
    decls
    (String.concat "\n  " (List.map stmt_to_c body))

let rec stmt_size = function
  | Assign _ | Break | Continue | Putchar _ | Expr_stmt _ -> 1
  | If (_, t, f) -> 1 + stmts_size t + stmts_size f
  | For (_, _, body) -> 1 + stmts_size body
  | Switch (_, s0, s1, sd) -> 1 + stmt_size s0 + stmt_size s1 + stmt_size sd

and stmts_size stmts = List.fold_left (fun n s -> n + stmt_size s) 0 stmts

let size p = stmts_size p.body

(* --- shrinking --- *)

let ( ++ ) = Seq.append

(* Candidate replacements for an expression, roughly decreasing in
   aggressiveness: a constant, one operand, then recursively shrunk
   operands. *)
let rec shrink_expr e : expr Seq.t =
  let const = match e with Int 0 -> Seq.empty | _ -> Seq.return (Int 0) in
  let sub =
    match e with
    | Int _ | Var _ | Global _ -> Seq.empty
    | Global_at i ->
      Seq.return (Global 0)
      ++ Seq.map (fun i' -> Global_at i') (shrink_expr i)
    | Bin (op, a, b) ->
      List.to_seq [ a; b ]
      ++ Seq.map (fun a' -> Bin (op, a', b)) (shrink_expr a)
      ++ Seq.map (fun b' -> Bin (op, a, b')) (shrink_expr b)
    | Div (op, a, b) ->
      Seq.return a
      ++ Seq.map (fun a' -> Div (op, a', b)) (shrink_expr a)
      ++ Seq.map (fun b' -> Div (op, a, b')) (shrink_expr b)
    | Shift (op, a, b) ->
      Seq.return a
      ++ Seq.map (fun a' -> Shift (op, a', b)) (shrink_expr a)
      ++ Seq.map (fun b' -> Shift (op, a, b')) (shrink_expr b)
    | Cond (c, t, f) ->
      List.to_seq [ t; f ]
      ++ Seq.map (fun c' -> Cond (c', t, f)) (shrink_expr c)
      ++ Seq.map (fun t' -> Cond (c, t', f)) (shrink_expr t)
      ++ Seq.map (fun f' -> Cond (c, t, f')) (shrink_expr f)
    | Neg a -> Seq.return a ++ Seq.map (fun a' -> Neg a') (shrink_expr a)
  in
  const ++ sub

(* Remove [break]/[continue] bound to the loop being flattened (they stay
   valid inside nested loops). *)
let rec strip_loop_exits stmts =
  List.filter_map
    (fun s ->
      match s with
      | Break | Continue -> None
      | If (e, t, f) -> Some (If (e, strip_loop_exits t, strip_loop_exits f))
      | Switch _ ->
        (* The fixed switch shape only holds assignments; nothing to strip. *)
        Some s
      | For _ | Assign _ | Putchar _ | Expr_stmt _ -> Some s)
    stmts

(* A statement shrinks to a *list* of statements: compound statements can
   be replaced by (part of) their bodies. *)
let rec shrink_stmt s : stmt list Seq.t =
  match s with
  | Assign (lv, op, e) ->
    Seq.map (fun e' -> [ Assign (lv, op, e') ]) (shrink_expr e)
  | If (e, t, f) ->
    Seq.return t ++ Seq.return f
    ++ (if f <> [] then Seq.return [ If (e, t, []) ] else Seq.empty)
    ++ Seq.map (fun e' -> [ If (e', t, f) ]) (shrink_expr e)
    ++ Seq.map (fun t' -> [ If (e, t', f) ]) (shrink_stmts t)
    ++ Seq.map (fun f' -> [ If (e, t, f') ]) (shrink_stmts f)
  | For (c, bound, body) ->
    Seq.return (strip_loop_exits body)
    ++ (if bound > 1 then Seq.return [ For (c, 1, body) ] else Seq.empty)
    ++ Seq.map (fun body' -> [ For (c, bound, body') ]) (shrink_stmts body)
  | Break | Continue -> Seq.empty (* deletion is handled by the list shrink *)
  | Switch (e, s0, s1, sd) ->
    List.to_seq [ [ s0 ]; [ s1 ]; [ sd ] ]
    ++ Seq.map (fun e' -> [ Switch (e', s0, s1, sd) ]) (shrink_expr e)
  | Putchar e -> Seq.map (fun e' -> [ Putchar e' ]) (shrink_expr e)
  | Expr_stmt e -> Seq.map (fun e' -> [ Expr_stmt e' ]) (shrink_expr e)

(* List shrink: drop each element, then splice each element's shrinks. *)
and shrink_stmts stmts : stmt list Seq.t =
  let rec go prefix = function
    | [] -> Seq.empty
    | s :: rest ->
      Seq.return (List.rev_append prefix rest)
      ++ Seq.map
           (fun repl -> List.rev_append prefix (repl @ rest))
           (shrink_stmt s)
      ++ fun () -> (go (s :: prefix) rest) ()
  in
  go [] stmts

let shrink p = Seq.map (fun body -> { p with body }) (shrink_stmts p.body)
