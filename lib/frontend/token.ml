type t =
  | Int_lit of int
  | Str_lit of string
  | Ident of string
  | Kw_int
  | Kw_char
  | Kw_void
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_for
  | Kw_do
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_goto
  | Kw_switch
  | Kw_case
  | Kw_default
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Colon
  | Question
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Percent_assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Bar
  | Caret
  | Tilde
  | Bang
  | Shl
  | Shr
  | Amp_amp
  | Bar_bar
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Plus_plus
  | Minus_minus
  | Eof

let to_string = function
  | Int_lit n -> string_of_int n
  | Str_lit s -> Printf.sprintf "%S" s
  | Ident s -> s
  | Kw_int -> "int"
  | Kw_char -> "char"
  | Kw_void -> "void"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_while -> "while"
  | Kw_for -> "for"
  | Kw_do -> "do"
  | Kw_return -> "return"
  | Kw_break -> "break"
  | Kw_continue -> "continue"
  | Kw_goto -> "goto"
  | Kw_switch -> "switch"
  | Kw_case -> "case"
  | Kw_default -> "default"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Colon -> ":"
  | Question -> "?"
  | Assign -> "="
  | Plus_assign -> "+="
  | Minus_assign -> "-="
  | Star_assign -> "*="
  | Slash_assign -> "/="
  | Percent_assign -> "%="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Bar -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | Shl -> "<<"
  | Shr -> ">>"
  | Amp_amp -> "&&"
  | Bar_bar -> "||"
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Plus_plus -> "++"
  | Minus_minus -> "--"
  | Eof -> "<eof>"

let equal (a : t) (b : t) = a = b
