(** Hand-written lexer for the C subset.

    Supports decimal and hexadecimal integer literals, character literals
    with the usual escapes (backslash n, t, r, 0, backslash, quotes),
    [/* ... */] and [// ...] comments. *)

exception Error of string * int  (** message, line number *)

(** Token paired with the 1-based line it starts on. *)
val tokenize : string -> (Token.t * int) list
