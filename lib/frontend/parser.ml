open Ast

exception Error of string * int

type state = { toks : (Token.t * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let error st msg = raise (Error (msg, line st))

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_ident st =
  match next st with
  | Token.Ident s -> s
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let accept st tok =
  if Token.equal (peek st) tok then begin
    advance st;
    true
  end
  else false

let is_type_start = function
  | Token.Kw_int | Token.Kw_char | Token.Kw_void -> true
  | _ -> false

(* type_spec := (int|char|void) '*'* *)
let parse_type_spec st =
  let base =
    match next st with
    | Token.Kw_int -> Tint
    | Token.Kw_char -> Tchar
    | Token.Kw_void -> Tvoid
    | t -> error st (Printf.sprintf "expected type, found %s" (Token.to_string t))
  in
  let rec stars ty = if accept st Token.Star then stars (Tptr ty) else ty in
  stars base

(* --- Expressions --- *)

let rec parse_comma_expr st =
  let e = parse_assignment st in
  if accept st Token.Comma then Comma (e, parse_comma_expr st) else e

and parse_assignment st =
  let lhs = parse_ternary st in
  let assign op =
    advance st;
    Assign (op, lhs, parse_assignment st)
  in
  match peek st with
  | Token.Assign -> assign None
  | Token.Plus_assign -> assign (Some Add)
  | Token.Minus_assign -> assign (Some Sub)
  | Token.Star_assign -> assign (Some Mul)
  | Token.Slash_assign -> assign (Some Div)
  | Token.Percent_assign -> assign (Some Rem)
  | _ -> lhs

and parse_ternary st =
  let c = parse_binary st 0 in
  if accept st Token.Question then begin
    let a = parse_comma_expr st in
    expect st Token.Colon;
    let b = parse_ternary st in
    Ternary (c, a, b)
  end
  else c

(* Binary operators by precedence level, loosest first. *)
and binary_levels =
  [|
    [ (Token.Bar_bar, Lor) ];
    [ (Token.Amp_amp, Land) ];
    [ (Token.Bar, Bor) ];
    [ (Token.Caret, Bxor) ];
    [ (Token.Amp, Band) ];
    [ (Token.Eq_eq, Eq); (Token.Bang_eq, Ne) ];
    [ (Token.Lt, Lt); (Token.Le, Le); (Token.Gt, Gt); (Token.Ge, Ge) ];
    [ (Token.Shl, Shl); (Token.Shr, Shr) ];
    [ (Token.Plus, Add); (Token.Minus, Sub) ];
    [ (Token.Star, Mul); (Token.Slash, Div); (Token.Percent, Rem) ];
  |]

and parse_binary st level =
  if level >= Array.length binary_levels then parse_unary st
  else begin
    let ops = binary_levels.(level) in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match List.assoc_opt (peek st) ops with
      | Some op ->
        advance st;
        lhs := Binary (op, !lhs, parse_binary st (level + 1))
      | None -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  match peek st with
  | Token.Minus ->
    advance st;
    (* Fold negative literals so they stay constants. *)
    (match parse_unary st with
    | Int_lit n -> Int_lit (-n)
    | e -> Unary (Neg, e))
  | Token.Bang ->
    advance st;
    Unary (Lnot, parse_unary st)
  | Token.Tilde ->
    advance st;
    Unary (Bnot, parse_unary st)
  | Token.Star ->
    advance st;
    Unary (Deref, parse_unary st)
  | Token.Amp ->
    advance st;
    Unary (Addr, parse_unary st)
  | Token.Plus_plus ->
    advance st;
    Incdec { pre = true; inc = true; lhs = parse_unary st }
  | Token.Minus_minus ->
    advance st;
    Incdec { pre = true; inc = false; lhs = parse_unary st }
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Lbracket ->
      advance st;
      let i = parse_comma_expr st in
      expect st Token.Rbracket;
      e := Index (!e, i)
    | Token.Plus_plus ->
      advance st;
      e := Incdec { pre = false; inc = true; lhs = !e }
    | Token.Minus_minus ->
      advance st;
      e := Incdec { pre = false; inc = false; lhs = !e }
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  match next st with
  | Token.Int_lit n -> Int_lit n
  | Token.Str_lit s -> Str_lit s
  | Token.Ident name ->
    if Token.equal (peek st) Token.Lparen then begin
      advance st;
      let args =
        if Token.equal (peek st) Token.Rparen then []
        else begin
          let rec go acc =
            let a = parse_assignment st in
            if accept st Token.Comma then go (a :: acc) else List.rev (a :: acc)
          in
          go []
        end
      in
      expect st Token.Rparen;
      Call (name, args)
    end
    else Var name
  | Token.Lparen ->
    let e = parse_comma_expr st in
    expect st Token.Rparen;
    e
  | t -> error st (Printf.sprintf "unexpected %s in expression" (Token.to_string t))

(* --- Statements --- *)

let parse_const_int st =
  match next st with
  | Token.Int_lit n -> n
  | Token.Minus -> (
    match next st with
    | Token.Int_lit n -> -n
    | t ->
      error st (Printf.sprintf "expected integer, found %s" (Token.to_string t)))
  | t ->
    error st (Printf.sprintf "expected integer, found %s" (Token.to_string t))

(* declarator := IDENT ('[' INT ']')* — array dimensions wrap inside-out. *)
let parse_declarator st base_ty =
  let name = expect_ident st in
  let rec dims () =
    if accept st Token.Lbracket then begin
      let n = parse_const_int st in
      expect st Token.Rbracket;
      let inner = dims () in
      Tarr (inner, n)
    end
    else base_ty
  in
  (name, dims ())

let rec parse_stmt st =
  match peek st with
  | Token.Semi ->
    advance st;
    Sempty
  | Token.Lbrace -> parse_block st
  | Token.Kw_if ->
    advance st;
    expect st Token.Lparen;
    let c = parse_comma_expr st in
    expect st Token.Rparen;
    let then_s = parse_stmt st in
    let else_s = if accept st Token.Kw_else then Some (parse_stmt st) else None in
    Sif (c, then_s, else_s)
  | Token.Kw_while ->
    advance st;
    expect st Token.Lparen;
    let c = parse_comma_expr st in
    expect st Token.Rparen;
    Swhile (c, parse_stmt st)
  | Token.Kw_do ->
    advance st;
    let body = parse_stmt st in
    expect st Token.Kw_while;
    expect st Token.Lparen;
    let c = parse_comma_expr st in
    expect st Token.Rparen;
    expect st Token.Semi;
    Sdo (body, c)
  | Token.Kw_for ->
    advance st;
    expect st Token.Lparen;
    let init =
      if Token.equal (peek st) Token.Semi then None
      else Some (parse_comma_expr st)
    in
    expect st Token.Semi;
    let cond =
      if Token.equal (peek st) Token.Semi then None
      else Some (parse_comma_expr st)
    in
    expect st Token.Semi;
    let update =
      if Token.equal (peek st) Token.Rparen then None
      else Some (parse_comma_expr st)
    in
    expect st Token.Rparen;
    Sfor (init, cond, update, parse_stmt st)
  | Token.Kw_return ->
    advance st;
    let e =
      if Token.equal (peek st) Token.Semi then None
      else Some (parse_comma_expr st)
    in
    expect st Token.Semi;
    Sreturn e
  | Token.Kw_break ->
    advance st;
    expect st Token.Semi;
    Sbreak
  | Token.Kw_continue ->
    advance st;
    expect st Token.Semi;
    Scontinue
  | Token.Kw_goto ->
    advance st;
    let l = expect_ident st in
    expect st Token.Semi;
    Sgoto l
  | Token.Kw_switch ->
    advance st;
    expect st Token.Lparen;
    let e = parse_comma_expr st in
    expect st Token.Rparen;
    expect st Token.Lbrace;
    let cases = parse_cases st in
    expect st Token.Rbrace;
    Sswitch (e, cases)
  | Token.Ident name when Token.equal (fst st.toks.(st.pos + 1)) Token.Colon ->
    advance st;
    advance st;
    Slabel (name, parse_stmt st)
  | _ ->
    let e = parse_comma_expr st in
    expect st Token.Semi;
    Sexpr e

and parse_cases st =
  let parse_case_labels () =
    let rec go acc saw_default =
      match peek st with
      | Token.Kw_case ->
        advance st;
        let v = parse_const_int st in
        expect st Token.Colon;
        go (v :: acc) saw_default
      | Token.Kw_default ->
        advance st;
        expect st Token.Colon;
        go acc true
      | _ -> (List.rev acc, saw_default)
    in
    go [] false
  in
  let rec go cases =
    match peek st with
    | Token.Rbrace -> List.rev cases
    | Token.Kw_case | Token.Kw_default ->
      let values, is_default = parse_case_labels () in
      let rec body acc =
        match peek st with
        | Token.Rbrace | Token.Kw_case | Token.Kw_default -> List.rev acc
        | _ -> body (parse_stmt st :: acc)
      in
      let stmts = body [] in
      (* A default arm is encoded by values = []. *)
      let arm =
        if is_default then { values = []; body = stmts }
        else { values; body = stmts }
      in
      if is_default && values <> [] then
        (* 'case k: default:' sharing a body — split into two arms with the
           same statements so both routes exist. *)
        go ({ values = []; body = stmts } :: { values; body = [] } :: cases)
      else go (arm :: cases)
    | _ -> error st "expected case, default or }"
  in
  go []

and parse_block st =
  expect st Token.Lbrace;
  let rec decls acc =
    if is_type_start (peek st) then begin
      let base = parse_type_spec st in
      let rec declarators acc =
        let name, ty = parse_declarator st base in
        let init =
          if accept st Token.Assign then Some (parse_assignment st) else None
        in
        let d = { dty = ty; dname = name; dinit = init } in
        if accept st Token.Comma then declarators (d :: acc)
        else begin
          expect st Token.Semi;
          d :: acc
        end
      in
      decls (declarators acc)
    end
    else List.rev acc
  in
  let ds = decls [] in
  let rec stmts acc =
    if Token.equal (peek st) Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  Sblock (ds, stmts [])

(* --- Top level --- *)

let parse_global_init st gty =
  if not (accept st Token.Assign) then None
  else
    match peek st with
    | Token.Str_lit s ->
      advance st;
      Some (Gstring s)
    | Token.Lbrace ->
      advance st;
      let rec items acc =
        let v = parse_const_int st in
        if accept st Token.Comma then
          if Token.equal (peek st) Token.Rbrace then List.rev (v :: acc)
          else items (v :: acc)
        else List.rev (v :: acc)
      in
      let vs = if Token.equal (peek st) Token.Rbrace then [] else items [] in
      expect st Token.Rbrace;
      Some (Glist vs)
    | _ ->
      ignore gty;
      Some (Gscalar (parse_const_int st))

let parse_params st =
  expect st Token.Lparen;
  if accept st Token.Rparen then []
  else if Token.equal (peek st) Token.Kw_void
          && Token.equal (fst st.toks.(st.pos + 1)) Token.Rparen then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec go acc =
      let base = parse_type_spec st in
      let name = expect_ident st in
      (* Array parameters decay to pointers: 'char s[]' or 'int m[10]'. *)
      let rec decay ty =
        if accept st Token.Lbracket then begin
          (match peek st with
          | Token.Int_lit _ -> ignore (parse_const_int st)
          | _ -> ());
          expect st Token.Rbracket;
          Tptr (decay ty)
        end
        else ty
      in
      let ty = decay base in
      let acc = (ty, name) :: acc in
      if accept st Token.Comma then go acc
      else begin
        expect st Token.Rparen;
        List.rev acc
      end
    in
    go []
  end

let parse_item st =
  let base = parse_type_spec st in
  let name = expect_ident st in
  if Token.equal (peek st) Token.Lparen then begin
    let params = parse_params st in
    let body = parse_block st in
    Ifunc { fname = name; fret = base; fparams = params; fbody = body }
  end
  else begin
    (* Global declaration(s): array dims, optional initializer, and
       possibly more comma-separated declarators of the same base type. *)
    let rec dims () =
      if accept st Token.Lbracket then begin
        let n =
          if Token.equal (peek st) Token.Rbracket then -1
          else parse_const_int st
        in
        expect st Token.Rbracket;
        let inner = dims () in
        Tarr (inner, n)
      end
      else base
    in
    let finish_one name =
      let ty = dims () in
      let init = parse_global_init st ty in
      (* 'char s[] = "..."' and 'int t[] = {...}' get their size from the
         initializer. *)
      let ty =
        match ty, init with
        | Tarr (el, -1), Some (Gstring s) when el = Tchar ->
          Tarr (Tchar, String.length s + 1)
        | Tarr (el, -1), Some (Glist vs) -> Tarr (el, List.length vs)
        | t, _ -> t
      in
      { gty = ty; gname = name; ginit = init }
    in
    let rec more acc =
      if accept st Token.Comma then begin
        let name = expect_ident st in
        more (finish_one name :: acc)
      end
      else begin
        expect st Token.Semi;
        List.rev acc
      end
    in
    Iglobals (more [ finish_one name ])
  end

let make_state src =
  { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

let parse_program src =
  let st = make_state src in
  let rec go acc =
    if Token.equal (peek st) Token.Eof then List.rev acc
    else go (parse_item st :: acc)
  in
  go []

let parse_expr src =
  let st = make_state src in
  let e = parse_comma_expr st in
  expect st Token.Eof;
  e
