(** Recursive-descent parser for the C subset. *)

exception Error of string * int  (** message, line number *)

(** Parse a full translation unit.  @raise Error on syntax errors. *)
val parse_program : string -> Ast.program

(** Parse a single expression, for tests. *)
val parse_expr : string -> Ast.expr
