(** Naive RTL code generation from the C-subset AST.

    The generator reproduces the jump shapes of VPCC's intermediate code,
    which the replication experiment depends on:
    - [while] loops: test at the top, unconditional jump at the bottom;
    - [for] loops: unconditional jump over the body to the test placed at
      the loop's end;
    - [if]/[else]: unconditional jump over the else part;
    - a single shared epilogue block that every [return] jumps to.

    Scalar locals that are never address-taken live in virtual registers;
    arrays and address-taken scalars live in the stack frame; globals live
    in the data segment and are re-loaded at each use.  Code is generic
    three-address RTL; {!val:Legalize} in the optimizer shapes it for a
    specific machine. *)

exception Error of string

(** Compile a parsed translation unit.  @raise Error on semantic errors
    (unknown identifiers, arity mismatches, non-lvalue assignments, too many
    arguments, duplicate definitions, undefined goto labels). *)
val compile_program : Ast.program -> Flow.Prog.t

(** Convenience: parse and compile.  @raise Parser.Error / Error. *)
val compile_source : string -> Flow.Prog.t
