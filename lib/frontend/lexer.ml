exception Error of string * int

let keywords =
  [
    "int", Token.Kw_int;
    "char", Token.Kw_char;
    "void", Token.Kw_void;
    "if", Token.Kw_if;
    "else", Token.Kw_else;
    "while", Token.Kw_while;
    "for", Token.Kw_for;
    "do", Token.Kw_do;
    "return", Token.Kw_return;
    "break", Token.Kw_break;
    "continue", Token.Kw_continue;
    "goto", Token.Kw_goto;
    "switch", Token.Kw_switch;
    "case", Token.Kw_case;
    "default", Token.Kw_default;
  ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let toks = ref [] in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with Some '\n' -> incr line | Some _ | None -> ());
    incr pos
  in
  let emit (t : Token.t) = toks := (t, !line) :: !toks in
  let error msg = raise (Error (msg, !line)) in
  let escape c =
    match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '\'' -> '\''
    | '"' -> '"'
    | _ -> error (Printf.sprintf "unknown escape \\%c" c)
  in
  let read_char_escape () =
    match cur () with
    | Some '\\' ->
      advance ();
      (match cur () with
      | Some c ->
        advance ();
        escape c
      | None -> error "unterminated escape")
    | Some c ->
      advance ();
      c
    | None -> error "unterminated literal"
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let rec skip () =
        match cur () with
        | None -> error "unterminated comment"
        | Some '*' when peek 1 = Some '/' ->
          advance ();
          advance ()
        | Some _ ->
          advance ();
          skip ()
      in
      skip ()
    end
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_digit c then begin
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance ();
        advance ();
        let start = !pos in
        while (match cur () with Some c -> is_hex c | None -> false) do
          advance ()
        done;
        if !pos = start then error "empty hex literal";
        emit (Int_lit (int_of_string ("0x" ^ String.sub src start (!pos - start))))
      end
      else begin
        let start = !pos in
        while (match cur () with Some c -> is_digit c | None -> false) do
          advance ()
        done;
        emit (Int_lit (int_of_string (String.sub src start (!pos - start))))
      end
    end
    else if is_ident_start c then begin
      let start = !pos in
      while (match cur () with Some c -> is_ident_char c | None -> false) do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      match List.assoc_opt word keywords with
      | Some kw -> emit kw
      | None -> emit (Ident word)
    end
    else if c = '\'' then begin
      advance ();
      let v = read_char_escape () in
      (match cur () with
      | Some '\'' -> advance ()
      | Some _ | None -> error "unterminated character literal");
      emit (Int_lit (Char.code v))
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let rec go () =
        match cur () with
        | None -> error "unterminated string literal"
        | Some '"' -> advance ()
        | Some _ ->
          Buffer.add_char buf (read_char_escape ());
          go ()
      in
      go ();
      emit (Str_lit (Buffer.contents buf))
    end
    else begin
      let two tok =
        advance ();
        advance ();
        emit tok
      in
      let one tok =
        advance ();
        emit tok
      in
      match c, peek 1 with
      | '+', Some '+' -> two Plus_plus
      | '+', Some '=' -> two Plus_assign
      | '-', Some '-' -> two Minus_minus
      | '-', Some '=' -> two Minus_assign
      | '*', Some '=' -> two Star_assign
      | '/', Some '=' -> two Slash_assign
      | '%', Some '=' -> two Percent_assign
      | '&', Some '&' -> two Amp_amp
      | '|', Some '|' -> two Bar_bar
      | '=', Some '=' -> two Eq_eq
      | '!', Some '=' -> two Bang_eq
      | '<', Some '<' -> two Shl
      | '>', Some '>' -> two Shr
      | '<', Some '=' -> two Le
      | '>', Some '=' -> two Ge
      | '+', _ -> one Plus
      | '-', _ -> one Minus
      | '*', _ -> one Star
      | '/', _ -> one Slash
      | '%', _ -> one Percent
      | '&', _ -> one Amp
      | '|', _ -> one Bar
      | '^', _ -> one Caret
      | '~', _ -> one Tilde
      | '!', _ -> one Bang
      | '<', _ -> one Lt
      | '>', _ -> one Gt
      | '=', _ -> one Assign
      | '(', _ -> one Lparen
      | ')', _ -> one Rparen
      | '{', _ -> one Lbrace
      | '}', _ -> one Rbrace
      | '[', _ -> one Lbracket
      | ']', _ -> one Rbracket
      | ';', _ -> one Semi
      | ',', _ -> one Comma
      | ':', _ -> one Colon
      | '?', _ -> one Question
      | _ -> error (Printf.sprintf "unexpected character %C" c)
    end
  done;
  emit Eof;
  List.rev !toks
