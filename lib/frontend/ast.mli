(** Abstract syntax of the C subset.

    The subset covers what the paper's 14 test programs need: [int]/[char]
    scalars, one- and two-dimensional arrays, single-level pointers with
    arithmetic, the full statement repertoire that produces unconditional
    jumps (loops, [if]/[else], [break], [continue], [goto], [switch]), and
    function definitions with register-passed arguments. *)

type ty =
  | Tint
  | Tchar
  | Tvoid  (** function returns only *)
  | Tptr of ty
  | Tarr of ty * int

val sizeof : ty -> int

(** Binary operators; [Land]/[Lor] short-circuit. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Land
  | Lor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Lnot | Bnot | Deref | Addr

(** Compound-assignment carriers: [None] is plain [=]. *)
type assop = binop option

type expr =
  | Int_lit of int
  | Str_lit of string
  | Var of string
  | Binary of binop * expr * expr
  | Unary of unop * expr
  | Index of expr * expr  (** [a\[i\]] *)
  | Call of string * expr list
  | Assign of assop * expr * expr
  | Incdec of { pre : bool; inc : bool; lhs : expr }
  | Ternary of expr * expr * expr
  | Comma of expr * expr

type decl = { dty : ty; dname : string; dinit : expr option }

type stmt =
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of expr option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sgoto of string
  | Slabel of string * stmt
  | Sswitch of expr * switch_case list
  | Sblock of decl list * stmt list
  | Sempty

(** [values = []] marks the [default] arm.  Arms fall through in order, as
    in C; an arm without [break] continues into the next. *)
and switch_case = { values : int list; body : stmt list }

type global_init =
  | Gscalar of int
  | Glist of int list  (** array initializer *)
  | Gstring of string  (** char-array or char-pointer initializer *)

type global = { gty : ty; gname : string; ginit : global_init option }

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt;
}

type item = Iglobals of global list | Ifunc of func

type program = item list
