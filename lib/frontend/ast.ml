type ty = Tint | Tchar | Tvoid | Tptr of ty | Tarr of ty * int

let rec sizeof = function
  | Tint -> 4
  | Tchar -> 1
  | Tvoid -> 0
  | Tptr _ -> 4
  | Tarr (t, n) -> sizeof t * n

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Land
  | Lor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Lnot | Bnot | Deref | Addr

type assop = binop option

type expr =
  | Int_lit of int
  | Str_lit of string
  | Var of string
  | Binary of binop * expr * expr
  | Unary of unop * expr
  | Index of expr * expr
  | Call of string * expr list
  | Assign of assop * expr * expr
  | Incdec of { pre : bool; inc : bool; lhs : expr }
  | Ternary of expr * expr * expr
  | Comma of expr * expr

type decl = { dty : ty; dname : string; dinit : expr option }

type stmt =
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of expr option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sgoto of string
  | Slabel of string * stmt
  | Sswitch of expr * switch_case list
  | Sblock of decl list * stmt list
  | Sempty

and switch_case = { values : int list; body : stmt list }

type global_init = Gscalar of int | Glist of int list | Gstring of string

type global = { gty : ty; gname : string; ginit : global_init option }

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt;
}

type item = Iglobals of global list | Ifunc of func

type program = item list
