(** Lexical tokens of the C subset. *)

type t =
  | Int_lit of int
  | Str_lit of string
  | Ident of string
  (* keywords *)
  | Kw_int
  | Kw_char
  | Kw_void
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_for
  | Kw_do
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_goto
  | Kw_switch
  | Kw_case
  | Kw_default
  (* punctuation and operators *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Colon
  | Question
  | Assign  (** [=] *)
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Percent_assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp  (** [&] *)
  | Bar  (** [|] *)
  | Caret
  | Tilde
  | Bang
  | Shl
  | Shr
  | Amp_amp
  | Bar_bar
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Plus_plus
  | Minus_minus
  | Eof

val to_string : t -> string
val equal : t -> t -> bool
