open Ir
open Ast

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* --- Types --- *)

(* Array-typed expressions decay to pointers when used as values. *)
let decay = function Tarr (el, _) -> Tptr el | t -> t

let width_of = function
  | Tchar -> Rtl.Byte
  | Tint | Tptr _ -> Rtl.Word
  | (Tvoid | Tarr _) as t ->
    error "cannot load/store a value of type %s"
      (match t with Tvoid -> "void" | _ -> "array")

type storage =
  | In_reg of Reg.t  (** scalar local in a virtual register *)
  | On_stack of int  (** fp-relative byte offset (negative) *)
  | In_data  (** global; addressed as [Abs name] *)

type var = { vty : ty; vstorage : storage }

type fsig = { ret : ty; params : ty list }

type env = {
  globals : (string, ty) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable scopes : (string * var) list list;
}

let builtins =
  [
    "getchar", { ret = Tint; params = [] };
    "putchar", { ret = Tint; params = [ Tint ] };
    "exit", { ret = Tvoid; params = [ Tint ] };
  ]

let lookup_var env name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some v -> Some v
      | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some v -> Some v
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some ty -> Some { vty = ty; vstorage = In_data }
    | None -> None)

let find_var env name =
  match lookup_var env name with
  | Some v -> v
  | None -> error "unknown variable %s" name

let find_func env name =
  match Hashtbl.find_opt env.funcs name with
  | Some s -> Some s
  | None -> List.assoc_opt name builtins

(* --- Expression typing --- *)

let rec type_of env e =
  match e with
  | Int_lit _ -> Tint
  | Str_lit _ -> Tptr Tchar
  | Var x -> (find_var env x).vty
  | Binary (op, a, b) -> (
    match op with
    | Land | Lor | Eq | Ne | Lt | Le | Gt | Ge -> Tint
    | Add | Sub -> (
      let ta = decay (type_of env a) and tb = decay (type_of env b) in
      match ta, tb with
      | Tptr _, Tptr _ -> Tint (* pointer difference *)
      | Tptr _, _ -> ta
      | _, Tptr _ -> tb
      | _, _ -> Tint)
    | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr -> Tint)
  | Unary (op, a) -> (
    match op with
    | Neg | Lnot | Bnot -> Tint
    | Deref -> (
      match decay (type_of env a) with
      | Tptr t -> t
      | _ -> error "dereference of a non-pointer")
    | Addr -> Tptr (type_of env a))
  | Index (a, _) -> (
    match decay (type_of env a) with
    | Tptr t -> t
    | _ -> error "indexing a non-pointer")
  | Call (f, _) -> (
    match find_func env f with
    | Some s -> s.ret
    | None -> error "call to unknown function %s" f)
  | Assign (_, lhs, _) -> type_of env lhs
  | Incdec { lhs; _ } -> type_of env lhs
  | Ternary (_, a, _) -> decay (type_of env a)
  | Comma (_, b) -> type_of env b

(* --- Address-taken analysis --- *)

let rec addr_taken_expr acc e =
  match e with
  | Unary (Addr, Var x) -> x :: acc
  | Unary (Addr, inner) -> addr_taken_expr acc inner
  | Int_lit _ | Str_lit _ | Var _ -> acc
  | Binary (_, a, b) | Comma (a, b) -> addr_taken_expr (addr_taken_expr acc a) b
  | Unary (_, a) -> addr_taken_expr acc a
  | Index (a, b) -> addr_taken_expr (addr_taken_expr acc a) b
  | Call (_, args) -> List.fold_left addr_taken_expr acc args
  | Assign (_, a, b) -> addr_taken_expr (addr_taken_expr acc a) b
  | Incdec { lhs; _ } -> addr_taken_expr acc lhs
  | Ternary (a, b, c) ->
    addr_taken_expr (addr_taken_expr (addr_taken_expr acc a) b) c

let rec addr_taken_stmt acc s =
  match s with
  | Sexpr e -> addr_taken_expr acc e
  | Sif (c, a, b) ->
    let acc = addr_taken_expr acc c in
    let acc = addr_taken_stmt acc a in
    (match b with Some b -> addr_taken_stmt acc b | None -> acc)
  | Swhile (c, b) | Sdo (b, c) -> addr_taken_stmt (addr_taken_expr acc c) b
  | Sfor (i, c, u, b) ->
    let f acc = function Some e -> addr_taken_expr acc e | None -> acc in
    addr_taken_stmt (f (f (f acc i) c) u) b
  | Sreturn (Some e) -> addr_taken_expr acc e
  | Sreturn None | Sbreak | Scontinue | Sgoto _ | Sempty -> acc
  | Slabel (_, s) -> addr_taken_stmt acc s
  | Sswitch (e, cases) ->
    List.fold_left
      (fun acc c -> List.fold_left addr_taken_stmt acc c.body)
      (addr_taken_expr acc e) cases
  | Sblock (decls, stmts) ->
    let acc =
      List.fold_left
        (fun acc d ->
          match d.dinit with Some e -> addr_taken_expr acc e | None -> acc)
        acc decls
    in
    List.fold_left addr_taken_stmt acc stmts

(* --- Per-function generation state --- *)

type item = Ilabel of Label.t | Iinstr of Rtl.instr

type fstate = {
  env : env;
  lsupply : Label.Supply.t;
  vsupply : Reg.Supply.t;
  buf : item list ref;  (** reversed *)
  mutable frame_off : int;  (** next free fp-relative offset (negative) *)
  epilogue : Label.t;
  addr_taken : string list;
  user_labels : (string, Label.t) Hashtbl.t;
  defined_labels : (string, unit) Hashtbl.t;
  mutable strings : (string * string) list;  (** symbol, contents *)
  mutable string_count : int ref;
  fname : string;
}

let emit fs i = fs.buf := Iinstr i :: !(fs.buf)
let emit_label fs l = fs.buf := Ilabel l :: !(fs.buf)
let fresh_label fs = Label.Supply.fresh fs.lsupply
let fresh_reg fs = Reg.Supply.fresh fs.vsupply

let alloc_stack fs bytes =
  let aligned = (bytes + 3) land lnot 3 in
  fs.frame_off <- fs.frame_off - aligned;
  fs.frame_off

let intern_string fs s =
  match List.find_opt (fun (_, c) -> String.equal c s) fs.strings with
  | Some (sym, _) -> sym
  | None ->
    let sym = Printf.sprintf "Lstr%d" !(fs.string_count) in
    incr fs.string_count;
    fs.strings <- (sym, s) :: fs.strings;
    sym

let user_label fs name =
  match Hashtbl.find_opt fs.user_labels name with
  | Some l -> l
  | None ->
    let l = fresh_label fs in
    Hashtbl.add fs.user_labels name l;
    l

(* --- Expression code generation --- *)

(* Elements of pointer arithmetic scale by the pointee size. *)
let scale_of env e =
  match decay (type_of env e) with
  | Tptr t -> max 1 (sizeof t)
  | _ -> 1

let ast_binop_to_rtl = function
  | Add -> Rtl.Add
  | Sub -> Rtl.Sub
  | Mul -> Rtl.Mul
  | Div -> Rtl.Div
  | Rem -> Rtl.Rem
  | Band -> Rtl.And
  | Bor -> Rtl.Or
  | Bxor -> Rtl.Xor
  | Shl -> Rtl.Shl
  | Shr -> Rtl.Shr
  | Land | Lor | Eq | Ne | Lt | Le | Gt | Ge ->
    error "comparison used as arithmetic operator"

let ast_cmp_to_cond = function
  | Eq -> Rtl.Eq
  | Ne -> Rtl.Ne
  | Lt -> Rtl.Lt
  | Le -> Rtl.Le
  | Gt -> Rtl.Gt
  | Ge -> Rtl.Ge
  | _ -> error "not a comparison"

let is_cmp = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | _ -> false

(* The value of an expression as a Reg or Imm operand. *)
let rec rvalue fs e : Rtl.operand =
  let env = fs.env in
  match e with
  | Int_lit n -> Imm (Arith.norm n)
  | Str_lit s ->
    let sym = intern_string fs s in
    let r = fresh_reg fs in
    emit fs (Rtl.Lea (r, Abs (sym, 0)));
    Reg r
  | Var x -> (
    let v = find_var env x in
    match v.vstorage, v.vty with
    | In_reg r, _ -> Reg r
    | On_stack off, Tarr _ ->
      let r = fresh_reg fs in
      emit fs (Rtl.Lea (r, Based (Conv.fp, off)));
      Reg r
    | On_stack off, ty ->
      let r = fresh_reg fs in
      emit fs (Rtl.Move (Lreg r, Mem (width_of ty, Based (Conv.fp, off))));
      Reg r
    | In_data, Tarr _ ->
      let r = fresh_reg fs in
      emit fs (Rtl.Lea (r, Abs (x, 0)));
      Reg r
    | In_data, ty ->
      let r = fresh_reg fs in
      emit fs (Rtl.Move (Lreg r, Mem (width_of ty, Abs (x, 0))));
      Reg r)
  | Binary ((Land | Lor), _, _) | Unary (Lnot, _) ->
    (* Boolean value: materialize 0/1 through branches. *)
    let r = fresh_reg fs in
    let l_false = fresh_label fs in
    let l_end = fresh_label fs in
    branch_false fs e l_false;
    emit fs (Rtl.Move (Lreg r, Imm 1));
    emit fs (Rtl.Jump l_end);
    emit_label fs l_false;
    emit fs (Rtl.Move (Lreg r, Imm 0));
    emit_label fs l_end;
    Reg r
  | Binary (op, a, b) when is_cmp op ->
    let r = fresh_reg fs in
    let l_false = fresh_label fs in
    let l_end = fresh_label fs in
    branch_false fs (Binary (op, a, b)) l_false;
    emit fs (Rtl.Move (Lreg r, Imm 1));
    emit fs (Rtl.Jump l_end);
    emit_label fs l_false;
    emit fs (Rtl.Move (Lreg r, Imm 0));
    emit_label fs l_end;
    Reg r
  | Binary (op, a, b) -> (
    let sa = scale_of env a and sb = scale_of env b in
    match op with
    | Add | Sub when sa > 1 && sb = 1 ->
      let va = rvalue fs a in
      let vb = scaled fs b sa in
      binop fs (ast_binop_to_rtl op) va vb
    | Add when sb > 1 && sa = 1 ->
      let va = scaled fs a sb in
      let vb = rvalue fs b in
      binop fs Rtl.Add va vb
    | Sub when sa > 1 && sb > 1 ->
      (* Pointer difference: byte difference divided by the element size. *)
      let va = rvalue fs a in
      let vb = rvalue fs b in
      let diff = binop fs Rtl.Sub va vb in
      binop fs Rtl.Div diff (Imm sa)
    | _ ->
      let va = rvalue fs a in
      let vb = rvalue fs b in
      binop fs (ast_binop_to_rtl op) va vb)
  | Unary (Neg, a) ->
    let v = rvalue fs a in
    let r = fresh_reg fs in
    emit fs (Rtl.Unop (Neg, Lreg r, v));
    Reg r
  | Unary (Bnot, a) ->
    let v = rvalue fs a in
    let r = fresh_reg fs in
    emit fs (Rtl.Unop (Not, Lreg r, v));
    Reg r
  | Unary (Deref, _) | Index (_, _) -> (
    let ty = type_of env e in
    match ty with
    | Tarr _ ->
      (* An array element that is itself an array decays to its address. *)
      let addr = lvalue_addr fs e in
      addr_to_reg fs addr
    | _ ->
      let addr = lvalue_addr fs e in
      let r = fresh_reg fs in
      emit fs (Rtl.Move (Lreg r, Mem (width_of ty, addr)));
      Reg r)
  | Unary (Addr, a) ->
    let addr = lvalue_addr fs a in
    addr_to_reg fs addr
  | Call (f, args) -> do_call fs f args
  | Assign (None, lhs, rhs) ->
    let v = rvalue fs rhs in
    (* Stabilize the value in case storing clobbers it (it cannot, but a
       register operand keeps the code shape uniform). *)
    let loc = lvalue fs lhs in
    emit fs (Rtl.Move (loc, v));
    v
  | Assign (Some op, lhs, rhs) ->
    let loc = lvalue fs lhs in
    let old = load_loc fs loc in
    let v = rvalue fs rhs in
    let v =
      (* += on pointers scales like +. *)
      let s = scale_of env lhs in
      if s > 1 && (op = Add || op = Sub) then
        match v with
        | Imm n -> Rtl.Imm (n * s)
        | _ -> binop fs Rtl.Mul v (Imm s)
      else v
    in
    let nv = binop fs (ast_binop_to_rtl op) old v in
    emit fs (Rtl.Move (loc, nv));
    nv
  | Incdec { pre; inc; lhs } ->
    let s = scale_of env lhs in
    let delta = if inc then s else -s in
    let loc = lvalue fs lhs in
    let old = load_loc fs loc in
    let nv = binop fs Rtl.Add old (Imm delta) in
    emit fs (Rtl.Move (loc, nv));
    if pre then nv
    else begin
      (* The old value was already stabilized in a register by load_loc
         unless the location is a register, in which case copy first. *)
      old
    end
  | Ternary (c, a, b) ->
    let r = fresh_reg fs in
    let l_else = fresh_label fs in
    let l_end = fresh_label fs in
    branch_false fs c l_else;
    let va = rvalue fs a in
    emit fs (Rtl.Move (Lreg r, va));
    emit fs (Rtl.Jump l_end);
    emit_label fs l_else;
    let vb = rvalue fs b in
    emit fs (Rtl.Move (Lreg r, vb));
    emit_label fs l_end;
    Reg r
  | Comma (a, b) ->
    ignore (rvalue fs a);
    rvalue fs b

and binop fs op a b : Rtl.operand =
  match a, b with
  | Rtl.Imm x, Rtl.Imm y -> (
    (* Fold now; division by a zero constant must survive to run time. *)
    match Rtl.eval_binop op x y with
    | v -> Imm v
    | exception Division_by_zero ->
      let r = fresh_reg fs in
      let ra = fresh_reg fs in
      emit fs (Rtl.Move (Lreg ra, Imm x));
      emit fs (Rtl.Binop (op, Lreg r, Reg ra, Imm y));
      Reg r)
  | _ ->
    let r = fresh_reg fs in
    emit fs (Rtl.Binop (op, Lreg r, a, b));
    Reg r

and scaled fs e s =
  if s = 1 then rvalue fs e
  else
    match rvalue fs e with
    | Imm n -> Rtl.Imm (n * s)
    | v -> binop fs Rtl.Mul v (Imm s)

and addr_to_reg fs addr : Rtl.operand =
  match addr with
  | Rtl.Based (r, 0) -> Reg r
  | addr ->
    let r = fresh_reg fs in
    emit fs (Rtl.Lea (r, addr));
    Reg r

(* The address denoted by an lvalue expression. *)
and lvalue_addr fs e : Rtl.addr =
  let env = fs.env in
  match e with
  | Var x -> (
    let v = find_var env x in
    match v.vstorage with
    | On_stack off -> Based (Conv.fp, off)
    | In_data -> Abs (x, 0)
    | In_reg _ -> error "variable %s has no address (in register)" x)
  | Unary (Deref, p) -> (
    match rvalue fs p with
    | Reg r -> Based (r, 0)
    | Imm n ->
      (* Dereference of a constant address (e.g. a null pointer): keep the
         constant so the fault, if any, happens at run time. *)
      let r = fresh_reg fs in
      emit fs (Rtl.Move (Lreg r, Imm n));
      Based (r, 0)
    | Mem _ -> assert false)
  | Index (a, i) -> (
    let elem_size =
      match decay (type_of env a) with
      | Tptr t -> max 1 (sizeof t)
      | _ -> error "indexing a non-pointer"
    in
    let base = rvalue fs a in
    match i with
    | Int_lit k -> (
      match base with
      | Reg r -> Based (r, k * elem_size)
      | Imm n -> Based (Conv.fp, n + (k * elem_size))
      | Mem _ -> assert false)
    | _ -> (
      let iv = scaled fs i elem_size in
      match base, iv with
      | Reg rb, Reg ri ->
        let r = fresh_reg fs in
        emit fs (Rtl.Binop (Add, Lreg r, Reg rb, Reg ri));
        Based (r, 0)
      | Reg rb, Imm n -> Based (rb, n)
      | base, iv -> (
        let r = fresh_reg fs in
        emit fs (Rtl.Binop (Add, Lreg r, base, iv));
        Based (r, 0))))
  | Str_lit _ | Int_lit _ | Binary _ | Unary _ | Call _ | Assign _ | Incdec _
  | Ternary _ | Comma _ ->
    error "expression is not an lvalue"

(* The location denoted by an lvalue: register or memory. *)
and lvalue fs e : Rtl.loc =
  let env = fs.env in
  match e with
  | Var x -> (
    let v = find_var env x in
    match v.vstorage with
    | In_reg r -> Lreg r
    | On_stack _ | In_data -> Lmem (width_of v.vty, lvalue_addr fs e))
  | Unary (Deref, _) | Index _ ->
    Lmem (width_of (type_of env e), lvalue_addr fs e)
  | Str_lit _ | Int_lit _ | Binary _ | Unary _ | Call _ | Assign _ | Incdec _
  | Ternary _ | Comma _ ->
    error "expression is not an lvalue"

(* Load the current value of a location, stabilizing it in a register. *)
and load_loc fs loc : Rtl.operand =
  match loc with
  | Rtl.Lreg r ->
    let t = fresh_reg fs in
    emit fs (Rtl.Move (Lreg t, Reg r));
    Reg t
  | Rtl.Lmem (w, a) ->
    let t = fresh_reg fs in
    emit fs (Rtl.Move (Lreg t, Mem (w, a)));
    Reg t

and do_call fs f args : Rtl.operand =
  let env = fs.env in
  (match find_func env f with
  | Some s ->
    if List.length s.params <> List.length args then
      error "%s expects %d arguments, got %d" f (List.length s.params)
        (List.length args)
  | None -> error "call to unknown function %s" f);
  if List.length args > Conv.max_args then
    error "%s: more than %d arguments are not supported" f Conv.max_args;
  (* Evaluate all arguments into temporaries first so a nested call cannot
     clobber already-loaded argument registers. *)
  let vals =
    List.map
      (fun a ->
        match rvalue fs a with
        | Imm _ as v -> v
        | Reg _ as v -> v
        | Mem _ -> assert false)
      args
  in
  List.iteri
    (fun i v -> emit fs (Rtl.Move (Lreg (Conv.arg_reg i), v)))
    vals;
  emit fs (Rtl.Call (f, List.length args));
  let r = fresh_reg fs in
  emit fs (Rtl.Move (Lreg r, Reg Conv.rv));
  Reg r

(* Branch to [target] when [e] is false; fall through when true. *)
and branch_false fs e target =
  match e with
  | Int_lit 0 -> emit fs (Rtl.Jump target)
  | Int_lit _ -> ()
  | Unary (Lnot, a) -> branch_true fs a target
  | Binary (Land, a, b) ->
    branch_false fs a target;
    branch_false fs b target
  | Binary (Lor, a, b) ->
    let l_true = fresh_label fs in
    branch_true fs a l_true;
    branch_false fs b target;
    emit_label fs l_true
  | Binary (op, a, b) when is_cmp op ->
    compare_and_branch fs (ast_cmp_to_cond op) a b ~negate:true target
  | Comma (a, b) ->
    ignore (rvalue fs a);
    branch_false fs b target
  | _ ->
    let v = rvalue fs e in
    compare_operand_zero fs v ~cond:Rtl.Eq target

(* Branch to [target] when [e] is true; fall through when false. *)
and branch_true fs e target =
  match e with
  | Int_lit 0 -> ()
  | Int_lit _ -> emit fs (Rtl.Jump target)
  | Unary (Lnot, a) -> branch_false fs a target
  | Binary (Lor, a, b) ->
    branch_true fs a target;
    branch_true fs b target
  | Binary (Land, a, b) ->
    let l_false = fresh_label fs in
    branch_false fs a l_false;
    branch_true fs b target;
    emit_label fs l_false
  | Binary (op, a, b) when is_cmp op ->
    compare_and_branch fs (ast_cmp_to_cond op) a b ~negate:false target
  | Comma (a, b) ->
    ignore (rvalue fs a);
    branch_true fs b target
  | _ ->
    let v = rvalue fs e in
    compare_operand_zero fs v ~cond:Rtl.Ne target

and compare_and_branch fs cond a b ~negate target =
  let va = rvalue fs a in
  let vb = rvalue fs b in
  match va, vb with
  | Imm x, Imm y ->
    let c = if negate then Rtl.negate_cond cond else cond in
    if Rtl.eval_cond c x y then emit fs (Rtl.Jump target)
  | _ ->
    emit fs (Rtl.Cmp (va, vb));
    let c = if negate then Rtl.negate_cond cond else cond in
    emit fs (Rtl.Branch (c, target))

and compare_operand_zero fs v ~cond target =
  match v with
  | Imm x ->
    if Rtl.eval_cond cond x 0 then emit fs (Rtl.Jump target)
  | _ ->
    emit fs (Rtl.Cmp (v, Imm 0));
    emit fs (Rtl.Branch (cond, target))

(* --- Statement code generation --- *)

(* [cont_lbl] is [None] for switch contexts: [break] targets the switch but
   [continue] falls through to the enclosing loop. *)
type loop_ctx = { break_lbl : Label.t; cont_lbl : Label.t option }

let rec gen_stmt fs (loops : loop_ctx list) s =
  match s with
  | Sempty -> ()
  | Sexpr e -> ignore (rvalue fs e)
  | Sblock (decls, stmts) ->
    fs.env.scopes <- [] :: fs.env.scopes;
    List.iter (gen_decl fs) decls;
    List.iter (gen_stmt fs loops) stmts;
    fs.env.scopes <- List.tl fs.env.scopes
  | Sif (c, then_s, else_s) -> (
    match else_s with
    | None ->
      let l_end = fresh_label fs in
      branch_false fs c l_end;
      gen_stmt fs loops then_s;
      emit_label fs l_end
    | Some else_s ->
      (* VPCC shape: jump over the else part. *)
      let l_else = fresh_label fs in
      let l_end = fresh_label fs in
      branch_false fs c l_else;
      gen_stmt fs loops then_s;
      emit fs (Rtl.Jump l_end);
      emit_label fs l_else;
      gen_stmt fs loops else_s;
      emit_label fs l_end)
  | Swhile (c, body) ->
    (* VPCC shape: test at the top, unconditional jump at the bottom. *)
    let l_test = fresh_label fs in
    let l_exit = fresh_label fs in
    emit_label fs l_test;
    branch_false fs c l_exit;
    gen_stmt fs ({ break_lbl = l_exit; cont_lbl = Some l_test } :: loops) body;
    emit fs (Rtl.Jump l_test);
    emit_label fs l_exit
  | Sdo (body, c) ->
    let l_body = fresh_label fs in
    let l_cont = fresh_label fs in
    let l_exit = fresh_label fs in
    emit_label fs l_body;
    gen_stmt fs ({ break_lbl = l_exit; cont_lbl = Some l_cont } :: loops) body;
    emit_label fs l_cont;
    branch_true fs c l_body;
    emit_label fs l_exit
  | Sfor (init, cond, update, body) ->
    (* VPCC shape: jump over the body to the test at the loop's end. *)
    let l_body = fresh_label fs in
    let l_cont = fresh_label fs in
    let l_test = fresh_label fs in
    let l_exit = fresh_label fs in
    (match init with Some e -> ignore (rvalue fs e) | None -> ());
    emit fs (Rtl.Jump l_test);
    emit_label fs l_body;
    gen_stmt fs ({ break_lbl = l_exit; cont_lbl = Some l_cont } :: loops) body;
    emit_label fs l_cont;
    (match update with Some e -> ignore (rvalue fs e) | None -> ());
    emit_label fs l_test;
    (match cond with
    | Some c -> branch_true fs c l_body
    | None -> emit fs (Rtl.Jump l_body));
    emit_label fs l_exit
  | Sreturn e ->
    (match e with
    | Some e ->
      let v = rvalue fs e in
      emit fs (Rtl.Move (Lreg Conv.rv, v))
    | None -> ());
    emit fs (Rtl.Jump fs.epilogue)
  | Sbreak -> (
    match loops with
    | { break_lbl; _ } :: _ -> emit fs (Rtl.Jump break_lbl)
    | [] -> error "%s: break outside a loop or switch" fs.fname)
  | Scontinue -> (
    match List.find_opt (fun c -> Option.is_some c.cont_lbl) loops with
    | Some { cont_lbl = Some l; _ } -> emit fs (Rtl.Jump l)
    | Some { cont_lbl = None; _ } | None ->
      error "%s: continue outside a loop" fs.fname)
  | Sgoto name -> emit fs (Rtl.Jump (user_label fs name))
  | Slabel (name, s) ->
    let l = user_label fs name in
    if Hashtbl.mem fs.defined_labels name then
      error "%s: duplicate label %s" fs.fname name;
    Hashtbl.replace fs.defined_labels name ();
    emit_label fs l;
    gen_stmt fs loops s
  | Sswitch (e, cases) -> gen_switch fs loops e cases

and gen_switch fs loops e cases =
  let l_exit = fresh_label fs in
  let v = rvalue fs e in
  let arm_labels = List.map (fun _ -> fresh_label fs) cases in
  let labeled = List.combine cases arm_labels in
  let values =
    List.concat_map (fun (c, l) -> List.map (fun v -> (v, l)) c.values) labeled
  in
  let default_lbl =
    match List.find_opt (fun (c, _) -> c.values = []) labeled with
    | Some (_, l) -> l
    | None -> l_exit
  in
  (* Dispatch: a jump table when the value range is dense, otherwise a
     comparison chain. *)
  let dense =
    match values with
    | [] -> false
    | _ ->
      let vs = List.map fst values in
      let lo = List.fold_left min (List.hd vs) vs in
      let hi = List.fold_left max (List.hd vs) vs in
      List.length vs >= 4 && hi - lo + 1 <= 3 * List.length vs
  in
  (if dense then begin
     let vs = List.map fst values in
     let lo = List.fold_left min (List.hd vs) vs in
     let hi = List.fold_left max (List.hd vs) vs in
     let idx =
       match binop fs Rtl.Sub v (Imm lo) with
       | Reg r -> r
       | Imm n ->
         let r = fresh_reg fs in
         emit fs (Rtl.Move (Lreg r, Imm n));
         r
       | Mem _ -> assert false
     in
     emit fs (Rtl.Cmp (Reg idx, Imm 0));
     emit fs (Rtl.Branch (Lt, default_lbl));
     emit fs (Rtl.Cmp (Reg idx, Imm (hi - lo)));
     emit fs (Rtl.Branch (Gt, default_lbl));
     let table =
       Array.init (hi - lo + 1) (fun i ->
           match List.assoc_opt (lo + i) values with
           | Some l -> l
           | None -> default_lbl)
     in
     emit fs (Rtl.Ijump (idx, table))
   end
   else begin
     List.iter
       (fun (value, l) ->
         match v with
         | Rtl.Imm x ->
           if x = value then emit fs (Rtl.Jump l)
         | _ ->
           emit fs (Rtl.Cmp (v, Imm value));
           emit fs (Rtl.Branch (Eq, l)))
       values;
     emit fs (Rtl.Jump default_lbl)
   end);
  (* Arm bodies in order; fallthrough between arms, as in C. *)
  let switch_ctx = { break_lbl = l_exit; cont_lbl = None } in
  List.iter
    (fun (c, l) ->
      emit_label fs l;
      List.iter (gen_stmt fs (switch_ctx :: loops)) c.body)
    labeled;
  emit_label fs l_exit

and gen_decl fs d =
  if Option.is_some (lookup_scope_head fs d.dname) then
    error "duplicate declaration of %s" d.dname;
  let storage =
    match d.dty with
    | Tarr _ -> On_stack (alloc_stack fs (sizeof d.dty))
    | Tvoid -> error "void variable %s" d.dname
    | Tint | Tchar | Tptr _ ->
      if List.mem d.dname fs.addr_taken then
        On_stack (alloc_stack fs (max 4 (sizeof d.dty)))
      else In_reg (fresh_reg fs)
  in
  let v = { vty = d.dty; vstorage = storage } in
  (match fs.env.scopes with
  | scope :: rest -> fs.env.scopes <- ((d.dname, v) :: scope) :: rest
  | [] -> assert false);
  match d.dinit with
  | Some e -> ignore (rvalue fs (Assign (None, Var d.dname, e)))
  | None -> ()

and lookup_scope_head fs name =
  match fs.env.scopes with
  | scope :: _ -> List.assoc_opt name scope
  | [] -> None

(* --- Items to blocks --- *)

let items_to_blocks fs entry_items =
  let items = entry_items @ List.rev !(fs.buf) in
  let blocks = ref [] in
  let cur_label = ref None in
  let cur_instrs = ref [] in
  let flush next_label =
    (match !cur_label with
    | Some l -> blocks := { Flow.Func.label = l; instrs = List.rev !cur_instrs } :: !blocks
    | None -> assert (!cur_instrs = []));
    cur_label := next_label;
    cur_instrs := []
  in
  List.iter
    (fun item ->
      match item with
      | Ilabel l -> flush (Some l)
      | Iinstr i ->
        (match !cur_label with
        | None -> cur_label := Some (fresh_label fs)
        | Some _ -> ());
        cur_instrs := i :: !cur_instrs;
        if Rtl.is_transfer i then flush None)
    items;
  flush None;
  Array.of_list (List.rev !blocks)

(* --- Functions and programs --- *)

(* The label supply is shared by every function of the program, so labels
   are globally unique — a program-level invariant the verifier checks
   (Flow.Check.program_errors) and replication preserves by drawing fresh
   labels from the same supply. *)
let gen_func env lsupply (f : Ast.func) =
  let vsupply = Reg.Supply.create () in
  let addr_taken = addr_taken_stmt [] f.fbody in
  let fs =
    {
      env;
      lsupply;
      vsupply;
      buf = ref [];
      frame_off = -4;
      (* fp-4 holds the caller's frame pointer (written by Enter) *)
      epilogue = Label.Supply.fresh lsupply;
      addr_taken;
      user_labels = Hashtbl.create 8;
      defined_labels = Hashtbl.create 8;
      strings = [];
      string_count = ref 0;
      fname = f.fname;
    }
  in
  if List.length f.fparams > Conv.max_args then
    error "%s: more than %d parameters are not supported" f.fname
      Conv.max_args;
  (* Parameters become ordinary variables. *)
  env.scopes <- [ [] ];
  let param_moves =
    List.mapi
      (fun i (ty, name) ->
        let storage =
          if List.mem name addr_taken then
            On_stack (alloc_stack fs (max 4 (sizeof ty)))
          else In_reg (fresh_reg fs)
        in
        let v = { vty = ty; vstorage = storage } in
        (match fs.env.scopes with
        | scope :: rest -> fs.env.scopes <- ((name, v) :: scope) :: rest
        | [] -> assert false);
        match storage with
        | In_reg r -> Rtl.Move (Lreg r, Reg (Conv.arg_reg i))
        | On_stack off ->
          Rtl.Move
            (Lmem (width_of ty, Based (Conv.fp, off)), Reg (Conv.arg_reg i))
        | In_data -> assert false)
      f.fparams
  in
  gen_stmt fs [] f.fbody;
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem fs.defined_labels name) then
        error "%s: goto to undefined label %s" f.fname name)
    fs.user_labels;
  (* Body falls into the shared epilogue. *)
  emit_label fs fs.epilogue;
  emit fs Rtl.Leave;
  emit fs Rtl.Ret;
  env.scopes <- [];
  let frame_size =
    let used = -fs.frame_off in
    (used + 7) land lnot 7
  in
  let entry_label = Label.Supply.fresh lsupply in
  let entry_items =
    Ilabel entry_label
    :: Iinstr (Rtl.Enter frame_size)
    :: List.map (fun i -> Iinstr i) param_moves
  in
  let blocks = items_to_blocks fs entry_items in
  let func =
    Flow.Func.make ~name:f.fname ~blocks ~lsupply ~vsupply
  in
  (func, fs.strings)

let string_data sym contents =
  {
    Flow.Prog.dname = sym;
    dsize = String.length contents + 1;
    dinit = [ Bytes contents; Zeros 1 ];
  }

let global_data (g : Ast.global) =
  let size = max 1 (sizeof g.gty) in
  match g.ginit, g.gty with
  | None, _ -> { Flow.Prog.dname = g.gname; dsize = size; dinit = [] }
  | Some (Gscalar v), (Tint | Tchar | Tptr _) ->
    let init =
      match g.gty with
      | Tchar -> [ Flow.Prog.Bytes (String.make 1 (Char.chr (v land 0xff))) ]
      | _ -> [ Flow.Prog.Word v ]
    in
    { dname = g.gname; dsize = size; dinit = init }
  | Some (Glist vs), Tarr (el, _) ->
    let init =
      match el with
      | Tchar ->
        [
          Flow.Prog.Bytes
            (String.init (List.length vs) (fun i ->
                 Char.chr (List.nth vs i land 0xff)));
        ]
      | _ -> List.map (fun v -> Flow.Prog.Word v) vs
    in
    { dname = g.gname; dsize = size; dinit = init }
  | Some (Gstring s), Tarr (Tchar, _) ->
    { dname = g.gname; dsize = size; dinit = [ Bytes s; Zeros 1 ] }
  | Some (Gstring s), Tptr Tchar ->
    (* Pointer to an anonymous string: handled by the caller, which interns
       the string and emits an Addr initializer. *)
    ignore s;
    { dname = g.gname; dsize = size; dinit = [] }
  | Some _, _ -> error "bad initializer for global %s" g.gname

let compile_program (prog : Ast.program) =
  let env =
    { globals = Hashtbl.create 16; funcs = Hashtbl.create 16; scopes = [] }
  in
  (* First pass: declare everything (allows forward references). *)
  List.iter
    (fun item ->
      match item with
      | Iglobals gs ->
        List.iter
          (fun g ->
            if Hashtbl.mem env.globals g.gname then
              error "duplicate global %s" g.gname;
            Hashtbl.add env.globals g.gname g.gty)
          gs
      | Ifunc f ->
        if Hashtbl.mem env.funcs f.fname || List.mem_assoc f.fname builtins
        then error "duplicate function %s" f.fname;
        Hashtbl.add env.funcs f.fname
          { ret = f.fret; params = List.map fst f.fparams })
    prog;
  let datas = ref [] in
  let funcs = ref [] in
  let anon_count = ref 0 in
  let lsupply = Label.Supply.create () in
  List.iter
    (fun item ->
      match item with
      | Iglobals gs ->
        List.iter
          (fun g ->
            match g.ginit, g.gty with
            | Some (Gstring s), Tptr Tchar ->
              let sym = Printf.sprintf "Lgstr%d" !anon_count in
              incr anon_count;
              datas := string_data sym s :: !datas;
              datas :=
                { Flow.Prog.dname = g.gname; dsize = 4; dinit = [ Addr sym ] }
                :: !datas
            | _ -> datas := global_data g :: !datas)
          gs
      | Ifunc f ->
        let func, strings = gen_func env lsupply f in
        List.iter
          (fun (sym, s) ->
            datas := string_data (f.fname ^ "_" ^ sym) s :: !datas)
          strings;
        funcs := func :: !funcs)
    prog;
  (* String symbols inside functions were interned per function; rename the
     references accordingly.  (Interning emitted Abs(sym,0); rewrite.) *)
  let rename_strings f =
    Flow.Func.map_instrs
      (fun instrs ->
        List.map
          (fun i ->
            match i with
            | Rtl.Lea (r, Abs (sym, off))
              when String.length sym >= 4 && String.sub sym 0 4 = "Lstr" ->
              Rtl.Lea (r, Abs (Flow.Func.name f ^ "_" ^ sym, off))
            | other -> other)
          instrs)
      f
  in
  let funcs = List.rev_map rename_strings !funcs in
  (match
     List.find_opt (fun f -> String.equal (Flow.Func.name f) "main") funcs
   with
  | Some _ -> ()
  | None -> error "program has no main function");
  { Flow.Prog.globals = List.rev !datas; funcs }

let compile_source src = compile_program (Parser.parse_program src)
