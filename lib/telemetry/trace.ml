(* Chrome/Perfetto trace-event collector.

   Collects complete spans ("X"), instant events ("i") and metadata
   ("M") from any domain (appends are mutex-protected; everything else
   happens on the parent after the joins) and writes the standard
   trace-event JSON object that chrome://tracing and ui.perfetto.dev
   load directly.  Timestamps are microseconds since the trace was
   created; the whole process is pid 1 and tids are logical lanes
   (0 = supervisor, 1..N = pool worker slots). *)

type ev = {
  e_name : string;
  e_cat : string;
  e_ph : char;  (* 'X' complete, 'i' instant, 'M' metadata *)
  e_ts : float;  (* microseconds since trace start *)
  e_dur : float;  (* 'X' only *)
  e_tid : int;
  e_args : (string * Json.t) list;
}

type t = {
  mu : Mutex.t;
  started : float;
  mutable evs : ev list;  (* newest first *)
  mutable count : int;
}

let pid = 1

let create () =
  { mu = Mutex.create (); started = Unix.gettimeofday (); evs = []; count = 0 }

let now_us t = (Unix.gettimeofday () -. t.started) *. 1e6

let push t ev =
  Mutex.lock t.mu;
  t.evs <- ev :: t.evs;
  t.count <- t.count + 1;
  Mutex.unlock t.mu

let events t =
  Mutex.lock t.mu;
  let n = t.count in
  Mutex.unlock t.mu;
  n

let complete t ~tid ?(cat = "task") ?(args = []) ~name ~ts_us ~dur_us () =
  push t
    {
      e_name = name;
      e_cat = cat;
      e_ph = 'X';
      e_ts = ts_us;
      e_dur = Float.max 0.0 dur_us;
      e_tid = tid;
      e_args = args;
    }

let instant t ~tid ?(cat = "supervisor") ?(args = []) name =
  push t
    {
      e_name = name;
      e_cat = cat;
      e_ph = 'i';
      e_ts = now_us t;
      e_dur = 0.0;
      e_tid = tid;
      e_args = args;
    }

let with_span t ~tid ?cat ?args name f =
  let ts_us = now_us t in
  let finish () = complete t ~tid ?cat ?args:(args) ~name ~ts_us ~dur_us:(now_us t -. ts_us) () in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let thread_name t ~tid name =
  push t
    {
      e_name = "thread_name";
      e_cat = "";
      e_ph = 'M';
      e_ts = 0.0;
      e_dur = 0.0;
      e_tid = tid;
      e_args = [ ("name", Json.Str name) ];
    }

let process_name t name =
  push t
    {
      e_name = "process_name";
      e_cat = "";
      e_ph = 'M';
      e_ts = 0.0;
      e_dur = 0.0;
      e_tid = 0;
      e_args = [ ("name", Json.Str name) ];
    }

let ev_to_json e =
  let base =
    [
      ("name", Json.Str e.e_name);
      ("ph", Json.Str (String.make 1 e.e_ph));
      ("ts", Json.Raw (Printf.sprintf "%.1f" e.e_ts));
      ("pid", Json.Int pid);
      ("tid", Json.Int e.e_tid);
    ]
  in
  let base = if e.e_cat = "" then base else base @ [ ("cat", Json.Str e.e_cat) ] in
  let base =
    if e.e_ph = 'X' then base @ [ ("dur", Json.Raw (Printf.sprintf "%.1f" e.e_dur)) ]
    else base
  in
  (* Instant events need a scope; "t" (thread) keeps them on their lane. *)
  let base = if e.e_ph = 'i' then base @ [ ("s", Json.Str "t") ] else base in
  let base =
    if e.e_args = [] then base else base @ [ ("args", Json.Obj e.e_args) ]
  in
  Json.Obj base

let to_json t =
  Mutex.lock t.mu;
  let evs = List.rev t.evs in
  Mutex.unlock t.mu;
  (* Stable sort by timestamp (metadata first at ts 0) keeps viewers and
     diff-based tests happy; arrival order breaks ties. *)
  let evs = List.stable_sort (fun a b -> compare a.e_ts b.e_ts) evs in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map ev_to_json evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write t oc =
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n'
