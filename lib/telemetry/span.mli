(** Scoped wall-clock timing for {!Log} events.

    A span is just a start timestamp; the instrumented site reads the
    elapsed time when it builds its [Pass_end] (or other) event.  Kept
    separate from {!Log} so call sites can time work without committing to
    an event shape. *)

type t

(** Start a span now (monotonic within a process: wall clock). *)
val start : unit -> t

(** Milliseconds since [start]. *)
val elapsed_ms : t -> float

(** Run a thunk and return its result with the elapsed milliseconds. *)
val timed : (unit -> 'a) -> 'a * float
