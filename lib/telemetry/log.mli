(** Structured optimization event log.

    A [t] is a sink plus a monotonic sequence counter and a named-counter
    registry ({!Counter}).  Instrumented code calls {!emit} with a thunk;
    when the sink is {!val:null} the thunk is never forced, so the hot path
    pays a single branch.  Events carry wall-clock timestamps (milliseconds
    since the log was created) and a per-log sequence number.

    Sinks:
    - [Null]: discard everything (the default; allocation-free);
    - [Jsonl oc]: one JSON object per line on [oc] — the machine format;
    - [Pretty oc]: human-readable lines on [oc];
    - [Memory]: buffer events in order for in-process inspection
      ({!events}) — what the tests use. *)

(** Why a replication decision went the way it did (paper steps 2–6 plus
    the section-6 extensions).  [Loop_copied] marks an {e applied}
    replication whose sequence was extended to a complete natural loop
    (step 3); the other constructors explain skips and rollbacks. *)
type reason =
  | Irreducible  (** every candidate left an irreducible flow graph (step 6) *)
  | Size_cap  (** function over [size_cap], or all candidates over [max_rtls] *)
  | Indirect_gated
      (** the only candidates end in an indirect jump and
          [replicate_indirect] is off *)
  | Loop_copied  (** applied via a loop-completed sequence (step 3) *)
  | No_path  (** no candidate sequence exists (self loop, unreachable exit) *)

val reason_to_string : reason -> string

(** Function shape before/after one pass. *)
type delta = {
  instrs_before : int;
  instrs_after : int;
  blocks_before : int;
  blocks_after : int;
  ujumps_before : int;  (** blocks ending in [Jump] or [Ijump] *)
  ujumps_after : int;
}

type event =
  | Pass_begin of { func : string; pass : string }
  | Pass_end of {
      func : string;
      pass : string;
      changed : bool;
      delta : delta;
      elapsed_ms : float;
    }
  | Replication_applied of {
      func : string;
      jump_from : string;  (** label of the block ending in the jump *)
      jump_to : string;  (** the jump's target label *)
      mode : string;  (** ["favor-returns"], ["favor-loops"] or ["loop-test"] *)
      seq : int list;  (** replicated block indices, in splice order *)
      cost : int;  (** RTLs added *)
      loop_completed : bool;  (** step-3 loop completion kicked in *)
    }
  | Replication_rolled_back of {
      func : string;
      jump_from : string;
      jump_to : string;
      reason : reason;
    }
  | Fixpoint_iteration of { func : string; iteration : int; changed : bool }
  | Fixpoint_diverged of { func : string; iterations : int; last_pass : string }
      (** the Figure-3 loop hit its iteration cap while [last_pass] still
          reported a change *)
  | Pass_quarantined of {
      func : string;
      pass : string;
      code : string;  (** a {!Diag.code} name *)
      violations : string list;  (** verifier violations, if any *)
    }  (** the pass boundary rolled the function back to its last-good IR *)
  | Regalloc_spill of { func : string; reg : string; round : int }
  | Sim_progress of { instrs : int }
  | Counter_event of { name : string; value : int }
  | Warning of { message : string }

type sink = Null | Jsonl of out_channel | Pretty of out_channel | Memory

type t

(** The shared disabled log.  [emit null f] never forces [f]. *)
val null : t

val make : sink -> t

(** False exactly for the [Null] sink — the one branch disabled costs. *)
val enabled : t -> bool

(** Force the thunk, stamp the event and hand it to the sink. *)
val emit : t -> (unit -> event) -> unit

(** Events emitted so far (any sink; 0 forever on [null]). *)
val emitted : t -> int

(** Buffered events, oldest first.  Empty unless the sink is [Memory]. *)
val events : t -> event list

(** The typed metrics registry attached to this log (disabled exactly
    when the log is): {!Counter} delegates to its counters, and the
    profiled/parallel paths observe histograms into it.  Sharded logs'
    registries merge deterministically with {!Metrics.merge}. *)
val metrics : t -> Metrics.t

val flush : t -> unit

(** One JSON object, no trailing newline — what the [Jsonl] sink writes. *)
val event_to_json : seq:int -> t_ms:float -> event -> string

val pp_event : Format.formatter -> event -> unit

(** Minimal JSON string quoting (used by the stats emitters too). *)
val json_string : string -> string
