(** Per-pass and per-run profiler ([--profile]).

    Attribution tables fed by the {!Opt.Driver} pass boundary (wall-clock
    and GC allocation per function x pass) and by [Harness.Measure]
    (interpreter fuel, interpreter wall time and cache-bank time per
    benchmark run).  Single-domain, like {!Metrics}: worker domains
    profile into private shards, the parent folds them back with {!merge}
    in task order.  Every recording is a no-op on {!null}. *)

type t

val create : unit -> t
val null : t
val enabled : t -> bool

(** Words allocated by this domain so far ([minor + major - promoted]);
    sample before/after a region and subtract. *)
val alloc_words : unit -> float

val record_pass :
  t -> func:string -> pass:string -> wall_ms:float -> alloc:float -> unit

(** [run] is a free-form key — the sweep uses ["program/LEVEL/machine"].
    Repeated recordings accumulate. *)
val record_run :
  t -> run:string -> fuel:int -> interp_ms:float -> cache_ms:float -> unit

(** Fold [src] into [into] (commutative sums; call in task order for a
    deterministic aggregate). *)
val merge : into:t -> t -> unit

type pass_row = {
  p_func : string;  (** [""] in {!by_pass} aggregates *)
  p_pass : string;
  p_calls : int;
  p_wall_ms : float;
  p_alloc_words : float;
}

(** All (function x pass) rows, hottest first (wall time, then name). *)
val pass_rows : t -> pass_row list

(** One row per pass, aggregated over functions, hottest first. *)
val by_pass : t -> pass_row list

type run_row = {
  r_run : string;
  r_fuel : int;
  r_interp_ms : float;
  r_cache_ms : float;
}

val run_rows : t -> run_row list

val to_json : t -> Json.t

(** The [--profile] report: pass totals, top-N (function x pass), top-N
    runs. *)
val pp_table : ?top:int -> Format.formatter -> t -> unit
