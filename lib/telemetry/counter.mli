(** Named monotonic counters attached to a {!Log} — a compatibility face
    over the log's {!Metrics} registry ({!Log.metrics}).

    Counters accumulate whenever the log is enabled (any non-null sink) and
    are no-ops on {!Log.null}.  [dump] turns the registry into
    [Counter_event]s so the counts reach the log's sink alongside the event
    stream. *)

val add : Log.t -> string -> int -> unit
val incr : Log.t -> string -> unit

(** Current value; 0 when never touched (or on the null log). *)
val get : Log.t -> string -> int

(** All counters, sorted by name. *)
val all : Log.t -> (string * int) list

(** Emit one [Counter_event] per counter, in name order. *)
val dump : Log.t -> unit
