(** Chrome/Perfetto trace-event export ([--trace-out]).

    A cross-domain collector of complete spans (phase ["X"]), instant
    events (["i"]) and thread/process metadata (["M"]), written as the
    standard trace-event JSON object that [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto} load directly.  Appends are
    mutex-protected so pool worker domains record concurrently; the
    supervisor owns lane (tid) 0 and worker slot [k] owns lane [k].
    Timestamps are microseconds since {!create}. *)

type t

val create : unit -> t

(** Microseconds since the trace was created (pass to {!complete}). *)
val now_us : t -> float

(** Number of events recorded so far. *)
val events : t -> int

(** A finished span on lane [tid]. *)
val complete :
  t ->
  tid:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  name:string ->
  ts_us:float ->
  dur_us:float ->
  unit ->
  unit

(** A point event, stamped now, thread-scoped to its lane. *)
val instant :
  t -> tid:int -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit

(** Run [f] under a span (recorded even if [f] raises). *)
val with_span :
  t ->
  tid:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  (unit -> 'a) ->
  'a

val thread_name : t -> tid:int -> string -> unit
val process_name : t -> string -> unit

(** [{"traceEvents":[...],"displayTimeUnit":"ms"}], events sorted by
    timestamp. *)
val to_json : t -> Json.t

val write : t -> out_channel -> unit
