type reason = Irreducible | Size_cap | Indirect_gated | Loop_copied | No_path

let reason_to_string = function
  | Irreducible -> "irreducible"
  | Size_cap -> "size-cap"
  | Indirect_gated -> "indirect-gated"
  | Loop_copied -> "loop-copied"
  | No_path -> "no-path"

type delta = {
  instrs_before : int;
  instrs_after : int;
  blocks_before : int;
  blocks_after : int;
  ujumps_before : int;
  ujumps_after : int;
}

type event =
  | Pass_begin of { func : string; pass : string }
  | Pass_end of {
      func : string;
      pass : string;
      changed : bool;
      delta : delta;
      elapsed_ms : float;
    }
  | Replication_applied of {
      func : string;
      jump_from : string;
      jump_to : string;
      mode : string;
      seq : int list;
      cost : int;
      loop_completed : bool;
    }
  | Replication_rolled_back of {
      func : string;
      jump_from : string;
      jump_to : string;
      reason : reason;
    }
  | Fixpoint_iteration of { func : string; iteration : int; changed : bool }
  | Fixpoint_diverged of { func : string; iterations : int; last_pass : string }
  | Pass_quarantined of {
      func : string;
      pass : string;
      code : string;
      violations : string list;
    }
  | Regalloc_spill of { func : string; reg : string; round : int }
  | Sim_progress of { instrs : int }
  | Counter_event of { name : string; value : int }
  | Warning of { message : string }

type sink = Null | Jsonl of out_channel | Pretty of out_channel | Memory

type t = {
  sink : sink;
  enabled : bool;
  started : float;  (* Unix epoch seconds at creation *)
  mutable seq : int;
  mutable buffer : event list;  (* Memory sink, newest first *)
  metrics : Metrics.t;  (* the registry behind Counter *)
}

let make sink =
  {
    sink;
    enabled = sink <> Null;
    started = Unix.gettimeofday ();
    seq = 0;
    buffer = [];
    metrics = (if sink = Null then Metrics.null else Metrics.create ());
  }

let null = make Null
let enabled t = t.enabled
let emitted t = t.seq
let events t = List.rev t.buffer
let metrics t = t.metrics

(* --- JSON encoding (hand-rolled; the library has no dependencies) --- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let fields_of_event = function
  | Pass_begin { func; pass } ->
    ("pass_begin", [ ("func", json_string func); ("pass", json_string pass) ])
  | Pass_end { func; pass; changed; delta = d; elapsed_ms } ->
    ( "pass_end",
      [
        ("func", json_string func);
        ("pass", json_string pass);
        ("changed", string_of_bool changed);
        ("instrs_before", string_of_int d.instrs_before);
        ("instrs_after", string_of_int d.instrs_after);
        ("blocks_before", string_of_int d.blocks_before);
        ("blocks_after", string_of_int d.blocks_after);
        ("ujumps_before", string_of_int d.ujumps_before);
        ("ujumps_after", string_of_int d.ujumps_after);
        ("elapsed_ms", Printf.sprintf "%.3f" elapsed_ms);
      ] )
  | Replication_applied { func; jump_from; jump_to; mode; seq; cost; loop_completed }
    ->
    ( "replication_applied",
      [
        ("func", json_string func);
        ("jump_from", json_string jump_from);
        ("jump_to", json_string jump_to);
        ("mode", json_string mode);
        ( "seq",
          "[" ^ String.concat "," (List.map string_of_int seq) ^ "]" );
        ("cost", string_of_int cost);
        ("loop_completed", string_of_bool loop_completed);
      ] )
  | Replication_rolled_back { func; jump_from; jump_to; reason } ->
    ( "replication_rolled_back",
      [
        ("func", json_string func);
        ("jump_from", json_string jump_from);
        ("jump_to", json_string jump_to);
        ("reason", json_string (reason_to_string reason));
      ] )
  | Fixpoint_iteration { func; iteration; changed } ->
    ( "fixpoint_iteration",
      [
        ("func", json_string func);
        ("iteration", string_of_int iteration);
        ("changed", string_of_bool changed);
      ] )
  | Fixpoint_diverged { func; iterations; last_pass } ->
    ( "fixpoint_diverged",
      [
        ("func", json_string func);
        ("iterations", string_of_int iterations);
        ("last_pass", json_string last_pass);
      ] )
  | Pass_quarantined { func; pass; code; violations } ->
    ( "pass_quarantined",
      [
        ("func", json_string func);
        ("pass", json_string pass);
        ("code", json_string code);
        ( "violations",
          "[" ^ String.concat "," (List.map json_string violations) ^ "]" );
      ] )
  | Regalloc_spill { func; reg; round } ->
    ( "regalloc_spill",
      [
        ("func", json_string func);
        ("reg", json_string reg);
        ("round", string_of_int round);
      ] )
  | Sim_progress { instrs } ->
    ("sim_progress", [ ("instrs", string_of_int instrs) ])
  | Counter_event { name; value } ->
    ("counter", [ ("name", json_string name); ("value", string_of_int value) ])
  | Warning { message } -> ("warning", [ ("message", json_string message) ])

let event_to_json ~seq ~t_ms ev =
  let kind, fields = fields_of_event ev in
  let fields =
    [ ("seq", string_of_int seq); ("t_ms", Printf.sprintf "%.3f" t_ms);
      ("ev", json_string kind) ]
    @ fields
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let pp_event ppf ev =
  let kind, fields = fields_of_event ev in
  Format.fprintf ppf "%-24s %s" kind
    (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fields))

let emit t f =
  if t.enabled then begin
    let ev = f () in
    let seq = t.seq in
    t.seq <- seq + 1;
    match t.sink with
    | Null -> ()
    | Memory -> t.buffer <- ev :: t.buffer
    | Jsonl oc ->
      let t_ms = (Unix.gettimeofday () -. t.started) *. 1000.0 in
      output_string oc (event_to_json ~seq ~t_ms ev);
      output_char oc '\n'
    | Pretty oc ->
      let t_ms = (Unix.gettimeofday () -. t.started) *. 1000.0 in
      let buf = Buffer.create 128 in
      let ppf = Format.formatter_of_buffer buf in
      Format.fprintf ppf "[%6d %8.3fms] %a@?" seq t_ms pp_event ev;
      output_string oc (Buffer.contents buf);
      output_char oc '\n'
  end

let flush t =
  match t.sink with
  | Jsonl oc | Pretty oc -> Stdlib.flush oc
  | Null | Memory -> ()
