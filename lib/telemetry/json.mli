(** A tiny dependency-free JSON value: one renderer shared by every
    machine-readable emission path (diags, [lint --json], [explain
    --json], [report], the profiler and metrics snapshots, the trace
    export), plus a strict parser for reading our own documents back
    ([BENCH_results.json], telemetry JSONL).

    [Raw] splices an already-rendered JSON fragment verbatim — the bridge
    for legacy string producers ({!Diag.to_json},
    [Harness.Measure.to_json]) so their byte format is preserved
    exactly.  The parser never produces [Raw]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string  (** pre-rendered JSON, spliced verbatim *)

(** Compact rendering: no whitespace, fields in the given order. *)
val to_string : t -> string

(** Strict parse of one JSON document ([Error] carries offset + reason).
    Numbers without [.]/[e] that fit an OCaml [int] come back as [Int];
    everything else numeric as [Float].  Never raises on any input:
    nesting beyond {!max_depth} levels is an [Error], not a
    [Stack_overflow] — the wire-protocol codec depends on this. *)
val parse : string -> (t, string) result

(** Maximum nesting depth {!parse} accepts (4096). *)
val max_depth : int

(** [member name (Obj ...)] is the named field, if any. *)
val member : string -> t -> t option

val to_list : t -> t list option
val get_string : t -> string option
val get_int : t -> int option

(** [get_float] accepts [Int] too (JSON does not distinguish them). *)
val get_float : t -> float option

val get_bool : t -> bool option

(** JSON string quoting (same as {!Log.json_string}). *)
val escape : string -> string
