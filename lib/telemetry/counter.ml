(* Thin compatibility face over the log's typed Metrics registry: the
   original ad-hoc (string -> int) counter table is gone, but the API and
   the emitted shapes are unchanged. *)

let add log name n = Metrics.add (Log.metrics log) name n
let incr log name = add log name 1
let get log name = Metrics.counter_value (Log.metrics log) name
let all log = Metrics.counters (Log.metrics log)

let dump log =
  List.iter
    (fun (name, value) ->
      Log.emit log (fun () -> Log.Counter_event { name; value }))
    (all log)
