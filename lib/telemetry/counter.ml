let add log name n =
  if Log.enabled log then begin
    let tbl = Log.counters log in
    Hashtbl.replace tbl name
      (n + Option.value ~default:0 (Hashtbl.find_opt tbl name))
  end

let incr log name = add log name 1

let get log name =
  Option.value ~default:0 (Hashtbl.find_opt (Log.counters log) name)

let all log =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (Log.counters log) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dump log =
  List.iter
    (fun (name, value) ->
      Log.emit log (fun () -> Log.Counter_event { name; value }))
    (all log)
