(** Resource budgets with cooperative cancellation.

    One budget bounds one unit of work (a compilation, a simulated run, a
    pool task) along three axes — wall-clock time, interpreter fuel, and
    replication code growth — and carries a [cancel] flag a supervising
    domain can set to interrupt the work from outside.  Consumers poll
    {!interrupted} (or call {!check}) at natural safepoints: the
    interpreter's fuel accounting, the replication pass's per-jump loop,
    the driver's fixpoint iterations.  Exhaustion is a typed, recoverable
    condition ({!exception-Exhausted}), not an abort: {!Opt.Driver}
    degrades the function to the next-cheaper configuration and the
    {!Harness.Pool} supervisor converts it into a structured task
    outcome. *)

type reason = Wall_clock | Cancelled | Fuel | Growth

exception Exhausted of reason

val reason_name : reason -> string

type t

(** [make ?deadline ?fuel ?growth ()] — [deadline] is relative seconds
    from now (stored as an absolute time); [fuel] bounds interpreter
    steps; [growth] bounds replication code growth as a percent of the
    function's input size (the paper's §6 trade-off: 0 forbids any
    growth, 60 allows the paper's worst observed case).  Omitted axes are
    unlimited.  Each budget owns a fresh cancel flag. *)
val make : ?deadline:float -> ?fuel:int -> ?growth:int -> unit -> t

(** No limits, never cancelled (a shared constant). *)
val unlimited : t

val fuel : t -> int option
val growth : t -> int option

(** Request cooperative cancellation (safe from any domain). *)
val cancel : t -> unit

(** Why the work should stop now, if it should: the cancel flag
    ([Cancelled]) or a passed wall-clock deadline ([Wall_clock]).  Fuel
    and growth are accounted by their consumers, not here. *)
val interrupt_reason : t -> reason option

val interrupted : t -> bool

(** Raise {!exception-Exhausted} if {!interrupt_reason} is set. *)
val check : t -> unit
