(** Typed metrics registry: counters, gauges and fixed-bucket histograms.

    A registry is {e single-domain} mutable state — the sharding
    discipline is one registry per worker domain, folded back into the
    parent's with {!merge} in task order.  Because counters and
    histograms merge by commutative addition and gauges by
    last-merge-wins, the merged registry is identical to the one a
    sequential run produces whatever the domain count (asserted by
    [test_telemetry] and the parallel-sweep determinism tests).

    Every update is a no-op on {!null}, so instrumented code pays one
    load and one branch when metrics are off. *)

type t

val create : unit -> t

(** The shared disabled registry: all updates are no-ops, all reads
    empty. *)
val null : t

val enabled : t -> bool

(** Standard histogram bucket layouts (upper bounds; the overflow bucket
    is implicit). *)
module Buckets : sig
  (** Wall-clock milliseconds: 10µs … 3s in 1-3-10 steps. *)
  val time_ms : float array

  (** Doubling buckets [2^lo … 2^hi]. *)
  val pow2 : lo:int -> hi:int -> float array

  (** Executed-instruction counts: 256 … 64M, doubling. *)
  val instrs : float array
end

(** [bucket_index edges v] is the index of the bucket counting [v]: the
    first [i] with [v <= edges.(i)], or [Array.length edges] (the
    overflow bucket).  Exposed for the bucket-edge tests. *)
val bucket_index : float array -> float -> int

(** Counter update (registers on first use).
    @raise Invalid_argument if [name] is already a gauge or histogram. *)
val add : t -> string -> int -> unit

val incr : t -> string -> unit

(** Gauge update: last write wins. *)
val set : t -> string -> float -> unit

(** Histogram observation.  The bucket layout is fixed by the first
    observation; later [buckets] arguments are ignored. *)
val observe : t -> string -> buckets:float array -> float -> unit

(** Current value of a counter (0 if absent or not a counter). *)
val counter_value : t -> string -> int

(** Current value of a gauge (0 if absent or not a gauge). *)
val gauge_value : t -> string -> float

(** All counters, sorted by name — the shape the legacy
    {!Counter.all} API exposes. *)
val counters : t -> (string * int) list

type view =
  | VCounter of int
  | VGauge of float
  | VHistogram of { edges : float array; counts : int array; sum : float; count : int }

(** Every metric, sorted by name. *)
val snapshot : t -> (string * view) list

(** Fold [src] into [into]: counters and histogram buckets add, gauges
    take the source value.  Call once per shard, in task order, for a
    deterministic result.
    @raise Invalid_argument on name/type or bucket-layout clashes. *)
val merge : into:t -> t -> unit

(** Name-sorted JSON object: counters as numbers, gauges as floats,
    histograms as [{type,edges,counts,sum,count}]. *)
val to_json : t -> Json.t
