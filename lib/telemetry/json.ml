type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string

(* --- rendering --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> Buffer.add_string buf (escape s)
  | Raw s -> Buffer.add_string buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (escape k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* --- parsing (recursive descent; no dependencies) --- *)

exception Parse_fail of string * int

(* The descent recurses once per nesting level, so unbounded input depth
   would translate into unbounded stack: a wire frame of a few million
   '[' characters (well under the daemon's 16MB frame cap) must come
   back as [Error], not [Stack_overflow].  The cap is far above any
   document we emit, and low enough that the recursion never nears a
   real stack limit. *)
let max_depth = 4096

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "bad \\u escape"
               in
               (* UTF-8 encode the BMP code point. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value depth =
    skip_ws ();
    if depth > max_depth then
      fail (Printf.sprintf "nesting deeper than %d levels" max_depth);
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_fail (msg, at) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)
  | exception Stack_overflow ->
    (* Unreachable while [max_depth] holds, but the never-raises contract
       must survive even if the descent grows a new recursion path. *)
    Error "JSON parse error: document exhausted the parser stack"

(* --- accessors --- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
let get_string = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
