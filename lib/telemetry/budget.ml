type reason = Wall_clock | Cancelled | Fuel | Growth

exception Exhausted of reason

let reason_name = function
  | Wall_clock -> "wall-clock"
  | Cancelled -> "cancelled"
  | Fuel -> "fuel"
  | Growth -> "growth"

type t = {
  deadline : float option;  (* absolute Unix.gettimeofday time *)
  fuel : int option;
  growth : int option;  (* percent of the input size replication may add *)
  cancel : bool Atomic.t;
}

let make ?deadline ?fuel ?growth () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline;
    fuel;
    growth;
    cancel = Atomic.make false;
  }

let unlimited = make ()
let fuel t = t.fuel
let growth t = t.growth
let cancel t = Atomic.set t.cancel true

let interrupt_reason t =
  if Atomic.get t.cancel then Some Cancelled
  else
    match t.deadline with
    | Some d when Unix.gettimeofday () > d -> Some Wall_clock
    | _ -> None

let interrupted t = interrupt_reason t <> None

let check t =
  match interrupt_reason t with Some r -> raise (Exhausted r) | None -> ()
