(* Typed metrics registry: named counters, gauges and fixed-bucket
   histograms.

   A registry is single-domain mutable state.  Parallel code gives every
   worker domain its own shard and the parent folds the shards back with
   [merge] in task order — the merged registry is then byte-for-byte the
   one a sequential run would have produced (counters and histograms are
   commutative sums; gauges are last-merge-wins, which is deterministic
   because the merge order is the task order, not the completion
   order). *)

type histogram = {
  edges : float array;  (* strictly increasing upper bounds; +inf implicit *)
  counts : int array;  (* length = Array.length edges + 1 *)
  mutable sum : float;
  mutable n : int;
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type t = { on : bool; tbl : (string, metric) Hashtbl.t }

let create () = { on = true; tbl = Hashtbl.create 32 }
let null = { on = false; tbl = Hashtbl.create 1 }
let enabled t = t.on

let clash name =
  invalid_arg (Printf.sprintf "Metrics: %s already registered with another type" name)

(* --- standard bucket layouts --- *)

module Buckets = struct
  let time_ms =
    [| 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0; 3000.0 |]

  let pow2 ~lo ~hi =
    if lo > hi then invalid_arg "Metrics.Buckets.pow2: lo > hi";
    Array.init (hi - lo + 1) (fun i -> float_of_int (1 lsl (lo + i)))

  (* Executed-instruction counts: 256 .. 64M, doubling. *)
  let instrs = pow2 ~lo:8 ~hi:26
end

(* First bucket whose upper bound admits [v] ([v <= edges.(i)]); the
   overflow bucket is [Array.length edges]. *)
let bucket_index edges v =
  let n = Array.length edges in
  let rec go lo hi =
    (* invariant: every i < lo has edges.(i) < v; answer is in [lo, hi] *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= edges.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

(* --- registration and updates (no-ops on a disabled registry) --- *)

let add t name delta =
  if t.on then
    match Hashtbl.find_opt t.tbl name with
    | Some (Counter r) -> r := !r + delta
    | Some _ -> clash name
    | None -> Hashtbl.add t.tbl name (Counter (ref delta))

let incr t name = add t name 1

let set t name v =
  if t.on then
    match Hashtbl.find_opt t.tbl name with
    | Some (Gauge r) -> r := v
    | Some _ -> clash name
    | None -> Hashtbl.add t.tbl name (Gauge (ref v))

let observe t name ~buckets v =
  if t.on then
    let h =
      match Hashtbl.find_opt t.tbl name with
      | Some (Histogram h) -> h
      | Some _ -> clash name
      | None ->
        let h =
          {
            edges = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            sum = 0.0;
            n = 0;
          }
        in
        Hashtbl.add t.tbl name (Histogram h);
        h
    in
    let i = bucket_index h.edges v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    h.n <- h.n + 1

(* --- reading --- *)

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Counter r) -> !r | _ -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Gauge r) -> !r | _ -> 0.

let counters t =
  Hashtbl.fold
    (fun k v acc -> match v with Counter r -> (k, !r) :: acc | _ -> acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type view =
  | VCounter of int
  | VGauge of float
  | VHistogram of { edges : float array; counts : int array; sum : float; count : int }

let snapshot t =
  Hashtbl.fold
    (fun k v acc ->
      let view =
        match v with
        | Counter r -> VCounter !r
        | Gauge r -> VGauge !r
        | Histogram h ->
          VHistogram
            {
              edges = Array.copy h.edges;
              counts = Array.copy h.counts;
              sum = h.sum;
              count = h.n;
            }
      in
      (k, view) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- deterministic shard merge --- *)

let merge ~into src =
  if into.on then
    List.iter
      (fun (name, view) ->
        match view with
        | VCounter n -> add into name n
        | VGauge v -> set into name v
        | VHistogram { edges; counts; sum; count } -> (
          match Hashtbl.find_opt into.tbl name with
          | Some (Histogram h) ->
            if h.edges <> edges then
              invalid_arg
                (Printf.sprintf "Metrics.merge: %s bucket layouts differ" name);
            Array.iteri (fun i c -> h.counts.(i) <- h.counts.(i) + c) counts;
            h.sum <- h.sum +. sum;
            h.n <- h.n + count
          | Some _ -> clash name
          | None ->
            Hashtbl.add into.tbl name
              (Histogram { edges; counts = Array.copy counts; sum; n = count })))
      (snapshot src)

(* --- JSON snapshot --- *)

let view_to_json = function
  | VCounter n -> Json.Int n
  | VGauge v -> Json.Float v
  | VHistogram { edges; counts; sum; count } ->
    Json.Obj
      [
        ("type", Json.Str "histogram");
        ("edges", Json.Arr (Array.to_list (Array.map (fun e -> Json.Float e) edges)));
        ("counts", Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) counts)));
        ("sum", Json.Raw (Printf.sprintf "%.6f" sum));
        ("count", Json.Int count);
      ]

let to_json t =
  Json.Obj (List.map (fun (name, view) -> (name, view_to_json view)) (snapshot t))
