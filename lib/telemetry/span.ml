type t = float

let start () = Unix.gettimeofday ()
let elapsed_ms t = (Unix.gettimeofday () -. t) *. 1000.0

let timed f =
  let t = start () in
  let x = f () in
  (x, elapsed_ms t)
