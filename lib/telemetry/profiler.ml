(* Per-pass and per-run profiler.

   Two attribution tables: (function x pass) -> {calls, wall, alloc} fed
   by the Opt.Driver pass boundary, and run -> {fuel, interp, cache} fed
   by Harness.Measure.  Like Metrics, a profiler is single-domain state:
   worker domains profile into private shards that the parent folds back
   with [merge] in task order.  Wall-clock and allocation numbers are
   nondeterministic by nature; the deterministic parts (call counts,
   fuel) are what the determinism tests pin down. *)

type pass_stat = {
  mutable calls : int;
  mutable wall_ms : float;
  mutable alloc_words : float;
}

type run_stat = {
  mutable fuel : int;  (* executed instructions *)
  mutable interp_ms : float;  (* whole interpreter run, cache sim included *)
  mutable cache_ms : float;  (* time inside the Icache.Bank on_fetch hook *)
}

type t = {
  on : bool;
  passes : (string * string, pass_stat) Hashtbl.t;  (* (func, pass) *)
  runs : (string, run_stat) Hashtbl.t;  (* "program/LEVEL/machine" *)
}

let create () = { on = true; passes = Hashtbl.create 64; runs = Hashtbl.create 32 }
let null = { on = false; passes = Hashtbl.create 1; runs = Hashtbl.create 1 }
let enabled t = t.on

(* Words allocated by this domain so far; sample before/after a region
   and subtract.  Promoted words would otherwise be counted twice. *)
let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let record_pass t ~func ~pass ~wall_ms ~alloc =
  if t.on then
    let key = (func, pass) in
    match Hashtbl.find_opt t.passes key with
    | Some s ->
      s.calls <- s.calls + 1;
      s.wall_ms <- s.wall_ms +. wall_ms;
      s.alloc_words <- s.alloc_words +. alloc
    | None ->
      Hashtbl.add t.passes key { calls = 1; wall_ms; alloc_words = alloc }

let record_run t ~run ~fuel ~interp_ms ~cache_ms =
  if t.on then
    match Hashtbl.find_opt t.runs run with
    | Some s ->
      s.fuel <- s.fuel + fuel;
      s.interp_ms <- s.interp_ms +. interp_ms;
      s.cache_ms <- s.cache_ms +. cache_ms
    | None -> Hashtbl.add t.runs run { fuel; interp_ms; cache_ms }

let merge ~into src =
  if into.on then begin
    (* Sort for determinism of table iteration order downstream. *)
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.passes []
    |> List.sort compare
    |> List.iter (fun ((func, pass), (s : pass_stat)) ->
           for _ = 2 to s.calls do
             record_pass into ~func ~pass ~wall_ms:0.0 ~alloc:0.0
           done;
           record_pass into ~func ~pass ~wall_ms:s.wall_ms ~alloc:s.alloc_words);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.runs []
    |> List.sort compare
    |> List.iter (fun (run, (s : run_stat)) ->
           record_run into ~run ~fuel:s.fuel ~interp_ms:s.interp_ms
             ~cache_ms:s.cache_ms)
  end

(* --- reading --- *)

type pass_row = {
  p_func : string;
  p_pass : string;
  p_calls : int;
  p_wall_ms : float;
  p_alloc_words : float;
}

let row_order a b =
  match compare b.p_wall_ms a.p_wall_ms with
  | 0 -> compare (a.p_func, a.p_pass) (b.p_func, b.p_pass)
  | c -> c

(* All (function x pass) rows, hottest (by wall time) first. *)
let pass_rows t =
  Hashtbl.fold
    (fun (p_func, p_pass) (s : pass_stat) acc ->
      {
        p_func;
        p_pass;
        p_calls = s.calls;
        p_wall_ms = s.wall_ms;
        p_alloc_words = s.alloc_words;
      }
      :: acc)
    t.passes []
  |> List.sort row_order

(* Rows aggregated over functions: one row per pass name. *)
let by_pass t =
  let tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (_, pass) (s : pass_stat) ->
      match Hashtbl.find_opt tbl pass with
      | Some r ->
        r.calls <- r.calls + s.calls;
        r.wall_ms <- r.wall_ms +. s.wall_ms;
        r.alloc_words <- r.alloc_words +. s.alloc_words
      | None ->
        Hashtbl.add tbl pass
          { calls = s.calls; wall_ms = s.wall_ms; alloc_words = s.alloc_words })
    t.passes;
  Hashtbl.fold
    (fun pass (s : pass_stat) acc ->
      {
        p_func = "";
        p_pass = pass;
        p_calls = s.calls;
        p_wall_ms = s.wall_ms;
        p_alloc_words = s.alloc_words;
      }
      :: acc)
    tbl []
  |> List.sort row_order

type run_row = {
  r_run : string;
  r_fuel : int;
  r_interp_ms : float;
  r_cache_ms : float;
}

let run_rows t =
  Hashtbl.fold
    (fun r_run (s : run_stat) acc ->
      {
        r_run;
        r_fuel = s.fuel;
        r_interp_ms = s.interp_ms;
        r_cache_ms = s.cache_ms;
      }
      :: acc)
    t.runs []
  |> List.sort (fun a b ->
         match compare b.r_interp_ms a.r_interp_ms with
         | 0 -> String.compare a.r_run b.r_run
         | c -> c)

(* --- rendering --- *)

let to_json t =
  Json.Obj
    [
      ( "passes",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("func", Json.Str r.p_func);
                   ("pass", Json.Str r.p_pass);
                   ("calls", Json.Int r.p_calls);
                   ("wall_ms", Json.Raw (Printf.sprintf "%.3f" r.p_wall_ms));
                   ("alloc_words", Json.Raw (Printf.sprintf "%.0f" r.p_alloc_words));
                 ])
             (pass_rows t)) );
      ( "by_pass",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("pass", Json.Str r.p_pass);
                   ("calls", Json.Int r.p_calls);
                   ("wall_ms", Json.Raw (Printf.sprintf "%.3f" r.p_wall_ms));
                   ("alloc_words", Json.Raw (Printf.sprintf "%.0f" r.p_alloc_words));
                 ])
             (by_pass t)) );
      ( "runs",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("run", Json.Str r.r_run);
                   ("fuel", Json.Int r.r_fuel);
                   ("interp_ms", Json.Raw (Printf.sprintf "%.3f" r.r_interp_ms));
                   ("cache_ms", Json.Raw (Printf.sprintf "%.3f" r.r_cache_ms));
                 ])
             (run_rows t)) );
    ]

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs

let pp_table ?(top = 15) ppf t =
  let pass_rows_all = pass_rows t in
  let total_wall = List.fold_left (fun a r -> a +. r.p_wall_ms) 0.0 pass_rows_all in
  Format.fprintf ppf "profile: pass totals (all functions):@.";
  Format.fprintf ppf "  %-16s %8s %12s %14s %7s@." "pass" "calls" "wall ms"
    "alloc Mw" "%";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-16s %8d %12.3f %14.3f %6.1f%%@." r.p_pass
        r.p_calls r.p_wall_ms
        (r.p_alloc_words /. 1e6)
        (if total_wall > 0.0 then 100.0 *. r.p_wall_ms /. total_wall else 0.0))
    (by_pass t);
  Format.fprintf ppf "profile: top %d (function x pass):@." top;
  Format.fprintf ppf "  %-24s %-16s %8s %12s %14s@." "function" "pass" "calls"
    "wall ms" "alloc Mw";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-24s %-16s %8d %12.3f %14.3f@." r.p_func r.p_pass
        r.p_calls r.p_wall_ms
        (r.p_alloc_words /. 1e6))
    (take top pass_rows_all);
  match run_rows t with
  | [] -> ()
  | runs ->
    Format.fprintf ppf "profile: top %d runs (interpreter + cache bank):@." top;
    Format.fprintf ppf "  %-32s %12s %12s %12s@." "run" "fuel" "interp ms"
      "cache ms";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-32s %12d %12.3f %12.3f@." r.r_run r.r_fuel
          r.r_interp_ms r.r_cache_ms)
      (take top runs)
