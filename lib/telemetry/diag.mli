(** Typed pipeline diagnostics.

    The optimization pipeline's error channel: instead of scattered
    [failwith]s, passes raise {!exception-Error} carrying a structured
    diagnostic, and the defensive driver ({!Opt.Driver}) converts verifier
    failures, pass exceptions and oracle mismatches into collected
    diagnostics so one bad pass on one function no longer aborts the whole
    compile.  The CLI prints collected diagnostics as warnings and, under
    [--strict], exits nonzero when any error-severity diagnostic was
    recorded. *)

type code =
  | Malformed_ir  (** the IR verifier reported violations *)
  | Pass_raised  (** a pass raised an exception *)
  | Oracle_mismatch  (** differential execution diverged after a pass *)
  | No_convergence  (** an iteration cap was hit without a fixpoint *)
  | Timeout  (** simulator step budget exhausted *)
  | Internal  (** an internal invariant was violated *)
  | Budget_exhausted
      (** a {!Budget} limit tripped; the driver degraded the function to
          the next-cheaper configuration instead of aborting *)
  | Parse_error  (** a lexical or syntax error in a C-subset source file *)
  | Semantic_error  (** a code-generation (semantic) error *)
  | Io_error  (** a file could not be read or written *)
  | Task_failed
      (** a supervised pool task crashed or timed out; its structured
          outcome is recorded, sibling tasks are unaffected *)
  | Uninit_read  (** a virtual register read before definition on some path *)
  | Dead_store  (** a pure computation whose results are never read *)
  | Const_branch  (** a conditional branch statically always/never taken *)
  | Jump_chain  (** a control transfer landing on another unconditional jump *)
  | Unreachable_code  (** a block no path from the entry reaches *)
  | Loop_replication  (** replication copied a whole loop body *)
  | Code_growth  (** estimated code growth from replicating a jump *)
  | Jump_residual  (** an unconditional jump replication could not remove *)
  | Certify_refuted
      (** the static translation validator proved a pass's output does not
          simulate its input; carries the counterexample path *)
  | Uncertifiable_pass
      (** the validator could not decide a pass (renaming, restructuring,
          or symbolic values it cannot ground): verdict Unknown *)
  | Certifier_timeout
      (** the validator's pair budget ran out before closure *)
  | Analysis_diverged
      (** a dataflow analysis exhausted its visit budget without reaching
          a fixpoint (a non-monotone transfer function) *)
  | Store_corrupt
      (** a campaign result-store entry failed its integrity check
          (truncated or bit-flipped); the result is recomputed *)

type severity = Warn | Err

type t = {
  code : code;
  severity : severity;
  func : string;  (** function being compiled, or [""] *)
  pass : string;  (** pass that produced the diagnostic, or [""] *)
  message : string;
}

(** Raised by pipeline code in place of [failwith]; the driver's pass
    boundary catches it and quarantines the raising pass. *)
exception Error of t

val code_name : code -> string

val make :
  ?severity:severity -> code -> func:string -> pass:string -> string -> t

(** [error code ~func ~pass fmt]: raise {!exception-Error} with severity
    {!Err} and a formatted message. *)
val error :
  code -> func:string -> pass:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** ["[code] func/pass: message"], the warning line the CLI prints. *)
val to_string : t -> string

(** One JSON object, no trailing newline. *)
val to_json : t -> string

(** Whether any diagnostic in the list is error-severity (what [--strict]
    keys its exit code on). *)
val has_errors : t list -> bool
