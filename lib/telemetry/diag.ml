type code =
  | Malformed_ir
  | Pass_raised
  | Oracle_mismatch
  | No_convergence
  | Timeout
  | Internal
  | Budget_exhausted
  | Parse_error
  | Semantic_error
  | Io_error
  | Task_failed
  | Uninit_read
  | Dead_store
  | Const_branch
  | Jump_chain
  | Unreachable_code
  | Loop_replication
  | Code_growth
  | Jump_residual
  | Certify_refuted
  | Uncertifiable_pass
  | Certifier_timeout
  | Analysis_diverged
  | Store_corrupt

type severity = Warn | Err

type t = {
  code : code;
  severity : severity;
  func : string;
  pass : string;
  message : string;
}

exception Error of t

let code_name = function
  | Malformed_ir -> "malformed-ir"
  | Pass_raised -> "pass-raised"
  | Oracle_mismatch -> "oracle-mismatch"
  | No_convergence -> "no-convergence"
  | Timeout -> "timeout"
  | Internal -> "internal"
  | Budget_exhausted -> "budget-exhausted"
  | Parse_error -> "parse-error"
  | Semantic_error -> "semantic-error"
  | Io_error -> "io-error"
  | Task_failed -> "task-failed"
  | Uninit_read -> "uninit-read"
  | Dead_store -> "dead-store"
  | Const_branch -> "const-branch"
  | Jump_chain -> "jump-chain"
  | Unreachable_code -> "unreachable-code"
  | Loop_replication -> "loop-replication"
  | Code_growth -> "code-growth"
  | Jump_residual -> "jump-residual"
  | Certify_refuted -> "certify-refuted"
  | Uncertifiable_pass -> "uncertifiable-pass"
  | Certifier_timeout -> "certifier-timeout"
  | Analysis_diverged -> "analysis-diverged"
  | Store_corrupt -> "store-corrupt"

let severity_name = function Warn -> "warning" | Err -> "error"

let make ?(severity = Err) code ~func ~pass message =
  { code; severity; func; pass; message }

let error code ~func ~pass fmt =
  Format.kasprintf
    (fun message -> raise (Error (make code ~func ~pass message)))
    fmt

let to_string d =
  let where =
    match d.func, d.pass with
    | "", "" -> ""
    | f, "" -> Printf.sprintf " %s:" f
    | "", p -> Printf.sprintf " %s:" p
    | f, p -> Printf.sprintf " %s/%s:" f p
  in
  Printf.sprintf "[%s]%s %s" (code_name d.code) where d.message

(* Uses the same minimal quoting as the event log (duplicated to keep this
   module dependency-free below Log). *)
let json_quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"code\":%s,\"severity\":%s,\"func\":%s,\"pass\":%s,\"message\":%s}"
    (json_quote (code_name d.code))
    (json_quote (severity_name d.severity))
    (json_quote d.func) (json_quote d.pass) (json_quote d.message)

let has_errors ds = List.exists (fun d -> d.severity = Err) ds
