open Ir
open Flow

(* A loop header eligible for condition replication: it ends in a
   conditional branch with one successor inside the loop and one outside. *)
type test_info = {
  body : Rtl.instr list;  (** header instructions without the branch *)
  cond : Rtl.cond;  (** branch condition *)
  taken : int;  (** branch-taken successor *)
  fall : int;  (** fall-through successor *)
  inside : int;  (** which of the two is inside the loop *)
  outside : int;
}

let header_test func g loops t =
  match List.find_opt (fun (l : Loops.loop) -> l.header = t) loops with
  | None -> None
  | Some loop -> (
    let block = Func.block func t in
    match Func.terminator block with
    | Some (Rtl.Branch (cond, l)) ->
      let taken = Func.index_of_label func l in
      if t + 1 >= Cfg.num_blocks g then None
      else begin
        let fall = t + 1 in
        let body =
          match List.rev block.instrs with
          | _branch :: rev_body -> List.rev rev_body
          | [] -> assert false
        in
        let in_taken = Loops.Int_set.mem taken loop.body in
        let in_fall = Loops.Int_set.mem fall loop.body in
        match in_taken, in_fall with
        | true, false ->
          Some { body; cond; taken; fall; inside = taken; outside = fall }
        | false, true ->
          Some { body; cond; taken; fall; inside = fall; outside = taken }
        | (true | false), _ -> None
      end
    | Some _ | None -> None)

(* Replace the jump ending block [b] by a copy of the loop test, branching
   to [branch_to] and falling through to [b+1]. *)
let replace_jump func ~b ~(info : test_info) ~branch_to =
  let blocks = Func.blocks func in
  let label_of i = blocks.(i).Func.label in
  let cond =
    if branch_to = info.taken then info.cond else Rtl.negate_cond info.cond
  in
  let branch = Rtl.Branch (cond, label_of branch_to) in
  let stripped =
    match List.rev blocks.(b).Func.instrs with
    | Rtl.Jump _ :: rev -> List.rev rev
    | _ -> assert false
  in
  let out = Array.copy blocks in
  out.(b) <- { (blocks.(b)) with instrs = stripped @ info.body @ [ branch ] };
  Func.with_blocks func out

let try_block func g loops n b =
  let block = Func.block func b in
  match Func.terminator block with
  | Some (Rtl.Jump l) -> (
    match Func.index_of_label func l with
    | exception Not_found -> None
    | t when t = b -> None (* infinite loop *)
    | t -> (
      match header_test func g loops t with
      | None -> None
      | Some info ->
        let replaced branch_to =
          Some (replace_jump func ~b ~info ~branch_to, l, t, info)
        in
        if b + 1 >= n then None
        else if b + 1 = info.outside then
          (* The jump's fall-through position is the loop exit: the copy
             branches back into the loop (end-of-loop case, Table 1). *)
          replaced info.inside
        else if b + 1 = info.inside then
          (* The jump precedes the loop: the copy branches to the exit and
             falls into the body (rotated-for-loop case). *)
          replaced info.outside
        else None))
  | Some _ | None -> None

let run ?(log = Telemetry.Log.null) func =
  let fname = Func.name func in
  let changed = ref false in
  let continue_scan = ref true in
  let fn = ref func in
  (* Each replacement changes successor roles; rescan until quiescent. *)
  while !continue_scan do
    continue_scan := false;
    let func = !fn in
    let g = Cfg.make func in
    let dom = Dom.compute g in
    let loops = Loops.natural_loops g dom in
    let n = Func.num_blocks func in
    let rec scan b =
      if b < n then
        match try_block func g loops n b with
        | Some (f, target_label, t, info) ->
          Telemetry.Log.emit log (fun () ->
              Telemetry.Log.Replication_applied
                {
                  func = fname;
                  jump_from = Ir.Label.to_string (Func.block func b).label;
                  jump_to = Ir.Label.to_string target_label;
                  mode = "loop-test";
                  seq = [ t ];
                  (* The copy is the header's test: its body plus the
                     rewritten branch, minus the jump it replaces. *)
                  cost = List.length info.body;
                  loop_completed = false;
                });
          fn := f;
          changed := true;
          continue_scan := true
        | None -> scan (b + 1)
    in
    scan 0
  done;
  (!fn, !changed)
