(** JUMPS: generalized code replication (paper §4).

    One invocation scans the function's unconditional jumps (those present
    on entry) and replaces each with a replicated block sequence when legal:

    + build shortest-path tables (step 1);
    + for each jump in block [B] to target [T], form the two candidate
      sequences — {e favoring returns} (cheapest path from [T] to any
      return block) and {e favoring loops} (cheapest path from [T] back to
      the block positionally following [B]) — and order them by the
      configured heuristic (step 2);
    + complete natural loops entered by a sequence (step 3);
    + splice the copies, adjusting control flow ({!Replicate}) (steps 4–5);
    + roll the replication back if the flow graph became irreducible,
      trying the other candidate first (step 6).

    The driver re-invokes [run] until it reports no change, and once more
    with [allow_irreducible = true] as the final invocation (paper §5.1). *)

type heuristic =
  | Shorter  (** pick the candidate that adds fewer RTLs (default) *)
  | Favor_returns
  | Favor_loops

type config = {
  heuristic : heuristic;
  max_rtls : int option;
      (** cap on one replication sequence's size, in RTLs (paper section 6) *)
  allow_irreducible : bool;
      (** skip the reducibility check (final invocation only) *)
  size_cap : int;
      (** stop replicating when the function exceeds this many RTLs *)
  replicate_indirect : bool;
      (** allow sequences terminated by an indirect jump — the paper's
          section-6 extension (the jump table itself is shared) *)
}

val default_config : config

(** [run config func] returns the transformed function and whether anything
    changed.  With [log], every per-jump decision is reported: a
    [Replication_applied] event for each splice (with the chosen sequence,
    mode and cost) and a [Replication_rolled_back] event with the
    {!Telemetry.Log.reason} for each jump left in place.  With [budget],
    the per-jump loop calls {!Telemetry.Budget.check} before each attempt,
    so a passed deadline or external cancellation raises
    {!Telemetry.Budget.Exhausted} between attempts (never mid-splice — the
    function threaded so far is simply discarded by the caller). *)
val run :
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  config ->
  Flow.Func.t ->
  Flow.Func.t * bool

(** Statistics helper: labels of blocks ending in an unconditional [Jump]
    with their targets. *)
val uncond_jumps : Flow.Func.t -> (Ir.Label.t * Ir.Label.t) list

(** One replacement attempt for a specific jump (source-block label, target
    label); [None] when not replaceable.  Exposed for tests and debugging. *)
val try_replace :
  config -> Flow.Func.t -> Ir.Label.t * Ir.Label.t -> Flow.Func.t option

(** What would happen to one unconditional jump, without transforming. *)
type decision =
  | Replicated of {
      mode : string;  (** ["favor-returns"] or ["favor-loops"] *)
      seq : int list;  (** block indices of the replicated sequence *)
      cost : int;  (** RTLs the copy would add *)
      loop_completed : bool;  (** step-3 loop completion extended the copy *)
    }
  | Not_replicated of Telemetry.Log.reason

val decision_to_string : decision -> string

(** Classify every unconditional jump of [func] against [config] (default
    {!default_config}): the sequence a replication would take, or the
    concrete reason none is legal.  Pure — the function is not changed. *)
val explain :
  ?config:config ->
  Flow.Func.t ->
  ((Ir.Label.t * Ir.Label.t) * decision) list
