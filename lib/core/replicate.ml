open Ir
open Flow

type mode = Fallthrough_to of int | Ends_with_return

(* Split a block's instructions into body and optional terminator. *)
let split_terminator instrs =
  match List.rev instrs with
  | last :: rev_body when Rtl.is_transfer last -> (List.rev rev_body, Some last)
  | _ -> (instrs, None)

let splice ?repair_loop func ~after ~seq ~mode =
  assert (seq <> []);
  let blocks = Func.blocks func in
  let n = Array.length blocks in
  let seq_arr = Array.of_list seq in
  let len = Array.length seq_arr in
  (match mode with
  | Fallthrough_to f -> assert (f = after + 1 && f < n)
  | Ends_with_return -> ());
  (* Fresh labels for the copies. *)
  let copy_labels = Array.init len (fun _ -> Func.fresh_label func) in
  (* Original block index -> ascending positions in the sequence. *)
  let positions = Hashtbl.create 16 in
  Array.iteri
    (fun i bi ->
      Hashtbl.replace positions bi
        (match Hashtbl.find_opt positions bi with
        | Some ps -> ps @ [ i ]
        | None -> [ i ]))
    seq_arr;
  (* Redirect label [l] as seen from copy position [i]: prefer the first
     copy after [i], else the last one before it, else keep [l]. *)
  let retarget_from i l =
    match Func.index_of_label func l with
    | exception Not_found -> l
    | x -> (
      match Hashtbl.find_opt positions x with
      | None -> l
      | Some ps -> (
        match List.find_opt (fun p -> p > i) ps with
        | Some p -> copy_labels.(p)
        | None -> (
          match List.rev (List.filter (fun p -> p < i) ps) with
          | p :: _ -> copy_labels.(p)
          | [] -> l)))
  in
  (* Redirect a label for a block that was not copied: first copy wins. *)
  let retarget_outside l =
    match Func.index_of_label func l with
    | exception Not_found -> l
    | x -> (
      match Hashtbl.find_opt positions x with
      | Some (p :: _) -> copy_labels.(p)
      | Some [] | None -> l)
  in
  let label_of bi = blocks.(bi).Func.label in
  (* Positional fall-through successor in the original layout. *)
  let orig_ft bi =
    if Func.falls_through blocks.(bi) && bi + 1 < n then Some (bi + 1)
    else None
  in
  let make_copy i =
    let bi = seq_arr.(i) in
    let body, term = split_terminator blocks.(bi).Func.instrs in
    let intended_next =
      if i < len - 1 then Some seq_arr.(i + 1)
      else match mode with Fallthrough_to f -> Some f | Ends_with_return -> None
    in
    let target_idx l =
      match Func.index_of_label func l with
      | x -> Some x
      | exception Not_found -> None
    in
    let tail =
      match intended_next with
      | None ->
        (* Last copy of a favoring-returns sequence: copied verbatim. *)
        (match term with
        | Some Rtl.Ret -> [ Rtl.Ret ]
        | Some t -> [ t ]
        | None -> [])
      | Some nxt -> (
        match term with
        | Some (Rtl.Jump l) when target_idx l = Some nxt ->
          [] (* fall through to the next copy *)
        | Some (Rtl.Jump l) -> [ Rtl.Jump l ]
        | Some (Rtl.Branch (c, l)) when target_idx l = Some nxt -> (
          match orig_ft bi with
          | Some ft when ft = nxt ->
            (* Both edges reach the next copy: no branch needed. *)
            []
          | Some ft -> [ Rtl.Branch (Rtl.negate_cond c, label_of ft) ]
          | None ->
            (* A branch always falls through somewhere; keep it and jump. *)
            [ Rtl.Branch (c, l) ])
        | Some (Rtl.Branch (c, l)) -> (
          match orig_ft bi with
          | Some ft when ft = nxt -> [ Rtl.Branch (c, l) ]
          | Some ft ->
            (* Discontinuity (loop completion): restore both edges. *)
            [ Rtl.Branch (c, l); Rtl.Jump (label_of ft) ]
          | None -> [ Rtl.Branch (c, l) ])
        | Some Rtl.Ret -> [ Rtl.Ret ]
        | Some (Rtl.Ijump (r, tbl)) -> [ Rtl.Ijump (r, tbl) ]
        | Some t -> [ t ]
        | None -> (
          match orig_ft bi with
          | Some ft when ft = nxt -> []
          | Some ft -> [ Rtl.Jump (label_of ft) ]
          | None -> []))
    in
    let tail = List.map (Rtl.map_labels (retarget_from i)) tail in
    (* A discontinuity can need both a conditional branch and a jump; they
       must live in separate blocks. *)
    match tail with
    | [ (Rtl.Branch _ as br); (Rtl.Jump _ as j) ] ->
      [
        { Func.label = copy_labels.(i); instrs = body @ [ br ] };
        { Func.label = Func.fresh_label func; instrs = [ j ] };
      ]
    | _ -> [ { Func.label = copy_labels.(i); instrs = body @ tail } ]
  in
  let copies = Array.of_list (List.concat_map make_copy (List.init len Fun.id)) in
  (* Remove the unconditional jump ending [after]; it falls through into the
     first copy. *)
  let after_block =
    let body, term = split_terminator blocks.(after).Func.instrs in
    (match term with
    | Some (Rtl.Jump _) -> ()
    | _ ->
      Telemetry.Diag.error Telemetry.Diag.Internal ~func:(Func.name func)
        ~pass:"replicate" "splice: block %s does not end in Jump"
        (Label.to_string blocks.(after).Func.label));
    { (blocks.(after)) with instrs = body }
  in
  let out =
    Array.concat
      [
        Array.sub blocks 0 after;
        [| after_block |];
        copies;
        Array.sub blocks (after + 1) (n - after - 1);
      ]
  in
  (* Step 5 repair: loop blocks that were not copied but conditionally
     branch to a copied block now branch to the copy. *)
  (match repair_loop with
  | None -> ()
  | Some loop ->
    let seq_set = List.fold_left (fun s b -> Loops.Int_set.add b s) Loops.Int_set.empty seq in
    Loops.Int_set.iter
      (fun x ->
        if x <> after && not (Loops.Int_set.mem x seq_set) then begin
          let b = blocks.(x) in
          let body, term = split_terminator b.Func.instrs in
          match term with
          | Some (Rtl.Branch (c, l)) ->
            let l' = retarget_outside l in
            if not (Label.equal l l') then begin
              (* Find the block in [out] (position shifted if past the
                 splice) and rewrite its branch. *)
              let pos = if x <= after then x else x + Array.length copies in
              out.(pos) <- { b with instrs = body @ [ Rtl.Branch (c, l') ] }
            end
          | Some _ | None -> ()
        end)
      loop.Loops.body);
  Func.with_blocks func out
