open Flow

type path = { cost : int; blocks : int list }

let inf = max_int / 4

(* Replication-legal edges: no self loops, no paths through indirect
   jumps. *)
let edge_list func g =
  let n = Cfg.num_blocks g in
  let edges = Array.make n [] in
  for u = 0 to n - 1 do
    let b = Func.block func u in
    let through_ok =
      match Func.terminator b with
      | Some (Ir.Rtl.Ijump _) -> false
      | Some _ | None -> true
    in
    if through_ok then
      edges.(u) <- List.filter (fun v -> v <> u) (Cfg.succs g u)
  done;
  edges

let block_sizes func =
  Array.map Func.block_size (Func.blocks func)

(* The graph data every implementation shares: legal edges, their
   reversal (predecessor lists in ascending block order) and block
   sizes.  Path reconstruction runs over this, so two implementations
   that agree on distances agree on the chosen blocks. *)
type geometry = {
  sizes : int array;
  edges : int list array;
  preds : int list array;
}

let geometry func g =
  let edges = edge_list func g in
  let n = Array.length edges in
  let preds = Array.make n [] in
  for u = n - 1 downto 0 do
    List.iter (fun v -> preds.(v) <- u :: preds.(v)) edges.(u)
  done;
  { sizes = block_sizes func; edges; preds }

(* Canonical path reconstruction from a distance array ([dist u] = cost
   from the source up to but excluding [u]; the source itself counts as
   distance 0 even when a cycle leads back to it).  Walking backward
   from [dst], follow the lowest-numbered "tight" predecessor
   ([dist u + size u = dist v]) that keeps the path simple.  Every edge
   of a shortest path is tight, so a simple tight chain back to the
   source always exists; the backtracking only ever engages in the
   zero-size-block corner case where the greedy choice can close a
   zero-cost cycle and dead-end. *)
let reconstruct geo dist ~src ~dst =
  let d u = if u = src then 0 else dist u in
  if src = dst || d dst >= inf then None
  else begin
    let on_path = Array.make (Array.length geo.sizes) false in
    on_path.(dst) <- true;
    (* [suffix] holds the canonical blocks strictly after [v] (with
       [dst] itself excluded, as the paper's cost convention demands). *)
    let rec back v suffix =
      if v = src then Some (src :: suffix)
      else
        let dv = d v in
        let rec try_preds = function
          | [] -> None
          | u :: rest ->
            if (not on_path.(u)) && d u + geo.sizes.(u) = dv then begin
              on_path.(u) <- true;
              match back u (if v = dst then suffix else v :: suffix) with
              | Some _ as found -> found
              | None ->
                on_path.(u) <- false;
                try_preds rest
            end
            else try_preds rest
        in
        try_preds geo.preds.(v)
    in
    match back dst [] with
    | None -> None
    | Some blocks -> Some { cost = d dst; blocks }
  end

module All_pairs = struct
  type t = { geo : geometry; dist : int array array }

  let compute func g =
    let n = Cfg.num_blocks g in
    let geo = geometry func g in
    let dist = Array.make_matrix n n inf in
    for u = 0 to n - 1 do
      List.iter
        (fun v ->
          if geo.sizes.(u) < dist.(u).(v) then dist.(u).(v) <- geo.sizes.(u))
        geo.edges.(u)
    done;
    for k = 0 to n - 1 do
      for u = 0 to n - 1 do
        if dist.(u).(k) < inf then begin
          let du = dist.(u) and dk = dist.(k) in
          for v = 0 to n - 1 do
            if dk.(v) < inf then begin
              let d = du.(k) + dk.(v) in
              if d < du.(v) then du.(v) <- d
            end
          done
        end
      done
    done;
    { geo; dist }

  let path t ~src ~dst =
    let row = t.dist.(src) in
    reconstruct t.geo (fun u -> row.(u)) ~src ~dst
end

(* Dijkstra over the node-weighted graph: entering [v] from [u] costs
   [size u], so [dist v] = RTLs of the blocks from the source up to but
   excluding [v].  The priority queue is a binary heap of
   [d * n + node] keys — pops are by (distance, block index), wholly
   deterministic, and nothing allocates per relaxation. *)
let dijkstra geo ~src =
  let n = Array.length geo.sizes in
  let dist = Array.make n inf in
  dist.(src) <- 0;
  let heap = ref (Array.make 64 0) in
  let len = ref 0 in
  let push key =
    if !len = Array.length !heap then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !heap 0 bigger 0 !len;
      heap := bigger
    end;
    let h = !heap in
    let i = ref !len in
    incr len;
    h.(!i) <- key;
    while !i > 0 && h.((!i - 1) / 2) > h.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.(p) in
      h.(p) <- h.(!i);
      h.(!i) <- tmp;
      i := p
    done
  in
  let pop () =
    let h = !heap in
    let top = h.(0) in
    decr len;
    h.(0) <- h.(!len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < !len && h.(l) < h.(!smallest) then smallest := l;
      if r < !len && h.(r) < h.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.(!smallest) in
        h.(!smallest) <- h.(!i);
        h.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
  in
  push src (* d = 0 *);
  while !len > 0 do
    let key = pop () in
    let d = key / n and u = key mod n in
    if d <= dist.(u) then begin
      let nd = d + geo.sizes.(u) in
      List.iter
        (fun v ->
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            push ((nd * n) + v)
          end)
        geo.edges.(u)
    end
  done;
  dist

module Single_source = struct
  type t = { src : int; geo : geometry; dist : int array }

  let compute func g ~src =
    let geo = geometry func g in
    { src; geo; dist = dijkstra geo ~src }

  let path t ~dst =
    reconstruct t.geo (fun u -> t.dist.(u)) ~src:t.src ~dst
end

(* The production implementation: geometry once, one Dijkstra per
   queried source, memoized.  Sources are exactly the jump targets the
   JUMPS pass asks about, so unqueried blocks cost nothing — the paper's
   O(n³) Warshall table survives above only as the test oracle. *)
type t = { geo : geometry; cache : (int, int array) Hashtbl.t }

let create func g = { geo = geometry func g; cache = Hashtbl.create 16 }

let path t ~src ~dst =
  let dist =
    match Hashtbl.find_opt t.cache src with
    | Some dist -> dist
    | None ->
      let dist = dijkstra t.geo ~src in
      Hashtbl.add t.cache src dist;
      dist
  in
  reconstruct t.geo (fun u -> dist.(u)) ~src ~dst
