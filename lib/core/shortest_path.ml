open Flow

type path = { cost : int; blocks : int list }

let inf = max_int / 4

(* Replication-legal edges: no self loops, no paths through indirect
   jumps. *)
let edge_list func g =
  let n = Cfg.num_blocks g in
  let edges = Array.make n [] in
  for u = 0 to n - 1 do
    let b = Func.block func u in
    let through_ok =
      match Func.terminator b with
      | Some (Ir.Rtl.Ijump _) -> false
      | Some _ | None -> true
    in
    if through_ok then
      edges.(u) <- List.filter (fun v -> v <> u) (Cfg.succs g u)
  done;
  edges

let block_sizes func =
  Array.map Func.block_size (Func.blocks func)

module All_pairs = struct
  type t = { dist : int array array; next : int array array }

  let compute func g =
    let n = Cfg.num_blocks g in
    let sizes = block_sizes func in
    let edges = edge_list func g in
    let dist = Array.make_matrix n n inf in
    let next = Array.make_matrix n n (-1) in
    for u = 0 to n - 1 do
      List.iter
        (fun v ->
          if sizes.(u) < dist.(u).(v) then begin
            dist.(u).(v) <- sizes.(u);
            next.(u).(v) <- v
          end)
        edges.(u)
    done;
    for k = 0 to n - 1 do
      for u = 0 to n - 1 do
        if dist.(u).(k) < inf then
          for v = 0 to n - 1 do
            if dist.(k).(v) < inf then begin
              let d = dist.(u).(k) + dist.(k).(v) in
              if d < dist.(u).(v) then begin
                dist.(u).(v) <- d;
                next.(u).(v) <- next.(u).(k)
              end
            end
          done
      done
    done;
    { dist; next }

  let path t ~src ~dst =
    if src = dst || t.dist.(src).(dst) >= inf then None
    else begin
      let rec walk u acc =
        if u = dst then List.rev acc else walk t.next.(u).(dst) (u :: acc)
      in
      Some { cost = t.dist.(src).(dst); blocks = walk src [] }
    end
end

module Single_source = struct
  type t = { src : int; dist : int array; prev : int array }

  (* Dijkstra with node weights: entering block v from u costs size(u);
     dist.(v) = RTLs of blocks from src up to but excluding v. *)
  let compute func g ~src =
    let n = Cfg.num_blocks g in
    let sizes = block_sizes func in
    let edges = edge_list func g in
    let dist = Array.make n inf in
    let prev = Array.make n (-1) in
    let module Pq = Set.Make (struct
      type t = int * int

      let compare = compare
    end) in
    dist.(src) <- 0;
    let pq = ref (Pq.singleton (0, src)) in
    while not (Pq.is_empty !pq) do
      let ((d, u) as elt) = Pq.min_elt !pq in
      pq := Pq.remove elt !pq;
      if d <= dist.(u) then
        List.iter
          (fun v ->
            let nd = d + sizes.(u) in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              prev.(v) <- u;
              pq := Pq.add (nd, v) !pq
            end)
          edges.(u)
    done;
    { src; dist; prev }

  let path t ~dst =
    if dst = t.src || t.dist.(dst) >= inf then None
    else begin
      let rec walk v acc =
        if v = t.src then v :: acc else walk t.prev.(v) (v :: acc)
      in
      (* The path excludes dst itself. *)
      let blocks = walk t.prev.(dst) [] in
      Some { cost = t.dist.(dst); blocks }
    end
end

type impl =
  | Ap of All_pairs.t
  | Ss of {
      func : Flow.Func.t;
      g : Cfg.t;
      cache : (int, Single_source.t) Hashtbl.t;
    }

type t = impl

let create ?(all_pairs_limit = 250) func g =
  if Cfg.num_blocks g <= all_pairs_limit then Ap (All_pairs.compute func g)
  else Ss { func; g; cache = Hashtbl.create 16 }

let path t ~src ~dst =
  match t with
  | Ap ap -> All_pairs.path ap ~src ~dst
  | Ss { func; g; cache } ->
    let ss =
      match Hashtbl.find_opt cache src with
      | Some ss -> ss
      | None ->
        let ss = Single_source.compute func g ~src in
        Hashtbl.add cache src ss;
        ss
    in
    Single_source.path ss ~dst
