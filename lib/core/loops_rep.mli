(** LOOPS: loop-condition replication only (paper §5).

    The conventional optimization: an unconditional jump to a natural-loop
    header that ends in a conditional branch — either the jump at a loop's
    bottom back to its top test, or the jump preceding a rotated loop to its
    bottom test — is replaced by a copy of the header with the branch
    direction adjusted so the copy falls through to the jump's positional
    successor.  Removes one jump per loop entry or one jump per iteration,
    depending on the original layout. *)

(** Returns the transformed function and whether anything changed.  With
    [log], each replaced jump is reported as a [Replication_applied] event
    with mode ["loop-test"]. *)
val run : ?log:Telemetry.Log.t -> Flow.Func.t -> Flow.Func.t * bool
