(** The code-replication transformation (paper §4, steps 3–5).

    [splice] replaces the unconditional jump ending block [after] with
    copies of the blocks in [seq] (given by index into the current block
    array), placed positionally right after [after]:

    - consecutive sequence blocks are connected by fall-through: jumps to
      the next sequence block are deleted, conditional branches whose taken
      edge goes to the next sequence block are reversed (step 4);
    - branch targets that were themselves replicated are redirected to their
      copies, favoring forward copies over backward ones (step 5);
    - with [mode = Fallthrough_to f], the last copy falls through to
      original block [f], which must be the block positionally following
      [after];
    - with [mode = Ends_with_return], the last sequence block must end in a
      return or an indirect jump, which is copied verbatim (the latter is
      the paper's section-6 extension: an indirect jump may terminate a
      replication sequence; its jump table is shared, not copied);
    - with [repair_loop], conditional branches of loop blocks that were not
      copied but target a copied block are redirected to the copy
      (step 5's partial-overlap repair).

    The caller is responsible for checking reducibility afterwards and
    rolling back if needed (step 6). *)

type mode = Fallthrough_to of int | Ends_with_return

val splice :
  ?repair_loop:Flow.Loops.loop ->
  Flow.Func.t ->
  after:int ->
  seq:int list ->
  mode:mode ->
  Flow.Func.t
