open Ir
open Flow

type heuristic = Shorter | Favor_returns | Favor_loops

type config = {
  heuristic : heuristic;
  max_rtls : int option;
  allow_irreducible : bool;
  size_cap : int;
  replicate_indirect : bool;
}

let default_config =
  {
    heuristic = Shorter;
    max_rtls = None;
    allow_irreducible = false;
    size_cap = 100_000;
    replicate_indirect = true;
  }

let uncond_jumps func =
  Array.to_list (Func.blocks func)
  |> List.filter_map (fun (b : Func.block) ->
         match Func.terminator b with
         | Some (Rtl.Jump l) -> Some (b.label, l)
         | Some _ | None -> None)

(* A candidate replication: the block sequence, its splice mode, its cost
   in RTLs and whether step-3 loop completion extended it. *)
type candidate = {
  seq : int list;
  mode : Replicate.mode;
  cost : int;
  completed : bool;
}

let mode_name = function
  | Replicate.Ends_with_return -> "favor-returns"
  | Replicate.Fallthrough_to _ -> "favor-loops"

let seq_cost func seq =
  List.fold_left (fun n b -> n + Func.block_size (Func.block func b)) 0 seq

(* Step 3: when the sequence enters the header of a natural loop from
   outside it, include the entire loop in positional order. *)
let complete_loops func loops ~from_block seq =
  ignore func;
  let header_loop h =
    List.find_opt (fun (l : Loops.loop) -> l.header = h) loops
  in
  let rec go prev acc = function
    | [] -> List.rev acc
    | s :: rest -> (
      match header_loop s with
      | Some l when not (Loops.Int_set.mem prev l.body) ->
        (* Control enters the copy at the header, so rotate the positional
           order to start there: header, then the blocks after it, then the
           ones before it (wrapping).  When the header is positionally first
           — the paper's Figure 1 — this is plain positional order. *)
        let loop_blocks =
          let all = Loops.Int_set.elements l.body in
          let after = List.filter (fun x -> x > l.header) all in
          let before = List.filter (fun x -> x < l.header) all in
          (l.header :: after) @ before
        in
        (* Skip the path blocks inside this loop; they are covered by the
           complete copy.  [last_inside] keeps the edge source for the
           continuation. *)
        let rec skip last_inside = function
          | x :: xs when Loops.Int_set.mem x l.body -> skip x xs
          | xs -> (last_inside, xs)
        in
        let last_inside, rest' = skip s rest in
        go last_inside (List.rev_append loop_blocks acc) rest'
      | Some _ | None -> go s (s :: acc) rest)
  in
  go from_block [] seq

(* The innermost loop containing [b] that also contains a sequence block —
   the scope of step 5's overlap repair. *)
let repair_scope loops b seq =
  let candidates =
    List.filter
      (fun (l : Loops.loop) ->
        Loops.Int_set.mem b l.body
        && List.exists (fun s -> Loops.Int_set.mem s l.body) seq)
      loops
  in
  match Loops.innermost_first candidates with
  | l :: _ -> Some l
  | [] -> None

(* Blocks whose copy may terminate a replication sequence: returns always,
   indirect jumps under the section-6 extension (their successors are not
   copied; the shared jump table keeps pointing at the originals). *)
let terminal_blocks config func =
  let blocks = Func.blocks func in
  let out = ref [] in
  Array.iteri
    (fun i b ->
      match Func.terminator b with
      | Some Rtl.Ret -> out := i :: !out
      | Some (Rtl.Ijump _) when config.replicate_indirect -> out := i :: !out
      | Some _ | None -> ())
    blocks;
  List.rev !out

let candidates_for config func g sp loops ~b ~t =
  let n = Func.num_blocks func in
  ignore g;
  let size bi = Func.block_size (Func.block func bi) in
  (* Favoring returns: cheapest path from t to a return block, which is
     itself replicated too. *)
  let ret_cand =
    let best =
      List.fold_left
        (fun best r ->
          let this =
            if r = t then Some ([ t ], size t)
            else
              match Shortest_path.path sp ~src:t ~dst:r with
              | Some p -> Some (p.blocks @ [ r ], p.cost + size r)
              | None -> None
          in
          match best, this with
          | None, x | x, None -> x
          | Some (_, c1), Some (_, c2) -> if c2 < c1 then this else best)
        None (terminal_blocks config func)
    in
    Option.map
      (fun (seq, cost) ->
        { seq; mode = Replicate.Ends_with_return; cost; completed = false })
      best
  in
  (* Favoring loops: cheapest path from t back to the block positionally
     after b; the last block falls through to it. *)
  let loop_cand =
    if b + 1 >= n then None
    else begin
      let f = b + 1 in
      if t = f then None (* jump to next: branch chaining's job *)
      else
        match Shortest_path.path sp ~src:t ~dst:f with
        | Some p ->
          Some
            {
              seq = p.blocks;
              mode = Fallthrough_to f;
              cost = p.cost;
              completed = false;
            }
        | None -> None
    end
  in
  (* Each base candidate is tried plainly first; the loop-completed variant
     (step 3) is a fallback for when the plain copy would leave a loop with
     two entry points — step 6's reducibility check arbitrates. *)
  let with_completion c =
    let seq = complete_loops func loops ~from_block:b c.seq in
    if seq = c.seq then [ c ]
    else [ c; { c with seq; cost = seq_cost func seq; completed = true } ]
  in
  List.concat_map with_completion (List.filter_map Fun.id [ ret_cand; loop_cand ])

let order_candidates heuristic cands =
  let by_cost = List.sort (fun a b -> Int.compare a.cost b.cost) cands in
  match heuristic with
  | Shorter -> by_cost
  | Favor_returns ->
    List.stable_sort
      (fun a b ->
        match a.mode, b.mode with
        | Replicate.Ends_with_return, Replicate.Fallthrough_to _ -> -1
        | Replicate.Fallthrough_to _, Replicate.Ends_with_return -> 1
        | _ -> 0)
      by_cost
  | Favor_loops ->
    List.stable_sort
      (fun a b ->
        match a.mode, b.mode with
        | Replicate.Fallthrough_to _, Replicate.Ends_with_return -> -1
        | Replicate.Ends_with_return, Replicate.Fallthrough_to _ -> 1
        | _ -> 0)
      by_cost

(* The per-function analyses every replacement attempt needs.  They are
   only invalidated by an actual replacement, so the driver shares one
   instance across the (mostly failing or skipped) attempts in a scan. *)
type analyses = {
  g : Cfg.t;
  dom : Dom.t;
  loops : Loops.loop list;
  sp : Shortest_path.t;
}

let analyze func =
  let g = Cfg.make func in
  let dom = Dom.compute g in
  {
    g;
    dom;
    loops = Loops.natural_loops g dom;
    sp = Shortest_path.create func g;
  }

(* What one replacement attempt decided.  [Stale] means the jump named by
   the labels no longer exists (an earlier replacement in the same scan
   rewrote it) — nothing to decide, nothing to log. *)
type outcome =
  | Stale
  | Applied of Func.t * candidate
  | Rejected of Telemetry.Log.reason

let classify config func an (bl, tl) =
  let b =
    match Func.index_of_label func bl with
    | i -> Some i
    | exception Not_found -> None
  in
  match b with
  | None -> Stale
  | Some b -> (
    let block = Func.block func b in
    match Func.terminator block with
    | Some (Rtl.Jump l) when Label.equal l tl -> (
      match Func.index_of_label func tl with
      | exception Not_found -> Stale
      | t when t = b -> Rejected No_path (* self loop: infinite loop, leave it *)
      | t -> (
        let { g; loops; sp; _ } = Lazy.force an in
        let raw = candidates_for config func g sp loops ~b ~t in
        let capped =
          match config.max_rtls with
          | None -> raw
          | Some cap -> List.filter (fun c -> c.cost <= cap) raw
        in
        let cands =
          List.filter (fun c -> c.seq <> [])
            (order_candidates config.heuristic capped)
        in
        match cands with
        | [] ->
          if List.exists (fun c -> c.seq <> []) raw then
            (* Candidates existed but every one was over [max_rtls]. *)
            Rejected Size_cap
          else if
            (not config.replicate_indirect)
            && candidates_for { config with replicate_indirect = true } func g
                 sp loops ~b ~t
               <> []
          then Rejected Indirect_gated
          else Rejected No_path
        | _ :: _ ->
          let attempt c =
            let repair = repair_scope loops b c.seq in
            match
              Replicate.splice ?repair_loop:repair func ~after:b ~seq:c.seq
                ~mode:c.mode
            with
            | exception Invalid_argument _ -> `Splice_failed
            | func' ->
              if config.allow_irreducible then `Ok func'
              else begin
                let g' = Cfg.make func' in
                let dom' = Dom.compute g' in
                if Loops.is_reducible g' dom' then `Ok func' else `Irreducible
              end
          in
          let rec first_ok hit_irreducible = function
            | [] ->
              if hit_irreducible then Rejected Irreducible else Rejected No_path
            | c :: rest -> (
              match attempt c with
              | `Ok f -> Applied (f, c)
              | `Irreducible -> first_ok true rest
              | `Splice_failed -> first_ok hit_irreducible rest)
          in
          first_ok false cands))
    | Some _ | None -> Stale)

(* Attempt one replacement; returns the new function on success. *)
let try_replace_with config func an jump =
  match classify config func an jump with
  | Applied (f, _) -> Some f
  | Stale | Rejected _ -> None

let try_replace config func jump =
  try_replace_with config func (lazy (analyze func)) jump

(* Is the (bl -> tl) jump still present in [func]?  Guards the telemetry
   events so stale scan entries are not reported as decisions. *)
let jump_live func (bl, tl) =
  match Func.index_of_label func bl with
  | exception Not_found -> false
  | b -> (
    match Func.terminator (Func.block func b) with
    | Some (Rtl.Jump l) -> Label.equal l tl
    | Some _ | None -> false)

let run ?(log = Telemetry.Log.null) ?budget config func =
  let fname = Func.name func in
  let jumps = uncond_jumps func in
  let func = ref func in
  let changed = ref false in
  (* Analyses survive failed attempts; only a replacement invalidates. *)
  let an = ref (lazy (analyze !func)) in
  let labels (bl, tl) = (Label.to_string bl, Label.to_string tl) in
  List.iter
    (fun jump ->
      Option.iter Telemetry.Budget.check budget;
      if Func.num_instrs !func > config.size_cap then begin
        if jump_live !func jump then
          Telemetry.Log.emit log (fun () ->
              let jump_from, jump_to = labels jump in
              Telemetry.Log.Replication_rolled_back
                { func = fname; jump_from; jump_to; reason = Size_cap })
      end
      else
        match classify config !func !an jump with
        | Stale -> ()
        | Applied (f, c) ->
          Telemetry.Log.emit log (fun () ->
              let jump_from, jump_to = labels jump in
              Telemetry.Log.Replication_applied
                {
                  func = fname;
                  jump_from;
                  jump_to;
                  mode = mode_name c.mode;
                  seq = c.seq;
                  cost = c.cost;
                  loop_completed = c.completed;
                });
          func := f;
          changed := true;
          an := lazy (analyze f)
        | Rejected reason ->
          Telemetry.Log.emit log (fun () ->
              let jump_from, jump_to = labels jump in
              Telemetry.Log.Replication_rolled_back
                { func = fname; jump_from; jump_to; reason }))
    jumps;
  (!func, !changed)

(* --- Per-jump replication report (the CLI's [explain]) --- *)

type decision =
  | Replicated of {
      mode : string;
      seq : int list;
      cost : int;
      loop_completed : bool;
    }
  | Not_replicated of Telemetry.Log.reason

let decision_to_string = function
  | Replicated { mode; seq; cost; loop_completed } ->
    Printf.sprintf "replicable: %s copy of %d block%s (%d RTLs)%s" mode
      (List.length seq)
      (if List.length seq = 1 then "" else "s")
      cost
      (if loop_completed then " [loop completed]" else "")
  | Not_replicated reason -> (
    match reason with
    | Telemetry.Log.Irreducible ->
      "not replicable: every candidate leaves an irreducible flow graph"
    | Telemetry.Log.Size_cap ->
      "not replicable: over the size cap (function growth or max-rtls)"
    | Telemetry.Log.Indirect_gated ->
      "not replicable: candidates end in an indirect jump and indirect \
       replication is disabled"
    | Telemetry.Log.Loop_copied -> "replicable via a completed loop copy"
    | Telemetry.Log.No_path ->
      "not replicable: no candidate block sequence (self loop or no path \
       back to the fall-through/return)")

let explain ?(config = default_config) func =
  let an = lazy (analyze func) in
  let over_cap = Func.num_instrs func > config.size_cap in
  List.filter_map
    (fun jump ->
      if over_cap then Some (jump, Not_replicated Size_cap)
      else
        match classify config func an jump with
        | Stale -> None
        | Applied (_, c) ->
          Some
            ( jump,
              Replicated
                {
                  mode = mode_name c.mode;
                  seq = c.seq;
                  cost = c.cost;
                  loop_completed = c.completed;
                } )
        | Rejected reason -> Some (jump, Not_replicated reason))
    (uncond_jumps func)
