(** Shortest replication paths in the control-flow graph.

    The cost of a path is the number of RTLs in the traversed blocks —
    exactly the code-size increase its replication would cause.  Following
    the paper, [dist u v] sums the sizes of the blocks from [u] up to but
    {e excluding} [v], so the favoring-loops cost of replacing a jump to [t]
    that should rejoin at [f] is [dist t f], and the favoring-returns cost
    for return block [r] is [dist t r + size r].

    Edges excluded from paths (paper §4 step 1): self-loops and the outgoing
    edges of blocks ending in indirect jumps.

    Two interchangeable implementations are provided: Warshall/Floyd
    all-pairs (the paper's choice, O(n³)) and a single-source Dijkstra used
    for large functions.  They agree on distances; property tests check
    this. *)

type path = { cost : int; blocks : int list (** from source inclusive *) }

(** All-pairs tables via Floyd/Warshall. *)
module All_pairs : sig
  type t

  val compute : Flow.Func.t -> Flow.Cfg.t -> t

  (** Cheapest path from [src] to [dst], exclusive of [dst].
      [None] if unreachable. *)
  val path : t -> src:int -> dst:int -> path option
end

(** Single-source via Dijkstra. *)
module Single_source : sig
  type t

  val compute : Flow.Func.t -> Flow.Cfg.t -> src:int -> t

  val path : t -> dst:int -> path option
end

(** Uses all-pairs for functions up to [all_pairs_limit] blocks (default
    250), Dijkstra-per-source beyond, memoized per source. *)
type t

val create : ?all_pairs_limit:int -> Flow.Func.t -> Flow.Cfg.t -> t
val path : t -> src:int -> dst:int -> path option
