(** Shortest replication paths in the control-flow graph.

    The cost of a path is the number of RTLs in the traversed blocks —
    exactly the code-size increase its replication would cause.  Following
    the paper, [dist u v] sums the sizes of the blocks from [u] up to but
    {e excluding} [v], so the favoring-loops cost of replacing a jump to [t]
    that should rejoin at [f] is [dist t f], and the favoring-returns cost
    for return block [r] is [dist t r + size r].

    Edges excluded from paths (paper §4 step 1): self-loops and the outgoing
    edges of blocks ending in indirect jumps.

    All implementations share one canonical path reconstruction driven only
    by the distance array (lowest-numbered tight predecessor first), so any
    two that agree on distances return identical block sequences; property
    tests exploit this by checking the lazy Dijkstra against the
    Floyd/Warshall oracle. *)

type path = { cost : int; blocks : int list (** from source inclusive *) }

(** All-pairs tables via Floyd/Warshall — the paper's O(n³) formulation,
    kept as the test oracle. *)
module All_pairs : sig
  type t

  val compute : Flow.Func.t -> Flow.Cfg.t -> t

  (** Cheapest path from [src] to [dst], exclusive of [dst].
      [None] if unreachable. *)
  val path : t -> src:int -> dst:int -> path option
end

(** Single-source via Dijkstra. *)
module Single_source : sig
  type t

  val compute : Flow.Func.t -> Flow.Cfg.t -> src:int -> t

  val path : t -> dst:int -> path option
end

(** Lazy per-source Dijkstra, memoized: a source's distances are computed
    the first time a path from it is requested.  The JUMPS pass only ever
    queries jump targets, so most blocks never pay anything. *)
type t

val create : Flow.Func.t -> Flow.Cfg.t -> t
val path : t -> src:int -> dst:int -> path option
