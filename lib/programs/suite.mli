(** The paper's test set (Table 3): 14 C programs in the compiler's C
    subset, with bundled inputs and gcc-verified expected outputs.

    This file describes the generated [suite.ml]; regenerate it with
    [python3 tools/gen_programs.py] (requires gcc). *)

type benchmark = {
  name : string;
  clazz : string;  (** "Utility", "Benchmark" or "User code" *)
  description : string;
  source : string;  (** C-subset source text *)
  input : string;  (** stdin for the run *)
  expected_output : string;  (** stdout captured from gcc -funsigned-char *)
}

val all : benchmark list
val find : string -> benchmark option
