(** jumprepd: the compilation-as-a-service daemon behind
    [jumprepc serve].

    A single select loop owns the Unix-domain listening socket and every
    client connection; compute runs on the resident worker domains of a
    {!Harness.Pool.Service} whose supervisor pass the loop drives.
    Admission is bounded ([queue_cap], explicit [overloaded] rejections),
    execution is crash-isolated with per-request deadlines/retries/chaos,
    and SIGTERM (or a [drain] request) triggers a graceful,
    deadline-bounded drain.  See DESIGN.md "Daemon wire protocol". *)

(** An optional result cache plugged in by the CLI (the campaign
    store lives above this library, so the daemon sees it only as
    closures).  [rc_measure] may serve a measure payload from cache or
    delegate to the compute thunk (and persist the result);
    [rc_stats] feeds the [status] response's store gauges.  Both are
    called from worker domains concurrently — implementations must be
    thread-safe. *)
type result_cache = {
  rc_measure :
    source:string ->
    input:string ->
    machine:string ->
    (unit -> (Telemetry.Json.t, Ops.failure) result) ->
    (Telemetry.Json.t, Ops.failure) result;
  rc_stats : unit -> (string * int) list;
}

type config = {
  socket_path : string;  (** Unix-domain socket path (unlinked on exit) *)
  jobs : int;  (** resident worker domains *)
  queue_cap : int;  (** max requests in flight before [overloaded] *)
  drain_deadline : float;  (** seconds to finish in-flight work on drain *)
  idle_timeout : float;  (** close idle / half-open connections after this *)
  default_deadline : float option;
      (** per-request deadline when the qos omits one *)
  fuzz_out : string;  (** reproducer directory for [fuzz] requests *)
  trace : Telemetry.Trace.t option;
      (** record worker/supervisor lanes into this trace *)
  quiet : bool;  (** suppress lifecycle lines on stderr *)
  store : result_cache option;
      (** memoize measure payloads across requests (and daemon restarts) *)
}

(** jobs 1, queue cap 64, drain deadline 10s, idle timeout 30s, no
    default deadline, no trace. *)
val default_config : string -> config

type drain_result = {
  clean : bool;
      (** every in-flight request finished inside the drain deadline and
          every worker joined *)
  force_stopped : int;  (** requests abandoned at the drain deadline *)
}

(** Run the daemon until drained.  Binds and listens on
    [config.socket_path] — a stale socket file (nobody answers) is
    replaced, but if a daemon is already serving on it the call raises
    [Telemetry.Diag.Error] with an [io-error] diagnostic instead of
    stealing the endpoint.  Prints one
    [jumprepd: listening on ...] readiness line on stdout, serves until
    SIGTERM/SIGINT or a [drain] request, then drains and reports.
    Installs its own SIGTERM/SIGINT handlers (restored on exit) and
    ignores SIGPIPE. *)
val serve : config -> drain_result
