(* The operations behind both front doors.

   `jumprepc compile/measure/lint/explain --json` and the daemon's
   request handlers call the same payload builders here, so a daemon
   result frame is byte-identical to the one-shot CLI's stdout by
   construction — the equivalence the CI daemon leg asserts, not a
   property anyone has to maintain twice. *)

module Json = Telemetry.Json
module Diag = Telemetry.Diag

(* A failed operation: the typed diagnostic plus the exit code the
   one-shot CLI would have died with (1 front-end/pipeline, 2 runtime
   error, 124 budget).  The daemon maps the exit code onto a wire error
   code; the CLI maps it straight to [exit]. *)
type failure = { diag : Diag.t; exit_code : int }

let fail ?(exit_code = 1) diag = Error { diag; exit_code }

let make_opts ?(verify = false) ?inject_fault ?budget level =
  {
    Opt.Driver.default_options with
    level;
    verify_passes = verify;
    inject_fault;
    budget;
  }

(* Front-end failures as typed diagnostics with a file:line position —
   the same mapping (and message bytes) the CLI's error path prints. *)
let compile_source ?log ?(diags = ref []) ?verdicts opts machine ~path source =
  let err ?exit_code code fmt =
    Printf.ksprintf
      (fun message ->
        fail ?exit_code (Diag.make code ~func:"" ~pass:"" message))
      fmt
  in
  try Ok (Opt.Driver.compile ?log ~diags ?verdicts opts machine source) with
  | Frontend.Lexer.Error (msg, line) ->
    err Diag.Parse_error "%s:%d: lexical error: %s" path line msg
  | Frontend.Parser.Error (msg, line) ->
    err Diag.Parse_error "%s:%d: syntax error: %s" path line msg
  | Frontend.Codegen.Error msg -> err Diag.Semantic_error "%s: %s" path msg
  | Telemetry.Diag.Error d ->
    fail
      (Diag.make d.Diag.code ~func:d.Diag.func ~pass:d.Diag.pass
         (Printf.sprintf "%s: %s" path d.Diag.message))

let func_ujumps f =
  Array.fold_left
    (fun n b ->
      match Flow.Func.terminator b with
      | Some (Ir.Rtl.Jump _) | Some (Ir.Rtl.Ijump _) -> n + 1
      | Some _ | None -> n)
    0 (Flow.Func.blocks f)

(* --- compile: the `--stats-json` object --- *)

let compile_stats ~level ~(machine : Ir.Machine.t) prog =
  let asm = Sim.Asm.assemble machine prog in
  Json.Obj
    [
      ("level", Json.Str (Opt.Driver.level_name level));
      ("machine", Json.Str machine.Ir.Machine.short);
      ("static_instrs", Json.Int (Sim.Asm.static_instrs asm));
      ("static_ujumps", Json.Int (Sim.Asm.static_ujumps asm));
      ("static_nops", Json.Int (Sim.Asm.static_nops asm));
      ("code_bytes", Json.Int (Sim.Asm.code_bytes asm));
      ( "funcs",
        Json.Arr
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("name", Json.Str (Flow.Func.name f));
                   ("instrs", Json.Int (Flow.Func.num_instrs f));
                   ("blocks", Json.Int (Flow.Func.num_blocks f));
                   ("ujumps", Json.Int (func_ujumps f));
                 ])
             prog.Flow.Prog.funcs) );
    ]

let compile_payload ?log ?diags ?budget ~level ~machine ~path source =
  match
    compile_source ?log ?diags (make_opts ?budget level) machine ~path source
  with
  | Error _ as e -> e
  | Ok prog -> Ok (compile_stats ~level ~machine prog)

(* --- measure: the three-level comparison rows --- *)

let measure_rows ?log ?budget ?(verify = false) ?engine ~path ~name ~source
    ~input machine =
  let adhoc ?expected_output level =
    Harness.Measure.run_adhoc
      ~opts:(make_opts ~verify level)
      ?log ?budget ?engine ~name ~source ~input ?expected_output level machine
  in
  let err ?exit_code code fmt =
    Printf.ksprintf
      (fun message ->
        fail ?exit_code (Diag.make code ~func:"" ~pass:"" message))
      fmt
  in
  try
    (* The SIMPLE run is the reference output the other levels must
       match. *)
    let simple = adhoc Opt.Driver.Simple in
    Ok
      (simple
      :: List.map
           (fun level -> adhoc ~expected_output:simple.output level)
           [ Opt.Driver.Loops; Opt.Driver.Jumps ])
  with
  | Sim.Interp.Runtime_error msg ->
    err ~exit_code:2 Diag.Internal "%s: runtime error: %s" path msg
  | Frontend.Lexer.Error (msg, line) ->
    err Diag.Parse_error "%s:%d: lexical error: %s" path line msg
  | Frontend.Parser.Error (msg, line) ->
    err Diag.Parse_error "%s:%d: syntax error: %s" path line msg
  | Frontend.Codegen.Error msg -> err Diag.Semantic_error "%s: %s" path msg

let measure_json rows =
  Json.Arr (List.map (fun m -> Json.Raw (Harness.Measure.to_json m)) rows)

let measure_payload ?log ?budget ?verify ~path ~input machine source =
  match
    measure_rows ?log ?budget ?verify ~path ~name:(Filename.basename path)
      ~source ~input machine
  with
  | Error _ as e -> e
  | Ok rows -> Ok (measure_json rows)

(* --- lint: findings over the pre-allocation RTL --- *)

let lint_findings ?log ~level ~machine ~path source =
  (* Lint the pre-allocation RTL: virtual registers must survive so the
     uninitialized-read analysis can see them. *)
  let opts = { (make_opts level) with Opt.Driver.allocate = false } in
  let diags = ref [] in
  match compile_source ?log ~diags opts machine ~path source with
  | Error _ as e -> e
  | Ok prog ->
    (* Pipeline diagnostics (quarantined passes etc.) and lint findings
       share the rendering and the --strict policy. *)
    Ok (List.rev !diags @ Lint.check_prog prog)

let lint_json reports =
  Json.Arr
    (List.map
       (fun (t, findings) ->
         Json.Obj
           [
             ("target", Json.Str t);
             ( "findings",
               Json.Arr
                 (List.map (fun d -> Json.Raw (Diag.to_json d)) findings) );
           ])
       reports)

let lint_payload ~level ~machine ~path source =
  match lint_findings ~level ~machine ~path source with
  | Error _ as e -> e
  | Ok findings -> Ok (lint_json [ (path, findings) ])

(* --- certify: per-pass translation-validation verdicts --- *)

let certify_report ?log ?inject_fault ~level ~machine ~path source =
  let opts =
    { (make_opts ?inject_fault level) with Opt.Driver.certify = true }
  in
  let diags = ref [] in
  let verdicts = ref [] in
  match compile_source ?log ~diags ~verdicts opts machine ~path source with
  | Error _ as e -> e
  | Ok _prog -> Ok (List.rev !verdicts, List.rev !diags)

let certify_summary verdicts =
  List.fold_left
    (fun (c, u, r) (v : Tv.record) ->
      match v.Tv.verdict with
      | Tv.Certified -> (c + 1, u, r)
      | Tv.Unknown _ -> (c, u + 1, r)
      | Tv.Refuted _ -> (c, u, r + 1))
    (0, 0, 0) verdicts

let certify_json ~target ~level ~(machine : Ir.Machine.t) verdicts =
  let verdict_fields = function
    | Tv.Certified -> []
    | Tv.Unknown { reason; timeout } ->
      [ ("reason", Json.Str reason); ("timeout", Json.Bool timeout) ]
    | Tv.Refuted { reason; path } ->
      [
        ("reason", Json.Str reason);
        ("path", Json.Arr (List.map (fun p -> Json.Str p) path));
      ]
  in
  let certified, unknown, refuted = certify_summary verdicts in
  Json.Obj
    [
      ("target", Json.Str target);
      ("level", Json.Str (Opt.Driver.level_name level));
      ("machine", Json.Str machine.Ir.Machine.short);
      ( "verdicts",
        Json.Arr
          (List.map
             (fun (r : Tv.record) ->
               Json.Obj
                 (("func", Json.Str r.Tv.vfunc)
                 :: ("pass", Json.Str r.Tv.vpass)
                 :: ("verdict", Json.Str (Tv.verdict_name r.Tv.verdict))
                 :: verdict_fields r.Tv.verdict))
             verdicts) );
      ( "summary",
        Json.Obj
          [
            ("certified", Json.Int certified);
            ("unknown", Json.Int unknown);
            ("refuted", Json.Int refuted);
          ] );
    ]

(* --- explain: the per-function replication report --- *)

let explain_report ~level ~machine ~path source =
  (* Trace the whole compilation in memory, then audit what is left. *)
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  match compile_source ~log (make_opts level) machine ~path source with
  | Error _ as e -> e
  | Ok prog -> Ok (prog, Telemetry.Log.events log)

let explain_json prog events =
  (* The remaining jumps reuse the lint renderer: each decision is the
     same typed diagnostic `jumprepc lint --json` emits. *)
  Json.Arr
    (List.map
       (fun f ->
         let fname = Flow.Func.name f in
         let applied =
           List.length
             (List.filter
                (function
                  | Telemetry.Log.Replication_applied { func; _ } ->
                    String.equal func fname
                  | _ -> false)
                events)
         in
         Json.Obj
           [
             ("func", Json.Str fname);
             ("replicated", Json.Int applied);
             ( "remaining",
               Json.Arr
                 (List.map
                    (fun jd ->
                      Json.Raw
                        (Diag.to_json
                           (Lint.diag_of_decision ~func:fname ~pass:"explain"
                              jd)))
                    (Replication.Jumps.explain f)) );
           ])
       prog.Flow.Prog.funcs)

let explain_payload ~level ~machine ~path source =
  match explain_report ~level ~machine ~path source with
  | Error _ as e -> e
  | Ok (prog, events) -> Ok (explain_json prog events)
