(* jumprepd: the compilation-as-a-service front door.

   One select loop owns the Unix-domain listening socket and every
   client connection; compute runs on the resident worker domains of a
   [Harness.Pool.Service], whose supervisor pass ([Service.tick]) the
   loop drives.  The loop itself never blocks on a peer: reads and
   writes fire only when select says so, responses queue in per-
   connection outboxes, and a wedged client costs its connection (idle
   timeout), never the server.

   Robustness discipline, in order of the request's life:
   - admission: at most [queue_cap] requests in flight; beyond that the
     request is rejected with an explicit [overloaded] error the client
     can retry on — backpressure, not unbounded buffering;
   - execution: crash isolation, deadlines (cooperative cancel then
     abandon at 2x), retries and worker chaos are the pool supervisor's,
     per request instead of per batch;
   - drain: SIGTERM (or a [drain] request) stops accepting, answers new
     work with [draining], finishes what is in flight, flushes
     telemetry, and force-stops at the drain deadline. *)

module Json = Telemetry.Json
module Metrics = Telemetry.Metrics
module Service = Harness.Pool.Service

type result_cache = {
  rc_measure :
    source:string ->
    input:string ->
    machine:string ->
    (unit -> (Json.t, Ops.failure) result) ->
    (Json.t, Ops.failure) result;
  rc_stats : unit -> (string * int) list;
}

type config = {
  socket_path : string;
  jobs : int;
  queue_cap : int;
  drain_deadline : float;
  idle_timeout : float;
  default_deadline : float option;
  fuzz_out : string;
  trace : Telemetry.Trace.t option;
  quiet : bool;
  store : result_cache option;
}

let default_config socket_path =
  {
    socket_path;
    jobs = 1;
    queue_cap = 64;
    drain_deadline = 10.0;
    idle_timeout = 30.0;
    default_deadline = None;
    fuzz_out = "fuzz-failures";
    trace = None;
    quiet = false;
    store = None;
  }

(* What a worker hands back: the payload (or the CLI-equivalent failure)
   plus the request's telemetry lines, rendered on the worker so the
   supervisor loop only ships bytes. *)
type work = {
  w_payload : (Json.t, Ops.failure) result;
  w_events : string list;
}

type pending = {
  p_id : int;
  p_kind : string;
  p_telemetry : bool;
  p_t0 : float;
  p_handle : work Service.handle;
}

type conn = {
  c_fd : Unix.file_descr;
  c_num : int;
  c_dec : Protocol.decoder;
  c_out : Buffer.t;
  mutable c_sent : int;  (* bytes of [c_out] already written *)
  mutable c_pending : pending list;
  mutable c_last : float;  (* last byte in or out *)
  mutable c_eof : bool;  (* peer closed its write side *)
  mutable c_poisoned : bool;  (* protocol error: close once flushed *)
  mutable c_dead : bool;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  svc : Service.t;
  metrics : Metrics.t;
  mutable conns : conn list;
  mutable draining : bool;
  mutable drain_t0 : float;
  mutable conn_seq : int;
}

(* Signal handlers may only flip a flag; the loop notices on its next
   iteration. *)
let sig_drain = Atomic.make false

let say t fmt =
  Printf.ksprintf
    (fun s -> if not t.cfg.quiet then Printf.eprintf "jumprepd: %s\n%!" s)
    fmt

(* --- request execution (worker domain) --- *)

let fuzz_json (stats : Harness.Fuzz.stats) =
  Json.Obj
    [
      ("seeds_run", Json.Int stats.seeds_run);
      ( "failures",
        Json.Arr
          (List.map
             (fun (seed, (f : Harness.Fuzz.failure), path) ->
               Json.Obj
                 [
                   ("seed", Json.Int seed);
                   ("kind", Json.Str (Harness.Fuzz.kind_name f.kind));
                   ("config", Json.Str f.config);
                   ("detail", Json.Str f.detail);
                   ("reproducer", Json.Str path);
                 ])
             stats.failures) );
      ("aborted", Json.Int (List.length stats.aborted));
    ]

let run_request ~fuzz_out ~store (env : Protocol.envelope) budget =
  let qos = env.qos in
  let log =
    if qos.telemetry then Telemetry.Log.make Telemetry.Log.Memory
    else Telemetry.Log.null
  in
  (* The wall/growth budget is the CLI's degrade budget: replication
     backs off JUMPS -> LOOPS -> SIMPLE when it trips.  The pool's
     attempt budget (the qos deadline) cancels instead; the interpreter
     polls it on the measure path. *)
  let degrade =
    match (qos.wall_budget, qos.growth_budget) with
    | None, None -> None
    | deadline, growth -> Some (Telemetry.Budget.make ?deadline ?growth ())
  in
  let payload =
    match env.req with
    | Protocol.Compile { path; source; level; machine } ->
      Ops.compile_payload ~log ?budget:degrade ~level ~machine ~path source
    | Protocol.Measure { path; source; input; machine } -> (
      (* The campaign store memoizes whole measure payloads: a hit skips
         compile+run entirely (the cache is keyed on source bytes +
         machine + compiler fingerprint, so it can never go stale).
         Store bookkeeping is mutex-guarded inside the store — worker
         domains land here concurrently. *)
      let compute () =
        Ops.measure_payload ~log ~budget ~path ~input machine source
      in
      match store with
      | None -> compute ()
      | Some rc ->
        rc.rc_measure ~source ~input ~machine:machine.Ir.Machine.short compute)
    | Protocol.Lint { path; source; level; machine } ->
      Ops.lint_payload ~level ~machine ~path source
    | Protocol.Explain { path; source; level; machine } ->
      Ops.explain_payload ~level ~machine ~path source
    | Protocol.Fuzz { seeds; start; max_steps } ->
      let stats =
        Harness.Fuzz.campaign ~max_steps ~start ~seeds ~jobs:1
          ~out_dir:fuzz_out ()
      in
      Ok (fuzz_json stats)
    | Protocol.Status | Protocol.Ping | Protocol.Drain ->
      (* handled inline by the loop, never scheduled *)
      assert false
  in
  let w_events =
    if qos.telemetry then
      List.mapi
        (fun i ev -> Telemetry.Log.event_to_json ~seq:i ~t_ms:0.0 ev)
        (Telemetry.Log.events log)
    else []
  in
  { w_payload = payload; w_events }

(* --- responses --- *)

let send_response conn resp =
  Buffer.add_string conn.c_out
    (Protocol.encode_frame (Json.to_string (Protocol.response_to_json resp)))

let send_error t conn ~id code message =
  Metrics.incr t.metrics
    (Printf.sprintf "daemon.errors.%s" (Protocol.error_code_name code));
  send_response conn (Protocol.Error_resp { id; code; message })

let status_json t =
  Json.Obj
    [
      ("draining", Json.Bool t.draining);
      ("jobs", Json.Int t.cfg.jobs);
      ("queue_cap", Json.Int t.cfg.queue_cap);
      ("in_flight", Json.Int (Service.in_flight t.svc));
      ("lease_depth", Json.Int (Service.lease_depth t.svc));
      ("submitted", Json.Int (Service.submitted t.svc));
      ("connections", Json.Int (List.length t.conns));
      ( "store",
        match t.cfg.store with
        | None -> Json.Null
        | Some rc ->
          Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (rc.rc_stats ()))
      );
      ("metrics", Metrics.to_json t.metrics);
    ]

let start_drain t ~why =
  if not t.draining then begin
    t.draining <- true;
    t.drain_t0 <- Unix.gettimeofday ();
    Metrics.incr t.metrics "daemon.drains";
    say t "draining (%s): %d request(s) in flight, deadline %.1fs" why
      (Service.in_flight t.svc) t.cfg.drain_deadline
  end

(* --- admission (supervisor domain) --- *)

let handle_envelope t conn (env : Protocol.envelope) =
  let immediate payload =
    send_response conn
      (Protocol.Result
         { id = env.id; payload = Json.to_string payload; elapsed_ms = 0.0 })
  in
  match env.req with
  | Protocol.Ping -> immediate (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Status -> immediate (status_json t)
  | Protocol.Drain ->
    immediate (Json.Obj [ ("draining", Json.Bool true) ]);
    start_drain t ~why:"drain request"
  | _ ->
    if t.draining then
      send_error t conn ~id:env.id Protocol.Draining
        "server is draining; no new work accepted"
    else if Service.in_flight t.svc >= t.cfg.queue_cap then
      send_error t conn ~id:env.id Protocol.Overloaded
        (Printf.sprintf "admission queue full (%d in flight); retry later"
           t.cfg.queue_cap)
    else begin
      let deadline =
        match env.qos.deadline with
        | Some _ as d -> d
        | None -> t.cfg.default_deadline
      in
      let handle =
        Service.submit t.svc ?deadline ~retries:env.qos.retries
          ?chaos:env.qos.chaos
          ~label:
            (Printf.sprintf "%s-c%d-r%d"
               (Protocol.kind_name env.req)
               conn.c_num env.id)
          (run_request ~fuzz_out:t.cfg.fuzz_out ~store:t.cfg.store env)
      in
      Metrics.incr t.metrics "daemon.admitted";
      conn.c_pending <-
        conn.c_pending
        @ [
            {
              p_id = env.id;
              p_kind = Protocol.kind_name env.req;
              p_telemetry = env.qos.telemetry;
              p_t0 = Unix.gettimeofday ();
              p_handle = handle;
            };
          ]
    end

let finish t conn p outcome =
  let elapsed_ms = (Unix.gettimeofday () -. p.p_t0) *. 1e3 in
  Metrics.observe t.metrics "daemon.request_ms"
    ~buckets:Metrics.Buckets.time_ms elapsed_ms;
  match (outcome : work Harness.Pool.outcome) with
  | Harness.Pool.Done w ->
    if p.p_telemetry then
      List.iter
        (fun line -> send_response conn (Protocol.Telemetry { id = p.p_id; line }))
        w.w_events;
    (match w.w_payload with
    | Ok payload ->
      Metrics.incr t.metrics "daemon.completed";
      send_response conn
        (Protocol.Result
           { id = p.p_id; payload = Json.to_string payload; elapsed_ms })
    | Error (f : Ops.failure) ->
      let code =
        match f.exit_code with
        | 2 -> Protocol.Runtime_error
        | 124 -> Protocol.Deadline
        | _ -> Protocol.Bad_request
      in
      let message =
        (* A guest-program fault (exit code 2) prints bare in the
           one-shot CLI, with no diagnostic tag; keep the wire message
           aligned with those bytes. *)
        if f.exit_code = 2 then f.diag.Telemetry.Diag.message
        else Telemetry.Diag.to_string f.diag
      in
      send_error t conn ~id:p.p_id code message)
  | Harness.Pool.Crashed { exn; attempts; _ } ->
    send_error t conn ~id:p.p_id Protocol.Crashed
      (Printf.sprintf "request crashed after %d attempt%s: %s" attempts
         (if attempts = 1 then "" else "s")
         (Printexc.to_string exn))
  | Harness.Pool.Timed_out { elapsed; attempts } ->
    send_error t conn ~id:p.p_id Protocol.Deadline
      (Printf.sprintf "deadline expired after %.2fs (%d attempt%s)" elapsed
         attempts
         (if attempts = 1 then "" else "s"))

(* --- the loop --- *)

let close_conn t conn ~why =
  if not conn.c_dead then begin
    conn.c_dead <- true;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    (* Requests already on the pool keep running (their results are
       dropped at poll time); the supervisor's accounting is untouched. *)
    say t "connection %d closed (%s)%s" conn.c_num why
      (if conn.c_pending = [] then ""
       else
         Printf.sprintf ", %d response(s) dropped" (List.length conn.c_pending))
  end

let accept_loop t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.conn_seq <- t.conn_seq + 1;
      Metrics.incr t.metrics "daemon.connections";
      t.conns <-
        t.conns
        @ [
            {
              c_fd = fd;
              c_num = t.conn_seq;
              c_dec = Protocol.decoder ();
              c_out = Buffer.create 256;
              c_sent = 0;
              c_pending = [];
              c_last = Unix.gettimeofday ();
              c_eof = false;
              c_poisoned = false;
              c_dead = false;
            };
          ];
      go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (ECONNABORTED, _, _) ->
      (* The peer gave up between connect and accept; nothing lost. *)
      go ()
    | exception Unix.Unix_error ((EMFILE | ENFILE as e), _, _) ->
      (* Fd exhaustion: the pending connection stays queued; stop
         accepting this tick and let reaping/drains free descriptors.
         Crashing here would take every connected client down with us. *)
      Metrics.incr t.metrics "daemon.accept_errors";
      say t "accept: %s; backing off until descriptors free up"
        (Unix.error_message e)
    | exception Unix.Unix_error (e, _, _) ->
      Metrics.incr t.metrics "daemon.accept_errors";
      say t "accept failed: %s" (Unix.error_message e)
  in
  go ()

let read_conn t conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.c_fd buf 0 (Bytes.length buf) with
  | 0 -> conn.c_eof <- true
  | n ->
    conn.c_last <- Unix.gettimeofday ();
    Protocol.decoder_feed conn.c_dec (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn ~why:"read error"

(* Decode every complete frame the connection has buffered. *)
let drain_decoder t conn =
  let rec go () =
    if not (conn.c_dead || conn.c_poisoned) then
      match Protocol.decoder_next conn.c_dec with
      | Ok None -> ()
      | Ok (Some payload) ->
        (match Protocol.parse_envelope payload with
        | Ok env -> handle_envelope t conn env
        | Error msg ->
          (* The frame boundary survived, so the connection is still in
             sync: reject the request, keep the connection. *)
          send_error t conn ~id:0 Protocol.Bad_request msg);
        go ()
      | Error msg ->
        (* Framing is gone (oversized length): answer once and hang up
           after the flush. *)
        send_error t conn ~id:0 Protocol.Bad_request msg;
        conn.c_poisoned <- true
  in
  go ()

let write_conn t conn =
  let len = Buffer.length conn.c_out in
  if len > conn.c_sent then begin
    (* Copy out a bounded window, never the whole outbox: re-snapshotting
       a multi-MB buffer on every partial write is the same quadratic
       trap as the string-concat decoder was. *)
    let chunk_len = min (len - conn.c_sent) 65536 in
    let chunk = Bytes.unsafe_of_string (Buffer.sub conn.c_out conn.c_sent chunk_len) in
    match Unix.write conn.c_fd chunk 0 chunk_len with
    | n ->
      conn.c_sent <- conn.c_sent + n;
      conn.c_last <- Unix.gettimeofday ();
      if conn.c_sent = Buffer.length conn.c_out then begin
        Buffer.clear conn.c_out;
        conn.c_sent <- 0
      end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t conn ~why:"write error"
  end

let poll_pending t conn =
  let still =
    List.filter
      (fun p ->
        match Service.poll t.svc p.p_handle with
        | None -> true
        | Some outcome ->
          if not conn.c_dead then finish t conn p outcome;
          false)
      conn.c_pending
  in
  conn.c_pending <- still

let flushed conn = Buffer.length conn.c_out = conn.c_sent

let reap_conns t now =
  List.iter
    (fun c ->
      if not c.c_dead then
        if c.c_eof && c.c_pending = [] && flushed c then
          (* Peer finished sending and owes us nothing: a normal
             hang-up.  (EOF with responses still pending keeps the
             connection: the peer may have only closed its write side.) *)
          close_conn t c ~why:"peer closed"
        else if c.c_poisoned && flushed c then
          close_conn t c ~why:"protocol error"
        else if
          c.c_pending = []
          && now -. c.c_last > t.cfg.idle_timeout
        then
          (* Covers both idle keep-alives and half-open peers stuck
             mid-frame (a truncated frame never completes, so it never
             becomes a pending request). *)
          close_conn t c
            ~why:
              (if Protocol.decoder_pending c.c_dec > 0 then
                 "half-open timeout"
               else "idle timeout"))
    t.conns;
  t.conns <- List.filter (fun c -> not c.c_dead) t.conns

type drain_result = { clean : bool; force_stopped : int }

let serve cfg =
  (* A leftover socket file is only ours to replace if no daemon answers
     on it: unlinking a live endpoint would silently steal the address
     and orphan the running server.  A connection refused means the
     previous owner is gone (a stale file); anything else refuses. *)
  if Sys.file_exists cfg.socket_path then begin
    let probe = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
    let verdict =
      match Unix.connect probe (ADDR_UNIX cfg.socket_path) with
      | () -> `Live
      | exception Unix.Unix_error (ECONNREFUSED, _, _) -> `Stale
      | exception Unix.Unix_error (ENOENT, _, _) -> `Gone
      | exception Unix.Unix_error (e, _, _) -> `Other (Unix.error_message e)
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    let refuse detail =
      raise
        (Telemetry.Diag.Error
           (Telemetry.Diag.make Telemetry.Diag.Io_error ~func:"" ~pass:""
              (Printf.sprintf "%s: %s" cfg.socket_path detail)))
    in
    match verdict with
    | `Live -> refuse "a daemon is already serving on this socket"
    | `Stale -> Unix.unlink cfg.socket_path
    | `Gone -> ()
    | `Other e -> refuse (Printf.sprintf "refusing to replace this path (%s)" e)
  end;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Atomic.set sig_drain false;
  let on_signal _ = Atomic.set sig_drain true in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind listen_fd (ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let t =
    {
      cfg;
      listen_fd;
      svc = Service.create ~jobs:cfg.jobs ?trace:cfg.trace ();
      metrics = Metrics.create ();
      conns = [];
      draining = false;
      drain_t0 = 0.0;
      conn_seq = 0;
    }
  in
  (* The readiness line the CI leg (and any supervisor) waits for. *)
  Printf.printf "jumprepd: listening on %s (jobs=%d, queue-cap=%d)\n%!"
    cfg.socket_path cfg.jobs cfg.queue_cap;
  let force_stop = ref false in
  let finished () =
    t.draining
    && (Service.in_flight t.svc = 0 || !force_stop)
    && List.for_all (fun c -> flushed c) t.conns
  in
  let rec loop () =
    if Atomic.exchange sig_drain false then start_drain t ~why:"signal";
    if t.draining && not !force_stop
       && Unix.gettimeofday () -. t.drain_t0 > t.cfg.drain_deadline
    then begin
      force_stop := true;
      say t "drain deadline expired with %d request(s) in flight"
        (Service.in_flight t.svc)
    end;
    if not (finished ()) then begin
      let live = List.filter (fun c -> not c.c_dead) t.conns in
      let rfds =
        (if t.draining then [] else [ t.listen_fd ])
        @ List.filter_map
            (fun c -> if c.c_eof then None else Some c.c_fd)
            live
      in
      let wfds =
        List.filter_map (fun c -> if flushed c then None else Some c.c_fd) live
      in
      let readable, writable, _ =
        try Unix.select rfds wfds [] 0.01
        with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.listen_fd readable then accept_loop t;
      List.iter
        (fun c -> if List.mem c.c_fd readable then read_conn t c)
        live;
      List.iter (fun c -> drain_decoder t c) live;
      Service.tick t.svc;
      List.iter (fun c -> poll_pending t c) t.conns;
      Metrics.set t.metrics "daemon.queue_depth"
        (float_of_int (Service.in_flight t.svc));
      List.iter
        (fun c ->
          if (not c.c_dead) && (List.mem c.c_fd writable || not (flushed c))
          then write_conn t c)
        t.conns;
      reap_conns t (Unix.gettimeofday ());
      loop ()
    end
  in
  loop ();
  (* Shutdown: the loop only exits draining, with in-flight work done
     (or force-stopped past the deadline) and every outbox flushed. *)
  let stragglers = if !force_stop then Service.in_flight t.svc else 0 in
  let joined = Service.shutdown ~deadline:2.0 t.svc in
  List.iter (fun c -> close_conn t c ~why:"server stopped") t.conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  Printf.printf
    "jumprepd: drained: %d request(s) served, %d abandoned, workers %s\n%!"
    (Metrics.counter_value t.metrics "daemon.completed")
    stragglers
    (if joined then "joined" else "left behind");
  { clean = (not !force_stop) && joined; force_stopped = stragglers }
