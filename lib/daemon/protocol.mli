(** The jumprepd wire protocol (see DESIGN.md "Daemon wire protocol").

    Frames are a 4-byte big-endian payload length followed by that many
    bytes of one [Telemetry.Json] document, capped at {!max_frame}.  A
    request is one {!envelope} per frame; the server answers with zero or
    more [Telemetry] frames then exactly one [Result]/[Error_resp] frame
    carrying the request id. *)

(** Hard cap on a frame payload (16 MiB).  A peer announcing more is a
    protocol error, not an allocation. *)
val max_frame : int

(** [encode_frame payload] is the 4-byte header plus [payload].
    @raise Invalid_argument past {!max_frame}. *)
val encode_frame : string -> string

(** Incremental frame decoder.  Feed it arbitrary byte chunks; it yields
    complete payloads in order.  It never raises on wire input: an
    oversized length poisons the decoder and every later call returns
    the same [Error]. *)
type decoder

val decoder : unit -> decoder
val decoder_feed : decoder -> string -> unit

(** Bytes buffered but not yet returned as a frame (a non-zero value at
    connection close means a truncated frame). *)
val decoder_pending : decoder -> int

(** [Ok (Some payload)] when a complete frame is buffered, [Ok None] when
    more bytes are needed, [Error _] once poisoned. *)
val decoder_next : decoder -> (string option, string) result

(** Per-request quality-of-service knobs, all optional on the wire.
    [deadline] bounds each attempt's wall clock (cooperative cancel,
    abandon at 2x); [wall_budget]/[growth_budget] bound the compile
    itself and degrade JUMPS toward SIMPLE instead of erroring; [retries]
    reschedules crashed/timed-out attempts; [chaos] injects worker
    faults ({!Harness.Pool.chaos} grammar); [telemetry] streams the
    request's JSONL log back before the result. *)
type qos = {
  deadline : float option;
  wall_budget : float option;
  growth_budget : int option;
  retries : int;
  chaos : Harness.Pool.chaos option;
  telemetry : bool;
}

val default_qos : qos

type request =
  | Compile of {
      path : string;
      source : string;
      level : Opt.Driver.level;
      machine : Ir.Machine.t;
    }
  | Measure of {
      path : string;
      source : string;
      input : string;
      machine : Ir.Machine.t;
    }
  | Lint of {
      path : string;
      source : string;
      level : Opt.Driver.level;
      machine : Ir.Machine.t;
    }
  | Explain of {
      path : string;
      source : string;
      level : Opt.Driver.level;
      machine : Ir.Machine.t;
    }
  | Fuzz of { seeds : int; start : int; max_steps : int }
  | Status  (** server metrics snapshot *)
  | Ping
  | Drain  (** begin graceful drain, as if SIGTERM *)

type envelope = { id : int; qos : qos; req : request }

(** ["compile"], ["measure"], ... — the envelope's ["kind"] field. *)
val kind_name : request -> string

val envelope_to_json : envelope -> Telemetry.Json.t

(** Strict validation: missing/mistyped fields, unknown kinds, oversized
    sources, and out-of-range QoS values are all [Error] — the server
    maps them to [Bad_request], never an exception. *)
val envelope_of_json : Telemetry.Json.t -> (envelope, string) result

(** Parse + validate one request payload. *)
val parse_envelope : string -> (envelope, string) result

type error_code =
  | Overloaded  (** admission queue full; retry later *)
  | Draining  (** server is shutting down; no new work *)
  | Bad_request  (** unparseable or invalid request *)
  | Crashed  (** every attempt of the request crashed *)
  | Deadline  (** every attempt hit the request deadline *)
  | Runtime_error  (** the program itself faulted (typed diagnostic) *)
  | Internal  (** unexpected server-side failure *)

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

(** A result's [payload] is the rendered JSON document, carried as an
    opaque string and printed verbatim by the client — re-parsing and
    re-rendering would perturb float formatting and break the
    byte-identity contract with the one-shot CLI. *)
type response =
  | Telemetry of { id : int; line : string }
  | Result of { id : int; payload : string; elapsed_ms : float }
  | Error_resp of { id : int; code : error_code; message : string }

val response_to_json : response -> Telemetry.Json.t
val response_of_json : Telemetry.Json.t -> (response, string) result
val parse_response : string -> (response, string) result

(** Connection-level chaos, injected client-side: [disconnect] closes the
    socket mid-frame, [slowloris] dribbles the request one byte at a
    time, [garbage] corrupts the payload so it cannot parse.  Like pool
    chaos, the draw is a pure function of ([conn_seed], request index):
    campaigns reproduce exactly. *)
type conn_chaos = {
  disconnect : float;
  slowloris : float;
  garbage : float;
  conn_seed : int;
}

(** Parse [--chaos disconnect|slowloris|garbage[:RATE],seed:N] (rates
    default 0.1, seed defaults 1). *)
val conn_chaos_of_string : string -> (conn_chaos, string) result

(** The fault drawn for request number [req], if any. *)
val conn_fault :
  conn_chaos -> req:int -> [ `Disconnect | `Slowloris | `Garbage ] option
