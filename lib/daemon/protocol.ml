(* The jumprepd wire protocol: length-prefixed Telemetry.Json frames over
   a Unix-domain socket.

   Frame   = 4-byte big-endian payload length, then that many bytes of
             one JSON document.  The length is capped (MAX_FRAME): a
             peer announcing more is a protocol error, not an allocation.
   Request = one envelope object per frame (see [envelope_of_json]).
   Reply   = zero or more telemetry frames, then exactly one result or
             error frame carrying the request's id.

   The decoder is incremental and never raises on wire input: feed it
   whatever bytes arrive, and it yields complete payloads or a typed
   error that poisons the connection (the server closes it).  That makes
   the codec directly fuzzable — see test_daemon's mutation campaign. *)

module Json = Telemetry.Json

let max_frame = 16 * 1024 * 1024
let header_len = 4

let encode_frame payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Protocol.encode_frame: %d bytes > max" n);
  let b = Bytes.create (header_len + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

(* --- incremental decoder --- *)

(* Arriving bytes accumulate in a [Buffer]; consumption advances an
   offset instead of rebuilding an immutable string per read, so feeding
   a near-max frame in 64KB reads costs O(frame) total, not O(frame^2)
   on the single-threaded event loop.  The consumed prefix is dropped
   once it outweighs the remainder, which keeps both memory and
   compaction copying proportional to the unconsumed bytes. *)
type decoder = {
  buf : Buffer.t;  (* everything fed, minus compactions *)
  mutable off : int;  (* consumed prefix of [buf] *)
  mutable dead : string option;  (* first protocol error, if any *)
}

let decoder () = { buf = Buffer.create 1024; off = 0; dead = None }

let decoder_feed d s =
  if d.dead = None && s <> "" then Buffer.add_string d.buf s

(* Bytes buffered but not yet returned as a frame. *)
let decoder_pending d = Buffer.length d.buf - d.off

let compact d =
  let len = Buffer.length d.buf in
  if d.off = len then begin
    Buffer.clear d.buf;
    d.off <- 0
  end
  else if d.off >= len - d.off then begin
    let rest = Buffer.sub d.buf d.off (len - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let decoder_next d =
  match d.dead with
  | Some e -> Error e
  | None ->
    let avail = decoder_pending d in
    if avail < header_len then Ok None
    else begin
      let byte i = Char.code (Buffer.nth d.buf (d.off + i)) in
      let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
      if n > max_frame then begin
        let e = Printf.sprintf "frame length %d exceeds %d-byte cap" n max_frame in
        d.dead <- Some e;
        Error e
      end
      else if avail < header_len + n then Ok None
      else begin
        let payload = Buffer.sub d.buf (d.off + header_len) n in
        d.off <- d.off + header_len + n;
        compact d;
        Ok (Some payload)
      end
    end

(* --- requests --- *)

type qos = {
  deadline : float option;
  wall_budget : float option;
  growth_budget : int option;
  retries : int;
  chaos : Harness.Pool.chaos option;
  telemetry : bool;
}

let default_qos =
  {
    deadline = None;
    wall_budget = None;
    growth_budget = None;
    retries = 0;
    chaos = None;
    telemetry = false;
  }

type request =
  | Compile of {
      path : string;
      source : string;
      level : Opt.Driver.level;
      machine : Ir.Machine.t;
    }
  | Measure of {
      path : string;
      source : string;
      input : string;
      machine : Ir.Machine.t;
    }
  | Lint of {
      path : string;
      source : string;
      level : Opt.Driver.level;
      machine : Ir.Machine.t;
    }
  | Explain of {
      path : string;
      source : string;
      level : Opt.Driver.level;
      machine : Ir.Machine.t;
    }
  | Fuzz of { seeds : int; start : int; max_steps : int }
  | Status
  | Ping
  | Drain

type envelope = { id : int; qos : qos; req : request }

let kind_name = function
  | Compile _ -> "compile"
  | Measure _ -> "measure"
  | Lint _ -> "lint"
  | Explain _ -> "explain"
  | Fuzz _ -> "fuzz"
  | Status -> "status"
  | Ping -> "ping"
  | Drain -> "drain"

let qos_to_json q =
  let fields = [] in
  let fields =
    if q.telemetry then ("telemetry", Json.Bool true) :: fields else fields
  in
  let fields =
    match q.chaos with
    | Some c ->
      ( "chaos",
        Json.Str
          (Printf.sprintf "crash:%g,hang:%g,alloc:%g,seed:%d" c.crash c.hang
             c.alloc c.chaos_seed) )
      :: fields
    | None -> fields
  in
  let fields =
    if q.retries <> 0 then ("retries", Json.Int q.retries) :: fields else fields
  in
  let fields =
    match q.growth_budget with
    | Some g -> ("growth_budget", Json.Int g) :: fields
    | None -> fields
  in
  let fields =
    match q.wall_budget with
    | Some w -> ("wall_budget", Json.Float w) :: fields
    | None -> fields
  in
  let fields =
    match q.deadline with
    | Some d -> ("deadline", Json.Float d) :: fields
    | None -> fields
  in
  Json.Obj fields

let envelope_to_json e =
  let base =
    [ ("id", Json.Int e.id); ("kind", Json.Str (kind_name e.req)) ]
  in
  let qos =
    match qos_to_json e.qos with Json.Obj [] -> [] | q -> [ ("qos", q) ]
  in
  let body =
    match e.req with
    | Compile { path; source; level; machine } ->
      [
        ("path", Json.Str path);
        ("source", Json.Str source);
        ("level", Json.Str (Opt.Driver.level_name level));
        ("machine", Json.Str machine.Ir.Machine.short);
      ]
    | Measure { path; source; input; machine } ->
      [
        ("path", Json.Str path);
        ("source", Json.Str source);
        ("input", Json.Str input);
        ("machine", Json.Str machine.Ir.Machine.short);
      ]
    | Lint { path; source; level; machine }
    | Explain { path; source; level; machine } ->
      [
        ("path", Json.Str path);
        ("source", Json.Str source);
        ("level", Json.Str (Opt.Driver.level_name level));
        ("machine", Json.Str machine.Ir.Machine.short);
      ]
    | Fuzz { seeds; start; max_steps } ->
      [
        ("seeds", Json.Int seeds);
        ("start", Json.Int start);
        ("max_steps", Json.Int max_steps);
      ]
    | Status | Ping | Drain -> []
  in
  Json.Obj (base @ body @ qos)

(* Strict field readers: a missing or mistyped field is a [Bad_request],
   never an exception. *)
let str_field j name =
  match Option.bind (Json.member name j) Json.get_string with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S field" name)

let int_field ?default j name =
  match Json.member name j with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing %S field" name))
  | Some v -> (
    match Json.get_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "non-integer %S field" name))

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let level_of_json j =
  let* s = str_field j "level" in
  match Opt.Driver.level_of_string s with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "unknown level %S" s)

let machine_of_json j =
  let* s = str_field j "machine" in
  match Ir.Machine.of_short s with
  | Some m -> Ok m
  | None -> Error (Printf.sprintf "unknown machine %S" s)

let qos_of_json j =
  match Json.member "qos" j with
  | None -> Ok default_qos
  | Some q ->
    let float_field name =
      match Json.member name q with
      | None -> Ok None
      | Some v -> (
        match Json.get_float v with
        | Some f when f > 0. -> Ok (Some f)
        | Some _ -> Error (Printf.sprintf "%S must be positive" name)
        | None -> Error (Printf.sprintf "non-numeric %S field" name))
    in
    let* deadline = float_field "deadline" in
    let* wall_budget = float_field "wall_budget" in
    let* growth_budget =
      match Json.member "growth_budget" q with
      | None -> Ok None
      | Some v -> (
        match Json.get_int v with
        | Some g when g >= 0 -> Ok (Some g)
        | _ -> Error "non-negative integer \"growth_budget\" expected")
    in
    let* retries = int_field ~default:0 q "retries" in
    let* chaos =
      match Json.member "chaos" q with
      | None -> Ok None
      | Some v -> (
        match Json.get_string v with
        | None -> Error "non-string \"chaos\" field"
        | Some s -> (
          match Harness.Pool.chaos_of_string s with
          | Ok c -> Ok (Some c)
          | Error e -> Error e))
    in
    let telemetry =
      Option.bind (Json.member "telemetry" q) Json.get_bool
      |> Option.value ~default:false
    in
    if retries < 0 || retries > 10 then Error "\"retries\" must be in 0..10"
    else Ok { deadline; wall_budget; growth_budget; retries; chaos; telemetry }

let envelope_of_json j =
  match j with
  | Json.Obj _ ->
    let* id = int_field j "id" in
    if id <= 0 then Error "\"id\" must be a positive integer"
    else
      let* kind = str_field j "kind" in
      let* qos = qos_of_json j in
      let source_req make =
        let* path = str_field j "path" in
        let* source = str_field j "source" in
        if String.length source > max_frame / 2 then Error "oversized source"
        else make path source
      in
      let* req =
        match kind with
        | "compile" ->
          source_req (fun path source ->
              let* level = level_of_json j in
              let* machine = machine_of_json j in
              Ok (Compile { path; source; level; machine }))
        | "measure" ->
          source_req (fun path source ->
              let* machine = machine_of_json j in
              let input =
                Option.bind (Json.member "input" j) Json.get_string
                |> Option.value ~default:""
              in
              Ok (Measure { path; source; input; machine }))
        | "lint" ->
          source_req (fun path source ->
              let* level = level_of_json j in
              let* machine = machine_of_json j in
              Ok (Lint { path; source; level; machine }))
        | "explain" ->
          source_req (fun path source ->
              let* level = level_of_json j in
              let* machine = machine_of_json j in
              Ok (Explain { path; source; level; machine }))
        | "fuzz" ->
          let* seeds = int_field ~default:10 j "seeds" in
          let* start = int_field ~default:0 j "start" in
          let* max_steps = int_field ~default:3_000_000 j "max_steps" in
          if seeds < 1 || seeds > 1000 then Error "\"seeds\" must be in 1..1000"
          else Ok (Fuzz { seeds; start; max_steps })
        | "status" -> Ok Status
        | "ping" -> Ok Ping
        | "drain" -> Ok Drain
        | k -> Error (Printf.sprintf "unknown request kind %S" k)
      in
      Ok { id; qos; req }
  | _ -> Error "request is not a JSON object"

let parse_envelope payload =
  match Json.parse payload with
  | Error e -> Error e
  | Ok j -> envelope_of_json j

(* --- responses --- *)

type error_code =
  | Overloaded  (** admission queue full; retry later *)
  | Draining  (** server is shutting down; no new work *)
  | Bad_request  (** unparseable or invalid request *)
  | Crashed  (** every attempt of the request crashed *)
  | Deadline  (** every attempt hit the request deadline *)
  | Runtime_error  (** the simulated program faulted *)
  | Internal  (** unexpected server-side failure *)

let error_code_name = function
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Bad_request -> "bad-request"
  | Crashed -> "crashed"
  | Deadline -> "deadline"
  | Runtime_error -> "runtime-error"
  | Internal -> "internal"

let error_code_of_name = function
  | "overloaded" -> Some Overloaded
  | "draining" -> Some Draining
  | "bad-request" -> Some Bad_request
  | "crashed" -> Some Crashed
  | "deadline" -> Some Deadline
  | "runtime-error" -> Some Runtime_error
  | "internal" -> Some Internal
  | _ -> None

(* A result's [payload] is the *rendered* JSON document, carried as a
   string: the client prints it verbatim, so the bytes a daemon round
   trip produces are exactly the one-shot CLI's stdout — re-parsing and
   re-rendering would perturb float formatting. *)
type response =
  | Telemetry of { id : int; line : string }
  | Result of { id : int; payload : string; elapsed_ms : float }
  | Error_resp of { id : int; code : error_code; message : string }

let response_to_json = function
  | Telemetry { id; line } ->
    Json.Obj
      [
        ("id", Json.Int id);
        ("type", Json.Str "telemetry");
        ("line", Json.Str line);
      ]
  | Result { id; payload; elapsed_ms } ->
    Json.Obj
      [
        ("id", Json.Int id);
        ("type", Json.Str "result");
        ("elapsed_ms", Json.Float elapsed_ms);
        ("payload", Json.Str payload);
      ]
  | Error_resp { id; code; message } ->
    Json.Obj
      [
        ("id", Json.Int id);
        ("type", Json.Str "error");
        ("code", Json.Str (error_code_name code));
        ("message", Json.Str message);
      ]

let response_of_json j =
  let* id = int_field j "id" in
  let* ty = str_field j "type" in
  match ty with
  | "telemetry" ->
    let* line = str_field j "line" in
    Ok (Telemetry { id; line })
  | "result" ->
    let* payload = str_field j "payload" in
    let elapsed_ms =
      Option.bind (Json.member "elapsed_ms" j) Json.get_float
      |> Option.value ~default:0.
    in
    Ok (Result { id; payload; elapsed_ms })
  | "error" ->
    let* code_s = str_field j "code" in
    let* message = str_field j "message" in
    (match error_code_of_name code_s with
    | Some code -> Ok (Error_resp { id; code; message })
    | None -> Error (Printf.sprintf "unknown error code %S" code_s))
  | t -> Error (Printf.sprintf "unknown response type %S" t)

let parse_response payload =
  match Json.parse payload with
  | Error e -> Error e
  | Ok j -> response_of_json j

(* --- connection-level chaos (client-side fault injection) --- *)

type conn_chaos = {
  disconnect : float;  (** close mid-frame after sending half a request *)
  slowloris : float;  (** dribble the request one byte at a time *)
  garbage : float;  (** corrupt the payload so it cannot parse *)
  conn_seed : int;
}

(* Same splitmix-flavored 30-bit scramble as [Harness.Pool]'s worker
   chaos, so wire faults are equally a pure function of (seed, request
   index) and campaigns reproduce exactly. *)
let conn_mix seed req =
  let mask = (1 lsl 30) - 1 in
  let golden = 0x9E3779B1 in
  let scramble h =
    let h = (h lxor (h lsr 15)) * 0x85EBCA6B land mask in
    let h = (h lxor (h lsr 13)) * 0xC2B2AE35 land mask in
    h lxor (h lsr 16)
  in
  let h = scramble ((seed land mask) + golden) in
  scramble (h lxor ((req + 1) * golden land mask))

let conn_fault c ~req =
  let u = float_of_int (conn_mix c.conn_seed req land 0xFFFFFF) /. 16777216. in
  if u < c.disconnect then Some `Disconnect
  else if u < c.disconnect +. c.slowloris then Some `Slowloris
  else if u < c.disconnect +. c.slowloris +. c.garbage then Some `Garbage
  else None

let conn_chaos_of_string s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rate kind v =
    match float_of_string_opt v with
    | Some r when r >= 0. && r <= 1. -> Ok r
    | Some _ | None ->
      Error
        (Printf.sprintf "bad %s rate %S (want a probability in 0..1)" kind v)
  in
  let rec go c = function
    | [] ->
      if c.disconnect +. c.slowloris +. c.garbage > 0. then Ok c
      else Error "connection chaos spec enables no fault kind"
    | p :: rest -> (
      let kind, value =
        match String.index_opt p ':' with
        | None -> (p, None)
        | Some i ->
          ( String.sub p 0 i,
            Some (String.sub p (i + 1) (String.length p - i - 1)) )
      in
      let with_rate set = function
        | None -> go (set 0.1) rest
        | Some v -> (
          match rate kind v with Ok r -> go (set r) rest | Error e -> Error e)
      in
      match kind with
      | "disconnect" -> with_rate (fun r -> { c with disconnect = r }) value
      | "slowloris" -> with_rate (fun r -> { c with slowloris = r }) value
      | "garbage" -> with_rate (fun r -> { c with garbage = r }) value
      | "seed" -> (
        match Option.bind value int_of_string_opt with
        | Some n -> go { c with conn_seed = n } rest
        | None -> Error (Printf.sprintf "bad chaos seed in %S (want seed:N)" p))
      | _ ->
        Error
          (Printf.sprintf
             "unknown connection chaos component %S (want \
              disconnect|slowloris|garbage[:RATE] or seed:N)"
             p))
  in
  go { disconnect = 0.; slowloris = 0.; garbage = 0.; conn_seed = 1 } parts
