(** The operations behind both front doors.

    The CLI's [--json]/[--stats-json] paths and the daemon's request
    handlers build their machine-readable payloads here, so a daemon
    result frame is byte-identical to the one-shot CLI's stdout by
    construction. *)

(** A failed operation: the typed diagnostic plus the exit code the
    one-shot CLI dies with (1 front-end/pipeline failure, 2 runtime
    error, 124 budget).  The daemon maps [exit_code] onto a wire error
    code; the CLI maps it straight to [exit]. *)
type failure = { diag : Telemetry.Diag.t; exit_code : int }

(** The CLI's option set: [verify] and [inject_fault] off by default,
    [budget] the degrade budget threaded into the replication passes. *)
val make_opts :
  ?verify:bool ->
  ?inject_fault:string ->
  ?budget:Telemetry.Budget.t ->
  Opt.Driver.level ->
  Opt.Driver.options

(** Compile a source string, mapping front-end exceptions
    (lexer/parser/codegen) and pipeline {!Telemetry.Diag.Error} to
    [failure]s whose messages carry a [path:line] position — the exact
    diagnostics the CLI prints. *)
val compile_source :
  ?log:Telemetry.Log.t ->
  ?diags:Telemetry.Diag.t list ref ->
  ?verdicts:Tv.record list ref ->
  Opt.Driver.options ->
  Ir.Machine.t ->
  path:string ->
  string ->
  (Flow.Prog.t, failure) result

(** Static unconditional-jump count of one function. *)
val func_ujumps : Flow.Func.t -> int

(** The [compile --stats-json] object for an optimized program. *)
val compile_stats :
  level:Opt.Driver.level -> machine:Ir.Machine.t -> Flow.Prog.t -> Telemetry.Json.t

(** Compile then {!compile_stats}. *)
val compile_payload :
  ?log:Telemetry.Log.t ->
  ?diags:Telemetry.Diag.t list ref ->
  ?budget:Telemetry.Budget.t ->
  level:Opt.Driver.level ->
  machine:Ir.Machine.t ->
  path:string ->
  string ->
  (Telemetry.Json.t, failure) result

(** The three-level comparison: a SIMPLE reference row, then LOOPS and
    JUMPS verified against its output.  [budget] bounds each
    interpretation (the per-request deadline); a simulated-program fault
    is a [failure] with [exit_code = 2]. *)
val measure_rows :
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  ?verify:bool ->
  ?engine:Sim.Engine.kind ->
  path:string ->
  name:string ->
  source:string ->
  input:string ->
  Ir.Machine.t ->
  (Harness.Measure.t list, failure) result

(** The [measure --stats-json] array for the rows. *)
val measure_json : Harness.Measure.t list -> Telemetry.Json.t

(** {!measure_rows} (named after the file's basename, as the CLI does)
    then {!measure_json}. *)
val measure_payload :
  ?log:Telemetry.Log.t ->
  ?budget:Telemetry.Budget.t ->
  ?verify:bool ->
  path:string ->
  input:string ->
  Ir.Machine.t ->
  string ->
  (Telemetry.Json.t, failure) result

(** Compile without register allocation and collect pipeline diagnostics
    plus {!Lint.check_prog} findings, in the CLI's order. *)
val lint_findings :
  ?log:Telemetry.Log.t ->
  level:Opt.Driver.level ->
  machine:Ir.Machine.t ->
  path:string ->
  string ->
  (Telemetry.Diag.t list, failure) result

(** The [lint --json] array for (target, findings) reports. *)
val lint_json : (string * Telemetry.Diag.t list) list -> Telemetry.Json.t

(** {!lint_findings} for one target, rendered as a one-element
    {!lint_json} array. *)
val lint_payload :
  level:Opt.Driver.level ->
  machine:Ir.Machine.t ->
  path:string ->
  string ->
  (Telemetry.Json.t, failure) result

(** Compile under [options.certify] and collect the static certifier's
    per-pass verdicts (chronological) alongside the pipeline diagnostics
    they produced.  [inject_fault] passes a PASS[:MODE] corruption spec
    through, so a deliberately broken pass shows up as a refutation. *)
val certify_report :
  ?log:Telemetry.Log.t ->
  ?inject_fault:string ->
  level:Opt.Driver.level ->
  machine:Ir.Machine.t ->
  path:string ->
  string ->
  (Tv.record list * Telemetry.Diag.t list, failure) result

(** (certified, unknown, refuted) counts over a verdict list. *)
val certify_summary : Tv.record list -> int * int * int

(** The [certify --json] object for one target: the verdict list (each
    with its reason and, for refutations, the counterexample path) and
    the summary counts. *)
val certify_json :
  target:string ->
  level:Opt.Driver.level ->
  machine:Ir.Machine.t ->
  Tv.record list ->
  Telemetry.Json.t

(** Compile with an in-memory event log: the optimized program plus the
    events the explain report audits. *)
val explain_report :
  level:Opt.Driver.level ->
  machine:Ir.Machine.t ->
  path:string ->
  string ->
  (Flow.Prog.t * Telemetry.Log.event list, failure) result

(** The [explain --json] array. *)
val explain_json :
  Flow.Prog.t -> Telemetry.Log.event list -> Telemetry.Json.t

(** {!explain_report} then {!explain_json}. *)
val explain_payload :
  level:Opt.Driver.level ->
  machine:Ir.Machine.t ->
  path:string ->
  string ->
  (Telemetry.Json.t, failure) result
