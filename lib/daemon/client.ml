(* Client side of the jumprepd protocol: one blocking connection, plus
   the connection-level chaos injector the CI campaign drives.

   Chaos faults are staged on *throwaway* connections: a disconnect
   sends half a frame and hangs up, a slowloris dribbles a valid request
   one byte at a time and hangs up without reading, garbage corrupts the
   payload so it cannot parse.  The real request then runs undisturbed
   on the main connection — so a chaos campaign exercises the server's
   half-frame, slow-peer and garbage handling while the results stay
   byte-identical to a quiet run (the equivalence CI asserts). *)

module Json = Telemetry.Json

type t = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  socket_path : string;
  chaos : Protocol.conn_chaos option;
  mutable next_id : int;
  mutable req_count : int;  (* chaos draw index, counts every request *)
}

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let connect_fd socket_path =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_UNIX socket_path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket_path
         (Unix.error_message e))

let connect ?chaos socket_path =
  match connect_fd socket_path with
  | Error _ as e -> e
  | Ok fd ->
    Ok
      {
        fd;
        dec = Protocol.decoder ();
        socket_path;
        chaos;
        next_id = 1;
        req_count = 0;
      }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* One staged wire fault against a throwaway connection.  Best-effort:
   if the server refuses the connection (it may be draining), the fault
   simply does not fire. *)
let inject_fault t fault frame =
  match connect_fd t.socket_path with
  | Error _ -> ()
  | Ok fd ->
    (try
       (match fault with
       | `Disconnect ->
         (* Half a frame, then a hard close: the decoder on the other
            side must hold the partial frame until the half-open timeout
            reaps it. *)
         write_all fd frame 0 (max 1 (String.length frame / 2))
       | `Slowloris ->
         (* A valid request, one byte at a time.  Bounded: dribble the
            header and the first payload bytes, then finish in one burst
            and hang up without reading the response. *)
         let dribble = min 32 (String.length frame) in
         for i = 0 to dribble - 1 do
           write_all fd frame i 1;
           Unix.sleepf 0.002
         done;
         write_all fd frame dribble (String.length frame - dribble)
       | `Garbage ->
         (* Correct framing, garbage payload: the first byte of a valid
            envelope is always '{', so 0xFF can never parse.  The server
            answers bad-request and keeps its connection in sync. *)
         let b = Bytes.of_string frame in
         Bytes.set b 4 '\xFF';
         write_all fd (Bytes.to_string b) 0 (Bytes.length b))
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

exception Protocol_error of string

(* Read until the frame for [id] arrives.  Telemetry frames stream to
   [on_telemetry]; frames for other ids (there are none today — requests
   on one connection are answered in order) are skipped. *)
let read_response t ~id ~on_telemetry =
  let buf = Bytes.create 65536 in
  let rec next () =
    match Protocol.decoder_next t.dec with
    | Error e -> raise (Protocol_error e)
    | Ok (Some payload) -> (
      match Protocol.parse_response payload with
      | Error e -> raise (Protocol_error ("bad response frame: " ^ e))
      | Ok (Protocol.Telemetry { id = tid; line }) ->
        if tid = id then on_telemetry line;
        next ()
      | Ok (Protocol.Result { id = rid; payload; elapsed_ms }) ->
        if rid = id then Ok (payload, elapsed_ms) else next ()
      | Ok (Protocol.Error_resp { id = rid; code; message }) ->
        if rid = id || rid = 0 then Error (code, message) else next ())
    | Ok None -> (
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | 0 -> raise (Protocol_error "server closed the connection")
      | n ->
        Protocol.decoder_feed t.dec (Bytes.sub_string buf 0 n);
        next ()
      | exception Unix.Unix_error (EINTR, _, _) -> next ()
      | exception Unix.Unix_error (e, _, _) ->
        raise (Protocol_error (Unix.error_message e)))
  in
  next ()

let request t ?(qos = Protocol.default_qos) ?(on_telemetry = fun _ -> ()) req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let env = { Protocol.id; qos; req } in
  let frame =
    Protocol.encode_frame (Json.to_string (Protocol.envelope_to_json env))
  in
  (* Draw the wire fault for this request index, stage it on a throwaway
     connection, then run the real request undisturbed. *)
  (match t.chaos with
  | None -> ()
  | Some c ->
    let r = t.req_count in
    t.req_count <- r + 1;
    match Protocol.conn_fault c ~req:r with
    | None -> ()
    | Some fault -> inject_fault t fault frame);
  match
    write_all t.fd frame 0 (String.length frame);
    read_response t ~id ~on_telemetry
  with
  | result -> result
  | exception Protocol_error e -> Error (Protocol.Internal, e)
  | exception Unix.Unix_error (e, _, _) ->
    Error (Protocol.Internal, Unix.error_message e)

(* The exit code the one-shot CLI would have produced for this failure —
   what makes `jumprepc client` usable as a drop-in in scripts. *)
let exit_of_code = function
  | Protocol.Bad_request -> 1
  | Protocol.Runtime_error -> 2
  | Protocol.Deadline -> 124
  | Protocol.Crashed | Protocol.Internal -> 125
  | Protocol.Overloaded | Protocol.Draining -> 75 (* EX_TEMPFAIL *)
