(** Client side of the jumprepd protocol (see {!Protocol}): one blocking
    connection, with optional connection-level chaos.

    Chaos faults ({!Protocol.conn_chaos}) are staged on throwaway
    connections — half-frame disconnects, one-byte-at-a-time slowloris
    sends, corrupted payloads — while the real request runs undisturbed,
    so results under chaos stay byte-identical to a quiet run. *)

type t

(** Connect to the daemon's Unix-domain socket. *)
val connect : ?chaos:Protocol.conn_chaos -> string -> (t, string) result

val close : t -> unit

(** Send one request and block for its result.  [on_telemetry] receives
    each streamed JSONL line (when the qos asked for telemetry) before
    the result arrives.  [Ok (payload, elapsed_ms)] carries the rendered
    result document — printed verbatim it is byte-identical to the
    one-shot CLI's stdout — and the server-side latency.  Transport
    failures surface as [Error (Internal, _)]. *)
val request :
  t ->
  ?qos:Protocol.qos ->
  ?on_telemetry:(string -> unit) ->
  Protocol.request ->
  (string * float, Protocol.error_code * string) result

(** The exit code the one-shot CLI would have produced: 1 bad-request,
    2 runtime-error, 124 deadline, 125 crashed/internal, 75 (EX_TEMPFAIL)
    overloaded/draining. *)
val exit_of_code : Protocol.error_code -> int
