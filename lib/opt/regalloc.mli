(** Register allocation by graph coloring (paper: "register assignment" and
    "register allocation by register coloring").

    Chaitin-style: build the interference graph over virtual registers
    (move sources do not interfere with their destinations, giving free
    coalescing when colors coincide; calls clobber the caller-save set, so
    values live across calls end up in callee-save registers), simplify,
    select with move-biased color choice, and spill to fresh frame slots
    when needed, iterating until everything colors.

    Postconditions: no virtual registers remain; the [Enter] frame size
    covers spill and callee-save slots; callee-save registers used by the
    assignment are saved after [Enter] and restored before each [Leave];
    register self-moves are deleted. *)

exception Failure of string

(** With [log], every spilled register is reported as a [Regalloc_spill]
    event carrying the coloring round that spilled it. *)
val run : ?log:Telemetry.Log.t -> Ir.Machine.t -> Flow.Func.t -> Flow.Func.t
