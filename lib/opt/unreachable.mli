(** Dead code elimination at the block level: remove blocks the control
    flow can no longer reach (paper: "dead code elimination" after
    replication and branch optimizations). *)

val run : Flow.Func.t -> Flow.Func.t * bool
