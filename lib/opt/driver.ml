open Flow
module Diag = Telemetry.Diag
module SSet = Set.Make (String)

type level = Simple | Loops | Jumps

let level_name = function
  | Simple -> "SIMPLE"
  | Loops -> "LOOPS"
  | Jumps -> "JUMPS"

let level_of_string s =
  match String.lowercase_ascii s with
  | "simple" -> Some Simple
  | "loops" -> Some Loops
  | "jumps" -> Some Jumps
  | _ -> None

type options = {
  level : level;
  heuristic : Replication.Jumps.heuristic;
  max_rtls : int option;
  allocate : bool;
  max_iterations : int;
  replicate_indirect : bool;
  enable_cse : bool;
  enable_licm : bool;
  enable_strength : bool;
  enable_isel : bool;
  verify_passes : bool;
  certify : bool;
  displace : bool;
  inject_fault : string option;
  budget : Telemetry.Budget.t option;
}

let default_options =
  {
    level = Simple;
    heuristic = Replication.Jumps.Shorter;
    max_rtls = None;
    allocate = true;
    max_iterations = 8;
    replicate_indirect = true;
    enable_cse = true;
    enable_licm = true;
    enable_strength = true;
    enable_isel = true;
    verify_passes = false;
    certify = false;
    displace = true;
    inject_fault = None;
    budget = None;
  }

let options ?(level = Simple) () = { default_options with level }

(* How [inject_fault] corrupts the named pass's output; the spec syntax is
   PASS or PASS:MODE (default mode: dangling-jump). *)
type fault_mode = Fault_dangling | Fault_flip_branch | Fault_drop_store

(* --- telemetry: per-pass spans with IR deltas --- *)

(* Blocks ending in an unconditional transfer ([Jump] or [Ijump]): the
   quantity the whole optimization exists to reduce, tracked per pass. *)
let count_ujumps func =
  Array.fold_left
    (fun n b ->
      match Func.terminator b with
      | Some (Ir.Rtl.Jump _) | Some (Ir.Rtl.Ijump _) -> n + 1
      | Some _ | None -> n)
    0 (Func.blocks func)

let shape func = (Func.num_instrs func, Func.num_blocks func, count_ujumps func)

(* Run one named pass under a span: [Pass_begin], the pass, [Pass_end] with
   the before/after shape and elapsed wall-clock time.  When a profiler is
   attached, the same span also charges the pass's wall time and GC
   allocation to its (function x pass) row.  Disabled logs and the null
   profiler pay one branch and no allocation. *)
let run_pass log profiler fname (name, pass) func =
  let logging = Telemetry.Log.enabled log in
  let profiling = Telemetry.Profiler.enabled profiler in
  if not (logging || profiling) then pass func
  else begin
    let instrs_before, blocks_before, ujumps_before =
      if logging then shape func else (0, 0, 0)
    in
    if logging then
      Telemetry.Log.emit log (fun () ->
          Telemetry.Log.Pass_begin { func = fname; pass = name });
    let alloc0 = if profiling then Telemetry.Profiler.alloc_words () else 0.0 in
    let span = Telemetry.Span.start () in
    let func', changed = pass func in
    let elapsed_ms = Telemetry.Span.elapsed_ms span in
    if profiling then
      Telemetry.Profiler.record_pass profiler ~func:fname ~pass:name
        ~wall_ms:elapsed_ms
        ~alloc:(Telemetry.Profiler.alloc_words () -. alloc0);
    if logging then begin
      let instrs_after, blocks_after, ujumps_after = shape func' in
      Telemetry.Log.emit log (fun () ->
          Telemetry.Log.Pass_end
            {
              func = fname;
              pass = name;
              changed;
              delta =
                {
                  instrs_before;
                  instrs_after;
                  blocks_before;
                  blocks_after;
                  ujumps_before;
                  ujumps_after;
                };
              elapsed_ms;
            })
    end;
    (func', changed)
  end

(* Compose named passes, threading the change flag and spanning each.
   Also reports the name of the last pass that changed the function, for
   the fixpoint-divergence warning. *)
let seq ?(log = Telemetry.Log.null) ?(profiler = Telemetry.Profiler.null)
    ~fname passes func =
  List.fold_left
    (fun (func, changed, last) (name, pass) ->
      let func, c = run_pass log profiler fname (name, pass) func in
      (func, changed || c, if c then name else last))
    (func, false, "") passes

(* --- the protective pass boundary --- *)

(* Every pass runs inside a boundary that verifies its output and, on a
   verifier failure, a raised exception, or a differential-oracle mismatch,
   rolls the function back to the pass's input (the last-good IR), records
   a diagnostic, quarantines the pass for the rest of this function's
   compilation, and lets the pipeline continue.  One bad pass on one
   function no longer aborts the build. *)
type boundary = {
  b_log : Telemetry.Log.t;
  b_fname : string;
  b_opts : options;
  b_oracle : Oracle.t option;
  b_diags : Diag.t list ref;
  b_fault : (string * fault_mode) option;
  b_verdicts : Tv.record list ref;
  mutable quarantined : SSet.t;
  mutable warned : SSet.t;
      (* (pass, unknown-kind) pairs already diagnosed, so the fixpoint loop
         does not repeat the same certifier warning every iteration *)
  mutable baseline : SSet.t;
      (* violations already present in the last accepted IR; only new ones
         convict a pass *)
}

(* Cheap checks always; --verify-passes adds the expensive ones. *)
let generic_violations opts func = Check.errors ~full:opts.verify_passes func

(* Checks that are postconditions of specific passes, never baselined. *)
let pass_postconditions name func =
  match name with
  | "unreachable" -> Check.unreachable_blocks func
  | "regalloc" -> Check.no_virtuals func
  | _ -> []

(* Test-only fault injection: corrupt the named pass's output, proving the
   detection paths end to end from the CLI.  [Fault_dangling] (a jump to a
   label that does not exist) is caught by the structural verifier;
   [Fault_flip_branch] and [Fault_drop_store] produce well-formed but
   miscompiled IR that only the static certifier (or the dynamic oracle)
   can convict. *)
let fault_mode_of_string = function
  | "dangling-jump" -> Some Fault_dangling
  | "flip-branch" -> Some Fault_flip_branch
  | "drop-store" -> Some Fault_drop_store
  | _ -> None

let parse_fault spec =
  match String.index_opt spec ':' with
  | None -> Ok (spec, Fault_dangling)
  | Some i ->
    let pass = String.sub spec 0 i in
    let mode = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match fault_mode_of_string mode with
    | Some m -> Ok (pass, m)
    | None -> Error mode)

(* Returns whether the corruption applied (a branch/store was found to
   break); an applied corruption forces the pass's changed flag so the
   certifier and oracle actually look at it. *)
let inject_corruption mode func =
  match mode with
  | Fault_dangling ->
    let bad =
      {
        Func.label = Func.fresh_label func;
        instrs = [ Ir.Rtl.Jump (Ir.Label.of_int 424242) ];
      }
    in
    (Func.with_blocks func (Array.append (Func.blocks func) [| bad |]), true)
  | Fault_flip_branch ->
    let hit = ref false in
    let func' =
      Func.map_instrs
        (List.map (fun i ->
             match i with
             | Ir.Rtl.Branch (c, l) when not !hit ->
               hit := true;
               Ir.Rtl.Branch (Ir.Rtl.negate_cond c, l)
             | i -> i))
        func
    in
    (func', !hit)
  | Fault_drop_store ->
    let hit = ref false in
    let func' =
      Func.map_instrs
        (List.filter (fun i ->
             if !hit then true
             else
               match i with
               | Ir.Rtl.Move (Ir.Rtl.Lmem _, _)
               | Ir.Rtl.Binop (_, Ir.Rtl.Lmem _, _, _)
               | Ir.Rtl.Unop (_, Ir.Rtl.Lmem _, _) ->
                 hit := true;
                 false
               | _ -> true))
        func
    in
    (func', !hit)

let quarantine g name code violations message =
  g.quarantined <- SSet.add name g.quarantined;
  g.b_diags := Diag.make code ~func:g.b_fname ~pass:name message :: !(g.b_diags);
  Telemetry.Log.emit g.b_log (fun () ->
      Telemetry.Log.Pass_quarantined
        { func = g.b_fname; pass = name; code = Diag.code_name code; violations })

(* The static certifier, consulted after every changing pass under
   [--certify].  A refutation convicts the pass like an oracle mismatch:
   quarantine plus rollback.  Unknown verdicts are recorded (once per
   (pass, kind) per function — the fixpoint loop would otherwise repeat
   them) as warnings and the output is kept: Unknown is absence of a
   proof, not evidence of a bug. *)
let certify_after g name ~before ~after =
  let verdict = Tv.certify_pass ~pass:name ~before ~after () in
  g.b_verdicts :=
    { Tv.vfunc = g.b_fname; vpass = name; verdict } :: !(g.b_verdicts);
  match verdict with
  | Tv.Certified -> true
  | Tv.Unknown { reason; timeout } ->
    let key = name ^ if timeout then "/timeout" else "/unknown" in
    if not (SSet.mem key g.warned) then begin
      g.warned <- SSet.add key g.warned;
      g.b_diags :=
        Diag.make ~severity:Diag.Warn
          (if timeout then Diag.Certifier_timeout else Diag.Uncertifiable_pass)
          ~func:g.b_fname ~pass:name reason
        :: !(g.b_diags)
    end;
    true
  | Tv.Refuted { reason; path } ->
    quarantine g name Diag.Certify_refuted path
      (Printf.sprintf "%s; counterexample path: %s" reason
         (String.concat " -> " path));
    false

let guard g name pass func =
  if SSet.mem name g.quarantined then (func, false)
  else
    match pass func with
    | exception Diag.Error d ->
      quarantine g name d.Diag.code [] d.Diag.message;
      (func, false)
    | exception Sys.Break -> raise Sys.Break
    (* Budget exhaustion is not a pass failure: it must reach the
       degradation loop in [optimize_func], not quarantine the pass. *)
    | exception (Telemetry.Budget.Exhausted _ as e) -> raise e
    | exception Analysis.Dataflow.Diverged msg ->
      quarantine g name Diag.Analysis_diverged [] msg;
      (func, false)
    | exception exn ->
      quarantine g name Diag.Pass_raised [] (Printexc.to_string exn);
      (func, false)
    | func', changed -> (
      let func', changed =
        match g.b_fault with
        | Some (target, mode) when String.equal target name ->
          let func', applied = inject_corruption mode func' in
          (func', changed || applied)
        | _ -> (func', changed)
      in
      let viols = generic_violations g.b_opts func' in
      let fresh =
        List.filter (fun v -> not (SSet.mem v g.baseline)) viols
        @ pass_postconditions name func'
      in
      if fresh <> [] then begin
        quarantine g name Diag.Malformed_ir fresh
          (Printf.sprintf "verifier: %s" (String.concat "; " fresh));
        (func, false)
      end
      else if
        g.b_opts.certify && changed
        && not (certify_after g name ~before:func ~after:func')
      then (func, false)
      else
        let accept () =
          g.baseline <- SSet.of_list viols;
          (func', changed)
        in
        match g.b_oracle with
        | Some o when changed && Oracle.applies o func' -> (
          match Oracle.divergence o ~baseline:func ~candidate:func' with
          | Some msg ->
            quarantine g name Diag.Oracle_mismatch [] msg;
            (func, false)
          | None -> accept ())
        | _ -> accept ())

let jumps_config opts ~size_cap ~allow_irreducible =
  {
    Replication.Jumps.heuristic = opts.heuristic;
    max_rtls = opts.max_rtls;
    allow_irreducible;
    size_cap;
    replicate_indirect = opts.replicate_indirect;
  }

let replication_pass ?log ?budget opts ~size_cap ~allow_irreducible func =
  match opts.level with
  | Simple -> (func, false)
  | Loops -> Replication.Loops_rep.run ?log func
  | Jumps ->
    Replication.Jumps.run ?log ?budget
      (jumps_config opts ~size_cap ~allow_irreducible)
      func

(* [replicate] abstracts the replication pass so tests can instrument it
   (e.g. cap the number of replacements, or return deliberately broken
   IR to exercise the quarantine path). *)
let optimize_func_with ?(log = Telemetry.Log.null)
    ?(profiler = Telemetry.Profiler.null) ?(diags = ref [])
    ?(verdicts = ref []) ?oracle
    ~(replicate : ?allow_irreducible:bool -> Func.t -> Func.t * bool) opts
    machine func =
  let fname = Func.name func in
  let fault =
    match opts.inject_fault with
    | None -> None
    | Some spec -> (
      match parse_fault spec with
      | Ok pm -> Some pm
      | Error mode ->
        Diag.error Diag.Semantic_error ~func:fname ~pass:"inject-fault"
          "unknown fault mode %S (expected dangling-jump, flip-branch or \
           drop-store)"
          mode)
  in
  let g =
    {
      b_log = log;
      b_fname = fname;
      b_opts = opts;
      b_oracle = oracle;
      b_diags = diags;
      b_fault = fault;
      b_verdicts = verdicts;
      quarantined = SSet.empty;
      warned = SSet.empty;
      baseline = SSet.of_list (generic_violations opts func);
    }
  in
  (if not (SSet.is_empty g.baseline) then
     diags :=
       Diag.make ~severity:Diag.Warn Diag.Malformed_ir ~func:fname ~pass:"input"
         (Printf.sprintf "pipeline input already ill-formed: %s"
            (String.concat "; " (SSet.elements g.baseline)))
       :: !diags);
  let seq_raw = seq in
  let seq passes func =
    seq_raw ~log ~profiler ~fname
      (List.map (fun (name, pass) -> (name, guard g name pass)) passes)
      func
  in
  let func, _, _ =
    seq [ ("legalize", fun f -> (Legalize.run machine f, false)) ] func
  in
  let replicate_pass func = replicate func in
  (* Initial branch optimizations, then replication on the clean flow. *)
  let func, _, _ =
    seq
      [
        ("branch-chain", Branch_chain.run);
        ("unreachable", Unreachable.run);
        ("reorder", Reorder.run);
        ("branch-chain", Branch_chain.run);
        ("replicate", replicate_pass);
        ("unreachable", Unreachable.run);
      ]
      func
  in
  (* The fixpoint keeps re-presenting passes with functions they have
     already reported no change on — the final iteration consists of
     nothing else.  Passes are deterministic on an unchanged input
     ([Func.t] is immutable and a no-change run draws no fresh names), so
     the previous no-change verdict, including the boundary's verification
     of that exact IR, can be replayed without running anything.  The memo
     sits outside the guard on purpose: re-verifying an already-accepted
     function is as redundant as re-optimizing it. *)
  let nochange : (string, Func.t) Hashtbl.t = Hashtbl.create 16 in
  let memo name pass f =
    match Hashtbl.find_opt nochange name with
    | Some f0 when f0 == f -> (f, false)
    | _ ->
      let f', c = pass f in
      if not c then Hashtbl.replace nochange name f';
      (f', c)
  in
  let seq_fix passes func =
    seq_raw ~log ~profiler ~fname
      (List.map
         (fun (name, pass) -> (name, memo name (guard g name pass)))
         passes)
      func
  in
  (* The Figure-3 do-while loop. *)
  let rec fix func n =
    if n = 0 then func
    else begin
      let gate enabled pass = if enabled then pass else fun f -> (f, false) in
      let func, changed, last_pass =
        seq_fix
          [
            ("isel", gate opts.enable_isel (Isel.run machine));
            ("cse", gate opts.enable_cse Cse.run);
            ("gcse", gate opts.enable_cse Gcse.run);
            ("deadvars", Deadvars.run);
            ("licm", gate opts.enable_licm Licm.run);
            ("strength", gate opts.enable_strength Strength.run);
            ("isel", gate opts.enable_isel (Isel.run machine));
            ("branch-chain", Branch_chain.run);
            ("constfold", Constfold.run machine);
            ("replicate", replicate_pass);
            ("unreachable", Unreachable.run);
          ]
          func
      in
      Telemetry.Log.emit log (fun () ->
          Telemetry.Log.Fixpoint_iteration
            {
              func = fname;
              iteration = opts.max_iterations - n + 1;
              changed;
            });
      if not changed then func
      else if n = 1 then begin
        (* The iteration cap was hit while a pass still reported progress:
           warn instead of silently stopping. *)
        Telemetry.Log.emit log (fun () ->
            Telemetry.Log.Fixpoint_diverged
              { func = fname; iterations = opts.max_iterations; last_pass });
        diags :=
          Diag.make ~severity:Diag.Warn Diag.No_convergence ~func:fname
            ~pass:last_pass
            (Printf.sprintf
               "fixpoint not reached after %d iterations; %s still reported a \
                change"
               opts.max_iterations last_pass)
          :: !diags;
        func
      end
      else fix func (n - 1)
    end
  in
  let func = fix func opts.max_iterations in
  (* Final replication invocation: also take what would be irreducible. *)
  let func, _, _ =
    seq
      [
        ("replicate-final", replicate ~allow_irreducible:true);
        ("unreachable", Unreachable.run);
        ("branch-chain", Branch_chain.run);
        ("unreachable", Unreachable.run);
        ("deadvars", Deadvars.run);
      ]
      func
  in
  (* Register allocation last; it performs its own post-assignment
     cleanup (post-allocation liveness cannot see the caller's use of
     callee-save registers, so Deadvars must not run after it). *)
  let func =
    if opts.allocate then
      let func, _, _ =
        seq [ ("regalloc", fun f -> (Regalloc.run ~log machine f, false)) ] func
      in
      func
    else func
  in
  (* Displacement selection prices the final layout, so it must be the
     very last pass.  It goes through the boundary like any other pass:
     an injected `displace:*` fault is caught by the verifier or oracle
     and rolls the function back to its fixed-size encoding. *)
  let func =
    if opts.displace then
      let func, _, _ = seq [ ("displace", Displace.run machine) ] func in
      func
    else func
  in
  (* Belt and braces: the boundary gated every pass, so only violations the
     input already had can remain. *)
  (match
     List.filter
       (fun v -> not (SSet.mem v g.baseline))
       (generic_violations opts func)
   with
  | [] -> ()
  | fresh ->
    raise
      (Diag.Error
         (Diag.make Diag.Malformed_ir ~func:fname ~pass:"output"
            (String.concat "; " fresh))));
  func

let next_cheaper = function Jumps -> Some Loops | Loops -> Some Simple | Simple -> None

let optimize_func ?log ?profiler ?diags ?verdicts ?oracle opts machine func =
  (* Growth cap for replication, relative to the pre-replication size. *)
  (* The paper's worst growth is ~3x (deroff); 8x is a generous ceiling
     that still bounds pathological replication cascades. *)
  let size_cap = max 2000 (8 * Func.num_instrs func) in
  let diags = match diags with Some d -> d | None -> ref [] in
  let verdicts = match verdicts with Some v -> v | None -> ref [] in
  let input_rtls = max 1 (Func.num_instrs func) in
  (* Budget exhaustion degrades the function to the next-cheaper
     configuration (JUMPS -> LOOPS -> SIMPLE) instead of aborting: the
     attempt restarts from the original input IR, so a partially
     transformed function is never kept.  SIMPLE runs without budget
     checks, so the recursion always terminates with a compiled
     function. *)
  let rec attempt level =
    let opts = { opts with level } in
    let budget = if level = Simple then None else opts.budget in
    (* Verdicts of an abandoned attempt describe IR that was thrown away. *)
    let verdicts_before = !verdicts in
    let repl_added = ref 0 in
    let growth_cap =
      match budget with
      | None -> None
      | Some b ->
        Option.map (fun pct -> input_rtls * pct / 100) (Telemetry.Budget.growth b)
    in
    let replicate ?(allow_irreducible = false) func =
      Option.iter Telemetry.Budget.check budget;
      let func', changed =
        replication_pass ?log ?budget opts ~size_cap ~allow_irreducible func
      in
      repl_added :=
        !repl_added + max 0 (Func.num_instrs func' - Func.num_instrs func);
      (match growth_cap with
      | Some cap when !repl_added > cap ->
        raise (Telemetry.Budget.Exhausted Telemetry.Budget.Growth)
      | Some _ | None -> ());
      (func', changed)
    in
    match
      optimize_func_with ?log ?profiler ~diags ~verdicts ?oracle ~replicate
        opts machine func
    with
    | func' -> func'
    | exception Telemetry.Budget.Exhausted reason -> (
      verdicts := verdicts_before;
      match next_cheaper level with
      | None -> raise (Telemetry.Budget.Exhausted reason)
      | Some lower ->
        diags :=
          Diag.make ~severity:Diag.Warn Diag.Budget_exhausted
            ~func:(Func.name func) ~pass:"budget"
            (Printf.sprintf "%s budget exhausted at %s; degrading to %s"
               (Telemetry.Budget.reason_name reason)
               (level_name level) (level_name lower))
          :: !diags;
        attempt lower)
  in
  attempt opts.level

let optimize ?log ?profiler ?diags ?verdicts opts machine prog =
  let oracle =
    if opts.verify_passes then Some (Oracle.make machine prog) else None
  in
  let prog' =
    Prog.map_funcs
      (optimize_func ?log ?profiler ?diags ?verdicts ?oracle opts machine)
      prog
  in
  (if opts.verify_passes then
     match Check.program_errors prog' with
     | [] -> ()
     | errs ->
       Option.iter
         (fun diags ->
           diags :=
             Diag.make Diag.Malformed_ir ~func:"" ~pass:"program"
               (String.concat "; " errs)
             :: !diags)
         diags);
  prog'

let compile ?log ?profiler ?diags ?verdicts opts machine source =
  optimize ?log ?profiler ?diags ?verdicts opts machine
    (Frontend.Codegen.compile_source source)

(* Keep in sync with [optimize_func_with]: any pass added, removed or
   reordered must change this string, or campaign stores will reuse
   results computed by a different compiler. *)
let pipeline_signature =
  String.concat ","
    [
      "legalize";
      "branch-chain";
      "unreachable";
      "reorder";
      "branch-chain";
      "replicate";
      "unreachable";
      "fix(isel,cse,gcse,deadvars,licm,strength,isel,branch-chain,constfold,replicate,unreachable)";
      "replicate-final";
      "unreachable";
      "branch-chain";
      "unreachable";
      "deadvars";
      "regalloc";
      "displace";
    ]
