open Flow

type level = Simple | Loops | Jumps

let level_name = function
  | Simple -> "SIMPLE"
  | Loops -> "LOOPS"
  | Jumps -> "JUMPS"

let level_of_string s =
  match String.lowercase_ascii s with
  | "simple" -> Some Simple
  | "loops" -> Some Loops
  | "jumps" -> Some Jumps
  | _ -> None

type options = {
  level : level;
  heuristic : Replication.Jumps.heuristic;
  max_rtls : int option;
  allocate : bool;
  max_iterations : int;
  replicate_indirect : bool;
  enable_cse : bool;
  enable_licm : bool;
  enable_strength : bool;
  enable_isel : bool;
}

let default_options =
  {
    level = Simple;
    heuristic = Replication.Jumps.Shorter;
    max_rtls = None;
    allocate = true;
    max_iterations = 8;
    replicate_indirect = true;
    enable_cse = true;
    enable_licm = true;
    enable_strength = true;
    enable_isel = true;
  }

let options ?(level = Simple) () = { default_options with level }

(* Compose passes, threading the change flag. *)
let seq passes func =
  List.fold_left
    (fun (func, changed) pass ->
      let func, c = pass func in
      (func, changed || c))
    (func, false) passes

let jumps_config opts ~size_cap ~allow_irreducible =
  {
    Replication.Jumps.heuristic = opts.heuristic;
    max_rtls = opts.max_rtls;
    allow_irreducible;
    size_cap;
    replicate_indirect = opts.replicate_indirect;
  }

let replication_pass opts ~size_cap ~allow_irreducible func =
  match opts.level with
  | Simple -> (func, false)
  | Loops -> Replication.Loops_rep.run func
  | Jumps -> Replication.Jumps.run (jumps_config opts ~size_cap ~allow_irreducible) func

(* [replicate] abstracts the replication pass so tests can instrument it
   (e.g. cap the number of replacements). *)
let optimize_func_with
    ~(replicate : ?allow_irreducible:bool -> Func.t -> Func.t * bool) opts
    machine func =
  let func = Legalize.run machine func in
  let replicate_pass func = replicate func in
  (* Initial branch optimizations, then replication on the clean flow. *)
  let func, _ =
    seq
      [
        Branch_chain.run;
        Unreachable.run;
        Reorder.run;
        Branch_chain.run;
        replicate_pass;
        Unreachable.run;
      ]
      func
  in
  (* The Figure-3 do-while loop. *)
  let rec fix func n =
    if n = 0 then func
    else begin
      let gate enabled pass = if enabled then pass else fun f -> (f, false) in
      let func, changed =
        seq
          [
            gate opts.enable_isel (Isel.run machine);
            gate opts.enable_cse Cse.run;
            gate opts.enable_cse Gcse.run;
            Deadvars.run;
            gate opts.enable_licm Licm.run;
            gate opts.enable_strength Strength.run;
            gate opts.enable_isel (Isel.run machine);
            Branch_chain.run;
            Constfold.run machine;
            replicate_pass;
            Unreachable.run;
          ]
          func
      in
      if changed then fix func (n - 1) else func
    end
  in
  let func = fix func opts.max_iterations in
  (* Final replication invocation: also take what would be irreducible. *)
  let func, _ =
    seq
      [
        replicate ~allow_irreducible:true;
        Unreachable.run;
        Branch_chain.run;
        Unreachable.run;
        Deadvars.run;
      ]
      func
  in
  (* Register allocation last; it performs its own post-assignment
     cleanup (post-allocation liveness cannot see the caller's use of
     callee-save registers, so Deadvars must not run after it). *)
  let func = if opts.allocate then Regalloc.run machine func else func in
  Check.assert_ok func;
  func

let optimize_func opts machine func =
  (* Growth cap for replication, relative to the pre-replication size. *)
  (* The paper's worst growth is ~3x (deroff); 8x is a generous ceiling
     that still bounds pathological replication cascades. *)
  let size_cap = max 2000 (8 * Func.num_instrs func) in
  let replicate ?(allow_irreducible = false) func =
    replication_pass opts ~size_cap ~allow_irreducible func
  in
  optimize_func_with ~replicate opts machine func

let optimize opts machine prog = Prog.map_funcs (optimize_func opts machine) prog

let compile opts machine source =
  optimize opts machine (Frontend.Codegen.compile_source source)
