open Flow

type level = Simple | Loops | Jumps

let level_name = function
  | Simple -> "SIMPLE"
  | Loops -> "LOOPS"
  | Jumps -> "JUMPS"

let level_of_string s =
  match String.lowercase_ascii s with
  | "simple" -> Some Simple
  | "loops" -> Some Loops
  | "jumps" -> Some Jumps
  | _ -> None

type options = {
  level : level;
  heuristic : Replication.Jumps.heuristic;
  max_rtls : int option;
  allocate : bool;
  max_iterations : int;
  replicate_indirect : bool;
  enable_cse : bool;
  enable_licm : bool;
  enable_strength : bool;
  enable_isel : bool;
}

let default_options =
  {
    level = Simple;
    heuristic = Replication.Jumps.Shorter;
    max_rtls = None;
    allocate = true;
    max_iterations = 8;
    replicate_indirect = true;
    enable_cse = true;
    enable_licm = true;
    enable_strength = true;
    enable_isel = true;
  }

let options ?(level = Simple) () = { default_options with level }

(* --- telemetry: per-pass spans with IR deltas --- *)

(* Blocks ending in an unconditional transfer ([Jump] or [Ijump]): the
   quantity the whole optimization exists to reduce, tracked per pass. *)
let count_ujumps func =
  Array.fold_left
    (fun n b ->
      match Func.terminator b with
      | Some (Ir.Rtl.Jump _) | Some (Ir.Rtl.Ijump _) -> n + 1
      | Some _ | None -> n)
    0 (Func.blocks func)

let shape func = (Func.num_instrs func, Func.num_blocks func, count_ujumps func)

(* Run one named pass under a span: [Pass_begin], the pass, [Pass_end] with
   the before/after shape and elapsed wall-clock time.  Disabled logs pay
   one branch and no allocation. *)
let run_pass log fname (name, pass) func =
  if not (Telemetry.Log.enabled log) then pass func
  else begin
    let instrs_before, blocks_before, ujumps_before = shape func in
    Telemetry.Log.emit log (fun () ->
        Telemetry.Log.Pass_begin { func = fname; pass = name });
    let span = Telemetry.Span.start () in
    let func', changed = pass func in
    let elapsed_ms = Telemetry.Span.elapsed_ms span in
    let instrs_after, blocks_after, ujumps_after = shape func' in
    Telemetry.Log.emit log (fun () ->
        Telemetry.Log.Pass_end
          {
            func = fname;
            pass = name;
            changed;
            delta =
              {
                instrs_before;
                instrs_after;
                blocks_before;
                blocks_after;
                ujumps_before;
                ujumps_after;
              };
            elapsed_ms;
          });
    (func', changed)
  end

(* Compose named passes, threading the change flag and spanning each. *)
let seq ?(log = Telemetry.Log.null) ~fname passes func =
  List.fold_left
    (fun (func, changed) pass ->
      let func, c = run_pass log fname pass func in
      (func, changed || c))
    (func, false) passes

let jumps_config opts ~size_cap ~allow_irreducible =
  {
    Replication.Jumps.heuristic = opts.heuristic;
    max_rtls = opts.max_rtls;
    allow_irreducible;
    size_cap;
    replicate_indirect = opts.replicate_indirect;
  }

let replication_pass ?log opts ~size_cap ~allow_irreducible func =
  match opts.level with
  | Simple -> (func, false)
  | Loops -> Replication.Loops_rep.run ?log func
  | Jumps ->
    Replication.Jumps.run ?log
      (jumps_config opts ~size_cap ~allow_irreducible)
      func

(* [replicate] abstracts the replication pass so tests can instrument it
   (e.g. cap the number of replacements). *)
let optimize_func_with ?(log = Telemetry.Log.null)
    ~(replicate : ?allow_irreducible:bool -> Func.t -> Func.t * bool) opts
    machine func =
  let fname = Func.name func in
  let seq passes func = seq ~log ~fname passes func in
  let func, _ =
    seq [ ("legalize", fun f -> (Legalize.run machine f, false)) ] func
  in
  let replicate_pass func = replicate func in
  (* Initial branch optimizations, then replication on the clean flow. *)
  let func, _ =
    seq
      [
        ("branch-chain", Branch_chain.run);
        ("unreachable", Unreachable.run);
        ("reorder", Reorder.run);
        ("branch-chain", Branch_chain.run);
        ("replicate", replicate_pass);
        ("unreachable", Unreachable.run);
      ]
      func
  in
  (* The Figure-3 do-while loop. *)
  let rec fix func n =
    if n = 0 then func
    else begin
      let gate enabled pass = if enabled then pass else fun f -> (f, false) in
      let func, changed =
        seq
          [
            ("isel", gate opts.enable_isel (Isel.run machine));
            ("cse", gate opts.enable_cse Cse.run);
            ("gcse", gate opts.enable_cse Gcse.run);
            ("deadvars", Deadvars.run);
            ("licm", gate opts.enable_licm Licm.run);
            ("strength", gate opts.enable_strength Strength.run);
            ("isel", gate opts.enable_isel (Isel.run machine));
            ("branch-chain", Branch_chain.run);
            ("constfold", Constfold.run machine);
            ("replicate", replicate_pass);
            ("unreachable", Unreachable.run);
          ]
          func
      in
      Telemetry.Log.emit log (fun () ->
          Telemetry.Log.Fixpoint_iteration
            {
              func = fname;
              iteration = opts.max_iterations - n + 1;
              changed;
            });
      if changed then fix func (n - 1) else func
    end
  in
  let func = fix func opts.max_iterations in
  (* Final replication invocation: also take what would be irreducible. *)
  let func, _ =
    seq
      [
        ("replicate-final", replicate ~allow_irreducible:true);
        ("unreachable", Unreachable.run);
        ("branch-chain", Branch_chain.run);
        ("unreachable", Unreachable.run);
        ("deadvars", Deadvars.run);
      ]
      func
  in
  (* Register allocation last; it performs its own post-assignment
     cleanup (post-allocation liveness cannot see the caller's use of
     callee-save registers, so Deadvars must not run after it). *)
  let func =
    if opts.allocate then
      fst
        (seq
           [ ("regalloc", fun f -> (Regalloc.run ~log machine f, false)) ]
           func)
    else func
  in
  Check.assert_ok func;
  func

let optimize_func ?log opts machine func =
  (* Growth cap for replication, relative to the pre-replication size. *)
  (* The paper's worst growth is ~3x (deroff); 8x is a generous ceiling
     that still bounds pathological replication cascades. *)
  let size_cap = max 2000 (8 * Func.num_instrs func) in
  let replicate ?(allow_irreducible = false) func =
    replication_pass ?log opts ~size_cap ~allow_irreducible func
  in
  optimize_func_with ?log ~replicate opts machine func

let optimize ?log opts machine prog =
  Prog.map_funcs (optimize_func ?log opts machine) prog

let compile ?log opts machine source =
  optimize ?log opts machine (Frontend.Codegen.compile_source source)
