(** Dead variable elimination: delete pure instructions whose results are
    never used (global liveness), including comparisons whose condition
    codes are dead and register self-moves. *)

val run : Flow.Func.t -> Flow.Func.t * bool
