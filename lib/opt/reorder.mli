(** Reorder basic blocks to minimize unconditional jumps (paper Figure 3:
    "reorder basic blocks to minimize jumps").

    Fall-through-connected runs of blocks are kept intact as chains; chains
    are then laid out greedily so that a chain ending in [Jump L] is
    followed by the chain starting at [L] whenever possible, turning the
    jump into a fall-through (deleted by {!Branch_chain}). *)

val run : Flow.Func.t -> Flow.Func.t * bool
