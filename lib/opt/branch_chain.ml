open Ir
open Flow

(* Follow a chain of empty blocks and jump-only blocks to its final label. *)
let resolve func l =
  let rec go seen l =
    if Label.Set.mem l seen then l
    else begin
      let seen = Label.Set.add l seen in
      match Func.index_of_label func l with
      | exception Not_found -> l
      | i -> (
        let b = Func.block func i in
        match b.instrs with
        | [] ->
          if i + 1 < Func.num_blocks func then
            go seen (Func.block func (i + 1)).label
          else l
        | [ Rtl.Jump l' ] -> go seen l'
        | _ :: _ -> l)
    end
  in
  go Label.Set.empty l

let run func =
  let changed = ref false in
  let retarget l =
    let l' = resolve func l in
    if not (Label.equal l l') then changed := true;
    l'
  in
  (* Pass 1: retarget through chains. *)
  let func =
    Func.map_instrs
      (fun instrs -> List.map (Rtl.map_labels retarget) instrs)
      func
  in
  (* Pass 2: structural cleanups that depend on positions. *)
  let n = Func.num_blocks func in
  let next_label i =
    if i + 1 < n then Some (Func.block func (i + 1)).Func.label else None
  in
  (* The first label of the (possibly empty) chain starting at block i. *)
  let rec first_real i =
    if i >= n then None
    else begin
      let b = Func.block func i in
      if b.instrs = [] then first_real (i + 1) else Some b.label
    end
  in
  (* Jump blocks absorbed by the branch-over-jump rewrite must be emptied
     so the reversed branch's fall-through reaches the old branch target. *)
  let absorb = Array.make n false in
  let blocks =
    Array.mapi
      (fun i (b : Func.block) ->
        match List.rev b.instrs with
        | Rtl.Jump l :: rest
          when (match first_real (i + 1) with
               | Some l' -> Label.equal l l'
               | None -> false) ->
          changed := true;
          { b with instrs = List.rev rest }
        | Rtl.Branch (_, l) :: rest
          when (match next_label i with
               | Some l' -> Label.equal l (resolve func l')
               | None -> false) ->
          (* Both edges reach the same place. *)
          changed := true;
          { b with instrs = List.rev rest }
        | Rtl.Branch (c, l) :: rest
          when i + 1 < n
               && (match (Func.block func (i + 1)).instrs with
                  | [ Rtl.Jump _ ] -> (
                    match first_real (i + 2) with
                    | Some l' -> Label.equal l l'
                    | None -> false)
                  | _ -> false) ->
          (* Branch over a jump: reverse the branch, absorb the jump's
             target; the jump block becomes unreachable. *)
          let l2 =
            match (Func.block func (i + 1)).instrs with
            | [ Rtl.Jump l2 ] -> l2
            | _ -> assert false
          in
          changed := true;
          absorb.(i + 1) <- true;
          { b with instrs = List.rev (Rtl.Branch (Rtl.negate_cond c, l2) :: rest) }
        | _ -> b)
      (Func.blocks func)
  in
  let blocks =
    Array.mapi
      (fun i (b : Func.block) -> if absorb.(i) then { b with instrs = [] } else b)
      blocks
  in
  (Func.with_blocks func blocks, !changed)
