open Ir
open Flow
module Av = Analysis.Avail

(* Global CSE over pure register expressions: availability facts come from
   [Analysis.Avail] (the shared worklist engine); this pass keeps the two
   rewrite phases — find expressions recomputed while available, then save
   each into a fresh temporary at its generating sites and take the saved
   value at the recomputations. *)

let run func =
  let g = Cfg.make func in
  let instrs =
    Array.map (fun (b : Func.block) -> b.Func.instrs) (Func.blocks func)
  in
  let av = Av.solve ~graph:(Cfg.graph g) ~instrs () in
  if Av.Key_set.is_empty av.Av.universe then (func, false)
  else begin
    (* Which expressions are actually worth rewriting: available at a site
       that recomputes them. *)
    let redundant = ref Av.Key_set.empty in
    Array.iteri
      (fun bi (b : Func.block) ->
        let avail = ref av.Av.avail_in.(bi) in
        List.iter
          (fun i ->
            (match Av.key_of i with
            | Some (_, k) when Av.Key_set.mem k !avail ->
              redundant := Av.Key_set.add k !redundant
            | _ -> ());
            avail := Av.Key_set.diff !avail (Av.kills av.Av.index i);
            match Av.generates i with
            | Some (_, k) -> avail := Av.Key_set.add k !avail
            | None -> ())
          b.instrs)
      (Func.blocks func);
    if Av.Key_set.is_empty !redundant then (func, false)
    else begin
      let temp_of =
        Av.Key_set.fold
          (fun k acc -> Av.Key_map.add k (Func.fresh_reg func) acc)
          !redundant Av.Key_map.empty
      in
      let did_change = ref false in
      let blocks =
        Array.mapi
          (fun bi (b : Func.block) ->
            let avail = ref av.Av.avail_in.(bi) in
            let instrs =
              List.concat_map
                (fun i ->
                  let out =
                    match Av.key_of i with
                    | Some (d, k)
                      when Av.Key_map.mem k temp_of && Av.Key_set.mem k !avail
                      ->
                      (* Recomputation: take the saved value. *)
                      did_change := true;
                      [ Rtl.Move (Lreg d, Reg (Av.Key_map.find k temp_of)) ]
                    | _ -> (
                      match Av.generates i with
                      | Some (d, k) when Av.Key_map.mem k temp_of ->
                        (* Generating site: save the value for later. *)
                        [ i; Rtl.Move (Lreg (Av.Key_map.find k temp_of), Reg d) ]
                      | Some _ | None -> [ i ])
                  in
                  avail := Av.Key_set.diff !avail (Av.kills av.Av.index i);
                  (match Av.generates i with
                  | Some (_, k) -> avail := Av.Key_set.add k !avail
                  | None -> ());
                  out)
                b.instrs
            in
            { b with instrs })
          (Func.blocks func)
      in
      if !did_change then (Func.with_blocks func blocks, true)
      else (func, false)
    end
  end
