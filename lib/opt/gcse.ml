open Ir
open Flow

(* Canonical key of a pure register expression. *)
type key =
  | Kbinop of Rtl.binop * Rtl.operand * Rtl.operand
  | Kunop of Rtl.unop * Rtl.operand
  | Klea of Rtl.addr

module Key_set = Set.Make (struct
  type t = key

  let compare = compare
end)

module Key_map = Map.Make (struct
  type t = key

  let compare = compare
end)

let pure_operand = function
  | Rtl.Reg _ | Rtl.Imm _ -> true
  | Rtl.Mem _ -> false

let pure_addr = function
  | Rtl.Based _ | Rtl.Indexed _ | Rtl.Abs _ -> true

let key_of (i : Rtl.instr) =
  match i with
  | Binop (op, Lreg d, a, b) when pure_operand a && pure_operand b ->
    let a, b =
      if Rtl.commutative op && compare b a < 0 then (b, a) else (a, b)
    in
    Some (d, Kbinop (op, a, b))
  | Unop (op, Lreg d, a) when pure_operand a -> Some (d, Kunop (op, a))
  | Lea (d, a) when pure_addr a -> Some (d, Klea a)
  | Binop _ | Unop _ | Lea _ | Move _ | Cmp _ | Branch _ | Jump _ | Ijump _
  | Call _ | Ret | Enter _ | Leave | Nop ->
    None

(* A self-referencing computation (d = d + c, the CISC two-address shape)
   kills its own key the moment it executes: it never generates. *)
let key_regs = function
  | Kbinop (_, a, b) -> Reg.Set.union (Rtl.operand_regs a) (Rtl.operand_regs b)
  | Kunop (_, a) -> Rtl.operand_regs a
  | Klea a -> Rtl.addr_regs a

let generates i =
  match key_of i with
  | Some (d, k) when not (Reg.Set.mem d (key_regs k)) -> Some (d, k)
  | Some _ | None -> None

(* An instruction kills every expression reading a register it defines.
   (The destination registers of the expressions themselves never matter:
   the key does not mention them.) *)
let killed_by universe (i : Rtl.instr) =
  let defs = Rtl.defs i in
  if Reg.Set.is_empty defs then Key_set.empty
  else
    Key_set.filter
      (fun k -> not (Reg.Set.is_empty (Reg.Set.inter (key_regs k) defs)))
      universe

let run func =
  let n = Func.num_blocks func in
  let g = Cfg.make func in
  (* Universe and per-block gen/kill. *)
  let universe = ref Key_set.empty in
  Array.iter
    (fun (b : Func.block) ->
      List.iter
        (fun i ->
          match key_of i with
          | Some (_, k) -> universe := Key_set.add k !universe
          | None -> ())
        b.instrs)
    (Func.blocks func);
  if Key_set.is_empty !universe then (func, false)
  else begin
    let universe = !universe in
    let gen = Array.make n Key_set.empty in
    let kill = Array.make n Key_set.empty in
    Array.iteri
      (fun bi (b : Func.block) ->
        List.iter
          (fun i ->
            let dead = killed_by universe i in
            gen.(bi) <- Key_set.diff gen.(bi) dead;
            kill.(bi) <- Key_set.union kill.(bi) dead;
            match generates i with
            | Some (_, k) ->
              gen.(bi) <- Key_set.add k gen.(bi);
              kill.(bi) <- Key_set.remove k kill.(bi)
            | None -> ())
          b.instrs)
      (Func.blocks func);
    (* Forward must dataflow. *)
    let avin = Array.make n Key_set.empty in
    let avout = Array.make n Key_set.empty in
    for bi = 1 to n - 1 do
      avout.(bi) <- universe
    done;
    avout.(0) <- gen.(0);
    let changed = ref true in
    while !changed do
      changed := false;
      for bi = 0 to n - 1 do
        let inn =
          match Cfg.preds g bi with
          | [] -> Key_set.empty
          | p :: ps ->
            List.fold_left
              (fun acc q -> Key_set.inter acc avout.(q))
              avout.(p) ps
        in
        let out = Key_set.union gen.(bi) (Key_set.diff inn kill.(bi)) in
        if
          (not (Key_set.equal inn avin.(bi)))
          || not (Key_set.equal out avout.(bi))
        then begin
          avin.(bi) <- inn;
          avout.(bi) <- out;
          changed := true
        end
      done
    done;
    (* Which expressions are actually worth rewriting: available at a site
       that recomputes them. *)
    let redundant = ref Key_set.empty in
    Array.iteri
      (fun bi (b : Func.block) ->
        let avail = ref avin.(bi) in
        List.iter
          (fun i ->
            (match key_of i with
            | Some (_, k) when Key_set.mem k !avail ->
              redundant := Key_set.add k !redundant
            | _ -> ());
            avail := Key_set.diff !avail (killed_by universe i);
            match generates i with
            | Some (_, k) -> avail := Key_set.add k !avail
            | None -> ())
          b.instrs)
      (Func.blocks func);
    if Key_set.is_empty !redundant then (func, false)
    else begin
      let temp_of =
        Key_set.fold
          (fun k acc -> Key_map.add k (Func.fresh_reg func) acc)
          !redundant Key_map.empty
      in
      let did_change = ref false in
      let blocks =
        Array.mapi
          (fun bi (b : Func.block) ->
            let avail = ref avin.(bi) in
            let instrs =
              List.concat_map
                (fun i ->
                  let out =
                    match key_of i with
                    | Some (d, k)
                      when Key_map.mem k temp_of && Key_set.mem k !avail ->
                      (* Recomputation: take the saved value. *)
                      did_change := true;
                      [ Rtl.Move (Lreg d, Reg (Key_map.find k temp_of)) ]
                    | _ -> (
                      match generates i with
                      | Some (d, k) when Key_map.mem k temp_of ->
                        (* Generating site: save the value for later. *)
                        [ i; Rtl.Move (Lreg (Key_map.find k temp_of), Reg d) ]
                      | Some _ | None -> [ i ])
                  in
                  avail := Key_set.diff !avail (killed_by universe i);
                  (match generates i with
                  | Some (_, k) -> avail := Key_set.add k !avail
                  | None -> ());
                  out)
                b.instrs
            in
            { b with instrs })
          (Func.blocks func)
      in
      if !did_change then (Func.with_blocks func blocks, true)
      else (func, false)
    end
  end
