open Ir
open Flow

exception Failure of string

let k_colors = List.length Conv.allocatable

(* --- Interference graph --- *)

type graph = {
  adj : (Reg.t, Reg.Set.t) Hashtbl.t;
  mutable moves : (Reg.t * Reg.t) list;  (** move pairs for color bias *)
  occ : (Reg.t, int) Hashtbl.t;  (** occurrence counts (spill costs) *)
}

let adj_of g r =
  match Hashtbl.find_opt g.adj r with Some s -> s | None -> Reg.Set.empty

let interesting = function
  | Reg.Virt _ -> true
  | Reg.Phys _ -> true
  | Reg.Cc -> false

let add_edge g a b =
  if (not (Reg.equal a b)) && interesting a && interesting b
     && (Reg.is_virt a || Reg.is_virt b)
  then begin
    Hashtbl.replace g.adj a (Reg.Set.add b (adj_of g a));
    Hashtbl.replace g.adj b (Reg.Set.add a (adj_of g b))
  end

let build_graph func =
  let live = Liveness.compute func in
  let g = { adj = Hashtbl.create 256; moves = []; occ = Hashtbl.create 256 } in
  (* Make sure every virtual has a node even if it never interferes, and
     tally occurrence counts (spill costs) over the same traversal. *)
  Array.iter
    (fun (b : Func.block) ->
      List.iter
        (fun i ->
          Reg.Set.iter
            (fun r ->
              if Reg.is_virt r then begin
                Hashtbl.replace g.occ r
                  (1 + Option.value ~default:0 (Hashtbl.find_opt g.occ r));
                if not (Hashtbl.mem g.adj r) then
                  Hashtbl.replace g.adj r Reg.Set.empty
              end)
            (Reg.Set.union (Rtl.uses i) (Rtl.defs i)))
        b.instrs)
    (Func.blocks func);
  for bi = 0 to Func.num_blocks func - 1 do
    ignore
      (Liveness.fold_backward live
         (fun () instr ~live_after ->
           let defs = Rtl.defs instr in
           let exclude =
             match instr with
             | Rtl.Move (Lreg d, Reg s) ->
               g.moves <- (d, s) :: g.moves;
               Some s
             | _ -> None
           in
           let base = Reg.Set.union live_after defs in
           Reg.Set.iter
             (fun d ->
               Reg.Set.iter
                 (fun x ->
                   match exclude with
                   | Some s when Reg.equal x s -> ()
                   | _ -> add_edge g d x)
                 (Reg.Set.remove d base))
             defs;
           ())
         bi ~init:())
  done;
  g

(* --- Coloring --- *)

type assignment = Colored of int | Spilled

let color_graph g ~unspillable =
  let virtuals =
    Hashtbl.fold (fun r _ acc -> if Reg.is_virt r then r :: acc else acc) g.adj []
    |> List.sort Reg.compare
  in
  let removed = Hashtbl.create 64 in
  let degree = Hashtbl.create 64 in
  List.iter
    (fun r ->
      Hashtbl.replace degree r
        (Reg.Set.cardinal
           (Reg.Set.filter interesting (adj_of g r))))
    virtuals;
  let deg r = Hashtbl.find degree r in
  let stack = ref [] in
  let num_remaining = ref (List.length virtuals) in
  (* Worklist of possibly-simplifiable nodes.  Degrees only decrease during
     simplify, so a dequeued node is either still low-degree or stale. *)
  let low = Queue.create () in
  List.iter (fun r -> if deg r < k_colors then Queue.add r low) virtuals;
  let remove r =
    stack := r :: !stack;
    Hashtbl.replace removed r true;
    decr num_remaining;
    Reg.Set.iter
      (fun x ->
        if Reg.is_virt x && not (Hashtbl.mem removed x) then begin
          let d = Hashtbl.find degree x - 1 in
          Hashtbl.replace degree x d;
          if d = k_colors - 1 then Queue.add x low
        end)
      (adj_of g r)
  in
  while !num_remaining > 0 do
    match Queue.take_opt low with
    | Some r -> if not (Hashtbl.mem removed r) then remove r
    | None ->
      (* No simplifiable node: pick a spill candidate — cheap occurrences,
         high degree — and push it optimistically. *)
      let cost r =
        let occ = Option.value ~default:1 (Hashtbl.find_opt g.occ r) in
        float_of_int occ /. float_of_int (1 + deg r)
      in
      let pick pred =
        List.fold_left
          (fun best r ->
            if Hashtbl.mem removed r || not (pred r) then best
            else
              match best with
              | None -> Some r
              | Some b -> if cost r < cost b then Some r else best)
          None virtuals
      in
      let victim =
        match pick (fun r -> not (Reg.Set.mem r unspillable)) with
        | Some r -> r
        | None -> Option.get (pick (fun _ -> true))
      in
      remove victim
  done;
  (* Select phase. *)
  let assignment = Hashtbl.create 64 in
  let phys_index r = match r with Reg.Phys i -> Some i | _ -> None in
  let color_of x =
    match x with
    | Reg.Phys i -> Some i
    | Reg.Virt _ -> (
      match Hashtbl.find_opt assignment x with
      | Some (Colored c) -> Some c
      | _ -> None)
    | Reg.Cc -> None
  in
  List.iter
    (fun r ->
      let forbidden =
        Reg.Set.fold
          (fun x acc ->
            match color_of x with Some c -> c :: acc | None -> acc)
          (adj_of g r) []
      in
      let allowed =
        List.filter
          (fun pr ->
            match phys_index pr with
            | Some c -> not (List.mem c forbidden)
            | None -> false)
          Conv.allocatable
      in
      match allowed with
      | [] -> Hashtbl.replace assignment r Spilled
      | _ :: _ ->
        (* Move bias: prefer a partner's color when it is allowed. *)
        let partner_colors =
          List.filter_map
            (fun (a, b) ->
              if Reg.equal a r then color_of b
              else if Reg.equal b r then color_of a
              else None)
            g.moves
        in
        let pick =
          match
            List.find_opt
              (fun pr ->
                match phys_index pr with
                | Some c -> List.mem c partner_colors
                | None -> false)
              allowed
          with
          | Some pr -> pr
          | None -> List.hd allowed
        in
        Hashtbl.replace assignment r
          (Colored (Option.get (phys_index pick))))
    !stack;
  assignment

(* --- Spilling --- *)

(* Rewrite instructions touching spilled registers through fresh temps and
   frame slots.  [slot_of] maps a spilled register to its fp offset. *)
let rewrite_spills func spilled slot_of =
  let changed_temps = ref Reg.Set.empty in
  let rewrite_instr instr =
    let touched =
      Reg.Set.filter
        (fun r -> Reg.Set.mem r spilled)
        (Reg.Set.union (Rtl.uses instr) (Rtl.defs instr))
    in
    if Reg.Set.is_empty touched then [ instr ]
    else begin
      let mapping =
        Reg.Set.fold
          (fun r acc ->
            let t = Func.fresh_reg func in
            changed_temps := Reg.Set.add t !changed_temps;
            Reg.Map.add r t acc)
          touched Reg.Map.empty
      in
      let subst r = match Reg.Map.find_opt r mapping with Some t -> t | None -> r in
      let core = Rtl.map_regs subst instr in
      let loads =
        Reg.Set.fold
          (fun r acc ->
            if Reg.Set.mem r (Rtl.uses instr) then
              Rtl.Move
                (Lreg (Reg.Map.find r mapping),
                 Mem (Word, Based (Conv.fp, slot_of r)))
              :: acc
            else acc)
          touched []
      in
      let stores =
        Reg.Set.fold
          (fun r acc ->
            if Reg.Set.mem r (Rtl.defs instr) then
              Rtl.Move
                (Lmem (Word, Based (Conv.fp, slot_of r)),
                 Reg (Reg.Map.find r mapping))
              :: acc
            else acc)
          touched []
      in
      loads @ (core :: stores)
    end
  in
  let func =
    Func.map_instrs (fun instrs -> List.concat_map rewrite_instr instrs) func
  in
  (func, !changed_temps)

(* --- Frame finalization --- *)

let enter_size func =
  match (Func.block func 0).instrs with
  | Rtl.Enter n :: _ -> n
  | _ ->
    Telemetry.Diag.error Telemetry.Diag.Internal ~func:(Func.name func)
      ~pass:"regalloc" "function does not start with Enter"

let patch_frame func ~extra_bytes ~saves =
  let aligned = (extra_bytes + 7) land lnot 7 in
  let blocks =
    Array.map
      (fun (b : Func.block) ->
        let instrs =
          List.concat_map
            (fun i ->
              match i with
              | Rtl.Enter n -> (Rtl.Enter (n + aligned) :: List.map fst saves)
              | Rtl.Leave -> List.map snd saves @ [ Rtl.Leave ]
              | other -> [ other ])
            b.instrs
        in
        { b with instrs })
      (Func.blocks func)
  in
  Func.with_blocks func blocks

(* --- Entry point --- *)

let apply_assignment func assignment =
  let subst r =
    match r with
    | Reg.Virt _ -> (
      match Hashtbl.find_opt assignment r with
      | Some (Colored c) -> Reg.Phys c
      | Some Spilled | None ->
        Telemetry.Diag.error Telemetry.Diag.Internal ~func:(Func.name func)
          ~pass:"regalloc" "unassigned register %s" (Reg.to_string r))
    | Reg.Phys _ | Reg.Cc -> r
  in
  Func.map_instrs (fun instrs -> List.map (Rtl.map_regs subst) instrs) func

let remove_self_moves func =
  Func.map_instrs
    (fun instrs ->
      List.filter
        (fun i ->
          match i with
          | Rtl.Move (Lreg d, Reg s) -> not (Reg.equal d s)
          | _ -> true)
        instrs)
    func

let run ?(log = Telemetry.Log.null) _machine func =
  let fname = Func.name func in
  let base_frame = enter_size func in
  let next_slot = ref base_frame in
  let alloc_slot () =
    next_slot := !next_slot + 4;
    - !next_slot
  in
  let slots = Hashtbl.create 16 in
  let slot_of r =
    match Hashtbl.find_opt slots r with
    | Some s -> s
    | None ->
      let s = alloc_slot () in
      Hashtbl.replace slots r s;
      s
  in
  let rec attempt func unspillable round =
    if round > 12 then
      Telemetry.Diag.error Telemetry.Diag.No_convergence ~func:fname
        ~pass:"regalloc" "register allocation did not converge after %d rounds"
        (round - 1);
    let g = build_graph func in
    let assignment = color_graph g ~unspillable in
    let spilled =
      Hashtbl.fold
        (fun r a acc -> if a = Spilled then Reg.Set.add r acc else acc)
        assignment Reg.Set.empty
    in
    if Reg.Set.is_empty spilled then (func, assignment)
    else begin
      Reg.Set.iter
        (fun r ->
          Telemetry.Log.emit log (fun () ->
              Telemetry.Log.Regalloc_spill
                { func = fname; reg = Reg.to_string r; round }))
        spilled;
      let func, temps = rewrite_spills func spilled slot_of in
      attempt func (Reg.Set.union unspillable temps) (round + 1)
    end
  in
  let func, assignment = attempt func Reg.Set.empty 0 in
  let func = apply_assignment func assignment in
  (* Callee-save registers actually used get save/restore slots. *)
  let used_callee =
    let used = ref Reg.Set.empty in
    Array.iter
      (fun (b : Func.block) ->
        List.iter
          (fun i ->
            Reg.Set.iter
              (fun r ->
                if Reg.Set.mem r Conv.callee_save then used := Reg.Set.add r !used)
              (Rtl.defs i))
          b.instrs)
      (Func.blocks func);
    !used
  in
  let saves =
    Reg.Set.fold
      (fun r acc ->
        let off = alloc_slot () in
        (Rtl.Move (Rtl.Lmem (Word, Based (Conv.fp, off)), Reg r),
         Rtl.Move (Rtl.Lreg r, Mem (Word, Based (Conv.fp, off))))
        :: acc)
      used_callee []
  in
  let extra = !next_slot - base_frame in
  let func =
    if extra > 0 || saves <> [] then patch_frame func ~extra_bytes:extra ~saves
    else func
  in
  remove_self_moves func
