(** Instruction selection: local peephole combining (paper: "instruction
    selection" — VPO's combiner).

    Within each basic block, forward propagation of copies, constants,
    effective addresses and (on the CISC) loaded memory operands rewrites
    instructions into cheaper machine-legal shapes; a backward pass fuses
    operate-and-store pairs and memory-to-memory moves on the CISC.  Every
    rewrite is validated against {!Ir.Machine.legal_instr}, so the pass can
    never produce unencodable instructions.  Dead copies and loads left
    behind are removed by {!Deadvars}. *)

val run : Ir.Machine.t -> Flow.Func.t -> Flow.Func.t * bool
